package phasenoise

// Benchmark harness: one benchmark per paper table/figure (see DESIGN.md §4
// and EXPERIMENTS.md for the paper-vs-measured comparison), plus kernel
// benchmarks for the pipeline's numerical primitives.
//
// Run with: go test -bench=. -benchmem

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/floquet"
	"repro/internal/fourier"
	"repro/internal/linalg"
	"repro/internal/ode"
	"repro/internal/osc"
	"repro/internal/sde"
	"repro/internal/shooting"
	"repro/internal/sweep"
)

// --- Figure 2(a): computed PSD of the bandpass oscillator ------------------

func BenchmarkFig2aPSD(b *testing.B) {
	res, err := experiments.CharacteriseBandpass()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig2a(res, 400)
		if len(pts) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// --- Figure 2(b): Monte-Carlo spectrum-analyzer emulation ------------------

func BenchmarkFig2bMonteCarloPSD(b *testing.B) {
	res, err := experiments.CharacteriseBandpass()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2b(res, 4, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3: L(f_m) via Eq. 27 and Eq. 28 --------------------------------

func BenchmarkFig3Lfm(b *testing.B) {
	res, err := experiments.CharacteriseBandpass()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig3(res, 40)
		if len(pts) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// --- Figure 4(a): the six-row ECL-ring characterisation table --------------

func BenchmarkFig4aTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4a()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("short table")
		}
	}
}

// --- Figure 4(b): (2πf0)²c vs IEE sweep -------------------------------------

func BenchmarkFig4bSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var prev float64 = math.Inf(1)
		for _, p := range []float64{331e-6, 450e-6, 600e-6, 715e-6} {
			row, err := experiments.CharacteriseRing(500, 58, p)
			if err != nil {
				b.Fatal(err)
			}
			if row.FOM >= prev {
				b.Fatalf("FOM not decreasing at IEE=%g", p)
			}
			prev = row.FOM
		}
	}
}

// --- Section 4: LTV covariance growth (the linearisation inconsistency) ----

func BenchmarkSec4LTVGrowth(b *testing.B) {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 0.02}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := baseline.LTVCovariance(h, pss, 30, 400)
		if g.TangentSlope() <= 0 {
			b.Fatal("no tangent growth")
		}
	}
}

// --- Section 6: Var[α(t)] = c·t via the exact phase SDE (Eq. 9) ------------

func BenchmarkSec6AlphaVariance(b *testing.B) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	res, err := core.Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	phase := res.PhaseSDE(h)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st sde.Stats
		for p := 0; p < 100; p++ {
			rng := rand.New(rand.NewSource(int64(i*1000 + p)))
			path := sde.EulerMaruyama(phase, []float64{0}, 0, res.T()/50, 20*50, 20*50, rng)
			st.Add(path.X[len(path.X)-1][0])
		}
		if st.Var() <= 0 {
			b.Fatal("degenerate variance")
		}
	}
}

// --- Section 7: total power preservation (Eq. 25) ---------------------------

func BenchmarkSec7TotalPower(b *testing.B) {
	res, err := experiments.CharacteriseBandpass()
	if err != nil {
		b.Fatal(err)
	}
	sp := res.OutputSpectrum(0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Integrate the Lorentzian PSD contiguously across the first four
		// harmonic lines (0 to 4.5·f0); resolution ≪ the 10.5 Hz line width.
		f0 := sp.F0
		lo, hi := 0.0, 4.5*f0
		n := 60000
		df := (hi - lo) / float64(n)
		sum := 0.0
		for k := 0; k <= n; k++ {
			w := 1.0
			if k == 0 || k == n {
				w = 0.5
			}
			sum += w * sp.SSB(lo+float64(k)*df) * df
		}
		if math.Abs(sum-sp.TotalPower()) > 0.05*sp.TotalPower() {
			b.Fatalf("power %g vs Eq.25 %g", sum, sp.TotalPower())
		}
	}
}

// --- Section 8: per-source noise budget of the ring (Eqs. 30–31) -----------

func BenchmarkSec8SourceBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.CharacteriseRingFull(500, 58, 331e-6)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PerSource) != 12 {
			b.Fatal("missing sources")
		}
	}
}

// --- Section 9 step 5: backward-stable vs forward-unstable adjoint ----------

func BenchmarkSec9AdjointStability(b *testing.B) {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 0.1}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	th0 := math.Atan2(pss.X0[1], pss.X0[0])
	v10 := []float64{-math.Sin(th0) / h.Omega, math.Cos(th0) / h.Omega}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		growth := baseline.ForwardAdjointGrowth(h, pss, v10, 1e-9, 4, 1000)
		if growth < 1e3 {
			b.Fatal("forward adjoint unexpectedly stable")
		}
	}
}

// --- Section 8 jitter: Var[t_k] = c·k·T Monte Carlo -------------------------

func BenchmarkMcNeillJitter(b *testing.B) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	res, err := core.Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	full := sde.System{
		Dim: 2, NumNoise: h.NumNoise(),
		Drift: func(tt float64, x, dst []float64) { h.Eval(x, dst) },
		Diff:  func(tt float64, x []float64, dst []float64) { h.Noise(x, dst) },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		jr, err := experiments.JitterExperiment(full, res, 0, 60, 20, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if jr.MeasuredC <= 0 {
			b.Fatal("degenerate jitter slope")
		}
	}
}

// --- Batch sweep engine ------------------------------------------------------

// sweepGrid builds an 8-point Hopf frequency sweep, the workload of the
// parallel-speedup acceptance criterion: compare BenchmarkSweepSerial8
// against BenchmarkSweepParallel8 on a multi-core runner (>= 2x on 4 cores).
func sweepGrid() []sweep.Point {
	pts := make([]sweep.Point, 8)
	for i := range pts {
		h := &osc.Hopf{Lambda: 1, Omega: 2 + float64(i), Sigma: 0.02}
		pts[i] = sweep.Point{
			Name:   "hopf",
			System: h,
			X0:     []float64{1, 0.1},
			TGuess: h.Period() * 1.05,
		}
	}
	return pts
}

func benchmarkSweep(b *testing.B, workers int) {
	pts := sweepGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range sweep.Run(pts, &sweep.Config{Workers: workers}) {
			if !r.OK() {
				b.Fatal(r.Err)
			}
		}
	}
}

func BenchmarkSweepSerial8(b *testing.B)   { benchmarkSweep(b, 1) }
func BenchmarkSweepParallel8(b *testing.B) { benchmarkSweep(b, runtime.GOMAXPROCS(0)) }

// BenchmarkSweepBatched8 runs the same 8-point grid as BenchmarkSweepSerial8
// on one worker but through the lockstep SoA batch path (K=8): the
// scalar-vs-batched ns/op ratio of these two benchmarks is the
// batching-speedup acceptance criterion, enforced by scripts/bench_compare.
func BenchmarkSweepBatched8(b *testing.B) {
	pts := sweepGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range sweep.Run(pts, &sweep.Config{Workers: 1, BatchLanes: 8}) {
			if !r.OK() {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkSweepLadderRecovery measures the retry-ladder overhead on a point
// that needs all three rungs (see sweep.TestRunLadderRecoversHardPoint).
func BenchmarkSweepLadderRecovery(b *testing.B) {
	pts := []sweep.Point{{
		Name:   "vdp-hard",
		System: &osc.VanDerPol{Mu: 3, Sigma: 0.01},
		X0:     []float64{2, 0},
		TGuess: 9.0,
		Opts:   &core.Options{Shooting: &shooting.Options{StepsPerPeriod: 60}},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := sweep.Run(pts, nil)[0]
		if !r.OK() || len(r.Attempts) != 3 {
			b.Fatalf("ladder behaviour changed: ok=%v attempts=%d", r.OK(), len(r.Attempts))
		}
	}
}

// --- Pipeline kernels --------------------------------------------------------

func BenchmarkShootingHopf(b *testing.B) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	for i := 0; i < b.N; i++ {
		if _, err := shooting.Find(h, []float64{0.8, 0.1}, 0.95, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloquetAnalyze(b *testing.B) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := floquet.Analyze(h, pss, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCharacteriseBandpass(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CharacteriseBandpass(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCharacteriseRing6State(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CharacteriseRing(500, 58, 331e-6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonodromyEigenvalues(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := linalg.NewMatrix(12, 12)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * 0.3
	}
	for i := 0; i < 12; i++ {
		m.Set(i, i, m.At(i, i)+0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.Eigenvalues(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFT4096(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fourier.FFT(x)
	}
}

func BenchmarkEulerMaruyama(b *testing.B) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	sys := sde.System{
		Dim: 2, NumNoise: 2,
		Drift: func(t float64, x, dst []float64) { h.Eval(x, dst) },
		Diff:  func(t float64, x []float64, dst []float64) { h.Noise(x, dst) },
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sde.EulerMaruyama(sys, []float64{1, 0}, 0, 1e-3, 10000, 10000, rng)
	}
}

// BenchmarkPhaseSDEDiff exercises the Monte-Carlo inner loop of the exact
// phase SDE; -benchmem must report 0 allocs/op (scratch is hoisted out of
// the Diff closure).
func BenchmarkPhaseSDEDiff(b *testing.B) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	res, err := core.Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	sys := res.PhaseSDE(h)
	alpha := []float64{0.01}
	dst := make([]float64, sys.NumNoise)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Diff(float64(i)*1e-3, alpha, dst)
	}
}

func BenchmarkVariationalSTM(b *testing.B) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	f := func(t float64, x, dst []float64) { h.Eval(x, dst) }
	jac := func(t float64, x []float64, dst []float64) { h.Jacobian(x, dst) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ode.Variational(f, jac, 0, 1, []float64{1, 0}, 2000, nil, nil)
	}
}
