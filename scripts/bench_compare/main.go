// Command bench_compare runs the gated benchmark set and compares the
// results against the checked-in BENCH_baseline.json, failing (exit 1) on
//
//   - any single benchmark drifting more than 10% slower than the suite as a
//     whole (per-benchmark ns/op regression, noise-cancelled — see below), or
//   - the whole suite slowing beyond what host-speed calibration explains
//     (a global ns/op regression that uniform drift would otherwise hide), or
//   - allocs/op above the baseline beyond 0.1% (allocation regressions get
//     essentially no slack: the batched hot paths are engineered to be
//     allocation-free and a new alloc per op is a code change, not machine
//     noise; the 0.1% absorbs go test's ±1 rounding of the per-op average), or
//   - the batched sweep running at less than the required speedup over the
//     scalar sweep (the headline acceptance criterion for the SoA batch core).
//
// Shared CI runners and laptops do not have stable single-core throughput:
// the same commit can measure ±20% apart minutes later, and that swing hits
// the allocation- and memory-heavy pipeline benchmarks harder than any fixed
// synthetic workload, so no calibration loop can fully correct absolute
// ns/op. What a host swing cannot do is slow one benchmark and not the other
// six — so the primary gate is relative: each benchmark's drift ratio
// (current / baseline) is divided by the suite's median drift, cancelling
// host-wide swings while leaving single-benchmark regressions exposed. A
// uniform regression (all benchmarks slower together, e.g. a pessimised
// shared kernel) would fool that gate, so a second, looser check compares
// the median drift itself against the host-speed scale estimated from a
// fixed floating-point calibration workload. Allocs/op are machine
// independent and compared (near-)exactly.
//
// Usage:
//
//	go run ./scripts/bench_compare            # compare against baseline
//	go run ./scripts/bench_compare -update    # re-measure and rewrite baseline
//	go run ./scripts/bench_compare -count 5   # more interleaved repetitions
//
// Run it from the repository root (the Makefile target `bench-compare` does).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"
)

// gated lists the benchmarks enforced by the gate, per package. Keep this
// set small and stable: each entry is a promise that its performance is
// load-bearing AND that its run-to-run spread on a quiet host is well under
// the 10% gate (BenchmarkShootingHopf, for instance, is excluded: at ~2ms/op
// it swings ~20% with GC phase, and the shooting path is covered end-to-end
// by both sweep benchmarks anyway). Sweep benchmarks cover the whole
// pipeline (shooting → Floquet → quadrature) through both the scalar and
// batched schedulers; the ode entries isolate the SoA kernels from the
// orchestration above them.
var gated = []struct {
	pkg     string
	benches []string
}{
	{".", []string{
		"BenchmarkSweepSerial8",
		"BenchmarkSweepBatched8",
		"BenchmarkFloquetAnalyze",
		"BenchmarkCharacteriseBandpass",
	}},
	{"./internal/ode", []string{
		"BenchmarkBatchRK4Lanes8",
		"BenchmarkScalarRK4x8",
	}},
	// The composition engine is served per-request (thousands of compose jobs
	// fan in on a handful of characterisations), so its mask-evaluation hot
	// loop is gated too — pure arithmetic, microseconds/op, very low spread.
	{"./internal/pll", []string{
		"BenchmarkPLLCompose",
	}},
	// The spill store is on every served point's path (append) and every
	// result download's path (page); the benchmark keeps file creation and
	// cleanup off the clock, so what's gated is the steady-state frame
	// traffic, which is page-cache-backed and low-spread.
	{"./internal/serve", []string{
		"BenchmarkResultSpill",
	}},
}

// speedupNum / speedupDen name the benchmark pair whose ns/op ratio must
// stay at or above Baseline.MinBatchSpeedup.
const (
	speedupNum = "BenchmarkSweepSerial8"
	speedupDen = "BenchmarkSweepBatched8"
)

const (
	relSlack          = 1.10 // per-benchmark drift vs the suite median drift
	globalSlack       = 1.30 // suite median drift vs the calibrated host scale
	allocSlackPerMil  = 1    // allocs/op slack in 0.1% units (go test rounding)
	defaultMinSpeedup = 1.5  // required SweepSerial8 / SweepBatched8 ratio
	baselineFile      = "BENCH_baseline.json"
)

// Entry is one benchmark's recorded performance.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the schema of BENCH_baseline.json.
type Baseline struct {
	// CalibrationNs is the duration of the fixed calibration workload on
	// the machine that recorded the baseline; used to scale ns thresholds.
	CalibrationNs   float64          `json:"calibration_ns"`
	MinBatchSpeedup float64          `json:"min_batch_speedup"`
	Benchmarks      map[string]Entry `json:"benchmarks"`
}

func main() {
	update := flag.Bool("update", false, "re-measure and rewrite "+baselineFile)
	count := flag.Int("count", 5, "interleaved benchmark repetitions; min ns/op and max allocs/op across them are used")
	flag.Parse()

	calib := calibrate()
	fmt.Printf("bench_compare: calibration %.0f ns\n", calib)

	got, err := runBenchmarks(*count)
	if err != nil {
		fatal("%v", err)
	}

	// Calibrate again after the suite: on shared hosts throughput can sag
	// mid-run, and a single pre-suite sample would mis-scale the ns limits
	// for benchmarks that ran in a different speed window. When comparing,
	// keep the slower figure (a slow host deserves a higher limit); when
	// recording the baseline, keep the faster one (a lucky-fast calibration
	// must not tighten every future compare).
	after := calibrate()
	if *update {
		calib = math.Min(calib, after)
	} else if after > calib {
		fmt.Printf("bench_compare: post-suite calibration %.0f ns (host slowed during run; using it)\n", after)
		calib = after
	}

	if *update {
		b := Baseline{
			CalibrationNs:   calib,
			MinBatchSpeedup: defaultMinSpeedup,
			Benchmarks:      got,
		}
		buf, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fatal("marshal baseline: %v", err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(baselineFile, buf, 0o644); err != nil {
			fatal("write baseline: %v", err)
		}
		fmt.Printf("bench_compare: wrote %s (%d benchmarks)\n", baselineFile, len(got))
		return
	}

	base, err := loadBaseline()
	if err != nil {
		fatal("%v (run with -update to create it)", err)
	}
	scale := calib / base.CalibrationNs
	fmt.Printf("bench_compare: machine speed scale vs baseline: %.2fx\n", scale)

	failures := compare(base, got, scale)
	failures = append(failures, checkSpeedup(base, got)...)

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "FAIL: %s\n", f)
		}
		fmt.Fprintf(os.Stderr, "bench_compare: %d regression(s); if intentional, refresh the baseline with `go run ./scripts/bench_compare -update`\n", len(failures))
		os.Exit(1)
	}
	fmt.Printf("bench_compare: %d benchmarks within thresholds\n", len(got))
}

func loadBaseline() (Baseline, error) {
	var b Baseline
	buf, err := os.ReadFile(baselineFile)
	if err != nil {
		return b, fmt.Errorf("read %s: %w", baselineFile, err)
	}
	if err := json.Unmarshal(buf, &b); err != nil {
		return b, fmt.Errorf("parse %s: %w", baselineFile, err)
	}
	if b.CalibrationNs <= 0 || len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("%s: missing calibration_ns or benchmarks", baselineFile)
	}
	return b, nil
}

func compare(base Baseline, got map[string]Entry, scale float64) []string {
	var failures []string

	// The suite's median drift (current/baseline ns/op across all gated
	// benchmarks) estimates the host-wide speed swing common to every
	// benchmark; per-benchmark regressions are judged after dividing it out.
	var drifts []float64
	for _, grp := range gated {
		for _, name := range grp.benches {
			cur, okC := got[name]
			ref, okR := base.Benchmarks[name]
			if okC && okR && ref.NsPerOp > 0 {
				drifts = append(drifts, cur.NsPerOp/ref.NsPerOp)
			}
		}
	}
	if len(drifts) == 0 {
		return []string{"no benchmarks overlap between this run and " + baselineFile}
	}
	med := median(drifts)
	fmt.Printf("bench_compare: suite median ns/op drift %.2fx, calibrated host scale %.2fx\n", med, scale)
	if med > scale*globalSlack {
		failures = append(failures, fmt.Sprintf(
			"suite-wide slowdown: median ns/op drift %.2fx exceeds the calibrated host scale %.2fx by more than %d%% — a uniform regression, not host noise",
			med, scale, int(globalSlack*100)-100))
	}

	for _, grp := range gated {
		for _, name := range grp.benches {
			cur, ok := got[name]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: benchmark did not run", name))
				continue
			}
			ref, ok := base.Benchmarks[name]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: missing from %s", name, baselineFile))
				continue
			}
			rel := cur.NsPerOp / ref.NsPerOp / med
			status := "ok"
			if rel > relSlack {
				status = "SLOW"
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f ns/op is %.0f%% above baseline %.0f ns/op after removing the suite-wide %.2fx drift (limit +%d%%)",
					name, cur.NsPerOp, (rel-1)*100, ref.NsPerOp, med, int(relSlack*100)-100))
			}
			allocLimit := ref.AllocsPerOp + ref.AllocsPerOp*allocSlackPerMil/1000
			if cur.AllocsPerOp > allocLimit {
				status = "ALLOCS"
				failures = append(failures, fmt.Sprintf(
					"%s: %d allocs/op exceeds baseline %d allocs/op (limit %d; allocation regressions gate at 0.1%%)",
					name, cur.AllocsPerOp, ref.AllocsPerOp, allocLimit))
			}
			fmt.Printf("  %-32s %12.0f ns/op (baseline %12.0f, rel drift %+5.1f%%)  %8d allocs/op (baseline %8d)  %s\n",
				name, cur.NsPerOp, ref.NsPerOp, (rel-1)*100, cur.AllocsPerOp, ref.AllocsPerOp, status)
		}
	}
	return failures
}

func checkSpeedup(base Baseline, got map[string]Entry) []string {
	want := base.MinBatchSpeedup
	if want <= 0 {
		want = defaultMinSpeedup
	}
	num, okN := got[speedupNum]
	den, okD := got[speedupDen]
	if !okN || !okD || den.NsPerOp <= 0 {
		return []string{fmt.Sprintf("speedup check: %s or %s did not run", speedupNum, speedupDen)}
	}
	ratio := num.NsPerOp / den.NsPerOp
	fmt.Printf("  batched speedup %s/%s: %.2fx (required >= %.2fx)\n", speedupNum, speedupDen, ratio, want)
	if ratio < want {
		return []string{fmt.Sprintf("batched sweep speedup %.2fx below required %.2fx (%s %.0f ns/op vs %s %.0f ns/op)",
			ratio, want, speedupNum, num.NsPerOp, speedupDen, den.NsPerOp)}
	}
	return nil
}

// runBenchmarks executes the gated set `count` times with the packages
// interleaved — pkg A, pkg B, pkg A, pkg B, … rather than A×count then
// B×count — so every benchmark's samples are spread across the whole run's
// wall time. On hosts whose throughput sags in minutes-long windows this is
// what keeps the baseline internally consistent: back-to-back repetitions of
// one package all land in the same window and bake its speed into that
// package's numbers alone. The fold is then the minimum ns/op (interference
// only ever adds time, so the best sample over a spread of windows is the
// most reproducible estimate of true cost) and the maximum allocs/op (an
// alloc seen in any run is real — counts only vary when code paths differ).
func runBenchmarks(count int) (map[string]Entry, error) {
	samples := make(map[string]*benchSamples)
	for rep := 0; rep < count; rep++ {
		for _, grp := range gated {
			regex := "^(" + strings.Join(grp.benches, "|") + ")$"
			args := []string{"test", "-run", "^$", "-bench", regex, "-benchmem",
				"-count", "1", "-timeout", "30m", grp.pkg}
			fmt.Printf("bench_compare: [%d/%d] go %s\n", rep+1, count, strings.Join(args, " "))
			cmd := exec.Command("go", args...)
			var out bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = os.Stderr
			if err := cmd.Run(); err != nil {
				return nil, fmt.Errorf("go test -bench %s: %w\n%s", grp.pkg, err, out.String())
			}
			if err := parseBench(out.String(), samples); err != nil {
				return nil, fmt.Errorf("parse %s output: %w", grp.pkg, err)
			}
		}
	}
	results := make(map[string]Entry, len(samples))
	for name, s := range samples {
		results[name] = Entry{NsPerOp: minOf(s.ns), AllocsPerOp: s.maxAllocs}
	}
	return results, nil
}

func minOf(xs []float64) float64 {
	m := math.MaxFloat64
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

type benchSamples struct {
	ns        []float64
	maxAllocs int64
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// parseBench accumulates `go test -bench` text output lines of the form
//
//	BenchmarkName-8   27   41181215 ns/op   11764708 B/op   78328 allocs/op
//
// into per-benchmark sample sets.
func parseBench(out string, samples map[string]*benchSamples) error {
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		var ns float64
		var allocs int64 = -1
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("line %q: %w", sc.Text(), err)
			}
			switch fields[i+1] {
			case "ns/op":
				ns = v
			case "allocs/op":
				allocs = int64(v)
			}
		}
		if ns == 0 || allocs < 0 {
			return fmt.Errorf("line %q: missing ns/op or allocs/op (is -benchmem set?)", sc.Text())
		}
		s, seen := samples[name]
		if !seen {
			s = &benchSamples{}
			samples[name] = s
		}
		s.ns = append(s.ns, ns)
		if allocs > s.maxAllocs {
			s.maxAllocs = allocs
		}
	}
	return sc.Err()
}

// calibrate times a fixed allocation-free floating-point workload — the same
// mix of multiplies, adds, and a transcendental that dominates the RK4 and
// adjoint kernels — and returns the best-of-five duration in nanoseconds.
// The workload is deliberately serial and cache-resident so it tracks
// single-core FP throughput, which is what the gated benchmarks (Workers:1)
// are bound by.
func calibrate() float64 {
	best := math.MaxFloat64
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		s := 1.0
		for i := 1; i <= 2_000_000; i++ {
			x := float64(i)
			s += x * 1e-7
			s -= s * s * 1e-9
			if i%1024 == 0 {
				s += math.Exp(-s * s)
			}
		}
		d := float64(time.Since(start).Nanoseconds())
		if s == 0 { // defeat dead-code elimination
			fmt.Fprintln(os.Stderr, "calibration underflow")
		}
		if d < best {
			best = d
		}
	}
	return best
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench_compare: "+format+"\n", args...)
	os.Exit(1)
}
