#!/usr/bin/env bash
# End-to-end smoke test for pnserve: build the server, start it with a disk
# cache, submit a Hopf characterisation over HTTP, poll it to completion,
# resubmit the identical request and assert it is served from the result
# cache, then check the pn_serve_* / pn_cache_* metric families on /metrics.
# Used by CI (serve-smoke job) and runnable locally: ./scripts/smoke_serve.sh
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
SERVER_PID=""

cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "smoke_serve: FAIL: $*" >&2
  exit 1
}

# Extract a string or number field from a single-object JSON response.
json_field() { # json_field <key> <<< "$json"
  sed -n "s/.*\"$1\":\"\\{0,1\\}\\([^\",}]*\\)\"\\{0,1\\}.*/\\1/p"
}

echo "smoke_serve: building pnserve"
go build -o "$TMP/pnserve" ./cmd/pnserve

echo "smoke_serve: starting on $BASE (cache $TMP/cache, journal $TMP/journal)"
"$TMP/pnserve" -addr "127.0.0.1:$PORT" -workers 2 -cache-dir "$TMP/cache" \
  -journal-dir "$TMP/journal" \
  >"$TMP/server.log" 2>&1 &
SERVER_PID=$!

# Gate on readiness, not liveness: /readyz answers 503 until journal replay
# completes, exactly like a load balancer would wait.
for i in $(seq 1 50); do
  if curl -sf "$BASE/readyz" >/dev/null 2>&1; then break; fi
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$TMP/server.log" >&2; fail "server exited early"; }
  sleep 0.2
  [[ $i -eq 50 ]] && fail "server never became ready"
done
curl -sf "$BASE/healthz" >/dev/null || fail "liveness probe failed on a ready server"

REQ='{"model":"hopf","timeout_ms":60000}'

submit_and_wait() { # submit_and_wait -> prints terminal job JSON
  local resp id state job
  resp="$(curl -sf "$BASE/v1/characterise" -d "$REQ")" || fail "submit failed"
  id="$(json_field id <<<"$resp")"
  [[ -n "$id" ]] || fail "no job id in response: $resp"
  for i in $(seq 1 300); do
    job="$(curl -sf "$BASE/v1/jobs/$id")" || fail "status fetch failed for $id"
    state="$(json_field state <<<"$job")"
    case "$state" in
      done) echo "$job"; return 0 ;;
      failed|canceled) fail "job $id ended $state: $job" ;;
    esac
    sleep 0.2
  done
  fail "job $id never finished: $job"
}

echo "smoke_serve: first submission (cold cache)"
first="$(submit_and_wait)"
grep -q '"cached_points":0' <<<"$first" || fail "cold run reported cached points: $first"
grep -q '"ok":true' <<<"$first" || fail "cold run point not ok: $first"

echo "smoke_serve: identical resubmission (must hit the cache)"
second="$(submit_and_wait)"
grep -q '"cached_points":1' <<<"$second" || fail "resubmit missed the cache: $second"
grep -q '"cached":true' <<<"$second" || fail "resubmit point not marked cached: $second"

c1="$(json_field c_s2hz <<<"$first")"
c2="$(json_field c_s2hz <<<"$second")"
[[ -n "$c1" && "$c1" == "$c2" ]] || fail "cached c differs: $c1 vs $c2"

echo "smoke_serve: checking /metrics"
metrics="$(curl -sf "$BASE/metrics")" || fail "metrics scrape failed"
grep -q 'pn_serve_jobs_total{state="done"} 2' <<<"$metrics" \
  || fail "expected 2 done jobs in metrics"
grep -q 'pn_serve_submitted_total{kind="characterise"} 2' <<<"$metrics" \
  || fail "expected 2 submissions in metrics"
grep -q 'pn_cache_hits_total{tier="mem"} 1' <<<"$metrics" \
  || fail "expected 1 in-memory cache hit"
grep -q 'pn_cache_misses_total 1' <<<"$metrics" || fail "expected 1 cache miss"
grep -q 'pn_core_characterisations_total{outcome="ok"} 1' <<<"$metrics" \
  || fail "expected exactly 1 pipeline run (resubmit must not recompute)"

echo "smoke_serve: graceful drain"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on drain"
SERVER_PID=""

echo "smoke_serve: PASS"
