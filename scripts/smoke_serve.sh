#!/usr/bin/env bash
# End-to-end smoke test for pnserve: build the server, start it with a disk
# cache, submit a Hopf characterisation over HTTP, poll it to completion,
# resubmit the identical request and assert it is served from the result
# cache, then check the pn_serve_* / pn_cache_* metric families on /metrics.
# A compose phase then submits several PLL composition jobs sharing two
# oscillator legs and asserts the legs characterised exactly once each — the
# cache fan-in the composition layer exists for.
# A second phase stands up a 2-worker cluster behind a coordinator
# (pnserve -coordinator), runs a sweep through the lease fabric, and asserts
# the fleet computed each point exactly once.
# Used by CI (serve-smoke job) and runnable locally: ./scripts/smoke_serve.sh
set -euo pipefail

cd "$(dirname "$0")/.."

PORT="${PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
SERVER_PID=""
CLUSTER_PIDS=()

cleanup() {
  local pid
  for pid in ${CLUSTER_PIDS[@]+"${CLUSTER_PIDS[@]}"} "$SERVER_PID"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -TERM "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
  echo "smoke_serve: FAIL: $*" >&2
  exit 1
}

# Extract a string or number field from a single-object JSON response.
json_field() { # json_field <key> <<< "$json"
  sed -n "s/.*\"$1\":\"\\{0,1\\}\\([^\",}]*\\)\"\\{0,1\\}.*/\\1/p"
}

echo "smoke_serve: building pnserve"
go build -o "$TMP/pnserve" ./cmd/pnserve

echo "smoke_serve: starting on $BASE (cache $TMP/cache, journal $TMP/journal)"
"$TMP/pnserve" -addr "127.0.0.1:$PORT" -workers 2 -cache-dir "$TMP/cache" \
  -journal-dir "$TMP/journal" \
  >"$TMP/server.log" 2>&1 &
SERVER_PID=$!

# Gate on readiness, not liveness: /readyz answers 503 until journal replay
# completes, exactly like a load balancer would wait.
for i in $(seq 1 50); do
  if curl -sf "$BASE/readyz" >/dev/null 2>&1; then break; fi
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$TMP/server.log" >&2; fail "server exited early"; }
  sleep 0.2
  [[ $i -eq 50 ]] && fail "server never became ready"
done
curl -sf "$BASE/healthz" >/dev/null || fail "liveness probe failed on a ready server"

REQ='{"model":"hopf","timeout_ms":60000}'

submit_and_wait() { # submit_and_wait -> prints terminal job JSON
  local resp id state job
  resp="$(curl -sf "$BASE/v1/characterise" -d "$REQ")" || fail "submit failed"
  id="$(json_field id <<<"$resp")"
  [[ -n "$id" ]] || fail "no job id in response: $resp"
  for i in $(seq 1 300); do
    job="$(curl -sf "$BASE/v1/jobs/$id")" || fail "status fetch failed for $id"
    state="$(json_field state <<<"$job")"
    case "$state" in
      done) echo "$job"; return 0 ;;
      failed|canceled) fail "job $id ended $state: $job" ;;
    esac
    sleep 0.2
  done
  fail "job $id never finished: $job"
}

echo "smoke_serve: first submission (cold cache)"
first="$(submit_and_wait)"
grep -q '"cached_points":0' <<<"$first" || fail "cold run reported cached points: $first"
grep -q '"ok":true' <<<"$first" || fail "cold run point not ok: $first"

echo "smoke_serve: identical resubmission (must hit the cache)"
second="$(submit_and_wait)"
grep -q '"cached_points":1' <<<"$second" || fail "resubmit missed the cache: $second"
grep -q '"cached":true' <<<"$second" || fail "resubmit point not marked cached: $second"

c1="$(json_field c_s2hz <<<"$first")"
c2="$(json_field c_s2hz <<<"$second")"
[[ -n "$c1" && "$c1" == "$c2" ]] || fail "cached c differs: $c1 vs $c2"

echo "smoke_serve: checking /metrics"
metrics="$(curl -sf "$BASE/metrics")" || fail "metrics scrape failed"
grep -q 'pn_serve_jobs_total{state="done"} 2' <<<"$metrics" \
  || fail "expected 2 done jobs in metrics"
grep -q 'pn_serve_submitted_total{kind="characterise"} 2' <<<"$metrics" \
  || fail "expected 2 submissions in metrics"
grep -q 'pn_cache_hits_total{tier="mem"} 1' <<<"$metrics" \
  || fail "expected 1 in-memory cache hit"
grep -q 'pn_cache_misses_total 1' <<<"$metrics" || fail "expected 1 cache miss"
grep -q 'pn_core_characterisations_total{outcome="ok"} 1' <<<"$metrics" \
  || fail "expected exactly 1 pipeline run (resubmit must not recompute)"

# --- Compose phase: N compose jobs fan in on 2 cached characterisations ----

COMPOSE_N=6
echo "smoke_serve: submitting $COMPOSE_N compose jobs over 2 shared oscillator legs"
compose_ids=()
for i in $(seq 1 "$COMPOSE_N"); do
  omega=$((3 + i % 2))  # legs rotate over omega=3 and omega=4
  bw="0.0$((20 + i))"   # distinct loop bandwidths: distinct jobs, same legs
  creq='{"stages":[{"ref":{"name":"xo","f0_hz":0.1,"c_s2hz":1e-24},"vco":{"spec":{"name":"leg'"$omega"'","model":"hopf","params":{"lambda":1,"omega":'"$omega"',"sigma":0.02}}},"loop_bandwidth_hz":'"$bw"'}],"grid":{"start_hz":0.001,"stop_hz":100},"jitter_band_hz":[0.01,10],"timeout_ms":60000}'
  resp="$(curl -sf "$BASE/v1/compose" -d "$creq")" || fail "compose submit $i failed"
  compose_ids+=("$(json_field id <<<"$resp")")
done
for id in "${compose_ids[@]}"; do
  [[ -n "$id" ]] || fail "compose submission returned no job id"
  cjob=""
  for i in $(seq 1 300); do
    cjob="$(curl -sf "$BASE/v1/jobs/$id")" || fail "compose status fetch failed for $id"
    state="$(json_field state <<<"$cjob")"
    case "$state" in
      done) break ;;
      failed|canceled) fail "compose job $id ended $state: $cjob" ;;
    esac
    sleep 0.2
    [[ $i -eq 300 ]] && fail "compose job $id never finished: $cjob"
  done
  grep -q '"jitter_sec":' <<<"$cjob" || fail "compose job $id carried no jitter: $cjob"
done

echo "smoke_serve: checking compose fan-in ($COMPOSE_N jobs, 2 characterisations)"
metrics="$(curl -sf "$BASE/metrics")" || fail "metrics scrape failed"
grep -q "pn_serve_submitted_total{kind=\"compose\"} $COMPOSE_N" <<<"$metrics" \
  || fail "expected $COMPOSE_N compose submissions in metrics"
grep -q "pn_pll_compositions_total{outcome=\"ok\"} $COMPOSE_N" <<<"$metrics" \
  || fail "expected $COMPOSE_N ok compositions in metrics"
# 1 pipeline run from the characterise phase plus exactly 1 per distinct leg:
# every other compose job's legs must be served from the result cache.
grep -q 'pn_core_characterisations_total{outcome="ok"} 3' <<<"$metrics" \
  || fail "compose legs were not shared: want exactly 3 total pipeline runs"

echo "smoke_serve: graceful drain"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero on drain"
SERVER_PID=""

# --- Cluster phase: 2 workers + a lease coordinator -------------------------

wait_ready() { # wait_ready <base> <pid> <name>
  local i
  for i in $(seq 1 50); do
    if curl -sf "$1/readyz" >/dev/null 2>&1; then return 0; fi
    kill -0 "$2" 2>/dev/null || fail "$3 exited early"
    sleep 0.2
  done
  fail "$3 never became ready"
}

metric_count() { # metric_count <base> <series> -> integer (0 if absent)
  local v
  v="$(curl -sf "$1/metrics" | sed -n "s/^$2 \([0-9][0-9]*\)$/\1/p" | head -1)"
  echo "${v:-0}"
}

W1="http://127.0.0.1:$((PORT + 1))"
W2="http://127.0.0.1:$((PORT + 2))"
COORD="http://127.0.0.1:$((PORT + 3))"

echo "smoke_serve: cluster phase — starting 2 workers and a coordinator"
"$TMP/pnserve" -addr "127.0.0.1:$((PORT + 1))" -workers 1 \
  -cache-dir "$TMP/ccache" >"$TMP/w1.log" 2>&1 &
CLUSTER_PIDS+=($!)
"$TMP/pnserve" -addr "127.0.0.1:$((PORT + 2))" -workers 1 \
  -cache-dir "$TMP/ccache" >"$TMP/w2.log" 2>&1 &
CLUSTER_PIDS+=($!)
wait_ready "$W1" "${CLUSTER_PIDS[0]}" "worker 1"
wait_ready "$W2" "${CLUSTER_PIDS[1]}" "worker 2"

"$TMP/pnserve" -addr "127.0.0.1:$((PORT + 3))" -workers 2 \
  -coordinator "$W1,$W2" -lease-points 2 \
  -cache-dir "$TMP/ccache" -journal-dir "$TMP/cjournal" \
  >"$TMP/coord.log" 2>&1 &
CLUSTER_PIDS+=($!)
wait_ready "$COORD" "${CLUSTER_PIDS[2]}" "coordinator"
grep -q 'coordinator for 2 worker nodes' "$TMP/coord.log" \
  || fail "coordinator did not announce its worker fleet"

SWEEP='{"points":[{"name":"c0","model":"hopf","params":{"lambda":1,"omega":3,"sigma":0.02}},{"name":"c1","model":"hopf","params":{"lambda":1,"omega":4,"sigma":0.02}},{"name":"c2","model":"hopf","params":{"lambda":1,"omega":5,"sigma":0.02}},{"name":"c3","model":"hopf","params":{"lambda":1,"omega":6,"sigma":0.02}}],"workers":2,"timeout_ms":120000}'

echo "smoke_serve: sweeping 4 points through the lease fabric"
resp="$(curl -sf "$COORD/v1/sweep" -d "$SWEEP")" || fail "cluster sweep submit failed"
cid="$(json_field id <<<"$resp")"
[[ -n "$cid" ]] || fail "no job id in cluster response: $resp"
cjob=""
for i in $(seq 1 600); do
  cjob="$(curl -sf "$COORD/v1/jobs/$cid")" || fail "cluster status fetch failed for $cid"
  cstate="$(json_field state <<<"$cjob")"
  case "$cstate" in
    done) break ;;
    failed|canceled) fail "cluster job $cid ended $cstate: $cjob" ;;
  esac
  sleep 0.2
  [[ $i -eq 600 ]] && fail "cluster job $cid never finished: $cjob"
done
grep -q '"done_points":4' <<<"$cjob" || fail "cluster sweep incomplete: $cjob"
grep -q '"failed_points":0' <<<"$cjob" || fail "cluster sweep had failures: $cjob"

echo "smoke_serve: checking cluster metrics"
completed="$(metric_count "$COORD" 'pn_cluster_leases_total{outcome="completed"}')"
[[ "$completed" -ge 1 ]] || fail "coordinator completed no leases"
requeued="$(metric_count "$COORD" 'pn_cluster_leases_total{outcome="requeued"}')"
[[ "$requeued" -eq 0 ]] || fail "healthy fleet requeued $requeued leases"
ok1="$(metric_count "$W1" 'pn_core_characterisations_total{outcome="ok"}')"
ok2="$(metric_count "$W2" 'pn_core_characterisations_total{outcome="ok"}')"
[[ $((ok1 + ok2)) -eq 4 ]] \
  || fail "fleet computed $((ok1 + ok2)) points, want exactly 4 (w1=$ok1 w2=$ok2)"

echo "smoke_serve: checking the trace and fleet-status surfaces"
spans="$(metric_count "$COORD" 'pn_trace_spans_total')"
[[ "$spans" -ge 1 ]] || fail "coordinator recorded no trace spans (pn_trace_spans_total=$spans)"
pulls="$(metric_count "$COORD" 'pn_cluster_trace_pulls_total{outcome="ok"}')"
[[ "$pulls" -ge 1 ]] || fail "coordinator pulled no worker traces (pn_cluster_trace_pulls_total{ok}=$pulls)"
trace="$(curl -sf "$COORD/v1/jobs/$cid/trace")" || fail "trace fetch failed for $cid"
tid="$(json_field trace_id <<<"$trace")"
[[ -n "$tid" ]] || fail "cluster job has no trace id: $trace"
grep -q '"cluster.lease"' <<<"$trace" || fail "timeline lacks coordinator lease spans: $trace"
grep -q '"serve.job"' <<<"$trace" || fail "timeline lacks serve.job spans: $trace"
# The worker batches were pulled on lease settle, so the merged timeline must
# carry spans from at least two distinct processes (coordinator + a worker).
nprocs="$(grep -o '"proc":"[^"]*"' <<<"$trace" | sort -u | wc -l)"
[[ "$nprocs" -ge 2 ]] \
  || fail "timeline spans come from $nprocs process(es), want >= 2 (worker pulls missing)"
status="$(curl -sf "$COORD/v1/cluster/status")" || fail "cluster status fetch failed"
grep -q '"coordinator":true' <<<"$status" || fail "status surface lacks coordinator flag: $status"
grep -q '"healthy":true' <<<"$status" || fail "status surface reports no healthy workers: $status"

echo "smoke_serve: draining the cluster"
for pid in "${CLUSTER_PIDS[2]}" "${CLUSTER_PIDS[1]}" "${CLUSTER_PIDS[0]}"; do
  kill -TERM "$pid"
  wait "$pid" || fail "cluster process $pid exited non-zero on drain"
done
CLUSTER_PIDS=()

# --- Overload phase: streamed/paginated results + per-tenant quotas ---------

TBASE="http://127.0.0.1:$((PORT + 4))"
echo "smoke_serve: overload phase — tenant quotas, paginated and streamed results"
"$TMP/pnserve" -addr "127.0.0.1:$((PORT + 4))" -workers 2 \
  -cache-dir "$TMP/tcache" -journal-dir "$TMP/tjournal" \
  -tenant-quotas 'throttled=1:1:0:1' \
  >"$TMP/tenant.log" 2>&1 &
SERVER_PID=$!
wait_ready "$TBASE" "$SERVER_PID" "overload-phase server"

RSWEEP='{"points":[{"name":"p0","model":"hopf","params":{"lambda":1,"omega":7,"sigma":0.02}},{"name":"p1","model":"hopf","params":{"lambda":1,"omega":8,"sigma":0.02}},{"name":"p2","model":"hopf","params":{"lambda":1,"omega":9,"sigma":0.02}},{"name":"p3","model":"hopf","params":{"lambda":1,"omega":10,"sigma":0.02}},{"name":"p4","model":"hopf","params":{"lambda":1,"omega":11,"sigma":0.02}}],"workers":2,"timeout_ms":120000}'
resp="$(curl -sf "$TBASE/v1/sweep" -d "$RSWEEP")" || fail "overload-phase sweep submit failed"
rid="$(json_field id <<<"$resp")"
[[ -n "$rid" ]] || fail "no job id in overload-phase response: $resp"
for i in $(seq 1 300); do
  rjob="$(curl -sf "$TBASE/v1/jobs/$rid")" || fail "status fetch failed for $rid"
  rstate="$(json_field state <<<"$rjob")"
  case "$rstate" in
    done) break ;;
    failed|canceled) fail "overload-phase job $rid ended $rstate: $rjob" ;;
  esac
  sleep 0.2
  [[ $i -eq 300 ]] && fail "overload-phase job $rid never finished: $rjob"
done

echo "smoke_serve: paginated results window"
page="$(curl -sf "$TBASE/v1/jobs/$rid/results?offset=0&limit=2")" || fail "paginated results fetch failed"
grep -q '"total":5' <<<"$page" || fail "results page total wrong: $page"
grep -q '"spilled":5' <<<"$page" || fail "results page spilled wrong: $page"
grep -q '"next_offset":2' <<<"$page" || fail "results page cursor wrong: $page"
npage="$(grep -o '"index":' <<<"$page" | wc -l)"
[[ "$npage" -eq 2 ]] || fail "results page carried $npage results, want 2"

echo "smoke_serve: streaming JSONL download"
curl -sf "$TBASE/v1/jobs/$rid/results.jsonl" >"$TMP/results.jsonl" \
  || fail "results.jsonl fetch failed"
nlines="$(wc -l <"$TMP/results.jsonl")"
[[ "$nlines" -eq 5 ]] || fail "results.jsonl carried $nlines lines, want 5"
nfull="$(grep -c '"result":' "$TMP/results.jsonl")"
[[ "$nfull" -eq 5 ]] || fail "only $nfull/5 jsonl lines carry the loss-free payload"

echo "smoke_serve: per-tenant quota enforcement"
code="$(curl -s -o /dev/null -w '%{http_code}' -H 'X-PN-Tenant: throttled' -d "$REQ" "$TBASE/v1/characterise")"
[[ "$code" == "202" ]] || fail "throttled tenant's first submit answered $code, want 202"
over="$(curl -si -H 'X-PN-Tenant: throttled' -d "$REQ" "$TBASE/v1/characterise")"
grep -q '^HTTP/[0-9.]* 429' <<<"$over" || fail "throttled tenant's burst-exceeding submit was not 429: $over"
grep -qi '^retry-after: [0-9]' <<<"$over" || fail "tenant 429 carried no Retry-After: $over"
code="$(curl -s -o /dev/null -w '%{http_code}' -d "$REQ" "$TBASE/v1/characterise")"
[[ "$code" == "202" ]] || fail "default tenant was collateral damage of the throttled one: $code"

echo "smoke_serve: checking overload metrics"
rejected="$(metric_count "$TBASE" 'pn_serve_tenant_rejected_total{tenant="throttled"}')"
[[ "$rejected" -ge 1 ]] || fail "throttled tenant's rejection was not counted"
spilled="$(metric_count "$TBASE" 'pn_serve_results_spilled_total')"
[[ "$spilled" -ge 5 ]] || fail "expected >= 5 spilled results, got $spilled"

echo "smoke_serve: draining the overload-phase server"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "overload-phase server exited non-zero on drain"
SERVER_PID=""

echo "smoke_serve: PASS"
