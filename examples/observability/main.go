// Observability: watch the pipeline work, in-process and without a server.
//
// Runs a small Hopf frequency sweep with the process-wide metrics registry
// and an in-memory ring-buffer span tracer installed, then prints what the
// instruments saw: integrator steps by method, Newton iterations, sweep
// outcomes, the per-point latency histogram, and the span tree of the last
// characterisation. The same instruments feed the /metrics endpoint and
// -trace-out JSONL stream of the pnsweep/pnchar CLIs (see README
// "Observability").
//
// Run with: go run ./examples/observability
package main

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/osc"
	"repro/internal/sweep"
)

func main() {
	// Switch the instruments on: a fresh registry for metrics, a ring buffer
	// holding the most recent spans. Both are process-wide; nil uninstalls.
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	ring := obs.NewRingEmitter(4096)
	obs.SetEmitter(ring)

	// A small frequency sweep of the Hopf normal form.
	var points []sweep.Point
	for i := 0; i < 6; i++ {
		h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi * (1 + 0.5*float64(i)), Sigma: 0.05}
		points = append(points, sweep.Point{
			Name:   fmt.Sprintf("hopf-%.1fHz", 1+0.5*float64(i)),
			System: h,
			X0:     []float64{1, 0.1},
			TGuess: h.Period() * 1.05,
		})
	}
	results := sweep.Run(points, nil)
	ok := 0
	for _, r := range results {
		if r.OK() {
			ok++
		}
	}
	fmt.Printf("sweep: %d/%d points characterised\n\n", ok, len(points))

	// The metrics snapshot — every counter, gauge, and histogram the
	// pipeline touched, exactly what /metrics would serve.
	s := reg.Snapshot()
	fmt.Println("counters:")
	for _, c := range s.Counters {
		name := c.Name
		if c.LabelKey != "" {
			name = fmt.Sprintf("%s{%s=%q}", c.Name, c.LabelKey, c.LabelVal)
		}
		fmt.Printf("  %-55s %d\n", name, c.Value)
	}
	fmt.Println("gauges:")
	for _, g := range s.Gauges {
		fmt.Printf("  %-55s %g\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Printf("histogram %s: %d observations, sum %.3fs\n", h.Name, h.Count, h.Sum)
		for i, n := range h.Counts {
			if n == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Printf("  ≤ %8.3fs  %d\n", h.Bounds[i], n)
			} else {
				fmt.Printf("  > %8.3fs  %d\n", h.Bounds[len(h.Bounds)-1], n)
			}
		}
	}

	// The span tree of one characterisation, reconstructed from the ring.
	// Each event is one completed span; parents emit after their children.
	evs := ring.Events()
	byParent := make(map[uint64][]obs.Event)
	var lastChar obs.Event
	for _, ev := range evs {
		byParent[ev.Parent] = append(byParent[ev.Parent], ev)
		if ev.Name == "core.Characterise" {
			lastChar = ev
		}
	}
	fmt.Printf("\nspan tree of the last characterisation (%d spans recorded):\n", len(evs))
	printTree(byParent, lastChar, 1)
}

func printTree(byParent map[uint64][]obs.Event, ev obs.Event, depth int) {
	attrs := ""
	if len(ev.Attrs) > 0 {
		keys := make([]string, 0, len(ev.Attrs))
		for k := range ev.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%v", k, ev.Attrs[k]))
		}
		attrs = "  [" + strings.Join(parts, " ") + "]"
	}
	fmt.Printf("%s%-18s %8.2fms%s\n",
		strings.Repeat("  ", depth), ev.Name, float64(ev.DurNS)/1e6, attrs)
	children := append([]obs.Event(nil), byParent[ev.Span]...)
	sort.Slice(children, func(i, j int) bool { return children[i].StartNS < children[j].StartNS })
	for _, c := range children {
		printTree(byParent, c, depth+1)
	}
}
