// Netlist: characterising an oscillator entered as a CIRCUIT rather than as
// hand-written state equations, using the mna substrate (the practical form
// of the paper's footnote-1 remark that the theory extends to the circuit /
// MNA formulation).
//
// Two circuits are built element-by-element:
//
//  1. the paper's Figure-1 bandpass + comparator oscillator — its
//     characterisation must agree exactly with the hand-written model;
//  2. a 100-MHz negative-resistance LC VCO with per-resistor thermal noise
//     added automatically.
//
// Run with: go run ./examples/netlist
package main

import (
	"fmt"
	"log"
	"math"

	phasenoise "repro"
	"repro/internal/mna"
	"repro/internal/osc"
)

func main() {
	// --- 1. The paper's bandpass oscillator as a netlist. ----------------
	ref := osc.NewBandpassPaper()
	c := mna.New()
	c.Capacitor("out", mna.Ground, ref.C)
	c.Resistor("out", mna.Ground, ref.R)
	c.Inductor("out", mna.Ground, ref.L)
	c.NonlinearVCCS(mna.Ground, "out", "out", mna.Ground,
		func(v float64) float64 { return ref.Icomp * math.Tanh(v/ref.Vc) },
		func(v float64) float64 {
			s := 1 / math.Cosh(v/ref.Vc)
			return ref.Icomp / ref.Vc * s * s
		})
	c.CurrentNoise("out", mna.Ground, math.Sqrt(ref.SI), "external-source")
	sys, err := c.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := phasenoise.Characterise(sys, []float64{0.1, 0}, 1/6660.0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist bandpass:  f0 = %.3f Hz   c = %.6e s²·Hz\n", res.F0(), res.C)
	fmt.Printf("paper:             f0 = 6660 Hz      c = 7.56e-08 s²·Hz\n\n")

	// --- 2. A VCO netlist with automatic resistor thermal noise. ---------
	f0 := 1e8
	l := 5e-9
	cap := 1 / (math.Pow(2*math.Pi*f0, 2) * l)
	g := 2 * math.Pi * f0 * cap / 8 // Q = 8
	vco := mna.New()
	vco.Capacitor("tank", mna.Ground, cap)
	vco.Inductor("tank", mna.Ground, l)
	vco.Resistor("tank", mna.Ground, 1/g)
	gm, vs := 3*g, 0.2
	vco.NonlinearVCCS(mna.Ground, "tank", "tank", mna.Ground,
		func(v float64) float64 { return gm * vs * math.Tanh(v/vs) },
		func(v float64) float64 { s := 1 / math.Cosh(v/vs); return gm * s * s })
	vco.EnableThermalNoise(300)
	vcoSys, err := vco.Build()
	if err != nil {
		log.Fatal(err)
	}
	vcoRes, err := phasenoise.Characterise(vcoSys, []float64{0.01, 0}, 1/f0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("netlist VCO: f0 = %.4e Hz, c = %.4e s²·Hz\n", vcoRes.F0(), vcoRes.C)
	sp := vcoRes.OutputSpectrum(vcoSys.NodeIndex("tank"), 3)
	for _, fm := range []float64{1e4, 1e5, 1e6} {
		fmt.Printf("  L(%8.0f Hz) = %7.2f dBc/Hz\n", fm, sp.LdBcLorentzian(fm))
	}
}
