// Ringosc: reproduces the paper's second hardware example (Section 10,
// Figure 4) — phase-noise characterisation of a three-stage bipolar ECL
// ring oscillator swept over collector resistance, base resistance and tail
// bias current, plus the per-source noise budget the theory makes possible
// (Eqs. 30–31).
//
// Run with: go run ./examples/ringosc
package main

import (
	"fmt"
	"log"
	"math"

	phasenoise "repro"
	"repro/internal/osc"
)

func characterise(rc, rb, iee float64) (*phasenoise.Result, error) {
	r := osc.NewECLRingPaper()
	r.Rc, r.Rb, r.IEE = rc, rb, iee
	T, x0, err := phasenoise.EstimatePeriod(r, r.InitialState(), 300e-9)
	if err != nil {
		return nil, err
	}
	return phasenoise.Characterise(r, x0, T, nil)
}

func main() {
	// Figure 4(a): the six designs of the paper's table.
	params := []struct{ rc, rb, iee float64 }{
		{500, 58, 331e-6}, {2000, 58, 331e-6}, {500, 1650, 331e-6},
		{500, 58, 450e-6}, {500, 58, 600e-6}, {500, 58, 715e-6},
	}
	fmt.Println("Figure 4(a):  Rc(Ω)   rb(Ω)  IEE(µA)   f0(MHz)    c(s²·Hz)")
	var fomRows []string
	for _, p := range params {
		res, err := characterise(p.rc, p.rb, p.iee)
		if err != nil {
			log.Fatalf("Rc=%g rb=%g IEE=%g: %v", p.rc, p.rb, p.iee, err)
		}
		f0 := res.F0()
		fmt.Printf("            %5.0f  %6.0f  %7.0f  %8.2f  %.3e\n",
			p.rc, p.rb, p.iee*1e6, f0/1e6, res.C)
		if p.rc == 500 && p.rb == 58 {
			fomRows = append(fomRows, fmt.Sprintf("            %7.0f   %10.4g",
				p.iee*1e6, math.Pow(2*math.Pi*f0, 2)*res.C))
		}
	}

	// Figure 4(b): (2πf0)²c versus IEE — larger is worse phase noise.
	fmt.Println("\nFigure 4(b):  IEE(µA)   (2π·f0)²·c")
	for _, row := range fomRows {
		fmt.Println(row)
	}
	fmt.Println("the paper (and McNeill/Weigandt) find this monotonically decreasing")
	fmt.Println("in tail current: more bias ⇒ faster slewing ⇒ less jitter.")

	// Per-source budget at the nominal design (Eqs. 30–31): which devices
	// actually set the phase noise?
	res, err := characterise(500, 58, 331e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNoise budget at the nominal point:")
	for _, s := range res.PerSource {
		fmt.Printf("  %-22s %6.2f%%\n", s.Label, 100*s.Fraction)
	}
}
