// Custom: how to characterise YOUR oscillator — implement the five-method
// dynsys.System contract (vector field, Jacobian, noise map) and hand it to
// phasenoise.Characterise.
//
// The model here is a cross-coupled negative-resistance LC oscillator (the
// canonical integrated VCO core): a parallel LC tank whose loss G is
// overcome by a saturating cross-coupled transconductor −Gm·tanh(v/Vs),
// with tank thermal noise and transconductor shot-like noise.
//
// The program also shows the Section-4 demonstration: why plain linearised
// (LTV) analysis is inconsistent for oscillators — its variance grows
// without bound along the orbit.
//
// Run with: go run ./examples/custom
package main

import (
	"fmt"
	"log"
	"math"

	phasenoise "repro"
	"repro/internal/baseline"
	"repro/internal/dynsys"
)

// NegResLC is a parallel RLC tank with a cross-coupled −Gm cell:
//
//	C·dv/dt  = −G·v − iL + Gm·Vs·tanh(v/Vs)·(−1)·(−1)  (net negative conductance)
//	L·diL/dt = v
type NegResLC struct {
	L, C, G     float64 // tank
	Gm, Vs      float64 // cross-coupled pair: small-signal gm and saturation
	TankNoise   float64 // √(2kT·G) current noise column
	ActiveNoise float64 // transconductor noise current column
}

// Dim implements dynsys.System.
func (o *NegResLC) Dim() int { return 2 }

// Eval implements dynsys.System.
func (o *NegResLC) Eval(x, dst []float64) {
	v, il := x[0], x[1]
	dst[0] = (-o.G*v - il + o.Gm*o.Vs*math.Tanh(v/o.Vs)) / o.C
	dst[1] = v / o.L
}

// Jacobian implements dynsys.System.
func (o *NegResLC) Jacobian(x []float64, dst []float64) {
	sech := 1 / math.Cosh(x[0]/o.Vs)
	dst[0] = (-o.G + o.Gm*sech*sech) / o.C
	dst[1] = -1 / o.C
	dst[2] = 1 / o.L
	dst[3] = 0
}

// NumNoise implements dynsys.System.
func (o *NegResLC) NumNoise() int { return 2 }

// Noise implements dynsys.System: both sources inject current into the tank.
func (o *NegResLC) Noise(x []float64, dst []float64) {
	dst[0], dst[1] = o.TankNoise/o.C, o.ActiveNoise/o.C
	dst[2], dst[3] = 0, 0
}

// NoiseLabels implements dynsys.System.
func (o *NegResLC) NoiseLabels() []string { return []string{"tank-loss", "active-device"} }

func main() {
	// A 2.4-GHz tank: L = 2 nH, C chosen for resonance, Q ≈ 10.
	f0 := 2.4e9
	l := 2e-9
	cap := 1 / (math.Pow(2*math.Pi*f0, 2) * l)
	g := 2 * math.Pi * f0 * cap / 10 // Q = ω0·C/G = 10
	oscillator := &NegResLC{
		L: l, C: cap, G: g,
		Gm: 3 * g, Vs: 0.15, // 3× startup margin, ±150 mV soft clipping
		TankNoise:   dynsys.ThermalCurrentNoise(1/g, dynsys.RoomTempK),
		ActiveNoise: 2 * dynsys.ThermalCurrentNoise(1/g, dynsys.RoomTempK), // excess factor
	}

	res, err := phasenoise.Characterise(oscillator, []float64{0.01, 0}, 1/f0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	sp := res.OutputSpectrum(0, 3)
	fmt.Println("\nVCO phase noise:")
	for _, fm := range []float64{1e3, 1e4, 1e5, 1e6} {
		fmt.Printf("  L(%8.0f Hz) = %7.2f dBc/Hz\n", fm, sp.LdBcLorentzian(fm))
	}

	// Section-4 demonstration: LTV covariance propagation about the orbit.
	// The tangent (phase) variance grows linearly forever — the linearised
	// "small deviation" assumption destroys itself — while the transverse
	// (amplitude) variance saturates, exactly as Remark 5.2 predicts for
	// the orbital deviation y(t).
	g4 := baseline.LTVCovariance(oscillator, res.PSS, 24, 300)
	fmt.Println("\nSection-4 demo — linearised (LTV) covariance about the orbit:")
	fmt.Println("  periods   tangent var     transverse var")
	for _, k := range []int{1, 4, 8, 16, 24} {
		fmt.Printf("  %-8d  %.4e     %.4e\n", k, g4.TangentVar[k], g4.TransVar[k])
	}
	fmt.Printf("tangent slope %.3e (grows without bound); transverse saturation %.2f\n",
		g4.TangentSlope(), g4.TransverseSaturation())
}
