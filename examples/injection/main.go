// Injection: the deterministic side of the theory (paper Section 5).
//
// The exact nonlinear phase equation (Eq. 9) is solved for known,
// deterministic perturbations b(t) and compared against brute-force
// simulation of the perturbed oscillator:
//
//  1. Theorem 5.1 verification — the perturbed solution z(t) equals
//     xs(t+α(t)) + y(t) with α from Eq. 9 and the orbital deviation y from
//     the full Floquet basis (Eq. 12), to second order in ‖b‖;
//  2. resonant injection — a tone at the oscillation frequency produces a
//     steady phase drift (frequency pulling), while an off-resonance tone
//     only causes bounded phase beating.
//
// Run with: go run ./examples/injection
package main

import (
	"fmt"
	"log"
	"math"

	phasenoise "repro"
	"repro/internal/floquet"
	"repro/internal/linalg"
	"repro/internal/osc"
)

func main() {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 1} // B = identity
	res, err := phasenoise.Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	full, err := floquet.AnalyzeFull(h, res.PSS, 3000)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. Theorem 5.1: z(t) = xs(t+α(t)) + y(t) + O(‖b‖²). -----------
	eps := 1e-3
	bfun := func(t float64) []float64 {
		return []float64{eps * math.Cos(3*t), eps * math.Sin(5*t)}
	}
	t1 := 4 * res.T()
	nsteps := 8000
	z := res.PerturbedSolution(h, bfun, t1, nsteps)
	alpha := res.SolvePhaseODE(h, bfun, t1, nsteps)

	fmt.Println("Theorem 5.1: ‖z(t) − (xs(t+α)+y)‖ vs ‖z(t) − xs(t)‖ (naive)")
	zb := make([]float64, 2)
	xb := make([]float64, 2)
	nb := make([]float64, 2)
	for _, frac := range []float64{1, 2, 4} {
		tt := frac * res.T()
		k := int(frac / 4 * float64(nsteps))
		z.At(tt, zb)
		res.PhaseShiftedOrbit(tt, alpha[k], xb)
		y := full.OrbitalDeviation(h, res.PSS, bfun, tt, 4000)
		recon := linalg.AddVec(xb, y)
		res.PhaseShiftedOrbit(tt, 0, nb) // unperturbed xs(t)
		fmt.Printf("  t = %gT:  decomposition %.3e   naive %.3e   (ε = %g)\n",
			frac, linalg.Norm2(linalg.SubVec(zb, recon)),
			linalg.Norm2(linalg.SubVec(zb, nb)), eps)
	}

	// --- 2. Resonant vs off-resonant injection. --------------------------
	hy := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 1, YOnly: true}
	resy, err := phasenoise.Characterise(hy, []float64{1, 0}, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	inj := func(fInj float64) float64 {
		b := func(t float64) []float64 {
			return []float64{1e-4 * math.Cos(2*math.Pi*fInj*t)}
		}
		a := resy.SolvePhaseODE(hy, b, 20*resy.T(), 20000)
		return a[len(a)-1] / (20 * resy.T())
	}
	fmt.Println("\nInjection at frequency f → mean phase drift dα/dt:")
	for _, f := range []float64{1.0, 1.5, 2.5} {
		fmt.Printf("  f = %.1f·f0:  drift %.3e s/s\n", f, inj(f))
	}
	fmt.Println("only the resonant tone produces a secular drift (frequency pulling);")
	fmt.Println("off-resonance the phase merely beats and stays bounded.")
}
