// Bandpass: reproduces the paper's first hardware example (Section 10,
// Figures 2 and 3) — the Tow-Thomas band-pass-filter + comparator
// oscillator at Q = 1, f0 = 6.66 kHz with a dominant external white-noise
// source.
//
// The program prints the characterisation (c should land on the paper's
// 7.56e−8 s²·Hz), the Lorentzian PSD near the first two harmonics
// (Figure 2(a)) and the two L(f_m) approximations bracketing the corner
// frequency (Figure 3).
//
// Run with: go run ./examples/bandpass
package main

import (
	"fmt"
	"log"

	phasenoise "repro"
	"repro/internal/osc"
)

func main() {
	b := osc.NewBandpassPaper()
	fmt.Printf("tank: R=%.1f Ω  L=%.4g H  C=%.4g F  (Q=%.3g, linear f0=%.1f Hz)\n",
		b.R, b.L, b.C, b.Q(), b.F0Linear())

	res, err := phasenoise.Characterise(b, []float64{0.1, 0}, 1/6660.0, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())
	fmt.Printf("paper:  c = 7.56e-08 s²·Hz at f0 = 6.66 kHz, corner 10.56 Hz\n\n")

	sp := res.OutputSpectrum(0, 4)

	// Figure 2(a): the PSD is finite at every harmonic — no delta functions.
	fmt.Println("PSD around the first two harmonics (Eq. 24):")
	f0 := res.F0()
	for _, f := range []float64{f0 - 100, f0 - 10, f0, f0 + 10, f0 + 100, 2*f0 - 10, 2 * f0, 2*f0 + 10} {
		fmt.Printf("  Sss(%9.1f Hz) = %.4e V²/Hz\n", f, sp.SSB(f))
	}

	// Figure 3: Eq. 27 vs Eq. 28 across the corner.
	fc := res.CornerFreq()
	fmt.Printf("\nL(f_m): Lorentzian (Eq. 27) vs 1/f² (Eq. 28); corner fc = %.2f Hz\n", fc)
	for _, fm := range []float64{0.1, 1, fc, 100, 1000, 3000} {
		fmt.Printf("  f_m = %8.2f Hz:  %8.2f dBc/Hz   vs %8.2f dBc/Hz\n",
			fm, sp.LdBcLorentzian(fm), sp.LdBcInvSquare(fm))
	}
	fmt.Println("\nnote how Eq. 28 blows up below the corner while Eq. 27 saturates —")
	fmt.Println("the key qualitative fix of the Lorentzian theory.")
}
