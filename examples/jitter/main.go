// Jitter: demonstrates that the timing jitter of a free-running oscillator
// grows with exactly linear variance, Var[t_k] = c·k·T (paper Section 8;
// observed experimentally by McNeill on ring oscillators).
//
// Two independent Monte-Carlo measurements are compared against the same
// Floquet-computed c:
//
//  1. the exact nonlinear phase SDE (paper Eq. 9) simulated directly, and
//  2. the full nonlinear oscillator SDE with threshold-crossing extraction,
//     emulating a sampling oscilloscope triggered on the first edge.
//
// Run with: go run ./examples/jitter
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	phasenoise "repro"
	"repro/internal/osc"
	"repro/internal/sde"
	"repro/internal/stochproc"
)

func main() {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02} // T = 1 s
	res, err := phasenoise.Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theory: c = %.4e s²·Hz ⇒ Var[t_k] = %.4e · k\n\n", res.C, res.C*res.T())

	// --- Measurement 1: the exact phase SDE (Eq. 9). -------------------
	phase := res.PhaseSDE(h)
	nPaths, periods := 600, 64
	dt := res.T() / 64
	steps := periods * 64
	fmt.Println("phase-SDE Monte Carlo (Eq. 9):")
	fmt.Println("  k    Var[α(kT)]      theory ckT     Gaussian?")
	samples := map[int][]float64{}
	for p := 0; p < nPaths; p++ {
		rng := rand.New(rand.NewSource(int64(100 + p)))
		path := sde.EulerMaruyama(phase, []float64{0}, 0, dt, steps, 64, rng)
		for _, k := range []int{8, 16, 32, 64} {
			samples[k] = append(samples[k], path.X[k][0])
		}
	}
	for _, k := range []int{8, 16, 32, 64} {
		m := stochproc.SampleMoments(samples[k])
		fmt.Printf("  %-4d %.4e    %.4e    %v (skew %+.2f, ex.kurt %+.2f)\n",
			k, m.Variance, res.C*float64(k)*res.T(), m.IsGaussianish(4),
			m.Skewness, m.ExcessKurtosis)
	}

	// --- Measurement 2: full SDE + crossing extraction. -----------------
	full := sde.System{
		Dim: 2, NumNoise: h.NumNoise(),
		Drift: func(t float64, x, dst []float64) { h.Eval(x, dst) },
		Diff:  func(t float64, x []float64, dst []float64) { h.Noise(x, dst) },
	}
	cfg := sde.EnsembleConfig{Paths: 300, Steps: 40 * 600, Stride: 1, Seed: 7, Dt: res.T() / 600}
	ens := sde.Ensemble(full, res.PSS.X0, cfg)
	signals := make([][]float64, len(ens))
	for i, p := range ens {
		signals[i] = p.Component(0)
	}
	jg, err := stochproc.EnsembleJitter(signals, 0, cfg.Dt, 0)
	if err != nil {
		log.Fatal(err)
	}
	slope := jg.Slope()
	fmt.Printf("\nfull-SDE crossing jitter: slope of Var[t_k] vs t̄_k = %.4e\n", slope)
	fmt.Printf("theory c                                          = %.4e\n", res.C)
	fmt.Printf("relative error %.1f%%\n", 100*math.Abs(slope-res.C)/res.C)
}
