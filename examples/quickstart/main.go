// Quickstart: characterise the phase noise of an oscillator in ~40 lines.
//
// The model is the Hopf normal form — the simplest oscillator with an
// exactly known answer (c = σ²/ω²) — so you can verify the pipeline's
// output against the closed form printed at the end.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	phasenoise "repro"
	"repro/internal/osc"
)

func main() {
	// A 1-MHz oscillator with weak white noise on both state equations.
	oscillator := &osc.Hopf{
		Lambda: 1e6,               // radial relaxation rate (1/s)
		Omega:  2 * math.Pi * 1e6, // 1 MHz
		Sigma:  0.5,               // noise intensity
	}

	// One call: shooting → Floquet → c and all figures of merit.
	res, err := phasenoise.Characterise(oscillator, []float64{1, 0}, 1e-6, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report())

	// The Lorentzian output spectrum and single-sideband phase noise.
	sp := res.OutputSpectrum(0, 4)
	fmt.Printf("\nSingle-sideband phase noise:\n")
	for _, fm := range []float64{1e2, 1e3, 1e4, 1e5} {
		fmt.Printf("  L(%8.0f Hz) = %7.2f dBc/Hz\n", fm, sp.LdBcLorentzian(fm))
	}

	// Ground truth for this model.
	fmt.Printf("\nclosed-form c = σ²/ω² = %.6e s²·Hz (computed %.6e)\n",
		oscillator.ExactC(), res.C)
}
