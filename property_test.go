package phasenoise

// Repository-level property tests: the pipeline's invariants must hold over
// randomly drawn oscillator parameters, not just the hand-picked fixtures.

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/osc"
)

// Property: for any (λ, ω, σ) the computed c matches the Hopf closed form.
func TestQuickHopfGroundTruthSweep(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := &osc.Hopf{
			Lambda: 0.3 + 3*rng.Float64(),
			Omega:  0.5 + 20*rng.Float64(),
			Sigma:  0.01 + 0.2*rng.Float64(),
			YOnly:  rng.Intn(2) == 0,
		}
		res, err := Characterise(h, []float64{1, 0.1}, h.Period()*(0.8+0.4*rng.Float64()), nil)
		if err != nil {
			return false
		}
		return math.Abs(res.C-h.ExactC()) < 1e-5*h.ExactC() &&
			math.Abs(res.T()-h.Period()) < 1e-8*h.Period()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: c is invariant under time-translation of the initial guess —
// wherever on (or near) the cycle shooting starts, the same c comes out.
func TestQuickPhaseReferenceInvariance(t *testing.T) {
	v := &osc.VanDerPol{Mu: 1.2, Sigma: 0.03}
	ref, err := Characterise(v, []float64{2, 0}, 6.8, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random point near the orbit at a random phase.
		buf := make([]float64, 2)
		ref.PSS.Orbit.At(rng.Float64()*ref.T(), buf)
		buf[0] += 0.1 * rng.NormFloat64()
		buf[1] += 0.1 * rng.NormFloat64()
		res, err := Characterise(v, buf, ref.T()*(0.9+0.2*rng.Float64()), nil)
		if err != nil {
			return false
		}
		return math.Abs(res.C-ref.C) < 1e-7*ref.C
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: noise-power linearity — scaling every noise column by g scales
// c by exactly g², for any oscillator in the zoo.
func TestQuickNoisePowerLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := 0.5 + 2*rng.Float64()
		v1 := &osc.VanDerPol{Mu: 0.5 + rng.Float64(), Sigma: 0.02}
		v2 := &osc.VanDerPol{Mu: v1.Mu, Sigma: v1.Sigma * g}
		r1, err1 := Characterise(v1, []float64{2, 0}, 6.5, nil)
		r2, err2 := Characterise(v2, []float64{2, 0}, 6.5, nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r2.C-g*g*r1.C) < 1e-8*r2.C
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: time-rescaling covariance. Scaling the Hopf frequency by k at
// fixed noise rescales the period by 1/k and c by 1/k² (dimensional
// analysis of Eq. 29: v1 carries 1/ω).
func TestQuickTimeRescaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + 4*rng.Float64()
		base := &osc.Hopf{Lambda: 1, Omega: 3, Sigma: 0.05}
		fast := &osc.Hopf{Lambda: 1, Omega: 3 * k, Sigma: 0.05}
		r1, err1 := Characterise(base, []float64{1, 0}, base.Period(), nil)
		r2, err2 := Characterise(fast, []float64{1, 0}, fast.Period(), nil)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r2.T()-r1.T()/k) < 1e-8*r1.T() &&
			math.Abs(r2.C-r1.C/(k*k)) < 1e-6*r1.C
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: the per-source decomposition always sums to c, and every
// sensitivity is non-negative, across random ring designs.
func TestQuickRingBudgetClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := osc.NewECLRingPaper()
		r.Rc = 300 + 500*rng.Float64()
		r.IEE = (250 + 300*rng.Float64()) * 1e-6
		T, x0, err := EstimatePeriod(r, r.InitialState(), 300e-9)
		if err != nil {
			return false
		}
		res, err := Characterise(r, x0, T, nil)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, s := range res.PerSource {
			if s.C < 0 {
				return false
			}
			sum += s.C
		}
		for _, cs := range res.Sensitivity {
			if cs < 0 {
				return false
			}
		}
		return math.Abs(sum-res.C) < 1e-9*res.C
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
