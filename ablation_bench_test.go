package phasenoise

// Ablation benchmarks for the design choices DESIGN.md calls out: the c
// quadrature resolution, the adjoint integration step count, the
// harmonic-balance collocation size, and the frequency-domain route as an
// alternative to the Section-9 time-domain route.

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/floquet"
	"repro/internal/hb"
	"repro/internal/osc"
	"repro/internal/shooting"
)

func hopfPSS(b *testing.B) (*osc.Hopf, *shooting.PSS, *floquet.Decomposition) {
	b.Helper()
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	dec, err := floquet.Analyze(h, pss, nil)
	if err != nil {
		b.Fatal(err)
	}
	return h, pss, dec
}

// Quadrature ablation: the periodic trapezoid rule converges spectrally, so
// 256 points should match 4096 to ~machine precision at ~16× less work.
func BenchmarkAblationQuadrature256(b *testing.B) {
	h, pss, dec := hopfPSS(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FromDecomposition(h, pss, dec, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationQuadrature4096(b *testing.B) {
	h, pss, dec := hopfPSS(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FromDecomposition(h, pss, dec, 4096); err != nil {
			b.Fatal(err)
		}
	}
}

// Adjoint-steps ablation: v1(t) accuracy vs cost of the backward RK4 pass.
func BenchmarkAblationAdjointSteps1k(b *testing.B) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := floquet.Analyze(h, pss, &floquet.Options{Steps: 1000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAdjointSteps16k(b *testing.B) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := floquet.Analyze(h, pss, &floquet.Options{Steps: 16000}); err != nil {
			b.Fatal(err)
		}
	}
}

// Frequency-domain (footnote 11) vs time-domain (Section 9) route for c on
// the same oscillator: run each end to end.
func BenchmarkAblationRouteTimeDomain(b *testing.B) {
	v := &osc.VanDerPol{Mu: 1, Sigma: 0.02}
	for i := 0; i < b.N; i++ {
		if _, err := core.Characterise(v, []float64{2, 0}, 6.7, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRouteFreqDomain(b *testing.B) {
	v := &osc.VanDerPol{Mu: 1, Sigma: 0.02}
	pss, err := shooting.Find(v, []float64{2, 0}, 6.7, nil)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]float64, 2)
	guess := func(tt float64) []float64 {
		pss.Orbit.At(math.Mod(tt, pss.T), buf)
		return append([]float64(nil), buf...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := hb.Solve(v, guess, pss.Omega0(), &hb.Options{N: 128})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sol.C(v); err != nil {
			b.Fatal(err)
		}
	}
}

// HB collocation-size ablation.
func BenchmarkAblationHBCollocation64(b *testing.B)  { benchHBN(b, 64) }
func BenchmarkAblationHBCollocation256(b *testing.B) { benchHBN(b, 256) }

func benchHBN(b *testing.B, n int) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	guess := func(tt float64) []float64 {
		return []float64{math.Cos(2 * math.Pi * tt), math.Sin(2 * math.Pi * tt)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hb.Solve(h, guess, 2*math.Pi, &hb.Options{N: n}); err != nil {
			b.Fatal(err)
		}
	}
}
