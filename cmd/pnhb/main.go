// Command pnhb cross-validates the two independent numerical routes to the
// phase-diffusion constant c that the paper describes: the Section-9
// time-domain method (shooting + monodromy + backward adjoint) and the
// footnote-11 frequency-domain method (harmonic-balance collocation + the
// adjoint operator's null vector). Agreement of the two is a strong
// end-to-end consistency check of both implementations.
//
//	pnhb [-osc hopf|vanderpol|negres] [-n 128]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/hb"
	"repro/internal/osc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnhb: ")
	oscName := flag.String("osc", "vanderpol", "oscillator: hopf, vanderpol, negres")
	n := flag.Int("n", 128, "harmonic-balance collocation points")
	flag.Parse()

	var (
		sys    dynsys.System
		x0     []float64
		tGuess float64
	)
	switch *oscName {
	case "hopf":
		h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi * 1e3, Sigma: 0.05}
		sys, x0, tGuess = h, []float64{1, 0}, h.Period()
	case "vanderpol":
		sys, x0, tGuess = &osc.VanDerPol{Mu: 1, Sigma: 0.02}, []float64{2, 0}, 6.7
	case "negres":
		v := osc.NewNegResLC(1e8, 5e-9, 8, 3, 0.2, 300, 2)
		sys, x0, tGuess = v, []float64{0.01, 0}, 1e-8
	default:
		log.Fatalf("unknown oscillator %q", *oscName)
	}

	// Time-domain route.
	res, err := core.Characterise(sys, x0, tGuess, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-domain  : f0 = %.8e Hz   c = %.8e s²·Hz\n", res.F0(), res.C)

	// Frequency-domain route, seeded by the time-domain orbit.
	buf := make([]float64, sys.Dim())
	guess := func(tt float64) []float64 {
		res.PSS.Orbit.At(math.Mod(tt, res.T()), buf)
		return append([]float64(nil), buf...)
	}
	sol, err := hb.Solve(sys, guess, res.PSS.Omega0(), &hb.Options{N: *n})
	if err != nil {
		log.Fatal(err)
	}
	cHB, err := sol.C(sys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("freq-domain  : f0 = %.8e Hz   c = %.8e s²·Hz   (N = %d, %d Newton iters)\n",
		sol.F0(), cHB, sol.N, sol.Iters)
	fmt.Printf("agreement    : Δf0/f0 = %.2e   Δc/c = %.2e\n",
		math.Abs(sol.F0()-res.F0())/res.F0(), math.Abs(cHB-res.C)/res.C)
}
