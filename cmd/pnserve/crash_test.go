package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// jobView is the slice of serve.JobStatus this test reads; decoding into a
// local struct keeps the test on the public wire format, exactly as an
// external client would be.
type jobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Points int    `json:"points"`
	Done   int    `json:"done_points"`
	Cached int    `json:"cached_points"`
	Failed int    `json:"failed_points"`
}

// TestCrashRecoveryE2E is the headline durability test, end to end over real
// processes: build pnserve, start it with a journal and a disk cache, submit
// a sweep, SIGKILL the server mid-job, restart it on the same directories,
// and watch the job finish — with the pre-kill points served from the cache
// (zero recomputation, asserted through /metrics) and the client's resubmit
// deduplicated onto the recovered job by its Idempotency-Key.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes; skipped in -short")
	}

	work := t.TempDir()
	bin := filepath.Join(work, "pnserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pnserve: %v\n%s", err, out)
	}
	journalDir := filepath.Join(work, "journal")
	cacheDir := filepath.Join(work, "cache")

	listenRE := regexp.MustCompile(`listening on (\S+)`)
	start := func() (*exec.Cmd, string) {
		cmd := exec.Command(bin,
			"-addr", "127.0.0.1:0", "-workers", "1",
			"-journal-dir", journalDir, "-cache-dir", cacheDir)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			if cmd.Process != nil {
				_ = cmd.Process.Kill()
			}
			_ = cmd.Wait()
		})
		// The server prints its resolved address (the kernel picked the port)
		// on the first stderr line; keep draining the pipe afterwards so the
		// child never blocks on a full pipe buffer.
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
				go func() {
					for sc.Scan() {
					}
				}()
				return cmd, "http://" + m[1]
			}
		}
		t.Fatalf("pnserve never reported its listen address (stderr closed: %v)", sc.Err())
		return nil, ""
	}

	waitCode := func(base, path string, code int) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := http.Get(base + path)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == code {
					return
				}
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("%s never answered %d", path, code)
	}
	getJob := func(base, id string) jobView {
		t.Helper()
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v jobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	// The sweep: slow ring points (~100ms each) on one worker, so the kill
	// lands mid-job with a wide margin.
	const n = 8
	var sb strings.Builder
	sb.WriteString(`{"workers":1,"points":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"name":"ring%d","model":"ring","params":{"iee":%g}}`, i, 331e-6*(1+0.001*float64(i)))
	}
	sb.WriteString(`]}`)
	body := sb.String()
	submit := func(base string) (*http.Response, jobView) {
		t.Helper()
		req, err := http.NewRequest("POST", base+"/v1/sweep", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", "e2e-crash-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v jobView
		_ = json.NewDecoder(resp.Body).Decode(&v)
		return resp, v
	}

	// Phase 1: start, submit, let some points finish, SIGKILL.
	cmd1, base1 := start()
	waitCode(base1, "/readyz", http.StatusOK)
	resp, job := submit(base1)
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, job)
	}
	var preKill jobView
	deadline := time.Now().Add(60 * time.Second)
	for {
		preKill = getJob(base1, job.ID)
		if preKill.Done >= 2 {
			break
		}
		if preKill.State != "queued" && preKill.State != "running" {
			t.Fatalf("job finished before the kill: %+v (sweep too fast for this test)", preKill)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", preKill)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cmd1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = cmd1.Wait()

	// Phase 2: restart on the same directories. The client resubmits (its
	// 202 could have been lost in the crash); the Idempotency-Key maps it
	// onto the recovered job instead of queueing a duplicate.
	_, base2 := start()
	waitCode(base2, "/readyz", http.StatusOK)
	resp2, job2 := submit(base2)
	if resp2.StatusCode != http.StatusOK || job2.ID != job.ID {
		t.Fatalf("post-crash resubmit: %d id=%q (want 200 replay of %s)", resp2.StatusCode, job2.ID, job.ID)
	}
	if resp2.Header.Get("Idempotent-Replay") != "true" {
		t.Fatal("post-crash resubmit missing Idempotent-Replay header")
	}

	var final jobView
	deadline = time.Now().Add(120 * time.Second)
	for {
		final = getJob(base2, job.ID)
		if final.State == "done" || final.State == "failed" || final.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job never finished: %+v", final)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.State != "done" || final.Done != n || final.Failed != 0 {
		t.Fatalf("recovered job: %+v", final)
	}
	// Every point computed before the kill must come back as a cache hit.
	if final.Cached < preKill.Done {
		t.Fatalf("recovered job cached %d points, want >= the %d done before the kill", final.Cached, preKill.Done)
	}

	// Zero recomputation, from the restarted process's own metrics: it ran
	// the pipeline exactly once per non-cached point.
	mresp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	okRE := regexp.MustCompile(`pn_core_characterisations_total\{outcome="ok"\} (\d+)`)
	m := okRE.FindSubmatch(mbody)
	if m == nil {
		t.Fatalf("pn_core_characterisations_total{outcome=\"ok\"} missing from /metrics:\n%s", mbody)
	}
	ran, err := strconv.Atoi(string(m[1]))
	if err != nil {
		t.Fatal(err)
	}
	if want := n - final.Cached; ran != want {
		t.Fatalf("restarted server ran the pipeline %d times, want %d (= %d points - %d cached)", ran, want, n, final.Cached)
	}
	if !bytes.Contains(mbody, []byte(`pn_serve_jobs_recovered_total{outcome="resumed"} 1`)) {
		t.Fatalf("recovered{resumed} metric missing:\n%s", mbody)
	}

	// The loss-free payload crossed the crash too: the spill file next to the
	// WAL kept every pre-kill point, the resumed run appended the rest, and
	// the streaming download serves all of them from the restarted process.
	jresp, err := http.Get(base2 + "/v1/jobs/" + job.ID + "/results.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	if jresp.StatusCode != http.StatusOK {
		t.Fatalf("results.jsonl after crash recovery: %d", jresp.StatusCode)
	}
	seen := make(map[int]bool)
	jsc := bufio.NewScanner(jresp.Body)
	jsc.Buffer(make([]byte, 0, 64*1024), 1<<26)
	for jsc.Scan() {
		if len(jsc.Bytes()) == 0 {
			continue
		}
		var res struct {
			Index int             `json:"index"`
			Name  string          `json:"name"`
			Res   json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(jsc.Bytes(), &res); err != nil {
			t.Fatalf("undecodable jsonl line: %v", err)
		}
		if res.Res == nil {
			t.Fatalf("point %d (%s) streamed without its loss-free result", res.Index, res.Name)
		}
		seen[res.Index] = true
	}
	if err := jsc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("results.jsonl after crash: %d distinct points, want %d", len(seen), n)
	}

	// And the paginated window works across the restart as well.
	presp, err := http.Get(base2 + "/v1/jobs/" + job.ID + "/results?offset=0&limit=3")
	if err != nil {
		t.Fatal(err)
	}
	var page struct {
		Total      int               `json:"total"`
		Spilled    int               `json:"spilled"`
		NextOffset *int              `json:"next_offset"`
		Results    []json.RawMessage `json:"results"`
	}
	err = json.NewDecoder(presp.Body).Decode(&page)
	presp.Body.Close()
	if err != nil || presp.StatusCode != http.StatusOK {
		t.Fatalf("paginated results after crash: %d, %v", presp.StatusCode, err)
	}
	if page.Total != n || page.Spilled != n || len(page.Results) != 3 || page.NextOffset == nil || *page.NextOffset != 3 {
		t.Fatalf("paginated window after crash: total=%d spilled=%d len=%d next=%v", page.Total, page.Spilled, len(page.Results), page.NextOffset)
	}
}
