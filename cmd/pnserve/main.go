// Command pnserve runs the characterisation-as-a-service job server: an HTTP
// JSON API (internal/serve) that characterises registered oscillator models —
// single points or parameter sweeps — on a bounded worker pool, in front of
// the content-addressed result cache (internal/cache).
//
// Usage:
//
//	pnserve [-addr :8080] [-workers n] [-queue n]
//	        [-cache-dir dir] [-cache-mem bytes] [-journal-dir dir]
//	        [-coordinator url,url,...] [-lease-ttl d] [-lease-points n]
//	        [-job-timeout d] [-drain-timeout d] [-lane-grant n]
//	        [-tenant-rate r] [-tenant-burst n] [-tenant-inflight n]
//	        [-tenant-quotas name=rate:burst:inflight:weight,...]
//	        [-debug-addr :6060] [-cpuprofile f] [-memprofile f] [-trace-out f]
//
// The API surface (see internal/serve for details):
//
//	POST /v1/characterise          {"model":"hopf","params":{...}}       → job
//	POST /v1/sweep                 {"points":[...],"workers":4}          → job
//	GET  /v1/jobs/{id}             job status (+?full=1 for full results)
//	GET  /v1/jobs/{id}/results     loss-free results, paginated (?offset=&limit=)
//	GET  /v1/jobs/{id}/results.jsonl  loss-free results as a JSONL stream
//	GET  /v1/jobs/{id}/events      live progress as Server-Sent Events
//	GET  /v1/jobs/{id}/trace       the job's distributed trace timeline (+?format=jsonl for raw events)
//	POST /v1/jobs/{id}/cancel      cancel a queued or running job
//	GET  /v1/cluster/status        live fleet view (workers, breakers, leases, queue depth)
//	GET  /v1/models                registered models and their defaults
//	GET  /healthz                  liveness (always 200)
//	GET  /readyz                   readiness (503 while draining or replaying the journal)
//	GET  /metrics                  Prometheus text metrics (pn_serve_*, pn_cache_*, …)
//	GET  /debug/pprof/             the standard pprof handlers
//
// Submissions may carry an X-PN-Tenant header naming the submitting tenant
// (absent = "default"); -tenant-rate/-tenant-burst/-tenant-inflight set every
// tenant's admission quota, -tenant-quotas overrides individual tenants, and
// the scheduler shares the worker pool across tenants by weight, with
// interactive jobs (characterise, compose) in a strict-priority lane above
// batch sweeps. -lane-grant bounds how many sweep points a batch job runs per
// scheduler grant before it yields its worker.
// -cache-dir persists results across restarts and shares them with pnsweep
// and pnchar runs pointed at the same directory; -cache-mem bounds the
// in-memory tier. -journal-dir makes jobs durable: accepted jobs are
// journaled before the 202 goes out, and a crashed or killed server replays
// the directory on restart — terminal jobs come back queryable, interrupted
// jobs resume with their completed points served from the result cache (pair
// it with -cache-dir, or the resumed job recomputes). SIGINT/SIGTERM drain
// gracefully: intake stops (503), queued and running jobs finish, and after
// -drain-timeout whatever is still running is cancelled through its budget
// token.
//
// -coordinator turns the node into a cluster coordinator (internal/cluster):
// it keeps the full front-door lifecycle — journal, idempotency, SSE — but
// executes sweeps by leasing point ranges to the listed worker nodes (plain
// pnserve instances), heartbeating each lease and reassigning it if a worker
// dies mid-lease. Point the workers and the coordinator at one shared
// -cache-dir volume so a point computed anywhere is a cache hit everywhere —
// that sharing is what makes lease reassignment exactly-once in effect.
// -lease-ttl is the worker-side self-cancel window (a worker orphaned by a
// dead coordinator stops computing after one TTL), -lease-points the lease
// granularity. With -journal-dir set, lease dispatch state is journalled
// under <journal-dir>/leases, so a SIGKILLed coordinator resumes its leases
// on restart instead of re-running them from scratch.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cache"
	"repro/internal/cliobs"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnserve: ")
	// All work happens in run so its defers — profile writers, the trace
	// file, the debug server — run before the process exits.
	os.Exit(run())
}

// parseTenantQuotas parses -tenant-quotas: comma-separated
// name=rate:burst:inflight:weight entries, where trailing fields may be
// omitted and empty fields inherit the -tenant-* defaults.
func parseTenantQuotas(spec string, def serve.TenantConfig) (map[string]serve.TenantConfig, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := make(map[string]serve.TenantConfig)
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		name, quota, ok := strings.Cut(ent, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("-tenant-quotas entry %q: want name=rate:burst:inflight:weight", ent)
		}
		cfg := def
		for i, f := range strings.Split(quota, ":") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("-tenant-quotas entry %q field %d: %v", ent, i+1, err)
			}
			switch i {
			case 0:
				cfg.SubmitRate = v
			case 1:
				cfg.SubmitBurst = int(v)
			case 2:
				cfg.MaxInFlight = int(v)
			case 3:
				cfg.Weight = v
			default:
				return nil, fmt.Errorf("-tenant-quotas entry %q: too many fields", ent)
			}
		}
		out[name] = cfg
	}
	return out, nil
}

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 2, "job worker pool size")
	queue := flag.Int("queue", 16, "queued-job bound (submissions beyond it get 429)")
	cacheDir := flag.String("cache-dir", "", "persist characterisation results in this directory (empty = memory only)")
	cacheMem := flag.Int64("cache-mem", cache.DefaultMaxBytes, "in-memory result cache bound in bytes")
	journalDir := flag.String("journal-dir", "", "journal jobs in this directory and recover them on restart (empty = jobs die with the process)")
	coordinator := flag.String("coordinator", "", "comma-separated worker base URLs: run as a cluster coordinator leasing sweeps to them (empty = execute in process)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "coordinator mode: worker-side lease self-cancel window, renewed by heartbeat")
	leasePoints := flag.Int("lease-points", 0, "coordinator mode: points per lease (0 = default)")
	jobTimeout := flag.Duration("job-timeout", 0, "ceiling on any job's wall clock, on top of per-request timeout_ms (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain grace before in-flight jobs are cancelled")
	laneGrant := flag.Int("lane-grant", 0, "batch-sweep points per scheduler grant before the job yields its worker (0 = default)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant submit rate in jobs/second, applied to every tenant without a -tenant-quotas override (0 = unlimited)")
	tenantBurst := flag.Int("tenant-burst", 0, "per-tenant submit burst on top of -tenant-rate (0 = ceil(rate))")
	tenantInflight := flag.Int("tenant-inflight", 0, "per-tenant cap on accepted-but-unfinished jobs (0 = unlimited)")
	tenantQuotas := flag.String("tenant-quotas", "", "per-tenant overrides, comma-separated name=rate:burst:inflight:weight; empty fields fall back to the -tenant-* defaults")
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()

	stopObs, err := obsFlags.Start()
	if err != nil {
		log.Print(err)
		return 1
	}
	defer stopObs()
	// A server always exposes /metrics, debug flags or not; install the
	// registry if cliobs did not already.
	if !obs.Enabled() {
		obs.SetGlobal(obs.NewRegistry())
	}

	store, err := cache.New(cache.Options{MaxBytes: *cacheMem, Dir: *cacheDir})
	if err != nil {
		log.Print(err)
		return 1
	}

	var runner serve.SweepRunner
	var clusterStatus func() ([]serve.WorkerStatus, []serve.LeaseStatus)
	var workerURLs []string
	if *coordinator != "" {
		for _, u := range strings.Split(*coordinator, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerURLs = append(workerURLs, strings.TrimRight(u, "/"))
			}
		}
		// Lease dispatch state lives in a subdirectory of the job journal so
		// the server's own replay scan never mistakes a lease WAL for a job
		// journal; without -journal-dir, leases are not resumable (same
		// durability contract as the jobs themselves).
		walDir := ""
		if *journalDir != "" {
			walDir = filepath.Join(*journalDir, "leases")
		}
		coord := cluster.New(cluster.Config{
			Workers:     workerURLs,
			LeasePoints: *leasePoints,
			LeaseTTL:    *leaseTTL,
			WALDir:      walDir,
			Cache:       store,
		})
		defer coord.Close()
		runner = coord
		clusterStatus = coord.Status
	}

	tenantDefaults := serve.TenantConfig{
		SubmitRate:  *tenantRate,
		SubmitBurst: *tenantBurst,
		MaxInFlight: *tenantInflight,
	}
	perTenant, err := parseTenantQuotas(*tenantQuotas, tenantDefaults)
	if err != nil {
		log.Print(err)
		return 1
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		Queue:          *queue,
		Cache:          store,
		MaxJobWall:     *jobTimeout,
		JournalDir:     *journalDir,
		Runner:         runner,
		ClusterStatus:  clusterStatus,
		LaneGrant:      *laneGrant,
		TenantDefaults: tenantDefaults,
		Tenants:        perTenant,
	})

	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.Handle("/metrics", obs.MetricsHandler(nil))
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen explicitly (rather than ListenAndServe) so the resolved address
	// is printable: with -addr :0 the kernel picks the port, and harnesses
	// (the crash-recovery e2e test, scripts) parse it from this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Print(err)
		return 1
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	fmt.Fprintf(os.Stderr, "pnserve: listening on %s (%d workers, queue %d, cache-mem %d, cache-dir %q, journal-dir %q, GOMAXPROCS %d)\n",
		ln.Addr(), *workers, *queue, *cacheMem, *cacheDir, *journalDir, runtime.GOMAXPROCS(0))
	if len(workerURLs) > 0 {
		fmt.Fprintf(os.Stderr, "pnserve: coordinator for %d worker nodes (lease-ttl %v): %s\n",
			len(workerURLs), *leaseTTL, strings.Join(workerURLs, " "))
	}

	select {
	case err := <-errc:
		log.Printf("http server: %v", err)
		return 1
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "pnserve: %v — draining (grace %v; signal again to abort)\n", sig, *drainTimeout)
	}
	go func() {
		<-sigc
		os.Exit(130)
	}()

	// Drain order: flip /readyz to 503 first so load balancers, health
	// probers and cluster coordinators route new work away while this node
	// can still answer HTTP; then stop the listener so no submission can
	// slip in after the job queue closes; then drain the job server under
	// the grace.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "pnserve: drain grace expired — cancelled in-flight jobs")
	}
	return 0
}
