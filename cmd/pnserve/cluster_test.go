package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The cluster e2e suite runs the sweep fabric over real processes: plain
// pnserve workers, a pnserve coordinator in front of them, and real SIGKILLs.
// It asserts the two headline robustness stories end to end:
//
//   - worker death mid-lease: the lease is reassigned and the sweep completes
//     with no cached point recomputed (TestClusterWorkerSIGKILLE2E);
//   - coordinator death mid-sweep: the restarted coordinator replays its
//     journalled lease state and resumes without any client intervention,
//     with every point characterised exactly once fleet-wide
//     (TestClusterCoordinatorRestartE2E).

var listenLine = regexp.MustCompile(`listening on (\S+)`)

// buildServer compiles pnserve into dir and returns the binary path.
func buildServer(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "pnserve")
	args := []string{"build", "-o", bin}
	if raceEnabled {
		args = append(args, "-race") // the whole fleet runs under the detector
	}
	if out, err := exec.Command("go", append(args, ".")...).CombinedOutput(); err != nil {
		t.Fatalf("building pnserve: %v\n%s", err, out)
	}
	return bin
}

// startServer launches one pnserve with the given extra flags and returns the
// process and its base URL (parsed from the stderr banner; the kernel picks
// the port). The stderr pipe keeps draining in the background so the child
// never blocks on it.
func startServer(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
		_ = cmd.Wait()
	})
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if m := listenLine.FindStringSubmatch(sc.Text()); m != nil {
			go func() {
				for sc.Scan() {
				}
			}()
			return cmd, "http://" + m[1]
		}
	}
	t.Fatalf("pnserve never reported its listen address (stderr closed: %v)", sc.Err())
	return nil, ""
}

// clusterJobView is the slice of the job status these tests read off the wire.
type clusterJobView struct {
	ID     string `json:"id"`
	State  string `json:"state"`
	Done   int    `json:"done_points"`
	Cached int    `json:"cached_points"`
	Failed int    `json:"failed_points"`
}

func clusterGetJob(t *testing.T, base, id string) clusterJobView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v clusterJobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func clusterWaitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never became ready", base)
}

// clusterSweepBody builds an n-point ring sweep (~100ms+ per point, so kills
// land mid-job) with per-point parameter salt so every point is distinct.
func clusterSweepBody(n int, salt float64) string {
	var sb strings.Builder
	sb.WriteString(`{"workers":1,"points":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"name":"ring%d","model":"ring","params":{"iee":%g}}`, i, 331e-6*(1+0.001*(salt+float64(i))))
	}
	sb.WriteString(`]}`)
	return sb.String()
}

func clusterSubmit(t *testing.T, base, idemKey, body string) clusterJobView {
	t.Helper()
	req, err := http.NewRequest("POST", base+"/v1/sweep", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Idempotency-Key", idemKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var v clusterJobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// metricValue scrapes one counter (with an optional label selector, passed
// verbatim) from a live server's /metrics; absent counters read as 0.
func metricValue(t *testing.T, base, name string) int {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	re := regexp.MustCompile(regexp.QuoteMeta(name) + ` (\d+)`)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if m := re.FindStringSubmatch(sc.Text()); m != nil {
			n, err := strconv.Atoi(m[1])
			if err != nil {
				t.Fatal(err)
			}
			return n
		}
	}
	return 0
}

// countCacheEntries counts the committed result files in a shared cache
// volume (entries land by atomic rename, so the count is a consistent
// snapshot).
func countCacheEntries(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// healthRunning reports how many jobs a node says it is running.
func healthRunning(t *testing.T, base string) int {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var h struct {
		Running int `json:"running"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&h)
	return h.Running
}

// TestClusterWorkerSIGKILLE2E: two worker nodes and a coordinator over a
// shared cache volume; the worker holding an active lease is SIGKILLed
// mid-sweep. The lease must be reassigned (to the surviving worker or the
// coordinator's in-process fallback), the sweep must complete cleanly, and no
// point that reached the shared cache before the kill may be recomputed.
func TestClusterWorkerSIGKILLE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes; skipped in -short")
	}
	work := t.TempDir()
	bin := buildServer(t, work)
	cacheDir := filepath.Join(work, "cache")

	w1cmd, w1 := startServer(t, bin, "-workers", "1", "-cache-dir", cacheDir)
	w2cmd, w2 := startServer(t, bin, "-workers", "1", "-cache-dir", cacheDir)
	_, coord := startServer(t, bin,
		"-workers", "2", "-cache-dir", cacheDir,
		"-journal-dir", filepath.Join(work, "coord-journal"),
		"-coordinator", w1+","+w2,
		"-lease-ttl", "2s", "-lease-points", "2")
	for _, b := range []string{w1, w2, coord} {
		clusterWaitReady(t, b)
	}

	const n = 8
	job := clusterSubmit(t, coord, "cluster-e2e-kill", clusterSweepBody(n, 0))
	if job.ID == "" {
		t.Fatal("submit returned no job ID")
	}

	// Pick the victim: a worker that is actually running a leased job right
	// now, so the kill is guaranteed to land mid-lease.
	var victim *exec.Cmd
	deadline := time.Now().Add(60 * time.Second)
	for victim == nil {
		if healthRunning(t, w1) > 0 {
			victim = w1cmd
		} else if healthRunning(t, w2) > 0 {
			victim = w2cmd
		}
		if st := clusterGetJob(t, coord, job.ID); st.State != "queued" && st.State != "running" {
			t.Fatalf("job finished before any lease was observable: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("no worker ever reported a running lease")
		}
	}
	// Snapshot the shared cache just before the kill: everything in it now
	// must never be computed again by the survivors.
	cachedAtKill := countCacheEntries(t, cacheDir)
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = victim.Wait()
	survivor := w2
	if victim == w2cmd {
		survivor = w1
	}

	var final clusterJobView
	deadline = time.Now().Add(180 * time.Second)
	for {
		final = clusterGetJob(t, coord, job.ID)
		if final.State == "done" || final.State == "failed" || final.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished after the worker kill: %+v", final)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if final.State != "done" || final.Done != n || final.Failed != 0 {
		t.Fatalf("sweep after worker kill: %+v, want done %d/0", final, n)
	}

	// The killed worker held a lease, so at least one lease was reassigned.
	if requeued := metricValue(t, coord, `pn_cluster_leases_total{outcome="requeued"}`); requeued < 1 {
		t.Fatalf("requeued leases = %d, want >= 1 (the killed lease)", requeued)
	}
	// Exactly-once effect: the survivors' combined pipeline runs can cover at
	// most the points that were NOT already in the shared cache when the
	// victim died — anything cached must come back as a hit, not a re-run.
	ranSurvivor := metricValue(t, survivor, `pn_core_characterisations_total{outcome="ok"}`)
	ranCoord := metricValue(t, coord, `pn_core_characterisations_total{outcome="ok"}`)
	if ranSurvivor+ranCoord > n-cachedAtKill {
		t.Fatalf("survivors ran the pipeline %d+%d times with %d points pre-cached: some cached point was recomputed",
			ranSurvivor, ranCoord, cachedAtKill)
	}
}

// TestClusterCoordinatorRestartE2E: the coordinator is SIGKILLed mid-sweep
// and restarted on the same journal directories. The restarted process must
// replay the job journal and the lease WAL, reattach (or re-dispatch) its
// leases, and finish the sweep with zero client intervention — the client
// only ever polls the job ID. The workers' own metrics prove fleet-wide
// exactly-once: together they characterise each of the n points exactly
// once, no matter how many lease attempts the restart produced. The job's
// merged trace must survive the kill too: one trace ID spanning the worker
// processes and the coordinator, with the interrupted leases' flight markers
// recording what was in the air when the process died.
func TestClusterCoordinatorRestartE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills real processes; skipped in -short")
	}
	work := t.TempDir()
	bin := buildServer(t, work)
	cacheDir := filepath.Join(work, "cache")
	journalDir := filepath.Join(work, "coord-journal")

	_, worker := startServer(t, bin, "-workers", "1", "-cache-dir", cacheDir)
	_, worker2 := startServer(t, bin, "-workers", "1", "-cache-dir", cacheDir)
	coordArgs := []string{
		"-workers", "1", "-cache-dir", cacheDir,
		"-journal-dir", journalDir,
		"-coordinator", worker + "," + worker2,
		"-lease-ttl", "1s", "-lease-points", "2",
	}
	coord1cmd, coord1 := startServer(t, bin, coordArgs...)
	clusterWaitReady(t, worker)
	clusterWaitReady(t, worker2)
	clusterWaitReady(t, coord1)

	const n = 10
	job := clusterSubmit(t, coord1, "cluster-e2e-restart", clusterSweepBody(n, 100))
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := clusterGetJob(t, coord1, job.ID)
		if st.Done >= 2 {
			break
		}
		if st.State != "queued" && st.State != "running" {
			t.Fatalf("job finished before the kill: %+v (sweep too fast for this test)", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never progressed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := coord1cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = coord1cmd.Wait()

	// Restart on the same directories. No resubmission happens: the journal
	// replay must bring the job back by itself.
	_, coord2 := startServer(t, bin, coordArgs...)
	clusterWaitReady(t, coord2)

	var final clusterJobView
	deadline = time.Now().Add(180 * time.Second)
	for {
		final = clusterGetJob(t, coord2, job.ID)
		if final.State == "done" || final.State == "failed" || final.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered sweep never finished: %+v", final)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if final.State != "done" || final.Done != n || final.Failed != 0 {
		t.Fatalf("sweep after coordinator restart: %+v, want done %d/0", final, n)
	}

	// Fleet-wide exactly-once, measured at the compute sites: the workers
	// together ran the pipeline exactly once per point across both
	// coordinator incarnations — re-dispatched leases found their finished
	// points in the cache instead of recomputing them.
	ran1 := metricValue(t, worker, `pn_core_characterisations_total{outcome="ok"}`)
	ran2 := metricValue(t, worker2, `pn_core_characterisations_total{outcome="ok"}`)
	if ran1+ran2 != n {
		t.Fatalf("workers ran the pipeline %d+%d times across the restart, want exactly %d total", ran1, ran2, n)
	}

	// The merged timeline survived the SIGKILL: one trace ID end to end,
	// spans from at least three processes (both workers plus a coordinator
	// incarnation), and flight markers recording the leases that were in the
	// air when coordinator 1 died.
	jt := clusterGetTrace(t, coord2, job.ID)
	if jt.TraceID == "" || len(jt.Spans) == 0 {
		t.Fatalf("restarted coordinator serves no trace: id=%q spans=%d", jt.TraceID, len(jt.Spans))
	}
	procs := map[string]bool{}
	flights := 0
	for _, ev := range jt.Spans {
		if ev.Trace != "" && ev.Trace != jt.TraceID {
			t.Fatalf("event %q carries trace %q, want %q — one trace end to end", ev.Name, ev.Trace, jt.TraceID)
		}
		if ev.Type == "span" {
			procs[ev.Proc] = true
		}
		if ev.Type == "flight" {
			flights++
		}
	}
	if len(procs) < 3 {
		t.Fatalf("timeline spans %d processes (%v), want >= 3 (workers + coordinator)", len(procs), procs)
	}
	if flights < 1 {
		t.Fatal("timeline has no flight markers for the leases interrupted by the kill")
	}
}

// clusterTraceView is the slice of the trace payload the e2e suite reads.
type clusterTraceView struct {
	TraceID string `json:"trace_id"`
	Spans   []struct {
		Type  string `json:"type"`
		Name  string `json:"name"`
		Trace string `json:"trace"`
		Proc  string `json:"proc"`
	} `json:"spans"`
}

func clusterGetTrace(t *testing.T, base, id string) clusterTraceView {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint: status %d", resp.StatusCode)
	}
	var v clusterTraceView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}
