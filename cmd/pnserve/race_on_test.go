//go:build race

package main

// raceEnabled propagates the harness's -race into the child pnserve builds,
// so the SIGKILL e2e suite exercises the whole fleet under the race detector.
const raceEnabled = true
