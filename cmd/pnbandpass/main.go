// Command pnbandpass reproduces the paper's bandpass-oscillator experiments
// (Figures 2 and 3) on the Tow-Thomas-equivalent RLC + comparator model:
//
//	pnbandpass -exp fig2a   # computed PSD, 4 harmonics (CSV: f, Sss, dB)
//	pnbandpass -exp fig2b   # Monte-Carlo "spectrum analyzer" vs theory
//	pnbandpass -exp fig3    # L(f_m) via Eq. 27 and Eq. 28 (CSV)
//	pnbandpass -exp summary # c, corner frequency, total power
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnbandpass: ")
	exp := flag.String("exp", "summary", "experiment: fig2a, fig2b, fig2b-display, fig3, summary")
	paths := flag.Int("paths", 24, "Monte-Carlo paths for fig2b")
	seed := flag.Int64("seed", 1, "Monte-Carlo seed")
	flag.Parse()

	res, err := experiments.CharacteriseBandpass()
	if err != nil {
		log.Fatal(err)
	}

	switch *exp {
	case "summary":
		fmt.Print(res.Report())
		sp := res.OutputSpectrum(0, 4)
		fmt.Printf("Total carrier power     = %.6e V² (Eq. 25)\n", sp.TotalPower())
		fmt.Printf("Paper reference:   c = 7.56e-08 s²·Hz, f0 = 6.66 kHz, fc = 10.56 Hz\n")
	case "fig2a":
		fmt.Println("f_hz,sss_v2_per_hz,db")
		for _, p := range experiments.Fig2a(res, 400) {
			fmt.Printf("%.4f,%.8e,%.3f\n", p.F, p.PSD, p.DB)
		}
	case "fig2b":
		r, err := experiments.Fig2b(res, *paths, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# Lorentzian line at first harmonic (MC %d paths)\n", *paths)
		fmt.Printf("# fit:    center=%.2f Hz  half-width=%.3f Hz  peak=%.4e\n", r.FitCenter, r.FitHalfW, r.FitPeak)
		fmt.Printf("# theory: center=%.2f Hz  half-width=%.3f Hz  peak=%.4e\n", res.F0(), r.TheoryHalfW, r.TheoryPeak)
		fmt.Println("f_hz,psd_mc")
		f0 := res.F0()
		for i, f := range r.Freqs {
			if f > 0.7*f0 && f < 1.3*f0 {
				fmt.Printf("%.4f,%.8e\n", f, r.PSD[i])
			}
		}
	case "fig2b-display":
		// Emulated spectrum-analyzer screen (paper Fig 2(b) was measured in
		// dBm with a finite RBW): 60 Hz RBW sweep across four harmonics.
		sp := res.OutputSpectrum(0, 4)
		f0 := res.F0()
		fmt.Println("f_hz,display_dbm")
		for _, p := range sp.AnalyzerTrace(0.2*f0, 4.6*f0, 60, 50, 600) {
			fmt.Printf("%.2f,%.3f\n", p.F, p.DBmF)
		}
	case "fig3":
		fc := res.CornerFreq()
		fmt.Printf("# corner frequency fc = pi*f0^2*c = %.4f Hz (paper: 10.56 Hz)\n", fc)
		fmt.Println("fm_hz,L_eq27_dbc,L_eq28_dbc")
		for _, p := range experiments.Fig3(res, 20) {
			fmt.Printf("%.4f,%.3f,%.3f\n", p.Fm, p.Lorentzian, p.InvSquare)
		}
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}
