// Command pnchar runs the full phase-noise characterisation pipeline
// (shooting → Floquet → c quadratures) on a named oscillator from the model
// library and prints the resulting report: period, phase-diffusion constant
// c, Lorentzian corner, Floquet multipliers, per-source noise budget and
// per-node sensitivities.
//
// Usage:
//
//	pnchar -osc hopf|vanderpol|bandpass|ring|fhn [-harmonics n] [-lfm f_m]
//	       [-debug-addr :6060] [-cpuprofile f] [-memprofile f] [-trace-out f]
//
// -debug-addr serves /metrics (Prometheus text format) and /debug/pprof/
// while the pipeline runs; -cpuprofile/-memprofile write pprof files and
// -trace-out records the pipeline's span events as JSON lines.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/cliobs"
	"repro/internal/core"
	"repro/internal/osc"
	"repro/internal/shooting"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnchar: ")
	// All work happens in run so its defers — profile writers, the trace
	// file, the debug server — run before the process exits.
	os.Exit(run())
}

func run() int {
	oscName := flag.String("osc", "bandpass", "oscillator: hopf, vanderpol, bandpass, ring, fhn, negres, colpitts")
	harmonics := flag.Int("harmonics", 4, "harmonics for the spectrum summary")
	lfmAt := flag.Float64("lfm", 0, "also print L(f_m) at this offset in Hz (0 = skip)")
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()

	stopObs, err := obsFlags.Start()
	if err != nil {
		log.Print(err)
		return 1
	}
	defer stopObs()

	res, err := characterise(*oscName)
	if err != nil {
		log.Print(err)
		return 1
	}
	fmt.Print(res.Report())

	sp := res.OutputSpectrum(0, *harmonics)
	fmt.Printf("Total carrier power     = %.6e (Eq. 25)\n", sp.TotalPower())
	fmt.Printf("Carrier-line peak       = %.6e /Hz at f0 (finite: Lorentzian, not δ)\n", sp.SSB(sp.F0))
	if *lfmAt > 0 {
		fmt.Printf("L(%g Hz)            = %.2f dBc/Hz (Eq. 27), %.2f dBc/Hz (Eq. 28)\n",
			*lfmAt, sp.LdBcLorentzian(*lfmAt), sp.LdBcInvSquare(*lfmAt))
	}
	return 0
}

func characterise(name string) (*core.Result, error) {
	switch name {
	case "hopf":
		h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi * 1e6, Sigma: 1e-2}
		return core.Characterise(h, []float64{1, 0}, h.Period(), nil)
	case "vanderpol":
		v := &osc.VanDerPol{Mu: 1, Sigma: 0.01}
		return core.Characterise(v, []float64{2, 0}, 6.7, nil)
	case "bandpass":
		b := osc.NewBandpassPaper()
		return core.Characterise(b, []float64{0.1, 0}, 1/6660.0, nil)
	case "ring":
		r := osc.NewECLRingPaper()
		T, x0, err := shooting.EstimatePeriod(r, r.InitialState(), 300e-9)
		if err != nil {
			return nil, err
		}
		return core.Characterise(r, x0, T, &core.Options{
			Shooting: &shooting.Options{StepsPerPeriod: 4000},
		})
	case "negres":
		v := osc.NewNegResLC(1e8, 5e-9, 8, 3, 0.2, 300, 2)
		return core.Characterise(v, []float64{0.01, 0}, 1e-8, nil)
	case "colpitts":
		cp := osc.NewColpittsPaperScale()
		x0 := cp.BiasPoint()
		x0[1] += 0.05
		T, xc, err := shooting.EstimatePeriod(cp, x0, 300.0/cp.F0Linear())
		if err != nil {
			return nil, err
		}
		return core.Characterise(cp, xc, T, nil)
	case "fhn":
		f := &osc.FitzHughNagumo{Eps: 0.08, A: 0, SigmaV: 1e-3, SigmaW: 1e-3}
		T, x0, err := shooting.EstimatePeriod(f, []float64{1, 0}, 60)
		if err != nil {
			return nil, err
		}
		return core.Characterise(f, x0, T, &core.Options{
			Shooting: &shooting.Options{StepsPerPeriod: 8000},
		})
	default:
		return nil, fmt.Errorf("unknown oscillator %q", name)
	}
}
