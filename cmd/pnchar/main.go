// Command pnchar runs the full phase-noise characterisation pipeline
// (shooting → Floquet → c quadratures) on a named oscillator from the model
// registry and prints the resulting report: period, phase-diffusion constant
// c, Lorentzian corner, Floquet multipliers, per-source noise budget and
// per-node sensitivities.
//
// Usage:
//
//	pnchar -osc hopf|vanderpol|bandpass|ring|fhn|negres|colpitts
//	       [-p name=value ...] [-harmonics n] [-lfm f_m]
//	       [-cache-dir dir] [-cache-mem bytes]
//	       [-debug-addr :6060] [-cpuprofile f] [-memprofile f] [-trace-out f]
//
// Models come from internal/osc's registry; -p overrides a registered
// parameter (repeatable, e.g. -p mu=2.5 -p sigma=0.02) and unknown names are
// rejected. -cache-dir serves repeat characterisations from the
// content-addressed result store shared with pnsweep and pnserve. -debug-addr
// serves /metrics (Prometheus text format) and /debug/pprof/ while the
// pipeline runs; -cpuprofile/-memprofile write pprof files and -trace-out
// records the pipeline's span events as JSON lines.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/cliobs"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnchar: ")
	// All work happens in run so its defers — profile writers, the trace
	// file, the debug server — run before the process exits.
	os.Exit(run())
}

func run() int {
	oscName := flag.String("osc", "bandpass", "oscillator: hopf, vanderpol, bandpass, ring, fhn, negres, colpitts")
	harmonics := flag.Int("harmonics", 4, "harmonics for the spectrum summary")
	lfmAt := flag.Float64("lfm", 0, "also print L(f_m) at this offset in Hz (0 = skip)")
	cacheDir := flag.String("cache-dir", "", "reuse characterisation results from this directory (shared with pnsweep and pnserve; empty = no cache)")
	cacheMem := flag.Int64("cache-mem", cache.DefaultMaxBytes, "in-memory result cache bound in bytes (only with -cache-dir)")
	params := map[string]float64{}
	flag.Func("p", "override a model parameter as name=value (repeatable)", func(s string) error {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want name=value, got %q", s)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("parameter %q: %w", name, err)
		}
		params[name] = v
		return nil
	})
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()

	stopObs, err := obsFlags.Start()
	if err != nil {
		log.Print(err)
		return 1
	}
	defer stopObs()

	res, cached, err := characterise(*oscName, params, *cacheDir, *cacheMem)
	if err != nil {
		log.Print(err)
		return 1
	}
	if cached {
		fmt.Println("(served from the result cache)")
	}
	fmt.Print(res.Report())

	sp := res.OutputSpectrum(0, *harmonics)
	fmt.Printf("Total carrier power     = %.6e (Eq. 25)\n", sp.TotalPower())
	fmt.Printf("Carrier-line peak       = %.6e /Hz at f0 (finite: Lorentzian, not δ)\n", sp.SSB(sp.F0))
	if *lfmAt > 0 {
		fmt.Printf("L(%g Hz)            = %.2f dBc/Hz (Eq. 27), %.2f dBc/Hz (Eq. 28)\n",
			*lfmAt, sp.LdBcLorentzian(*lfmAt), sp.LdBcInvSquare(*lfmAt))
	}
	return 0
}

// characterise resolves the named model through the registry and runs it
// through the batch engine — one-point batch, so the retry ladder, panic
// isolation and the content-addressed cache all apply exactly as they do for
// pnsweep and pnserve (and cache keys are shared with both).
func characterise(name string, params map[string]float64, cacheDir string, cacheMem int64) (*core.Result, bool, error) {
	var store *cache.Store
	if cacheDir != "" {
		var err error
		if store, err = cache.New(cache.Options{MaxBytes: cacheMem, Dir: cacheDir}); err != nil {
			return nil, false, err
		}
	}
	pt, err := serve.PointSpec{Model: name, Params: params}.Resolve(nil)
	if err != nil {
		return nil, false, err
	}
	r := sweep.Run([]sweep.Point{pt}, &sweep.Config{Workers: 1, Cache: store})[0]
	if !r.OK() {
		return nil, false, r.Err
	}
	return r.Result, r.Cached, nil
}
