// Command pnring reproduces the paper's ring-oscillator experiments
// (Figure 4) on the three-stage bipolar ECL ring model:
//
//	pnring -exp fig4a   # the (Rc, rb, IEE) → (f0, c) table
//	pnring -exp fig4b   # (2π·f0)²·c versus IEE series
//	pnring -exp budget  # per-source noise budget at the nominal point
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

// paperFig4a is the table the paper reports (c in units of 1e-15 s²·Hz),
// printed alongside our values for comparison.
var paperFig4a = []struct{ f0MHz, c1e15 float64 }{
	{167.7, 0.269},
	{74, 0.149},
	{94.6, 0.686},
	{169.5, 0.182},
	{169.7, 0.151},
	{167.7, 0.142},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnring: ")
	exp := flag.String("exp", "fig4a", "experiment: fig4a, fig4b, budget")
	flag.Parse()

	switch *exp {
	case "fig4a":
		rows, err := experiments.Fig4a()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Rc_ohm,rb_ohm,IEE_uA,f0_MHz,c_s2hz,paper_f0_MHz,paper_c_s2hz")
		for i, r := range rows {
			fmt.Printf("%.0f,%.0f,%.0f,%.2f,%.3e,%.1f,%.3e\n",
				r.Rc, r.Rb, r.IEE*1e6, r.F0/1e6, r.C,
				paperFig4a[i].f0MHz, paperFig4a[i].c1e15*1e-15)
		}
	case "fig4b":
		rows, err := experiments.Fig4a()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("IEE_uA,fom_(2pi_f0)^2_c")
		for _, r := range experiments.Fig4b(rows) {
			fmt.Printf("%.0f,%.4g\n", r.IEE*1e6, r.FOM)
		}
	case "budget":
		row, err := experiments.CharacteriseRing(500, 58, 331e-6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("nominal ring: f0 = %.2f MHz, c = %.3e s²·Hz\n", row.F0/1e6, row.C)
		res, err := experiments.CharacteriseRingFull(500, 58, 331e-6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Report())
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}
