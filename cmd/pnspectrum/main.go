// Command pnspectrum dumps the closed-form Lorentzian output spectrum
// (Eq. 24) and single-sideband phase noise (Eqs. 26–28) of a named
// oscillator as CSV, for plotting.
//
//	pnspectrum -osc bandpass -what psd  -harmonics 4   # f, Sss(f)
//	pnspectrum -osc ring     -what lfm                 # fm, L(fm) both ways
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/osc"
	"repro/internal/shooting"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnspectrum: ")
	oscName := flag.String("osc", "bandpass", "oscillator: hopf, vanderpol, bandpass, ring, negres, colpitts")
	what := flag.String("what", "psd", "output: psd (Sss over harmonics) or lfm (L(f_m))")
	harmonics := flag.Int("harmonics", 4, "number of harmonics")
	points := flag.Int("points", 200, "points per harmonic / per decade")
	flag.Parse()

	res, err := characterise(*oscName)
	if err != nil {
		log.Fatal(err)
	}
	sp := res.OutputSpectrum(0, *harmonics)
	f0 := res.F0()

	switch *what {
	case "psd":
		fmt.Printf("# f0=%.6e Hz c=%.6e s2Hz corner=%.6e Hz\n", f0, res.C, res.CornerFreq())
		fmt.Println("f_hz,sss")
		fmax := (float64(*harmonics) + 0.6) * f0
		n := *harmonics * *points
		for k := 0; k <= n; k++ {
			f := fmax * float64(k) / float64(n)
			fmt.Printf("%.6e,%.8e\n", f, sp.SSB(f))
		}
	case "lfm":
		fmt.Printf("# corner=%.6e Hz\n", res.CornerFreq())
		fmt.Println("fm_hz,L_lorentzian_dbc,L_invsquare_dbc")
		lo := res.CornerFreq() / 100
		hi := f0 / 3
		decades := math.Log10(hi / lo)
		n := int(decades * float64(*points))
		for k := 0; k <= n; k++ {
			fm := lo * math.Pow(hi/lo, float64(k)/float64(n))
			fmt.Printf("%.6e,%.3f,%.3f\n", fm, sp.LdBcLorentzian(fm), sp.LdBcInvSquare(fm))
		}
	default:
		log.Fatalf("unknown output %q", *what)
	}
}

func characterise(name string) (*core.Result, error) {
	switch name {
	case "hopf":
		h := &osc.Hopf{Lambda: 1e6, Omega: 2 * math.Pi * 1e6, Sigma: 0.5}
		return core.Characterise(h, []float64{1, 0}, h.Period(), nil)
	case "vanderpol":
		return core.Characterise(&osc.VanDerPol{Mu: 1, Sigma: 0.01}, []float64{2, 0}, 6.7, nil)
	case "bandpass":
		return core.Characterise(osc.NewBandpassPaper(), []float64{0.1, 0}, 1/6660.0, nil)
	case "negres":
		v := osc.NewNegResLC(1e8, 5e-9, 8, 3, 0.2, 300, 2)
		return core.Characterise(v, []float64{0.01, 0}, 1e-8, nil)
	case "colpitts":
		c := osc.NewColpittsPaperScale()
		x0 := c.BiasPoint()
		x0[1] += 0.05
		T, xc, err := shooting.EstimatePeriod(c, x0, 300.0/c.F0Linear())
		if err != nil {
			return nil, err
		}
		return core.Characterise(c, xc, T, nil)
	case "ring":
		r := osc.NewECLRingPaper()
		T, x0, err := shooting.EstimatePeriod(r, r.InitialState(), 300e-9)
		if err != nil {
			return nil, err
		}
		return core.Characterise(r, x0, T, &core.Options{
			Shooting: &shooting.Options{StepsPerPeriod: 4000},
		})
	default:
		return nil, fmt.Errorf("unknown oscillator %q", name)
	}
}
