// Command pnpll composes system-level phase noise for PLL and clock chains
// from per-oscillator characterisations (internal/pll): reference, charge-pump
// loop and VCO contributions are shaped by type-II loop transfer functions
// into a composite L(f_m) mask, integrated RMS jitter and a per-contributor
// breakdown, with optional seeded time-domain phase realizations.
//
// Usage:
//
//	pnpll -config chain.json [-json out.json] [-cache-dir dir] [-workers n]
//	      [-timeout d] [-server url] [-v]
//	pnpll -example
//
// The config file is a JSON serve.ComposeRequest: a chain of PLL stages whose
// oscillator legs are either inline numbers (a known f0/c pair, or a
// datasheet FOM for a VCO) or {"spec": {"model": ..., "params": ...}} legs
// that characterise a registered model through the full shooting → Floquet →
// c pipeline first. -example prints a ready-to-run config and exits.
//
// Locally, spec legs run on an in-process worker pool and -cache-dir reuses
// characterisations from the content-addressed store shared with pnchar,
// pnsweep and pnserve — composing many chain variants over the same
// oscillators characterises each oscillator once. With -server the request is
// submitted to a pnserve instance as a "compose" job instead (idempotent
// submission, journal-backed durability, the server's cache), and the same
// output renders from the job's result. Composition itself is frequency-
// domain arithmetic — microseconds — so iterating on loop bandwidth, divider
// or PFD floors over cached legs is interactive either way.
//
// Output: a per-contributor jitter table plus the composite RMS jitter on
// stdout; -json writes the full pll.Result (grid, composite and
// per-contributor masks, realization) loss-free, with non-finite values
// encoded as strings per the repo's JSON convention.
package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/cliobs"
	"repro/internal/obs"
	"repro/internal/pll"
	"repro/internal/pnclient"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// exampleConfig is the -example output: a two-leg chain — a crystal-like
// reference (inline numbers) locking a characterised Hopf "VCO" — small
// enough to run in seconds yet exercising spec legs, the cache and the
// per-contributor breakdown.
const exampleConfig = `{
  "stages": [
    {
      "name": "pll0",
      "ref": {"name": "xo", "f0_hz": 1.0e7, "c_s2hz": 1.0e-22},
      "vco": {"spec": {"name": "hopf-vco", "model": "hopf", "params": {"omega": 6.283185307179586}}},
      "loop_bandwidth_hz": 0.05,
      "pfd_noise_dbc_hz": -150
    }
  ],
  "grid": {"start_hz": 0.001, "stop_hz": 100, "points_per_decade": 20},
  "jitter_band_hz": [0.01, 10]
}
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnpll: ")
	os.Exit(run())
}

func run() int {
	configPath := flag.String("config", "", "composition request JSON (see -example); \"-\" reads stdin")
	jsonPath := flag.String("json", "", "write the full composition result (masks, breakdown, realization) to this file")
	cacheDir := flag.String("cache-dir", "", "reuse characterisation results from this directory (shared with pnchar, pnsweep, pnserve)")
	cacheMem := flag.Int64("cache-mem", cache.DefaultMaxBytes, "in-memory result cache bound in bytes (only with -cache-dir)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for characterising spec legs")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole composition, leg characterisation included (0 = unbounded)")
	server := flag.String("server", "", "submit to this pnserve base URL (e.g. http://127.0.0.1:8080) instead of composing in process")
	example := flag.Bool("example", false, "print an example composition config and exit")
	verbose := flag.Bool("v", false, "stream per-leg progress to stderr")
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()

	if *example {
		fmt.Print(exampleConfig)
		return 0
	}

	stopObs, err := obsFlags.Start()
	if err != nil {
		log.Print(err)
		return 1
	}
	defer stopObs()

	req, err := readConfig(*configPath)
	if err != nil {
		log.Print(err)
		return 1
	}
	if err := req.Validate(); err != nil {
		log.Print(err)
		return 1
	}

	if *server != "" {
		return runRemote(*server, req, *timeout, *jsonPath, *verbose)
	}
	return runLocal(req, *cacheDir, *cacheMem, *workers, *timeout, *jsonPath, *verbose)
}

func readConfig(path string) (*serve.ComposeRequest, error) {
	if path == "" {
		return nil, fmt.Errorf("need -config (or -example for a starting point)")
	}
	var data []byte
	var err error
	if path == "-" {
		data, err = os.ReadFile("/dev/stdin")
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var req serve.ComposeRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &req, nil
}

// runLocal characterises the request's spec legs on an in-process pool (cache
// hits first) and composes the chain here.
func runLocal(req *serve.ComposeRequest, cacheDir string, cacheMem int64, workers int, timeout time.Duration, jsonPath string, verbose bool) int {
	var store *cache.Store
	if cacheDir != "" {
		var err error
		if store, err = cache.New(cache.Options{MaxBytes: cacheMem, Dir: cacheDir}); err != nil {
			log.Print(err)
			return 1
		}
	}

	tok, cancel := budget.WithCancel(nil)
	defer cancel()
	if timeout > 0 {
		tok = budget.WithTimeout(tok, timeout)
	}
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "pnpll: interrupt — cancelling (interrupt again to abort)")
		cancel()
		<-sigc
		os.Exit(130)
	}()

	specs := req.SpecLegs()
	var results []sweep.PointResult
	if len(specs) > 0 {
		points := make([]sweep.Point, len(specs))
		for i, sp := range specs {
			pt, err := sp.Resolve(nil)
			if err != nil {
				log.Printf("leg %q: %v", sp.Name, err)
				return 1
			}
			points[i] = pt
		}
		cfg := &sweep.Config{Workers: workers, Budget: tok, Cache: store}
		if verbose {
			cfg.OnPoint = func(r sweep.PointResult) {
				status := "ok"
				if !r.OK() {
					status = "failed"
				} else if r.Cached {
					status = "cached"
				}
				fmt.Fprintf(os.Stderr, "[%s] %s (%v)\n", r.Name, status, r.Wall.Round(time.Millisecond))
			}
		}
		fmt.Fprintf(os.Stderr, "pnpll: characterising %d leg(s) on %d workers\n", len(specs), workers)
		results = sweep.Run(points, cfg)
	}

	cfg, err := req.BuildConfig(results)
	if err != nil {
		log.Print(err)
		return 1
	}
	res, err := pll.Compose(cfg)
	if err != nil {
		log.Print(err)
		return 1
	}
	return emit(res, jsonPath)
}

// runRemote submits the request as a compose job to a pnserve instance and
// renders the same output from the job's full result.
func runRemote(base string, req *serve.ComposeRequest, timeout time.Duration, jsonPath string, verbose bool) int {
	c := pnclient.New(base, nil, pnclient.Retry{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tctx := obs.SpanContext{Trace: obs.NewTraceID()}
	ctx = obs.ContextWithSpanContext(ctx, tctx)

	var kb [16]byte
	if _, err := rand.Read(kb[:]); err != nil {
		log.Print(err)
		return 1
	}
	idemKey := "pnpll-" + hex.EncodeToString(kb[:])
	if timeout > 0 {
		req.TimeoutMS = int64(timeout / time.Millisecond)
	}

	st, err := c.Compose(ctx, *req, idemKey)
	if err != nil {
		log.Print(err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "pnpll: job %s submitted to %s (%d spec legs, trace %s)\n",
		st.ID, base, len(req.SpecLegs()), tctx.Trace)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintf(os.Stderr, "pnpll: interrupt — cancelling job %s (interrupt again to abort)\n", st.ID)
		cctx, cdone := context.WithTimeout(context.Background(), 10*time.Second)
		defer cdone()
		if _, err := c.Cancel(cctx, st.ID); err != nil {
			log.Printf("cancel: %v", err)
		}
		<-sigc
		os.Exit(130)
	}()

	final, err := c.Wait(ctx, st.ID, true, func(ev serve.Event) {
		if !verbose {
			return
		}
		switch ev.Type {
		case "point":
			status := "ok"
			if !ev.Point.OK {
				status = "failed"
			} else if ev.Point.Cached {
				status = "cached"
			}
			fmt.Fprintf(os.Stderr, "[leg %s] %s (%.0fms)\n", ev.Point.Name, status, ev.Point.WallMS)
		case "compose":
			fmt.Fprintf(os.Stderr, "composed: %.4g s RMS jitter\n", ev.Compose.JitterSec)
		case "state":
			fmt.Fprintf(os.Stderr, "job %s: %s\n", st.ID, ev.State)
		}
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	if final.State != serve.StateDone {
		if final.Error != nil {
			log.Printf("job %s %s: %s", final.ID, final.State, final.Error.Msg)
		} else {
			log.Printf("job %s %s", final.ID, final.State)
		}
		return 1
	}
	if final.ComposeResult == nil {
		log.Printf("job %s done but carried no composition result", final.ID)
		return 1
	}
	return emit(final.ComposeResult, jsonPath)
}

// emit renders the breakdown table and optional JSON output.
func emit(res *pll.Result, jsonPath string) int {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "contributor\tjitter (s, RMS)\tshare")
	total := res.JitterSec * res.JitterSec
	for _, c := range res.Contributors {
		share := 0.0
		if total > 0 {
			share = c.JitterSec * c.JitterSec / total
		}
		fmt.Fprintf(tw, "%s\t%.4e\t%.1f%%\n", c.Name, c.JitterSec, 100*share)
	}
	tw.Flush()
	fmt.Printf("carrier %.6e Hz, composite RMS jitter %.4e s (%.4e rad) over [%.3g, %.3g] Hz, %d grid points\n",
		res.CarrierHz, res.JitterSec, res.JitterRad, res.BandHz[0], res.BandHz[1], len(res.FHz))
	if res.Phase != nil {
		fmt.Printf("phase realization: %d samples at %.6g Hz\n", len(res.Phase), res.SampleRateHz)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Print(err)
			return 1
		}
		fmt.Printf("full result written to %s\n", jsonPath)
	}
	return 0
}
