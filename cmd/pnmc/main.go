// Command pnmc is the Monte-Carlo validation driver: it simulates the full
// nonlinear oscillator SDE as an ensemble, then checks the three pillars of
// the theory against the Floquet-computed c —
//
//  1. Var[α(t)] = c·t with asymptotically Gaussian α (Section 6), measured
//     through the exact phase SDE (Eq. 9);
//  2. the Lorentzian line shape at the first harmonic (Section 7), via an
//     ensemble-averaged periodogram and a reciprocal-quadratic line fit;
//  3. threshold-crossing jitter growth Var[t_k] = c·k·T (Section 8).
//
// Usage:
//
//	pnmc [-osc hopf|vanderpol] [-paths 200] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/experiments"
	"repro/internal/fourier"
	"repro/internal/osc"
	"repro/internal/sde"
	"repro/internal/stochproc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnmc: ")
	oscName := flag.String("osc", "hopf", "oscillator: hopf, vanderpol")
	paths := flag.Int("paths", 200, "ensemble size")
	seed := flag.Int64("seed", 1, "master seed")
	flag.Parse()

	var (
		sys dynsys.System
		res *core.Result
		err error
	)
	switch *oscName {
	case "hopf":
		h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
		sys = h
		res, err = core.Characterise(h, []float64{1, 0}, 1, nil)
	case "vanderpol":
		v := &osc.VanDerPol{Mu: 1, Sigma: 0.01}
		sys = v
		res, err = core.Characterise(v, []float64{2, 0}, 6.7, nil)
	default:
		log.Fatalf("unknown oscillator %q", *oscName)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("theory: f0 = %.6e Hz, c = %.6e s²·Hz\n\n", res.F0(), res.C)

	// --- 1. Phase SDE: variance growth + Gaussianity. --------------------
	phase := res.PhaseSDE(sys)
	var at20, at40 []float64
	for p := 0; p < *paths*4; p++ {
		rng := rand.New(rand.NewSource(*seed + int64(p)))
		path := sde.EulerMaruyama(phase, []float64{0}, 0, res.T()/50, 40*50, 50, rng)
		at20 = append(at20, path.X[20][0])
		at40 = append(at40, path.X[40][0])
	}
	m20 := stochproc.SampleMoments(at20)
	m40 := stochproc.SampleMoments(at40)
	fmt.Println("Section 6 (phase SDE, Eq. 9):")
	fmt.Printf("  Var[α(20T)] = %.4e   theory c·20T = %.4e\n", m20.Variance, res.C*20*res.T())
	fmt.Printf("  Var[α(40T)] = %.4e   theory c·40T = %.4e\n", m40.Variance, res.C*40*res.T())
	fmt.Printf("  α(40T) Gaussian? %v (skew %+.3f, excess kurtosis %+.3f)\n\n",
		m40.IsGaussianish(4), m40.Skewness, m40.ExcessKurtosis)

	// --- 2. Lorentzian line. ---------------------------------------------
	full := sde.System{
		Dim: sys.Dim(), NumNoise: sys.NumNoise(),
		Drift: func(t float64, x, dst []float64) { sys.Eval(x, dst) },
		Diff:  func(t float64, x []float64, dst []float64) { sys.Noise(x, dst) },
	}
	sp := res.OutputSpectrum(0, 2)
	hw := sp.LorentzianHalfWidth(1)
	// Record long enough to resolve the line: ≥ 30 coherence times.
	record := 30.0 / (math.Pi * hw)
	dt := res.T() / 200
	steps := int(record / dt)
	stride := 4
	cfg := sde.EnsembleConfig{Paths: *paths / 4, Steps: steps, Stride: stride, Seed: *seed, Dt: dt}
	ens := sde.Ensemble(full, res.PSS.X0, cfg)
	sigs := make([][]float64, len(ens))
	for i, p := range ens {
		s := p.Component(0)
		n := 1
		for n*2 <= len(s) {
			n *= 2
		}
		sigs[i] = s[:n]
	}
	fs := 1 / (dt * float64(stride))
	freqs, psd := fourier.EnsemblePSD(sigs, fs, fourier.Rectangular)
	fit, err := stochproc.FitLorentzian(freqs, psd, 0.5*res.F0(), 1.5*res.F0())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Section 7 (Lorentzian line, ensemble periodogram):")
	fmt.Printf("  centre     %.6e Hz   (theory %.6e)\n", fit.Center, res.F0())
	fmt.Printf("  half-width %.4e Hz   (theory π·f0²·c = %.4e)\n", fit.HalfWidth, hw)
	fmt.Printf("  peak       %.4e      (theory %.4e)\n\n", fit.Peak, sp.SSB(res.F0()))

	// --- 3. Crossing jitter. ---------------------------------------------
	jr, err := experiments.JitterExperiment(full, res, 0, *paths, 30, *seed+7777)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Section 8 (threshold-crossing jitter):")
	fmt.Printf("  Var[t_k] slope = %.4e   theory c = %.4e   (rel. err %.1f%%)\n",
		jr.MeasuredC, jr.TheoryC, 100*jr.RelativeErr)
}
