// Command pnjitter demonstrates the timing-jitter result of the paper's
// Section 8 (and McNeill's measurement): for a free-running oscillator the
// variance of the k-th clock transition grows exactly linearly,
// Var[t_k] = c·k·T. It Monte-Carloes the full nonlinear oscillator SDE,
// extracts threshold-crossing times like a sampling oscilloscope would, and
// regresses the variance growth against the c the Floquet pipeline computed.
//
//	pnjitter [-osc hopf|vanderpol] [-paths 300] [-periods 40] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/osc"
	"repro/internal/sde"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnjitter: ")
	oscName := flag.String("osc", "hopf", "oscillator: hopf, vanderpol")
	paths := flag.Int("paths", 300, "Monte-Carlo paths")
	periods := flag.Int("periods", 40, "periods per path")
	seed := flag.Int64("seed", 1, "ensemble seed")
	flag.Parse()

	var (
		res *core.Result
		sys sde.System
		err error
	)
	switch *oscName {
	case "hopf":
		h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
		res, err = core.Characterise(h, []float64{1, 0}, 1, nil)
		sys = sde.System{
			Dim: 2, NumNoise: h.NumNoise(),
			Drift: func(t float64, x, dst []float64) { h.Eval(x, dst) },
			Diff:  func(t float64, x []float64, dst []float64) { h.Noise(x, dst) },
		}
	case "vanderpol":
		v := &osc.VanDerPol{Mu: 1, Sigma: 0.005}
		res, err = core.Characterise(v, []float64{2, 0}, 6.7, nil)
		sys = sde.System{
			Dim: 2, NumNoise: v.NumNoise(),
			Drift: func(t float64, x, dst []float64) { v.Eval(x, dst) },
			Diff:  func(t float64, x []float64, dst []float64) { v.Noise(x, dst) },
		}
	default:
		log.Fatalf("unknown oscillator %q", *oscName)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("theory: c = %.4e s²·Hz, T = %.4e s\n", res.C, res.T())
	fmt.Printf("theory: Var[t_k] = c·k·T  (σ after 10 periods = %.4e s)\n",
		math.Sqrt(res.JitterVariance(10)))

	jr, err := experiments.JitterExperiment(sys, res, 0, *paths, *periods, *seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured slope of Var[t_k] vs t̄_k = %.4e (relative error %.1f%%)\n",
		jr.MeasuredC, 100*jr.RelativeErr)
	fmt.Println("k,mean_t_k,var_t_k,theory_ckT")
	for i, k := range jr.Growth.K {
		if i%2 == 1 {
			continue // print every other transition to keep output compact
		}
		fmt.Printf("%d,%.6e,%.6e,%.6e\n",
			k, jr.Growth.MeanT[i], jr.Growth.Variance[i], res.C*jr.Growth.MeanT[i])
	}
}
