// Command pnsweep batch-characterises a named oscillator over a parameter
// grid using the internal/sweep engine: every grid point runs the full
// shooting → Floquet → c-quadrature pipeline on a bounded worker pool, hard
// points escalate through the retry ladder, and failures are reported
// per-point instead of aborting the sweep.
//
// Usage:
//
//	pnsweep -osc hopf|vanderpol|ring [-min v] [-max v] [-n points]
//	        [-workers n] [-timeout d] [-point-timeout d] [-json file] [-v]
//	        [-cache-dir dir] [-cache-mem bytes]
//	        [-debug-addr :6060] [-cpuprofile f] [-memprofile f] [-trace-out f]
//
// The swept parameter depends on the oscillator: hopf sweeps the angular
// frequency ω, vanderpol the nonlinearity μ, ring the tail bias current IEE.
// A summary table goes to stdout; -json writes the full per-point results —
// loss-free, including trajectories, retry history and per-stage diagnostics
// — as JSON.
//
// -cache-dir reuses prior characterisations from a content-addressed result
// store shared with pnchar and pnserve: identical points are served from the
// cache (status "cached", counted on the progress line) without running the
// pipeline, and fresh results are persisted for the next run.
//
// On a terminal, a live progress line on stderr tracks points done, failures,
// retries and the ETA; it is suppressed when stderr is piped or with -v.
// -debug-addr serves /metrics (Prometheus text format) and /debug/pprof/
// while the sweep runs; -cpuprofile/-memprofile write pprof files and
// -trace-out records the pipeline's span events as JSON lines.
//
// -timeout bounds the whole sweep and -point-timeout each point's retry
// ladder by wall clock. SIGINT (Ctrl-C) cancels in-flight points; the
// summary table and JSON are still emitted for everything that completed
// (a second SIGINT aborts immediately). Cut-off points appear in the table
// as TIMEOUT or CANCELED, panicking models as PANIC, and points where
// shooting converged but the rest of the pipeline did not as FAILED* — the
// star marks a preserved partial periodic steady state, whose period is
// reported in the JSON output.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/cliobs"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// pointJSON is the JSON shape of one sweep point result: the swept parameter
// and a human-readable status next to the loss-free engine result. Point
// round-trips through sweep.PointResult's JSON codec, so trajectories, the
// Floquet decomposition, per-source budgets, retry history and typed
// budget/panic error classification all survive re-reading the file.
type pointJSON struct {
	Name   string             `json:"name"`
	Param  float64            `json:"param"`
	Status string             `json:"status"` // ok | cached | recovered | failed | timeout | canceled | panic
	Point  *sweep.PointResult `json:"point"`
}

// status classifies a point result for the table and JSON.
func status(r *sweep.PointResult) string {
	switch {
	case r.OK() && r.Cached:
		return "cached"
	case r.OK() && len(r.Attempts) > 1:
		return "recovered"
	case r.OK():
		return "ok"
	case errors.Is(r.Err, sweep.ErrModelPanic):
		return "panic"
	case errors.Is(r.Err, budget.ErrBudgetExceeded):
		return "timeout"
	case errors.Is(r.Err, budget.ErrCanceled):
		return "canceled"
	default:
		return "failed"
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnsweep: ")
	// All work happens in run so its defers — profile writers, the trace
	// file, the debug server — run before the process exits.
	os.Exit(run())
}

func run() int {
	oscName := flag.String("osc", "hopf", "oscillator: hopf (sweeps ω), vanderpol (sweeps μ), ring (sweeps IEE)")
	pmin := flag.Float64("min", 0, "sweep parameter lower bound (0 = oscillator default)")
	pmax := flag.Float64("max", 0, "sweep parameter upper bound (0 = oscillator default)")
	n := flag.Int("n", 8, "number of grid points")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole sweep (0 = unbounded)")
	ptTimeout := flag.Duration("point-timeout", 0, "wall-clock budget per point, all retries included (0 = unbounded)")
	jsonPath := flag.String("json", "", "write full JSON results to this file")
	verbose := flag.Bool("v", false, "stream per-attempt progress to stderr")
	cacheDir := flag.String("cache-dir", "", "reuse characterisation results from this directory (shared with pnchar and pnserve; empty = no cache)")
	cacheMem := flag.Int64("cache-mem", cache.DefaultMaxBytes, "in-memory result cache bound in bytes (only with -cache-dir)")
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()

	stopObs, err := obsFlags.Start()
	if err != nil {
		log.Print(err)
		return 1
	}
	defer stopObs()

	var store *cache.Store
	if *cacheDir != "" {
		if store, err = cache.New(cache.Options{MaxBytes: *cacheMem, Dir: *cacheDir}); err != nil {
			log.Print(err)
			return 1
		}
	}

	points, param, err := buildGrid(*oscName, *pmin, *pmax, *n)
	if err != nil {
		log.Print(err)
		return 1
	}

	// Batch budget: optional deadline plus SIGINT cancellation. The first
	// interrupt cancels in-flight points but still prints the summary for
	// completed ones; a second interrupt aborts the process.
	tok, cancel := budget.WithCancel(nil)
	defer cancel()
	if *timeout > 0 {
		tok = budget.WithTimeout(tok, *timeout)
	}
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "pnsweep: interrupt — cancelling in-flight points (interrupt again to abort)")
		cancel()
		<-sigc
		os.Exit(130)
	}()

	cfg := &sweep.Config{
		Workers:      *workers,
		Budget:       tok,
		PointTimeout: *ptTimeout,
		Cache:        store,
	}
	var prog *progress
	if *verbose {
		cfg.OnAttempt = func(i int, name string, a sweep.Attempt) {
			status := "ok"
			if a.Err != nil {
				status = a.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%s] rung %q (%v): %s\n", name, a.RungName, a.Wall.Round(time.Millisecond), status)
		}
	} else if prog = newProgress(len(points), os.Stderr); prog != nil {
		// Live in-place progress line on a terminal; -v's per-attempt stream
		// takes precedence, and piped stderr suppresses it (newProgress
		// returns nil off-terminal).
		cfg.OnAttempt = func(i int, name string, a sweep.Attempt) { prog.attempt(a) }
		cfg.OnPoint = func(r sweep.PointResult) { prog.point(r) }
	}

	start := time.Now()
	results := sweep.Run(points, cfg)
	wall := time.Since(start)

	prog.finish() // clear the progress line before the summary table renders
	printSummary(results, param, wall, *workers)
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, results, param); err != nil {
			log.Print(err)
			return 1
		}
		fmt.Printf("full results written to %s\n", *jsonPath)
	}
	for _, r := range results {
		if !r.OK() {
			return 1 // partial failure: table printed, exit non-zero
		}
	}
	return 0
}

// buildGrid materialises the parameter grid for one oscillator family and
// returns the sweep points plus the per-point parameter values. Points are
// specified as pure data (model name + parameter map) and resolved through
// the same serve.PointSpec path the job server uses, so the stamped
// content-addressed cache keys are identical — a sweep run with -cache-dir
// warms the cache for pnserve and pnchar runs over the same directory, and
// vice versa.
func buildGrid(name string, pmin, pmax float64, n int) ([]sweep.Point, []float64, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("need at least one grid point, got %d", n)
	}
	grid := func(lo, hi float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			if n == 1 {
				out[i] = lo
				continue
			}
			out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		return out
	}
	defaults := func(lo, hi float64) (float64, float64) {
		if pmin != 0 {
			lo = pmin
		}
		if pmax != 0 {
			hi = pmax
		}
		return lo, hi
	}
	var vals []float64
	specs := make([]serve.PointSpec, 0, n)
	switch name {
	case "hopf":
		lo, hi := defaults(2, 12)
		vals = grid(lo, hi)
		for _, w := range vals {
			specs = append(specs, serve.PointSpec{
				Name:   fmt.Sprintf("hopf-omega=%.4g", w),
				Model:  "hopf",
				Params: map[string]float64{"lambda": 1, "omega": w, "sigma": 0.02},
			})
		}
	case "vanderpol":
		lo, hi := defaults(0.5, 3.5)
		vals = grid(lo, hi)
		for _, mu := range vals {
			specs = append(specs, serve.PointSpec{
				Name:   fmt.Sprintf("vdp-mu=%.4g", mu),
				Model:  "vanderpol",
				Params: map[string]float64{"mu": mu, "sigma": 0.01},
			})
		}
	case "ring":
		lo, hi := defaults(331e-6, 715e-6)
		vals = grid(lo, hi)
		for _, iee := range vals {
			specs = append(specs, serve.PointSpec{
				Name:   fmt.Sprintf("ring-iee=%.3gu", iee*1e6),
				Model:  "ring",
				Params: map[string]float64{"iee": iee},
			})
		}
	default:
		return nil, nil, fmt.Errorf("unknown oscillator %q (want hopf, vanderpol, ring)", name)
	}
	pts := make([]sweep.Point, len(specs))
	for i, sp := range specs {
		pt, err := sp.Resolve(nil)
		if err != nil {
			return nil, nil, fmt.Errorf("point %q: %w", sp.Name, err)
		}
		pts[i] = pt
	}
	return pts, vals, nil
}

func printSummary(results []sweep.PointResult, param []float64, wall time.Duration, workers int) {
	okCount, partial, cached := 0, 0, 0
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "point\tparam\tstatus\tf0 (Hz)\tc (s²·Hz)\tcorner (Hz)\tattempts\twall")
	for i, r := range results {
		st := status(&r)
		f0s, cs, cor := "-", "-", "-"
		if r.Cached {
			cached++
		}
		if r.OK() {
			okCount++
			f0s = fmt.Sprintf("%.6e", r.Result.F0())
			cs = fmt.Sprintf("%.4e", r.Result.C)
			cor = fmt.Sprintf("%.3e", r.Result.CornerFreq())
			if st == "recovered" {
				st = fmt.Sprintf("recovered@%s", r.Attempts[len(r.Attempts)-1].RungName)
			}
		} else {
			switch st {
			case "timeout":
				st = "TIMEOUT"
			case "canceled":
				st = "CANCELED"
			case "panic":
				st = "PANIC"
			default:
				st = "FAILED"
			}
			if r.Degraded() {
				// Shooting converged: the PSS frequency is still known.
				st += "*"
				partial++
				f0s = fmt.Sprintf("%.6e", 1/r.PSS.T)
			}
		}
		fmt.Fprintf(tw, "%s\t%.6g\t%s\t%s\t%s\t%s\t%d\t%v\n",
			r.Name, param[i], st, f0s, cs, cor, len(r.Attempts), r.Wall.Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Printf("%d/%d points characterised (cached: %d) in %v on %d workers\n",
		okCount, len(results), cached, wall.Round(time.Millisecond), workers)
	if partial > 0 {
		fmt.Printf("* %d failed point(s) kept a converged periodic steady state (see JSON for details)\n", partial)
	}
}

func writeJSON(path string, results []sweep.PointResult, param []float64) error {
	out := make([]pointJSON, len(results))
	for i := range results {
		out[i] = pointJSON{
			Name:   results[i].Name,
			Param:  param[i],
			Status: status(&results[i]),
			Point:  &results[i],
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
