// Command pnsweep batch-characterises a named oscillator over a parameter
// grid using the internal/sweep engine: every grid point runs the full
// shooting → Floquet → c-quadrature pipeline on a bounded worker pool, hard
// points escalate through the retry ladder, and failures are reported
// per-point instead of aborting the sweep.
//
// Usage:
//
//	pnsweep -osc hopf|vanderpol|ring [-min v] [-max v] [-n points]
//	        [-workers n] [-timeout d] [-point-timeout d] [-json file] [-v]
//	        [-debug-addr :6060] [-cpuprofile f] [-memprofile f] [-trace-out f]
//
// The swept parameter depends on the oscillator: hopf sweeps the angular
// frequency ω, vanderpol the nonlinearity μ, ring the tail bias current IEE.
// A summary table goes to stdout; -json writes the full per-point results,
// including retry history and per-stage diagnostics, as JSON.
//
// On a terminal, a live progress line on stderr tracks points done, failures,
// retries and the ETA; it is suppressed when stderr is piped or with -v.
// -debug-addr serves /metrics (Prometheus text format) and /debug/pprof/
// while the sweep runs; -cpuprofile/-memprofile write pprof files and
// -trace-out records the pipeline's span events as JSON lines.
//
// -timeout bounds the whole sweep and -point-timeout each point's retry
// ladder by wall clock. SIGINT (Ctrl-C) cancels in-flight points; the
// summary table and JSON are still emitted for everything that completed
// (a second SIGINT aborts immediately). Cut-off points appear in the table
// as TIMEOUT or CANCELED, panicking models as PANIC, and points where
// shooting converged but the rest of the pipeline did not as FAILED* — the
// star marks a preserved partial periodic steady state, whose period is
// reported in the JSON output.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/budget"
	"repro/internal/cliobs"
	"repro/internal/core"
	"repro/internal/osc"
	"repro/internal/shooting"
	"repro/internal/sweep"
)

// pointJSON is the JSON shape of one sweep point result.
type pointJSON struct {
	Name   string  `json:"name"`
	Param  float64 `json:"param"`
	OK     bool    `json:"ok"`
	Status string  `json:"status"` // ok | recovered | failed | timeout | canceled | panic
	Error  string  `json:"error,omitempty"`
	T      float64 `json:"period_s,omitempty"`
	F0     float64 `json:"f0_hz,omitempty"`
	C      float64 `json:"c_s2hz,omitempty"`
	Corner float64 `json:"corner_hz,omitempty"`
	// Partial results: set when shooting converged even though the full
	// characterisation did not.
	PartialT        float64       `json:"partial_period_s,omitempty"`
	PartialResidual float64       `json:"partial_residual,omitempty"`
	WallMS          float64       `json:"wall_ms"`
	Attempts        []attemptJSON `json:"attempts"`
}

type attemptJSON struct {
	Rung          string  `json:"rung"`
	Error         string  `json:"error,omitempty"`
	WallMS        float64 `json:"wall_ms"`
	ShootingIters int     `json:"shooting_iters"`
	Residual      float64 `json:"shooting_residual"`
	AdjointSteps  int     `json:"adjoint_steps"`
	ClosureErr    float64 `json:"adjoint_closure_err"`
}

// status classifies a point result for the table and JSON.
func status(r *sweep.PointResult) string {
	switch {
	case r.OK() && len(r.Attempts) > 1:
		return "recovered"
	case r.OK():
		return "ok"
	case errors.Is(r.Err, sweep.ErrModelPanic):
		return "panic"
	case errors.Is(r.Err, budget.ErrBudgetExceeded):
		return "timeout"
	case errors.Is(r.Err, budget.ErrCanceled):
		return "canceled"
	default:
		return "failed"
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnsweep: ")
	// All work happens in run so its defers — profile writers, the trace
	// file, the debug server — run before the process exits.
	os.Exit(run())
}

func run() int {
	oscName := flag.String("osc", "hopf", "oscillator: hopf (sweeps ω), vanderpol (sweeps μ), ring (sweeps IEE)")
	pmin := flag.Float64("min", 0, "sweep parameter lower bound (0 = oscillator default)")
	pmax := flag.Float64("max", 0, "sweep parameter upper bound (0 = oscillator default)")
	n := flag.Int("n", 8, "number of grid points")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole sweep (0 = unbounded)")
	ptTimeout := flag.Duration("point-timeout", 0, "wall-clock budget per point, all retries included (0 = unbounded)")
	jsonPath := flag.String("json", "", "write full JSON results to this file")
	verbose := flag.Bool("v", false, "stream per-attempt progress to stderr")
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()

	stopObs, err := obsFlags.Start()
	if err != nil {
		log.Print(err)
		return 1
	}
	defer stopObs()

	points, param, err := buildGrid(*oscName, *pmin, *pmax, *n)
	if err != nil {
		log.Print(err)
		return 1
	}

	// Batch budget: optional deadline plus SIGINT cancellation. The first
	// interrupt cancels in-flight points but still prints the summary for
	// completed ones; a second interrupt aborts the process.
	tok, cancel := budget.WithCancel(nil)
	defer cancel()
	if *timeout > 0 {
		tok = budget.WithTimeout(tok, *timeout)
	}
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "pnsweep: interrupt — cancelling in-flight points (interrupt again to abort)")
		cancel()
		<-sigc
		os.Exit(130)
	}()

	cfg := &sweep.Config{
		Workers:      *workers,
		Budget:       tok,
		PointTimeout: *ptTimeout,
	}
	var prog *progress
	if *verbose {
		cfg.OnAttempt = func(i int, name string, a sweep.Attempt) {
			status := "ok"
			if a.Err != nil {
				status = a.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%s] rung %q (%v): %s\n", name, a.RungName, a.Wall.Round(time.Millisecond), status)
		}
	} else if prog = newProgress(len(points), os.Stderr); prog != nil {
		// Live in-place progress line on a terminal; -v's per-attempt stream
		// takes precedence, and piped stderr suppresses it (newProgress
		// returns nil off-terminal).
		cfg.OnAttempt = func(i int, name string, a sweep.Attempt) { prog.attempt(a) }
		cfg.OnPoint = func(r sweep.PointResult) { prog.point(r) }
	}

	start := time.Now()
	results := sweep.Run(points, cfg)
	wall := time.Since(start)

	prog.finish() // clear the progress line before the summary table renders
	printSummary(results, param, wall, *workers)
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, results, param); err != nil {
			log.Print(err)
			return 1
		}
		fmt.Printf("full results written to %s\n", *jsonPath)
	}
	for _, r := range results {
		if !r.OK() {
			return 1 // partial failure: table printed, exit non-zero
		}
	}
	return 0
}

// buildGrid materialises the parameter grid for one oscillator family and
// returns the sweep points plus the per-point parameter values.
func buildGrid(name string, pmin, pmax float64, n int) ([]sweep.Point, []float64, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("need at least one grid point, got %d", n)
	}
	grid := func(lo, hi float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			if n == 1 {
				out[i] = lo
				continue
			}
			out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		return out
	}
	defaults := func(lo, hi float64) (float64, float64) {
		if pmin != 0 {
			lo = pmin
		}
		if pmax != 0 {
			hi = pmax
		}
		return lo, hi
	}
	switch name {
	case "hopf":
		lo, hi := defaults(2, 12)
		vals := grid(lo, hi)
		pts := make([]sweep.Point, n)
		for i, w := range vals {
			h := &osc.Hopf{Lambda: 1, Omega: w, Sigma: 0.02}
			pts[i] = sweep.Point{
				Name:   fmt.Sprintf("hopf-omega=%.4g", w),
				System: h,
				X0:     []float64{1, 0.1},
				TGuess: h.Period() * 1.05,
			}
		}
		return pts, vals, nil
	case "vanderpol":
		lo, hi := defaults(0.5, 3.5)
		vals := grid(lo, hi)
		pts := make([]sweep.Point, n)
		for i, mu := range vals {
			pts[i] = sweep.Point{
				Name:   fmt.Sprintf("vdp-mu=%.4g", mu),
				System: &osc.VanDerPol{Mu: mu, Sigma: 0.01},
				X0:     []float64{2, 0},
				// Crude relaxation-oscillation period estimate; the
				// shooting transient and closest-return scan refine it.
				TGuess: 2*math.Pi + (3-2*math.Log(2))*mu,
			}
		}
		return pts, vals, nil
	case "ring":
		lo, hi := defaults(331e-6, 715e-6)
		vals := grid(lo, hi)
		pts := make([]sweep.Point, n)
		for i, iee := range vals {
			r := osc.NewECLRingPaper()
			r.IEE = iee
			pts[i] = sweep.Point{
				Name:   fmt.Sprintf("ring-iee=%.3gu", iee*1e6),
				System: r,
				X0:     r.InitialState(),
				TGuess: 6e-9, // near the paper's 167.7 MHz nominal
				Opts:   &core.Options{Shooting: &shooting.Options{StepsPerPeriod: 4000}},
			}
		}
		return pts, vals, nil
	default:
		return nil, nil, fmt.Errorf("unknown oscillator %q (want hopf, vanderpol, ring)", name)
	}
}

func printSummary(results []sweep.PointResult, param []float64, wall time.Duration, workers int) {
	okCount, partial := 0, 0
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "point\tparam\tstatus\tf0 (Hz)\tc (s²·Hz)\tcorner (Hz)\tattempts\twall")
	for i, r := range results {
		st := status(&r)
		f0s, cs, cor := "-", "-", "-"
		if r.OK() {
			okCount++
			f0s = fmt.Sprintf("%.6e", r.Result.F0())
			cs = fmt.Sprintf("%.4e", r.Result.C)
			cor = fmt.Sprintf("%.3e", r.Result.CornerFreq())
			if st == "recovered" {
				st = fmt.Sprintf("recovered@%s", r.Attempts[len(r.Attempts)-1].RungName)
			}
		} else {
			switch st {
			case "timeout":
				st = "TIMEOUT"
			case "canceled":
				st = "CANCELED"
			case "panic":
				st = "PANIC"
			default:
				st = "FAILED"
			}
			if r.Degraded() {
				// Shooting converged: the PSS frequency is still known.
				st += "*"
				partial++
				f0s = fmt.Sprintf("%.6e", 1/r.PSS.T)
			}
		}
		fmt.Fprintf(tw, "%s\t%.6g\t%s\t%s\t%s\t%s\t%d\t%v\n",
			r.Name, param[i], st, f0s, cs, cor, len(r.Attempts), r.Wall.Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Printf("%d/%d points characterised in %v on %d workers\n", okCount, len(results), wall.Round(time.Millisecond), workers)
	if partial > 0 {
		fmt.Printf("* %d failed point(s) kept a converged periodic steady state (see JSON for details)\n", partial)
	}
}

func writeJSON(path string, results []sweep.PointResult, param []float64) error {
	out := make([]pointJSON, len(results))
	for i, r := range results {
		pj := pointJSON{
			Name:   r.Name,
			Param:  param[i],
			OK:     r.OK(),
			Status: status(&r),
			WallMS: float64(r.Wall) / float64(time.Millisecond),
		}
		if r.Err != nil {
			pj.Error = r.Err.Error()
		}
		if r.OK() {
			pj.T = r.Result.T()
			pj.F0 = r.Result.F0()
			pj.C = r.Result.C
			pj.Corner = r.Result.CornerFreq()
		} else if r.PSS != nil {
			pj.PartialT = r.PSS.T
			pj.PartialResidual = r.PSS.Residual
		}
		for _, a := range r.Attempts {
			aj := attemptJSON{
				Rung:          a.RungName,
				WallMS:        float64(a.Wall) / float64(time.Millisecond),
				ShootingIters: a.Trace.Shooting.Iters,
				Residual:      a.Trace.Shooting.Residual,
				AdjointSteps:  a.Trace.Floquet.Steps,
				ClosureErr:    a.Trace.Floquet.ClosureErr,
			}
			if a.Err != nil {
				aj.Error = a.Err.Error()
			}
			pj.Attempts = append(pj.Attempts, aj)
		}
		out[i] = pj
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
