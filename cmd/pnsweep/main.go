// Command pnsweep batch-characterises a named oscillator over a parameter
// grid using the internal/sweep engine: every grid point runs the full
// shooting → Floquet → c-quadrature pipeline on a bounded worker pool, hard
// points escalate through the retry ladder, and failures are reported
// per-point instead of aborting the sweep.
//
// Usage:
//
//	pnsweep -osc hopf|vanderpol|ring [-min v] [-max v] [-n points]
//	        [-workers n] [-timeout d] [-point-timeout d] [-json file] [-v]
//	        [-cache-dir dir] [-cache-mem bytes] [-server url] [-cluster url,url,...]
//	        [-status]
//	        [-debug-addr :6060] [-cpuprofile f] [-memprofile f] [-trace-out f]
//
// The swept parameter depends on the oscillator: hopf sweeps the angular
// frequency ω, vanderpol the nonlinearity μ, ring the tail bias current IEE.
// A summary table goes to stdout; -json writes the full per-point results —
// loss-free, including trajectories, retry history and per-stage diagnostics
// — as JSON.
//
// -server runs the same sweep remotely on a pnserve instance instead of in
// process: the grid is submitted as one job (under an Idempotency-Key, so
// client-side retries never queue duplicates), progress streams back over
// Server-Sent Events with automatic reconnection — a pnserve restart
// mid-sweep is survived transparently when the server journals its jobs —
// and the same summary table and -json output render from the job's
// loss-free results. SIGINT cancels the remote job through the API.
// -workers then bounds the job's server-side parallelism, and the server's
// cache (not -cache-dir) serves repeated points. Every remote submission
// mints a distributed trace ID and sends it as a Traceparent header, so the
// job's merged timeline — coordinator and worker spans under one trace — is
// afterwards queryable at GET <server>/v1/jobs/{id}/trace.
//
// -status (with -server) prints the server's live fleet view — worker health,
// circuit-breaker states, flap quarantine, in-flight leases, queue depth —
// from GET /v1/cluster/status, then exits.
//
// -cluster runs the sweep across several pnserve worker nodes with pnsweep
// itself acting as the cluster coordinator (internal/cluster): points are
// leased out by content-addressed routing, leases are heartbeat-renewed and
// reassigned if a worker dies mid-sweep, and when no worker is reachable the
// sweep degrades to in-process execution with a warning. Point the workers
// at one shared cache volume so reassigned points are cache hits; -cache-dir
// here backs only the local degraded path.
//
// -cache-dir reuses prior characterisations from a content-addressed result
// store shared with pnchar and pnserve: identical points are served from the
// cache (status "cached", counted on the progress line) without running the
// pipeline, and fresh results are persisted for the next run.
//
// On a terminal, a live progress line on stderr tracks points done, failures,
// retries and the ETA; it is suppressed when stderr is piped or with -v.
// -debug-addr serves /metrics (Prometheus text format) and /debug/pprof/
// while the sweep runs; -cpuprofile/-memprofile write pprof files and
// -trace-out records the pipeline's span events as JSON lines.
//
// -timeout bounds the whole sweep and -point-timeout each point's retry
// ladder by wall clock. SIGINT (Ctrl-C) cancels in-flight points; the
// summary table and JSON are still emitted for everything that completed
// (a second SIGINT aborts immediately). Cut-off points appear in the table
// as TIMEOUT or CANCELED, panicking models as PANIC, and points where
// shooting converged but the rest of the pipeline did not as FAILED* — the
// star marks a preserved partial periodic steady state, whose period is
// reported in the JSON output.
package main

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/cliobs"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/pnclient"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// pointJSON is the JSON shape of one sweep point result: the swept parameter
// and a human-readable status next to the loss-free engine result. Point
// round-trips through sweep.PointResult's JSON codec, so trajectories, the
// Floquet decomposition, per-source budgets, retry history and typed
// budget/panic error classification all survive re-reading the file.
type pointJSON struct {
	Name   string             `json:"name"`
	Param  float64            `json:"param"`
	Status string             `json:"status"` // ok | cached | recovered | failed | timeout | canceled | panic
	Point  *sweep.PointResult `json:"point"`
}

// status classifies a point result for the table and JSON.
func status(r *sweep.PointResult) string {
	switch {
	case r.OK() && r.Cached:
		return "cached"
	case r.OK() && len(r.Attempts) > 1:
		return "recovered"
	case r.OK():
		return "ok"
	case errors.Is(r.Err, sweep.ErrModelPanic):
		return "panic"
	case errors.Is(r.Err, budget.ErrBudgetExceeded):
		return "timeout"
	case errors.Is(r.Err, budget.ErrCanceled):
		return "canceled"
	default:
		return "failed"
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pnsweep: ")
	// All work happens in run so its defers — profile writers, the trace
	// file, the debug server — run before the process exits.
	os.Exit(run())
}

func run() int {
	oscName := flag.String("osc", "hopf", "oscillator: hopf (sweeps ω), vanderpol (sweeps μ), ring (sweeps IEE)")
	pmin := flag.Float64("min", 0, "sweep parameter lower bound (0 = oscillator default)")
	pmax := flag.Float64("max", 0, "sweep parameter upper bound (0 = oscillator default)")
	n := flag.Int("n", 8, "number of grid points")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size")
	lanes := flag.Int("lanes", 0, "SoA batch width: run up to this many compatible points in lockstep per worker (0 or 1 = scalar; results are bit-identical either way)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole sweep (0 = unbounded)")
	ptTimeout := flag.Duration("point-timeout", 0, "wall-clock budget per point, all retries included (0 = unbounded)")
	jsonPath := flag.String("json", "", "write full JSON results to this file")
	verbose := flag.Bool("v", false, "stream per-attempt progress to stderr")
	cacheDir := flag.String("cache-dir", "", "reuse characterisation results from this directory (shared with pnchar and pnserve; empty = no cache)")
	cacheMem := flag.Int64("cache-mem", cache.DefaultMaxBytes, "in-memory result cache bound in bytes (only with -cache-dir)")
	server := flag.String("server", "", "run the sweep remotely on this pnserve base URL (e.g. http://127.0.0.1:8080) instead of in process")
	clusterURLs := flag.String("cluster", "", "comma-separated pnserve worker base URLs: coordinate the sweep across them from this process")
	statusOnly := flag.Bool("status", false, "with -server: print the server's live cluster status (workers, breakers, leases) and exit")
	tenant := flag.String("tenant", "", "with -server: tenant identity sent as the "+serve.TenantHeader+" header; 429s are retried after the server's Retry-After (empty = the server's default tenant)")
	streamOut := flag.String("stream-out", "", "with -server: download the loss-free results as a JSONL stream from /results.jsonl into this file, instead of one ?full=1 response body")
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()

	stopObs, err := obsFlags.Start()
	if err != nil {
		log.Print(err)
		return 1
	}
	defer stopObs()

	if *statusOnly {
		if *server == "" {
			log.Print("-status requires -server")
			return 1
		}
		return runStatus(*server)
	}

	specs, param, err := buildSpecs(*oscName, *pmin, *pmax, *n)
	if err != nil {
		log.Print(err)
		return 1
	}

	if *server != "" {
		if *lanes > 1 {
			fmt.Fprintln(os.Stderr, "pnsweep: -lanes applies to in-process sweeps only; the server chooses its own batching")
		}
		return runRemote(*server, specs, param, *workers, *timeout, *jsonPath, *verbose, *tenant, *streamOut)
	}
	if *tenant != "" || *streamOut != "" {
		fmt.Fprintln(os.Stderr, "pnsweep: -tenant and -stream-out apply to -server runs only")
	}

	var store *cache.Store
	if *cacheDir != "" {
		if store, err = cache.New(cache.Options{MaxBytes: *cacheMem, Dir: *cacheDir}); err != nil {
			log.Print(err)
			return 1
		}
	}

	if *clusterURLs != "" {
		if *lanes > 1 {
			fmt.Fprintln(os.Stderr, "pnsweep: -lanes applies to in-process sweeps only; worker nodes choose their own batching")
		}
		return runCluster(*clusterURLs, specs, param, *workers, *timeout, *jsonPath, *verbose, store)
	}

	points, err := resolveSpecs(specs)
	if err != nil {
		log.Print(err)
		return 1
	}

	// Batch budget: optional deadline plus SIGINT cancellation. The first
	// interrupt cancels in-flight points but still prints the summary for
	// completed ones; a second interrupt aborts the process.
	tok, cancel := budget.WithCancel(nil)
	defer cancel()
	if *timeout > 0 {
		tok = budget.WithTimeout(tok, *timeout)
	}
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "pnsweep: interrupt — cancelling in-flight points (interrupt again to abort)")
		cancel()
		<-sigc
		os.Exit(130)
	}()

	cfg := &sweep.Config{
		Workers:      *workers,
		BatchLanes:   *lanes,
		Budget:       tok,
		PointTimeout: *ptTimeout,
		Cache:        store,
	}
	var prog *progress
	if *verbose {
		cfg.OnAttempt = func(i int, name string, a sweep.Attempt) {
			status := "ok"
			if a.Err != nil {
				status = a.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%s] rung %q (%v): %s\n", name, a.RungName, a.Wall.Round(time.Millisecond), status)
		}
	} else if prog = newProgress(len(points), os.Stderr); prog != nil {
		// Live in-place progress line on a terminal; -v's per-attempt stream
		// takes precedence, and piped stderr suppresses it (newProgress
		// returns nil off-terminal).
		cfg.OnAttempt = func(i int, name string, a sweep.Attempt) { prog.attempt(a) }
		cfg.OnPoint = func(r sweep.PointResult) { prog.point(r) }
	}

	start := time.Now()
	results := sweep.Run(points, cfg)
	wall := time.Since(start)

	prog.finish() // clear the progress line before the summary table renders
	printSummary(results, param, wall, *workers)
	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, results, param); err != nil {
			log.Print(err)
			return 1
		}
		fmt.Printf("full results written to %s\n", *jsonPath)
	}
	for _, r := range results {
		if !r.OK() {
			return 1 // partial failure: table printed, exit non-zero
		}
	}
	return 0
}

// buildSpecs materialises the parameter grid for one oscillator family as
// pure data (model name + parameter map) plus the per-point parameter values.
// Local runs resolve the specs through the same serve.PointSpec path the job
// server uses, so the stamped content-addressed cache keys are identical — a
// sweep run with -cache-dir warms the cache for pnserve and pnchar runs over
// the same directory, and vice versa; remote runs (-server) submit the specs
// verbatim as the job body.
func buildSpecs(name string, pmin, pmax float64, n int) ([]serve.PointSpec, []float64, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("need at least one grid point, got %d", n)
	}
	grid := func(lo, hi float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			if n == 1 {
				out[i] = lo
				continue
			}
			out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		return out
	}
	defaults := func(lo, hi float64) (float64, float64) {
		if pmin != 0 {
			lo = pmin
		}
		if pmax != 0 {
			hi = pmax
		}
		return lo, hi
	}
	var vals []float64
	specs := make([]serve.PointSpec, 0, n)
	switch name {
	case "hopf":
		lo, hi := defaults(2, 12)
		vals = grid(lo, hi)
		for _, w := range vals {
			specs = append(specs, serve.PointSpec{
				Name:   fmt.Sprintf("hopf-omega=%.4g", w),
				Model:  "hopf",
				Params: map[string]float64{"lambda": 1, "omega": w, "sigma": 0.02},
			})
		}
	case "vanderpol":
		lo, hi := defaults(0.5, 3.5)
		vals = grid(lo, hi)
		for _, mu := range vals {
			specs = append(specs, serve.PointSpec{
				Name:   fmt.Sprintf("vdp-mu=%.4g", mu),
				Model:  "vanderpol",
				Params: map[string]float64{"mu": mu, "sigma": 0.01},
			})
		}
	case "ring":
		lo, hi := defaults(331e-6, 715e-6)
		vals = grid(lo, hi)
		for _, iee := range vals {
			specs = append(specs, serve.PointSpec{
				Name:   fmt.Sprintf("ring-iee=%.3gu", iee*1e6),
				Model:  "ring",
				Params: map[string]float64{"iee": iee},
			})
		}
	default:
		return nil, nil, fmt.Errorf("unknown oscillator %q (want hopf, vanderpol, ring)", name)
	}
	return specs, vals, nil
}

// resolveSpecs turns the pure-data specs into runnable sweep points for the
// in-process engine.
func resolveSpecs(specs []serve.PointSpec) ([]sweep.Point, error) {
	pts := make([]sweep.Point, len(specs))
	for i, sp := range specs {
		pt, err := sp.Resolve(nil)
		if err != nil {
			return nil, fmt.Errorf("point %q: %w", sp.Name, err)
		}
		pts[i] = pt
	}
	return pts, nil
}

// runRemote submits the grid as one job to a pnserve instance and follows it
// to completion: idempotent submission, a reconnecting event stream feeding
// the same progress line, cancellation over the API on SIGINT, and the
// standard summary table + -json output rendered from the job's loss-free
// results.
func runRemote(base string, specs []serve.PointSpec, param []float64, workers int, timeout time.Duration, jsonPath string, verbose bool, tenant, streamOut string) int {
	c := pnclient.New(base, nil, pnclient.Retry{})
	if tenant != "" {
		// Every request from here on identifies as this tenant; the client's
		// retry loop honours the server's Retry-After when the tenant's quota
		// answers 429, so a throttled submission waits instead of failing.
		c.SetTenant(tenant)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Mint this run's distributed trace: the client injects it as a
	// Traceparent header, the server binds the job (and, in coordinator mode,
	// every worker job) into the same trace.
	tctx := obs.SpanContext{Trace: obs.NewTraceID()}
	ctx = obs.ContextWithSpanContext(ctx, tctx)

	// A fresh random key per invocation: retries inside this run deduplicate
	// (lost 202s, server restarts), distinct runs submit distinct jobs.
	var kb [16]byte
	if _, err := rand.Read(kb[:]); err != nil {
		log.Print(err)
		return 1
	}
	idemKey := "pnsweep-" + hex.EncodeToString(kb[:])

	start := time.Now()
	st, err := c.Sweep(ctx, serve.SweepRequest{
		Points:    specs,
		Workers:   workers,
		TimeoutMS: int64(timeout / time.Millisecond),
	}, idemKey)
	if err != nil {
		log.Print(err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "pnsweep: job %s submitted to %s (%d points, trace %s)\n", st.ID, base, len(specs), tctx.Trace)
	fmt.Fprintf(os.Stderr, "pnsweep: timeline at %s/v1/jobs/%s/trace\n", base, st.ID)

	// First SIGINT cancels the remote job (the stream then delivers the
	// canceled terminal state and the summary still renders); a second
	// aborts the process.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintf(os.Stderr, "pnsweep: interrupt — cancelling job %s (interrupt again to abort)\n", st.ID)
		cctx, cdone := context.WithTimeout(context.Background(), 10*time.Second)
		defer cdone()
		if _, err := c.Cancel(cctx, st.ID); err != nil {
			log.Printf("cancel: %v", err)
		}
		<-sigc
		os.Exit(130)
	}()

	prog := newProgress(len(specs), os.Stderr)
	onEvent := func(ev serve.Event) {
		switch ev.Type {
		case "point":
			p := ev.Point
			if verbose {
				status := "ok"
				if !p.OK {
					status = "failed"
				} else if p.Cached {
					status = "cached"
				}
				fmt.Fprintf(os.Stderr, "[%s] %s (%.0fms)\n", p.Name, status, p.WallMS)
			}
			// Feed the progress line a synthesized result carrying just the
			// fields it reads. Recovered jobs re-report pre-crash points, so
			// clamp instead of overflowing the count.
			r := sweep.PointResult{Index: p.Index, Name: p.Name, Cached: p.Cached}
			if !p.OK {
				r.Err = errors.New("failed")
			}
			if prog != nil && prog.done < len(specs) {
				prog.point(r)
			}
		case "state":
			if verbose && ev.State != "" {
				fmt.Fprintf(os.Stderr, "job %s: %s\n", st.ID, ev.State)
			}
		}
	}

	// With -stream-out the loss-free payload arrives over /results.jsonl
	// below; asking Wait for it too would pull the whole result set into one
	// ?full=1 response body for nothing.
	final, err := c.Wait(ctx, st.ID, streamOut == "", onEvent)
	prog.finish()
	if err != nil {
		log.Print(err)
		return 1
	}
	wall := time.Since(start)

	if streamOut != "" {
		n, err := streamResultsToFile(ctx, c, st.ID, streamOut, len(specs))
		if err != nil {
			log.Printf("streaming results: %v", err)
			return 1
		}
		printRemoteSummary(final, wall)
		fmt.Printf("streamed %d loss-free results to %s\n", n, streamOut)
	} else if len(final.Full) == len(param) {
		printSummary(final.Full, param, wall, workers)
		if jsonPath != "" {
			if err := writeJSON(jsonPath, final.Full, param); err != nil {
				log.Print(err)
				return 1
			}
			fmt.Printf("full results written to %s\n", jsonPath)
		}
	} else {
		// No loss-free payload (e.g. the job predates this process and was
		// recovered as terminal-only): render the compact summaries.
		printRemoteSummary(final, wall)
	}
	if final.State != serve.StateDone || final.FailedPoints > 0 {
		if final.Error != nil {
			log.Printf("job %s %s: %s", final.ID, final.State, final.Error.Msg)
		}
		return 1
	}
	return 0
}

// streamResultsToFile drains the terminal job's /results.jsonl into path, one
// loss-free codec line per point. The stream is at-least-once across the
// client's reconnects, so lines are deduplicated by point index; memory stays
// bounded by one result at a time, which is the reason to prefer this over
// ?full=1 for large sweeps.
func streamResultsToFile(ctx context.Context, c *pnclient.Client, id, path string, n int) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	seen := make(map[int]bool, n)
	var werr error
	serr := c.StreamResults(ctx, id, func(r sweep.PointResult) {
		if werr != nil || seen[r.Index] {
			return
		}
		raw, err := json.Marshal(&r)
		if err != nil {
			werr = err
			return
		}
		seen[r.Index] = true
		if _, err := bw.Write(append(raw, '\n')); err != nil {
			werr = err
		}
	})
	if serr == nil {
		serr = werr
	}
	if err := bw.Flush(); serr == nil {
		serr = err
	}
	if err := f.Close(); serr == nil {
		serr = err
	}
	return len(seen), serr
}

// runCluster coordinates the sweep across pnserve worker nodes from this
// process: pnsweep builds an internal/cluster coordinator, leases the grid
// out to the workers, and renders the usual summary table from the merged
// loss-free results. Worker death mid-sweep reassigns the affected lease; no
// reachable workers at all degrades to in-process execution with a warning.
func runCluster(urls string, specs []serve.PointSpec, param []float64, workers int, timeout time.Duration, jsonPath string, verbose bool, store *cache.Store) int {
	var nodes []string
	for _, u := range strings.Split(urls, ",") {
		if u = strings.TrimSpace(u); u != "" {
			nodes = append(nodes, strings.TrimRight(u, "/"))
		}
	}
	coord := cluster.New(cluster.Config{Workers: nodes, Cache: store})
	defer coord.Close()

	// Same budget/SIGINT contract as the in-process path: first interrupt
	// cancels (the summary still renders for completed points), second aborts.
	tok, cancel := budget.WithCancel(nil)
	defer cancel()
	if timeout > 0 {
		tok = budget.WithTimeout(tok, timeout)
	}
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "pnsweep: interrupt — cancelling in-flight leases (interrupt again to abort)")
		cancel()
		<-sigc
		os.Exit(130)
	}()

	// A fresh random job ID per invocation: the coordinator derives its lease
	// idempotency keys from it, so retries inside this run deduplicate on the
	// workers while distinct runs never collide.
	var kb [16]byte
	if _, err := rand.Read(kb[:]); err != nil {
		log.Print(err)
		return 1
	}
	jobID := "pnsweep-" + hex.EncodeToString(kb[:])
	fmt.Fprintf(os.Stderr, "pnsweep: coordinating %d points across %d worker nodes (job %s)\n", len(specs), len(nodes), jobID)

	// Lease streams complete concurrently; the progress line is not
	// thread-safe, so serialise the summaries here.
	prog := newProgress(len(specs), os.Stderr)
	var progMu sync.Mutex
	start := time.Now()
	// Root span for the coordinated run; live only when -trace-out (or
	// another emitter) is installed, in which case the lease/attempt spans
	// nest under it in the recorded trace.
	span := obs.StartSpan(nil, "pnsweep.cluster")
	defer span.End()
	// The coordinator streams each settled point through OnResult; the CLI is
	// the one place that still wants the whole set in memory (for the summary
	// table and -json), so collect into an index-aligned slice here.
	results := make([]sweep.PointResult, len(specs))
	var resMu sync.Mutex
	err := coord.RunSweep(serve.RunnerRequest{
		JobID:   jobID,
		Kind:    "sweep",
		Specs:   specs,
		Tok:     tok,
		Workers: workers,
		Span:    span,
		OnResult: func(r sweep.PointResult) {
			if r.Index < 0 || r.Index >= len(results) {
				return
			}
			resMu.Lock()
			results[r.Index] = r
			resMu.Unlock()
		},
		OnSummary: func(s serve.PointSummary) {
			progMu.Lock()
			defer progMu.Unlock()
			if verbose {
				status := "ok"
				if !s.OK {
					status = "failed"
				} else if s.Cached {
					status = "cached"
				}
				fmt.Fprintf(os.Stderr, "[%s] %s (%.0fms)\n", s.Name, status, s.WallMS)
			}
			r := sweep.PointResult{Index: s.Index, Name: s.Name, Cached: s.Cached}
			if !s.OK {
				r.Err = errors.New("failed")
			}
			if prog != nil && prog.done < len(specs) {
				prog.point(r)
			}
		},
	})
	wall := time.Since(start)
	prog.finish()
	if err != nil {
		log.Print(err)
		return 1
	}

	printSummary(results, param, wall, workers)
	if jsonPath != "" {
		if werr := writeJSON(jsonPath, results, param); werr != nil {
			log.Print(werr)
			return 1
		}
		fmt.Printf("full results written to %s\n", jsonPath)
	}
	for _, r := range results {
		if !r.OK() {
			return 1
		}
	}
	return 0
}

// runStatus renders a server's live fleet view from GET /v1/cluster/status:
// the coordinator's workers (probe health, quarantine, breaker phase, live
// lease counts), the in-flight leases, and the job queue.
func runStatus(base string) int {
	c := pnclient.New(base, nil, pnclient.Retry{})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cs, err := c.ClusterStatus(ctx)
	if err != nil {
		log.Print(err)
		return 1
	}
	role := "single node"
	if cs.Coordinator {
		role = fmt.Sprintf("coordinator (%d workers)", len(cs.Workers))
	}
	state := "serving"
	if cs.Draining {
		state = "draining"
	}
	fmt.Printf("%s: %s, %s — %d queued, %d running\n", base, role, state, cs.QueueDepth, cs.RunningJobs)
	if len(cs.Workers) > 0 {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "worker\thealthy\tquarantined\tbreaker\tleases")
		for _, w := range cs.Workers {
			fmt.Fprintf(tw, "%s\t%v\t%v\t%s\t%d\n", w.URL, w.Healthy, w.Quarantined, w.Breaker, w.ActiveLeases)
		}
		tw.Flush()
	}
	if len(cs.Leases) > 0 {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "job\tlease\tattempt\tworker\tpoints\tage")
		for _, l := range cs.Leases {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%d\t%v\n",
				l.JobID, l.Lease, l.Attempt, l.Worker, l.Points, (time.Duration(l.AgeMS) * time.Millisecond).Round(time.Millisecond))
		}
		tw.Flush()
	} else if cs.Coordinator {
		fmt.Println("no leases in flight")
	}
	return 0
}

// printRemoteSummary renders a job's compact per-point summaries when the
// loss-free payload is unavailable.
func printRemoteSummary(st serve.JobStatus, wall time.Duration) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "point\tstatus\tf0 (Hz)\tc (s²·Hz)\twall")
	okCount, cached := 0, 0
	for _, r := range st.Results {
		status := "FAILED"
		f0s, cs := "-", "-"
		if r.OK {
			okCount++
			status = "ok"
			if r.Cached {
				cached++
				status = "cached"
			}
			f0s = fmt.Sprintf("%.6e", r.F0)
			cs = fmt.Sprintf("%.4e", r.C)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.0fms\n", r.Name, status, f0s, cs, r.WallMS)
	}
	tw.Flush()
	fmt.Printf("%d/%d points characterised (cached: %d) in %v — job %s %s\n",
		okCount, st.Points, cached, wall.Round(time.Millisecond), st.ID, st.State)
}

func printSummary(results []sweep.PointResult, param []float64, wall time.Duration, workers int) {
	okCount, partial, cached := 0, 0, 0
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "point\tparam\tstatus\tf0 (Hz)\tc (s²·Hz)\tcorner (Hz)\tattempts\twall")
	for i, r := range results {
		st := status(&r)
		f0s, cs, cor := "-", "-", "-"
		if r.Cached {
			cached++
		}
		if r.OK() {
			okCount++
			f0s = fmt.Sprintf("%.6e", r.Result.F0())
			cs = fmt.Sprintf("%.4e", r.Result.C)
			cor = fmt.Sprintf("%.3e", r.Result.CornerFreq())
			if st == "recovered" {
				st = fmt.Sprintf("recovered@%s", r.Attempts[len(r.Attempts)-1].RungName)
			}
		} else {
			switch st {
			case "timeout":
				st = "TIMEOUT"
			case "canceled":
				st = "CANCELED"
			case "panic":
				st = "PANIC"
			default:
				st = "FAILED"
			}
			if r.Degraded() {
				// Shooting converged: the PSS frequency is still known.
				st += "*"
				partial++
				f0s = fmt.Sprintf("%.6e", 1/r.PSS.T)
			}
		}
		fmt.Fprintf(tw, "%s\t%.6g\t%s\t%s\t%s\t%s\t%d\t%v\n",
			r.Name, param[i], st, f0s, cs, cor, len(r.Attempts), r.Wall.Round(time.Millisecond))
	}
	tw.Flush()
	fmt.Printf("%d/%d points characterised (cached: %d) in %v on %d workers\n",
		okCount, len(results), cached, wall.Round(time.Millisecond), workers)
	if partial > 0 {
		fmt.Printf("* %d failed point(s) kept a converged periodic steady state (see JSON for details)\n", partial)
	}
}

func writeJSON(path string, results []sweep.PointResult, param []float64) error {
	out := make([]pointJSON, len(results))
	for i := range results {
		out[i] = pointJSON{
			Name:   results[i].Name,
			Param:  param[i],
			Status: status(&results[i]),
			Point:  &results[i],
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
