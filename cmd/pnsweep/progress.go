package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/sweep"
)

// progress renders a single in-place status line on a terminal:
//
//	12/32 points  2 failed  3 retries  elapsed 4s  ETA 9s
//
// It is fed from the sweep engine's OnAttempt/OnPoint hooks, which the engine
// already serialises, so no locking is needed here. Construct with
// newProgress, which returns nil when stderr is not a terminal (piped or
// redirected output stays clean) — all methods are nil-safe no-ops.
type progress struct {
	out     *os.File
	total   int
	start   time.Time
	done    int
	cached  int
	failed  int
	retries int
}

// isTerminal reports whether f is attached to a character device.
func isTerminal(f *os.File) bool {
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// newProgress returns a live progress line writing to out, or nil when out is
// not a terminal.
func newProgress(total int, out *os.File) *progress {
	if !isTerminal(out) {
		return nil
	}
	return &progress{out: out, total: total, start: time.Now()}
}

// attempt records one ladder attempt; rungs past the first count as retries.
func (p *progress) attempt(a sweep.Attempt) {
	if p == nil {
		return
	}
	if a.Rung > 0 {
		p.retries++
	}
	p.render()
}

// point records one completed point.
func (p *progress) point(r sweep.PointResult) {
	if p == nil {
		return
	}
	p.done++
	if r.Cached {
		p.cached++
	}
	if !r.OK() {
		p.failed++
	}
	p.render()
}

func (p *progress) render() {
	elapsed := time.Since(p.start)
	eta := "--"
	if p.done > 0 && p.done < p.total {
		remain := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		eta = remain.Round(time.Second).String()
	}
	// \r rewinds, \x1b[K clears the remainder of the previous line.
	fmt.Fprintf(p.out, "\r\x1b[K%d/%d points  cached: %d  %d failed  %d retries  elapsed %s  ETA %s",
		p.done, p.total, p.cached, p.failed, p.retries, elapsed.Round(time.Second), eta)
}

// finish clears the progress line so the summary table starts clean.
func (p *progress) finish() {
	if p == nil {
		return
	}
	fmt.Fprint(p.out, "\r\x1b[K")
}
