// Package phasenoise is the public facade of this repository: a Go
// implementation of the unified phase-noise theory and numerical methods of
//
//	A. Demir, A. Mehrotra, J. Roychowdhury,
//	"Phase Noise in Oscillators: A Unifying Theory and Numerical Methods
//	 for Characterisation", DAC 1998.
//
// An oscillator is described by the dynsys.System interface (vector field
// f(x), Jacobian, and noise map B(x)). Characterise runs the paper's
// Section-9 pipeline — shooting for the periodic steady state, Floquet
// analysis with the numerically stable backward-adjoint computation of the
// perturbation projection vector v1(t), and the quadrature for the scalar
// phase-diffusion constant c — and returns every practical figure of merit:
// the Lorentzian output spectrum, single-sideband phase noise L(f_m),
// timing jitter, per-source noise budgets and per-node sensitivities.
//
//	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi * 1e6, Sigma: 1e-3}
//	res, err := phasenoise.Characterise(h, []float64{1, 0}, 1e-6, nil)
//	sp := res.OutputSpectrum(0, 4)          // 4 harmonics
//	lfm := sp.LdBcLorentzian(1e3)           // L(1 kHz) in dBc/Hz
//
// See the examples/ directory for complete programs and DESIGN.md for the
// architecture and the per-experiment reproduction index.
package phasenoise

import (
	"context"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/floquet"
	"repro/internal/shooting"
	"repro/internal/verify"
)

// System is the oscillator model contract (see dynsys.System).
type System = dynsys.System

// Result is a complete phase-noise characterisation (see core.Result).
type Result = core.Result

// Spectrum is the Lorentzian output spectrum (see core.Spectrum).
type Spectrum = core.Spectrum

// SourceContribution is one noise source's share of c (see core).
type SourceContribution = core.SourceContribution

// Options configures the characterisation pipeline (see core.Options).
type Options = core.Options

// Trace carries per-stage diagnostics of one characterisation (see
// core.Trace); attach via Options.Trace. On failure or cut-off it shows how
// far each stage got.
type Trace = core.Trace

// PSS is a converged periodic steady state (see shooting.PSS).
type PSS = shooting.PSS

// FloquetDecomposition carries multipliers, u1 and v1 (see floquet).
type FloquetDecomposition = floquet.Decomposition

// Budget is a cancellation/wall-clock token threaded through the numeric
// stack at integrator-step granularity (see internal/budget). A nil *Budget
// is valid and never trips. Attach one via Options.Budget, or use
// CharacteriseContext to adapt a context.Context.
type Budget = budget.Token

// Partial collects stage outputs as the pipeline completes them, so a
// characterisation cut off by a budget — or failed after shooting converged
// — still reports what it learned. Attach via Options.Partial.
type Partial = core.Partial

// ErrCanceled and ErrBudgetExceeded are the typed cut-off sentinels every
// pipeline error wraps when a budget trips; branch with errors.Is.
var (
	ErrCanceled       = budget.ErrCanceled
	ErrBudgetExceeded = budget.ErrBudgetExceeded
)

// NewBudget returns a cancelable budget token. Calling stop (idempotent)
// cancels every computation holding the token or a child of it.
func NewBudget() (*Budget, func()) { return budget.WithCancel(nil) }

// NewBudgetTimeout returns a budget token that trips after d.
func NewBudgetTimeout(d time.Duration) *Budget { return budget.WithTimeout(nil, d) }

// BudgetFromContext adapts a context.Context into a budget token honouring
// the context's cancellation and deadline.
func BudgetFromContext(ctx context.Context) *Budget { return budget.FromContext(ctx) }

// Characterise runs the full pipeline on an oscillator model. x0 is an
// initial-state guess (anywhere in the limit cycle's basin) and tGuess a
// rough period estimate; use EstimatePeriod when no estimate is available.
func Characterise(sys System, x0 []float64, tGuess float64, opts *Options) (*Result, error) {
	return core.Characterise(sys, x0, tGuess, opts)
}

// CharacteriseContext is Characterise under a context: cancellation or
// deadline expiry aborts the pipeline at integrator-step granularity with an
// error wrapping ErrCanceled/ErrBudgetExceeded (matching both the sentinel
// and — via Options.Trace / Options.Partial — recording how far it got).
// Any budget already set in opts takes precedence.
func CharacteriseContext(ctx context.Context, sys System, x0 []float64, tGuess float64, opts *Options) (*Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Budget == nil {
		o.Budget = budget.FromContext(ctx)
	}
	return core.Characterise(sys, x0, tGuess, &o)
}

// CharacteriseAuto runs the pipeline without a period guess: the period and
// a point on the cycle are estimated from a transient integration of length
// tMax (cover a few dozen periods).
func CharacteriseAuto(sys System, x0 []float64, tMax float64, opts *Options) (*Result, error) {
	return core.CharacteriseAuto(sys, x0, tMax, opts)
}

// EstimatePeriod integrates the system and estimates the oscillation period
// and a point on the cycle from mean-crossings of the liveliest state.
func EstimatePeriod(sys System, x0 []float64, tMax float64) (float64, []float64, error) {
	return shooting.EstimatePeriod(sys, x0, tMax)
}

// FindPSS locates the periodic steady state without the noise analysis.
func FindPSS(sys System, x0 []float64, tGuess float64, opts *shooting.Options) (*PSS, error) {
	return shooting.Find(sys, x0, tGuess, opts)
}

// ModelIssue is one finding of the model self-checker (see verify.Issue).
type ModelIssue = verify.Issue

// VerifyModel runs static and dynamic sanity checks on a user-supplied
// oscillator model before characterisation: dimension consistency,
// analytic-Jacobian correctness, finite noise entries, oscillation
// detection and orbital stability. An empty result means the model passed.
func VerifyModel(sys System, x0 []float64, tGuess float64) []ModelIssue {
	return verify.Model(sys, x0, tGuess, nil)
}
