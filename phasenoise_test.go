package phasenoise

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/osc"
	"repro/internal/sde"
	"repro/internal/stochproc"
)

// ---------------------------------------------------------------------------
// End-to-end ground truth through the public facade.
// ---------------------------------------------------------------------------

func TestEndToEndHopfGroundTruth(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi * 1e3, Sigma: 0.3}
	res, err := Characterise(h, []float64{1, 0}, h.Period()*1.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.C-h.ExactC()) / h.ExactC(); rel > 1e-5 {
		t.Fatalf("c relative error %g", rel)
	}
	if rel := math.Abs(res.T()-h.Period()) / h.Period(); rel > 1e-9 {
		t.Fatalf("T relative error %g", rel)
	}
}

func TestEstimatePeriodFacade(t *testing.T) {
	v := &osc.VanDerPol{Mu: 1, Sigma: 0.01}
	T, x0, err := EstimatePeriod(v, []float64{1, 0}, 60)
	if err != nil {
		t.Fatal(err)
	}
	pss, err := FindPSS(v, x0, T, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pss.T-6.6633) > 0.02 {
		t.Fatalf("vdP period %g", pss.T)
	}
}

// ---------------------------------------------------------------------------
// Figure 2(a): bandpass oscillator — c, f0 and the computed PSD.
// ---------------------------------------------------------------------------

func TestFig2aBandpassMatchesPaper(t *testing.T) {
	res, err := experiments.CharacteriseBandpass()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: f0 = 6.66 kHz, c = 7.56e-8 s²·Hz, corner 10.56 Hz.
	if math.Abs(res.F0()-6660) > 2 {
		t.Fatalf("f0 = %g, want 6660", res.F0())
	}
	if math.Abs(res.C-7.56e-8) > 0.02e-8 {
		t.Fatalf("c = %g, want 7.56e-8", res.C)
	}
	if math.Abs(res.CornerFreq()-10.53) > 0.2 {
		t.Fatalf("corner = %g, want ≈10.5 Hz", res.CornerFreq())
	}
	pts := experiments.Fig2a(res, 100)
	if len(pts) != 401 {
		t.Fatalf("%d sweep points", len(pts))
	}
	// The PSD peaks near each of the first four harmonics and is finite.
	f0 := res.F0()
	for _, p := range pts {
		if math.IsInf(p.PSD, 0) || math.IsNaN(p.PSD) || p.PSD < 0 {
			t.Fatalf("bad PSD at %g: %g", p.F, p.PSD)
		}
	}
	// Value near the first harmonic far exceeds mid-band values.
	at := func(f float64) float64 {
		bi, bd := 0, math.Inf(1)
		for i, p := range pts {
			if d := math.Abs(p.F - f); d < bd {
				bi, bd = i, d
			}
		}
		return pts[bi].PSD
	}
	if at(f0) < 100*at(1.5*f0) {
		t.Fatalf("no line at f0: %g vs %g", at(f0), at(1.5*f0))
	}
	if at(3*f0) < 10*at(2.5*f0) {
		t.Fatalf("no line at 3f0 (odd harmonics dominate a comparator feedback): %g vs %g", at(3*f0), at(2.5*f0))
	}
}

// ---------------------------------------------------------------------------
// Figure 2(b): Monte-Carlo "spectrum analyzer" vs the Lorentzian.
// ---------------------------------------------------------------------------

func TestFig2bMonteCarloLorentzian(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo PSD comparison skipped in -short mode")
	}
	res, err := experiments.CharacteriseBandpass()
	if err != nil {
		t.Fatal(err)
	}
	r, err := experiments.Fig2b(res, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Line centre within 0.5% of f0; half-width within 35% of π·f0²·c
	// (12 paths keep the test fast, at the cost of estimator noise).
	if math.Abs(r.FitCenter-res.F0()) > 0.005*res.F0() {
		t.Fatalf("line centre %g, want ≈%g", r.FitCenter, res.F0())
	}
	if math.Abs(r.FitHalfW-r.TheoryHalfW) > 0.35*r.TheoryHalfW {
		t.Fatalf("half-width %g, theory %g", r.FitHalfW, r.TheoryHalfW)
	}
	if math.Abs(r.FitPeak-r.TheoryPeak) > 0.5*r.TheoryPeak {
		t.Fatalf("peak %g, theory %g", r.FitPeak, r.TheoryPeak)
	}
}

// ---------------------------------------------------------------------------
// Figure 3: L(f_m) approximations across the corner frequency.
// ---------------------------------------------------------------------------

func TestFig3CornerBehaviour(t *testing.T) {
	res, err := experiments.CharacteriseBandpass()
	if err != nil {
		t.Fatal(err)
	}
	pts := experiments.Fig3(res, 10)
	fc := res.CornerFreq()
	for _, p := range pts {
		diff := math.Abs(p.Lorentzian - p.InvSquare)
		switch {
		case p.Fm > 20*fc:
			if diff > 0.5 {
				t.Fatalf("fm=%g ≫ fc: approximations differ by %g dB", p.Fm, diff)
			}
		case p.Fm < fc/20:
			if diff < 10 {
				t.Fatalf("fm=%g ≪ fc: Eq.28 should have blown up (diff %g dB)", p.Fm, diff)
			}
		}
	}
	// Eq. 27 saturates at 10·log10(1/(π²f0⁴c²)·f0²c) = 10·log10(1/(π²f0²c)).
	want := 10 * math.Log10(1/(math.Pi*math.Pi*res.F0()*res.F0()*res.C))
	if math.Abs(pts[0].Lorentzian-want) > 0.5 {
		t.Fatalf("Eq.27 saturation %g, want %g", pts[0].Lorentzian, want)
	}
}

// ---------------------------------------------------------------------------
// Figure 4: ECL ring oscillator table and FOM sweep.
// ---------------------------------------------------------------------------

func TestFig4aTrendsMatchPaper(t *testing.T) {
	rows, err := experiments.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	nominal, bigRc, bigRb := rows[0], rows[1], rows[2]
	// Nominal frequency near the paper's 167.7 MHz.
	if math.Abs(nominal.F0-167.7e6) > 2e6 {
		t.Fatalf("nominal f0 = %g", nominal.F0)
	}
	// Nominal c within 3× of the paper's 0.269e-15 (substitute substrate).
	if nominal.C < 0.269e-15/3 || nominal.C > 0.269e-15*3 {
		t.Fatalf("nominal c = %g vs paper 0.269e-15", nominal.C)
	}
	// Raising Rc lowers f0 and lowers c (paper rows 1→2).
	if bigRc.F0 >= nominal.F0 {
		t.Fatal("Rc↑ should lower f0")
	}
	if bigRc.C >= nominal.C {
		t.Fatalf("Rc↑ should lower c: %g vs %g", bigRc.C, nominal.C)
	}
	// Raising rb lowers f0 and raises c (paper rows 1→3).
	if bigRb.F0 >= nominal.F0 {
		t.Fatal("rb↑ should lower f0")
	}
	if bigRb.C <= nominal.C {
		t.Fatalf("rb↑ should raise c: %g vs %g", bigRb.C, nominal.C)
	}
	// IEE sweep: f0 ≈ constant (±5%), c strictly decreasing.
	iee := rows[3:]
	for i, r := range iee {
		if math.Abs(r.F0-nominal.F0) > 0.05*nominal.F0 {
			t.Fatalf("IEE row %d: f0 moved to %g", i, r.F0)
		}
	}
	if !(nominal.C > iee[0].C && iee[0].C > iee[1].C && iee[1].C > iee[2].C) {
		t.Fatalf("c not decreasing in IEE: %g %g %g %g",
			nominal.C, iee[0].C, iee[1].C, iee[2].C)
	}
}

func TestFig4bMonotoneDecreasing(t *testing.T) {
	rows, err := experiments.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	series := experiments.Fig4b(rows)
	if len(series) != 4 {
		t.Fatalf("%d FOM points", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].IEE <= series[i-1].IEE {
			t.Fatal("series not ordered by IEE")
		}
		if series[i].FOM >= series[i-1].FOM {
			t.Fatalf("(2πf0)²c not decreasing in IEE: %g → %g", series[i-1].FOM, series[i].FOM)
		}
	}
}

// ---------------------------------------------------------------------------
// Section 6: α(t) becomes Gaussian with linearly growing variance.
// ---------------------------------------------------------------------------

func TestSec6AlphaGaussianLinearVariance(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	res, err := Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	phase := res.PhaseSDE(h)
	nPaths := 1200
	var at20, at40 []float64
	for p := 0; p < nPaths; p++ {
		rng := rand.New(rand.NewSource(int64(500 + p)))
		path := sde.EulerMaruyama(phase, []float64{0}, 0, res.T()/50, 40*50, 50, rng)
		at20 = append(at20, path.X[20][0])
		at40 = append(at40, path.X[40][0])
	}
	m20 := stochproc.SampleMoments(at20)
	m40 := stochproc.SampleMoments(at40)
	// Linear variance growth: Var[α(40T)] ≈ 2·Var[α(20T)].
	if r := m40.Variance / m20.Variance; r < 1.7 || r > 2.3 {
		t.Fatalf("variance ratio %g, want ≈2", r)
	}
	// Var[α(t)] = c·t.
	want20 := res.C * 20 * res.T()
	if math.Abs(m20.Variance-want20) > 0.15*want20 {
		t.Fatalf("Var[α(20T)] = %g, want %g", m20.Variance, want20)
	}
	// Asymptotic Gaussianity.
	if !m40.IsGaussianish(5) {
		t.Fatalf("α(40T) not Gaussian: skew %g kurt %g", m40.Skewness, m40.ExcessKurtosis)
	}
}

// ---------------------------------------------------------------------------
// Section 7: stationarity — the output autocorrelation loses its t
// dependence (no cyclostationary components survive).
// ---------------------------------------------------------------------------

func TestSec7OutputStationarity(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble stationarity check skipped in -short mode")
	}
	// A fast-diffusing Hopf so the asymptotic regime arrives quickly.
	h := &osc.Hopf{Lambda: 4, Omega: 2 * math.Pi, Sigma: 0.35}
	res, err := Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := sde.System{
		Dim: 2, NumNoise: h.NumNoise(),
		Drift: func(tt float64, x, dst []float64) { h.Eval(x, dst) },
		Diff:  func(tt float64, x []float64, dst []float64) { h.Noise(x, dst) },
	}
	T := res.T()
	dt := T / 200
	// Simulate past the mixing time: σ_α(t*) ≈ T when c·t* = T² ⇒ t* = T²/c.
	tMix := T * T / res.C / 8
	steps := int(tMix/dt) + 200*4
	cfg := sde.EnsembleConfig{Paths: 600, Steps: steps, Stride: 1, Seed: 11, Dt: dt}
	ens := sde.Ensemble(full, res.PSS.X0, cfg)
	// Ensemble autocorrelation R(t, τ) = E[x(t)x(t+τ)] at fixed τ = T/3 for
	// several t beyond the mixing time, separated by fractions of a period:
	// any surviving cyclostationarity would make them differ.
	base := steps - 4*200
	lag := 200 / 3
	var rs []float64
	for _, off := range []int{0, 50, 100, 150} { // t spaced by T/4
		var s sde.Stats
		for _, p := range ens {
			s.Add(p.X[base+off][0] * p.X[base+off+lag][0])
		}
		rs = append(rs, s.Mean())
	}
	// All four must agree within Monte-Carlo error (≈ 1/√600 of the power).
	power := 0.5
	for i := 1; i < len(rs); i++ {
		if math.Abs(rs[i]-rs[0]) > 4*power/math.Sqrt(600) {
			t.Fatalf("autocorrelation depends on t: %v", rs)
		}
	}
}

// ---------------------------------------------------------------------------
// Section 7/8: total carrier power is preserved under phase noise (Eq. 25).
// ---------------------------------------------------------------------------

func TestSec7TotalPowerPreserved(t *testing.T) {
	res, err := experiments.CharacteriseBandpass()
	if err != nil {
		t.Fatal(err)
	}
	sp := res.OutputSpectrum(0, 4)
	// Eq. 25: Σ 2|X_i|² equals the mean-square AC power of the noiseless
	// waveform (Parseval).
	ns := 4096
	msq := 0.0
	mean := 0.0
	buf := make([]float64, 2)
	var vals []float64
	for k := 0; k < ns; k++ {
		res.PSS.Orbit.At(res.T()*float64(k)/float64(ns), buf)
		vals = append(vals, buf[0])
		mean += buf[0]
	}
	mean /= float64(ns)
	for _, v := range vals {
		msq += (v - mean) * (v - mean)
	}
	msq /= float64(ns)
	if math.Abs(sp.TotalPower()-msq) > 0.01*msq {
		t.Fatalf("Eq.25 power %g, waveform AC power %g", sp.TotalPower(), msq)
	}
}

// ---------------------------------------------------------------------------
// Section 8 / McNeill: crossing jitter variance grows linearly with slope c.
// ---------------------------------------------------------------------------

func TestSec8JitterSlopeMatchesC(t *testing.T) {
	if testing.Short() {
		t.Skip("jitter Monte Carlo skipped in -short mode")
	}
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	res, err := Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := sde.System{
		Dim: 2, NumNoise: h.NumNoise(),
		Drift: func(tt float64, x, dst []float64) { h.Eval(x, dst) },
		Diff:  func(tt float64, x []float64, dst []float64) { h.Noise(x, dst) },
	}
	jr, err := experiments.JitterExperiment(full, res, 0, 200, 30, 21)
	if err != nil {
		t.Fatal(err)
	}
	if jr.RelativeErr > 0.25 {
		t.Fatalf("jitter slope %g vs c %g (%.0f%% off)",
			jr.MeasuredC, jr.TheoryC, 100*jr.RelativeErr)
	}
}

// ---------------------------------------------------------------------------
// Per-source budget sanity on the ring (Eqs. 30–31).
// ---------------------------------------------------------------------------

func TestSec8RingBudgetSymmetricAndComplete(t *testing.T) {
	res, err := experiments.CharacteriseRingFull(500, 58, 331e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSource) != 12 {
		t.Fatalf("%d sources", len(res.PerSource))
	}
	sum := 0.0
	byKind := map[string]float64{}
	for _, s := range res.PerSource {
		sum += s.Fraction
		// Strip the stage prefix: "stageN.kind".
		byKind[s.Label[7:]] += s.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %g", sum)
	}
	// Ring symmetry: the three stages of each kind contribute equally, so
	// each kind's total must be ≈ 3× any one stage's share.
	for _, s := range res.PerSource {
		kind := s.Label[7:]
		if math.Abs(3*s.Fraction-byKind[kind]) > 0.02 {
			t.Fatalf("stage asymmetry for %s: %g vs kind total %g", s.Label, s.Fraction, byKind[kind])
		}
	}
}
