package phasenoise_test

import (
	"fmt"
	"math"

	phasenoise "repro"
	"repro/internal/osc"
)

// ExampleCharacterise runs the full phase-noise pipeline on the Hopf
// normal-form oscillator, whose phase-diffusion constant is exactly σ²/ω².
func ExampleCharacterise() {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.1}
	res, err := phasenoise.Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("T  = %.6f s\n", res.T())
	fmt.Printf("c  = %.6e s²·Hz (closed form %.6e)\n", res.C, h.ExactC())
	fmt.Printf("fc = %.6e Hz\n", res.CornerFreq())
	// Output:
	// T  = 1.000000 s
	// c  = 2.533030e-04 s²·Hz (closed form 2.533030e-04)
	// fc = 7.957747e-04 Hz
}

// ExampleResult_OutputSpectrum evaluates the Lorentzian output spectrum and
// the single-sideband phase noise of a characterised oscillator.
func ExampleResult_OutputSpectrum() {
	h := &osc.Hopf{Lambda: 1e4, Omega: 2 * math.Pi * 1e4, Sigma: 0.05}
	res, err := phasenoise.Characterise(h, []float64{1, 0}, 1e-4, nil)
	if err != nil {
		panic(err)
	}
	sp := res.OutputSpectrum(0, 2)
	fmt.Printf("total power    = %.3f\n", sp.TotalPower())
	fmt.Printf("L(1 kHz)       = %.2f dBc/Hz\n", sp.LdBcLorentzian(1e3))
	fmt.Printf("L(10 kHz) - L(1 kHz) = %.1f dB (1/f² slope)\n",
		sp.LdBcLorentzian(1e4)-sp.LdBcLorentzian(1e3))
	// Output:
	// total power    = 0.500
	// L(1 kHz)       = -101.98 dBc/Hz
	// L(10 kHz) - L(1 kHz) = -20.0 dB (1/f² slope)
}

// ExampleEstimatePeriod shows the period-free entry point: integrate,
// detect the cycle, then characterise.
func ExampleEstimatePeriod() {
	v := &osc.VanDerPol{Mu: 1, Sigma: 0.01}
	T, x0, err := phasenoise.EstimatePeriod(v, []float64{0.5, 0}, 60)
	if err != nil {
		panic(err)
	}
	pss, err := phasenoise.FindPSS(v, x0, T, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("van der Pol (µ=1) period = %.4f\n", pss.T)
	// Output:
	// van der Pol (µ=1) period = 6.6633
}
