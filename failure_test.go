package phasenoise

// Failure-injection tests: broken or adversarial models must produce
// descriptive errors, never panics, wrong-but-plausible numbers, or hangs.

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/ode"
	"repro/internal/osc"
	"repro/internal/sde"
	"repro/internal/shooting"
)

// nanField becomes NaN once the state leaves a disc — emulating a device
// model evaluated outside its validity range. evals counts vector-field
// evaluations so tests can assert the pipeline bails early.
type nanField struct {
	osc.Hopf
	evals int
}

func (m *nanField) Eval(x, dst []float64) {
	m.evals++
	m.Hopf.Eval(x, dst)
	if x[0]*x[0]+x[1]*x[1] > 4 {
		dst[0] = math.NaN()
	}
}

func TestNaNVectorFieldFailsCleanly(t *testing.T) {
	m := &nanField{Hopf: osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}}
	// Start outside the validity disc: the integrator must bail, not hang.
	_, err := Characterise(m, []float64{3, 0}, 1, nil)
	if err == nil {
		t.Fatal("expected failure for NaN vector field")
	}
	// The failure must carry the integrator-level type through the shooting
	// wrapper, so callers (and the sweep retry ladder) can branch on it.
	if !errors.Is(err, shooting.ErrIntegration) {
		t.Fatalf("error not tagged shooting.ErrIntegration: %v", err)
	}
	if !errors.Is(err, ode.ErrStepSizeUnderflow) && !errors.Is(err, ode.ErrNonFinite) {
		t.Fatalf("error lost the underlying integrator sentinel: %v", err)
	}
	// And it must bail within a few (rejected, shrinking) steps, not after
	// grinding through the whole transient grid.
	if m.evals > 5000 {
		t.Fatalf("took %d field evaluations to refuse a NaN state", m.evals)
	}
}

// slowField hangs inside every Eval long enough that an unbudgeted
// characterisation would take minutes — emulating an expensive device model
// or a deadlocked external evaluator.
type slowField struct {
	osc.Hopf
	delay time.Duration
}

func (m *slowField) Eval(x, dst []float64) {
	time.Sleep(m.delay)
	m.Hopf.Eval(x, dst)
}

func TestHangingModelCutOffByBudget(t *testing.T) {
	m := &slowField{Hopf: osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}, delay: time.Millisecond}
	start := time.Now()
	var ctr Trace
	res, err := Characterise(m, []float64{1, 0.1}, 1, &Options{
		Budget: NewBudgetTimeout(150 * time.Millisecond),
		Trace:  &ctr,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("hanging model characterised in %v: %+v", elapsed, res)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	// The cut-off must be prompt: the budget is polled per integrator step,
	// so one step's delay past the deadline is the worst case. Allow a wide
	// margin for loaded CI machines, but nowhere near the minutes a full
	// characterisation of this model would take.
	if elapsed > 5*time.Second {
		t.Fatalf("budgeted characterisation took %v, want prompt cut-off", elapsed)
	}
	// The trace shows the shooting stage was underway and Floquet never ran.
	if ctr.Shooting.Wall == 0 {
		t.Fatal("trace records no shooting progress before the cut-off")
	}
	if ctr.Floquet.Wall != 0 || ctr.Floquet.Steps != 0 {
		t.Fatalf("floquet stage ran despite shooting being cut off: %+v", ctr.Floquet)
	}
}

// wrongJacobian returns a Jacobian unrelated to the field: the monodromy is
// garbage, so Floquet analysis must refuse (no unit multiplier) rather than
// deliver a bogus c.
type wrongJacobian struct{ osc.Hopf }

func (m *wrongJacobian) Jacobian(x []float64, dst []float64) {
	dst[0], dst[1], dst[2], dst[3] = -7, 0, 0, -7
}

func TestWrongJacobianRefused(t *testing.T) {
	m := &wrongJacobian{osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}}
	_, err := Characterise(m, []float64{1, 0}, 1, nil)
	if err == nil {
		t.Fatal("expected failure for inconsistent Jacobian")
	}
	if !strings.Contains(err.Error(), "multiplier") && !strings.Contains(err.Error(), "converge") {
		t.Fatalf("unexpected error kind: %v", err)
	}
	// And the model checker pinpoints the cause.
	issues := VerifyModel(m, []float64{1, 0}, 1)
	found := false
	for _, i := range issues {
		if i.Check == "jacobian" {
			found = true
		}
	}
	if !found {
		t.Fatalf("VerifyModel missed the Jacobian bug: %v", issues)
	}
}

// decayOsc spirals into a fixed point: there is no limit cycle at all.
type decayOsc struct{}

func (d *decayOsc) Dim() int { return 2 }
func (d *decayOsc) Eval(x, dst []float64) {
	dst[0] = -0.1*x[0] - x[1]
	dst[1] = x[0] - 0.1*x[1]
}
func (d *decayOsc) Jacobian(x []float64, dst []float64) {
	dst[0], dst[1], dst[2], dst[3] = -0.1, -1, 1, -0.1
}
func (d *decayOsc) NumNoise() int                    { return 1 }
func (d *decayOsc) Noise(x []float64, dst []float64) { dst[0], dst[1] = 0.1, 0 }
func (d *decayOsc) NoiseLabels() []string            { return []string{"s"} }

func TestDecayingSystemRefused(t *testing.T) {
	// Characterise (with a period guess) and CharacteriseAuto must both
	// refuse a system that merely rings down.
	if _, err := Characterise(&decayOsc{}, []float64{1, 0}, 2*math.Pi, nil); err == nil {
		t.Fatal("spiral sink accepted by Characterise")
	}
	if _, err := CharacteriseAuto(&decayOsc{}, []float64{1, 0}, 100, nil); err == nil {
		t.Fatal("spiral sink accepted by CharacteriseAuto")
	}
}

// burstNoise returns enormous noise entries — the characterisation itself
// is linear in B so it must still complete, with a proportionally huge c
// (garbage in, proportional garbage out, no overflow).
type burstNoise struct{ osc.Hopf }

func (m *burstNoise) Noise(x []float64, dst []float64) {
	dst[0], dst[1] = 1e12, 0
	dst[2], dst[3] = 0, 1e12
}

func TestHugeNoiseStillFinite(t *testing.T) {
	m := &burstNoise{osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 1}}
	res, err := Characterise(m, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e24 / (2 * math.Pi * 2 * math.Pi) // σ²/ω² with σ = 1e12
	if math.IsInf(res.C, 0) || math.IsNaN(res.C) {
		t.Fatal("c overflowed")
	}
	if math.Abs(res.C-want) > 1e-5*want {
		t.Fatalf("c = %g, want %g", res.C, want)
	}
}

func TestZeroPathEnsemble(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	sys := sde.System{
		Dim: 2, NumNoise: 2,
		Drift: func(tt float64, x, dst []float64) { h.Eval(x, dst) },
		Diff:  func(tt float64, x []float64, dst []float64) { h.Noise(x, dst) },
	}
	paths := sde.Ensemble(sys, []float64{1, 0}, sde.EnsembleConfig{Paths: 0, Steps: 10, Dt: 0.01})
	if len(paths) != 0 {
		t.Fatalf("%d paths from empty request", len(paths))
	}
}

// stiffTrap has an enormous time-scale spread; the characterisation should
// either succeed or fail with an explicit error — never silently return a
// non-converged answer.
func TestExtremeStiffnessHandledOrRefused(t *testing.T) {
	f := &osc.FitzHughNagumo{Eps: 0.002, A: 0, SigmaV: 1e-3, SigmaW: 1e-3}
	res, err := CharacteriseAuto(f, []float64{1, 0}, 60, nil)
	if err != nil {
		t.Logf("refused (acceptable): %v", err)
		return
	}
	if res.PSS.Residual > 1e-6 {
		t.Fatalf("accepted non-converged orbit: residual %g", res.PSS.Residual)
	}
	if res.C <= 0 || math.IsNaN(res.C) {
		t.Fatalf("bad c: %g", res.C)
	}
}
