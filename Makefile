# Tier-1 verification: build, full test suite, vet, and a race-detector pass
# over every package (the sweep engine, Monte-Carlo ensembles, and the budget
# token thread concurrency through the whole stack). Run `make verify` before
# every PR. CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: verify build test vet race chaos chaos-cluster bench bench-json bench-compare smoke-serve

verify: build test vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 10m ./...

# Fault-injection (chaos) suite under the race detector: the faultinject
# package itself, the named-fault consumers in cache/sweep/osc/serve
# (journal durability, readiness lifecycle, injected I/O and model faults),
# and the SIGKILL crash-recovery e2e in cmd/pnserve. CI runs the same
# commands (chaos job).
chaos:
	$(GO) test -race -timeout 10m ./internal/faultinject/
	$(GO) test -race -timeout 15m \
		-run 'TestChaos|TestFault|TestJournal|TestReadyz|TestCrashRecovery' \
		./internal/cache/ ./internal/sweep/ ./internal/osc/ ./internal/serve/ ./internal/pll/ ./cmd/pnserve

# Cluster-fabric chaos suite under the race detector: lease expiry and renewal
# on the worker side, the coordinator's injected dispatch/kill/heartbeat/
# transport faults, coordinator-restart resume, and the real-SIGKILL e2e over
# a worker fleet (child processes are built with -race too). CI runs the same
# command (chaos-cluster job).
chaos-cluster:
	$(GO) test -race -timeout 20m \
		-run 'TestCluster|TestChaos|TestLease' \
		./internal/cluster/ ./internal/serve/ ./cmd/pnserve

# End-to-end smoke of the job server: build pnserve, characterise over HTTP,
# assert the identical resubmission is a cache hit, scrape /metrics. CI runs
# the same script (serve-smoke job).
smoke-serve:
	./scripts/smoke_serve.sh

bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...

# Machine-readable benchmark record for trend tracking: -count 3 for noise
# estimation, output captured as BENCH_<date>.json (go test -json stream;
# BenchmarkResult lines carry ns/op, B/op, allocs/op). CI uploads the same
# file as a build artifact.
bench-json:
	$(GO) test -json -bench . -benchmem -count 3 -run '^$$' ./... > BENCH_$$(date +%Y-%m-%d).json

# Benchmark regression gate: re-runs the gated benchmark set and fails on
# >10% ns/op drift (CPU-calibrated vs the machine that wrote the baseline),
# any allocs/op increase, or the batched sweep dropping below its required
# speedup over the scalar sweep. Refresh after intentional perf changes with
# `go run ./scripts/bench_compare -update`.
bench-compare:
	$(GO) run ./scripts/bench_compare
