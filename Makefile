# Tier-1 verification: build, full test suite, vet, and a race-detector pass
# over the concurrent packages (the Monte-Carlo ensemble engine and the batch
# sweep engine). Run `make verify` before every PR.

GO ?= go

.PHONY: verify build test vet race bench

verify: build test vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/sde/... ./internal/sweep/...

bench:
	$(GO) test -bench . -benchmem -benchtime 1x ./...
