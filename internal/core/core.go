// Package core implements the paper's primary contribution: the unified
// phase-noise characterisation of autonomous oscillators
// (Demir–Mehrotra–Roychowdhury, DAC 1998).
//
// Given an oscillator model (dynsys.System), the pipeline is
//
//	shooting.Find  →  floquet.Analyze  →  core.Characterise
//
// producing the scalar phase-diffusion constant
//
//	c = (1/T) ∫₀ᵀ v1ᵀ(τ) B(xs(τ)) Bᵀ(xs(τ)) v1(τ) dτ      (Eq. 29)
//
// from which every practical figure of merit follows: the Lorentzian output
// spectrum (Eqs. 23/24), single-sideband phase noise L(f_m) (Eqs. 26–28),
// timing jitter Var[t_k] = c·k·T, per-source contributions c_i (Eqs. 30–31)
// and per-node sensitivities (Eq. 32).
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/dynsys"
	"repro/internal/floquet"
	"repro/internal/fourier"
	"repro/internal/obs"
	"repro/internal/ode"
	"repro/internal/sde"
	"repro/internal/shooting"
)

// coreInstruments are the pipeline-level metrics.
type coreInstruments struct {
	ok     *obs.Counter // pn_core_characterisations_total{outcome="ok"}
	failed *obs.Counter // pn_core_characterisations_total{outcome="error"}
}

var coreMetrics = obs.NewView(func(r *obs.Registry) *coreInstruments {
	runs := r.CounterVec("pn_core_characterisations_total", "Characterise calls, by outcome.", "outcome")
	return &coreInstruments{ok: runs.With("ok"), failed: runs.With("error")}
})

// SourceContribution is one noise source's share of the phase-diffusion
// constant (Eq. 30): c = Σ c_i.
type SourceContribution struct {
	Label    string  `json:"label"`
	C        float64 `json:"c"`        // c_i in s²·Hz
	Fraction float64 `json:"fraction"` // c_i / c (Eq. 31)
}

// Result is a complete phase-noise characterisation of one oscillator.
type Result struct {
	PSS     *shooting.PSS
	Floquet *floquet.Decomposition

	C float64 // phase-diffusion constant, s²·Hz (Eq. 29)

	// PerSource decomposes C by noise source, sorted by decreasing share.
	PerSource []SourceContribution
	// Sensitivity[k] = cs^(k) (Eq. 32): the c produced by a unit-intensity
	// source attached to state equation k.
	Sensitivity []float64

	labels []string
}

// T returns the oscillation period.
func (r *Result) T() float64 { return r.PSS.T }

// F0 returns the oscillation frequency in Hz.
func (r *Result) F0() float64 { return r.PSS.F0() }

// CornerFreq returns the Lorentzian corner (half-width) f_c = π f0² c of the
// first-harmonic phase-noise spectrum; below f_c the 1/f² approximation
// (Eq. 28) breaks down and the exact form (Eq. 27) must be used.
func (r *Result) CornerFreq() float64 {
	f0 := r.F0()
	return math.Pi * f0 * f0 * r.C
}

// JitterVariance returns the mean-square timing error of the k-th clock
// transition, Var[t_k] = c·k·T (paper Section 8, "Timing jitter").
func (r *Result) JitterVariance(k int) float64 {
	return r.C * float64(k) * r.PSS.T
}

// JitterRMSAfter returns the RMS accumulated jitter after elapsed time
// τ ≈ kT, σ(τ) = √(c·τ).
func (r *Result) JitterRMSAfter(tau float64) float64 {
	return math.Sqrt(r.C * tau)
}

// Trace aggregates per-stage diagnostics of one Characterise call: how long
// each pipeline stage took, how hard the solvers worked, and how well they
// converged. Attach a zero Trace to Options.Trace; on failure the populated
// stages show where the pipeline stopped.
type Trace struct {
	Shooting   shooting.Trace // Newton shooting diagnostics
	Floquet    floquet.Trace  // Floquet/adjoint diagnostics
	QuadPoints int            // quadrature points used for the c integral
	QuadWall   time.Duration  // wall-clock time of the c quadratures
	Wall       time.Duration  // total wall-clock time of Characterise
}

// Options configures Characterise.
type Options struct {
	Shooting *shooting.Options
	Floquet  *floquet.Options
	// QuadPoints sets the number of quadrature points for the c integral
	// (default: the adjoint trajectory knots).
	QuadPoints int
	// Trace, when non-nil, receives per-stage diagnostics. Stage traces
	// configured directly on Shooting/Floquet options are preserved;
	// otherwise the stages record into this aggregate trace.
	Trace *Trace
	// Budget, when non-nil, threads a cancellation/wall-clock token through
	// every pipeline stage (polled at integrator-step granularity). On a
	// cut-off, Characterise returns a wrapped budget.ErrCanceled or
	// budget.ErrBudgetExceeded naming the interrupted stage, and the Trace
	// shows how far each stage got. Stage budgets configured directly on
	// Shooting/Floquet options are preserved.
	Budget *budget.Token
	// Partial, when non-nil, receives intermediate pipeline products as each
	// stage completes, so a caller keeps everything the pipeline learned even
	// when a later stage fails or the budget expires.
	Partial *Partial
	// Span, when non-nil, parents the "core.Characterise" span (with nested
	// shooting/floquet/quadrature child spans) under an existing trace. When
	// nil, Characterise starts a root span on the process-wide emitter — or
	// none at all if tracing is off.
	Span *obs.Span
	// ReusePSS, when non-nil, skips the shooting stage entirely and runs the
	// downstream analysis on this already-converged periodic steady state.
	// Retry ladders use it when an earlier attempt failed downstream of
	// shooting with unchanged shooting knobs: the solution is still valid,
	// only the adjoint or quadrature resolution changed, so re-running Newton
	// shooting would reproduce it at full cost. The caller owns the validity
	// argument (same system, same shooting knobs, residual within tolerance).
	ReusePSS *shooting.PSS
}

// Partial collects the pipeline products that had already converged when
// Characterise failed partway: the periodic steady state after shooting, the
// Floquet decomposition after the adjoint analysis. Fields are nil for stages
// that never completed.
type Partial struct {
	PSS     *shooting.PSS
	Floquet *floquet.Decomposition
}

// Characterise runs the full Section-9 pipeline: periodic steady state by
// shooting, Floquet decomposition with the stable backward-adjoint
// computation of v1(t), and the quadratures for c, per-source contributions
// and per-node sensitivities.
func Characterise(sys dynsys.System, x0 []float64, tGuess float64, opts *Options) (*Result, error) {
	var parent *obs.Span
	if opts != nil {
		parent = opts.Span
	}
	sp := obs.StartSpan(parent, "core.Characterise")
	res, err := characterise(sys, x0, tGuess, opts, sp)
	m := coreMetrics.Get()
	if err != nil {
		m.failed.Inc()
	} else {
		m.ok.Inc()
		sp.SetAttr("c", res.C)
		sp.SetAttr("period", res.T())
	}
	sp.EndErr(err)
	return res, err
}

// stagePlan is one point's fully resolved pipeline configuration: stage
// option copies with traces and budgets threaded into the aggregate, so the
// caller's option structs stay untouched.
type stagePlan struct {
	so   *shooting.Options
	fo   *floquet.Options
	qp   int
	tr   *Trace
	bud  *budget.Token
	part *Partial
}

func resolveStages(opts *Options) stagePlan {
	var p stagePlan
	if opts != nil {
		p.so, p.fo, p.qp, p.tr = opts.Shooting, opts.Floquet, opts.QuadPoints, opts.Trace
		p.bud, p.part = opts.Budget, opts.Partial
	}
	if p.tr != nil || p.bud != nil {
		sc := shooting.Options{}
		if p.so != nil {
			sc = *p.so
		}
		if p.tr != nil && sc.Trace == nil {
			sc.Trace = &p.tr.Shooting
		}
		if sc.Budget == nil {
			sc.Budget = p.bud
		}
		p.so = &sc
		fc := floquet.Options{}
		if p.fo != nil {
			fc = *p.fo
		}
		if p.tr != nil && fc.Trace == nil {
			fc.Trace = &p.tr.Floquet
		}
		if fc.Budget == nil {
			fc.Budget = p.bud
		}
		p.fo = &fc
	}
	return p
}

func characterise(sys dynsys.System, x0 []float64, tGuess float64, opts *Options, sp *obs.Span) (*Result, error) {
	p := resolveStages(opts)
	so, fo, qp, tr := p.so, p.fo, p.qp, p.tr
	bud, part := p.bud, p.part
	if tr != nil {
		*tr = Trace{}
		start := time.Now()
		defer func() { tr.Wall = time.Since(start) }()
	}
	var pss *shooting.PSS
	var err error
	if opts != nil && opts.ReusePSS != nil {
		pss = opts.ReusePSS
		sp.SetAttr("pss_reused", true)
	} else {
		ssp := obs.StartSpan(sp, "shooting.Find")
		pss, err = shooting.Find(sys, x0, tGuess, so)
		ssp.EndErr(err)
		if err != nil {
			if budget.Is(err) {
				budget.RecordTrip("shooting")
			}
			return nil, fmt.Errorf("core: periodic steady state: %w", err)
		}
	}
	if part != nil {
		part.PSS = pss
	}
	fsp := obs.StartSpan(sp, "floquet.Analyze")
	dec, err := floquet.Analyze(sys, pss, fo)
	fsp.EndErr(err)
	if err != nil {
		if budget.Is(err) {
			budget.RecordTrip("floquet")
		}
		return nil, fmt.Errorf("core: floquet analysis: %w", err)
	}
	if part != nil {
		part.Floquet = dec
	}
	if err := bud.Err(); err != nil {
		budget.RecordTrip("quadrature")
		return nil, fmt.Errorf("core: before c quadrature: %w", err)
	}
	if qp <= 0 {
		qp = max(len(dec.V1.Points), 1000) // FromDecomposition's default grid
	}
	qsp := obs.StartSpan(sp, "quadrature")
	qStart := time.Now()
	res, err := FromDecomposition(sys, pss, dec, qp)
	qsp.SetAttr("points", qp)
	qsp.EndErr(err)
	if tr != nil {
		tr.QuadWall = time.Since(qStart)
		tr.QuadPoints = qp
	}
	return res, err
}

// CharacteriseAuto is Characterise without a period guess: it integrates
// the system for tMax, estimates the period and a point on the cycle from
// mean-crossings, then runs the full pipeline. tMax should cover at least a
// few dozen oscillation periods.
func CharacteriseAuto(sys dynsys.System, x0 []float64, tMax float64, opts *Options) (*Result, error) {
	var bud *budget.Token
	if opts != nil {
		bud = opts.Budget
	}
	T, xc, err := shooting.EstimatePeriodBudget(sys, x0, tMax, bud)
	if err != nil {
		return nil, fmt.Errorf("core: period estimation: %w", err)
	}
	return Characterise(sys, xc, T, opts)
}

// FromDecomposition computes the c quadratures for an existing periodic
// steady state and Floquet decomposition (Eqs. 29–32). quadPoints <= 0
// selects a default grid.
func FromDecomposition(sys dynsys.System, pss *shooting.PSS, dec *floquet.Decomposition, quadPoints int) (*Result, error) {
	n := sys.Dim()
	p := sys.NumNoise()
	if quadPoints <= 0 {
		quadPoints = len(dec.V1.Points)
		if quadPoints < 1000 {
			quadPoints = 1000
		}
	}
	x := make([]float64, n)
	v := make([]float64, n)
	b := make([]float64, n*p)
	perSource := make([]float64, p)
	sens := make([]float64, n)
	total := 0.0
	// Uniform trapezoidal quadrature over one period: the integrand is
	// T-periodic, so the trapezoid rule converges spectrally fast. Both
	// trajectories are on uniform grids, so the O(1) locators replace a
	// binary search per sample with identical interpolants.
	orbitLoc := ode.NewLocator(pss.Orbit)
	v1Loc := ode.NewLocator(dec.V1)
	h := pss.T / float64(quadPoints)
	for k := 0; k < quadPoints; k++ {
		tk := float64(k) * h
		orbitLoc.At(tk, x)
		v1Loc.At(tk, v)
		sys.Noise(x, b)
		// [v1ᵀ B]_j for each source column j.
		for j := 0; j < p; j++ {
			s := 0.0
			for i := 0; i < n; i++ {
				s += v[i] * b[i*p+j]
			}
			perSource[j] += s * s
			total += s * s
		}
		for i := 0; i < n; i++ {
			sens[i] += v[i] * v[i]
		}
	}
	inv := 1 / float64(quadPoints) // (1/T)·h = 1/quadPoints
	total *= inv
	for j := range perSource {
		perSource[j] *= inv
	}
	for i := range sens {
		sens[i] *= inv
	}

	labels := sys.NoiseLabels()
	contribs := make([]SourceContribution, p)
	for j := 0; j < p; j++ {
		frac := 0.0
		if total > 0 {
			frac = perSource[j] / total
		}
		lbl := fmt.Sprintf("source%d", j)
		if j < len(labels) {
			lbl = labels[j]
		}
		contribs[j] = SourceContribution{Label: lbl, C: perSource[j], Fraction: frac}
	}
	sort.SliceStable(contribs, func(i, j int) bool { return contribs[i].C > contribs[j].C })

	return &Result{
		PSS:         pss,
		Floquet:     dec,
		C:           total,
		PerSource:   contribs,
		Sensitivity: sens,
		labels:      labels,
	}, nil
}

// OutputSpectrum extracts the Fourier coefficients X_i (i = −nh..nh) of
// state component `component` of the periodic steady state and pairs them
// with c, yielding the Lorentzian output spectrum of that oscillator output.
func (r *Result) OutputSpectrum(component, nh int) *Spectrum {
	ns := 1 << 12
	samples := make([]float64, ns)
	buf := make([]float64, len(r.PSS.X0))
	for k := 0; k < ns; k++ {
		r.PSS.Orbit.At(r.PSS.T*float64(k)/float64(ns), buf)
		samples[k] = buf[component]
	}
	coeffs := fourier.SeriesCoefficients(samples, nh)
	return &Spectrum{F0: r.F0(), C: r.C, Coeffs: coeffs}
}

// PhaseSDE returns the exact nonlinear phase-deviation SDE of Eq. (9),
//
//	dα = v1ᵀ(t+α)·B(xs(t+α))·dW(t),
//
// as an sde.System with a single state (α) and the oscillator's p noise
// sources, suitable for Monte-Carlo simulation of α(t) without simulating
// the full state. (Itô interpretation, zero drift.)
//
// The returned system reuses internal scratch buffers across Diff calls —
// the Monte-Carlo inner loop — so it must not be shared between goroutines.
// For sde.Ensemble runs use PhaseSDEFactory, which hands each worker its
// own system.
func (r *Result) PhaseSDE(sys dynsys.System) sde.System {
	n := sys.Dim()
	p := sys.NumNoise()
	x := make([]float64, n)
	v := make([]float64, n)
	b := make([]float64, n*p)
	orbitLoc := ode.NewLocator(r.PSS.Orbit)
	v1Loc := ode.NewLocator(r.Floquet.V1)
	return sde.System{
		Dim:      1,
		NumNoise: p,
		Drift:    func(t float64, x, dst []float64) { dst[0] = 0 },
		Diff: func(t float64, alpha []float64, dst []float64) {
			ts := t + alpha[0]
			tm := math.Mod(ts, r.PSS.T)
			if tm < 0 {
				tm += r.PSS.T
			}
			orbitLoc.At(tm, x)
			v1Loc.At(tm, v)
			sys.Noise(x, b)
			for j := 0; j < p; j++ {
				s := 0.0
				for i := 0; i < n; i++ {
					s += v[i] * b[i*p+j]
				}
				dst[j] = s
			}
		},
	}
}

// PhaseSDEFactory returns a constructor for per-goroutine phase-deviation
// systems: each call yields an independent PhaseSDE sharing the (read-only)
// orbit and v1 trajectories but owning its own scratch buffers, so the
// factory can feed one system to every sde.Ensemble worker without races.
func (r *Result) PhaseSDEFactory(sys dynsys.System) func() sde.System {
	return func() sde.System { return r.PhaseSDE(sys) }
}

// Report renders a human-readable characterisation summary.
func (r *Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Oscillation period  T  = %.9e s  (f0 = %.6e Hz)\n", r.T(), r.F0())
	fmt.Fprintf(&sb, "Phase diffusion     c  = %.6e s²·Hz\n", r.C)
	fmt.Fprintf(&sb, "Lorentzian corner   fc = %.6e Hz (π f0² c)\n", r.CornerFreq())
	fmt.Fprintf(&sb, "Jitter after 1 period  = %.6e s RMS\n", math.Sqrt(r.JitterVariance(1)))
	fmt.Fprintf(&sb, "Floquet multipliers    =")
	for _, m := range r.Floquet.Multipliers {
		if imag(m) == 0 {
			fmt.Fprintf(&sb, " %.6g", real(m))
		} else {
			fmt.Fprintf(&sb, " %.6g%+.6gi", real(m), imag(m))
		}
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "Stability margin       = %.3e\n", r.Floquet.StabilityMargin())
	if len(r.PerSource) > 0 {
		sb.WriteString("Noise-source contributions (Eq. 31):\n")
		for _, s := range r.PerSource {
			fmt.Fprintf(&sb, "  %-24s c_i = %.4e  (%5.1f%%)\n", s.Label, s.C, 100*s.Fraction)
		}
	}
	sb.WriteString("Per-node phase-noise sensitivities (Eq. 32):\n")
	for k, s := range r.Sensitivity {
		fmt.Fprintf(&sb, "  node %-2d  cs = %.4e\n", k, s)
	}
	return sb.String()
}
