package core

import (
	"strconv"

	"repro/internal/floquet"
	"repro/internal/shooting"
)

// FingerprintFields returns the canonical key→value map of the effective
// solver knobs of o, for content-addressed result caching. Every knob that
// changes the numerical outcome of Characterise is included; diagnostics
// plumbing (Trace, Budget, Partial, Span) is not, because it never changes
// the result. Unset knobs are resolved to the solver defaults first, so a
// nil Options, a zero Options and an explicitly-default Options all map to
// the same fields — and therefore the same cache key.
//
// Values are formatted losslessly (hex floating point for float64), so two
// option sets collide only when they are numerically identical.
func (o *Options) FingerprintFields() map[string]string {
	var so *shooting.Options
	var fo *floquet.Options
	qp := 0
	if o != nil {
		so, fo, qp = o.Shooting, o.Floquet, o.QuadPoints
	}
	se := so.Effective()
	fe := fo.Effective()
	return map[string]string{
		"shoot.tol":       fpFloat(se.Tol),
		"shoot.maxiter":   strconv.Itoa(se.MaxIter),
		"shoot.steps":     strconv.Itoa(se.StepsPerPeriod),
		"shoot.transient": fpFloat(se.Transient),
		"shoot.nodamping": fpBool(se.NoDamping),
		"floq.steps":      strconv.Itoa(fe.Steps),
		"floq.unittol":    fpFloat(fe.UnitTol),
		"floq.stabtol":    fpFloat(fe.StabilityTol),
		"floq.skipstab":   fpBool(fe.SkipStability),
		"floq.norenorm":   fpBool(fe.NoRenormalize),
		"floq.relaxres":   fpBool(fe.RelaxResidual),
		"floq.maxdrift":   fpFloat(fe.MaxPeriodDrift),
		"quadpoints":      strconv.Itoa(qp),
	}
}

func fpFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func fpBool(b bool) string {
	if b {
		return "1"
	}
	return "0"
}
