package core

import (
	"math"
	"testing"

	"repro/internal/floquet"
	"repro/internal/linalg"
	"repro/internal/osc"
)

// TestTheorem51Decomposition is the headline Section-5 verification: the
// exact perturbed solution z(t) of ẋ = f + B·b must equal the decomposition
// xs(t+α(t)) + y(t) with α from the nonlinear phase ODE (Eq. 9) and y from
// the Floquet-basis quadrature (Eq. 12), up to O(‖b‖²).
func TestTheorem51Decomposition(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 1} // B = I
	res, err := Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := floquet.AnalyzeFull(h, res.PSS, 3000)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1e-3
	bfun := func(tt float64) []float64 {
		return []float64{eps * math.Cos(3*tt), eps * math.Sin(5*tt)}
	}
	t1 := 4 * res.T()
	nsteps := 8000
	zs := res.PerturbedSolution(h, bfun, t1, nsteps)
	alphas := res.SolvePhaseODE(h, bfun, t1, nsteps)

	zbuf := make([]float64, 2)
	xbuf := make([]float64, 2)
	worst := 0.0
	for _, frac := range []float64{0.25, 0.5, 1, 2, 3, 4} {
		tt := frac * res.T()
		k := int(frac / 4 * float64(nsteps))
		zs.At(tt, zbuf)
		res.PhaseShiftedOrbit(tt, alphas[k], xbuf)
		y := full.OrbitalDeviation(h, res.PSS, bfun, tt, 4000)
		recon := linalg.AddVec(xbuf, y)
		errNorm := linalg.Norm2(linalg.SubVec(zbuf, recon))
		if errNorm > worst {
			worst = errNorm
		}
		// The decomposition must beat the "phase-only" reconstruction, i.e.
		// including y(t) genuinely improves the match.
		phaseOnlyErr := linalg.Norm2(linalg.SubVec(zbuf, xbuf))
		if linalg.Norm2(y) > 3*eps {
			t.Fatalf("y unexpectedly large: %g", linalg.Norm2(y))
		}
		_ = phaseOnlyErr
	}
	// O(ε²) error: with ε = 1e-3 the residual must be far below ε.
	if worst > 0.05*eps {
		t.Fatalf("Theorem 5.1 residual %g, want ≪ ε = %g", worst, eps)
	}
}

// TestTheorem51SecondOrderScaling halves the perturbation and checks the
// decomposition residual drops ~4× (second order in ‖b‖).
func TestTheorem51SecondOrderScaling(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 1}
	res, err := Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := floquet.AnalyzeFull(h, res.PSS, 3000)
	if err != nil {
		t.Fatal(err)
	}
	residual := func(eps float64) float64 {
		bfun := func(tt float64) []float64 {
			return []float64{eps * math.Cos(2*tt), eps * math.Cos(3*tt)}
		}
		t1 := 2 * res.T()
		nsteps := 6000
		zs := res.PerturbedSolution(h, bfun, t1, nsteps)
		alphas := res.SolvePhaseODE(h, bfun, t1, nsteps)
		zbuf := make([]float64, 2)
		xbuf := make([]float64, 2)
		zs.At(t1, zbuf)
		res.PhaseShiftedOrbit(t1, alphas[nsteps], xbuf)
		y := full.OrbitalDeviation(h, res.PSS, bfun, t1, 4000)
		return linalg.Norm2(linalg.SubVec(zbuf, linalg.AddVec(xbuf, y)))
	}
	r1 := residual(2e-3)
	r2 := residual(1e-3)
	ratio := r1 / r2
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("residual scaling %g, want ≈4 (second order)", ratio)
	}
}

// TestResonantPerturbationPullsPhase: a perturbation at the oscillation
// frequency produces steady phase drift (frequency pulling) at the rate
// predicted by averaging Eq. 9 — for the Hopf cycle with b = ε·cos(ωt) on
// the y-equation, <v1ᵀBb> = ε/(2ω)·cos(φ₀-ish)… with our phase reference
// the drift rate magnitude is ε/(2ω) at most; check the measured drift
// matches the Eq.-9 average computed numerically.
func TestResonantPerturbationPullsPhase(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 1, YOnly: true}
	res, err := Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1e-4
	bfun := func(tt float64) []float64 { return []float64{eps * math.Cos(2*math.Pi*tt)} }
	nsteps := 20000
	t1 := 20 * res.T()
	alphas := res.SolvePhaseODE(h, bfun, t1, nsteps)
	drift := alphas[nsteps] / t1
	// Predicted drift: time-average of v1_y(t)·ε·cos(ωt) over one period
	// (α stays ≪ T for this ε, so the frozen-α average is accurate).
	v := make([]float64, 2)
	avg := 0.0
	m := 2000
	for k := 0; k < m; k++ {
		tt := res.T() * float64(k) / float64(m)
		res.Floquet.V1.At(tt, v)
		avg += v[1] * eps * math.Cos(2*math.Pi*tt)
	}
	avg /= float64(m)
	if math.Abs(drift-avg) > 0.02*math.Abs(avg)+1e-9 {
		t.Fatalf("drift %g, averaged prediction %g", drift, avg)
	}
	// And the magnitude is the textbook ε/(2ω)·|cos φ|-bounded value.
	if math.Abs(drift) > eps/(2*h.Omega)*1.01 {
		t.Fatalf("drift %g exceeds ε/2ω = %g", drift, eps/(2*h.Omega))
	}
}

// TestOffResonantPerturbationBoundedPhase: far-from-resonance perturbations
// average to zero drift — α(t) stays bounded (quasi-periodic beating).
func TestOffResonantPerturbationBoundedPhase(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 1, YOnly: true}
	res, err := Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1e-4
	// 2.5× the oscillation frequency: incommensurate-ish, zero average.
	bfun := func(tt float64) []float64 { return []float64{eps * math.Cos(2*math.Pi*2.5*tt)} }
	nsteps := 30000
	t1 := 30 * res.T()
	alphas := res.SolvePhaseODE(h, bfun, t1, nsteps)
	maxAlpha := 0.0
	for _, a := range alphas {
		if m := math.Abs(a); m > maxAlpha {
			maxAlpha = m
		}
	}
	// Bounded: no secular growth over 30 periods.
	if maxAlpha > 5*eps {
		t.Fatalf("off-resonant α grew to %g", maxAlpha)
	}
}

// TestPhaseShiftedOrbitWraps checks the modular reduction.
func TestPhaseShiftedOrbitWraps(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.1}
	res, err := Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, 2)
	b := make([]float64, 2)
	res.PhaseShiftedOrbit(0.3, 0.2, a)
	res.PhaseShiftedOrbit(0.3+3*res.T(), 0.2-2*res.T(), b)
	if math.Hypot(a[0]-b[0], a[1]-b[1]) > 1e-9 {
		t.Fatalf("wrap mismatch: %v vs %v", a, b)
	}
}
