package core

import (
	"math"
	"testing"

	"repro/internal/osc"
)

func bandpassSpectrum(t *testing.T) (*Result, *Spectrum) {
	t.Helper()
	b := osc.NewBandpassPaper()
	res, err := Characterise(b, []float64{0.1, 0}, 1/6660.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, res.OutputSpectrum(0, 4)
}

func TestAnalyzerTraceWideRBWCapturesLinePower(t *testing.T) {
	// With RBW ≫ line width, the on-carrier displayed POWER (dBm in the
	// RBW) equals the whole line's power 2|X1|².
	res, sp := bandpassSpectrum(t)
	f0 := res.F0()
	rbw := 300.0 // ≫ 10.5 Hz half-width
	tr := sp.AnalyzerTrace(f0-10, f0+10, rbw, 50, 3)
	mid := tr[1]
	lineP := 2 * real(sp.Xi(1)*complexConj(sp.Xi(1)))
	wantDBm := 10 * math.Log10(lineP/50/1e-3)
	if math.Abs(mid.DBmF-wantDBm) > 0.5 {
		t.Fatalf("displayed %g dBm, line power %g dBm", mid.DBmF, wantDBm)
	}
}

func complexConj(z complex128) complex128 { return complex(real(z), -imag(z)) }

func TestAnalyzerTraceNarrowRBWTracksTruePSD(t *testing.T) {
	// With RBW ≪ line width the displayed density approaches Sss(f).
	res, sp := bandpassSpectrum(t)
	f0 := res.F0()
	rbw := 1.0 // ≪ 10.5 Hz
	for _, off := range []float64{0, 30, 120} {
		tr := sp.AnalyzerTrace(f0+off-1, f0+off+1, rbw, 50, 3)
		got := tr[1].PSD
		want := sp.SSB(f0 + off)
		if math.Abs(got-want) > 0.05*want {
			t.Fatalf("offset %g: displayed %g vs true %g", off, got, want)
		}
	}
}

func TestAnalyzerTraceLineBroadening(t *testing.T) {
	// A wide RBW broadens the displayed line: the −3 dB width of the trace
	// should be set by the RBW, not the Lorentzian.
	res, sp := bandpassSpectrum(t)
	f0 := res.F0()
	rbw := 100.0
	tr := sp.AnalyzerTrace(f0-400, f0+400, rbw, 50, 161)
	peak, kp := math.Inf(-1), 0
	for k, p := range tr {
		if p.DBmF > peak {
			peak, kp = p.DBmF, k
		}
	}
	// Walk to the −3 dB points.
	var fl, fr float64
	for k := kp; k >= 0; k-- {
		if tr[k].DBmF < peak-3 {
			fl = tr[k].F
			break
		}
	}
	for k := kp; k < len(tr); k++ {
		if tr[k].DBmF < peak-3 {
			fr = tr[k].F
			break
		}
	}
	width := fr - fl
	if width < 0.8*rbw || width > 2.5*rbw {
		t.Fatalf("displayed −3 dB width %g with RBW %g", width, rbw)
	}
}

func TestAnalyzerTraceMatchesPaperStylePlot(t *testing.T) {
	// Regenerate a Figure-2(b)-style display: 4 harmonics, RBW well above
	// the line width (as the paper's analyzer was set). The displayed trace
	// must show four distinct peaks at the harmonics with the right
	// relative levels (odd harmonics dominate for a comparator feedback).
	res, sp := bandpassSpectrum(t)
	f0 := res.F0()
	tr := sp.AnalyzerTrace(0.5*f0, 4.5*f0, 60, 50, 401)
	levelNear := func(f float64) float64 {
		best, bd := math.Inf(-1), math.Inf(1)
		for _, p := range tr {
			if d := math.Abs(p.F - f); d < bd {
				bd, best = d, p.DBmF
			}
		}
		return best
	}
	l1, l2, l3 := levelNear(f0), levelNear(2*f0), levelNear(3*f0)
	mid := levelNear(1.5 * f0)
	if l1 < mid+20 {
		t.Fatalf("first harmonic not prominent: %g vs floor %g", l1, mid)
	}
	if l3 < l2 {
		t.Fatalf("comparator spectrum should favour odd harmonics: H2 %g, H3 %g", l2, l3)
	}
	if l1 < l3 {
		t.Fatalf("fundamental below third harmonic: %g vs %g", l1, l3)
	}
}
