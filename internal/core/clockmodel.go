package core

import (
	"math"
	"math/rand"
)

// ClockModel is a behavioural macromodel of the characterised oscillator
// used as a clock source: edges at t_k = k·T + α_k where the phase
// deviation α performs the exact random walk the theory derives —
// independent Gaussian increments of variance c·T per period. This is the
// downstream-usable artefact of a phase-noise characterisation: a
// jitter-accurate clock for system-level (e.g. sampled-data or SerDes)
// simulation at a cost independent of the circuit's complexity.
type ClockModel struct {
	T float64 // nominal period (s)
	C float64 // phase-diffusion constant (s²·Hz)
}

// ClockModel derives the macromodel from a characterisation result.
func (r *Result) ClockModel() *ClockModel {
	return &ClockModel{T: r.PSS.T, C: r.C}
}

// Edges generates n successive clock-edge times (one per period) starting
// from a trigger edge at t = 0, using rng for the jitter increments.
func (m *ClockModel) Edges(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	sigma := math.Sqrt(m.C * m.T)
	alpha := 0.0
	for k := 1; k <= n; k++ {
		alpha += sigma * rng.NormFloat64()
		out[k-1] = float64(k)*m.T + alpha
	}
	return out
}

// PeriodJitterRMS returns the RMS cycle-to-cycle... more precisely the
// period jitter: the standard deviation of one period duration, √(c·T).
func (m *ClockModel) PeriodJitterRMS() float64 { return math.Sqrt(m.C * m.T) }

// AccumulatedJitterRMS returns the RMS error of the k-th edge relative to
// the trigger, √(c·k·T) — the linearly-growing variance law.
func (m *ClockModel) AccumulatedJitterRMS(k int) float64 {
	return math.Sqrt(m.C * float64(k) * m.T)
}

// AbsoluteJitterAfter returns the RMS phase error accumulated over an
// arbitrary elapsed time τ, √(c·τ).
func (m *ClockModel) AbsoluteJitterAfter(tau float64) float64 {
	return math.Sqrt(m.C * tau)
}
