package core

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/floquet"
	"repro/internal/osc"
	"repro/internal/sde"
)

func characteriseHopf(t *testing.T, h *osc.Hopf) *Result {
	t.Helper()
	res, err := Characterise(h, []float64{1, 0.1}, h.Period()*1.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestHopfCMatchesClosedFormIsotropic(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	res := characteriseHopf(t, h)
	want := h.ExactC()
	if math.Abs(res.C-want) > 1e-6*want {
		t.Fatalf("c = %.12e, want %.12e (rel err %g)", res.C, want, math.Abs(res.C-want)/want)
	}
}

func TestHopfCMatchesClosedFormYOnly(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 5, Sigma: 0.05, YOnly: true}
	res := characteriseHopf(t, h)
	want := h.ExactC() // σ²/(2ω²)
	if math.Abs(res.C-want) > 1e-6*want {
		t.Fatalf("c = %.12e, want %.12e", res.C, want)
	}
}

func TestHopfCScalesWithNoisePower(t *testing.T) {
	// c must scale as σ² (noise power), the basic sanity of Eq. 29.
	h1 := &osc.Hopf{Lambda: 1, Omega: 3, Sigma: 0.01}
	h2 := &osc.Hopf{Lambda: 1, Omega: 3, Sigma: 0.03}
	c1 := characteriseHopf(t, h1).C
	c2 := characteriseHopf(t, h2).C
	if math.Abs(c2/c1-9) > 1e-6 {
		t.Fatalf("c ratio %g, want 9", c2/c1)
	}
}

func TestHopfPerSourceContributions(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2, Sigma: 0.02}
	res := characteriseHopf(t, h)
	if len(res.PerSource) != 2 {
		t.Fatalf("%d sources", len(res.PerSource))
	}
	// Isotropic noise: each equation contributes exactly half.
	for _, s := range res.PerSource {
		if math.Abs(s.Fraction-0.5) > 1e-6 {
			t.Fatalf("source %s fraction %g, want 0.5", s.Label, s.Fraction)
		}
	}
	// Σ c_i = c.
	sum := res.PerSource[0].C + res.PerSource[1].C
	if math.Abs(sum-res.C) > 1e-12*res.C {
		t.Fatalf("Σc_i = %g != c = %g", sum, res.C)
	}
}

func TestHopfSensitivities(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 4, Sigma: 0.01}
	res := characteriseHopf(t, h)
	// v1 = (−sin, cos)/ω ⇒ cs(k) = 1/(2ω²) for both nodes.
	want := 1 / (2 * h.Omega * h.Omega)
	for k, s := range res.Sensitivity {
		if math.Abs(s-want) > 1e-6*want {
			t.Fatalf("cs(%d) = %g, want %g", k, s, want)
		}
	}
}

func TestJitterVarianceLinear(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	res := characteriseHopf(t, h)
	v1 := res.JitterVariance(1)
	v10 := res.JitterVariance(10)
	if math.Abs(v10/v1-10) > 1e-9 {
		t.Fatalf("jitter variance not linear: %g", v10/v1)
	}
	if math.Abs(v1-res.C*res.T()) > 1e-15 {
		t.Fatalf("Var[t_1] = %g, want cT = %g", v1, res.C*res.T())
	}
	if rms := res.JitterRMSAfter(4 * res.T()); math.Abs(rms-math.Sqrt(res.JitterVariance(4))) > 1e-15 {
		t.Fatalf("RMS inconsistency: %g", rms)
	}
}

func TestCornerFrequency(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.1}
	res := characteriseHopf(t, h)
	want := math.Pi * res.F0() * res.F0() * res.C
	if math.Abs(res.CornerFreq()-want) > 1e-15 {
		t.Fatalf("fc = %g", res.CornerFreq())
	}
}

func TestHopfOutputSpectrumCoefficients(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	res := characteriseHopf(t, h)
	sp := res.OutputSpectrum(0, 4)
	// x-component of the Hopf cycle is cos(ωt + φ): |X1| = 1/2, higher ≈ 0.
	if math.Abs(2*absC(sp.Xi(1))-1) > 1e-6 {
		t.Fatalf("|X1| = %g, want 0.5", absC(sp.Xi(1)))
	}
	for i := 2; i <= 4; i++ {
		if absC(sp.Xi(i)) > 1e-6 {
			t.Fatalf("|X%d| = %g, want ≈0", i, absC(sp.Xi(i)))
		}
	}
	if absC(sp.Xi(99)) != 0 {
		t.Fatal("out-of-range harmonic must be zero")
	}
	if sp.NumHarmonics() != 4 {
		t.Fatalf("nh = %d", sp.NumHarmonics())
	}
}

func absC(z complex128) float64 { return math.Hypot(real(z), imag(z)) }

func TestSpectrumFiniteAtCarrier(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi * 1000, Sigma: 1}
	res := characteriseHopf(t, h)
	sp := res.OutputSpectrum(0, 3)
	// The Lorentzian value at the carrier is |X1|²·8/(ω0²c) single-sided.
	got := sp.SSB(sp.F0)
	omega0 := 2 * math.Pi * sp.F0
	want := 2 * absC(sp.Xi(1)) * absC(sp.Xi(1)) * 4 / (omega0 * omega0 * sp.C)
	if math.Abs(got-want) > 0.02*want {
		t.Fatalf("Sss(f0) = %g, want ≈ %g", got, want)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatal("carrier PSD must be finite")
	}
}

func TestSpectrumTotalPowerPreserved(t *testing.T) {
	// Numerically integrate the single-sided Lorentzian PSD and compare with
	// Eq. 25: phase noise redistributes but preserves carrier power.
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi * 100, Sigma: 0.5}
	res := characteriseHopf(t, h)
	sp := res.OutputSpectrum(0, 3)
	want := sp.TotalPower() // = 2|X1|² = 0.5 for a unit cosine
	if math.Abs(want-0.5) > 1e-6 {
		t.Fatalf("total power formula = %g, want 0.5", want)
	}
	// Integrate Sss over a wide band around the carrier.
	f0 := sp.F0
	hw := sp.LorentzianHalfWidth(1)
	lo, hi := f0-4000*hw, f0+4000*hw
	if lo < 0 {
		lo = 0
	}
	npts := 400001
	sum := 0.0
	df := (hi - lo) / float64(npts-1)
	for k := 0; k < npts; k++ {
		f := lo + float64(k)*df
		w := 1.0
		if k == 0 || k == npts-1 {
			w = 0.5
		}
		sum += w * sp.SSB(f) * df
	}
	if math.Abs(sum-want) > 0.01*want {
		t.Fatalf("integrated power %g, want %g", sum, want)
	}
}

func TestLdBcApproximationsAgreeAboveCorner(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi * 1e4, Sigma: 0.01}
	res := characteriseHopf(t, h)
	sp := res.OutputSpectrum(0, 2)
	fc := res.CornerFreq()
	for _, mult := range []float64{30, 100, 1000} {
		fm := mult * fc
		if fm > sp.F0/10 {
			continue
		}
		exact := sp.LdBc(fm)
		lor := sp.LdBcLorentzian(fm)
		inv2 := sp.LdBcInvSquare(fm)
		if math.Abs(exact-lor) > 0.5 {
			t.Fatalf("fm=%g: exact %g vs lorentzian %g", fm, exact, lor)
		}
		if math.Abs(lor-inv2) > 0.5 {
			t.Fatalf("fm=%g: lorentzian %g vs 1/f² %g", fm, lor, inv2)
		}
	}
}

func TestLdBcInvSquareBlowsUpBelowCorner(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi * 1e4, Sigma: 0.01}
	res := characteriseHopf(t, h)
	sp := res.OutputSpectrum(0, 2)
	fc := res.CornerFreq()
	// Eq. 28 diverges while Eq. 27 saturates below the corner.
	lorAt0 := sp.LdBcLorentzian(fc / 1000)
	lorAtC := sp.LdBcLorentzian(fc)
	if math.Abs(lorAt0-lorAtC) > 4 {
		t.Fatalf("Lorentzian should saturate below corner: %g vs %g", lorAt0, lorAtC)
	}
	inv0 := sp.LdBcInvSquare(fc / 1000)
	if inv0-sp.LdBcInvSquare(fc) < 50 {
		t.Fatalf("1/f² should blow up below corner: %g vs %g", inv0, sp.LdBcInvSquare(fc))
	}
}

func TestAutocorrelationProperties(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi * 50, Sigma: 0.3}
	res := characteriseHopf(t, h)
	sp := res.OutputSpectrum(0, 3)
	// R(0) = total power; R decays with |τ|; R is even.
	r0 := sp.Autocorrelation(0)
	if math.Abs(r0-sp.TotalPower()) > 1e-9 {
		t.Fatalf("R(0) = %g, want %g", r0, sp.TotalPower())
	}
	tau := 3.0 / (sp.F0 * sp.F0 * sp.C) // many coherence times
	if math.Abs(sp.Autocorrelation(tau)) > 0.01*r0 {
		t.Fatalf("R should decay: R(τ)=%g", sp.Autocorrelation(tau))
	}
	if math.Abs(sp.Autocorrelation(0.001)-sp.Autocorrelation(-0.001)) > 1e-12 {
		t.Fatal("R must be even")
	}
}

func TestPhaseSDEVarianceGrowsAsCT(t *testing.T) {
	// Monte-Carlo the exact phase SDE (Eq. 9) and check Var[α(t)] = c·t.
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	res := characteriseHopf(t, h)
	sys := res.PhaseSDE(h)
	nPaths := 800
	nSteps := 400
	dt := res.T() / 100
	var st sde.Stats
	for k := 0; k < nPaths; k++ {
		rng := rand.New(rand.NewSource(int64(1000 + k)))
		p := sde.EulerMaruyama(sys, []float64{0}, 0, dt, nSteps, nSteps, rng)
		st.Add(p.X[len(p.X)-1][0])
	}
	tEnd := dt * float64(nSteps)
	want := res.C * tEnd
	if math.Abs(st.Var()-want) > 0.15*want {
		t.Fatalf("Var[α(%g)] = %g, want %g", tEnd, st.Var(), want)
	}
}

func TestFromDecompositionQuadConvergence(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 3, Sigma: 0.02}
	res := characteriseHopf(t, h)
	// Recompute with a coarse quadrature; must agree to high accuracy
	// because the integrand is smooth and periodic.
	res2, err := FromDecomposition(h, res.PSS, res.Floquet, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.C-res.C) > 1e-8*res.C {
		t.Fatalf("quadrature sensitivity: %g vs %g", res2.C, res.C)
	}
}

func TestReportContents(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.01}
	res := characteriseHopf(t, h)
	rep := res.Report()
	for _, want := range []string{"Phase diffusion", "Lorentzian corner", "Floquet multipliers", "x-equation", "node 0"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestCharacteriseAuto(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	res, err := CharacteriseAuto(h, []float64{0.3, 0}, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.C-h.ExactC()) / h.ExactC(); rel > 1e-5 {
		t.Fatalf("auto c relative error %g", rel)
	}
	// Error path: start at the equilibrium ⇒ no oscillation to detect.
	if _, err := CharacteriseAuto(h, []float64{0, 0}, 10, nil); err == nil {
		t.Fatal("expected error from equilibrium start")
	}
}

func TestCharacteriseErrorPropagation(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 1, Sigma: 0.01}
	if _, err := Characterise(h, []float64{1, 0}, -5, nil); err == nil {
		t.Fatal("expected error for bad period guess")
	}
}

func TestPhaseSDEDiffDoesNotAllocate(t *testing.T) {
	// The Diff closure is the innermost loop of Monte-Carlo phase
	// simulation; it must reuse its scratch buffers rather than allocate
	// three slices per call.
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	res := characteriseHopf(t, h)
	sys := res.PhaseSDE(h)
	alpha := []float64{0.01}
	dst := make([]float64, sys.NumNoise)
	allocs := testing.AllocsPerRun(200, func() {
		sys.Diff(0.37, alpha, dst)
	})
	if allocs != 0 {
		t.Fatalf("Diff allocates %g objects per call, want 0", allocs)
	}
}

func TestPhaseSDEFactoryGivesIndependentSystems(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	res := characteriseHopf(t, h)
	mk := res.PhaseSDEFactory(h)
	a, b := mk(), mk()
	da := make([]float64, a.NumNoise)
	db := make([]float64, b.NumNoise)
	// Concurrent use of separate factory products must be race-free
	// (verified under -race) and agree pointwise.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 500; i++ {
			a.Diff(0.1*float64(i), []float64{0.02}, da)
		}
		close(done)
	}()
	for i := 0; i < 500; i++ {
		b.Diff(0.1*float64(i), []float64{0.02}, db)
	}
	<-done
	a.Diff(1.7, []float64{0.02}, da)
	b.Diff(1.7, []float64{0.02}, db)
	for j := range da {
		if da[j] != db[j] {
			t.Fatalf("factory systems disagree: %v vs %v", da, db)
		}
	}
}

func TestCharacteriseTraceRecordsStages(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	var tr Trace
	res, err := Characterise(h, []float64{1, 0.1}, h.Period()*1.05, &Options{Trace: &tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Wall <= 0 {
		t.Fatal("total wall time not recorded")
	}
	if tr.Shooting.Iters == 0 || tr.Shooting.Wall <= 0 {
		t.Fatalf("shooting stage not traced: %+v", tr.Shooting)
	}
	if tr.Shooting.Residual > 1e-10 {
		t.Fatalf("converged residual not recorded: %g", tr.Shooting.Residual)
	}
	if tr.Floquet.Wall <= 0 || tr.Floquet.Steps == 0 {
		t.Fatalf("floquet stage not traced: %+v", tr.Floquet)
	}
	if tr.Floquet.ClosureErr <= 0 {
		t.Fatal("adjoint closure error not recorded")
	}
	if tr.QuadPoints == 0 || tr.QuadWall <= 0 {
		t.Fatalf("quadrature stage not traced: points=%d wall=%v", tr.QuadPoints, tr.QuadWall)
	}
	if res.C <= 0 {
		t.Fatal("characterisation result lost")
	}
	// The trace must reset on reuse.
	tr.QuadPoints = -1
	if _, err := Characterise(h, []float64{1, 0.1}, h.Period()*1.05, &Options{Trace: &tr}); err != nil {
		t.Fatal(err)
	}
	if tr.QuadPoints <= 0 {
		t.Fatal("trace not reset between calls")
	}
}

func TestPartialKeepsPSSWhenFloquetFails(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	var part Partial
	// An unreachable closure tolerance fails the Floquet stage after
	// shooting has converged; the partial must keep the PSS and record the
	// failed stage's absence.
	_, err := Characterise(h, []float64{1, 0.1}, 1.05, &Options{
		Floquet: &floquet.Options{Steps: 30, MaxPeriodDrift: 1e-13},
		Partial: &part,
	})
	if err == nil {
		t.Fatal("expected floquet failure")
	}
	if part.PSS == nil {
		t.Fatal("converged PSS not preserved in Partial")
	}
	if math.Abs(part.PSS.T-1) > 1e-6 {
		t.Fatalf("partial period %g, want ≈1", part.PSS.T)
	}
	if part.Floquet != nil {
		t.Fatal("failed floquet stage left a decomposition in Partial")
	}
}

func TestCharacteriseBudgetBeforeQuadrature(t *testing.T) {
	// A pre-canceled budget must stop the pipeline at its first stage with
	// the typed sentinel and an error naming the stage.
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	tok, cancel := budget.WithCancel(nil)
	cancel()
	_, err := Characterise(h, []float64{1, 0.1}, 1.05, &Options{Budget: tok})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}
