package core

import (
	"math"
	"math/cmplx"
)

// Spectrum is the closed-form output spectrum of a noisy oscillator: the
// sum-of-Lorentzians of paper Eqs. (23)/(24), parameterised by the carrier
// frequency f0, the phase-diffusion constant c and the Fourier coefficients
// X_i of the noiseless periodic output.
type Spectrum struct {
	F0     float64      // carrier frequency, Hz
	C      float64      // phase-diffusion constant, s²·Hz
	Coeffs []complex128 // X_i for i = −nh..nh (index i+nh), X_{−i} = conj(X_i)
}

// NumHarmonics returns nh, the highest harmonic included.
func (s *Spectrum) NumHarmonics() int { return (len(s.Coeffs) - 1) / 2 }

// Xi returns the Fourier coefficient X_i (i may be negative).
func (s *Spectrum) Xi(i int) complex128 {
	nh := s.NumHarmonics()
	if i < -nh || i > nh {
		return 0
	}
	return s.Coeffs[i+nh]
}

// PSD evaluates the double-sided power spectral density S(ω) of Eq. (23):
//
//	S(ω) = Σ_i |X_i|² · ω0²i²c / (¼ω0⁴i⁴c² + (ω + iω0)²)
//
// The DC delta term X0X0*δ(ω) is omitted, as in the paper.
func (s *Spectrum) PSD(omega float64) float64 {
	omega0 := 2 * math.Pi * s.F0
	nh := s.NumHarmonics()
	sum := 0.0
	for i := -nh; i <= nh; i++ {
		if i == 0 {
			continue
		}
		xi := s.Xi(i)
		p := real(xi)*real(xi) + imag(xi)*imag(xi)
		ii := float64(i)
		w2 := omega0 * omega0 * ii * ii * s.C
		d := omega + ii*omega0
		sum += p * w2 / (0.25*w2*w2 + d*d)
	}
	return sum
}

// SSB evaluates the single-sided spectral density S_ss(f) = 2S(2πf) of
// Eq. (24), defined for f ≥ 0.
func (s *Spectrum) SSB(f float64) float64 {
	return 2 * s.PSD(2*math.Pi*f)
}

// TotalPower returns the carrier power preserved under phase noise
// (Eq. 25): P_tot = Σ_{i≥1} 2|X_i|². Phase deviation redistributes but does
// not create or destroy power.
func (s *Spectrum) TotalPower() float64 {
	nh := s.NumHarmonics()
	sum := 0.0
	for i := 1; i <= nh; i++ {
		sum += 2 * real(s.Xi(i)*cmplx.Conj(s.Xi(i)))
	}
	return sum
}

// LorentzianHalfWidth returns the half-width (in Hz) of the Lorentzian
// around harmonic i: π f0² i² c.
func (s *Spectrum) LorentzianHalfWidth(i int) float64 {
	return math.Pi * s.F0 * s.F0 * float64(i*i) * s.C
}

// LdBc evaluates the single-sideband phase noise L(f_m) in dBc/Hz at offset
// f_m from the first harmonic, by the defining ratio of Eq. (26):
//
//	L(f_m) = 10 log10( S_ss(f0 + f_m) / (2|X1|²) )
func (s *Spectrum) LdBc(fm float64) float64 {
	x1 := s.Xi(1)
	p1 := 2 * (real(x1)*real(x1) + imag(x1)*imag(x1))
	if p1 == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(s.SSB(s.F0+fm)/p1)
}

// LdBcLorentzian evaluates the small-c Lorentzian approximation of Eq. (27):
//
//	L(f_m) ≈ 10 log10( f0²c / (π²f0⁴c² + f_m²) )
//
// valid for 0 ≤ f_m ≪ f0; unlike Eq. (28) it remains finite as f_m → 0.
func (s *Spectrum) LdBcLorentzian(fm float64) float64 {
	f0 := s.F0
	num := f0 * f0 * s.C
	den := math.Pi*math.Pi*math.Pow(f0, 4)*s.C*s.C + fm*fm
	return 10 * math.Log10(num/den)
}

// LdBcInvSquare evaluates the classical 1/f² approximation of Eq. (28):
//
//	L(f_m) ≈ 10 log10( (f0/f_m)² c )
//
// valid for πf0²c ≪ f_m ≪ f0; it diverges as f_m → 0 (the well-known
// non-physical blow-up of LTI/LTV analyses that the exact Lorentzian fixes).
func (s *Spectrum) LdBcInvSquare(fm float64) float64 {
	f0 := s.F0
	return 10 * math.Log10(f0*f0/(fm*fm)*s.C)
}

// SSBdBm converts the single-sided density at f into dBm/Hz for a given
// load resistance (spectrum analyzers display dBm into 50 Ω by default):
// P(f) = Sss(f)/R in W/Hz, dBm/Hz = 10·log10(P/1 mW).
func (s *Spectrum) SSBdBm(f, rload float64) float64 {
	return 10 * math.Log10(s.SSB(f)/rload/1e-3)
}

// CarrierPowerdBm returns the total carrier power (Eq. 25) in dBm into the
// given load.
func (s *Spectrum) CarrierPowerdBm(rload float64) float64 {
	return 10 * math.Log10(s.TotalPower()/rload/1e-3)
}

// AutocorrelationEnvelope returns the stationary autocorrelation of the
// phase-noisy output at lag τ (Eq. 22):
//
//	R(τ) = Σ_i |X_i|² exp(−jiω0τ) exp(−½ω0²i²c|τ|)
//
// which is real for real x_s(t).
func (s *Spectrum) Autocorrelation(tau float64) float64 {
	omega0 := 2 * math.Pi * s.F0
	nh := s.NumHarmonics()
	sum := complex(0, 0)
	for i := -nh; i <= nh; i++ {
		if i == 0 {
			continue
		}
		xi := s.Xi(i)
		ii := float64(i)
		mag := real(xi)*real(xi) + imag(xi)*imag(xi)
		decay := math.Exp(-0.5 * omega0 * omega0 * ii * ii * s.C * math.Abs(tau))
		sum += complex(mag*decay, 0) * cmplx.Exp(complex(0, -ii*omega0*tau))
	}
	return real(sum)
}
