package core

import (
	"math"
	"testing"

	"repro/internal/floquet"
	"repro/internal/linalg"
	"repro/internal/osc"
	"repro/internal/shooting"
)

// TestTheorem51RingDecomposition verifies the Section-5 decomposition on a
// REAL circuit: the six-state ECL ring oscillator, whose transverse Floquet
// multipliers include complex-conjugate pairs — the case the direct
// variational orbital-deviation route handles. The perturbed solution
// z(t) of ẋ = f + B·b must match xs(t+α(t)) + y(t) far more closely than
// the naive xs(t+α(t)) alone.
func TestTheorem51RingDecomposition(t *testing.T) {
	r := osc.NewECLRingPaper()
	T0, x0, err := shooting.EstimatePeriod(r, r.InitialState(), 300e-9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Characterise(r, x0, T0, &Options{
		Shooting: &shooting.Options{StepsPerPeriod: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	T := res.T()

	// Deterministic perturbation through the circuit's own noise columns
	// (thermal/shot injection paths). Source-space amplitude chosen so the
	// injected rate is ~1e-4 of the circuit's slew rates.
	eps := 3e4
	w1 := 2 * math.Pi / T * 0.37 // incommensurate tones
	w2 := 2 * math.Pi / T * 1.73
	bfun := func(tt float64) []float64 {
		b := make([]float64, r.NumNoise())
		b[0] = eps * math.Cos(w1*tt)
		b[5] = eps * math.Sin(w2*tt)
		return b
	}

	nsteps := 16000
	t1 := 3 * T
	z := res.PerturbedSolution(r, bfun, t1, nsteps)
	alphas := res.SolvePhaseODE(r, bfun, t1, nsteps)
	ytr := floquet.OrbitalDeviationDirect(r, res.PSS, res.Floquet, bfun, t1, nsteps)

	zb := make([]float64, 6)
	xb := make([]float64, 6)
	yb := make([]float64, 6)
	swing := r.Swing()
	for _, frac := range []float64{1, 2, 3} {
		tt := frac * T
		k := int(frac / 3 * float64(nsteps))
		z.At(tt, zb)
		res.PhaseShiftedOrbit(tt, alphas[k], xb)
		ytr.At(tt, yb)
		recon := linalg.AddVec(xb, yb)
		errFull := linalg.Norm2(linalg.SubVec(zb, recon))
		errPhaseOnly := linalg.Norm2(linalg.SubVec(zb, xb))
		// y is a genuine correction: including it must cut the residual.
		if errFull > 0.5*errPhaseOnly {
			t.Fatalf("t=%gT: decomposition %.3e no better than phase-only %.3e", frac, errFull, errPhaseOnly)
		}
		// And the residual must be far below the deviation scale itself.
		if errFull > 0.1*errPhaseOnly+1e-9*swing {
			t.Logf("t=%gT: residual %.3e, phase-only %.3e", frac, errFull, errPhaseOnly)
		}
		if errFull > 1e-3*swing {
			t.Fatalf("t=%gT: residual %.3e vs swing %.3e", frac, errFull, swing)
		}
	}
}

// TestRingPhaseODEVsTheory: the deterministic phase ODE on the ring with a
// DC perturbation through a noise column produces the drift predicted by
// the period-average of v1ᵀB (Remark 5.1's mechanism).
func TestRingPhaseODEDCDrift(t *testing.T) {
	r := osc.NewECLRingPaper()
	T0, x0, err := shooting.EstimatePeriod(r, r.InitialState(), 300e-9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Characterise(r, x0, T0, &Options{
		Shooting: &shooting.Options{StepsPerPeriod: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	T := res.T()
	eps := 1e3
	bfun := func(tt float64) []float64 {
		b := make([]float64, r.NumNoise())
		b[1] = eps // DC offset through stage-0 shot-noise path
		return b
	}
	nsteps := 20000
	t1 := 10 * T
	alphas := res.SolvePhaseODE(r, bfun, t1, nsteps)
	drift := alphas[nsteps] / t1
	// Frozen-α average of v1ᵀ(τ)B(xs(τ))·b over one period.
	n, p := r.Dim(), r.NumNoise()
	xb := make([]float64, n)
	vb := make([]float64, n)
	bm := make([]float64, n*p)
	avg := 0.0
	m := 4000
	for k := 0; k < m; k++ {
		tt := T * float64(k) / float64(m)
		res.PSS.Orbit.At(tt, xb)
		res.Floquet.V1.At(tt, vb)
		r.Noise(xb, bm)
		for i := 0; i < n; i++ {
			avg += vb[i] * bm[i*p+1] * eps
		}
	}
	avg /= float64(m)
	// By the ring's differential symmetry the period-average of v1ᵀB for a
	// DC shot-path injection vanishes — so the first-order prediction is
	// ZERO drift. Verify both that the average is numerically zero and
	// that the simulated drift is far below the injection's RMS scale.
	rms := 0.0
	for k := 0; k < m; k++ {
		tt := T * float64(k) / float64(m)
		res.PSS.Orbit.At(tt, xb)
		res.Floquet.V1.At(tt, vb)
		r.Noise(xb, bm)
		s := 0.0
		for i := 0; i < n; i++ {
			s += vb[i] * bm[i*p+1] * eps
		}
		rms += s * s
	}
	rms = math.Sqrt(rms / float64(m))
	if math.Abs(avg) > 1e-6*rms {
		t.Fatalf("symmetry-protected average %g not ≪ rms %g", avg, rms)
	}
	if math.Abs(drift) > 1e-2*rms {
		t.Fatalf("first-order drift %g should vanish (rms scale %g)", drift, rms)
	}
}
