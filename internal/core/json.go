package core

import (
	"encoding/json"

	"repro/internal/floquet"
	"repro/internal/shooting"
)

// resultJSON is the wire form of a Result; the unexported noise-source
// labels travel explicitly.
type resultJSON struct {
	PSS         *shooting.PSS          `json:"pss,omitempty"`
	Floquet     *floquet.Decomposition `json:"floquet,omitempty"`
	C           float64                `json:"c"`
	PerSource   []SourceContribution   `json:"per_source,omitempty"`
	Sensitivity []float64              `json:"sensitivity,omitempty"`
	Labels      []string               `json:"labels,omitempty"`
}

// SourceLabels returns the oscillator's noise-source labels in source order
// (the order of sys.NoiseLabels(), not the sorted PerSource order).
func (r *Result) SourceLabels() []string { return r.labels }

// MarshalJSON implements json.Marshaler. Together with UnmarshalJSON it makes
// a Result JSON round-trip loss-free (including the unexported source
// labels), which the disk result cache and the service API rely on.
func (r *Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		PSS:         r.PSS,
		Floquet:     r.Floquet,
		C:           r.C,
		PerSource:   r.PerSource,
		Sensitivity: r.Sensitivity,
		Labels:      r.labels,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w resultJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Result{
		PSS:         w.PSS,
		Floquet:     w.Floquet,
		C:           w.C,
		PerSource:   w.PerSource,
		Sensitivity: w.Sensitivity,
		labels:      w.Labels,
	}
	return nil
}

// spectrumJSON is the wire form of a Spectrum; Fourier coefficients travel
// as [re, im] pairs because complex128 has no native JSON encoding.
type spectrumJSON struct {
	F0     float64      `json:"f0"`
	C      float64      `json:"c"`
	Coeffs [][2]float64 `json:"coeffs,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s *Spectrum) MarshalJSON() ([]byte, error) {
	w := spectrumJSON{F0: s.F0, C: s.C}
	if s.Coeffs != nil {
		w.Coeffs = make([][2]float64, len(s.Coeffs))
		for i, c := range s.Coeffs {
			w.Coeffs[i] = [2]float64{real(c), imag(c)}
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Spectrum) UnmarshalJSON(data []byte) error {
	var w spectrumJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = Spectrum{F0: w.F0, C: w.C}
	if w.Coeffs != nil {
		s.Coeffs = make([]complex128, len(w.Coeffs))
		for i, p := range w.Coeffs {
			s.Coeffs[i] = complex(p[0], p[1])
		}
	}
	return nil
}
