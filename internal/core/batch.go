package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/budget"
	"repro/internal/dynsys"
	"repro/internal/floquet"
	"repro/internal/obs"
	"repro/internal/shooting"
)

// BatchPoint is one lane of a CharacteriseBatch call. Opts.ReusePSS must be
// nil — a point carrying a reusable solution has nothing to gain from the
// batch and is characterised scalar by the sweep layer.
type BatchPoint struct {
	Sys    dynsys.System
	X0     []float64
	TGuess float64
	Opts   *Options
}

// CharacteriseBatch runs the full Section-9 pipeline for K parameter
// variants of one model family in lockstep: Newton shooting through
// shooting.FindBatch, Floquet analysis through floquet.AnalyzeBatch, and the
// cheap c quadratures per lane. All fixed-step period integrations — the
// dominant cost — run at full width K through the SoA batch kernels, whose
// per-lane arithmetic is bit-identical to the scalar kernels, so every
// successful lane returns exactly the Result that Characterise would.
//
// Points must agree on the solver knobs (the sweep layer batches only points
// with identical options fingerprints); Trace, Budget, Partial and Span may
// differ per point. laneErrs[k] reports per-lane failures; a non-nil
// batchErr (tripped batchTok, injected batch fault, or an incompatible
// batch) voids every lane.
func CharacteriseBatch(be dynsys.BatchEvaluator, points []BatchPoint, batchTok *budget.Token) (results []*Result, laneErrs []error, batchErr error) {
	K := len(points)
	if K == 0 {
		return nil, nil, errors.New("core: CharacteriseBatch of zero points")
	}
	if be == nil {
		return nil, nil, errors.New("core: CharacteriseBatch requires a batch evaluator")
	}
	if be.Lanes() != K {
		return nil, nil, fmt.Errorf("core: batch evaluator has %d lanes, got %d points", be.Lanes(), K)
	}
	var parent *obs.Span
	for _, pt := range points {
		if pt.Opts != nil && pt.Opts.Span != nil {
			parent = pt.Opts.Span
			break
		}
	}
	sp := obs.StartSpan(parent, "core.CharacteriseBatch")
	sp.SetAttr("lanes", K)
	results, laneErrs, batchErr = characteriseBatch(be, points, batchTok, sp)
	m := coreMetrics.Get()
	if batchErr == nil {
		for k := range points {
			if laneErrs[k] != nil {
				m.failed.Inc()
			} else {
				m.ok.Inc()
			}
		}
	}
	sp.EndErr(batchErr)
	return results, laneErrs, batchErr
}

func characteriseBatch(be dynsys.BatchEvaluator, points []BatchPoint, batchTok *budget.Token, sp *obs.Span) ([]*Result, []error, error) {
	K := len(points)
	plans := make([]stagePlan, K)
	for k, pt := range points {
		if pt.Opts != nil && pt.Opts.ReusePSS != nil {
			return nil, nil, fmt.Errorf("core: CharacteriseBatch point %d sets ReusePSS; reuse paths are scalar", k)
		}
		plans[k] = resolveStages(pt.Opts)
		if tr := plans[k].tr; tr != nil {
			*tr = Trace{}
			start := time.Now()
			defer func(tr *Trace) { tr.Wall = time.Since(start) }(tr)
		}
	}

	results := make([]*Result, K)
	laneErrs := make([]error, K)

	lanes := make([]shooting.BatchLane, K)
	for k, pt := range points {
		lanes[k] = shooting.BatchLane{Sys: pt.Sys, X0: pt.X0, TGuess: pt.TGuess, Opts: plans[k].so}
	}
	ssp := obs.StartSpan(sp, "shooting.FindBatch")
	psses, sErrs, berr := shooting.FindBatch(be, lanes, batchTok)
	ssp.EndErr(berr)
	if berr != nil {
		return nil, nil, berr
	}
	anyPSS := false
	for k := range points {
		if sErrs[k] != nil {
			if budget.Is(sErrs[k]) {
				budget.RecordTrip("shooting")
			}
			laneErrs[k] = fmt.Errorf("core: periodic steady state: %w", sErrs[k])
			continue
		}
		anyPSS = true
		if part := plans[k].part; part != nil {
			part.PSS = psses[k]
		}
	}
	if !anyPSS {
		return results, laneErrs, nil
	}

	items := make([]floquet.BatchItem, K)
	for k, pt := range points {
		items[k] = floquet.BatchItem{Sys: pt.Sys, PSS: psses[k], Opts: plans[k].fo}
	}
	fsp := obs.StartSpan(sp, "floquet.AnalyzeBatch")
	decs, fErrs, berr := floquet.AnalyzeBatch(be, items, batchTok)
	fsp.EndErr(berr)
	if berr != nil {
		return nil, nil, berr
	}

	for k, pt := range points {
		if laneErrs[k] != nil {
			continue
		}
		if fErrs[k] != nil {
			if budget.Is(fErrs[k]) {
				budget.RecordTrip("floquet")
			}
			laneErrs[k] = fmt.Errorf("core: floquet analysis: %w", fErrs[k])
			continue
		}
		dec := decs[k]
		if part := plans[k].part; part != nil {
			part.Floquet = dec
		}
		if err := plans[k].bud.Err(); err != nil {
			budget.RecordTrip("quadrature")
			laneErrs[k] = fmt.Errorf("core: before c quadrature: %w", err)
			continue
		}
		qp := plans[k].qp
		if qp <= 0 {
			qp = max(len(dec.V1.Points), 1000) // FromDecomposition's default grid
		}
		qStart := time.Now()
		res, err := FromDecomposition(pt.Sys, psses[k], dec, qp)
		if tr := plans[k].tr; tr != nil {
			tr.QuadWall = time.Since(qStart)
			tr.QuadPoints = qp
		}
		if err != nil {
			laneErrs[k] = err
			continue
		}
		results[k] = res
	}
	return results, laneErrs, nil
}
