package core

import (
	"math"
	"testing"

	"repro/internal/dynsys"
	"repro/internal/osc"
)

// colouredHopfC characterises a Hopf oscillator whose single (y-equation)
// noise source is OU-filtered with correlation time tau, normalised so the
// delivered low-frequency intensity matches the white case (σ = 1/√(2τ)).
func colouredHopfC(t *testing.T, h *osc.Hopf, tau float64) float64 {
	t.Helper()
	col, err := dynsys.NewColored(h, []dynsys.ColoredSource{
		{Index: 0, Tau: tau, Sigma: 1 / math.Sqrt(2*tau)},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Characterise(col, col.AugmentState([]float64{1, 0}), h.Period(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The augmented cycle is the base cycle with z = 0: same period.
	if math.Abs(res.T()-h.Period()) > 1e-8*h.Period() {
		t.Fatalf("augmented period %g, base %g", res.T(), h.Period())
	}
	return res.C
}

// TestColoredNoiseCarrierFiltering: for the Hopf oscillator v1ᵀB oscillates
// exactly at the carrier, so an OU-filtered source contributes according to
// its spectrum AT ω0, not at DC:
//
//	c(τ)/c_white = 1/(1 + (ω0·τ)²)
//
// — a sharp, parameter-free prediction of the augmented-state treatment.
func TestColoredNoiseCarrierFiltering(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 0.05, YOnly: true}
	cWhite := h.ExactC()
	for _, x := range []float64{0.3, 1, 3} {
		tau := x / h.Omega
		got := colouredHopfC(t, h, tau)
		want := cWhite / (1 + x*x)
		if math.Abs(got-want) > 0.02*want {
			t.Fatalf("ω0τ=%g: c = %.6e, want %.6e", x, got, want)
		}
	}
}

// TestColoredNoiseWhiteLimit: τ → 0 recovers the white-noise c.
func TestColoredNoiseWhiteLimit(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 0.05, YOnly: true}
	tau := 0.01 / h.Omega
	got := colouredHopfC(t, h, tau)
	want := h.ExactC()
	if math.Abs(got-want) > 0.01*want {
		t.Fatalf("white limit: c = %.6e, want %.6e", got, want)
	}
}

// TestColoredAugmentedFloquet: the OU state adds a Floquet exponent −1/τ to
// the augmented cycle without disturbing the oscillator's own modes.
func TestColoredAugmentedFloquet(t *testing.T) {
	h := &osc.Hopf{Lambda: 1.5, Omega: 2 * math.Pi, Sigma: 0.05, YOnly: true}
	tau := 0.2
	col, err := dynsys.NewColored(h, []dynsys.ColoredSource{{Index: 0, Tau: tau, Sigma: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Characterise(col, col.AugmentState([]float64{1, 0}), h.Period(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Floquet.Multipliers) != 3 {
		t.Fatalf("%d multipliers", len(res.Floquet.Multipliers))
	}
	// Expect multipliers {1, e^{−2λT}, e^{−T/τ}} in some order after the
	// leading unit one.
	wantA := math.Exp(-2 * h.Lambda * h.Period())
	wantB := math.Exp(-h.Period() / tau)
	got1 := real(res.Floquet.Multipliers[1])
	got2 := real(res.Floquet.Multipliers[2])
	ok := (math.Abs(got1-wantA) < 1e-4 && math.Abs(got2-wantB) < 1e-4) ||
		(math.Abs(got1-wantB) < 1e-4 && math.Abs(got2-wantA) < 1e-4)
	if !ok {
		t.Fatalf("multipliers %v, want {%g, %g}", res.Floquet.Multipliers[1:], wantA, wantB)
	}
}
