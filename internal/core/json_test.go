package core

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/osc"
)

// TestResultJSONRoundTripLossFree is the golden round-trip test of the wire
// codec: a real characterisation marshals, unmarshals, and re-marshals to
// byte-identical JSON, and every numeric field (including the interpolable
// trajectories and the unexported source labels) survives exactly.
func TestResultJSONRoundTripLossFree(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2, Sigma: 0.02}
	res, err := Characterise(h, []float64{1, 0.1}, h.Period()*1.05, nil)
	if err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("marshal → unmarshal → marshal is not byte-identical")
	}

	if back.C != res.C {
		t.Fatalf("c: %g vs %g", back.C, res.C)
	}
	if back.T() != res.T() || back.PSS.Residual != res.PSS.Residual || back.PSS.Iters != res.PSS.Iters {
		t.Fatal("PSS scalars changed")
	}
	if !reflect.DeepEqual(back.PSS.X0, res.PSS.X0) {
		t.Fatal("PSS.X0 changed")
	}
	if !reflect.DeepEqual(back.PSS.Monodromy, res.PSS.Monodromy) {
		t.Fatal("monodromy changed")
	}
	if !reflect.DeepEqual(back.Floquet.Multipliers, res.Floquet.Multipliers) {
		t.Fatalf("complex multipliers changed: %v vs %v", back.Floquet.Multipliers, res.Floquet.Multipliers)
	}
	if !reflect.DeepEqual(back.Floquet.Exponents, res.Floquet.Exponents) {
		t.Fatal("complex exponents changed")
	}
	if !reflect.DeepEqual(back.PerSource, res.PerSource) {
		t.Fatal("per-source contributions changed")
	}
	if !reflect.DeepEqual(back.Sensitivity, res.Sensitivity) {
		t.Fatal("sensitivities changed")
	}
	if !reflect.DeepEqual(back.SourceLabels(), res.SourceLabels()) {
		t.Fatalf("unexported labels lost: %v vs %v", back.SourceLabels(), res.SourceLabels())
	}

	// The decoded trajectories must stay interpolable with identical values.
	n := h.Dim()
	a, b := make([]float64, n), make([]float64, n)
	for _, frac := range []float64{0, 0.23, 0.5, 0.99} {
		tt := frac * res.T()
		res.PSS.Orbit.At(tt, a)
		back.PSS.Orbit.At(tt, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("orbit(%g) changed: %v vs %v", tt, a, b)
			}
		}
		res.Floquet.V1.At(tt, a)
		back.Floquet.V1.At(tt, b)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("v1(%g) changed: %v vs %v", tt, a, b)
			}
		}
	}

	// Figures of merit computed from the decoded result agree exactly.
	if back.CornerFreq() != res.CornerFreq() || back.JitterVariance(7) != res.JitterVariance(7) {
		t.Fatal("figures of merit changed")
	}
}

func TestSpectrumJSONRoundTrip(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2, Sigma: 0.02}
	res, err := Characterise(h, []float64{1, 0.1}, h.Period()*1.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := res.OutputSpectrum(0, 3)
	data, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back Spectrum
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, sp) {
		t.Fatalf("spectrum changed: %+v vs %+v", back, sp)
	}
	f := 1.37 * sp.F0
	if back.SSB(f) != sp.SSB(f) || back.TotalPower() != sp.TotalPower() {
		t.Fatal("spectrum evaluation changed")
	}
	if math.IsNaN(back.SSB(f)) {
		t.Fatal("NaN after round trip")
	}
}
