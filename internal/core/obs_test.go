package core

import (
	"math"
	"testing"

	"repro/internal/budget"
	"repro/internal/dynsys"
	"repro/internal/floquet"
	"repro/internal/obs"
	"repro/internal/osc"
)

// tripAfterShooting wraps a system and cancels a budget token a fixed number
// of Jacobian calls after the shooting stage completed (signalled by
// Partial.PSS becoming non-nil, which Characterise sets on the same
// goroutine). Analyze evaluates the Jacobian only inside the backward adjoint
// integration, so the trip is guaranteed to land mid-Floquet.
type tripAfterShooting struct {
	dynsys.System
	part   *Partial
	calls  int
	after  int
	cancel func()
}

func (s *tripAfterShooting) Jacobian(x []float64, dst []float64) {
	if s.part.PSS != nil {
		s.calls++
		if s.calls > s.after {
			s.cancel()
		}
	}
	s.System.Jacobian(x, dst)
}

// Degraded-path traces: when the budget trips mid-Floquet, the aggregate
// Trace must still carry the complete shooting diagnostics and a partial
// (non-zero, non-configured) Floquet stage.
func TestDegradedTraceOnMidFloquetBudgetTrip(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	tok, cancel := budget.WithCancel(nil)
	defer cancel()
	var part Partial
	wrapped := &tripAfterShooting{System: h, part: &part, after: 400, cancel: cancel}

	var tr Trace
	const configured = 4000
	_, err := Characterise(wrapped, []float64{1, 0.1}, 1.05, &Options{
		Floquet: &floquet.Options{Steps: configured},
		Trace:   &tr,
		Budget:  tok,
		Partial: &part,
	})
	if !budget.Is(err) {
		t.Fatalf("got %v, want a budget error", err)
	}
	// Shooting completed: its trace is fully populated.
	if tr.Shooting.Iters == 0 || tr.Shooting.Wall <= 0 {
		t.Fatalf("shooting trace lost on degraded run: %+v", tr.Shooting)
	}
	if tr.Shooting.Residual <= 0 || tr.Shooting.Residual > 1e-9 {
		t.Fatalf("converged shooting residual not recorded: %g", tr.Shooting.Residual)
	}
	if part.PSS == nil {
		t.Fatal("converged PSS not preserved")
	}
	// Floquet was cut mid-adjoint: partial step count, wall time recorded.
	if tr.Floquet.Steps <= 0 || tr.Floquet.Steps >= configured {
		t.Fatalf("Floquet.Steps = %d, want partial in (0, %d)", tr.Floquet.Steps, configured)
	}
	if tr.Floquet.Wall <= 0 {
		t.Fatal("partial floquet wall time not recorded")
	}
	// The quadrature never ran.
	if tr.QuadPoints != 0 || tr.QuadWall != 0 {
		t.Fatalf("quadrature trace set for a stage that never ran: points=%d wall=%v", tr.QuadPoints, tr.QuadWall)
	}
	if part.Floquet != nil {
		t.Fatal("failed floquet stage must not populate Partial.Floquet")
	}
}

// The budget-trip counter must name the interrupted stage.
func TestBudgetTripCountedByStage(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.02}
	tok, cancel := budget.WithCancel(nil)
	cancel()
	if _, err := Characterise(h, []float64{1, 0.1}, 1.05, &Options{Budget: tok}); err == nil {
		t.Fatal("want an error from the pre-canceled budget")
	}
	s := reg.Snapshot()
	if got := s.Counter("pn_budget_trips_total", "shooting"); got != 1 {
		t.Fatalf("shooting trips = %d, want 1", got)
	}
	if got := s.Counter("pn_core_characterisations_total", "error"); got != 1 {
		t.Fatalf("error characterisations = %d, want 1", got)
	}
}
