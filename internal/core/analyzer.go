package core

import "math"

// AnalyzerTrace emulates what a swept spectrum analyzer displays for the
// oscillator's Lorentzian spectrum — the instrument the paper's Figure 2(b)
// measurement used. Each display bin integrates the true PSD through a
// Gaussian resolution-bandwidth (RBW) filter centred on the bin frequency,
// so narrow lines appear with the RBW's width and the floor is unchanged:
//
//	P_disp(f) = ∫ Sss(ν)·|H_RBW(ν − f)|² dν,   ∫|H|² dν = 1·RBW… more
//
// precisely the displayed density uses a unit-peak Gaussian of equivalent
// noise bandwidth rbw, matching common analyzer behaviour (level in
// V²/Hz · the filter's gain at the line).
type AnalyzerPoint struct {
	F    float64 // display frequency (Hz)
	PSD  float64 // displayed density (V²/Hz)
	DBm  float64 // displayed level in dBm/Hz into RLoad
	DBmF float64 // displayed power in the RBW, dBm (what the screen shows)
}

// AnalyzerTrace sweeps [fStart, fStop] with `points` display bins and a
// Gaussian RBW filter of equivalent noise bandwidth rbw (Hz), into rload
// ohms. The quadrature covers ±4 RBW around each bin with resolution fine
// enough for the narrower of {rbw, Lorentzian half-width}.
func (s *Spectrum) AnalyzerTrace(fStart, fStop, rbw, rload float64, points int) []AnalyzerPoint {
	if points < 2 {
		points = 2
	}
	// Gaussian with equivalent noise bandwidth rbw: |H(δ)|² = exp(−πδ²/rbw²)
	// integrates to rbw.
	hw := s.LorentzianHalfWidth(1)
	step := math.Min(rbw, hw) / 8
	if step <= 0 {
		step = rbw / 8
	}
	out := make([]AnalyzerPoint, points)
	for k := 0; k < points; k++ {
		f := fStart + (fStop-fStart)*float64(k)/float64(points-1)
		// Integrate Sss(ν)·|H(ν−f)|² over ν ∈ [f−4rbw, f+4rbw].
		lo := f - 4*rbw
		if lo < 0 {
			lo = 0
		}
		hi := f + 4*rbw
		n := int((hi-lo)/step) + 1
		acc := 0.0
		for i := 0; i <= n; i++ {
			nu := lo + (hi-lo)*float64(i)/float64(n)
			w := 1.0
			if i == 0 || i == n {
				w = 0.5
			}
			d := nu - f
			acc += w * s.SSB(nu) * math.Exp(-math.Pi*d*d/(rbw*rbw))
		}
		acc *= (hi - lo) / float64(n) // ∫ Sss·|H|² dν: power captured in the RBW
		psdDisp := acc / rbw          // displayed as a density
		out[k] = AnalyzerPoint{
			F:    f,
			PSD:  psdDisp,
			DBm:  10 * math.Log10(psdDisp/rload/1e-3),
			DBmF: 10 * math.Log10(acc/rload/1e-3),
		}
	}
	return out
}
