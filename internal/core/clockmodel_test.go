package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/osc"
	"repro/internal/stochproc"
)

func clockFromHopf(t *testing.T) *ClockModel {
	t.Helper()
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	res, err := Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.ClockModel()
}

func TestClockModelParameters(t *testing.T) {
	m := clockFromHopf(t)
	if math.Abs(m.T-1) > 1e-8 {
		t.Fatalf("T = %g", m.T)
	}
	if math.Abs(m.PeriodJitterRMS()-math.Sqrt(m.C*m.T)) > 1e-18 {
		t.Fatal("period jitter formula")
	}
	if math.Abs(m.AccumulatedJitterRMS(9)-3*m.PeriodJitterRMS()) > 1e-15 {
		t.Fatal("accumulated jitter should grow as √k")
	}
	if math.Abs(m.AbsoluteJitterAfter(4*m.T)-m.AccumulatedJitterRMS(4)) > 1e-15 {
		t.Fatal("τ-form and k-form must agree at τ = kT")
	}
}

func TestClockModelEdgeStatistics(t *testing.T) {
	m := clockFromHopf(t)
	nPaths, nEdges := 3000, 40
	kProbe := []int{5, 20, 40}
	samples := map[int][]float64{}
	for p := 0; p < nPaths; p++ {
		rng := rand.New(rand.NewSource(int64(p + 1)))
		edges := m.Edges(nEdges, rng)
		for _, k := range kProbe {
			samples[k] = append(samples[k], edges[k-1]-float64(k)*m.T)
		}
	}
	for _, k := range kProbe {
		mom := stochproc.SampleMoments(samples[k])
		want := m.C * float64(k) * m.T
		if math.Abs(mom.Variance-want) > 0.1*want {
			t.Fatalf("Var[t_%d] = %g, want %g", k, mom.Variance, want)
		}
		if !mom.IsGaussianish(5) {
			t.Fatalf("edge %d errors not Gaussian: skew %g kurt %g", k, mom.Skewness, mom.ExcessKurtosis)
		}
	}
}

func TestClockModelEdgesMonotone(t *testing.T) {
	m := clockFromHopf(t)
	rng := rand.New(rand.NewSource(2))
	edges := m.Edges(200, rng)
	for k := 1; k < len(edges); k++ {
		if edges[k] <= edges[k-1] {
			// With jitter σ ≪ T this must never happen for sane oscillators.
			t.Fatalf("edges out of order at %d", k)
		}
	}
}

func TestClockModelIncrementsIndependent(t *testing.T) {
	// Period-to-period jitter increments are i.i.d.: lag-1 autocorrelation
	// of (t_k − t_{k-1} − T) must vanish.
	m := clockFromHopf(t)
	rng := rand.New(rand.NewSource(3))
	edges := m.Edges(20000, rng)
	incs := make([]float64, len(edges)-1)
	for k := 1; k < len(edges); k++ {
		incs[k-1] = edges[k] - edges[k-1] - m.T
	}
	r := stochproc.Autocorrelation(incs, 1)
	if math.Abs(r[1]/r[0]) > 0.03 {
		t.Fatalf("lag-1 correlation %g", r[1]/r[0])
	}
}

// TestInjectionLockingAdler: the deterministic Eq.-9 machinery reproduces
// Adler's injection-locking law. For the Hopf oscillator with a y-equation
// injection ε·cos(ω_inj·t), averaging Eq. 9 gives
//
//	dψ/dt = (ε/2)·cos(ψ) − Δω,   ψ = ω0·α − Δω·t,
//
// so the oscillator LOCKS to the injected tone iff |Δω| < ε/2, in which
// case α(t) drifts at exactly Δω/ω0 (the oscillator runs at ω_inj).
func TestInjectionLockingAdler(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 1, YOnly: true}
	res, err := Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.04 // lock range |Δω| < 0.02 rad/s
	measureSlope := func(domega float64) float64 {
		winj := h.Omega + domega
		bfun := func(tt float64) []float64 { return []float64{eps * math.Cos(winj*tt)} }
		// The window must span many beat periods (≈ 80 s outside the lock
		// range) so partial beats do not bias the slope estimate.
		nsteps := 120000
		t1 := 6000 * res.T()
		alphas := res.SolvePhaseODE(h, bfun, t1, nsteps)
		// Slope over the second half (past the locking transient).
		half := nsteps / 2
		return (alphas[nsteps] - alphas[half]) / (t1 / 2)
	}
	// Inside the lock range: α drifts at exactly Δω/ω0.
	dIn := 0.01
	slopeIn := measureSlope(dIn)
	if math.Abs(slopeIn-dIn/h.Omega) > 0.02*dIn/h.Omega {
		t.Fatalf("locked drift %g, want %g", slopeIn, dIn/h.Omega)
	}
	// Outside: the oscillator cannot follow — drift < Δω/ω0 (pulled only).
	dOut := 0.08
	slopeOut := measureSlope(dOut)
	if slopeOut > 0.8*dOut/h.Omega {
		t.Fatalf("unlocked drift %g too close to full tracking %g", slopeOut, dOut/h.Omega)
	}
	// Adler's beat: outside lock the average beat frequency is
	// √(Δω² − (ε/2)²); check the residual drift (Δω−ω0·slope) matches... the
	// mean of dψ/dt is −√(Δω²−(ε/2)²) ⇒ ω0·slope = Δω − √(Δω²−(ε/2)²).
	wantSlope := (dOut - math.Sqrt(dOut*dOut-eps*eps/4)) / h.Omega
	if math.Abs(slopeOut-wantSlope) > 0.15*wantSlope {
		t.Fatalf("pulled drift %g, Adler prediction %g", slopeOut, wantSlope)
	}
}
