package core

import (
	"math"
	"testing"

	"repro/internal/osc"
	"repro/internal/shooting"
)

// The FitzHugh–Nagumo relaxation oscillator exercises the stiff,
// strongly non-sinusoidal corner of the pipeline: square-wave-like cycles
// with extremely contracting transverse Floquet modes (|m2| ~ 1e-16).

func fhnResult(t *testing.T) (*osc.FitzHughNagumo, *Result) {
	t.Helper()
	f := &osc.FitzHughNagumo{Eps: 0.08, A: 0, SigmaV: 1e-3, SigmaW: 1e-3}
	T, x0, err := shooting.EstimatePeriod(f, []float64{1, 0}, 60)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Characterise(f, x0, T, &Options{
		Shooting: &shooting.Options{StepsPerPeriod: 8000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, res
}

func TestFHNCharacterisation(t *testing.T) {
	_, res := fhnResult(t)
	// Known period scale for ε=0.08, a=0: T ≈ 2.7 (slow branches dominate).
	if res.T() < 2 || res.T() > 4 {
		t.Fatalf("T = %g", res.T())
	}
	if res.C <= 0 {
		t.Fatal("c must be positive")
	}
	// The transverse multiplier is astronomically contracting but the
	// pipeline must still deliver a clean v1 (inverse iteration at 1 is
	// unaffected by the tiny second eigenvalue).
	if res.Floquet.UnitErr > 1e-5 {
		t.Fatalf("unit multiplier error %g", res.Floquet.UnitErr)
	}
	if res.Floquet.BiorthoDrift > 1e-3 {
		t.Fatalf("biorthogonality drift %g", res.Floquet.BiorthoDrift)
	}
}

func TestFHNSlowEquationMoreSensitive(t *testing.T) {
	// Phase-noise physics of relaxation oscillators: PER UNIT NOISE
	// INTENSITY the oscillator is far more sensitive to noise in the SLOW
	// equation (it directly modulates the dwell time on the slow branches)
	// than in the fast one, whose deviations relax within O(ε). The per-node
	// sensitivities cs(k) of Eq. 32 are exactly that per-unit measure.
	// (The raw contributions c_i go the other way here only because the
	// model injects σ/ε — a 156× stronger intensity — into the fast
	// equation.)
	_, res := fhnResult(t)
	fast, slow := res.Sensitivity[0], res.Sensitivity[1]
	if slow < 5*fast {
		t.Fatalf("slow-equation sensitivity %g not ≫ fast %g", slow, fast)
	}
}

func TestQuadratureConvergenceAblation(t *testing.T) {
	// DESIGN.md ablation: the c quadrature is spectrally convergent in the
	// number of points for smooth cycles — 200 vs 2000 points must agree to
	// near machine precision on the Hopf oscillator, and to a loose bound
	// even on the stiff FHN cycle.
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	resH, err := Characterise(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	coarseH, err := FromDecomposition(h, resH.PSS, resH.Floquet, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(coarseH.C-resH.C) / resH.C; rel > 1e-10 {
		t.Fatalf("Hopf quadrature ablation: rel diff %g", rel)
	}

	f, resF := fhnResult(t)
	coarseF, err := FromDecomposition(f, resF.PSS, resF.Floquet, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(coarseF.C-resF.C) / resF.C; rel > 0.05 {
		t.Fatalf("FHN quadrature ablation: rel diff %g", rel)
	}
}

func TestShootingStepsAblation(t *testing.T) {
	// DESIGN.md ablation: halving the monodromy integration steps must not
	// move c beyond the integrator's O(h⁴) error.
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	cAt := func(steps int) float64 {
		res, err := Characterise(h, []float64{1, 0}, 1, &Options{
			Shooting: &shooting.Options{StepsPerPeriod: steps},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.C
	}
	c1, c2 := cAt(500), cAt(2000)
	if rel := math.Abs(c1-c2) / c2; rel > 1e-8 {
		t.Fatalf("steps ablation: rel diff %g", rel)
	}
}
