package core

import (
	"math"

	"repro/internal/dynsys"
	"repro/internal/ode"
)

// SolvePhaseODE integrates the exact nonlinear phase equation of the paper
// (Eq. 9) for a DETERMINISTIC perturbation b(t):
//
//	dα/dt = v1ᵀ(t+α)·B(xs(t+α))·b(t),   α(0) = 0,
//
// returning α sampled at nsteps+1 uniform instants over [0, t1]. This is
// the Section-5 machinery (phase deviation caused by a known signal),
// useful for injection/pulling studies and for validating Theorem 5.1
// against direct simulation of the perturbed oscillator.
func (r *Result) SolvePhaseODE(sys dynsys.System, bfun func(t float64) []float64, t1 float64, nsteps int) []float64 {
	n := sys.Dim()
	p := sys.NumNoise()
	x := make([]float64, n)
	v := make([]float64, n)
	bm := make([]float64, n*p)
	rhs := func(t float64, alpha, dst []float64) {
		ts := t + alpha[0]
		tm := math.Mod(ts, r.PSS.T)
		if tm < 0 {
			tm += r.PSS.T
		}
		r.PSS.Orbit.At(tm, x)
		r.Floquet.V1.At(tm, v)
		sys.Noise(x, bm)
		bv := bfun(t)
		s := 0.0
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				s += v[i] * bm[i*p+j] * bv[j]
			}
		}
		dst[0] = s
	}
	out := make([]float64, nsteps+1)
	alpha := []float64{0}
	h := t1 / float64(nsteps)
	for k := 0; k < nsteps; k++ {
		ode.RK4Step(rhs, float64(k)*h, alpha, h, alpha)
		out[k+1] = alpha[0]
	}
	return out
}

// PerturbedSolution integrates the FULL perturbed oscillator
// ẋ = f(x) + B(x)·b(t) from the periodic-steady-state point, returning the
// exact z(t) of the paper's Eq. (2) for comparison against the Section-5
// decomposition z(t) ≈ xs(t+α(t)) + y(t).
func (r *Result) PerturbedSolution(sys dynsys.System, bfun func(t float64) []float64, t1 float64, nsteps int) *ode.Trajectory {
	n := sys.Dim()
	p := sys.NumNoise()
	bm := make([]float64, n*p)
	rhs := func(t float64, z, dst []float64) {
		sys.Eval(z, dst)
		sys.Noise(z, bm)
		bv := bfun(t)
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				dst[i] += bm[i*p+j] * bv[j]
			}
		}
	}
	rec := &ode.Trajectory{}
	z := append([]float64(nil), r.PSS.X0...)
	dz := make([]float64, n)
	rhs(0, z, dz)
	rec.Append(0, z, dz)
	h := t1 / float64(nsteps)
	for k := 0; k < nsteps; k++ {
		t := float64(k) * h
		ode.RK4Step(rhs, t, z, h, z)
		rhs(t+h, z, dz)
		rec.Append(t+h, z, dz)
	}
	return rec
}

// PhaseShiftedOrbit evaluates xs(t + α) into dst, reducing the argument
// modulo the period.
func (r *Result) PhaseShiftedOrbit(t, alpha float64, dst []float64) {
	tm := math.Mod(t+alpha, r.PSS.T)
	if tm < 0 {
		tm += r.PSS.T
	}
	r.PSS.Orbit.At(tm, dst)
}
