package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/osc"
)

func hopfSpectrum(t *testing.T) *Spectrum {
	t.Helper()
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi * 1e3, Sigma: 0.2}
	res, err := Characterise(h, []float64{1, 0}, h.Period(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.OutputSpectrum(0, 3)
}

func TestSpectrumEvenAndPositive(t *testing.T) {
	sp := hopfSpectrum(t)
	for _, w := range []float64{0, 100, 6283, 2 * math.Pi * 1e3, 5e4} {
		p := sp.PSD(w)
		m := sp.PSD(-w)
		if p < 0 {
			t.Fatalf("PSD(%g) = %g < 0", w, p)
		}
		if math.Abs(p-m) > 1e-12*(p+m) {
			t.Fatalf("PSD not even at %g: %g vs %g", w, p, m)
		}
	}
}

func TestSpectrumSSBFactorTwo(t *testing.T) {
	sp := hopfSpectrum(t)
	for _, f := range []float64{100, 999, 1001, 3000} {
		if math.Abs(sp.SSB(f)-2*sp.PSD(2*math.Pi*f)) > 1e-15*sp.SSB(f) {
			t.Fatalf("SSB(%g) != 2·S(2πf)", f)
		}
	}
}

func TestSpectrumdBmConversions(t *testing.T) {
	sp := hopfSpectrum(t)
	r := 50.0
	f0 := sp.F0
	// dBm/Hz at the carrier: 10log10(Sss/R/1mW).
	want := 10 * math.Log10(sp.SSB(f0)/r/1e-3)
	if math.Abs(sp.SSBdBm(f0, r)-want) > 1e-12 {
		t.Fatalf("SSBdBm = %g, want %g", sp.SSBdBm(f0, r), want)
	}
	// Unit cosine into 50 Ω: power 0.5 V²/50 Ω = 10 mW = +10 dBm.
	if math.Abs(sp.CarrierPowerdBm(r)-10) > 0.1 {
		t.Fatalf("carrier power %g dBm, want ≈ +10 (0.5 V² into 50 Ω)", sp.CarrierPowerdBm(r))
	}
}

func TestLorentzianHalfWidthScalesAsISquared(t *testing.T) {
	sp := hopfSpectrum(t)
	w1 := sp.LorentzianHalfWidth(1)
	w3 := sp.LorentzianHalfWidth(3)
	if math.Abs(w3-9*w1) > 1e-12*w3 {
		t.Fatalf("hw(3)/hw(1) = %g, want 9", w3/w1)
	}
}

// Property: the PSD is maximal on each harmonic ridge — at any offset δ the
// value at f0+δ never exceeds the on-carrier value.
func TestQuickSpectrumPeakAtCarrier(t *testing.T) {
	sp := hopfSpectrum(t)
	f := func(deltaRaw float64) bool {
		delta := math.Mod(math.Abs(deltaRaw), 400) + 1e-3
		return sp.SSB(sp.F0) >= sp.SSB(sp.F0+delta) && sp.SSB(sp.F0) >= sp.SSB(sp.F0-delta)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: autocorrelation never exceeds its zero-lag value.
func TestQuickAutocorrelationBound(t *testing.T) {
	sp := hopfSpectrum(t)
	r0 := sp.Autocorrelation(0)
	f := func(tauRaw float64) bool {
		tau := math.Mod(math.Abs(tauRaw), 10)
		return math.Abs(sp.Autocorrelation(tau)) <= r0*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLdBcNearCarrierFinite(t *testing.T) {
	sp := hopfSpectrum(t)
	// Even evaluated exactly at the carrier offset 0 the exact definition
	// (Eq. 26) stays finite.
	v := sp.LdBc(0)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("L(0) = %v", v)
	}
	// Zero-X1 degenerate case returns −Inf rather than NaN.
	empty := &Spectrum{F0: 1e3, C: 1e-9, Coeffs: make([]complex128, 3)}
	if !math.IsInf(empty.LdBc(10), -1) {
		t.Fatal("degenerate LdBc should be −Inf")
	}
}
