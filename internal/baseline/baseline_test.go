package baseline

import (
	"math"
	"testing"

	"repro/internal/osc"
	"repro/internal/shooting"
)

func TestLeesonDivergesAtCarrier(t *testing.T) {
	// The LTI model must blow up as fm → 0 — the defect the paper fixes.
	l1 := LeesonLdBc(1, 1e6, 10, 2, 1e-3, 300)
	l2 := LeesonLdBc(0.01, 1e6, 10, 2, 1e-3, 300)
	if l2-l1 < 30 {
		t.Fatalf("Leeson should rise ~40 dB per 100× toward carrier: %g → %g", l1, l2)
	}
	// Far above the corner it flattens to the broadband floor.
	lf1 := LeesonLdBc(1e5, 1e6, 10, 2, 1e-3, 300)
	lf2 := LeesonLdBc(3e5, 1e6, 10, 2, 1e-3, 300)
	if math.Abs(lf1-lf2) > 3 {
		t.Fatalf("floor should be flat: %g vs %g", lf1, lf2)
	}
}

func TestLeesonSlopeIs20dBPerDecade(t *testing.T) {
	// In the 1/f² region, one decade of offset = −20 dB.
	f0, q := 1e6, 5.0
	l1 := LeesonLdBc(100, f0, q, 1, 1e-3, 300)
	l2 := LeesonLdBc(1000, f0, q, 1, 1e-3, 300)
	if math.Abs((l1-l2)-20) > 0.5 {
		t.Fatalf("slope %g dB/decade, want 20", l1-l2)
	}
}

func TestInvSquareMatchesPaperEq28(t *testing.T) {
	// Same formula as core's Eq. 28 evaluation.
	got := InvSquareLdBc(1000, 6660, 7.56e-8)
	want := 10 * math.Log10(6660.0*6660.0/1e6*7.56e-8)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestLTVCovarianceTangentGrowsTransverseSaturates(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 0.02}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := LTVCovariance(h, pss, 30, 400)
	if len(g.Times) != 31 {
		t.Fatalf("%d samples", len(g.Times))
	}
	// Tangent variance grows linearly: compare growth over the second half
	// against the first half — should be comparable (linear, not saturating).
	firstHalf := g.TangentVar[15] - g.TangentVar[0]
	secondHalf := g.TangentVar[30] - g.TangentVar[15]
	if secondHalf < 0.7*firstHalf {
		t.Fatalf("tangent variance saturating: %g then %g", firstHalf, secondHalf)
	}
	slope := g.TangentSlope()
	if slope <= 0 {
		t.Fatalf("tangent slope %g, want > 0", slope)
	}
	// For the Hopf ground truth the phase-direction variance grows like
	// c·t·‖u1‖² with c = σ²/ω² and ‖u1‖ = ω ⇒ slope ≈ σ².
	want := h.Sigma * h.Sigma
	if math.Abs(slope-want) > 0.15*want {
		t.Fatalf("tangent slope %g, want ≈ %g", slope, want)
	}
	// Transverse variance saturates near its max.
	if sat := g.TransverseSaturation(); sat < 0.5 {
		t.Fatalf("transverse saturation %g", sat)
	}
	// And stays bounded ≈ σ²/(2·2λ)·... — at least, far below tangent growth.
	if g.TransVar[30] > g.TangentVar[30]/3 {
		t.Fatalf("transverse %g not ≪ tangent %g", g.TransVar[30], g.TangentVar[30])
	}
}

func TestLTVCovarianceMatchesPhaseDiffusion(t *testing.T) {
	// The LTV tangent growth rate equals c·‖u1‖² for the isotropic Hopf —
	// i.e. the LTV analysis detects the same diffusion the nonlinear theory
	// quantifies, it just cannot conclude anything valid from it.
	h := &osc.Hopf{Lambda: 3, Omega: 4, Sigma: 0.01}
	pss, err := shooting.Find(h, []float64{1, 0}, 2*math.Pi/4, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := LTVCovariance(h, pss, 40, 300)
	slope := g.TangentSlope()
	cExact := h.ExactC()
	uNormSq := h.Omega * h.Omega
	if math.Abs(slope-cExact*uNormSq) > 0.1*cExact*uNormSq {
		t.Fatalf("slope %g, want %g", slope, cExact*uNormSq)
	}
}

func TestForwardAdjointGrowthExplodes(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 0.1}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// v1(0) for the Hopf cycle at x0=(cos θ0, sin θ0).
	th0 := math.Atan2(pss.X0[1], pss.X0[0])
	v10 := []float64{-math.Sin(th0) / h.Omega, math.Cos(th0) / h.Omega}
	growth := ForwardAdjointGrowth(h, pss, v10, 1e-9, 4, 2000)
	// Expected ≈ exp(2λ·4T) = exp(16π/ω·λ)… just require severe growth.
	if growth < 1e3 {
		t.Fatalf("forward adjoint growth %g, want exponential blow-up", growth)
	}
	// More periods ⇒ much more growth (exponential, not algebraic).
	growth6 := ForwardAdjointGrowth(h, pss, v10, 1e-9, 6, 2000)
	if growth6 < 10*growth {
		t.Fatalf("growth not exponential: %g after 4T, %g after 6T", growth, growth6)
	}
}

func TestFitSlopeExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	if s := fitSlope(xs, ys); math.Abs(s-2) > 1e-12 {
		t.Fatalf("slope %g", s)
	}
	if fitSlope([]float64{1}, []float64{2}) != 0 {
		t.Fatal("degenerate slope should be 0")
	}
	if fitSlope([]float64{2, 2}, []float64{1, 5}) != 0 {
		t.Fatal("vertical line should return 0")
	}
}
