// Package baseline implements the pre-Demir analyses that the paper's
// Sections 3–4 argue against, so their failure modes can be demonstrated
// quantitatively:
//
//   - the Leeson-style LTI single-sideband phase-noise model, which predicts
//     a 1/f² spectrum that diverges at the carrier (infinite noise power);
//   - linear time-varying (LTV) covariance propagation about the periodic
//     orbit, whose variance grows without bound along the orbit tangent —
//     the inconsistency of linearisation for autonomous oscillators
//     (paper Section 4, Eq. 6);
//   - forward integration of the adjoint equation, the numerically unstable
//     direction that Section 9 (step 5) warns about.
package baseline

import (
	"math"

	"repro/internal/dynsys"
	"repro/internal/linalg"
	"repro/internal/ode"
	"repro/internal/shooting"
)

// LeesonLdBc evaluates the classical Leeson LTI phase-noise model in dBc/Hz:
//
//	L(f_m) = 10·log10( (2FkT/Psig)·(1 + (f0/(2Q·f_m))²) )
//
// F is the amplifier noise figure (linear), psig the carrier power (W into
// the tank resistance), q the loaded Q. As f_m → 0 this diverges like 1/f_m²
// — the non-physical infinite carrier power the Lorentzian theory removes.
func LeesonLdBc(fm, f0, q, noiseFigure, psig, tempK float64) float64 {
	kT := dynsys.BoltzmannK * tempK
	ratio := f0 / (2 * q * fm)
	return 10 * math.Log10(2*noiseFigure*kT/psig*(1+ratio*ratio))
}

// InvSquareLdBc is the bare 1/f² LTI/LTV prediction with a given diffusion
// constant: L(f_m) = 10·log10((f0/f_m)²·c), identical to the paper's Eq. 28.
// It diverges as f_m → 0.
func InvSquareLdBc(fm, f0, c float64) float64 {
	return 10 * math.Log10(f0*f0/(fm*fm)*c)
}

// LTVGrowth is the result of propagating the linearised covariance.
type LTVGrowth struct {
	Times      []float64
	TangentVar []float64 // variance along the orbit tangent u1(t) (normalised direction)
	TransVar   []float64 // variance transverse to the tangent
	TotalVar   []float64 // trace of the covariance
}

// LTVCovariance integrates the linear time-varying covariance equation
//
//	Ṗ = A(t)P + PAᵀ(t) + B(t)Bᵀ(t),   P(0) = 0,
//
// for the linearisation of sys about the periodic orbit pss over nPeriods
// periods, sampling once per period. This is the "consistent-looking"
// forced-system analysis of paper Section 4; its tangent-direction variance
// grows linearly without bound, invalidating the small-deviation assumption
// that justified linearising in the first place.
func LTVCovariance(sys dynsys.System, pss *shooting.PSS, nPeriods, stepsPerPeriod int) *LTVGrowth {
	n := sys.Dim()
	p := sys.NumNoise()
	jm := make([]float64, n*n)
	bm := make([]float64, n*p)
	xbuf := make([]float64, n)
	// State: P packed row-major (n² entries).
	rhs := func(t float64, pp, dst []float64) {
		tm := math.Mod(t, pss.T)
		pss.Orbit.At(tm, xbuf)
		sys.Jacobian(xbuf, jm)
		sys.Noise(xbuf, bm)
		// dst = A P + P Aᵀ + B Bᵀ
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += jm[i*n+k]*pp[k*n+j] + pp[i*n+k]*jm[j*n+k]
				}
				for k := 0; k < p; k++ {
					s += bm[i*p+k] * bm[j*p+k]
				}
				dst[i*n+j] = s
			}
		}
	}
	out := &LTVGrowth{}
	pp := make([]float64, n*n)
	fbuf := make([]float64, n)
	record := func(t float64) {
		tm := math.Mod(t, pss.T)
		pss.Orbit.At(tm, xbuf)
		sys.Eval(xbuf, fbuf)
		u := linalg.CloneVec(fbuf)
		linalg.Normalize(u)
		// Tangent variance uᵀPu; total = trace; transverse = total − tangent.
		tangent := 0.0
		total := 0.0
		for i := 0; i < n; i++ {
			total += pp[i*n+i]
			for j := 0; j < n; j++ {
				tangent += u[i] * pp[i*n+j] * u[j]
			}
		}
		out.Times = append(out.Times, t)
		out.TangentVar = append(out.TangentVar, tangent)
		out.TransVar = append(out.TransVar, total-tangent)
		out.TotalVar = append(out.TotalVar, total)
	}
	record(0)
	for k := 0; k < nPeriods; k++ {
		t0 := float64(k) * pss.T
		next, err := ode.RK4(rhs, t0, t0+pss.T, pp, stepsPerPeriod, nil)
		if err != nil {
			// The linearised covariance overflowed: the unbounded growth this
			// baseline demonstrates outran float64. Stop and return the
			// samples collected so far — the growth trend is already visible.
			break
		}
		pp = next
		record(t0 + pss.T)
	}
	return out
}

// TangentSlope fits Var_tangent(t) ≈ a + b·t by least squares and returns
// the growth rate b; a strictly positive slope is the Section-4 signature of
// unbounded linearised deviation.
func (g *LTVGrowth) TangentSlope() float64 {
	return fitSlope(g.Times, g.TangentVar)
}

// TransverseSaturation returns the ratio of the last transverse variance to
// the maximum observed one; values near 1 mean the transverse modes have
// saturated (bounded orbital deviation, paper Remark 5.2).
func (g *LTVGrowth) TransverseSaturation() float64 {
	if len(g.TransVar) == 0 {
		return 0
	}
	maxv := 0.0
	for _, v := range g.TransVar {
		if v > maxv {
			maxv = v
		}
	}
	if maxv == 0 {
		return 0
	}
	return g.TransVar[len(g.TransVar)-1] / maxv
}

func fitSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// ForwardAdjointGrowth perturbs v1(0) by eps and integrates the adjoint
// equation FORWARD over nPeriods periods, returning the factor by which the
// perturbation grows. For an orbitally stable cycle this grows like
// exp(−μ₂·t) (μ₂ < 0), demonstrating why Section 9 step 5 integrates
// backward instead.
func ForwardAdjointGrowth(sys dynsys.System, pss *shooting.PSS, v10 []float64, eps float64, nPeriods, stepsPerPeriod int) float64 {
	f := func(t float64, x, dst []float64) { sys.Eval(x, dst) }
	jac := func(t float64, x []float64, dst []float64) { sys.Jacobian(x, dst) }
	// Extended orbit over nPeriods periods.
	rec := &ode.Trajectory{}
	tEnd := float64(nPeriods) * pss.T
	if _, _, err := ode.Variational(f, jac, 0, tEnd, pss.X0, nPeriods*stepsPerPeriod, rec, nil); err != nil {
		return math.Inf(1) // orbit blew up before the demo even started
	}
	y0 := linalg.CloneVec(v10)
	y0[0] += eps
	yf := ode.AdjointForward(jac, rec, 0, tEnd, y0, nPeriods*stepsPerPeriod)
	// The unperturbed adjoint solution returns to v1(0) after whole periods.
	return linalg.Norm2(linalg.SubVec(yf, v10)) / eps
}
