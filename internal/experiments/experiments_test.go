package experiments

import (
	"math"
	"testing"
)

func TestFig2aSweepStructure(t *testing.T) {
	res, err := CharacteriseBandpass()
	if err != nil {
		t.Fatal(err)
	}
	pts := Fig2a(res, 50)
	if len(pts) != 201 {
		t.Fatalf("%d points", len(pts))
	}
	// Monotone frequency axis, finite dB values past DC.
	for i := 1; i < len(pts); i++ {
		if pts[i].F <= pts[i-1].F {
			t.Fatal("frequency axis not increasing")
		}
		if math.IsNaN(pts[i].DB) || math.IsInf(pts[i].DB, 1) {
			t.Fatalf("bad dB at %g", pts[i].F)
		}
		if math.Abs(pts[i].DB-10*math.Log10(pts[i].PSD)) > 1e-9 {
			t.Fatal("dB column inconsistent with PSD column")
		}
	}
}

func TestFig3SweepRange(t *testing.T) {
	res, err := CharacteriseBandpass()
	if err != nil {
		t.Fatal(err)
	}
	pts := Fig3(res, 10)
	if pts[0].Fm > 0.11 {
		t.Fatalf("sweep starts at %g", pts[0].Fm)
	}
	last := pts[len(pts)-1].Fm
	if last < 1000 || last > 3000 {
		t.Fatalf("sweep ends at %g", last)
	}
	// Eq. 28 column minus Eq. 27 column is monotone decreasing in fm
	// (their ratio closes as fm rises past the corner).
	for i := 1; i < len(pts); i++ {
		d1 := pts[i-1].InvSquare - pts[i-1].Lorentzian
		d2 := pts[i].InvSquare - pts[i].Lorentzian
		if d2 > d1+1e-9 {
			t.Fatalf("approximation gap not closing at fm=%g", pts[i].Fm)
		}
	}
}

func TestFig4bFiltersNominalRows(t *testing.T) {
	rows := []Fig4Row{
		{Rc: 500, Rb: 58, IEE: 331e-6, FOM: 3},
		{Rc: 2000, Rb: 58, IEE: 331e-6, FOM: 9},
		{Rc: 500, Rb: 1650, IEE: 331e-6, FOM: 9},
		{Rc: 500, Rb: 58, IEE: 450e-6, FOM: 2},
	}
	out := Fig4b(rows)
	if len(out) != 2 {
		t.Fatalf("filtered %d rows, want 2", len(out))
	}
	for _, r := range out {
		if r.Rc != 500 || r.Rb != 58 {
			t.Fatalf("wrong row kept: %+v", r)
		}
	}
}

func TestFig4aParamsMatchPaperTable(t *testing.T) {
	// The sweep definition itself must match the paper's six rows.
	if len(Fig4aParams) != 6 {
		t.Fatalf("%d parameter rows", len(Fig4aParams))
	}
	if Fig4aParams[0].Rc != 500 || Fig4aParams[0].Rb != 58 || Fig4aParams[0].IEE != 331e-6 {
		t.Fatalf("nominal row %+v", Fig4aParams[0])
	}
	if Fig4aParams[1].Rc != 2000 || Fig4aParams[2].Rb != 1650 {
		t.Fatal("Rc/rb sweep rows wrong")
	}
	if Fig4aParams[5].IEE != 715e-6 {
		t.Fatal("IEE sweep end wrong")
	}
}

func TestCharacteriseRingRowConsistency(t *testing.T) {
	row, err := CharacteriseRing(500, 58, 331e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(row.FOM-math.Pow(2*math.Pi*row.F0, 2)*row.C) > 1e-9*row.FOM {
		t.Fatal("FOM column inconsistent")
	}
	full, err := CharacteriseRingFull(500, 58, 331e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.C-row.C) > 1e-12*row.C {
		t.Fatal("full and row characterisations disagree")
	}
}
