// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 10) from this repository's substrates, as indexed in
// DESIGN.md §4. Each experiment returns structured data that the cmd/
// binaries print and the root benchmarks time; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/fourier"
	"repro/internal/osc"
	"repro/internal/sde"
	"repro/internal/shooting"
	"repro/internal/stochproc"
)

// CharacteriseBandpass runs the full pipeline on the paper's Figure-1
// oscillator (Q = 1, f0 = 6.66 kHz, external white-noise source).
func CharacteriseBandpass() (*core.Result, error) {
	b := osc.NewBandpassPaper()
	tGuess := 1 / 6660.0
	return core.Characterise(b, []float64{0.1, 0}, tGuess, nil)
}

// Fig2aPoint is one frequency sample of the computed PSD.
type Fig2aPoint struct {
	F   float64 // Hz
	PSD float64 // Sss(f), V²/Hz
	DB  float64 // 10·log10(PSD)
}

// Fig2a computes the oscillator-output PSD with 4 harmonics (paper
// Figure 2(a)): the sum-of-Lorentzians of Eq. (24) swept across the first
// four harmonics of 6.66 kHz.
func Fig2a(res *core.Result, pointsPerHarmonic int) []Fig2aPoint {
	sp := res.OutputSpectrum(0, 4)
	f0 := sp.F0
	var out []Fig2aPoint
	// Sweep 0..4.6·f0 with extra density near each harmonic.
	fmax := 4.6 * f0
	n := 4 * pointsPerHarmonic
	for k := 0; k <= n; k++ {
		f := fmax * float64(k) / float64(n)
		p := sp.SSB(f)
		out = append(out, Fig2aPoint{F: f, PSD: p, DB: 10 * math.Log10(p)})
	}
	return out
}

// Fig2bResult compares the Monte-Carlo "spectrum analyzer" measurement with
// the Lorentzian theory around the first harmonic.
type Fig2bResult struct {
	Freqs, PSD  []float64 // ensemble-averaged periodogram
	FitCenter   float64   // fitted line centre (Hz)
	FitHalfW    float64   // fitted half-width (Hz)
	TheoryHalfW float64   // π·f0²·c
	TheoryPeak  float64   // Sss(f0)
	FitPeak     float64
}

// Fig2b simulates the noisy bandpass oscillator (full nonlinear SDE),
// estimates its PSD by ensemble-averaged periodograms — the numerical
// equivalent of the paper's spectrum-analyzer measurement (Figure 2(b)) —
// and fits the first-harmonic line against the Lorentzian prediction.
func Fig2b(res *core.Result, paths int, seed int64) (*Fig2bResult, error) {
	b := osc.NewBandpassPaper()
	f0 := res.F0()
	T := res.T()
	// Long records resolve the ~10 Hz Lorentzian width: 0.5 s ⇒ 2 Hz bins.
	record := 0.8
	dtSim := T / 400 // SDE step
	stride := 8      // decimate to fs ≈ 33·f0
	nsteps := int(record / dtSim)
	sys := sde.System{
		Dim:      2,
		NumNoise: 1,
		Drift:    func(t float64, x, dst []float64) { b.Eval(x, dst) },
		Diff:     func(t float64, x []float64, dst []float64) { b.Noise(x, dst) },
	}
	cfg := sde.EnsembleConfig{Paths: paths, Steps: nsteps, Stride: stride, Seed: seed, Dt: dtSim}
	ens := sde.Ensemble(sys, res.PSS.X0, cfg)
	fs := 1 / (dtSim * float64(stride))
	signals := make([][]float64, len(ens))
	for i, p := range ens {
		sig := p.Component(0)
		// Power-of-two length for the FFT.
		n := 1
		for n*2 <= len(sig) {
			n *= 2
		}
		signals[i] = sig[:n]
	}
	freqs, psd := fourier.EnsemblePSD(signals, fs, fourier.Rectangular)
	fit, err := stochproc.FitLorentzian(freqs, psd, 0.7*f0, 1.3*f0)
	if err != nil {
		return nil, fmt.Errorf("experiments: Lorentzian fit: %w", err)
	}
	sp := res.OutputSpectrum(0, 4)
	return &Fig2bResult{
		Freqs:       freqs,
		PSD:         psd,
		FitCenter:   fit.Center,
		FitHalfW:    fit.HalfWidth,
		TheoryHalfW: sp.LorentzianHalfWidth(1),
		TheoryPeak:  sp.SSB(f0),
		FitPeak:     fit.Peak,
	}, nil
}

// Fig3Point is one offset-frequency sample of the single-sideband phase
// noise in both approximations.
type Fig3Point struct {
	Fm         float64 // offset from carrier, Hz
	Lorentzian float64 // Eq. (27), dBc/Hz
	InvSquare  float64 // Eq. (28), dBc/Hz
}

// Fig3 evaluates L(f_m) with both Eq. (27) and Eq. (28) from 0.1 Hz to
// 3 kHz (paper Figure 3); the corner frequency π·f0²·c separates the
// regimes where they agree and diverge.
func Fig3(res *core.Result, pointsPerDecade int) []Fig3Point {
	sp := res.OutputSpectrum(0, 4)
	var out []Fig3Point
	for _, decade := range []float64{0.1, 1, 10, 100, 1000} {
		for k := 0; k < pointsPerDecade; k++ {
			fm := decade * math.Pow(10, float64(k)/float64(pointsPerDecade))
			if fm > 3000 {
				break
			}
			out = append(out, Fig3Point{
				Fm:         fm,
				Lorentzian: sp.LdBcLorentzian(fm),
				InvSquare:  sp.LdBcInvSquare(fm),
			})
		}
	}
	return out
}

// Fig4Row is one row of the paper's Figure-4(a) table.
type Fig4Row struct {
	Rc, Rb, IEE float64 // design parameters (Ω, Ω, A)
	F0          float64 // oscillation frequency (Hz)
	C           float64 // phase-diffusion constant (s²·Hz)
	FOM         float64 // (2π·f0)²·c — Figure 4(b)'s ordinate
}

// Fig4aParams are the six (Rc, rb, IEE) configurations of Figure 4(a).
var Fig4aParams = []struct{ Rc, Rb, IEE float64 }{
	{500, 58, 331e-6},
	{2000, 58, 331e-6},
	{500, 1650, 331e-6},
	{500, 58, 450e-6},
	{500, 58, 600e-6},
	{500, 58, 715e-6},
}

// Fig4a characterises the three-stage ECL ring oscillator at the six
// configurations of the paper's table (Figure 4(a)).
func Fig4a() ([]Fig4Row, error) {
	rows := make([]Fig4Row, 0, len(Fig4aParams))
	for _, p := range Fig4aParams {
		row, err := CharacteriseRing(p.Rc, p.Rb, p.IEE)
		if err != nil {
			return nil, fmt.Errorf("experiments: ring (Rc=%g rb=%g IEE=%g): %w", p.Rc, p.Rb, p.IEE, err)
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// Fig4b extracts the (2πf0)²·c versus IEE series (paper Figure 4(b)) from
// the Figure-4(a) rows: the constant-Rc, constant-rb sweep over tail
// current.
func Fig4b(rows []Fig4Row) []Fig4Row {
	var out []Fig4Row
	for _, r := range rows {
		if r.Rc == 500 && r.Rb == 58 {
			out = append(out, r)
		}
	}
	return out
}

// CharacteriseRingFull runs the pipeline on one ECL-ring configuration and
// returns the full characterisation (per-source budget, sensitivities, …).
func CharacteriseRingFull(rc, rb, iee float64) (*core.Result, error) {
	r := osc.NewECLRingPaper()
	r.Rc, r.Rb, r.IEE = rc, rb, iee
	T, x0, err := shooting.EstimatePeriod(r, r.InitialState(), 300e-9)
	if err != nil {
		return nil, err
	}
	return core.Characterise(r, x0, T, &core.Options{
		Shooting: &shooting.Options{StepsPerPeriod: 4000},
	})
}

// CharacteriseRing runs the pipeline on one ECL-ring configuration and
// reduces it to a Figure-4(a) table row.
func CharacteriseRing(rc, rb, iee float64) (*Fig4Row, error) {
	res, err := CharacteriseRingFull(rc, rb, iee)
	if err != nil {
		return nil, err
	}
	f0 := res.F0()
	return &Fig4Row{
		Rc: rc, Rb: rb, IEE: iee,
		F0:  f0,
		C:   res.C,
		FOM: math.Pow(2*math.Pi*f0, 2) * res.C,
	}, nil
}

// JitterResult compares Monte-Carlo threshold-crossing jitter against the
// theory Var[t_k] = c·k·T (Section 8 / McNeill's measurement).
type JitterResult struct {
	Growth      *stochproc.JitterGrowth
	MeasuredC   float64 // slope of Var[t_k] vs mean t_k
	TheoryC     float64
	RelativeErr float64
}

// JitterExperiment Monte-Carloes the full nonlinear SDE of an oscillator,
// extracts rising-crossing times of the first state component through its
// cycle mean, and regresses the variance growth against the theoretical c.
func JitterExperiment(sys sde.System, res *core.Result, level float64, paths, periods int, seed int64) (*JitterResult, error) {
	T := res.T()
	dt := T / 600
	steps := periods * 600
	cfg := sde.EnsembleConfig{Paths: paths, Steps: steps, Stride: 1, Seed: seed, Dt: dt}
	ens := sde.Ensemble(sys, res.PSS.X0, cfg)
	signals := make([][]float64, len(ens))
	for i, p := range ens {
		signals[i] = p.Component(0)
	}
	jg, err := stochproc.EnsembleJitter(signals, 0, dt, level)
	if err != nil {
		return nil, err
	}
	slope := jg.Slope()
	rel := math.Abs(slope-res.C) / res.C
	return &JitterResult{Growth: jg, MeasuredC: slope, TheoryC: res.C, RelativeErr: rel}, nil
}
