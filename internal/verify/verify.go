// Package verify is a self-check harness for user-supplied oscillator
// models: before trusting a phase-noise characterisation, run Model() to
// catch the common implementation mistakes — inconsistent dimensions, a
// Jacobian that does not match the vector field, a noise map with
// non-finite entries, a system that does not actually oscillate, or a limit
// cycle that is not orbitally stable.
package verify

import (
	"fmt"
	"math"

	"repro/internal/dynsys"
	"repro/internal/floquet"
	"repro/internal/shooting"
)

// Severity grades an Issue.
type Severity int

const (
	// Warning marks suspicious but non-fatal findings.
	Warning Severity = iota
	// Fatal marks findings that make a characterisation meaningless.
	Fatal
)

// String renders the severity.
func (s Severity) String() string {
	if s == Fatal {
		return "FATAL"
	}
	return "warning"
}

// Issue is one finding of the model checker.
type Issue struct {
	Severity Severity
	Check    string
	Detail   string
}

func (i Issue) String() string {
	return fmt.Sprintf("[%s] %s: %s", i.Severity, i.Check, i.Detail)
}

// Options tunes the checker.
type Options struct {
	TMax        float64 // integration horizon for the oscillation check (default 50·tGuess)
	JacRelTol   float64 // Jacobian mismatch tolerance, relative to its scale (default 1e-4)
	SkipDynamic bool    // only run the static (pointwise) checks
}

// Model runs the checks on sys around the initial guess x0 / period guess
// tGuess, returning all findings (empty means the model looks sound).
func Model(sys dynsys.System, x0 []float64, tGuess float64, opts *Options) []Issue {
	o := Options{TMax: 50 * tGuess, JacRelTol: 1e-4}
	if opts != nil {
		if opts.TMax > 0 {
			o.TMax = opts.TMax
		}
		if opts.JacRelTol > 0 {
			o.JacRelTol = opts.JacRelTol
		}
		o.SkipDynamic = opts.SkipDynamic
	}
	var issues []Issue
	add := func(sev Severity, check, detail string, args ...any) {
		issues = append(issues, Issue{Severity: sev, Check: check, Detail: fmt.Sprintf(detail, args...)})
	}

	n := sys.Dim()
	if n <= 0 {
		add(Fatal, "dimensions", "Dim() = %d", n)
		return issues
	}
	if len(x0) != n {
		add(Fatal, "dimensions", "len(x0) = %d but Dim() = %d", len(x0), n)
		return issues
	}
	p := sys.NumNoise()
	if p <= 0 {
		add(Warning, "noise", "NumNoise() = %d: characterisation will return c = 0", p)
	}
	if labels := sys.NoiseLabels(); len(labels) != p {
		add(Warning, "noise", "NoiseLabels() has %d entries for %d sources", len(labels), p)
	}

	// Pointwise checks at x0 and a few perturbed points.
	points := [][]float64{x0}
	for s := 1; s <= 2; s++ {
		xp := append([]float64(nil), x0...)
		for i := range xp {
			xp[i] *= 1 + 0.1*float64(s)
			xp[i] += 1e-3 * float64(s)
		}
		points = append(points, xp)
	}
	fbuf := make([]float64, n)
	bbuf := make([]float64, n*max(p, 1))
	for pi, x := range points {
		sys.Eval(x, fbuf)
		for i, v := range fbuf {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				add(Fatal, "vector-field", "f[%d] non-finite at probe %d", i, pi)
			}
		}
		if p > 0 {
			sys.Noise(x, bbuf)
			for i, v := range bbuf[:n*p] {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					add(Fatal, "noise", "B[%d] non-finite at probe %d", i, pi)
				}
			}
		}
		// Jacobian vs finite differences.
		maxd := dynsys.CheckJacobian(sys, x)
		jac := make([]float64, n*n)
		sys.Jacobian(x, jac)
		scale := 0.0
		for _, v := range jac {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if maxd > o.JacRelTol*(1+scale) {
			add(Fatal, "jacobian", "analytic Jacobian deviates from finite differences by %.3e (scale %.3e) at probe %d", maxd, scale, pi)
		}
	}
	if hasFatal(issues) || o.SkipDynamic {
		return issues
	}

	// Dynamic checks: does it oscillate, and is the cycle stable?
	T, xc, err := shooting.EstimatePeriod(sys, x0, o.TMax)
	if err != nil {
		add(Fatal, "oscillation", "no sustained oscillation detected from the given start: %v", err)
		return issues
	}
	if math.Abs(T-tGuess) > 5*tGuess {
		add(Warning, "period", "estimated period %.3e is far from the guess %.3e", T, tGuess)
	}
	pss, err := shooting.Find(sys, xc, T, nil)
	if err != nil {
		add(Fatal, "steady-state", "shooting failed: %v", err)
		return issues
	}
	dec, err := floquet.Analyze(sys, pss, nil)
	if err != nil {
		add(Fatal, "floquet", "%v", err)
		return issues
	}
	if m := dec.StabilityMargin(); m < 1e-6 {
		add(Warning, "stability", "stability margin %.3e: the transverse dynamics are near-neutral; c may be ill-conditioned", m)
	}
	if dec.BiorthoDrift > 1e-3 {
		add(Warning, "adjoint", "v1 biorthogonality drift %.3e before renormalisation; consider more Floquet steps", dec.BiorthoDrift)
	}
	return issues
}

func hasFatal(issues []Issue) bool {
	for _, i := range issues {
		if i.Severity == Fatal {
			return true
		}
	}
	return false
}
