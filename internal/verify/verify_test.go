package verify

import (
	"math"
	"strings"
	"testing"

	"repro/internal/osc"
)

func TestCleanModelPasses(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	issues := Model(h, []float64{1, 0}, 1, nil)
	for _, i := range issues {
		t.Errorf("unexpected issue: %s", i)
	}
}

func TestDimensionMismatchFatal(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	issues := Model(h, []float64{1, 0, 0}, 1, nil)
	if len(issues) != 1 || issues[0].Severity != Fatal || issues[0].Check != "dimensions" {
		t.Fatalf("issues: %v", issues)
	}
}

// badJac wraps Hopf with a corrupted Jacobian.
type badJac struct{ osc.Hopf }

func (b *badJac) Jacobian(x []float64, dst []float64) {
	b.Hopf.Jacobian(x, dst)
	dst[0] += 100 // deliberate sign/derivation bug
}

func TestBrokenJacobianCaught(t *testing.T) {
	b := &badJac{osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}}
	issues := Model(b, []float64{1, 0}, 1, nil)
	found := false
	for _, i := range issues {
		if i.Check == "jacobian" && i.Severity == Fatal {
			found = true
		}
	}
	if !found {
		t.Fatalf("jacobian corruption not caught: %v", issues)
	}
}

// nanNoise wraps Hopf with a NaN in the noise map.
type nanNoise struct{ osc.Hopf }

func (b *nanNoise) Noise(x []float64, dst []float64) {
	b.Hopf.Noise(x, dst)
	dst[0] = math.NaN()
}

func TestNaNNoiseCaught(t *testing.T) {
	b := &nanNoise{osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}}
	issues := Model(b, []float64{1, 0}, 1, nil)
	found := false
	for _, i := range issues {
		if i.Check == "noise" && i.Severity == Fatal {
			found = true
		}
	}
	if !found {
		t.Fatalf("NaN noise not caught: %v", issues)
	}
}

// damped is a non-oscillating (globally stable) system.
type damped struct{}

func (d *damped) Dim() int { return 2 }
func (d *damped) Eval(x, dst []float64) {
	dst[0] = -x[0]
	dst[1] = -2 * x[1]
}
func (d *damped) Jacobian(x []float64, dst []float64) {
	dst[0], dst[1], dst[2], dst[3] = -1, 0, 0, -2
}
func (d *damped) NumNoise() int                    { return 1 }
func (d *damped) Noise(x []float64, dst []float64) { dst[0], dst[1] = 1, 0 }
func (d *damped) NoiseLabels() []string            { return []string{"s"} }

func TestNonOscillatorCaught(t *testing.T) {
	issues := Model(&damped{}, []float64{1, 1}, 1, nil)
	found := false
	for _, i := range issues {
		if i.Check == "oscillation" && i.Severity == Fatal {
			found = true
		}
	}
	if !found {
		t.Fatalf("non-oscillator not caught: %v", issues)
	}
}

func TestSkipDynamic(t *testing.T) {
	// With SkipDynamic the damped system passes the static checks only.
	issues := Model(&damped{}, []float64{1, 1}, 1, &Options{SkipDynamic: true})
	for _, i := range issues {
		if i.Severity == Fatal {
			t.Fatalf("static checks failed on a well-formed model: %v", i)
		}
	}
}

func TestNoiselessWarns(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	fd := struct{ *osc.Hopf }{h}
	_ = fd
	// Use FiniteDiffSystem with zero noise columns.
	issues := Model(&zeroNoise{h}, []float64{1, 0}, 1, &Options{SkipDynamic: true})
	found := false
	for _, i := range issues {
		if i.Check == "noise" && i.Severity == Warning {
			found = true
		}
	}
	if !found {
		t.Fatalf("zero-noise model did not warn: %v", issues)
	}
}

type zeroNoise struct{ *osc.Hopf }

func (z *zeroNoise) NumNoise() int                    { return 0 }
func (z *zeroNoise) Noise(x []float64, dst []float64) {}
func (z *zeroNoise) NoiseLabels() []string            { return nil }

func TestIssueString(t *testing.T) {
	i := Issue{Severity: Fatal, Check: "jacobian", Detail: "boom"}
	s := i.String()
	if !strings.Contains(s, "FATAL") || !strings.Contains(s, "jacobian") {
		t.Fatalf("render: %q", s)
	}
	if Warning.String() != "warning" {
		t.Fatal("severity render")
	}
}
