package ode

import (
	"fmt"
	"math"

	"repro/internal/budget"
	"repro/internal/linalg"
)

// TrapezoidalOptions configures the implicit trapezoidal integrator.
type TrapezoidalOptions struct {
	NewtonTol float64 // residual tolerance (default 1e-12 scaled)
	MaxNewton int     // Newton iterations per step (default 25)
	Record    bool    // store a dense Trajectory
	// FreshJacTol enables modified-Newton Jacobian freezing: the LU
	// factorisation of J_G = I − h/2·A is kept across Newton iterations and
	// across steps, and re-factored only when the observed residual
	// contraction per iteration is worse than this ratio (e.g. 0.25), when
	// the frozen factorisation turns singular, or when a damped update fails
	// under it. Zero (the default) factors a fresh Jacobian on every
	// iteration, exactly as before.
	FreshJacTol float64
	// Budget, when non-nil, is polled once per step; a tripped token aborts
	// the integration with a wrapped ErrCanceled/ErrBudgetExceeded.
	Budget *budget.Token
}

// Trapezoidal integrates ẋ = f with the A-stable implicit trapezoidal rule
// using nsteps fixed steps and a damped Newton corrector with the analytic
// Jacobian jac. Suitable for stiff oscillators (relaxation, switching).
// x0 is not modified.
func Trapezoidal(f Func, jac JacFunc, t0, t1 float64, x0 []float64, nsteps int, opts *TrapezoidalOptions) (*Result, error) {
	if nsteps <= 0 {
		panic("ode: Trapezoidal requires nsteps > 0")
	}
	o := TrapezoidalOptions{NewtonTol: 1e-12, MaxNewton: 25}
	if opts != nil {
		if opts.NewtonTol > 0 {
			o.NewtonTol = opts.NewtonTol
		}
		if opts.MaxNewton > 0 {
			o.MaxNewton = opts.MaxNewton
		}
		o.Record = opts.Record
		o.Budget = opts.Budget
		o.FreshJacTol = opts.FreshJacTol
	}
	n := len(x0)
	h := (t1 - t0) / float64(nsteps)
	x := make([]float64, n)
	copy(x, x0)
	fk := make([]float64, n)
	fn := make([]float64, n)
	xn := make([]float64, n)
	g := make([]float64, n)
	jm := linalg.NewMatrix(n, n)
	res := &Result{}
	if o.Record {
		res.Traj = &Trajectory{}
		f(t0, x, fk)
		res.Traj.Append(t0, x, fk)
	}
	m := odeMetrics.Get()
	newtonIters := 0
	jacFactors := 0
	flush := func() {
		m.trapSteps.Add(int64(res.Steps))
		m.trapNewton.Add(int64(newtonIters))
		m.trapJacFactor.Add(int64(jacFactors))
	}
	freeze := o.FreshJacTol > 0
	var flu *linalg.LU // frozen J_G factorisation; nil forces a fresh factor
	factor := func(t float64, xat []float64) *linalg.LU {
		// J_G = I - h/2 A(t, x)
		jac(t, xat, jm.Data)
		for i := range jm.Data {
			jm.Data[i] *= -0.5 * h
		}
		for i := 0; i < n; i++ {
			jm.Data[i*n+i] += 1
		}
		jacFactors++
		return linalg.NewLU(jm)
	}
	for s := 0; s < nsteps; s++ {
		t := t0 + float64(s)*h
		tn := t + h
		if err := o.Budget.Err(); err != nil {
			flush()
			return nil, fmt.Errorf("ode: trapezoidal at t=%g (step %d/%d): %w", t, s+1, nsteps, err)
		}
		f(t, x, fk)
		// Predictor: explicit Euler.
		for i := 0; i < n; i++ {
			xn[i] = x[i] + h*fk[i]
		}
		converged := false
		for it := 0; it < o.MaxNewton; it++ {
			newtonIters++
			f(tn, xn, fn)
			// G(xn) = xn - x - h/2 (fk + fn)
			gnorm := 0.0
			for i := 0; i < n; i++ {
				g[i] = xn[i] - x[i] - 0.5*h*(fk[i]+fn[i])
				if a := math.Abs(g[i]); a > gnorm {
					gnorm = a
				}
			}
			scale := 1.0 + linalg.NormInfVec(xn)
			if gnorm <= o.NewtonTol*scale {
				converged = true
				break
			}
			fresh := false
			if flu == nil {
				flu = factor(tn, xn)
				fresh = true
			}
			dx, err := flu.Solve(g)
			if err != nil && !fresh {
				// The frozen factorisation went singular; retry fresh.
				flu = factor(tn, xn)
				fresh = true
				dx, err = flu.Solve(g)
			}
			if err != nil {
				flush()
				return nil, fmt.Errorf("ode: trapezoidal Newton solve at t=%g: %w", tn, err)
			}
			// Damped update: halve until the residual does not explode.
			lambda := 1.0
			applied := false
			newNorm := gnorm
			for try := 0; try < 8; try++ {
				cand := make([]float64, n)
				for i := 0; i < n; i++ {
					cand[i] = xn[i] - lambda*dx[i]
				}
				f(tn, cand, fn)
				cnorm := 0.0
				for i := 0; i < n; i++ {
					gi := cand[i] - x[i] - 0.5*h*(fk[i]+fn[i])
					if a := math.Abs(gi); a > cnorm {
						cnorm = a
					}
				}
				if cnorm <= gnorm || cnorm <= o.NewtonTol*scale {
					copy(xn, cand)
					applied = true
					newNorm = cnorm
					break
				}
				lambda *= 0.5
			}
			if !applied {
				if !fresh {
					// A stale Jacobian is the likely culprit: spend the next
					// iteration re-solving this state with a fresh one.
					flu = nil
					continue
				}
				flush()
				return nil, fmt.Errorf("%w at t=%g (residual %g)", ErrNewtonDiverged, tn, gnorm)
			}
			if !freeze {
				flu = nil
			} else if gnorm > 0 && newNorm > o.FreshJacTol*gnorm {
				// Slow contraction: the frozen Jacobian has drifted too far.
				flu = nil
			}
		}
		if !converged {
			// Accept only if the final residual is reasonable.
			f(tn, xn, fn)
			gnorm := 0.0
			for i := 0; i < n; i++ {
				gi := xn[i] - x[i] - 0.5*h*(fk[i]+fn[i])
				if a := math.Abs(gi); a > gnorm {
					gnorm = a
				}
			}
			if gnorm > 1e-6*(1+linalg.NormInfVec(xn)) {
				flush()
				return nil, fmt.Errorf("%w at t=%g after %d iterations", ErrNewtonDiverged, tn, o.MaxNewton)
			}
		}
		if !finite(xn) {
			m.nonFinite.Inc()
			flush()
			return nil, fmt.Errorf("%w in trapezoidal step at t=%g (step %d/%d)", ErrNonFinite, tn, s+1, nsteps)
		}
		copy(x, xn)
		res.Steps++
		if o.Record {
			f(tn, x, fn)
			res.Traj.Append(tn, x, fn)
		}
	}
	flush()
	res.X = x
	return res, nil
}

// Variational integrates the joint system ẋ = f(t,x), Ẏ = A(t,x)Y with
// Y(t0) = I using fixed-step RK4, returning the final state and the
// state-transition matrix Φ(t1, t0). When rec is non-nil the state part of
// the solution is appended to it as a dense trajectory. The integration is
// cut off with a wrapped budget error when tok trips (nil tok never trips)
// and with ErrNonFinite as soon as the joint state turns NaN/Inf.
func Variational(f Func, jac JacFunc, t0, t1 float64, x0 []float64, nsteps int, rec *Trajectory, tok *budget.Token) ([]float64, *linalg.Matrix, error) {
	n := len(x0)
	aug := make([]float64, n+n*n)
	copy(aug, x0)
	for i := 0; i < n; i++ {
		aug[n+i*n+i] = 1 // Y(t0) = I
	}
	jm := make([]float64, n*n)
	rhs := func(t float64, z, dst []float64) {
		x := z[:n]
		f(t, x, dst[:n])
		jac(t, x, jm)
		// dY = A Y, Y stored row-major in z[n:].
		y := z[n:]
		dy := dst[n:]
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += jm[i*n+k] * y[k*n+j]
				}
				dy[i*n+j] = s
			}
		}
	}
	var dz []float64
	if rec != nil {
		dz = make([]float64, n+n*n)
		rhs(t0, aug, dz)
		rec.Append(t0, aug[:n], dz[:n])
	}
	h := (t1 - t0) / float64(nsteps)
	k1 := make([]float64, len(aug))
	k2 := make([]float64, len(aug))
	k3 := make([]float64, len(aug))
	k4 := make([]float64, len(aug))
	tmp := make([]float64, len(aug))
	m := odeMetrics.Get()
	for s := 0; s < nsteps; s++ {
		t := t0 + float64(s)*h
		if err := tok.Err(); err != nil {
			m.varSteps.Add(int64(s))
			return nil, nil, fmt.Errorf("ode: variational integration at t=%g (step %d/%d): %w", t, s+1, nsteps, err)
		}
		rk4Step(rhs, t, aug, h, aug, k1, k2, k3, k4, tmp)
		if !finite(aug) {
			m.varSteps.Add(int64(s + 1))
			m.nonFinite.Inc()
			return nil, nil, fmt.Errorf("%w in variational integration at t=%g (step %d/%d)", ErrNonFinite, t, s+1, nsteps)
		}
		if rec != nil {
			rhs(t+h, aug, dz)
			rec.Append(t+h, aug[:n], dz[:n])
		}
	}
	m.varSteps.Add(int64(nsteps))
	phi := linalg.NewMatrixFrom(n, n, aug[n:])
	xf := make([]float64, n)
	copy(xf, aug[:n])
	return xf, phi, nil
}

// AdjointBackward integrates the adjoint system ẏ = −Aᵀ(t)y backwards in
// time from t1 (with y(t1) = yT) to t0, where A(t) is the Jacobian of f
// evaluated along a stored state trajectory xs. It returns the adjoint
// solution as a Trajectory sampled on the same uniform grid (nsteps steps).
// Integrating the adjoint backwards is numerically stable because the
// unstable forward modes become decaying ones (paper, Section 9, step 5).
// The integration is cut off with a wrapped budget error when tok trips (nil
// tok never trips) and with ErrNonFinite if the adjoint state turns NaN/Inf.
//
// The second return value is the number of steps actually completed — equal
// to nsteps on success, smaller on an early exit — so callers can report real
// work done (floquet.Trace.Steps) rather than the configured step count.
func AdjointBackward(jac JacFunc, xs *Trajectory, t0, t1 float64, yT []float64, nsteps int, tok *budget.Token) (*Trajectory, int, error) {
	n := len(yT)
	jm := make([]float64, n*n)
	xbuf := make([]float64, n)
	rhs := func(t float64, y, dst []float64) {
		xs.At(t, xbuf)
		jac(t, xbuf, jm)
		// dst = −Aᵀ y
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += jm[k*n+i] * y[k]
			}
			dst[i] = -s
		}
	}
	h := (t1 - t0) / float64(nsteps)
	y := make([]float64, n)
	copy(y, yT)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	dy := make([]float64, n)
	// Collect samples in reverse, then emit a forward-ordered trajectory.
	ts := make([]float64, nsteps+1)
	ys := make([][]float64, nsteps+1)
	dys := make([][]float64, nsteps+1)
	store := func(idx int, t float64) {
		rhs(t, y, dy)
		ts[idx] = t
		ys[idx] = append([]float64(nil), y...)
		dys[idx] = append([]float64(nil), dy...)
	}
	store(nsteps, t1)
	m := odeMetrics.Get()
	for s := 0; s < nsteps; s++ {
		t := t1 - float64(s)*h
		if err := tok.Err(); err != nil {
			m.adjSteps.Add(int64(s))
			return nil, s, fmt.Errorf("ode: backward adjoint at t=%g (step %d/%d): %w", t, s+1, nsteps, err)
		}
		rk4Step(rhs, t, y, -h, y, k1, k2, k3, k4, tmp)
		if !finite(y) {
			m.adjSteps.Add(int64(s + 1))
			m.nonFinite.Inc()
			return nil, s + 1, fmt.Errorf("%w in backward adjoint at t=%g (step %d/%d)", ErrNonFinite, t, s+1, nsteps)
		}
		store(nsteps-1-s, t-h)
	}
	m.adjSteps.Add(int64(nsteps))
	out := &Trajectory{}
	for i := 0; i <= nsteps; i++ {
		out.Append(ts[i], ys[i], dys[i])
	}
	return out, nsteps, nil
}

// AdjointForward integrates ẏ = −Aᵀ(t)y forwards from t0 to t1 along the
// stored trajectory xs. This direction is numerically UNSTABLE for stable
// limit cycles (the contracting Floquet modes of the original system become
// expanding modes of the adjoint); it is provided for the Section-9
// instability demonstration and for testing. Because blow-up is the expected
// outcome being demonstrated, this loop deliberately has no non-finite guard.
func AdjointForward(jac JacFunc, xs *Trajectory, t0, t1 float64, y0 []float64, nsteps int) []float64 {
	n := len(y0)
	jm := make([]float64, n*n)
	xbuf := make([]float64, n)
	rhs := func(t float64, y, dst []float64) {
		xs.At(t, xbuf)
		jac(t, xbuf, jm)
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += jm[k*n+i] * y[k]
			}
			dst[i] = -s
		}
	}
	y := make([]float64, n)
	copy(y, y0)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	h := (t1 - t0) / float64(nsteps)
	for s := 0; s < nsteps; s++ {
		rk4Step(rhs, t0+float64(s)*h, y, h, y, k1, k2, k3, k4, tmp)
	}
	return y
}

// FiniteDiffJacobian returns a JacFunc that approximates ∂f/∂x by central
// differences; useful for validating analytic Jacobians and as a fallback
// for systems that do not provide one.
func FiniteDiffJacobian(f Func, n int) JacFunc {
	return func(t float64, x []float64, dst []float64) {
		xp := make([]float64, n)
		fp := make([]float64, n)
		fm := make([]float64, n)
		for j := 0; j < n; j++ {
			h := 1e-7 * (1 + math.Abs(x[j]))
			copy(xp, x)
			xp[j] = x[j] + h
			f(t, xp, fp)
			xp[j] = x[j] - h
			f(t, xp, fm)
			inv := 1 / (2 * h)
			for i := 0; i < n; i++ {
				dst[i*n+j] = (fp[i] - fm[i]) * inv
			}
		}
	}
}
