package ode

import "repro/internal/obs"

// odeInstruments are the integrator-level metrics. Counts are accumulated in
// plain locals inside the stepping loops and flushed to the atomic counters
// once per call (including the early-exit paths), so the per-step hot path
// carries no observability cost at all and the no-op path (no global
// registry) is allocation-free.
type odeInstruments struct {
	rk4Steps       *obs.Counter // pn_ode_steps_total{method="rk4"}
	dopri5Steps    *obs.Counter // pn_ode_steps_total{method="dopri5"}
	trapSteps      *obs.Counter // pn_ode_steps_total{method="trapezoidal"}
	varSteps       *obs.Counter // pn_ode_steps_total{method="variational"}
	adjSteps       *obs.Counter // pn_ode_steps_total{method="adjoint"}
	dopri5Rejected *obs.Counter // pn_ode_steps_rejected_total
	trapNewton     *obs.Counter // pn_ode_newton_iters_total
	trapJacFactor  *obs.Counter // pn_ode_trap_jac_factorisations_total
	nonFinite      *obs.Counter // pn_ode_nonfinite_total
	batchLaneSteps *obs.Counter // pn_ode_batch_lane_steps_total
}

var odeMetrics = obs.NewView(func(r *obs.Registry) *odeInstruments {
	steps := r.CounterVec("pn_ode_steps_total", "Integrator steps completed, by method.", "method")
	return &odeInstruments{
		rk4Steps:       steps.With("rk4"),
		dopri5Steps:    steps.With("dopri5"),
		trapSteps:      steps.With("trapezoidal"),
		varSteps:       steps.With("variational"),
		adjSteps:       steps.With("adjoint"),
		dopri5Rejected: r.Counter("pn_ode_steps_rejected_total", "DOPRI5 trial steps rejected by the error controller."),
		trapNewton:     r.Counter("pn_ode_newton_iters_total", "Implicit trapezoidal Newton corrector iterations."),
		trapJacFactor:  r.Counter("pn_ode_trap_jac_factorisations_total", "Jacobian LU factorisations in the trapezoidal Newton corrector (modified Newton re-uses a frozen factorisation, so this stays well below the iteration count)."),
		nonFinite:      r.Counter("pn_ode_nonfinite_total", "Integrations aborted on a non-finite state or step size."),
		batchLaneSteps: r.Counter("pn_ode_batch_lane_steps_total", "Per-lane steps completed by the batched (SoA lockstep) integrators. A K-lane batch step counts K."),
	}
})
