// Package ode provides the deterministic initial-value-problem integrators
// used by the phase-noise pipeline: a fixed-step classical RK4, an adaptive
// Dormand–Prince 5(4) pair with PI step-size control and dense output, and an
// A-stable implicit trapezoidal method with a damped Newton corrector for
// stiff circuit equations. It also integrates the joint state + variational
// (state-transition-matrix) system needed for monodromy computation.
package ode

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/budget"
)

// Func is the right-hand side of an autonomous-friendly ODE ẋ = f(t, x).
// The result is written into dst (len == len(x)).
type Func func(t float64, x, dst []float64)

// JacFunc evaluates the Jacobian ∂f/∂x at (t, x) into dst (n×n row-major).
type JacFunc func(t float64, x []float64, dst []float64)

// ErrStepSizeUnderflow is returned when the adaptive controller cannot meet
// the tolerance without the step size collapsing below the resolvable limit.
var ErrStepSizeUnderflow = errors.New("ode: step size underflow")

// ErrNewtonDiverged is returned when the implicit corrector fails.
var ErrNewtonDiverged = errors.New("ode: Newton iteration diverged")

// ErrNonFinite is returned when an integrator state turns NaN or ±Inf. The
// fixed-step integrators check after every step, so a model that leaves its
// validity range is caught within one step instead of marching garbage to the
// end of the interval.
var ErrNonFinite = errors.New("ode: non-finite state")

// finite reports whether every entry of x is a finite float64.
// (x-x != 0 catches both NaN and ±Inf with a single arithmetic op.)
func finite(x []float64) bool {
	for _, v := range x {
		if v-v != 0 {
			return false
		}
	}
	return true
}

// Stepper carries the scratch buffers of repeated single RK4 steps, so a
// caller-driven stepping loop allocates once instead of five slices per step.
// A Stepper is sized for one state dimension and is not safe for concurrent
// use; give each goroutine its own.
type Stepper struct {
	k1, k2, k3, k4, tmp []float64
}

// NewStepper returns a Stepper for n-dimensional states.
func NewStepper(n int) *Stepper {
	return &Stepper{
		k1:  make([]float64, n),
		k2:  make([]float64, n),
		k3:  make([]float64, n),
		k4:  make([]float64, n),
		tmp: make([]float64, n),
	}
}

// Step advances x by one classical Runge–Kutta 4 step of size h, writing the
// result into xout (may alias x). It performs no allocations (guarded by
// TestStepperZeroAllocs). len(x) must match the dimension the Stepper was
// built for.
func (s *Stepper) Step(f Func, t float64, x []float64, h float64, xout []float64) {
	rk4Step(f, t, x, h, xout, s.k1, s.k2, s.k3, s.k4, s.tmp)
}

// RK4Step advances x by one classical Runge–Kutta 4 step of size h,
// writing the result into xout (may alias x). Scratch slices are allocated
// internally; stepping loops should hold a Stepper (or use RK4) so the per
// step cost is pure arithmetic.
func RK4Step(f Func, t float64, x []float64, h float64, xout []float64) {
	NewStepper(len(x)).Step(f, t, x, h, xout)
}

func rk4Step(f Func, t float64, x []float64, h float64, xout, k1, k2, k3, k4, tmp []float64) {
	n := len(x)
	f(t, x, k1)
	for i := 0; i < n; i++ {
		tmp[i] = x[i] + 0.5*h*k1[i]
	}
	f(t+0.5*h, tmp, k2)
	for i := 0; i < n; i++ {
		tmp[i] = x[i] + 0.5*h*k2[i]
	}
	f(t+0.5*h, tmp, k3)
	for i := 0; i < n; i++ {
		tmp[i] = x[i] + h*k3[i]
	}
	f(t+h, tmp, k4)
	for i := 0; i < n; i++ {
		xout[i] = x[i] + h/6*(k1[i]+2*k2[i]+2*k3[i]+k4[i])
	}
}

// RK4 integrates ẋ = f from t0 to t1 with nsteps fixed steps, returning the
// final state. x0 is not modified. The integration is cut off with a wrapped
// budget error when tok trips (nil tok never trips) and with ErrNonFinite as
// soon as the state turns NaN/Inf. Both failure exits use the same
// convention: the reported step is the 1-indexed step that did not complete,
// and the reported t is the time of the last valid state (the start of that
// step).
func RK4(f Func, t0, t1 float64, x0 []float64, nsteps int, tok *budget.Token) ([]float64, error) {
	if nsteps <= 0 {
		panic("ode: RK4 requires nsteps > 0")
	}
	n := len(x0)
	x := make([]float64, n)
	copy(x, x0)
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)
	h := (t1 - t0) / float64(nsteps)
	m := odeMetrics.Get()
	for s := 0; s < nsteps; s++ {
		t := t0 + float64(s)*h
		if err := tok.Err(); err != nil {
			m.rk4Steps.Add(int64(s))
			return nil, fmt.Errorf("ode: RK4 at t=%g (step %d/%d): %w", t, s+1, nsteps, err)
		}
		rk4Step(f, t, x, h, x, k1, k2, k3, k4, tmp)
		if !finite(x) {
			m.rk4Steps.Add(int64(s + 1))
			m.nonFinite.Inc()
			return nil, fmt.Errorf("%w in RK4 at t=%g (step %d/%d)", ErrNonFinite, t, s+1, nsteps)
		}
	}
	m.rk4Steps.Add(int64(nsteps))
	return x, nil
}

// SamplePoint is one stored knot of a trajectory: state and derivative at t,
// enabling cubic Hermite interpolation between knots.
type SamplePoint struct {
	T  float64
	X  []float64
	DX []float64
}

// Trajectory is a time-ordered sequence of sample points supporting C¹
// cubic-Hermite interpolation. Knots must be strictly increasing in T.
type Trajectory struct {
	Points []SamplePoint
}

// Append adds a knot (copies x and dx).
func (tr *Trajectory) Append(t float64, x, dx []float64) {
	if k := len(tr.Points); k > 0 && t <= tr.Points[k-1].T {
		panic(fmt.Sprintf("ode: non-increasing trajectory knot %g after %g", t, tr.Points[k-1].T))
	}
	xc := make([]float64, len(x))
	copy(xc, x)
	dc := make([]float64, len(dx))
	copy(dc, dx)
	tr.Points = append(tr.Points, SamplePoint{T: t, X: xc, DX: dc})
}

// Span returns the time interval covered by the trajectory.
func (tr *Trajectory) Span() (t0, t1 float64) {
	if len(tr.Points) == 0 {
		return 0, 0
	}
	return tr.Points[0].T, tr.Points[len(tr.Points)-1].T
}

// At evaluates the trajectory at time t by cubic Hermite interpolation,
// writing into dst. t is clamped to the covered span.
func (tr *Trajectory) At(t float64, dst []float64) {
	pts := tr.Points
	if len(pts) == 0 {
		panic("ode: empty trajectory")
	}
	if t <= pts[0].T {
		copy(dst, pts[0].X)
		return
	}
	if t >= pts[len(pts)-1].T {
		copy(dst, pts[len(pts)-1].X)
		return
	}
	// Binary search for the bracketing segment.
	lo, hi := 0, len(pts)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if pts[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := pts[lo], pts[hi]
	h := b.T - a.T
	s := (t - a.T) / h
	// Hermite basis.
	s2 := s * s
	s3 := s2 * s
	h00 := 2*s3 - 3*s2 + 1
	h10 := s3 - 2*s2 + s
	h01 := -2*s3 + 3*s2
	h11 := s3 - s2
	for i := range dst {
		dst[i] = h00*a.X[i] + h10*h*a.DX[i] + h01*b.X[i] + h11*h*b.DX[i]
	}
}

// Deriv evaluates the time derivative of the interpolant at t into dst.
func (tr *Trajectory) Deriv(t float64, dst []float64) {
	pts := tr.Points
	if len(pts) == 0 {
		panic("ode: empty trajectory")
	}
	if t <= pts[0].T {
		copy(dst, pts[0].DX)
		return
	}
	if t >= pts[len(pts)-1].T {
		copy(dst, pts[len(pts)-1].DX)
		return
	}
	lo, hi := 0, len(pts)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if pts[mid].T <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := pts[lo], pts[hi]
	h := b.T - a.T
	s := (t - a.T) / h
	s2 := s * s
	dh00 := (6*s2 - 6*s) / h
	dh10 := 3*s2 - 4*s + 1
	dh01 := (-6*s2 + 6*s) / h
	dh11 := 3*s2 - 2*s
	for i := range dst {
		dst[i] = dh00*a.X[i] + dh10*a.DX[i] + dh01*b.X[i] + dh11*b.DX[i]
	}
}

// Options configures the adaptive integrators.
type Options struct {
	RTol     float64 // relative tolerance (default 1e-9)
	ATol     float64 // absolute tolerance (default 1e-12)
	InitStep float64 // initial step (default: estimated)
	MaxStep  float64 // maximum step (default: interval length)
	MaxSteps int     // step budget (default 10_000_000)
	Record   bool    // store the solution as a dense Trajectory
	// Budget, when non-nil, is polled once per trial step; a tripped token
	// aborts the integration with a wrapped ErrCanceled/ErrBudgetExceeded.
	Budget *budget.Token
}

func (o *Options) defaults(t0, t1 float64) Options {
	out := Options{RTol: 1e-9, ATol: 1e-12, MaxSteps: 10_000_000}
	if o != nil {
		if o.RTol > 0 {
			out.RTol = o.RTol
		}
		if o.ATol > 0 {
			out.ATol = o.ATol
		}
		out.InitStep = o.InitStep
		out.MaxStep = o.MaxStep
		if o.MaxSteps > 0 {
			out.MaxSteps = o.MaxSteps
		}
		out.Record = o.Record
		out.Budget = o.Budget
	}
	if out.MaxStep <= 0 {
		out.MaxStep = math.Abs(t1 - t0)
	}
	return out
}

// Result reports an adaptive integration outcome.
type Result struct {
	X        []float64   // final state
	Steps    int         // accepted steps
	Rejected int         // rejected trial steps
	Traj     *Trajectory // dense output if Options.Record
}

// Dormand–Prince 5(4) coefficients.
var (
	dpC = [7]float64{0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1}
	dpA = [7][6]float64{
		{},
		{1.0 / 5},
		{3.0 / 40, 9.0 / 40},
		{44.0 / 45, -56.0 / 15, 32.0 / 9},
		{19372.0 / 6561, -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729},
		{9017.0 / 3168, -355.0 / 33, 46732.0 / 5247, 49.0 / 176, -5103.0 / 18656},
		{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84},
	}
	dpB = [7]float64{35.0 / 384, 0, 500.0 / 1113, 125.0 / 192, -2187.0 / 6784, 11.0 / 84, 0}
	dpE = [7]float64{ // b - b̂ (error estimator)
		71.0 / 57600, 0, -71.0 / 16695, 71.0 / 1920, -17253.0 / 339200, 22.0 / 525, -1.0 / 40,
	}
)

// DOPRI5 integrates ẋ = f from t0 to t1 (t1 > t0) with the Dormand–Prince
// 5(4) adaptive pair. x0 is not modified.
func DOPRI5(f Func, t0, t1 float64, x0 []float64, opts *Options) (*Result, error) {
	res, err := dopri5(f, t0, t1, x0, opts)
	m := odeMetrics.Get()
	m.dopri5Steps.Add(int64(res.Steps))
	m.dopri5Rejected.Add(int64(res.Rejected))
	if err != nil {
		if errors.Is(err, ErrNonFinite) {
			m.nonFinite.Inc()
		}
		return nil, err
	}
	return res, nil
}

// dopri5 is the DOPRI5 body; it always returns a non-nil Result so the
// wrapper can account partial work (accepted/rejected steps) on failure too.
func dopri5(f Func, t0, t1 float64, x0 []float64, opts *Options) (*Result, error) {
	if t1 <= t0 {
		return &Result{}, fmt.Errorf("ode: DOPRI5 requires t1 > t0 (got %g..%g)", t0, t1)
	}
	o := opts.defaults(t0, t1)
	n := len(x0)
	x := make([]float64, n)
	copy(x, x0)
	k := make([][]float64, 7)
	for i := range k {
		k[i] = make([]float64, n)
	}
	tmp := make([]float64, n)
	xnew := make([]float64, n)
	res := &Result{}
	if o.Record {
		res.Traj = &Trajectory{}
		f(t0, x, k[0])
		res.Traj.Append(t0, x, k[0])
	}

	t := t0
	h := o.InitStep
	if h <= 0 {
		h = initialStep(f, t0, x, o)
	}
	if h > o.MaxStep {
		h = o.MaxStep
	}
	const (
		minScale = 0.2
		maxScale = 5.0
		safety   = 0.9
	)
	prevErr := 1.0
	firstStage := true
	for t < t1 {
		if err := o.Budget.Err(); err != nil {
			return res, fmt.Errorf("ode: DOPRI5 at t=%g after %d steps: %w", t, res.Steps, err)
		}
		if res.Steps+res.Rejected > o.MaxSteps {
			return res, fmt.Errorf("ode: exceeded %d steps at t=%g", o.MaxSteps, t)
		}
		if h < 1e-14*(math.Abs(t)+1) {
			return res, fmt.Errorf("%w at t=%g (h=%g)", ErrStepSizeUnderflow, t, h)
		}
		// A NaN step size (vector field non-finite at the very first state,
		// poisoning the initial-step estimate) fails every comparison above
		// and would otherwise grind through MaxSteps rejected steps.
		if h-h != 0 {
			return res, fmt.Errorf("%w: DOPRI5 step size %g at t=%g (vector field non-finite?)", ErrNonFinite, h, t)
		}
		if t+h > t1 {
			h = t1 - t
		}
		// FSAL: k[0] holds f(t, x) from the previous accepted step.
		if firstStage {
			f(t, x, k[0])
			firstStage = false
		}
		for s := 1; s < 7; s++ {
			for i := 0; i < n; i++ {
				acc := x[i]
				for j := 0; j < s; j++ {
					if dpA[s][j] != 0 {
						acc += h * dpA[s][j] * k[j][i]
					}
				}
				tmp[i] = acc
			}
			f(t+dpC[s]*h, tmp, k[s])
		}
		// 5th-order solution and embedded error estimate.
		errNorm := 0.0
		for i := 0; i < n; i++ {
			acc := x[i]
			e := 0.0
			for s := 0; s < 7; s++ {
				if dpB[s] != 0 {
					acc += h * dpB[s] * k[s][i]
				}
				if dpE[s] != 0 {
					e += h * dpE[s] * k[s][i]
				}
			}
			xnew[i] = acc
			sc := o.ATol + o.RTol*math.Max(math.Abs(x[i]), math.Abs(acc))
			r := e / sc
			errNorm += r * r
		}
		errNorm = math.Sqrt(errNorm / float64(n))
		if math.IsNaN(errNorm) || math.IsInf(errNorm, 0) {
			errNorm = 10 // force rejection and shrink
		}
		if errNorm <= 1 {
			// Accept. k[6] = f(t+h, xnew) is the FSAL stage.
			t += h
			copy(x, xnew)
			copy(k[0], k[6])
			res.Steps++
			if o.Record {
				res.Traj.Append(t, x, k[0])
			}
			// PI controller (Gustafsson).
			scale := safety * math.Pow(errNorm, -0.7/5) * math.Pow(prevErr, 0.4/5)
			if scale < minScale {
				scale = minScale
			}
			if scale > maxScale {
				scale = maxScale
			}
			prevErr = math.Max(errNorm, 1e-4)
			h *= scale
			if h > o.MaxStep {
				h = o.MaxStep
			}
		} else {
			res.Rejected++
			scale := safety * math.Pow(errNorm, -1.0/5)
			if scale < minScale {
				scale = minScale
			}
			h *= scale
			firstStage = true // k[0] no longer matches a fresh (t, x)... recompute
		}
	}
	res.X = x
	return res, nil
}

// initialStep estimates a safe initial step (Hairer–Nørsett–Wanner, alg. II.4).
func initialStep(f Func, t0 float64, x0 []float64, o Options) float64 {
	n := len(x0)
	f0 := make([]float64, n)
	f(t0, x0, f0)
	d0, d1 := 0.0, 0.0
	for i := 0; i < n; i++ {
		sc := o.ATol + o.RTol*math.Abs(x0[i])
		d0 += (x0[i] / sc) * (x0[i] / sc)
		d1 += (f0[i] / sc) * (f0[i] / sc)
	}
	d0 = math.Sqrt(d0 / float64(n))
	d1 = math.Sqrt(d1 / float64(n))
	var h0 float64
	if d0 < 1e-5 || d1 < 1e-5 {
		h0 = 1e-6
	} else {
		h0 = 0.01 * d0 / d1
	}
	// One explicit Euler step to estimate the second derivative.
	x1 := make([]float64, n)
	for i := range x1 {
		x1[i] = x0[i] + h0*f0[i]
	}
	f1 := make([]float64, n)
	f(t0+h0, x1, f1)
	d2 := 0.0
	for i := 0; i < n; i++ {
		sc := o.ATol + o.RTol*math.Abs(x0[i])
		df := (f1[i] - f0[i]) / sc
		d2 += df * df
	}
	d2 = math.Sqrt(d2/float64(n)) / h0
	dm := math.Max(d1, d2)
	var h1 float64
	if dm <= 1e-15 {
		h1 = math.Max(1e-6, h0*1e-3)
	} else {
		h1 = math.Pow(0.01/dm, 1.0/5)
	}
	return math.Min(100*h0, h1)
}
