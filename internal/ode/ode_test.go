package ode

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/budget"
	"repro/internal/linalg"
)

// Exponential decay: ẋ = −x, x(0)=1 → x(t) = e^{-t}.
func decay(t float64, x, dst []float64) { dst[0] = -x[0] }

// rk4 / vari / adjBack run the budget-aware integrators with a nil token,
// panicking on error — for well-posed test problems where failure is a bug.
func rk4(f Func, t0, t1 float64, x0 []float64, nsteps int) []float64 {
	x, err := RK4(f, t0, t1, x0, nsteps, nil)
	if err != nil {
		panic(err)
	}
	return x
}

func vari(f Func, jac JacFunc, t0, t1 float64, x0 []float64, nsteps int, rec *Trajectory) ([]float64, *linalg.Matrix) {
	xf, phi, err := Variational(f, jac, t0, t1, x0, nsteps, rec, nil)
	if err != nil {
		panic(err)
	}
	return xf, phi
}

func adjBack(jac JacFunc, xs *Trajectory, t0, t1 float64, yT []float64, nsteps int) *Trajectory {
	tr, _, err := AdjointBackward(jac, xs, t0, t1, yT, nsteps, nil)
	if err != nil {
		panic(err)
	}
	return tr
}

// Harmonic oscillator: ẋ = y, ẏ = −ω²x.
func harmonic(omega float64) Func {
	return func(t float64, x, dst []float64) {
		dst[0] = x[1]
		dst[1] = -omega * omega * x[0]
	}
}

func harmonicJac(omega float64) JacFunc {
	return func(t float64, x []float64, dst []float64) {
		dst[0], dst[1] = 0, 1
		dst[2], dst[3] = -omega*omega, 0
	}
}

func TestRK4Decay(t *testing.T) {
	x := rk4(decay, 0, 1, []float64{1}, 100)
	want := math.Exp(-1)
	if math.Abs(x[0]-want) > 1e-9 {
		t.Fatalf("x(1) = %g, want %g", x[0], want)
	}
}

func TestRK4FourthOrderConvergence(t *testing.T) {
	// Halving h should reduce the error by ~2⁴.
	errAt := func(nsteps int) float64 {
		x := rk4(decay, 0, 1, []float64{1}, nsteps)
		return math.Abs(x[0] - math.Exp(-1))
	}
	e1 := errAt(10)
	e2 := errAt(20)
	ratio := e1 / e2
	if ratio < 12 || ratio > 20 {
		t.Fatalf("convergence ratio %g, want ≈16", ratio)
	}
}

func TestRK4StepMatchesRK4(t *testing.T) {
	x := []float64{1}
	out := make([]float64, 1)
	RK4Step(decay, 0, x, 0.1, out)
	want := rk4(decay, 0, 0.1, []float64{1}, 1)
	if out[0] != want[0] {
		t.Fatalf("RK4Step %g != RK4 %g", out[0], want[0])
	}
}

func TestRK4HarmonicEnergyConservation(t *testing.T) {
	f := harmonic(2)
	x := rk4(f, 0, 2*math.Pi, []float64{1, 0}, 20000)
	// After one period of cos(2t): x(π) ... period is π for ω=2. 2π = 2 periods.
	if math.Abs(x[0]-1) > 1e-8 || math.Abs(x[1]) > 1e-7 {
		t.Fatalf("after integral periods: %v, want [1 0]", x)
	}
}

func TestDOPRI5Decay(t *testing.T) {
	res, err := DOPRI5(decay, 0, 5, []float64{1}, &Options{RTol: 1e-10, ATol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-5)
	if math.Abs(res.X[0]-want) > 1e-10 {
		t.Fatalf("x(5) = %g, want %g", res.X[0], want)
	}
	if res.Steps == 0 {
		t.Fatal("no steps taken")
	}
}

func TestDOPRI5Harmonic(t *testing.T) {
	omega := 3.0
	res, err := DOPRI5(harmonic(omega), 0, 10, []float64{1, 0}, &Options{RTol: 1e-11, ATol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	wantX := math.Cos(omega * 10)
	wantY := -omega * math.Sin(omega*10)
	if math.Abs(res.X[0]-wantX) > 1e-7 || math.Abs(res.X[1]-wantY) > 1e-6 {
		t.Fatalf("got %v, want [%g %g]", res.X, wantX, wantY)
	}
}

func TestDOPRI5RejectsBadInterval(t *testing.T) {
	if _, err := DOPRI5(decay, 1, 1, []float64{1}, nil); err == nil {
		t.Fatal("expected error for empty interval")
	}
	if _, err := DOPRI5(decay, 2, 1, []float64{1}, nil); err == nil {
		t.Fatal("expected error for reversed interval")
	}
}

func TestDOPRI5StepBudget(t *testing.T) {
	_, err := DOPRI5(harmonic(1), 0, 1000, []float64{1, 0}, &Options{RTol: 1e-12, ATol: 1e-14, MaxSteps: 10})
	if err == nil {
		t.Fatal("expected step-budget error")
	}
}

func TestDOPRI5DenseOutput(t *testing.T) {
	res, err := DOPRI5(harmonic(1), 0, 2*math.Pi, []float64{1, 0}, &Options{RTol: 1e-10, ATol: 1e-12, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traj == nil || len(res.Traj.Points) < 3 {
		t.Fatal("no dense output recorded")
	}
	// Interpolated solution should match cos(t) everywhere to interpolation order.
	buf := make([]float64, 2)
	for _, tt := range []float64{0.1, 1.0, 2.5, 4.0, 6.0} {
		res.Traj.At(tt, buf)
		if math.Abs(buf[0]-math.Cos(tt)) > 1e-5 {
			t.Fatalf("traj(%g)[0] = %g, want %g", tt, buf[0], math.Cos(tt))
		}
	}
	// Derivative interpolation.
	res.Traj.Deriv(1.5, buf)
	if math.Abs(buf[0]+math.Sin(1.5)) > 1e-4 {
		t.Fatalf("traj'(1.5)[0] = %g, want %g", buf[0], -math.Sin(1.5))
	}
}

func TestTrajectoryClamping(t *testing.T) {
	tr := &Trajectory{}
	tr.Append(0, []float64{1}, []float64{0})
	tr.Append(1, []float64{2}, []float64{0})
	buf := make([]float64, 1)
	tr.At(-5, buf)
	if buf[0] != 1 {
		t.Fatalf("left clamp = %g", buf[0])
	}
	tr.At(7, buf)
	if buf[0] != 2 {
		t.Fatalf("right clamp = %g", buf[0])
	}
	t0, t1 := tr.Span()
	if t0 != 0 || t1 != 1 {
		t.Fatalf("span = %g..%g", t0, t1)
	}
}

func TestTrajectoryRejectsNonIncreasing(t *testing.T) {
	tr := &Trajectory{}
	tr.Append(0, []float64{1}, []float64{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-increasing knot")
		}
	}()
	tr.Append(0, []float64{1}, []float64{0})
}

func TestTrajectoryHermiteExactForCubic(t *testing.T) {
	// Hermite interpolation is exact for cubics: x(t) = t³ − 2t² + 3.
	x := func(tt float64) float64 { return tt*tt*tt - 2*tt*tt + 3 }
	dx := func(tt float64) float64 { return 3*tt*tt - 4*tt }
	tr := &Trajectory{}
	for _, tt := range []float64{0, 1.5, 4} {
		tr.Append(tt, []float64{x(tt)}, []float64{dx(tt)})
	}
	buf := make([]float64, 1)
	for _, tt := range []float64{0.2, 0.9, 2.0, 3.7} {
		tr.At(tt, buf)
		if math.Abs(buf[0]-x(tt)) > 1e-12 {
			t.Fatalf("hermite(%g) = %g, want %g", tt, buf[0], x(tt))
		}
		tr.Deriv(tt, buf)
		if math.Abs(buf[0]-dx(tt)) > 1e-11 {
			t.Fatalf("hermite'(%g) = %g, want %g", tt, buf[0], dx(tt))
		}
	}
}

func TestTrapezoidalDecay(t *testing.T) {
	jac := func(tt float64, x []float64, dst []float64) { dst[0] = -1 }
	res, err := Trapezoidal(decay, jac, 0, 1, []float64{1}, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-math.Exp(-1)) > 1e-6 {
		t.Fatalf("x(1) = %g", res.X[0])
	}
}

func TestTrapezoidalStiff(t *testing.T) {
	// Very stiff linear problem: ẋ = −10⁶(x − cos t) − sin t, solution x = cos t.
	f := func(tt float64, x, dst []float64) {
		dst[0] = -1e6*(x[0]-math.Cos(tt)) - math.Sin(tt)
	}
	jac := func(tt float64, x []float64, dst []float64) { dst[0] = -1e6 }
	res, err := Trapezoidal(f, jac, 0, 1, []float64{1}, 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-math.Cos(1)) > 1e-4 {
		t.Fatalf("stiff x(1) = %g, want %g", res.X[0], math.Cos(1))
	}
}

func TestTrapezoidalSecondOrderConvergence(t *testing.T) {
	jac := func(tt float64, x []float64, dst []float64) { dst[0] = -1 }
	errAt := func(n int) float64 {
		res, err := Trapezoidal(decay, jac, 0, 1, []float64{1}, n, nil)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.X[0] - math.Exp(-1))
	}
	ratio := errAt(50) / errAt(100)
	if ratio < 3 || ratio > 5 {
		t.Fatalf("trapezoidal convergence ratio %g, want ≈4", ratio)
	}
}

func TestTrapezoidalRecord(t *testing.T) {
	jac := func(tt float64, x []float64, dst []float64) { dst[0] = -1 }
	res, err := Trapezoidal(decay, jac, 0, 1, []float64{1}, 10, &TrapezoidalOptions{Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traj == nil || len(res.Traj.Points) != 11 {
		t.Fatalf("expected 11 knots, got %v", res.Traj)
	}
}

func TestVariationalLinearSystem(t *testing.T) {
	// For the harmonic oscillator the STM is the rotation-like matrix
	// [[cos ωt, sin(ωt)/ω], [−ω sin ωt, cos ωt]].
	omega := 2.0
	tEnd := 0.7
	_, phi := vari(harmonic(omega), harmonicJac(omega), 0, tEnd, []float64{1, 0}, 2000, nil)
	c, s := math.Cos(omega*tEnd), math.Sin(omega*tEnd)
	want := [][]float64{{c, s / omega}, {-omega * s, c}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(phi.At(i, j)-want[i][j]) > 1e-8 {
				t.Fatalf("Φ(%d,%d) = %g, want %g", i, j, phi.At(i, j), want[i][j])
			}
		}
	}
}

func TestVariationalDeterminantLiouville(t *testing.T) {
	// Liouville: det Φ(t,0) = exp(∫ tr A). For harmonic oscillator tr A = 0
	// so det Φ = 1 for all t.
	_, phi := vari(harmonic(1.3), harmonicJac(1.3), 0, 5, []float64{0.3, -1}, 5000, nil)
	det := phi.At(0, 0)*phi.At(1, 1) - phi.At(0, 1)*phi.At(1, 0)
	if math.Abs(det-1) > 1e-8 {
		t.Fatalf("det Φ = %g, want 1", det)
	}
}

func TestVariationalRecordsTrajectory(t *testing.T) {
	rec := &Trajectory{}
	xf, _ := vari(harmonic(1), harmonicJac(1), 0, 1, []float64{1, 0}, 100, rec)
	if len(rec.Points) != 101 {
		t.Fatalf("expected 101 knots, got %d", len(rec.Points))
	}
	buf := make([]float64, 2)
	rec.At(1, buf)
	if math.Abs(buf[0]-xf[0]) > 1e-12 {
		t.Fatal("trajectory end differs from final state")
	}
}

func TestAdjointBackwardInverseTransposeProperty(t *testing.T) {
	// For the adjoint system, y(t)ᵀ x(t) is conserved when ẋ = A x and
	// ẏ = −Aᵀ y. Verify numerically along a harmonic-oscillator orbit.
	omega := 1.7
	f := harmonic(omega)
	jac := harmonicJac(omega)
	rec := &Trajectory{}
	vari(f, jac, 0, 3, []float64{1, 0.5}, 3000, rec)
	yT := []float64{0.3, -0.8}
	adj := adjBack(jac, rec, 0, 3, yT, 3000)
	// Inner product of adjoint and a variational solution must be constant.
	// Take the variational solution w(t) starting from w(0)=e1:
	wrec := &Trajectory{}
	wf := func(tt float64, w, dst []float64) {
		jm := make([]float64, 4)
		jac(tt, nil, jm)
		dst[0] = jm[0]*w[0] + jm[1]*w[1]
		dst[1] = jm[2]*w[0] + jm[3]*w[1]
	}
	res, err := DOPRI5(wf, 0, 3, []float64{1, 0}, &Options{RTol: 1e-11, ATol: 1e-13, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	wrec = res.Traj
	ybuf := make([]float64, 2)
	wbuf := make([]float64, 2)
	var first float64
	for i, tt := range []float64{0, 0.5, 1.2, 2.0, 3.0} {
		adj.At(tt, ybuf)
		wrec.At(tt, wbuf)
		ip := ybuf[0]*wbuf[0] + ybuf[1]*wbuf[1]
		if i == 0 {
			first = ip
			continue
		}
		if math.Abs(ip-first) > 1e-6*(1+math.Abs(first)) {
			t.Fatalf("adjoint invariant broken at t=%g: %g vs %g", tt, ip, first)
		}
	}
}

func TestFiniteDiffJacobianMatchesAnalytic(t *testing.T) {
	omega := 2.5
	fd := FiniteDiffJacobian(harmonic(omega), 2)
	got := make([]float64, 4)
	want := make([]float64, 4)
	fd(0, []float64{0.4, -0.2}, got)
	harmonicJac(omega)(0, []float64{0.4, -0.2}, want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-5 {
			t.Fatalf("fd jac[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestStepSizeUnderflowSurfaced(t *testing.T) {
	// A right-hand side with a strong singularity forces h → 0.
	f := func(tt float64, x, dst []float64) {
		dst[0] = 1 / (1 - tt) // blows up at t = 1
	}
	_, err := DOPRI5(f, 0, 2, []float64{0}, &Options{RTol: 1e-10, ATol: 1e-12, MaxSteps: 100000})
	if err == nil {
		t.Fatal("expected failure integrating through a singularity")
	}
	if !errors.Is(err, ErrStepSizeUnderflow) && err != nil {
		// Either underflow or step budget is acceptable; just require failure.
		t.Logf("failed with: %v", err)
	}
}

// Property: DOPRI5 and RK4 agree on smooth problems.
func TestQuickDOPRI5vsRK4(t *testing.T) {
	f := func(omegaRaw float64) bool {
		omega := 0.5 + math.Mod(math.Abs(omegaRaw), 3)
		res, err := DOPRI5(harmonic(omega), 0, 2, []float64{1, 0}, &Options{RTol: 1e-10, ATol: 1e-12})
		if err != nil {
			return false
		}
		want := rk4(harmonic(omega), 0, 2, []float64{1, 0}, 4000)
		return math.Abs(res.X[0]-want[0]) < 1e-6 && math.Abs(res.X[1]-want[1]) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: trapezoidal and DOPRI5 agree on a mildly nonlinear problem.
func TestQuickTrapezoidalVsDOPRI5(t *testing.T) {
	f := func(seedRaw float64) bool {
		a := 0.2 + math.Mod(math.Abs(seedRaw), 1)
		rhs := func(tt float64, x, dst []float64) { dst[0] = -a * x[0] * x[0] }
		jac := func(tt float64, x []float64, dst []float64) { dst[0] = -2 * a * x[0] }
		r1, err1 := Trapezoidal(rhs, jac, 0, 1, []float64{1}, 2000, nil)
		r2, err2 := DOPRI5(rhs, 0, 1, []float64{1}, &Options{RTol: 1e-10, ATol: 1e-12})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(r1.X[0]-r2.X[0]) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRK4NonFiniteBailsEarly(t *testing.T) {
	// A vector field that turns NaN at t ≥ 0.5 must surface ErrNonFinite
	// within a handful of evaluations, not after the whole grid.
	evals := 0
	f := func(tt float64, x, dst []float64) {
		evals++
		if tt >= 0.5 {
			dst[0] = math.NaN()
			return
		}
		dst[0] = -x[0]
	}
	_, err := RK4(f, 0, 1, []float64{1}, 1000, nil)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("got %v, want ErrNonFinite", err)
	}
	// The poison hits at step ~500 of 1000 (4 evals per step); the guard
	// must fire on that very step, within a few evaluations of the onset.
	if evals > 4*505 {
		t.Fatalf("took %d evaluations to notice non-finite state", evals)
	}
}

func TestRK4InfiniteStateSurfaced(t *testing.T) {
	f := func(tt float64, x, dst []float64) { dst[0] = math.Inf(1) }
	_, err := RK4(f, 0, 1, []float64{1}, 100, nil)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("got %v, want ErrNonFinite for +Inf", err)
	}
}

func TestVariationalNonFiniteSurfaced(t *testing.T) {
	f := func(tt float64, x, dst []float64) { dst[0], dst[1] = math.NaN(), 0 }
	jac := func(tt float64, x []float64, dst []float64) {
		dst[0], dst[1], dst[2], dst[3] = 0, 0, 0, 0
	}
	_, _, err := Variational(f, jac, 0, 1, []float64{1, 0}, 100, nil, nil)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("got %v, want ErrNonFinite", err)
	}
}

func TestRK4CanceledBudget(t *testing.T) {
	tok, cancel := budget.WithCancel(nil)
	cancel()
	evals := 0
	f := func(tt float64, x, dst []float64) { evals++; dst[0] = -x[0] }
	_, err := RK4(f, 0, 1, []float64{1}, 1000, tok)
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if evals != 0 {
		t.Fatalf("pre-canceled token still ran %d evaluations", evals)
	}
}

func TestDOPRI5CanceledBudget(t *testing.T) {
	tok, cancel := budget.WithCancel(nil)
	cancel()
	_, err := DOPRI5(decay, 0, 5, []float64{1}, &Options{Budget: tok})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

func TestTrapezoidalCanceledBudget(t *testing.T) {
	jac := func(tt float64, x []float64, dst []float64) { dst[0] = -1 }
	tok, cancel := budget.WithCancel(nil)
	cancel()
	_, err := Trapezoidal(decay, jac, 0, 1, []float64{1}, 100, &TrapezoidalOptions{Budget: tok})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

func TestAdjointBackwardCanceledBudget(t *testing.T) {
	rec := &Trajectory{}
	vari(harmonic(1), harmonicJac(1), 0, 1, []float64{1, 0}, 100, rec)
	tok, cancel := budget.WithCancel(nil)
	cancel()
	_, done, err := AdjointBackward(harmonicJac(1), rec, 0, 1, []float64{1, 0}, 100, tok)
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if done != 0 {
		t.Fatalf("pre-canceled token: got %d steps done, want 0", done)
	}
}
