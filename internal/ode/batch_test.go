package ode

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/budget"
	"repro/internal/faultinject"
)

// batchHarmonic vectorises the harmonic oscillator across lanes with
// per-lane frequencies, using the same per-lane expressions as harmonic().
func batchHarmonic(omegas []float64) BatchFunc {
	return func(ts, x, dst []float64) {
		k := len(omegas)
		for j, omega := range omegas {
			dst[j] = x[k+j]
			dst[k+j] = -omega * omega * x[j]
		}
	}
}

func batchHarmonicJac(omegas []float64) BatchJacFunc {
	return func(ts, x, jac []float64) {
		k := len(omegas)
		for j, omega := range omegas {
			jac[0*k+j], jac[1*k+j] = 0, 1
			jac[2*k+j], jac[3*k+j] = -omega*omega, 0
		}
	}
}

func TestStepperZeroAllocs(t *testing.T) {
	st := NewStepper(2)
	f := harmonic(2)
	x := []float64{1, 0}
	out := make([]float64, 2)
	allocs := testing.AllocsPerRun(100, func() {
		st.Step(f, 0, x, 1e-3, out)
	})
	if allocs != 0 {
		t.Fatalf("Stepper.Step allocates %v per call, want 0", allocs)
	}
}

func TestStepperMatchesRK4Step(t *testing.T) {
	f := harmonic(3)
	x := []float64{0.3, -1.2}
	want := make([]float64, 2)
	RK4Step(f, 0.1, x, 0.05, want)
	got := make([]float64, 2)
	NewStepper(2).Step(f, 0.1, x, 0.05, got)
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Stepper.Step %v != RK4Step %v", got, want)
	}
}

func TestBatchStepperZeroAllocs(t *testing.T) {
	omegas := []float64{1, 2, 3, 4}
	k := len(omegas)
	st := NewBatchStepper(2, k)
	f := batchHarmonic(omegas)
	x := make([]float64, 2*k)
	for j := 0; j < k; j++ {
		x[j] = 1
	}
	ts0 := make([]float64, k)
	hs := []float64{1e-3, 2e-3, 3e-3, 4e-3}
	allocs := testing.AllocsPerRun(100, func() {
		st.Step(f, ts0, hs, x, x)
	})
	if allocs != 0 {
		t.Fatalf("BatchStepper.Step allocates %v per call, want 0", allocs)
	}
}

// TestRK4ErrorConvention pins the shared failure convention of the RK4
// exits: the reported step is the 1-indexed step that did not complete and
// the reported t is the time of the last valid state (the start of that
// step), identically for the budget-trip and non-finite paths.
func TestRK4ErrorConvention(t *testing.T) {
	// Budget trip before the very first step: step 1, t = t0.
	tok, cancel := budget.WithCancel(nil)
	cancel()
	_, err := RK4(decay, 2.5, 3.5, []float64{1}, 10, tok)
	if err == nil {
		t.Fatal("tripped token did not abort")
	}
	if want := "at t=2.5 (step 1/10)"; !strings.Contains(err.Error(), want) {
		t.Fatalf("budget error %q does not contain %q", err, want)
	}

	// Non-finite state produced by step 4 (t crosses 0.3): step 4 starts at
	// t = 0.3 and is the last valid state time.
	poison := func(tt float64, x, dst []float64) {
		dst[0] = 1
		if tt > 0.35 {
			dst[0] = nan()
		}
	}
	_, err = RK4(poison, 0, 1, []float64{0}, 10, nil)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("want ErrNonFinite, got %v", err)
	}
	// Step 4 starts at t = 3·h, the last valid state time.
	h := float64(1) / float64(10)
	want := fmt.Sprintf("at t=%g (step 4/10)", float64(3)*h)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("non-finite error %q does not contain %q", err, want)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestBatchRK4MatchesScalarBitwise(t *testing.T) {
	for _, lanes := range []int{1, 3, 8} {
		omegas := make([]float64, lanes)
		t1s := make([]float64, lanes)
		xs := make([]float64, 2*lanes)
		for j := range omegas {
			omegas[j] = 1 + 0.5*float64(j)
			t1s[j] = 1 + 0.1*float64(j)
			xs[j] = 1 + 0.01*float64(j) // x0
			xs[lanes+j] = -0.2 * float64(j)
		}
		x0s := append([]float64(nil), xs...)
		laneErrs, batchErr := BatchRK4(batchHarmonic(omegas), 2, lanes, t1s, xs, 200, nil, nil)
		if batchErr != nil {
			t.Fatal(batchErr)
		}
		for j := 0; j < lanes; j++ {
			if laneErrs[j] != nil {
				t.Fatalf("lane %d failed: %v", j, laneErrs[j])
			}
			want := rk4(harmonic(omegas[j]), 0, t1s[j], []float64{x0s[j], x0s[lanes+j]}, 200)
			if xs[j] != want[0] || xs[lanes+j] != want[1] {
				t.Fatalf("K=%d lane %d: batched (%v %v) != scalar %v", lanes, j, xs[j], xs[lanes+j], want)
			}
		}
	}
}

func TestBatchRK4LaneIsolation(t *testing.T) {
	// Lane 1 is poisoned to NaN mid-flight; lanes 0 and 2 must still finish
	// bit-identical to their scalar runs.
	const lanes = 3
	omegas := []float64{1, 2, 3}
	f := func(ts, x, dst []float64) {
		batchHarmonic(omegas)(ts, x, dst)
		if ts[1] > 0.5 {
			dst[1] = nan()
		}
	}
	t1s := []float64{1, 1, 1}
	xs := []float64{1, 1, 1, 0, 0, 0}
	laneErrs, batchErr := BatchRK4(f, 2, lanes, t1s, xs, 100, nil, nil)
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	if laneErrs[1] == nil || !errors.Is(laneErrs[1], ErrNonFinite) {
		t.Fatalf("lane 1 error = %v, want ErrNonFinite", laneErrs[1])
	}
	for _, j := range []int{0, 2} {
		if laneErrs[j] != nil {
			t.Fatalf("lane %d failed: %v", j, laneErrs[j])
		}
		want := rk4(harmonic(omegas[j]), 0, 1, []float64{1, 0}, 100)
		if xs[j] != want[0] || xs[lanes+j] != want[1] {
			t.Fatalf("lane %d diverged from scalar after lane 1 died", j)
		}
	}
}

func TestBatchVariationalMatchesScalarBitwise(t *testing.T) {
	const lanes = 3
	omegas := []float64{1, 1.7, 2.4}
	t1s := []float64{2, 2.5, 3}
	x0s := []float64{1, 0.9, 1.1, 0, 0.1, -0.1}
	recs := []*Trajectory{{}, nil, {}}
	xTs, phis, laneErrs, batchErr := BatchVariational(batchHarmonic(omegas), batchHarmonicJac(omegas), 2, lanes, t1s, x0s, 300, recs, nil, nil)
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	for j := 0; j < lanes; j++ {
		if laneErrs[j] != nil {
			t.Fatalf("lane %d failed: %v", j, laneErrs[j])
		}
		var rec *Trajectory
		if recs[j] != nil {
			rec = &Trajectory{}
		}
		wantX, wantPhi := vari(harmonic(omegas[j]), harmonicJac(omegas[j]), 0, t1s[j], []float64{x0s[j], x0s[lanes+j]}, 300, rec)
		for i := 0; i < 2; i++ {
			if xTs[j][i] != wantX[i] {
				t.Fatalf("lane %d xT[%d]: %v != %v", j, i, xTs[j][i], wantX[i])
			}
		}
		for i, v := range wantPhi.Data {
			if phis[j].Data[i] != v {
				t.Fatalf("lane %d phi[%d]: %v != %v", j, i, phis[j].Data[i], v)
			}
		}
		if rec != nil {
			if len(recs[j].Points) != len(rec.Points) {
				t.Fatalf("lane %d: %d recorded knots, want %d", j, len(recs[j].Points), len(rec.Points))
			}
			for p := range rec.Points {
				a, b := recs[j].Points[p], rec.Points[p]
				if a.T != b.T {
					t.Fatalf("lane %d knot %d time %v != %v", j, p, a.T, b.T)
				}
				for i := 0; i < 2; i++ {
					if a.X[i] != b.X[i] || a.DX[i] != b.DX[i] {
						t.Fatalf("lane %d knot %d differs from scalar", j, p)
					}
				}
			}
		}
	}
}

func TestBatchAdjointMatchesScalarBitwise(t *testing.T) {
	const lanes = 3
	omegas := []float64{1, 1.5, 2.2}
	t1s := []float64{2, 2.2, 2.6}
	orbits := make([]*Trajectory, lanes)
	yTs := make([][]float64, lanes)
	for j := 0; j < lanes; j++ {
		rec := &Trajectory{}
		vari(harmonic(omegas[j]), harmonicJac(omegas[j]), 0, t1s[j], []float64{1, 0}, 250, rec)
		orbits[j] = rec
		yTs[j] = []float64{0.3 + 0.1*float64(j), -0.7}
	}
	outs, steps, laneErrs, batchErr := BatchAdjointBackward(batchHarmonicJac(omegas), orbits, t1s, yTs, 250, nil, nil)
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	for j := 0; j < lanes; j++ {
		if laneErrs[j] != nil {
			t.Fatalf("lane %d failed: %v", j, laneErrs[j])
		}
		if steps[j] != 250 {
			t.Fatalf("lane %d steps = %d, want 250", j, steps[j])
		}
		want := adjBack(harmonicJac(omegas[j]), orbits[j], 0, t1s[j], yTs[j], 250)
		if len(outs[j].Points) != len(want.Points) {
			t.Fatalf("lane %d: %d knots, want %d", j, len(outs[j].Points), len(want.Points))
		}
		for p := range want.Points {
			a, b := outs[j].Points[p], want.Points[p]
			if a.T != b.T {
				t.Fatalf("lane %d knot %d time %v != %v", j, p, a.T, b.T)
			}
			for i := 0; i < 2; i++ {
				if a.X[i] != b.X[i] || a.DX[i] != b.DX[i] {
					t.Fatalf("lane %d knot %d adjoint state differs from scalar", j, p)
				}
			}
		}
	}
}

func TestKnotLocatorMatchesAt(t *testing.T) {
	rec := &Trajectory{}
	vari(harmonic(1.3), harmonicJac(1.3), 0, 3, []float64{1, 0}, 137, rec)
	lc := NewLocator(rec)
	if !lc.uniform {
		t.Fatal("fixed-step recording not recognised as uniform")
	}
	got := make([]float64, 2)
	want := make([]float64, 2)
	for i := 0; i <= 1000; i++ {
		tt := -0.1 + 3.2*float64(i)/1000
		lc.At(tt, got)
		rec.At(tt, want)
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("locator at t=%g: %v != At %v", tt, got, want)
		}
	}
	// Non-uniform knots must fall back to the binary-search path.
	nu := &Trajectory{}
	nu.Append(0, []float64{0, 0}, []float64{0, 0})
	nu.Append(1, []float64{1, 1}, []float64{0, 0})
	nu.Append(3, []float64{2, 2}, []float64{0, 0})
	if NewLocator(nu).uniform {
		t.Fatal("non-uniform trajectory classified as uniform")
	}
}

func TestBatchKernelFaultPoint(t *testing.T) {
	defer faultinject.Enable(faultinject.Plan{faultinject.OdeBatchKernel: {}})()
	omegas := []float64{1, 2}
	xs := []float64{1, 1, 0, 0}
	_, batchErr := BatchRK4(batchHarmonic(omegas), 2, 2, []float64{1, 1}, xs, 10, nil, nil)
	if !errors.Is(batchErr, faultinject.ErrInjected) {
		t.Fatalf("batchErr = %v, want injected fault", batchErr)
	}
	_, _, _, batchErr = BatchVariational(batchHarmonic(omegas), batchHarmonicJac(omegas), 2, 2, []float64{1, 1}, xs, 10, nil, nil, nil)
	if !errors.Is(batchErr, faultinject.ErrInjected) {
		t.Fatalf("variational batchErr = %v, want injected fault", batchErr)
	}
}

func TestBatchRK4LaneBudget(t *testing.T) {
	tok, cancel := budget.WithCancel(nil)
	cancel()
	omegas := []float64{1, 2}
	xs := []float64{1, 1, 0, 0}
	laneErrs, batchErr := BatchRK4(batchHarmonic(omegas), 2, 2, []float64{1, 1}, xs, 100, nil, []*budget.Token{tok, nil})
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	if laneErrs[0] == nil {
		t.Fatal("tripped lane token did not kill lane 0")
	}
	if !strings.Contains(laneErrs[0].Error(), "lane 0") {
		t.Fatalf("lane error %q does not name the lane", laneErrs[0])
	}
	if laneErrs[1] != nil {
		t.Fatalf("lane 1 failed: %v", laneErrs[1])
	}
	want := rk4(harmonic(2), 0, 1, []float64{1, 0}, 100)
	if xs[1] != want[0] || xs[3] != want[1] {
		t.Fatal("surviving lane diverged from scalar")
	}
}

func TestTrapezoidalJacobianFreezing(t *testing.T) {
	// With freezing on, the stiff decay still converges to the same answer
	// while factorising far fewer Jacobians than Newton iterations.
	f := func(tt float64, x, dst []float64) { dst[0] = -50 * x[0] }
	jac := func(tt float64, x, dst []float64) { dst[0] = -50 }
	fresh, err := Trapezoidal(f, jac, 0, 1, []float64{1}, 400, &TrapezoidalOptions{NewtonTol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	frozen, err := Trapezoidal(f, jac, 0, 1, []float64{1}, 400, &TrapezoidalOptions{NewtonTol: 1e-13, FreshJacTol: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if d := frozen.X[0] - fresh.X[0]; d > 1e-12 || d < -1e-12 {
		t.Fatalf("frozen-Jacobian result %v differs from fresh %v", frozen.X[0], fresh.X[0])
	}
}

func BenchmarkBatchRK4Lanes8(b *testing.B) {
	const lanes = 8
	omegas := make([]float64, lanes)
	t1s := make([]float64, lanes)
	for j := range omegas {
		omegas[j] = 1 + 0.25*float64(j)
		t1s[j] = 1
	}
	f := batchHarmonic(omegas)
	xs := make([]float64, 2*lanes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < lanes; j++ {
			xs[j], xs[lanes+j] = 1, 0
		}
		if _, err := BatchRK4(f, 2, lanes, t1s, xs, 500, nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarRK4x8(b *testing.B) {
	const lanes = 8
	fs := make([]Func, lanes)
	for j := range fs {
		fs[j] = harmonic(1 + 0.25*float64(j))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < lanes; j++ {
			if _, err := RK4(fs[j], 0, 1, []float64{1, 0}, 500, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}
