package ode

import (
	"errors"
	"testing"

	"repro/internal/budget"
	"repro/internal/obs"
)

// withRegistry installs a fresh registry for the test and removes it after.
func withRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	r := obs.NewRegistry()
	obs.SetGlobal(r)
	t.Cleanup(func() { obs.SetGlobal(nil) })
	return r
}

func TestIntegratorStepMetrics(t *testing.T) {
	r := withRegistry(t)
	f := harmonic(1)
	jac := harmonicJac(1)

	if _, err := RK4(f, 0, 1, []float64{1, 0}, 100, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := DOPRI5(f, 0, 1, []float64{1, 0}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Trapezoidal(f, jac, 0, 1, []float64{1, 0}, 50, nil); err != nil {
		t.Fatal(err)
	}
	rec := &Trajectory{}
	if _, _, err := Variational(f, jac, 0, 1, []float64{1, 0}, 80, rec, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := AdjointBackward(jac, rec, 0, 1, []float64{1, 0}, 60, nil); err != nil {
		t.Fatal(err)
	}

	s := r.Snapshot()
	if got := s.Counter("pn_ode_steps_total", "rk4"); got != 100 {
		t.Fatalf("rk4 steps = %d, want 100", got)
	}
	if got := s.Counter("pn_ode_steps_total", "dopri5"); got <= 0 {
		t.Fatalf("dopri5 steps = %d, want > 0", got)
	}
	if got := s.Counter("pn_ode_steps_total", "trapezoidal"); got != 50 {
		t.Fatalf("trapezoidal steps = %d, want 50", got)
	}
	if got := s.Counter("pn_ode_steps_total", "variational"); got != 80 {
		t.Fatalf("variational steps = %d, want 80", got)
	}
	if got := s.Counter("pn_ode_steps_total", "adjoint"); got != 60 {
		t.Fatalf("adjoint steps = %d, want 60", got)
	}
	if got := s.Counter("pn_ode_newton_iters_total", ""); got < 50 {
		t.Fatalf("newton iters = %d, want >= one per trapezoidal step", got)
	}
}

func TestStepMetricsFlushedOnBudgetTrip(t *testing.T) {
	r := withRegistry(t)
	f := harmonic(1)
	jac := harmonicJac(1)
	rec := &Trajectory{}
	vari(f, jac, 0, 1, []float64{1, 0}, 100, rec)
	before := r.Snapshot().Counter("pn_ode_steps_total", "variational")
	if before != 100 {
		t.Fatalf("variational steps = %d, want 100", before)
	}

	// Cancel mid-run — from inside the Jacobian, so the trip lands between
	// steps; the steps completed up to the cut must still be counted.
	tok, cancel := budget.WithCancel(nil)
	defer cancel()
	calls := 0
	countingJac := func(t float64, x []float64, dst []float64) {
		calls++
		if calls > 200 { // ≈ 40 steps: 4 rhs evals per RK4 step plus the sample
			cancel()
		}
		jac(t, x, dst)
	}
	_, _, err := AdjointBackward(countingJac, rec, 0, 1, []float64{1, 0}, 100, tok)
	if err == nil {
		t.Fatal("want a budget error")
	}
	got := r.Snapshot().Counter("pn_ode_steps_total", "adjoint")
	if got <= 0 || got >= 100 {
		t.Fatalf("adjoint steps after mid-run trip = %d, want in (0, 100)", got)
	}
}

func TestNonFiniteCounted(t *testing.T) {
	r := withRegistry(t)
	blow := func(t float64, x, dst []float64) {
		dst[0] = x[0] * x[0] * 1e30
	}
	_, err := RK4(blow, 0, 1, []float64{1}, 50, nil)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("got %v, want ErrNonFinite", err)
	}
	if got := r.Snapshot().Counter("pn_ode_nonfinite_total", ""); got != 1 {
		t.Fatalf("nonfinite = %d, want 1", got)
	}
}

// Instrumentation must not add allocations to the integrator hot path: the
// per-call allocation count of RK4 is identical with metrics off and on.
func TestRK4AllocsUnchangedByInstrumentation(t *testing.T) {
	f := harmonic(1)
	x0 := []float64{1, 0}

	obs.SetGlobal(nil)
	odeMetrics.Get() // warm the cached zero bundle
	off := testing.AllocsPerRun(200, func() {
		if _, err := RK4(f, 0, 1, x0, 64, nil); err != nil {
			t.Fatal(err)
		}
	})

	obs.SetGlobal(obs.NewRegistry())
	t.Cleanup(func() { obs.SetGlobal(nil) })
	odeMetrics.Get() // warm the live bundle (the rebuild allocates once)
	on := testing.AllocsPerRun(200, func() {
		if _, err := RK4(f, 0, 1, x0, 64, nil); err != nil {
			t.Fatal(err)
		}
	})

	if on != off {
		t.Fatalf("RK4 allocs/run: off=%v on=%v — instrumentation must not allocate", off, on)
	}

	// The traced path: a serving process runs with a process-global span
	// emitter installed (the job-timeline tee). The integrator sits below the
	// span layer and must stay oblivious — same allocation count again.
	ring := obs.NewRingEmitter(64)
	obs.SetEmitter(ring)
	t.Cleanup(func() { obs.SetEmitter(nil) })
	traced := testing.AllocsPerRun(200, func() {
		if _, err := RK4(f, 0, 1, x0, 64, nil); err != nil {
			t.Fatal(err)
		}
	})
	if traced != off {
		t.Fatalf("RK4 allocs/run: off=%v traced=%v — a live emitter must not reach the integrator hot path", off, traced)
	}
	if ring.Len() != 0 {
		t.Fatalf("RK4 emitted %d span events; the integrator must not trace per call", ring.Len())
	}
}
