package ode

// Batched structure-of-arrays (SoA) integration kernels. A batch evaluates K
// parameter variants ("lanes") of the same model in lockstep: every stage
// buffer is one contiguous [m×K]float64 with component i of lane k stored at
// index i*K+k (lane-minor), so each RK4 stage is a handful of flat loops over
// contiguous memory instead of K separate small-vector integrations. A
// batched Jacobian stores entry (i,j) of lane k at (i*n+j)*K+k.
//
// Lanes never mix arithmetically — every operation is lane-diagonal — so a
// lane whose state turns non-finite poisons only itself. The kernels exploit
// this: a failed lane is recorded in its laneErrs slot and the remaining
// lanes keep stepping. Per-lane arithmetic uses exactly the same expression
// and summation order as the scalar kernels (rk4Step, Variational,
// AdjointBackward), so a K-lane batch produces bit-identical per-lane
// results to K scalar integrations.
//
// Budget policy: the batch token is polled once per step (like the scalar
// kernels); per-lane tokens are polled every laneTokStride steps, because a
// token poll costs a time.Now when a deadline is armed and K polls per step
// would dominate small-n stepping.

import (
	"fmt"
	"math"

	"repro/internal/budget"
	"repro/internal/faultinject"
	"repro/internal/linalg"
)

// BatchFunc is the right-hand side of K lockstep lanes: dst and x are SoA
// [n×K] buffers, ts holds the per-lane evaluation time (autonomous systems
// ignore it).
type BatchFunc func(ts []float64, x, dst []float64)

// BatchJacFunc evaluates the per-lane Jacobians ∂f/∂x into jac, an SoA
// [n²×K] buffer with entry (i,j) of lane k at (i*n+j)*K+k.
type BatchJacFunc func(ts []float64, x, jac []float64)

// laneTokStride is how many steps pass between per-lane budget polls in the
// batched kernels.
const laneTokStride = 32

// BatchStepper carries the scratch buffers for lockstep RK4 steps over K
// lanes of an m-component state. Step performs no allocations.
type BatchStepper struct {
	m, lanes            int
	k1, k2, k3, k4, tmp []float64
	tb2, tb4            []float64 // per-lane stage times t+h/2, t+h
}

// NewBatchStepper returns a stepper for K lanes of m components each.
func NewBatchStepper(m, lanes int) *BatchStepper {
	if m <= 0 || lanes <= 0 {
		panic("ode: BatchStepper requires m > 0 and lanes > 0")
	}
	sz := m * lanes
	return &BatchStepper{
		m: m, lanes: lanes,
		k1:  make([]float64, sz),
		k2:  make([]float64, sz),
		k3:  make([]float64, sz),
		k4:  make([]float64, sz),
		tmp: make([]float64, sz),
		tb2: make([]float64, lanes),
		tb4: make([]float64, lanes),
	}
}

// Lanes returns the batch width the stepper was built for.
func (s *BatchStepper) Lanes() int { return s.lanes }

// axpyLanes writes dst = x + c·h_k·kk lane-wise: one flat bounds-checked
// inner loop per component row. The expression order matches the scalar
// rk4Step stage update bit for bit.
func axpyLanes(dst, x, kk, hs []float64, c float64, m int) {
	k := len(hs)
	for i := 0; i < m; i++ {
		base := i * k
		xv := x[base : base+k : base+k]
		kv := kk[base : base+k : base+k]
		dv := dst[base : base+k : base+k]
		for j, h := range hs {
			dv[j] = xv[j] + c*h*kv[j]
		}
	}
}

// Step advances all lanes by one RK4 step: lane k moves from ts0[k] by
// hs[k]. xout may alias x. len(hs) and len(ts0) must equal the stepper's
// lane count, len(x) its m·lanes.
func (s *BatchStepper) Step(f BatchFunc, ts0, hs, x, xout []float64) {
	m, lanes := s.m, s.lanes
	if len(hs) != lanes || len(ts0) != lanes || len(x) != m*lanes || len(xout) != m*lanes {
		panic("ode: BatchStepper.Step dimension mismatch")
	}
	for k, h := range hs {
		s.tb2[k] = ts0[k] + 0.5*h
		s.tb4[k] = ts0[k] + h
	}
	f(ts0, x, s.k1)
	axpyLanes(s.tmp, x, s.k1, hs, 0.5, m)
	f(s.tb2, s.tmp, s.k2)
	axpyLanes(s.tmp, x, s.k2, hs, 0.5, m)
	f(s.tb2, s.tmp, s.k3)
	axpyLanes(s.tmp, x, s.k3, hs, 1, m)
	f(s.tb4, s.tmp, s.k4)
	for i := 0; i < m; i++ {
		base := i * lanes
		xv := x[base : base+lanes : base+lanes]
		k1v := s.k1[base : base+lanes : base+lanes]
		k2v := s.k2[base : base+lanes : base+lanes]
		k3v := s.k3[base : base+lanes : base+lanes]
		k4v := s.k4[base : base+lanes : base+lanes]
		ov := xout[base : base+lanes : base+lanes]
		for j, h := range hs {
			ov[j] = xv[j] + h/6*(k1v[j]+2*k2v[j]+2*k3v[j]+k4v[j])
		}
	}
}

// laneFinite reports whether lane k of the SoA buffer x (n components,
// lane-minor) is entirely finite.
func laneFinite(x []float64, n, lanes, k int) bool {
	for i := 0; i < n; i++ {
		v := x[i*lanes+k]
		if v-v != 0 {
			return false
		}
	}
	return true
}

// pollLanes checks the per-lane budget tokens of alive lanes, recording a
// wrapped error for any tripped lane and invoking onKill (may be nil) with
// its index. It returns the number of lanes killed.
func pollLanes(laneToks []*budget.Token, alive []bool, laneErrs []error, kernel string, s, nsteps int, tAt func(k int) float64, onKill func(k int)) int {
	if laneToks == nil {
		return 0
	}
	killed := 0
	for k, ok := range alive {
		if !ok || laneToks[k] == nil {
			continue
		}
		if err := laneToks[k].Err(); err != nil {
			alive[k] = false
			laneErrs[k] = fmt.Errorf("ode: %s lane %d at t=%g (step %d/%d): %w", kernel, k, tAt(k), s+1, nsteps, err)
			if onKill != nil {
				onKill(k)
			}
			killed++
		}
	}
	return killed
}

// BatchRK4 integrates K lanes with fixed-step RK4 in lockstep, lane k from
// t=0 to t1s[k] in nsteps steps. xs is the SoA [n×K] state, updated in
// place. The whole batch is cut off (batchErr non-nil) when tok trips or the
// ode.batch.kernel fault point fires; individual lanes fail independently
// (laneErrs[k] non-nil, other lanes unaffected) on a tripped per-lane token
// or a non-finite state. laneToks may be nil, as may its entries.
func BatchRK4(f BatchFunc, n, lanes int, t1s, xs []float64, nsteps int, tok *budget.Token, laneToks []*budget.Token) (laneErrs []error, batchErr error) {
	if nsteps <= 0 {
		panic("ode: BatchRK4 requires nsteps > 0")
	}
	if len(t1s) != lanes || len(xs) != n*lanes {
		panic("ode: BatchRK4 dimension mismatch")
	}
	if err := faultinject.Fire(faultinject.OdeBatchKernel); err != nil {
		return nil, fmt.Errorf("ode: batched RK4: %w", err)
	}
	st := NewBatchStepper(n, lanes)
	hs := make([]float64, lanes)
	ts0 := make([]float64, lanes)
	for k := range hs {
		hs[k] = t1s[k] / float64(nsteps)
	}
	laneErrs = make([]error, lanes)
	alive := make([]bool, lanes)
	for k := range alive {
		alive[k] = true
	}
	nalive := lanes
	m := odeMetrics.Get()
	laneSteps := int64(0)
	defer func() {
		m.rk4Steps.Add(laneSteps)
		m.batchLaneSteps.Add(laneSteps)
	}()
	for s := 0; s < nsteps && nalive > 0; s++ {
		for k := range ts0 {
			ts0[k] = float64(s) * hs[k]
		}
		if err := tok.Err(); err != nil {
			return laneErrs, fmt.Errorf("ode: batched RK4 at step %d/%d: %w", s+1, nsteps, err)
		}
		if s%laneTokStride == 0 {
			nalive -= pollLanes(laneToks, alive, laneErrs, "batched RK4", s, nsteps, func(k int) float64 { return ts0[k] }, nil)
		}
		st.Step(f, ts0, hs, xs, xs)
		for k, ok := range alive {
			if !ok {
				continue
			}
			laneSteps++
			if !laneFinite(xs, n, lanes, k) {
				alive[k] = false
				nalive--
				m.nonFinite.Inc()
				laneErrs[k] = fmt.Errorf("%w in batched RK4 lane %d at t=%g (step %d/%d)", ErrNonFinite, k, ts0[k], s+1, nsteps)
			}
		}
	}
	return laneErrs, nil
}

// BatchVariational integrates the joint system ẋ = f, Ẏ = A(x)·Y with
// Y(0) = I for K lanes in lockstep, lane k over [0, t1s[k]]. x0s is the SoA
// [n×K] initial state (not modified). Per-lane dense recording goes to
// recs[k] when non-nil (recs itself may be nil). On return, xTs[k] and
// phis[k] hold lane k's final state and state-transition matrix, or are nil
// with laneErrs[k] set when the lane failed. A non-nil batchErr (batch
// budget trip or injected batch fault) voids all lanes.
func BatchVariational(f BatchFunc, jac BatchJacFunc, n, lanes int, t1s, x0s []float64, nsteps int, recs []*Trajectory, tok *budget.Token, laneToks []*budget.Token) (xTs [][]float64, phis []*linalg.Matrix, laneErrs []error, batchErr error) {
	if nsteps <= 0 {
		panic("ode: BatchVariational requires nsteps > 0")
	}
	if len(t1s) != lanes || len(x0s) != n*lanes {
		panic("ode: BatchVariational dimension mismatch")
	}
	if err := faultinject.Fire(faultinject.OdeBatchKernel); err != nil {
		return nil, nil, nil, fmt.Errorf("ode: batched variational integration: %w", err)
	}
	mm := n + n*n
	z := make([]float64, mm*lanes)
	copy(z, x0s[:n*lanes])
	for i := 0; i < n; i++ {
		row := (n + i*n + i) * lanes
		for k := 0; k < lanes; k++ {
			z[row+k] = 1 // Y(0) = I
		}
	}
	jm := make([]float64, n*n*lanes)
	rhs := func(ts, zz, dst []float64) {
		f(ts, zz[:n*lanes], dst[:n*lanes])
		jac(ts, zz[:n*lanes], jm)
		// dY = A·Y lane-wise; accumulation order per lane matches the scalar
		// Variational rhs (k-sum from zero, ascending).
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				row := dst[(n+i*n+j)*lanes : (n+i*n+j)*lanes+lanes : (n+i*n+j)*lanes+lanes]
				for k := range row {
					row[k] = 0
				}
				for l := 0; l < n; l++ {
					av := jm[(i*n+l)*lanes : (i*n+l)*lanes+lanes : (i*n+l)*lanes+lanes]
					yv := zz[(n+l*n+j)*lanes : (n+l*n+j)*lanes+lanes : (n+l*n+j)*lanes+lanes]
					for k := range row {
						row[k] += av[k] * yv[k]
					}
				}
			}
		}
	}
	hs := make([]float64, lanes)
	ts0 := make([]float64, lanes)
	tsn := make([]float64, lanes)
	for k := range hs {
		hs[k] = t1s[k] / float64(nsteps)
	}
	laneErrs = make([]error, lanes)
	alive := make([]bool, lanes)
	for k := range alive {
		alive[k] = true
	}
	nalive := lanes
	recording := false
	for _, r := range recs {
		if r != nil {
			recording = true
		}
	}
	var dz []float64
	xg := make([]float64, n)
	dg := make([]float64, n)
	gather := func(src []float64, k int, dst []float64) {
		for i := 0; i < n; i++ {
			dst[i] = src[i*lanes+k]
		}
	}
	if recording {
		dz = make([]float64, mm*lanes)
		rhs(ts0, z, dz) // ts0 is still all zeros = t0
		for k := range recs {
			if recs[k] != nil {
				gather(z, k, xg)
				gather(dz, k, dg)
				recs[k].Append(0, xg, dg)
			}
		}
	}
	st := NewBatchStepper(mm, lanes)
	m := odeMetrics.Get()
	laneSteps := int64(0)
	defer func() {
		m.varSteps.Add(laneSteps)
		m.batchLaneSteps.Add(laneSteps)
	}()
	for s := 0; s < nsteps && nalive > 0; s++ {
		for k := range ts0 {
			ts0[k] = float64(s) * hs[k]
		}
		if err := tok.Err(); err != nil {
			return nil, nil, laneErrs, fmt.Errorf("ode: batched variational integration at step %d/%d: %w", s+1, nsteps, err)
		}
		if s%laneTokStride == 0 {
			nalive -= pollLanes(laneToks, alive, laneErrs, "batched variational integration", s, nsteps, func(k int) float64 { return ts0[k] }, nil)
		}
		st.Step(rhs, ts0, hs, z, z)
		for k, ok := range alive {
			if !ok {
				continue
			}
			laneSteps++
			if !laneFinite(z, mm, lanes, k) {
				alive[k] = false
				nalive--
				m.nonFinite.Inc()
				laneErrs[k] = fmt.Errorf("%w in batched variational integration lane %d at t=%g (step %d/%d)", ErrNonFinite, k, ts0[k], s+1, nsteps)
			}
		}
		if recording && nalive > 0 {
			for k := range tsn {
				tsn[k] = ts0[k] + hs[k]
			}
			rhs(tsn, z, dz)
			for k := range recs {
				if recs[k] != nil && alive[k] {
					gather(z, k, xg)
					gather(dz, k, dg)
					recs[k].Append(tsn[k], xg, dg)
				}
			}
		}
	}
	xTs = make([][]float64, lanes)
	phis = make([]*linalg.Matrix, lanes)
	for k := 0; k < lanes; k++ {
		if !alive[k] {
			continue
		}
		xf := make([]float64, n)
		gather(z, k, xf)
		xTs[k] = xf
		phi := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				phi.Data[i*n+j] = z[(n+i*n+j)*lanes+k]
			}
		}
		phis[k] = phi
	}
	return xTs, phis, laneErrs, nil
}

// Locator is an O(1) segment finder over a (near-)uniform trajectory,
// replacing the per-call binary search of Trajectory.At in hot interpolation
// loops (the batched adjoint right-hand side, the c quadrature, the adjoint
// renormalisation pass). It locates exactly the same bracketing segment as
// the binary search and runs the same Hermite arithmetic, so its results are
// bit-identical; non-uniform trajectories fall back to Trajectory.At. Build
// one outside the loop: the constructor scans the knots once.
type Locator struct {
	tr      *Trajectory
	first   float64
	h       float64
	uniform bool
}

func NewLocator(tr *Trajectory) Locator {
	lc := Locator{tr: tr}
	pts := tr.Points
	if len(pts) < 2 {
		return lc
	}
	first := pts[0].T
	h := (pts[len(pts)-1].T - first) / float64(len(pts)-1)
	if h <= 0 || h-h != 0 {
		return lc
	}
	// Fixed-step recordings accumulate knot times as s·h + h, which drifts
	// from first + i·h by at most a few thousand ulps — far inside this
	// tolerance. Anything worse (adaptive output, hand-built knots) keeps
	// the binary-search path.
	tol := 1e-6 * h
	for i := range pts {
		if math.Abs(pts[i].T-(first+float64(i)*h)) > tol {
			return lc
		}
	}
	lc.first, lc.h, lc.uniform = first, h, true
	return lc
}

// At evaluates the trajectory at t into dst, bit-identical to tr.At(t, dst).
func (lc *Locator) At(t float64, dst []float64) {
	if !lc.uniform {
		lc.tr.At(t, dst)
		return
	}
	pts := lc.tr.Points
	if t <= pts[0].T {
		copy(dst, pts[0].X)
		return
	}
	if t >= pts[len(pts)-1].T {
		copy(dst, pts[len(pts)-1].X)
		return
	}
	lo := int((t - lc.first) / lc.h)
	if lo < 0 {
		lo = 0
	}
	if lo > len(pts)-2 {
		lo = len(pts) - 2
	}
	for lo < len(pts)-2 && pts[lo+1].T <= t {
		lo++
	}
	for lo > 0 && pts[lo].T > t {
		lo--
	}
	a, b := pts[lo], pts[lo+1]
	h := b.T - a.T
	s := (t - a.T) / h
	s2 := s * s
	s3 := s2 * s
	h00 := 2*s3 - 3*s2 + 1
	h10 := s3 - 2*s2 + s
	h01 := -2*s3 + 3*s2
	h11 := s3 - s2
	for i := range dst {
		dst[i] = h00*a.X[i] + h10*h*a.DX[i] + h01*b.X[i] + h11*h*b.DX[i]
	}
}

// BatchAdjointBackward integrates the adjoint system ẏ = −Aᵀ(t)y backwards
// from t1s[k] to 0 for K lanes in lockstep, each along its own stored orbit
// orbits[k] with terminal condition yTs[k]. It returns per-lane adjoint
// trajectories sampled on each lane's uniform grid, the per-lane completed
// step counts, and per-lane errors; batchErr voids the whole batch.
func BatchAdjointBackward(jac BatchJacFunc, orbits []*Trajectory, t1s []float64, yTs [][]float64, nsteps int, tok *budget.Token, laneToks []*budget.Token) (outs []*Trajectory, stepsDone []int, laneErrs []error, batchErr error) {
	if nsteps <= 0 {
		panic("ode: BatchAdjointBackward requires nsteps > 0")
	}
	lanes := len(orbits)
	if len(t1s) != lanes || len(yTs) != lanes || lanes == 0 {
		panic("ode: BatchAdjointBackward dimension mismatch")
	}
	n := len(yTs[0])
	if err := faultinject.Fire(faultinject.OdeBatchKernel); err != nil {
		return nil, nil, nil, fmt.Errorf("ode: batched backward adjoint: %w", err)
	}
	locs := make([]Locator, lanes)
	for k := range locs {
		locs[k] = NewLocator(orbits[k])
	}
	jm := make([]float64, n*n*lanes)
	xbuf := make([]float64, n*lanes)
	xg := make([]float64, n)
	rhs := func(ts, y, dst []float64) {
		for k := 0; k < lanes; k++ {
			locs[k].At(ts[k], xg)
			for i := 0; i < n; i++ {
				xbuf[i*lanes+k] = xg[i]
			}
		}
		jac(ts, xbuf, jm)
		// dst = −Aᵀy lane-wise; per-lane accumulation order matches the
		// scalar AdjointBackward rhs.
		for i := 0; i < n; i++ {
			row := dst[i*lanes : i*lanes+lanes : i*lanes+lanes]
			for k := range row {
				row[k] = 0
			}
			for l := 0; l < n; l++ {
				av := jm[(l*n+i)*lanes : (l*n+i)*lanes+lanes : (l*n+i)*lanes+lanes]
				yv := y[l*lanes : l*lanes+lanes : l*lanes+lanes]
				for k := range row {
					row[k] += av[k] * yv[k]
				}
			}
			for k := range row {
				row[k] = -row[k]
			}
		}
	}
	y := make([]float64, n*lanes)
	for k := 0; k < lanes; k++ {
		if len(yTs[k]) != n {
			panic("ode: BatchAdjointBackward yT dimension mismatch")
		}
		for i := 0; i < n; i++ {
			y[i*lanes+k] = yTs[k][i]
		}
	}
	hs := make([]float64, lanes)
	hneg := make([]float64, lanes)
	ts0 := make([]float64, lanes)
	tsm := make([]float64, lanes)
	for k := range hs {
		hs[k] = t1s[k] / float64(nsteps)
		hneg[k] = -hs[k]
	}
	// Per-lane sample storage, written back-to-front; trajectories are
	// assembled from these backings without re-copying.
	tsStore := make([][]float64, lanes)
	ysStore := make([][]float64, lanes)
	dysStore := make([][]float64, lanes)
	for k := range tsStore {
		tsStore[k] = make([]float64, nsteps+1)
		ysStore[k] = make([]float64, (nsteps+1)*n)
		dysStore[k] = make([]float64, (nsteps+1)*n)
	}
	dy := make([]float64, n*lanes)
	laneErrs = make([]error, lanes)
	stepsDone = make([]int, lanes)
	alive := make([]bool, lanes)
	for k := range alive {
		alive[k] = true
	}
	nalive := lanes
	store := func(idx int, ts []float64) {
		rhs(ts, y, dy)
		for k, ok := range alive {
			if !ok {
				continue
			}
			tsStore[k][idx] = ts[k]
			for i := 0; i < n; i++ {
				ysStore[k][idx*n+i] = y[i*lanes+k]
				dysStore[k][idx*n+i] = dy[i*lanes+k]
			}
		}
	}
	copy(ts0, t1s)
	store(nsteps, ts0)
	st := NewBatchStepper(n, lanes)
	m := odeMetrics.Get()
	laneSteps := int64(0)
	defer func() {
		m.adjSteps.Add(laneSteps)
		m.batchLaneSteps.Add(laneSteps)
	}()
	for s := 0; s < nsteps && nalive > 0; s++ {
		for k := range ts0 {
			ts0[k] = t1s[k] - float64(s)*hs[k]
		}
		if err := tok.Err(); err != nil {
			return nil, nil, laneErrs, fmt.Errorf("ode: batched backward adjoint at step %d/%d: %w", s+1, nsteps, err)
		}
		if s%laneTokStride == 0 {
			nalive -= pollLanes(laneToks, alive, laneErrs, "batched backward adjoint", s, nsteps, func(k int) float64 { return ts0[k] }, func(k int) { stepsDone[k] = s })
		}
		st.Step(rhs, ts0, hneg, y, y)
		for k, ok := range alive {
			if !ok {
				continue
			}
			laneSteps++
			if !laneFinite(y, n, lanes, k) {
				alive[k] = false
				nalive--
				m.nonFinite.Inc()
				stepsDone[k] = s + 1
				laneErrs[k] = fmt.Errorf("%w in batched backward adjoint lane %d at t=%g (step %d/%d)", ErrNonFinite, k, ts0[k], s+1, nsteps)
			}
		}
		if nalive > 0 {
			for k := range tsm {
				tsm[k] = ts0[k] - hs[k]
			}
			store(nsteps-1-s, tsm)
		}
	}
	outs = make([]*Trajectory, lanes)
	for k := 0; k < lanes; k++ {
		if !alive[k] {
			continue
		}
		stepsDone[k] = nsteps
		pts := make([]SamplePoint, nsteps+1)
		for i := 0; i <= nsteps; i++ {
			pts[i] = SamplePoint{
				T:  tsStore[k][i],
				X:  ysStore[k][i*n : (i+1)*n : (i+1)*n],
				DX: dysStore[k][i*n : (i+1)*n : (i+1)*n],
			}
		}
		outs[k] = &Trajectory{Points: pts}
	}
	return outs, stepsDone, laneErrs, nil
}
