package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestProberTracksHealth: a worker that goes 503 is marked unhealthy on the
// next probe round and recovers when it answers 200 again.
func TestProberTracksHealth(t *testing.T) {
	var code atomic.Int32
	code.Store(http.StatusOK)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(code.Load()))
	}))
	defer ts.Close()

	p := newProber([]string{ts.URL}, ProbeConfig{Every: 10 * time.Millisecond, FlapMax: 100}, nil, t.Logf)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.run(ctx)
	}()
	defer func() { cancel(); <-done }()

	if !p.Healthy(ts.URL) {
		t.Fatal("worker not optimistically healthy before the first probe")
	}
	waitFor(t, time.Second, func() bool { return p.Healthy(ts.URL) })
	code.Store(http.StatusServiceUnavailable)
	waitFor(t, time.Second, func() bool { return !p.Healthy(ts.URL) })
	code.Store(http.StatusOK)
	waitFor(t, time.Second, func() bool { return p.Healthy(ts.URL) })

	if p.Healthy("http://never-registered:1") {
		t.Fatal("unknown worker reported healthy")
	}
}

// TestProberQuarantinesFlapper: a worker flipping between ready and not
// ready every probe exceeds the flap budget and is benched — even while its
// instantaneous state reads healthy.
func TestProberQuarantinesFlapper(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	var n atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	p := newProber([]string{ts.URL}, ProbeConfig{
		Every:      5 * time.Millisecond,
		FlapWindow: 10 * time.Second,
		FlapMax:    4,
		Quarantine: time.Hour,
	}, nil, t.Logf)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.run(ctx)
	}()
	defer func() { cancel(); <-done }()

	// Benched regardless of which half of the flap the latest probe saw.
	waitFor(t, 5*time.Second, func() bool {
		p.mu.Lock()
		defer p.mu.Unlock()
		return !p.workers[ts.URL].benchedTill.IsZero()
	})
	if p.Healthy(ts.URL) {
		t.Fatal("quarantined worker still reports healthy")
	}
	if got := reg.Snapshot().Counter("pn_cluster_quarantines_total", ""); got < 1 {
		t.Fatalf("quarantine counter = %d, want >= 1", got)
	}
}

func waitFor(t *testing.T, timeout time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if pred() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never held")
}
