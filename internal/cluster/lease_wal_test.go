package cluster

import (
	"os"
	"path/filepath"
	"testing"
)

// TestLeaseWALReplay: records append durably, replay returns them in order,
// a torn tail is skipped, and remove deletes the journal.
func TestLeaseWALReplay(t *testing.T) {
	dir := t.TempDir()
	w, recs, err := openLeaseWAL(dir, "j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	w.append(walRecord{Type: walDispatch, Lease: 0, Attempt: 0, Worker: "http://a", WorkerJob: "wj1"})
	w.append(walRecord{Type: walDispatch, Lease: 1, Attempt: 2, Worker: "http://b", WorkerJob: "wj2"})
	w.append(walRecord{Type: walComplete, Lease: 0, Attempt: 0, Worker: "http://a", WorkerJob: "wj1"})
	w.Close()

	// Simulate a crash mid-append: a torn half line at the tail.
	path := filepath.Join(dir, "j1.leases.jsonl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"type":"dispatch","lea`)
	f.Close()

	w2, recs, err := openLeaseWAL(dir, "j1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3 (torn tail skipped): %+v", len(recs), recs)
	}
	if recs[1].Type != walDispatch || recs[1].Lease != 1 || recs[1].Attempt != 2 || recs[1].Worker != "http://b" {
		t.Fatalf("record 1 corrupted on replay: %+v", recs[1])
	}
	w2.remove()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("remove left the journal behind: %v", err)
	}

	// Empty dir disables journalling; a nil WAL is safe to use.
	var nilWAL *leaseWAL
	if w3, recs, err := openLeaseWAL("", "j1"); w3 != nil || recs != nil || err != nil {
		t.Fatalf("empty dir: %v %v %v", w3, recs, err)
	}
	nilWAL.append(walRecord{Type: walDispatch})
	nilWAL.Close()
	nilWAL.remove()
}
