package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/pnclient"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// fastRetry keeps client-side backoff out of the test clock.
var fastRetry = pnclient.Retry{Attempts: 5, Base: time.Millisecond, Max: 20 * time.Millisecond, Seed: 1}

// startWorker boots one pnserve worker over httptest with its own cache
// store on the shared disk directory — the same sharing model as separate
// worker processes pointed at one cache volume.
func startWorker(t *testing.T, cacheDir string) (*httptest.Server, *serve.Server) {
	t.Helper()
	store, err := cache.New(cache.Options{Dir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{Workers: 2, Cache: store})
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return ts, s
}

// fabric is a two-worker cluster with a coordinator-mode front server.
type fabric struct {
	workers  []string
	coord    *Coordinator
	front    *serve.Server
	frontTS  *httptest.Server
	cacheDir string
}

func startFabric(t *testing.T, nWorkers int, mutate func(*Config)) *fabric {
	t.Helper()
	f := &fabric{cacheDir: t.TempDir()}
	for i := 0; i < nWorkers; i++ {
		ts, _ := startWorker(t, f.cacheDir)
		f.workers = append(f.workers, ts.URL)
	}
	coordStore, err := cache.New(cache.Options{Dir: f.cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workers:        f.workers,
		LeasePoints:    3,
		LeaseTTL:       2 * time.Second,
		HeartbeatEvery: 200 * time.Millisecond,
		Retry:          fastRetry,
		Probe:          ProbeConfig{Every: 100 * time.Millisecond},
		WALDir:         t.TempDir(),
		Cache:          coordStore,
		Logf:           t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	f.coord = New(cfg)
	t.Cleanup(f.coord.Close)
	f.front = serve.New(serve.Config{Workers: 2, Runner: f.coord})
	f.frontTS = httptest.NewServer(f.front)
	t.Cleanup(func() {
		f.frontTS.Close()
		f.front.Shutdown(context.Background())
	})
	return f
}

// hopfPoints are fast, fresh points with distinct fingerprints.
func hopfPoints(n int, salt float64) []serve.PointSpec {
	pts := make([]serve.PointSpec, n)
	for i := range pts {
		pts[i] = serve.PointSpec{
			Name:   fmt.Sprintf("p%d", i),
			Model:  "hopf",
			Params: map[string]float64{"lambda": 1, "omega": 1000 + salt + float64(i), "sigma": 0.02},
		}
	}
	return pts
}

// ringPoints are slow points (no closed-form period, real integration) so a
// job reliably outlives lease TTLs measured in hundreds of milliseconds.
func ringPoints(n int, salt float64) []serve.PointSpec {
	pts := make([]serve.PointSpec, n)
	for i := range pts {
		pts[i] = serve.PointSpec{
			Name:   fmt.Sprintf("ring%d", i),
			Model:  "ring",
			Params: map[string]float64{"iee": 331e-6 * (1 + 0.001*(salt+float64(i)))},
		}
	}
	return pts
}

func submitAndWait(t *testing.T, base string, req serve.SweepRequest) serve.JobStatus {
	t.Helper()
	cl := pnclient.New(base, nil, fastRetry)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := cl.Sweep(ctx, req, "")
	if err != nil {
		t.Fatal(err)
	}
	st, err = cl.Wait(ctx, st.ID, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func assertAllOK(t *testing.T, st serve.JobStatus, n int) {
	t.Helper()
	if st.State != serve.StateDone {
		t.Fatalf("job state %q, want done (error: %v)", st.State, st.Error)
	}
	if st.DonePoints != n || st.FailedPoints != 0 {
		t.Fatalf("done=%d failed=%d, want %d/0 (%+v)", st.DonePoints, st.FailedPoints, n, st.Results)
	}
	if len(st.Full) != n {
		t.Fatalf("full results: %d, want %d", len(st.Full), n)
	}
	for i, r := range st.Full {
		if !r.OK() {
			t.Fatalf("point %d (%s) failed: %v", i, r.Name, r.Err)
		}
		if r.Index != i {
			t.Fatalf("point %d carries index %d", i, r.Index)
		}
	}
}

// TestClusterEndToEnd is the happy path: a sweep through the coordinator
// front lands every point exactly once across two workers, and the front's
// own SSE stream carries the merged per-point progress.
func TestClusterEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	f := startFabric(t, 2, nil)
	const n = 10
	st := submitAndWait(t, f.frontTS.URL, serve.SweepRequest{Points: hopfPoints(n, 0), Workers: 2})
	assertAllOK(t, st, n)

	snap := reg.Snapshot()
	// Exactly-once: every point characterised once fleet-wide, none duplicated.
	if got := snap.Counter("pn_core_characterisations_total", "ok"); got != n {
		t.Fatalf("characterisations = %d, want exactly %d", got, n)
	}
	if d := snap.Counter("pn_cluster_leases_total", "dispatched"); d < 2 {
		t.Fatalf("leases dispatched = %d, want >= 2 (LeasePoints=3, %d points)", d, n)
	}
	if fb := snap.Counter("pn_cluster_fallback_leases_total", ""); fb != 0 {
		t.Fatalf("healthy cluster used the in-process fallback %d times", fb)
	}

	// The front's aggregated SSE stream replays one point event per index.
	seen := map[int]int{}
	for _, ev := range frontEvents(t, f.frontTS.URL, st.ID) {
		if ev.Type == "point" && ev.Point != nil {
			seen[ev.Point.Index]++
		}
	}
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Fatalf("front SSE delivered point %d %d times: %v", i, seen[i], seen)
		}
	}

	// Identical resubmission: all cache hits, zero new characterisations.
	st2 := submitAndWait(t, f.frontTS.URL, serve.SweepRequest{Points: hopfPoints(n, 0), Workers: 2})
	assertAllOK(t, st2, n)
	if st2.CachedPoints != n {
		t.Fatalf("resubmit cached %d of %d points", st2.CachedPoints, n)
	}
	if got := reg.Snapshot().Counter("pn_core_characterisations_total", "ok"); got != n {
		t.Fatalf("resubmit recomputed: characterisations = %d, want %d", got, n)
	}
}

// frontEvents drains the coordinator front's SSE stream for a terminal job.
func frontEvents(t *testing.T, base, id string) []serve.Event {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []serve.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			var ev serve.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatal(err)
			}
			out = append(out, ev)
		}
	}
	return out
}

// TestClusterDegradedNoWorkers: with no workers configured — and separately
// with only unreachable workers — the coordinator degrades to the in-process
// sweep path and the job still completes.
func TestClusterDegradedNoWorkers(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	var logMu sync.Mutex
	var warned bool
	logf := func(format string, args ...any) {
		logMu.Lock()
		if strings.Contains(fmt.Sprintf(format, args...), "in-process") {
			warned = true
		}
		logMu.Unlock()
		t.Logf(format, args...)
	}

	f := startFabric(t, 0, func(c *Config) { c.Logf = logf })
	const n = 4
	st := submitAndWait(t, f.frontTS.URL, serve.SweepRequest{Points: hopfPoints(n, 50), Workers: 2})
	assertAllOK(t, st, n)
	logMu.Lock()
	gotWarning := warned
	logMu.Unlock()
	if !gotWarning {
		t.Fatal("degraded run logged no in-process warning")
	}
	if got := reg.Snapshot().Counter("pn_cluster_fallback_leases_total", ""); got < 1 {
		t.Fatalf("fallback leases = %d, want >= 1", got)
	}

	// Unreachable workers: dispatch fails, breakers accumulate failures,
	// the job still lands via fallback.
	f2 := startFabric(t, 0, func(c *Config) {
		c.Workers = []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}
		c.Retry = pnclient.Retry{Attempts: 2, Base: time.Millisecond, Max: 2 * time.Millisecond, Seed: 1}
		c.Logf = logf
	})
	st2 := submitAndWait(t, f2.frontTS.URL, serve.SweepRequest{Points: hopfPoints(n, 80), Workers: 2})
	assertAllOK(t, st2, n)
}

// TestClusterResumeAfterCoordinatorRestart drives RunSweep directly: a first
// coordinator dispatches leases and dies mid-job (its budget token trips); a
// second coordinator with the same WAL directory and job ID resumes — same
// lease IDs, same idempotency keys — deduplicates onto the worker jobs the
// first one created, and finishes with every point characterised exactly
// once.
func TestClusterResumeAfterCoordinatorRestart(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	cacheDir := t.TempDir()
	walDir := t.TempDir()
	var workers []string
	for i := 0; i < 2; i++ {
		ts, _ := startWorker(t, cacheDir)
		workers = append(workers, ts.URL)
	}
	cfg := Config{
		Workers:        workers,
		LeasePoints:    3,
		LeaseTTL:       5 * time.Second, // generous: survives the restart gap
		HeartbeatEvery: 200 * time.Millisecond,
		Retry:          fastRetry,
		Probe:          ProbeConfig{Every: 100 * time.Millisecond},
		WALDir:         walDir,
		Logf:           t.Logf,
	}
	const n = 9
	specs := ringPoints(n, 0)

	// Coordinator 1: run until the first point completes, then kill it.
	coord1 := New(cfg)
	tok1, kill := budget.WithCancel(nil)
	firstPoint := make(chan struct{})
	var once sync.Once
	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		coord1.RunSweep(serve.RunnerRequest{
			JobID: "restart-job", Kind: "sweep", Specs: specs, Tok: tok1, Workers: 2,
			OnSummary: func(s serve.PointSummary) {
				if s.OK {
					once.Do(func() { close(firstPoint) })
				}
			},
		})
	}()
	select {
	case <-firstPoint:
	case <-time.After(90 * time.Second):
		t.Fatal("no point completed under coordinator 1")
	}
	kill()
	<-done1
	coord1.Close()

	// Coordinator 2: same WAL dir, same job ID, fresh token.
	coord2 := New(cfg)
	defer coord2.Close()
	tok2, release := budget.WithCancel(nil)
	defer release()
	var mu sync.Mutex
	counts := map[int]int{}
	results := make([]sweep.PointResult, n)
	stored := make([]bool, n)
	err := coord2.RunSweep(serve.RunnerRequest{
		JobID: "restart-job", Kind: "sweep", Specs: specs, Tok: tok2, Workers: 2,
		OnResult: func(r sweep.PointResult) {
			mu.Lock()
			if r.Index >= 0 && r.Index < n {
				results[r.Index] = r
				stored[r.Index] = true
			}
			mu.Unlock()
		},
		OnSummary: func(s serve.PointSummary) {
			mu.Lock()
			counts[s.Index]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	for i, r := range results {
		if !stored[i] {
			t.Fatalf("resumed run never streamed point %d", i)
		}
		if !r.OK() {
			t.Fatalf("resumed point %d (%s) failed: %v", i, r.Name, r.Err)
		}
		if r.Index != i {
			t.Fatalf("resumed point %d carries index %d", i, r.Index)
		}
	}
	mu.Lock()
	for i := 0; i < n; i++ {
		if counts[i] != 1 {
			t.Fatalf("resumed run reported point %d %d times", i, counts[i])
		}
	}
	mu.Unlock()
	// Exactly-once fleet-wide, across both coordinator incarnations.
	if got := reg.Snapshot().Counter("pn_core_characterisations_total", "ok"); got != n {
		t.Fatalf("characterisations = %d, want exactly %d", got, n)
	}
}

// TestClusterRoutingAffinity: identical points in two separate jobs route to
// the same worker, so the second job's points are cache hits even without a
// shared disk tier — the ring, not luck, creates the affinity.
func TestClusterRoutingAffinity(t *testing.T) {
	coordCfg := Config{Workers: ringWorkers(5), LeasePoints: 4}
	c := New(coordCfg)
	defer c.Close()
	run := &jobRun{coord: c, req: serve.RunnerRequest{Specs: hopfPoints(20, 0)}}
	leases1 := run.buildLeases()
	run2 := &jobRun{coord: c, req: serve.RunnerRequest{Specs: hopfPoints(20, 0)}}
	leases2 := run2.buildLeases()
	if len(leases1) != len(leases2) {
		t.Fatalf("lease layout not deterministic: %d vs %d", len(leases1), len(leases2))
	}
	covered := map[int]bool{}
	for i := range leases1 {
		if leases1[i].key != leases2[i].key || len(leases1[i].indices) != len(leases2[i].indices) {
			t.Fatalf("lease %d differs across identical jobs", i)
		}
		if len(leases1[i].indices) > coordCfg.LeasePoints {
			t.Fatalf("lease %d holds %d points, cap %d", i, len(leases1[i].indices), coordCfg.LeasePoints)
		}
		for _, g := range leases1[i].indices {
			if covered[g] {
				t.Fatalf("point %d appears in two leases", g)
			}
			covered[g] = true
		}
	}
	if len(covered) != 20 {
		t.Fatalf("leases cover %d of 20 points", len(covered))
	}
	// Routed homes must follow the ring primaries.
	for _, l := range leases1 {
		if home := c.ring.Primary(l.key); home == "" {
			t.Fatal("lease with no ring home despite populated worker list")
		}
	}
}
