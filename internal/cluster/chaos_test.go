package cluster

import (
	"context"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pnclient"
	"repro/internal/serve"
)

// TestChaosClusterLeaseDispatch injects failures into the coordinator's
// dispatch path (cluster.lease.dispatch): the first three dispatch attempts
// die before reaching any worker. The leases must requeue and the sweep must
// still land every point exactly once.
func TestChaosClusterLeaseDispatch(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)
	defer faultinject.Enable(faultinject.Plan{
		faultinject.ClusterLeaseDispatch: {Mode: faultinject.ModeError, Count: 3},
	})()

	f := startFabric(t, 2, nil)
	const n = 8
	st := submitAndWait(t, f.frontTS.URL, serve.SweepRequest{Points: hopfPoints(n, 100), Workers: 2})
	assertAllOK(t, st, n)

	snap := reg.Snapshot()
	if got := snap.Counter("pn_cluster_leases_total", "requeued"); got < 3 {
		t.Fatalf("requeued leases = %d, want >= 3 (injected dispatch failures)", got)
	}
	if got := snap.Counter("pn_core_characterisations_total", "ok"); got != n {
		t.Fatalf("characterisations = %d, want exactly %d", got, n)
	}
	if stats := faultinject.Stats()[faultinject.ClusterLeaseDispatch]; stats.Fired != 3 {
		t.Fatalf("dispatch fault fired %d times, want 3", stats.Fired)
	}
}

// TestChaosClusterWorkerKill severs the coordinator's event-stream watch
// (cluster.worker.kill) — the coordinator's view of a worker dying or
// partitioning mid-lease. The lease must drain the abandoned attempt,
// requeue, and the job must finish with every point landing exactly once:
// points the first attempt completed come back as cache hits, not
// recomputations.
func TestChaosClusterWorkerKill(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)
	defer faultinject.Enable(faultinject.Plan{
		faultinject.ClusterWorkerKill: {Mode: faultinject.ModeError, Count: 1},
	})()

	// One worker and a lease cap above n: exactly one lease, so the single
	// injected kill deterministically hits it.
	f := startFabric(t, 1, func(c *Config) {
		c.LeasePoints = 16
		c.LeaseTTL = 2 * time.Second
		c.HeartbeatEvery = 100 * time.Millisecond
	})
	const n = 4
	st := submitAndWait(t, f.frontTS.URL, serve.SweepRequest{Points: ringPoints(n, 200), Workers: 2})
	assertAllOK(t, st, n)

	snap := reg.Snapshot()
	if got := snap.Counter("pn_cluster_leases_total", "requeued"); got < 1 {
		t.Fatalf("requeued leases = %d, want >= 1 (killed watch)", got)
	}
	if got := snap.Counter("pn_core_characterisations_total", "ok"); got != n {
		t.Fatalf("characterisations = %d, want exactly %d (no duplicate side effects)", got, n)
	}
}

// TestChaosClusterHeartbeatDrop silently drops the coordinator's first four
// lease renewals (cluster.heartbeat.drop) — long enough that the worker's
// lease TTL lapses and it self-cancels the orphaned job. The coordinator
// must notice the canceled lease, requeue under a fresh idempotency key, and
// finish; the worker-side expiry must be visible in the serve metrics.
func TestChaosClusterHeartbeatDrop(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)
	defer faultinject.Enable(faultinject.Plan{
		faultinject.ClusterHeartbeatDrop: {Mode: faultinject.ModeError, Count: 4},
	})()

	// One worker, one lease, sequential points: the four dropped renewals
	// span the whole 400ms TTL while the lease is still mid-sweep.
	f := startFabric(t, 1, func(c *Config) {
		c.LeasePoints = 16
		c.LeaseTTL = 400 * time.Millisecond
		c.HeartbeatEvery = 100 * time.Millisecond
	})
	const n = 8
	st := submitAndWait(t, f.frontTS.URL, serve.SweepRequest{Points: ringPoints(n, 300), Workers: 1})
	assertAllOK(t, st, n)

	snap := reg.Snapshot()
	if got := snap.Counter("pn_cluster_heartbeats_total", "dropped"); got < 1 {
		t.Fatalf("dropped heartbeats = %d, want >= 1", got)
	}
	if got := snap.Counter("pn_serve_lease_expirations_total", ""); got < 1 {
		t.Fatalf("worker lease expirations = %d, want >= 1 (TTL must have lapsed)", got)
	}
	if got := snap.Counter("pn_cluster_leases_total", "requeued"); got < 1 {
		t.Fatalf("requeued leases = %d, want >= 1 (expired lease reassigned)", got)
	}
	if got := snap.Counter("pn_core_characterisations_total", "ok"); got != n {
		t.Fatalf("characterisations = %d, want exactly %d", got, n)
	}
}

// TestChaosTraceIngest kills every worker trace pull at the coordinator
// (cluster.trace.ingest). Trace shipping is pure observability: the job must
// finish exactly as without the fault, the failed pulls must be counted, and
// the coordinator's own timeline must still exist — only the worker-side
// spans go missing.
func TestChaosTraceIngest(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)
	defer faultinject.Enable(faultinject.Plan{
		faultinject.ClusterTraceIngest: {Mode: faultinject.ModeError},
	})()

	f := startFabric(t, 2, nil)
	const n = 6
	st := submitAndWait(t, f.frontTS.URL, serve.SweepRequest{Points: hopfPoints(n, 500), Workers: 2})
	assertAllOK(t, st, n)

	snap := reg.Snapshot()
	if got := snap.Counter("pn_cluster_trace_pulls_total", "failed"); got < 1 {
		t.Fatalf("failed trace pulls = %d, want >= 1 (every pull faulted)", got)
	}
	if got := snap.Counter("pn_cluster_trace_pulls_total", "ok"); got != 0 {
		t.Fatalf("ok trace pulls = %d, want 0 under a permanent ingest fault", got)
	}
	if stats := faultinject.Stats()[faultinject.ClusterTraceIngest]; stats.Fired < 1 {
		t.Fatal("trace ingest fault never fired; the test exercised nothing")
	}
	// The coordinator's local spans are recorded regardless of pull failures.
	jt := fetchTrace(t, f.frontTS.URL, st.ID)
	if len(jt.Spans) == 0 {
		t.Fatal("coordinator timeline empty despite local spans")
	}
	if !timelineHas(jt, "cluster.lease") {
		t.Fatalf("timeline lacks coordinator lease spans: %+v", jt.Stages)
	}
}

// TestClusterTraceTimeline is the tracing happy path: after a clean sweep
// through the fabric, the coordinator job's trace holds one trace ID shared
// by coordinator-local spans and the span batches pulled from both workers,
// and the fleet status surface reports the settled cluster.
func TestClusterTraceTimeline(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	f := startFabric(t, 2, nil)
	const n = 8
	st := submitAndWait(t, f.frontTS.URL, serve.SweepRequest{Points: hopfPoints(n, 600), Workers: 2})
	assertAllOK(t, st, n)

	jt := fetchTrace(t, f.frontTS.URL, st.ID)
	if jt.TraceID == "" {
		t.Fatal("job has no trace ID")
	}
	for _, name := range []string{"serve.job", "cluster.lease", "cluster.attempt", "sweep.Run", "sweep.attempt"} {
		if !timelineHas(jt, name) {
			t.Fatalf("timeline lacks %q spans; stages: %+v", name, jt.Stages)
		}
	}
	// Worker jobs re-emit their own serve.job root: the merged timeline holds
	// the coordinator's plus at least one per dispatched lease.
	roots := 0
	for _, ev := range jt.Spans {
		if ev.Trace != jt.TraceID {
			t.Fatalf("span %q carries trace %q, want %q — one trace end to end", ev.Name, ev.Trace, jt.TraceID)
		}
		if ev.Type == "span" && ev.Name == "serve.job" {
			roots++
		}
	}
	if roots < 2 {
		t.Fatalf("serve.job spans = %d, want >= 2 (coordinator + worker jobs)", roots)
	}
	if got := reg.Snapshot().Counter("pn_cluster_trace_pulls_total", "ok"); got < 1 {
		t.Fatalf("ok trace pulls = %d, want >= 1", got)
	}

	// The settled fleet: both workers healthy, breakers closed, no live leases.
	workers, leases := f.coord.Status()
	if len(workers) != 2 {
		t.Fatalf("status reports %d workers, want 2", len(workers))
	}
	for _, w := range workers {
		if !w.Healthy || w.Quarantined || w.Breaker != BreakerClosed || w.ActiveLeases != 0 {
			t.Fatalf("settled worker in bad state: %+v", w)
		}
	}
	if len(leases) != 0 {
		t.Fatalf("settled cluster reports %d live leases: %+v", len(leases), leases)
	}
}

// fetchTrace pulls a job's merged timeline from a front server.
func fetchTrace(t *testing.T, base, id string) serve.JobTrace {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	jt, err := pnclient.New(base, nil, fastRetry).Trace(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return jt
}

// timelineHas reports whether any span event in jt carries the given name.
func timelineHas(jt serve.JobTrace, name string) bool {
	for _, ev := range jt.Spans {
		if ev.Type == "span" && ev.Name == name {
			return true
		}
	}
	return false
}

// TestChaosClusterFlakyTransport makes every coordinator->worker HTTP
// request fail with 20% probability (pnclient.http): submissions, renewals,
// status fetches. The client's retry/backoff plus the lease machinery must
// absorb all of it.
func TestChaosClusterFlakyTransport(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)
	defer faultinject.Enable(faultinject.Plan{
		faultinject.PnclientHTTP: {Mode: faultinject.ModeError, Prob: 0.2, Seed: 7},
	})()

	f := startFabric(t, 2, nil)
	const n = 8
	st := submitAndWait(t, f.frontTS.URL, serve.SweepRequest{Points: hopfPoints(n, 400), Workers: 2})
	assertAllOK(t, st, n)

	if stats := faultinject.Stats()[faultinject.PnclientHTTP]; stats.Fired == 0 {
		t.Fatal("transport fault never fired; the test exercised nothing")
	}
	if got := reg.Snapshot().Counter("pn_core_characterisations_total", "ok"); got != n {
		t.Fatalf("characterisations = %d, want exactly %d", got, n)
	}
}
