package cluster

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the suite on leaked goroutines — probers that outlive
// Close, heartbeat loops that outlive their lease, watch streams blocked
// past job completion.
func TestMain(m *testing.M) { leakcheck.Main(m) }
