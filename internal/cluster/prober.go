package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// ProbeConfig tunes the background health prober.
type ProbeConfig struct {
	// Every is the probe period per worker (default 1s).
	Every time.Duration
	// Timeout bounds one probe request (default 2s).
	Timeout time.Duration
	// FlapWindow and FlapMax define flapping: more than FlapMax
	// healthy<->unhealthy transitions inside FlapWindow quarantines the
	// worker (defaults 10s and 4). A flapping worker passes every naive
	// point-in-time check and still loses half the leases it accepts;
	// quarantine keeps it out of routing until it holds still.
	FlapWindow time.Duration
	FlapMax    int
	// Quarantine is how long a flapping worker is benched (default 5s).
	Quarantine time.Duration
	// now is the injectable clock for tests (default time.Now).
	now func() time.Time
}

func (c ProbeConfig) withDefaults() ProbeConfig {
	if c.Every <= 0 {
		c.Every = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = 10 * time.Second
	}
	if c.FlapMax <= 0 {
		c.FlapMax = 4
	}
	if c.Quarantine <= 0 {
		c.Quarantine = 5 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// workerHealth is one worker's probe state.
type workerHealth struct {
	healthy     bool
	known       bool        // at least one probe completed
	transitions []time.Time // recent healthy<->unhealthy flips
	benchedTill time.Time   // quarantined until (zero = not benched)
}

// prober polls every worker's /readyz and tracks health plus flap
// quarantine. Workers start optimistically healthy — leases must flow before
// the first probe round lands — and the routing filter consults Healthy.
type prober struct {
	cfg     ProbeConfig
	httpc   *http.Client
	logf    func(string, ...any)
	mu      sync.Mutex
	workers map[string]*workerHealth
}

func newProber(workers []string, cfg ProbeConfig, httpc *http.Client, logf func(string, ...any)) *prober {
	p := &prober{cfg: cfg.withDefaults(), httpc: httpc, logf: logf, workers: make(map[string]*workerHealth, len(workers))}
	if p.httpc == nil {
		p.httpc = http.DefaultClient
	}
	for _, w := range workers {
		p.workers[w] = &workerHealth{healthy: true}
	}
	return p
}

// Healthy reports whether the worker should receive leases: not known-down
// and not quarantined for flapping.
func (p *prober) Healthy(worker string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	wh, ok := p.workers[worker]
	if !ok {
		return false
	}
	if !wh.benchedTill.IsZero() && p.cfg.now().Before(wh.benchedTill) {
		return false
	}
	return wh.healthy
}

// proberStatus is one worker's health snapshot for the fleet status surface.
type proberStatus struct {
	healthy     bool
	quarantined bool
}

// status snapshots every worker's probe state. healthy is the raw probe view;
// quarantined reports an active flap bench (which also makes Healthy refuse
// leases regardless of the probe result).
func (p *prober) status() map[string]proberStatus {
	now := p.cfg.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]proberStatus, len(p.workers))
	for w, wh := range p.workers {
		out[w] = proberStatus{
			healthy:     wh.healthy,
			quarantined: !wh.benchedTill.IsZero() && now.Before(wh.benchedTill),
		}
	}
	return out
}

// run probes all workers forever at the configured period, until ctx ends.
func (p *prober) run(ctx context.Context) {
	tick := time.NewTicker(p.cfg.Every)
	defer tick.Stop()
	for {
		p.probeAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

func (p *prober) probeAll(ctx context.Context) {
	p.mu.Lock()
	targets := make([]string, 0, len(p.workers))
	for w := range p.workers {
		targets = append(targets, w)
	}
	p.mu.Unlock()
	var wg sync.WaitGroup
	for _, w := range targets {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			p.observe(w, p.probeOne(ctx, w))
		}(w)
	}
	wg.Wait()
}

// probeOne reports whether the worker answered /readyz with 200.
func (p *prober) probeOne(ctx context.Context, worker string) bool {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := p.httpc.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// observe folds one probe result into the worker's state, benching it when
// the recent transition count says it is flapping.
func (p *prober) observe(worker string, healthy bool) {
	now := p.cfg.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	wh, ok := p.workers[worker]
	if !ok {
		return
	}
	if wh.known && healthy != wh.healthy {
		wh.transitions = append(wh.transitions, now)
		// Keep only flips inside the window.
		cut := 0
		for cut < len(wh.transitions) && now.Sub(wh.transitions[cut]) > p.cfg.FlapWindow {
			cut++
		}
		wh.transitions = wh.transitions[cut:]
		if len(wh.transitions) > p.cfg.FlapMax && (wh.benchedTill.IsZero() || !now.Before(wh.benchedTill)) {
			wh.benchedTill = now.Add(p.cfg.Quarantine)
			clusterMetrics.Get().quarantines.Inc()
			if p.logf != nil {
				p.logf("cluster: worker %s is flapping (%d transitions in %v), quarantined for %v", worker, len(wh.transitions), p.cfg.FlapWindow, p.cfg.Quarantine)
			}
		}
	}
	wh.healthy = healthy
	wh.known = true
}
