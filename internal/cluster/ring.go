package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring routes content-addressed point fingerprints to workers with a
// consistent hash: each worker owns many virtual nodes on a 64-bit circle,
// and a key belongs to the first vnode at or after its hash. Identical points
// therefore always route to the same worker — which is what turns lease
// reassignment into cache hits — and adding or removing one worker only
// remaps the keys that worker owned, not the whole sweep.
//
// When the ring-chosen primary is unhealthy, Route falls back to
// highest-random-weight (rendezvous) hashing over the healthy subset: still
// deterministic per key, still evenly spread, and independent of the vnode
// layout so a dead primary's keys scatter across the survivors instead of
// dog-piling its ring successor.
type Ring struct {
	workers []string
	vnodes  []vnode // sorted by hash
}

type vnode struct {
	h uint64
	w int // index into workers
}

// NewRing builds a ring over the worker base URLs with vnodesPerWorker
// virtual nodes each (default 64 when <= 0).
func NewRing(workers []string, vnodesPerWorker int) *Ring {
	if vnodesPerWorker <= 0 {
		vnodesPerWorker = 64
	}
	r := &Ring{workers: append([]string(nil), workers...)}
	for wi, w := range r.workers {
		for v := 0; v < vnodesPerWorker; v++ {
			r.vnodes = append(r.vnodes, vnode{h: hash64(w + "#" + strconv.Itoa(v)), w: wi})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].h < r.vnodes[j].h })
	return r
}

// Workers returns the ring's member list in construction order.
func (r *Ring) Workers() []string { return r.workers }

// Primary returns the ring owner of key ("" for an empty ring), ignoring
// health: it is the stable home a healthy worker set converges back to.
func (r *Ring) Primary(key string) string {
	if len(r.vnodes) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].h >= h })
	if i == len(r.vnodes) {
		i = 0 // wrap: the circle has no end
	}
	return r.workers[r.vnodes[i].w]
}

// Route returns the worker for key among those passing the healthy filter:
// the ring primary when it is healthy, otherwise the rendezvous choice over
// the healthy subset. ok is false when no worker is healthy.
func (r *Ring) Route(key string, healthy func(string) bool) (string, bool) {
	if p := r.Primary(key); p != "" && (healthy == nil || healthy(p)) {
		return p, true
	}
	var alive []string
	for _, w := range r.workers {
		if healthy == nil || healthy(w) {
			alive = append(alive, w)
		}
	}
	if len(alive) == 0 {
		return "", false
	}
	return Rendezvous(key, alive), true
}

// Preference returns every worker ordered by routing preference for key: the
// ring primary first, then the rest by descending rendezvous weight. The
// dispatcher walks this list until a worker accepts the lease, so retries are
// deterministic per key rather than random.
func (r *Ring) Preference(key string) []string {
	out := make([]string, 0, len(r.workers))
	primary := r.Primary(key)
	if primary != "" {
		out = append(out, primary)
	}
	rest := make([]string, 0, len(r.workers))
	for _, w := range r.workers {
		if w != primary {
			rest = append(rest, w)
		}
	}
	sort.SliceStable(rest, func(i, j int) bool {
		return rendezvousWeight(key, rest[i]) > rendezvousWeight(key, rest[j])
	})
	return append(out, rest...)
}

// Rendezvous returns the highest-random-weight worker for key among workers
// ("" when the slice is empty). Deterministic, and removing one worker never
// remaps keys between the survivors.
func Rendezvous(key string, workers []string) string {
	var best string
	var bestW uint64
	for _, w := range workers {
		if s := rendezvousWeight(key, w); best == "" || s > bestW || (s == bestW && w < best) {
			best, bestW = w, s
		}
	}
	return best
}

func rendezvousWeight(key, worker string) uint64 {
	return hash64(worker + "\x00" + key)
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
