package cluster

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/serve"
)

// lease is one unit of work handed to a worker: a contiguous chunk of the
// job's points that all route to the same ring primary. The coordinator owns
// the lease record; the worker only sees a plain sweep job whose
// LeaseTTLMS obliges the coordinator to keep heartbeating it.
type lease struct {
	id      int
	indices []int             // global point indices, in job order
	specs   []serve.PointSpec // the points, index-aligned with indices
	key     string            // routing key (the first point's fingerprint)
	attempt int               // dispatch attempt; part of the idempotency key
	worker  string            // preferred worker (journal replay), may be ""
}

// idemKey is the lease's deterministic Idempotency-Key for this attempt:
// derived from the coordinator job ID (stable across coordinator restarts —
// the job journal preserves the ID space), the lease ID, and the attempt
// counter. A restarted coordinator re-submitting attempt N therefore
// deduplicates onto the worker job attempt N already created, while a
// reassignment (attempt N+1) is a deliberate new submission whose completed
// points come back as cache hits.
func (l *lease) idemKey(jobID string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("pnlease1|%s|%d|%d", jobID, l.id, l.attempt)))
	return "pnlease1-" + hex.EncodeToString(sum[:16])
}

// WAL record types, in lease lifecycle order.
const (
	walDispatch = "dispatch" // lease submitted to a worker
	walComplete = "complete" // worker job terminal-done, results folded in
	walFallback = "fallback" // lease ran in-process (degraded mode)
)

// walRecord is one line of the coordinator's per-job lease journal.
type walRecord struct {
	Type      string `json:"type"`
	Lease     int    `json:"lease"`
	Attempt   int    `json:"attempt"`
	Worker    string `json:"worker,omitempty"`
	WorkerJob string `json:"worker_job,omitempty"`
}

// leaseWAL is the append-only lease journal for one coordinator job. It is
// an optimisation, not a correctness requirement: after a coordinator crash
// the replayed job re-derives the same leases and idempotency keys from the
// job ID, and the WAL only short-circuits worker choice (re-dispatch to the
// worker that already holds the lease) and resumes the attempt counter.
// Writes are best-effort — a failed append degrades resume quality, never
// the run.
type leaseWAL struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// openLeaseWAL opens (creating if needed) the lease journal for jobID under
// dir and returns the replayed records in append order. Corrupt lines — a
// torn tail from a crash mid-append — are skipped, not fatal. An empty dir
// disables journalling (nil WAL, safe to append to).
func openLeaseWAL(dir, jobID string) (*leaseWAL, []walRecord, error) {
	if dir == "" {
		return nil, nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	path := filepath.Join(dir, jobID+".leases.jsonl")
	var recs []walRecord
	if prev, err := os.ReadFile(path); err == nil {
		sc := bufio.NewScanner(bytes.NewReader(prev))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			var rec walRecord
			if json.Unmarshal(sc.Bytes(), &rec) == nil && rec.Type != "" {
				recs = append(recs, rec)
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &leaseWAL{f: f, w: bufio.NewWriter(f)}, recs, nil
}

// append writes one record and syncs it to disk. Nil-safe and best-effort.
func (w *leaseWAL) append(rec walRecord) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if b, err := json.Marshal(rec); err == nil {
		w.w.Write(b)
		w.w.WriteByte('\n')
		w.w.Flush()
		w.f.Sync()
	}
}

// Close flushes and closes the journal. Nil-safe.
func (w *leaseWAL) Close() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.Flush()
	w.f.Close()
}

// remove deletes the journal file once the job is terminal: its leases can
// never be resumed again, so the record is dead weight. Nil-safe.
func (w *leaseWAL) remove() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.w.Flush()
	w.f.Close()
	os.Remove(w.f.Name())
}
