package cluster

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestBreakerLifecycle drives the full state machine with a fake clock:
// closed → (threshold failures) → open → (cooldown) → half-open probe →
// failure doubles the cooldown → eventual success closes and resets.
func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, MaxCooldown: 4 * time.Second, now: clk.now})

	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("new breaker is not closed/allowing")
	}
	// A success resets the failure streak.
	b.Fail()
	b.Fail()
	b.Success()
	b.Fail()
	if b.State() != BreakerClosed {
		t.Fatalf("state %q after a broken streak, want closed", b.State())
	}
	// Three consecutive failures trip it: the streak is at 1.
	if b.Fail() {
		t.Fatal("tripped one failure early")
	}
	if !b.Fail() {
		t.Fatal("threshold failure did not report the trip")
	}
	if b.State() != BreakerOpen || b.Allow() || b.Ready() {
		t.Fatalf("tripped breaker: state=%q, still admitting", b.State())
	}

	// Cooldown elapses: exactly one probe is admitted.
	clk.advance(1100 * time.Millisecond)
	if b.State() != BreakerHalfOpen || !b.Ready() {
		t.Fatalf("post-cooldown state %q, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open admitted a second concurrent probe")
	}

	// Probe fails: re-open with doubled cooldown (2s).
	b.Fail()
	if b.State() != BreakerOpen {
		t.Fatalf("state %q after failed probe, want open", b.State())
	}
	clk.advance(1100 * time.Millisecond)
	if b.Ready() || b.Allow() {
		t.Fatal("re-opened breaker admitted before the doubled cooldown")
	}
	clk.advance(time.Second) // 2.1s total > 2s
	if !b.Allow() {
		t.Fatal("probe refused after the doubled cooldown")
	}

	// Probe succeeds: closed again, cooldown reset to the base.
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("success did not close the breaker")
	}
	b.Fail()
	b.Fail()
	b.Fail()
	clk.advance(1100 * time.Millisecond) // base cooldown again, not 4s
	if !b.Allow() {
		t.Fatal("cooldown was not reset by the successful probe")
	}
	// Cooldown doubling caps at MaxCooldown.
	for i := 0; i < 6; i++ {
		b.Fail()
		clk.advance(5 * time.Second) // > MaxCooldown always re-admits
		if !b.Allow() {
			t.Fatalf("probe %d refused after MaxCooldown", i)
		}
	}
}
