package cluster

import (
	"fmt"
	"testing"
)

func ringWorkers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return out
}

func ringKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("pnfp1:%08x", i*2654435761)
	}
	return out
}

// TestRingDeterministicAndBalanced: same key always routes to the same
// worker, and a realistic key population spreads over every worker.
func TestRingDeterministicAndBalanced(t *testing.T) {
	workers := ringWorkers(4)
	r := NewRing(workers, 0)
	counts := map[string]int{}
	for _, k := range ringKeys(1000) {
		w := r.Primary(k)
		if w2 := NewRing(workers, 0).Primary(k); w2 != w {
			t.Fatalf("key %q routed to %q then %q", k, w, w2)
		}
		counts[w]++
	}
	for _, w := range workers {
		if counts[w] == 0 {
			t.Fatalf("worker %s received no keys: %v", w, counts)
		}
	}
}

// TestRingConsistency: marking one worker unhealthy only remaps the keys it
// owned; every other key keeps its primary.
func TestRingConsistency(t *testing.T) {
	workers := ringWorkers(4)
	r := NewRing(workers, 0)
	dead := workers[2]
	healthy := func(w string) bool { return w != dead }
	moved := 0
	for _, k := range ringKeys(1000) {
		before := r.Primary(k)
		after, ok := r.Route(k, healthy)
		if !ok {
			t.Fatalf("route found no worker for %q", k)
		}
		if after == dead {
			t.Fatalf("key %q routed to the dead worker", k)
		}
		if before != dead && after != before {
			t.Fatalf("key %q moved from healthy primary %q to %q", k, before, after)
		}
		if before == dead {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: dead worker owned no keys")
	}
}

// TestRendezvousStability: HRW is deterministic, covers all workers, and
// removing one worker never remaps a key between two survivors.
func TestRendezvousStability(t *testing.T) {
	workers := ringWorkers(5)
	counts := map[string]int{}
	for _, k := range ringKeys(500) {
		w := Rendezvous(k, workers)
		counts[w]++
		// Removing any non-winner must leave the winner unchanged.
		for drop := range workers {
			if workers[drop] == w {
				continue
			}
			sub := make([]string, 0, len(workers)-1)
			for i, o := range workers {
				if i != drop {
					sub = append(sub, o)
				}
			}
			if got := Rendezvous(k, sub); got != w {
				t.Fatalf("removing non-winner %q remapped %q from %q to %q", workers[drop], k, w, got)
			}
		}
	}
	for _, w := range workers {
		if counts[w] == 0 {
			t.Fatalf("rendezvous starved worker %s: %v", w, counts)
		}
	}
}

// TestRingPreferenceOrder: the preference list starts at the primary,
// contains every worker exactly once, and is deterministic.
func TestRingPreferenceOrder(t *testing.T) {
	workers := ringWorkers(4)
	r := NewRing(workers, 0)
	for _, k := range ringKeys(50) {
		p := r.Preference(k)
		if len(p) != len(workers) {
			t.Fatalf("preference list has %d entries, want %d", len(p), len(workers))
		}
		if p[0] != r.Primary(k) {
			t.Fatalf("preference[0] = %q, primary = %q", p[0], r.Primary(k))
		}
		seen := map[string]bool{}
		for _, w := range p {
			if seen[w] {
				t.Fatalf("worker %q appears twice in preference list", w)
			}
			seen[w] = true
		}
	}
	if got, ok := NewRing(nil, 0).Route("k", nil); ok || got != "" {
		t.Fatalf("empty ring routed to %q", got)
	}
}
