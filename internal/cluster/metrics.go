package cluster

import "repro/internal/obs"

// clusterInstruments are the coordinator metrics: lease flow by outcome,
// breaker and prober interventions, heartbeat health, and the degraded
// in-process fallback count.
type clusterInstruments struct {
	leases       *obs.CounterVec // pn_cluster_leases_total{outcome}
	heartbeats   *obs.CounterVec // pn_cluster_heartbeats_total{outcome}
	breakerTrips *obs.Counter    // pn_cluster_breaker_trips_total
	quarantines  *obs.Counter    // pn_cluster_quarantines_total
	fallbackRuns *obs.Counter    // pn_cluster_fallback_leases_total
	dupPoints    *obs.Counter    // pn_cluster_duplicate_points_total
	tracePulls   *obs.CounterVec // pn_cluster_trace_pulls_total{outcome}
	flightDumps  *obs.Counter    // pn_cluster_flight_dumps_total
}

var clusterMetrics = obs.NewView(func(r *obs.Registry) *clusterInstruments {
	return &clusterInstruments{
		leases:       r.CounterVec("pn_cluster_leases_total", "Lease transitions at the coordinator, by outcome (dispatched, completed, requeued, fallback).", "outcome"),
		heartbeats:   r.CounterVec("pn_cluster_heartbeats_total", "Lease renewals at the coordinator, by outcome (sent, dropped, failed).", "outcome"),
		breakerTrips: r.Counter("pn_cluster_breaker_trips_total", "Worker circuit breakers tripped open by consecutive failures."),
		quarantines:  r.Counter("pn_cluster_quarantines_total", "Workers quarantined by the prober for flapping."),
		fallbackRuns: r.Counter("pn_cluster_fallback_leases_total", "Leases run in-process because no worker was usable."),
		dupPoints:    r.Counter("pn_cluster_duplicate_points_total", "Per-point completions discarded as duplicates when merging worker streams."),
		tracePulls:   r.CounterVec("pn_cluster_trace_pulls_total", "Worker trace pulls at the coordinator, by outcome (ok, failed).", "outcome"),
		flightDumps:  r.Counter("pn_cluster_flight_dumps_total", "Coordinator flight-recorder dumps attached to requeued or abandoned lease attempts."),
	}
})
