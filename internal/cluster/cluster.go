// Package cluster is the multi-node sweep fabric: a coordinator that splits
// a sweep job into point-range leases and hands them to plain pnserve worker
// nodes, surviving every way a worker can die mid-lease.
//
// The design leans on three existing mechanisms instead of inventing new
// ones:
//
//   - Exactly-once effect comes from the content-addressed result cache, not
//     from delivery guarantees. Leases are reassigned at-least-once; points a
//     dead worker already finished come back as cache hits on the shared
//     "pnfp1" fingerprints, so re-execution costs a disk read, and
//     pn_core_characterisations_total counts each point once fleet-wide.
//   - Lease liveness is symmetric. The coordinator heartbeats every leased
//     worker job (POST /v1/jobs/{id}/renew); a worker whose coordinator dies
//     self-cancels the orphaned job when the TTL lapses, and a coordinator
//     whose worker dies notices the dropped event stream and reassigns.
//   - Idempotency keys make retries and coordinator restarts safe. A lease's
//     key is derived from (job ID, lease ID, attempt), all stable across
//     restarts, so a replayed coordinator re-submits into the worker's
//     journal-backed idempotency map and deduplicates onto the job it
//     already created.
//
// Routing is a consistent-hash ring over point fingerprints with rendezvous
// fallback (see Ring); per-worker circuit breakers and a flap-quarantining
// health prober keep leases away from dead or unstable workers; and when no
// worker is usable at all the coordinator degrades to running leases
// in-process through internal/sweep, so a cluster of zero healthy workers
// still answers — slowly, with a logged warning — rather than failing.
package cluster

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/pnclient"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// Config configures a Coordinator.
type Config struct {
	// Workers are the worker base URLs (e.g. "http://10.0.0.7:8080"). Empty
	// means every job degrades to the in-process fallback.
	Workers []string
	// LeasePoints is the maximum points per lease (default 8). Smaller
	// leases reassign less work on worker death; larger ones amortise
	// dispatch overhead.
	LeasePoints int
	// LeaseTTL is the worker-side self-cancel window; the coordinator must
	// renew within every TTL (default 10s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the renewal period (default LeaseTTL/3).
	HeartbeatEvery time.Duration
	// MaxAttempts bounds dispatch attempts per lease before it falls back
	// to the in-process path (default 2*len(Workers)+2).
	MaxAttempts int
	// VNodes is the ring's virtual nodes per worker (default 64).
	VNodes int
	// Retry is the per-request client retry policy (zero value = pnclient
	// defaults).
	Retry pnclient.Retry
	// Breaker and Probe tune the per-worker circuit breakers and the
	// background health prober.
	Breaker BreakerConfig
	Probe   ProbeConfig
	// WALDir, when non-empty, holds per-job lease journals so a restarted
	// coordinator re-dispatches to the workers already holding its leases.
	WALDir string
	// Cache is the shared result store used by the in-process fallback
	// path (nil = no cache).
	Cache *cache.Store
	// HTTP is the client used for worker requests and probes (nil =
	// http.DefaultClient).
	HTTP *http.Client
	// Logf receives warnings (worker quarantined, degraded fallback);
	// default log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.LeasePoints <= 0 {
		c.LeasePoints = 8
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTTL / 3
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2*len(c.Workers) + 2
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Coordinator fans a sweep job out to worker nodes as leases. It implements
// serve.SweepRunner, so a pnserve started in coordinator mode keeps its
// entire front-door lifecycle — journal, SSE progress, idempotency, budget
// — and only the execution is remote.
type Coordinator struct {
	cfg      Config
	ring     *Ring
	clients  map[string]*pnclient.Client
	breakers map[string]*Breaker
	prober   *prober
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	// fallbackMu serialises in-process fallback leases so a fully degraded
	// job runs its leases one after another instead of oversubscribing the
	// local CPU len(leases)-fold.
	fallbackMu sync.Mutex

	// leaseMu guards active, the live-lease registry backing Status.
	leaseMu sync.Mutex
	active  map[string]*activeLease
}

// activeLease is one in-flight lease as shown by the status surface.
type activeLease struct {
	jobID   string
	lease   int
	attempt int
	worker  string // a worker URL, or "local" for an in-process fallback
	points  int
	since   time.Time
}

// trackLease registers (or refreshes, on re-dispatch) a live lease.
func (c *Coordinator) trackLease(jobID string, leaseID, attempt int, worker string, points int) {
	key := fmt.Sprintf("%s|%d", jobID, leaseID)
	c.leaseMu.Lock()
	if c.active == nil {
		c.active = make(map[string]*activeLease)
	}
	if al, ok := c.active[key]; ok {
		al.attempt, al.worker = attempt, worker
	} else {
		c.active[key] = &activeLease{jobID: jobID, lease: leaseID, attempt: attempt, worker: worker, points: points, since: time.Now()}
	}
	c.leaseMu.Unlock()
}

// untrackLease drops a settled lease from the registry.
func (c *Coordinator) untrackLease(jobID string, leaseID int) {
	c.leaseMu.Lock()
	delete(c.active, fmt.Sprintf("%s|%d", jobID, leaseID))
	c.leaseMu.Unlock()
}

// Status snapshots the fleet for the live status surface: every configured
// worker's probe health, flap quarantine, breaker phase and live lease count,
// plus the in-flight leases themselves. Wire it into serve.Config.ClusterStatus
// to expose it as GET /v1/cluster/status.
func (c *Coordinator) Status() ([]serve.WorkerStatus, []serve.LeaseStatus) {
	now := time.Now()
	c.leaseMu.Lock()
	leases := make([]serve.LeaseStatus, 0, len(c.active))
	perWorker := make(map[string]int, len(c.cfg.Workers))
	for _, al := range c.active {
		perWorker[al.worker]++
		leases = append(leases, serve.LeaseStatus{
			JobID:   al.jobID,
			Lease:   al.lease,
			Attempt: al.attempt,
			Worker:  al.worker,
			Points:  al.points,
			AgeMS:   float64(now.Sub(al.since)) / 1e6,
		})
	}
	c.leaseMu.Unlock()
	sort.Slice(leases, func(i, j int) bool {
		if leases[i].JobID != leases[j].JobID {
			return leases[i].JobID < leases[j].JobID
		}
		return leases[i].Lease < leases[j].Lease
	})
	health := c.prober.status()
	workers := make([]serve.WorkerStatus, 0, len(c.cfg.Workers))
	for _, w := range c.cfg.Workers {
		ws := serve.WorkerStatus{URL: w, ActiveLeases: perWorker[w]}
		if h, ok := health[w]; ok {
			ws.Healthy = h.healthy
			ws.Quarantined = h.quarantined
		}
		if b := c.breakers[w]; b != nil {
			ws.Breaker = b.State()
		}
		workers = append(workers, ws)
	}
	return workers, leases
}

// New builds a coordinator and starts its health prober. Call Close when
// done.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		ring:     NewRing(cfg.Workers, cfg.VNodes),
		clients:  make(map[string]*pnclient.Client, len(cfg.Workers)),
		breakers: make(map[string]*Breaker, len(cfg.Workers)),
	}
	for _, w := range cfg.Workers {
		c.clients[w] = pnclient.New(w, cfg.HTTP, cfg.Retry)
		c.breakers[w] = NewBreaker(cfg.Breaker)
	}
	c.prober = newProber(cfg.Workers, cfg.Probe, cfg.HTTP, cfg.Logf)
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	if len(cfg.Workers) > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.prober.run(ctx)
		}()
	}
	return c
}

// Close stops the health prober. In-flight RunSweep calls are unaffected —
// they stop through their own budget tokens.
func (c *Coordinator) Close() {
	c.cancel()
	c.wg.Wait()
}

// fail records a failed worker call on its breaker.
func (c *Coordinator) fail(worker string) {
	if b := c.breakers[worker]; b != nil && b.Fail() {
		clusterMetrics.Get().breakerTrips.Inc()
		c.cfg.Logf("cluster: circuit breaker tripped for worker %s", worker)
	}
}

// ok records a successful worker call on its breaker.
func (c *Coordinator) ok(worker string) {
	if b := c.breakers[worker]; b != nil {
		b.Success()
	}
}

// pickWorker chooses a worker for the lease: its journalled previous holder
// first, then the ring preference order, skipping unhealthy (prober) and
// tripped (breaker) workers. The chosen breaker slot is claimed via Allow.
func (c *Coordinator) pickWorker(l *lease) (string, bool) {
	prefs := c.ring.Preference(l.key)
	if l.worker != "" {
		ordered := make([]string, 0, len(prefs)+1)
		ordered = append(ordered, l.worker)
		for _, w := range prefs {
			if w != l.worker {
				ordered = append(ordered, w)
			}
		}
		prefs = ordered
	}
	for _, w := range prefs {
		if !c.prober.Healthy(w) {
			continue
		}
		if b := c.breakers[w]; b != nil && b.Allow() {
			return w, true
		}
	}
	return "", false
}

// jobRun is the per-job state of one RunSweep call.
type jobRun struct {
	coord *Coordinator
	req   serve.RunnerRequest
	wal   *leaseWAL

	mu       sync.Mutex
	stored   []bool // final result delivered to OnResult for this global index
	reported []bool // summary forwarded to OnSummary for this global index
}

// RunSweep implements serve.SweepRunner: lease out the points, supervise the
// leases, merge the worker streams, and stream each point's final result
// through req.OnResult/OnSummary as its lease settles. The coordinator holds
// per-point booleans, never the payloads — the serving layer spills them.
func (c *Coordinator) RunSweep(req serve.RunnerRequest) error {
	n := len(req.Specs)
	run := &jobRun{
		coord:    c,
		req:      req,
		stored:   make([]bool, n),
		reported: make([]bool, n),
	}
	if n == 0 {
		return nil
	}

	// The lease machinery runs on a context that trips with the job's
	// budget token, so cancellation/timeout propagates into every worker
	// call and event stream.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-req.Tok.Done():
			cancel()
		case <-ctx.Done():
		}
	}()

	leases := run.buildLeases()

	wal, recs, err := openLeaseWAL(c.cfg.WALDir, req.JobID)
	if err != nil {
		c.cfg.Logf("cluster: lease journal unavailable for job %s (%v); running without resume state", req.JobID, err)
	}
	run.wal = wal
	// Resume: the latest dispatch record per lease pins the attempt counter
	// (so the idempotency key matches the worker job already created) and
	// the preferred worker. Leases that were dispatched but never settled
	// before the crash get a "flight" marker in the job's timeline — the
	// trace's record of why the lease restarts mid-attempt.
	inflight := make(map[int]walRecord)
	for _, r := range recs {
		if r.Lease < 0 || r.Lease >= len(leases) {
			continue
		}
		switch r.Type {
		case walDispatch:
			leases[r.Lease].attempt = r.Attempt
			leases[r.Lease].worker = r.Worker
			inflight[r.Lease] = r
		case walComplete, walFallback:
			delete(inflight, r.Lease)
		}
	}
	if req.IngestTrace != nil && len(inflight) > 0 {
		evs := make([]obs.Event, 0, len(inflight))
		for _, rec := range inflight {
			evs = append(evs, obs.Event{
				Type:    "flight",
				Name:    "cluster.lease.resumed",
				StartNS: time.Now().UnixNano(),
				Attrs: map[string]any{
					"lease":      rec.Lease,
					"attempt":    rec.Attempt,
					"worker":     rec.Worker,
					"worker_job": rec.WorkerJob,
				},
			})
		}
		req.IngestTrace(evs)
	}

	var wg sync.WaitGroup
	for _, l := range leases {
		wg.Add(1)
		go func(l *lease) {
			defer wg.Done()
			run.runLease(ctx, l)
		}(l)
	}
	wg.Wait()

	if err := req.Tok.Err(); err != nil {
		wal.Close()
		return err
	}
	wal.remove() // terminal: the leases can never be resumed again
	return nil
}

// buildLeases groups the job's points by ring primary and chunks each group
// into LeasePoints-sized leases. The construction is deterministic in the
// job's specs and the worker list, so a restarted coordinator derives the
// identical lease IDs — which the idempotency keys depend on. With no
// workers, everything lands in one fallback lease.
func (r *jobRun) buildLeases() []*lease {
	c := r.coord
	type group struct {
		indices []int
		keys    []string
	}
	order := append([]string(nil), c.ring.Workers()...)
	groups := make(map[string]*group, len(order)+1)
	for i, sp := range r.req.Specs {
		key := sp.RoutingKey()
		home := c.ring.Primary(key)
		g := groups[home]
		if g == nil {
			g = &group{}
			groups[home] = g
			if home == "" {
				order = append(order, "")
			}
		}
		g.indices = append(g.indices, i)
		g.keys = append(g.keys, key)
	}
	var leases []*lease
	for _, w := range order {
		g := groups[w]
		if g == nil {
			continue
		}
		for start := 0; start < len(g.indices); start += c.cfg.LeasePoints {
			end := min(start+c.cfg.LeasePoints, len(g.indices))
			l := &lease{id: len(leases), key: g.keys[start]}
			for _, gi := range g.indices[start:end] {
				l.indices = append(l.indices, gi)
				l.specs = append(l.specs, r.req.Specs[gi])
			}
			leases = append(leases, l)
		}
	}
	return leases
}

// clusterFlightCap bounds the per-attempt flight-recorder ring on the
// coordinator side.
const clusterFlightCap = 64

// runLease drives one lease to completion: dispatch to a worker, supervise
// it, and on any failure requeue with the next attempt's idempotency key —
// falling back to the in-process path when no worker will take it.
//
// Each dispatch attempt runs under its own span whose context rides the
// Traceparent header into the worker submission, so the worker job's spans
// join the coordinator job's trace with the attempt span as remote parent. A
// per-attempt flight-recorder ring captures the attempt's local subtree;
// when the attempt is requeued or abandoned, the ring plus a "flight" marker
// is folded into the job's timeline — the post-mortem of the crashed attempt.
func (r *jobRun) runLease(ctx context.Context, l *lease) {
	c := r.coord
	m := clusterMetrics.Get()
	lsp := obs.StartSpan(r.req.Span, "cluster.lease")
	lsp.SetAttr("lease", l.id)
	lsp.SetAttr("points", len(l.indices))
	defer lsp.End()
	defer c.untrackLease(r.req.JobID, l.id)
	for ; ; l.attempt++ {
		if ctx.Err() != nil {
			r.abandonLease(l)
			return
		}
		if l.attempt >= c.cfg.MaxAttempts {
			c.cfg.Logf("cluster: lease %d of job %s exhausted %d dispatch attempts", l.id, r.req.JobID, l.attempt)
			r.fallbackLease(l, lsp)
			return
		}
		w, ok := c.pickWorker(l)
		if !ok {
			r.fallbackLease(l, lsp)
			return
		}
		l.worker = w
		var ring *obs.RingEmitter
		var asp *obs.Span
		if r.req.IngestTrace != nil {
			ring = obs.NewRingEmitter(clusterFlightCap)
			asp = obs.StartSpanOn(obs.Tee(lsp.Emitter(), ring), lsp, "cluster.attempt")
		} else {
			asp = obs.StartSpan(lsp, "cluster.attempt")
		}
		asp.SetAttr("attempt", l.attempt)
		asp.SetAttr("worker", w)
		if err := faultinject.Fire(faultinject.ClusterLeaseDispatch); err != nil {
			c.fail(w)
			m.leases.With("requeued").Inc()
			asp.EndErr(err)
			r.dumpFlight(ring, l, w, "", "dispatch failed")
			continue
		}
		// The attempt span's context rides the submission so the worker job
		// joins this trace (nil span / tracing off: ctx passes unchanged).
		cctx := ctx
		if sc := asp.Context(); sc.Trace != "" {
			cctx = obs.ContextWithSpanContext(ctx, sc)
		}
		st, err := c.clients[w].Sweep(cctx, serve.SweepRequest{
			Points:     l.specs,
			Workers:    r.req.Workers,
			NoCache:    r.req.NoCache,
			LeaseTTLMS: int64(c.cfg.LeaseTTL / time.Millisecond),
		}, l.idemKey(r.req.JobID))
		if err != nil {
			c.fail(w)
			m.leases.With("requeued").Inc()
			asp.EndErr(err)
			r.dumpFlight(ring, l, w, "", "submit failed")
			continue
		}
		c.ok(w)
		c.trackLease(r.req.JobID, l.id, l.attempt, w, len(l.indices))
		r.wal.append(walRecord{Type: walDispatch, Lease: l.id, Attempt: l.attempt, Worker: w, WorkerJob: st.ID})
		m.leases.With("dispatched").Inc()

		if r.superviseLease(ctx, l, w, st.ID) {
			m.leases.With("completed").Inc()
			r.wal.append(walRecord{Type: walComplete, Lease: l.id, Attempt: l.attempt, Worker: w, WorkerJob: st.ID})
			asp.End()
			r.pullWorkerTrace(ctx, w, st.ID)
			return
		}
		if ctx.Err() != nil {
			asp.EndErr(ctx.Err())
			r.dumpFlight(ring, l, w, st.ID, "abandoned")
			r.abandonLease(l)
			return
		}
		// Requeue. Drain the old attempt first — cancel it and wait (bounded)
		// for it to settle — so the replacement never runs the same point
		// concurrently with a dying job: concurrent identical points on one
		// worker would join the dying job's in-flight computations and
		// inherit their budget errors. If the worker is unreachable the
		// lease TTL performs the same cleanup on its own clock.
		m.leases.With("requeued").Inc()
		asp.EndErr(fmt.Errorf("attempt %d on %s requeued", l.attempt, w))
		r.dumpFlight(ring, l, w, st.ID, "requeued")
		c.drainAttempt(ctx, w, st.ID)
		// Best-effort: whatever spans the dying worker job managed to record
		// are still worth having in the timeline.
		r.pullWorkerTrace(ctx, w, st.ID)
	}
}

// dumpFlight folds a crashed attempt's flight-recorder ring into the job's
// timeline, capped with a "flight" marker naming the lease, attempt, worker
// and cause. Live-emitted spans in the ring dedup away on ingest; the marker
// (and anything the timeline had dropped) survives as the crash record.
func (r *jobRun) dumpFlight(ring *obs.RingEmitter, l *lease, worker, workerJob, cause string) {
	if ring == nil || r.req.IngestTrace == nil {
		return
	}
	evs := append(ring.Events(), obs.Event{
		Type:    "flight",
		Name:    "cluster.lease.flight",
		StartNS: time.Now().UnixNano(),
		Attrs: map[string]any{
			"lease":      l.id,
			"attempt":    l.attempt,
			"worker":     worker,
			"worker_job": workerJob,
			"cause":      cause,
		},
	})
	r.req.IngestTrace(evs)
	clusterMetrics.Get().flightDumps.Inc()
}

// pullWorkerTrace ships a worker job's recorded spans into the coordinator
// job's merged timeline. Strictly best-effort observability: the
// cluster.trace.ingest fault point and any transport failure lose the batch
// (counted), never the lease.
func (r *jobRun) pullWorkerTrace(ctx context.Context, w, workerJob string) {
	if r.req.IngestTrace == nil || workerJob == "" {
		return
	}
	c := r.coord
	m := clusterMetrics.Get()
	if err := faultinject.Fire(faultinject.ClusterTraceIngest); err != nil {
		m.tracePulls.With("failed").Inc()
		return
	}
	pctx, cancel := context.WithTimeout(ctx, c.cfg.LeaseTTL)
	jt, err := c.clients[w].Trace(pctx, workerJob)
	cancel()
	if err != nil {
		m.tracePulls.With("failed").Inc()
		return
	}
	r.req.IngestTrace(jt.Spans)
	m.tracePulls.With("ok").Inc()
}

// drainAttempt best-effort cancels a worker job being abandoned by a requeue
// and waits, bounded by the lease TTL, until it is terminal. Every exit path
// is safe — an unreachable worker just costs the bound — but a reachable one
// hands back a worker with no in-flight flights for the lease's points, so
// the re-dispatch starts from clean cache state.
func (c *Coordinator) drainAttempt(ctx context.Context, w, workerJob string) {
	dctx, cancel := context.WithTimeout(context.Background(), c.cfg.LeaseTTL+c.cfg.HeartbeatEvery)
	defer cancel()
	go func() { // release the bound early if the whole job is being torn down
		select {
		case <-ctx.Done():
			cancel()
		case <-dctx.Done():
		}
	}()
	if st, err := c.clients[w].Cancel(dctx, workerJob); err != nil || terminalState(st.State) {
		return
	}
	for dctx.Err() == nil {
		if st, err := c.clients[w].Job(dctx, workerJob, false); err != nil || terminalState(st.State) {
			return
		}
		select {
		case <-dctx.Done():
		case <-time.After(c.cfg.HeartbeatEvery / 4):
		}
	}
}

func terminalState(s string) bool {
	return s == serve.StateDone || s == serve.StateFailed || s == serve.StateCanceled
}

// superviseLease heartbeats the worker job and merges its event stream,
// returning true when the lease finished (results folded in) and false when
// it must be requeued.
func (r *jobRun) superviseLease(ctx context.Context, l *lease, w, workerJob string) bool {
	c := r.coord

	hbCtx, hbCancel := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		c.heartbeat(hbCtx, w, workerJob)
	}()
	defer func() {
		hbCancel()
		hbWG.Wait()
	}()

	// Stream the worker's SSE progress into the coordinator job's own
	// stream. Watch dedups by sequence number within the connection; the
	// reported[] set dedups across reconnects and reassignments, so the
	// merged stream delivers each point at most once.
	watchCtx, watchCancel := context.WithCancel(ctx)
	defer watchCancel()
	var killed atomic.Bool
	werr := c.clients[w].Watch(watchCtx, workerJob, 0, func(ev serve.Event) {
		if err := faultinject.Fire(faultinject.ClusterWorkerKill); err != nil {
			killed.Store(true)
			watchCancel()
			return
		}
		if ev.Type == "point" && ev.Point != nil {
			// Only successful completions are forwarded live. A failure in
			// the stream is provisional — a lease dying of TTL expiry
			// reports its unstarted points as canceled, and those will be
			// re-run by the reassigned lease. Genuine failures surface when
			// the lease settles done and completePoint folds the final
			// results.
			if !ev.Point.OK {
				return
			}
			li := ev.Point.Index
			if li < 0 || li >= len(l.indices) {
				return
			}
			r.forwardSummary(l.indices[li], *ev.Point)
		}
	})
	if killed.Load() {
		c.fail(w)
		return false
	}
	if werr != nil && ctx.Err() == nil {
		c.fail(w)
		return false
	}

	st, err := c.clients[w].Job(ctx, workerJob, false)
	if err != nil {
		if ctx.Err() == nil {
			c.fail(w)
		}
		return false
	}
	switch st.State {
	case serve.StateDone:
		// Pull the loss-free results as a stream off the worker's spill file
		// (results.jsonl) instead of one giant ?full=1 body: neither side
		// ever materialises the lease's whole result set.
		serr := c.clients[w].StreamResults(ctx, workerJob, func(res sweep.PointResult) {
			li := res.Index
			if li < 0 || li >= len(l.indices) {
				return
			}
			r.completePoint(l.indices[li], res)
		})
		if serr != nil {
			if ctx.Err() == nil {
				c.fail(w)
			}
			return false
		}
		// A done worker whose spill degraded (disk full) can stream fewer
		// points than the lease holds; account for the gaps rather than
		// re-running a job the worker considers finished.
		for li, g := range l.indices {
			r.mu.Lock()
			done := g >= 0 && g < len(r.stored) && r.stored[g]
			r.mu.Unlock()
			if done {
				continue
			}
			r.completePoint(g, sweep.PointResult{
				Name: specName(l.specs[li]),
				Err:  fmt.Errorf("cluster: lease %d: worker %s finished but its result for this point was unavailable", l.id, w),
			})
		}
		return true
	default:
		// Still running (stream trouble), canceled (the worker's lease TTL
		// expired — our heartbeats were not landing) or failed: requeue.
		return false
	}
}

// heartbeat renews the leased worker job every HeartbeatEvery until ctx
// ends. The cluster.heartbeat.drop fault point models a coordinator that
// stays alive but whose renewals stop landing — the worker must then
// self-cancel the lease.
func (c *Coordinator) heartbeat(ctx context.Context, w, workerJob string) {
	m := clusterMetrics.Get()
	t := time.NewTicker(c.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if err := faultinject.Fire(faultinject.ClusterHeartbeatDrop); err != nil {
			m.heartbeats.With("dropped").Inc()
			continue
		}
		hctx, cancel := context.WithTimeout(ctx, c.cfg.HeartbeatEvery)
		_, err := c.clients[w].Renew(hctx, workerJob)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			m.heartbeats.With("failed").Inc()
			continue
		}
		m.heartbeats.With("sent").Inc()
	}
}

// fallbackLease runs the lease's points in-process through internal/sweep —
// the degraded mode when no worker is usable. Fallback leases serialise on
// the coordinator so a dead cluster behaves like one local sweep, not
// len(leases) competing ones.
func (r *jobRun) fallbackLease(l *lease, lsp *obs.Span) {
	c := r.coord
	c.cfg.Logf("cluster: WARNING: no usable worker for lease %d of job %s; running %d points in-process", l.id, r.req.JobID, len(l.specs))
	clusterMetrics.Get().fallbackRuns.Inc()
	clusterMetrics.Get().leases.With("fallback").Inc()
	c.trackLease(r.req.JobID, l.id, l.attempt, "local", len(l.indices))
	r.wal.append(walRecord{Type: walFallback, Lease: l.id, Attempt: l.attempt})
	fsp := obs.StartSpan(lsp, "cluster.fallback")
	defer fsp.End()

	c.fallbackMu.Lock()
	defer c.fallbackMu.Unlock()
	if r.req.Tok.Err() != nil {
		r.abandonLease(l)
		return
	}
	pts := make([]sweep.Point, 0, len(l.specs))
	local := make([]int, 0, len(l.specs)) // pts index -> lease-local index
	for li, sp := range l.specs {
		p, err := sp.Resolve(r.req.Tok)
		if err != nil {
			r.completePoint(l.indices[li], sweep.PointResult{Name: specName(sp), Err: err})
			continue
		}
		pts = append(pts, p)
		local = append(local, li)
	}
	if len(pts) == 0 {
		return
	}
	store := c.cfg.Cache
	if r.req.NoCache {
		store = nil
	}
	sweep.Run(pts, &sweep.Config{
		Workers:        r.req.Workers,
		Budget:         r.req.Tok,
		Cache:          store,
		Span:           fsp,
		DiscardResults: true, // completePoint streams each result out; nobody reads the slice
		OnPoint: func(res sweep.PointResult) {
			if res.Index < 0 || res.Index >= len(local) {
				return
			}
			r.completePoint(l.indices[local[res.Index]], res)
		},
	})
}

// abandonLease marks the lease's unfinished points with the job's budget
// error: the job is over, nothing will run them.
func (r *jobRun) abandonLease(l *lease) {
	cause := r.req.Tok.Err()
	if cause == nil {
		cause = context.Canceled
	}
	for li, g := range l.indices {
		r.completePoint(g, sweep.PointResult{
			Name: specName(l.specs[li]),
			Err:  fmt.Errorf("cluster: lease %d abandoned: %w", l.id, cause),
		})
	}
}

// completePoint streams the final result for a global point index (first
// writer wins — a reassigned lease's duplicate completions are discarded)
// through OnResult, and forwards its summary if the event stream did not
// already. The payload goes straight to the hook; the coordinator keeps only
// the stored[] boolean.
func (r *jobRun) completePoint(global int, res sweep.PointResult) {
	if global < 0 || global >= len(r.stored) {
		return
	}
	res.Index = global
	r.mu.Lock()
	if r.stored[global] {
		r.mu.Unlock()
		clusterMetrics.Get().dupPoints.Inc()
		return
	}
	r.stored[global] = true
	r.mu.Unlock()
	if r.req.OnResult != nil {
		r.req.OnResult(res)
	}
	r.forwardSummary(global, serve.Summarize(&res))
}

// forwardSummary delivers one per-point summary to the job's OnSummary hook
// at most once, re-indexed to the global point index.
func (r *jobRun) forwardSummary(global int, s serve.PointSummary) {
	if global < 0 || global >= len(r.reported) {
		return
	}
	r.mu.Lock()
	dup := r.reported[global]
	r.reported[global] = true
	r.mu.Unlock()
	if dup {
		clusterMetrics.Get().dupPoints.Inc()
		return
	}
	s.Index = global
	if r.req.OnSummary != nil {
		r.req.OnSummary(s)
	}
}

func specName(sp serve.PointSpec) string {
	if sp.Name != "" {
		return sp.Name
	}
	return sp.Model
}
