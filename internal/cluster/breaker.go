package cluster

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-worker circuit breakers.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// open (default 3).
	Threshold int
	// Cooldown is the first open interval; each re-trip from half-open
	// doubles it up to MaxCooldown (defaults 500ms and 30s).
	Cooldown    time.Duration
	MaxCooldown time.Duration
	// now is the injectable clock for tests (default time.Now).
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 30 * time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Breaker states, as reported by State().
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// Breaker is a circuit breaker guarding one worker. Closed: requests flow,
// Threshold consecutive failures trip it open. Open: requests are refused
// until the cooldown elapses, then exactly one probe is let through
// (half-open). A probe success closes the breaker and resets the cooldown; a
// probe failure re-opens it with the cooldown doubled, up to MaxCooldown —
// a worker that stays dead gets probed geometrically less often.
type Breaker struct {
	mu       sync.Mutex
	cfg      BreakerConfig
	failures int       // consecutive failures while closed
	open     bool      // tripped (open or half-open)
	probing  bool      // the half-open probe is in flight
	until    time.Time // open until (then half-open)
	cooldown time.Duration
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	c := cfg.withDefaults()
	return &Breaker{cfg: c, cooldown: c.Cooldown}
}

// Ready reports whether a request could be admitted right now, without
// consuming the half-open probe slot. Routing filters use this; the chosen
// worker is then claimed with Allow.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open || (!b.probing && !b.cfg.now().Before(b.until))
}

// Allow admits a request: always while closed, and exactly one probe per
// cooldown expiry while open. The caller must report the outcome with
// Success or Fail.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing || b.cfg.now().Before(b.until) {
		return false
	}
	b.probing = true // half-open: this caller is the probe
	return true
}

// Success reports a completed request; it closes the breaker from half-open
// and clears the failure streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.open = false
	b.probing = false
	b.cooldown = b.cfg.Cooldown
}

// Fail reports a failed request. While closed it advances the streak and
// trips at Threshold; from half-open it re-opens with a doubled cooldown.
// It reports whether this call tripped the breaker open.
func (b *Breaker) Fail() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open {
		// The half-open probe failed (or a straggler from before the trip):
		// back off harder.
		if b.probing {
			b.probing = false
			b.cooldown = min(2*b.cooldown, b.cfg.MaxCooldown)
		}
		b.until = b.cfg.now().Add(b.cooldown)
		return false
	}
	b.failures++
	if b.failures < b.cfg.Threshold {
		return false
	}
	b.open = true
	b.probing = false
	b.until = b.cfg.now().Add(b.cooldown)
	return true
}

// State returns the breaker's current phase for logs and tests.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		return BreakerClosed
	case b.probing || !b.cfg.now().Before(b.until):
		return BreakerHalfOpen
	default:
		return BreakerOpen
	}
}
