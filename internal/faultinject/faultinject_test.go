package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() with no plan")
	}
	if err := Fire(CacheDiskWrite); err != nil {
		t.Fatalf("disabled Fire returned %v", err)
	}
	if Stats() != nil {
		t.Fatal("Stats() non-nil with no plan")
	}
}

// The disabled path must be allocation-free: fault points sit on integrator
// and model hot loops, so the production (no-plan) state cannot churn the
// heap. This mirrors the obs no-op guarantee.
func TestDisabledPathAllocationFree(t *testing.T) {
	Disable()
	if n := testing.AllocsPerRun(1000, func() {
		_ = Fire(OscEvalNaN)
		_ = Fire(CacheDiskRead)
	}); n != 0 {
		t.Fatalf("disabled Fire allocates %v per run, want 0", n)
	}
}

func TestErrorModeFiresAndClassifies(t *testing.T) {
	defer Enable(Plan{SweepAttempt: {Mode: ModeError}})()
	err := Fire(SweepAttempt)
	if err == nil {
		t.Fatal("active error point did not fire")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not wrap ErrInjected", err)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.Point != SweepAttempt {
		t.Fatalf("injected error %v does not carry the point name", err)
	}
	// Unconfigured points stay silent under an active plan.
	if err := Fire(CacheDiskRead); err != nil {
		t.Fatalf("unconfigured point fired: %v", err)
	}
	st := Stats()
	if st[SweepAttempt].Hits != 1 || st[SweepAttempt].Fired != 1 {
		t.Fatalf("stats: %+v", st[SweepAttempt])
	}
}

func TestAfterAndCountWindows(t *testing.T) {
	defer Enable(Plan{CacheDiskWrite: {Mode: ModeError, After: 2, Count: 3}})()
	var fired int
	for i := 0; i < 10; i++ {
		if Fire(CacheDiskWrite) != nil {
			fired++
			if i < 2 {
				t.Fatalf("fired on hit %d, inside the After window", i)
			}
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want 3 (Count)", fired)
	}
	st := Stats()[CacheDiskWrite]
	if st.Hits != 10 || st.Fired != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestProbIsSeededAndDeterministic(t *testing.T) {
	run := func() []bool {
		defer Enable(Plan{OscEvalDelay: {Mode: ModeError, Prob: 0.5, Seed: 7}})()
		out := make([]bool, 64)
		for i := range out {
			out[i] = Fire(OscEvalDelay) != nil
		}
		return out
	}
	a, b := run(), run()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs across identically-seeded runs", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d — not probabilistic", fired, len(a))
	}
}

func TestDelayMode(t *testing.T) {
	defer Enable(Plan{ServeHandlerLatency: {Mode: ModeDelay, Delay: 30 * time.Millisecond}})()
	start := time.Now()
	if err := Fire(ServeHandlerLatency); err != nil {
		t.Fatalf("delay mode returned %v", err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("delay mode slept %v, want ≥30ms", el)
	}
}

func TestPanicMode(t *testing.T) {
	defer Enable(Plan{OscEvalPanic: {Mode: ModePanic}})()
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("panic mode did not panic")
		}
		ie, ok := rec.(*InjectedError)
		if !ok || ie.Point != OscEvalPanic {
			t.Fatalf("panic value %v, want *InjectedError for %q", rec, OscEvalPanic)
		}
	}()
	_ = Fire(OscEvalPanic)
}

func TestPointsInventory(t *testing.T) {
	pts := Points()
	if len(pts) == 0 {
		t.Fatal("empty inventory")
	}
	seen := map[string]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Fatalf("duplicate point %q", p)
		}
		seen[p] = true
	}
	for _, want := range []string{CacheDiskRead, CacheDiskWrite, OdeBatchKernel, OscEvalDelay, OscEvalNaN, OscEvalPanic, ServeHandlerLatency, ServeJournalWrite, ServeReplayDelay, SweepAttempt, SweepBatch} {
		if !seen[want] {
			t.Fatalf("inventory missing %q", want)
		}
	}
}
