package faultinject

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// chaosTestRE matches the test-function names the chaos targets run. Keep it
// in sync with the -run filters of `make chaos` and `make chaos-cluster`.
var chaosTestRE = regexp.MustCompile(`func Test(Chaos|Fault|Journal|Readyz|CrashRecovery|Cluster|Lease)`)

// unfilteredChaosPkgs are packages the chaos targets run without a -run
// filter: every test file in them counts as chaos coverage.
var unfilteredChaosPkgs = []string{
	string(filepath.Separator) + filepath.Join("internal", "faultinject") + string(filepath.Separator),
	string(filepath.Separator) + filepath.Join("internal", "cluster") + string(filepath.Separator),
}

// TestEveryPointHasAChaosSuite asserts that every fault point registered in
// this package is referenced, by its constant identifier, in at least one
// test file that the chaos targets execute (`make chaos` / `make
// chaos-cluster`). A fault point nobody injects is dead robustness code: the
// failure surface it guards regresses silently. Adding a point to the
// inventory therefore requires adding (or extending) a chaos test that fires
// it — this test is the tripwire.
func TestEveryPointHasAChaosSuite(t *testing.T) {
	consts := pointConstants(t)
	// Sanity: the parsed constant set must match the registered inventory
	// exactly, or the declaration block and the points slice have drifted.
	if len(consts) != len(Points()) {
		t.Fatalf("parsed %d point constants but Points() registers %d — keep the const block and the points slice in sync", len(consts), len(Points()))
	}
	registered := make(map[string]bool)
	for _, p := range Points() {
		registered[p] = true
	}
	for ident, val := range consts {
		if !registered[val] {
			t.Errorf("constant %s = %q is declared but missing from the points slice", ident, val)
		}
	}

	files := chaosSuiteFiles(t)
	if len(files) == 0 {
		t.Fatal("found no chaos suite files — chaosTestRE or the package list has rotted")
	}
	var blobs []string
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, string(data))
	}
	for ident, val := range consts {
		found := false
		for i, blob := range blobs {
			// Chaos suites in other packages reference the point as
			// faultinject.<Ident>; this package's own suite references it
			// unqualified.
			if strings.Contains(blob, "faultinject."+ident) {
				found = true
				break
			}
			if inFaultinjectPkg(files[i]) && strings.Contains(blob, ident) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fault point %s (%q) is registered but appears in no chaos suite file — add a chaos test that fires it", ident, val)
		}
	}
}

func inFaultinjectPkg(path string) bool {
	return strings.Contains(path, string(filepath.Separator)+filepath.Join("internal", "faultinject")+string(filepath.Separator))
}

// pointConstants parses faultinject.go and returns the map of exported string
// constant identifiers to their values — the declared fault-point inventory.
func pointConstants(t *testing.T) map[string]string {
	t.Helper()
	src := filepath.Join(pkgDir(t), "faultinject.go")
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, src, nil, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", src, err)
	}
	out := make(map[string]string)
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
				continue
			}
			lit, ok := vs.Values[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING || !vs.Names[0].IsExported() {
				continue
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.Contains(val, ".") {
				continue // not a fault-point name (points are dotted paths)
			}
			out[vs.Names[0].Name] = val
		}
	}
	return out
}

// chaosSuiteFiles walks the repository for the test files the chaos targets
// execute: files declaring a chaos-family test function, plus every test file
// of the packages run unfiltered.
func chaosSuiteFiles(t *testing.T) []string {
	t.Helper()
	root := filepath.Dir(filepath.Dir(pkgDir(t))) // internal/faultinject → repo root
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if !strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		for _, pkg := range unfilteredChaosPkgs {
			if strings.Contains(path, pkg) {
				out = append(out, path)
				return nil
			}
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if chaosTestRE.Match(data) {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// pkgDir locates this package's source directory from the test binary.
func pkgDir(t *testing.T) string {
	t.Helper()
	// Tests run with the package directory as working directory.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}
