// Package faultinject is the chaos-testing harness of the phase-noise
// pipeline: a process-wide registry of named fault points that call sites in
// cache, serve, sweep and osc evaluate at well-chosen failure surfaces (disk
// I/O, model evaluation, request handling, journal writes). With no plan
// installed every evaluation is a nil-pointer fast path — one atomic load,
// zero allocations — so fault points are safe to leave on hot loops
// permanently, mirroring the internal/obs no-op pattern.
//
// A test (or an operator chasing a production bug) installs a Plan mapping
// point names to Specs:
//
//	defer faultinject.Enable(faultinject.Plan{
//	    faultinject.CacheDiskWrite: {Mode: faultinject.ModeError, After: 2},
//	    faultinject.OscEvalDelay:   {Mode: faultinject.ModeDelay, Delay: 5 * time.Millisecond, Prob: 0.25, Seed: 42},
//	})()
//
// Firing is deterministic: each point draws from its own PRNG seeded by
// Spec.Seed, and After/Count window the hits exactly, so a chaos test that
// fails replays identically. There are no build tags — the harness is always
// compiled in and costs nothing until enabled.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The fault-point inventory. Call sites reference these constants; chaos
// suites iterate Points() to prove every registered point is exercised.
const (
	// CacheDiskRead fires in the disk tier's get: a hit is treated as a read
	// error (miss + pn_cache_disk_errors_total).
	CacheDiskRead = "cache.disk.read"
	// CacheDiskWrite fires in the disk tier's put: the write is dropped as if
	// the filesystem failed it.
	CacheDiskWrite = "cache.disk.write"
	// OscEvalDelay delays registry-built models' Eval (ModeDelay) — the knob
	// for simulating slow models against deadlines and abandon grace.
	OscEvalDelay = "osc.eval.delay"
	// OscEvalNaN poisons one component of registry-built models' Eval output
	// with NaN, exercising the integrators' non-finite bail-out.
	OscEvalNaN = "osc.eval.nan"
	// OscEvalPanic panics inside registry-built models' Eval, exercising the
	// sweep engine's panic isolation.
	OscEvalPanic = "osc.eval.panic"
	// ServeHandlerLatency delays (ModeDelay) or fails with 500 (ModeError)
	// the job server's API handlers before any work happens.
	ServeHandlerLatency = "serve.handler.latency"
	// ServeJournalWrite fails job-journal appends: the record is dropped and
	// counted, the job itself keeps running (durability degrades, service
	// does not).
	ServeJournalWrite = "serve.journal.write"
	// ServeReplayDelay delays journal replay on server start, widening the
	// not-yet-ready window that /readyz reports 503 for.
	ServeReplayDelay = "serve.replay.delay"
	// SweepAttempt fails a sweep attempt at its start, before the pipeline
	// runs — the knob for driving the retry ladder and per-point failure
	// accounting without a hostile model.
	SweepAttempt = "sweep.attempt"
	// OdeBatchKernel fires at the entry of the batched SoA integration
	// kernels (BatchRK4 / BatchVariational / BatchAdjointBackward): the whole
	// batch fails as infrastructure, exercising the sweep engine's fallback
	// from a batched rung to the per-point scalar ladder.
	OdeBatchKernel = "ode.batch.kernel"
	// SweepBatch fails a batched sweep rung at its start, before any lane
	// runs — the knob for driving the batch→scalar fallback and its
	// accounting without touching the integrators.
	SweepBatch = "sweep.batch"
	// ClusterLeaseDispatch fails a lease submission in the cluster
	// coordinator before the HTTP request goes out — the knob for driving
	// worker selection fallback and circuit-breaker accounting.
	ClusterLeaseDispatch = "cluster.lease.dispatch"
	// ClusterWorkerKill severs the coordinator's event stream from a worker
	// mid-lease, as if the worker process died: the watch aborts, the lease
	// stops heartbeating, and expiry must reassign it.
	ClusterWorkerKill = "cluster.worker.kill"
	// ClusterHeartbeatDrop drops a lease renewal in the coordinator: the
	// renew call is skipped as if lost to the network, so a healthy worker
	// looks partitioned and the lease TTL runs out.
	ClusterHeartbeatDrop = "cluster.heartbeat.drop"
	// ClusterTraceIngest fails the coordinator's worker trace pull on lease
	// settle: the span batch is lost, the job's timeline shows a gap, and the
	// job itself must settle normally — trace shipping is observability, never
	// a correctness dependency.
	ClusterTraceIngest = "cluster.trace.ingest"
	// PnclientHTTP fails one pnclient HTTP attempt before it reaches the
	// transport — a deterministic stand-in for connection refused/reset,
	// exercising the retry ladder and the callers' failover paths.
	PnclientHTTP = "pnclient.http"
	// PllCompose fires at the entry of the PLL composition engine
	// (pll.Compose): the composition fails as infrastructure after its
	// oscillator legs already characterised, exercising the compose job
	// kind's failure accounting without touching the pipeline or the cache.
	PllCompose = "pll.compose"
	// ServeResultsWrite fails a spill append in the job server's result
	// store, as if the disk filled mid-sweep: the job degrades to
	// summary-only from that point on, already-spilled frames stay
	// readable, and the job itself still settles normally.
	ServeResultsWrite = "serve.results.write"
	// ServeResultsRead fails a frame read from the result store: the
	// affected retrieval (a results page, a JSONL stream, a ?full=1
	// payload) reports the gap, the store itself stays healthy.
	ServeResultsRead = "serve.results.read"
	// ServeQuotaCheck fires inside tenant admission before any quota state
	// changes: ModeError rejects the submission with 429 as if the tenant
	// were over quota, ModeDelay simulates a slow admission path.
	ServeQuotaCheck = "serve.quota.check"
)

// points is the registered inventory, sorted for stable iteration.
var points = []string{
	CacheDiskRead,
	CacheDiskWrite,
	ClusterHeartbeatDrop,
	ClusterLeaseDispatch,
	ClusterTraceIngest,
	ClusterWorkerKill,
	OdeBatchKernel,
	OscEvalDelay,
	OscEvalNaN,
	OscEvalPanic,
	PllCompose,
	PnclientHTTP,
	ServeHandlerLatency,
	ServeJournalWrite,
	ServeQuotaCheck,
	ServeReplayDelay,
	ServeResultsRead,
	ServeResultsWrite,
	SweepAttempt,
	SweepBatch,
}

// Points returns the registered fault-point names, sorted. Chaos suites use
// it to assert coverage of the whole inventory.
func Points() []string {
	out := make([]string, len(points))
	copy(out, points)
	sort.Strings(out)
	return out
}

// ErrInjected is the sentinel wrapped by every error this package injects.
// Branch with errors.Is; recover the point name with errors.As into
// *InjectedError.
var ErrInjected = errors.New("faultinject: injected fault")

// InjectedError is the concrete injected failure, naming its fault point.
type InjectedError struct {
	Point string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %q", e.Point)
}

// Is reports target == ErrInjected so the sentinel matches through wraps.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Mode says what a firing point does.
type Mode int

const (
	// ModeError makes Fire return an *InjectedError. Call sites decide what
	// the error means (a failed write, a poisoned value, ...).
	ModeError Mode = iota
	// ModeDelay makes Fire sleep Spec.Delay, then return nil — the work
	// proceeds, late.
	ModeDelay
	// ModePanic makes Fire panic with an *InjectedError, exercising recovery
	// paths.
	ModePanic
)

// Spec configures one fault point. The zero value fires an error on every
// hit.
type Spec struct {
	Mode Mode
	// Delay is the sleep applied in ModeDelay (and, when > 0, before an
	// injected error or panic — a slow failure).
	Delay time.Duration
	// Prob is the per-hit firing probability in (0, 1]; 0 means 1 (always).
	// Draws come from a PRNG seeded with Seed, so runs replay identically.
	Prob float64
	// Seed seeds the point's PRNG when Prob < 1 (0 is a valid seed).
	Seed int64
	// After skips the first After hits before the point may fire.
	After int
	// Count caps how many times the point fires (0 = unlimited).
	Count int
}

// pointState is one active point's spec plus its firing state.
type pointState struct {
	spec  Spec
	mu    sync.Mutex
	rng   *rand.Rand
	hits  int64
	fired int64
}

// plan is an installed set of active points.
type plan struct {
	points map[string]*pointState
}

// active holds the installed plan; nil means the harness is off and every
// Fire is a no-op.
var active atomic.Pointer[plan]

// Plan maps fault-point names to their activation Specs.
type Plan map[string]Spec

// Enable installs p, replacing any previous plan, and returns a function that
// disables the harness again (handy as `defer Enable(...)()` in tests).
// Unknown point names are accepted — a plan may target points added later —
// but they never fire anything.
func Enable(p Plan) func() {
	ps := make(map[string]*pointState, len(p))
	for name, spec := range p {
		st := &pointState{spec: spec}
		if spec.Prob > 0 && spec.Prob < 1 {
			st.rng = rand.New(rand.NewSource(spec.Seed))
		}
		ps[name] = st
	}
	active.Store(&plan{points: ps})
	return Disable
}

// Disable removes the installed plan; every Fire returns to the free no-op
// path.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is installed.
func Enabled() bool { return active.Load() != nil }

// Fire evaluates the named fault point. With no plan installed (the
// production state) it returns nil after one atomic load and no allocation.
// When the point is active and fires: ModeError returns an *InjectedError,
// ModeDelay sleeps and returns nil, ModePanic panics. A non-nil return always
// wraps ErrInjected.
func Fire(name string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.fire(name)
}

func (p *plan) fire(name string) error {
	st, ok := p.points[name]
	if !ok {
		return nil
	}
	if !st.roll() {
		return nil
	}
	if st.spec.Delay > 0 {
		time.Sleep(st.spec.Delay)
	}
	switch st.spec.Mode {
	case ModeDelay:
		return nil
	case ModePanic:
		panic(&InjectedError{Point: name})
	default:
		return &InjectedError{Point: name}
	}
}

// roll decides whether this hit fires, applying After/Count windows and the
// seeded probability draw.
func (st *pointState) roll() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.hits++
	if st.hits <= int64(st.spec.After) {
		return false
	}
	if st.spec.Count > 0 && st.fired >= int64(st.spec.Count) {
		return false
	}
	if st.rng != nil && st.rng.Float64() >= st.spec.Prob {
		return false
	}
	st.fired++
	return true
}

// Stat is one point's evaluation record under the current plan.
type Stat struct {
	Hits  int64 // times the point was evaluated
	Fired int64 // times it actually fired
}

// Stats returns the per-point evaluation counts of the installed plan (nil
// when disabled). Chaos suites use it to assert a point really fired.
func Stats() map[string]Stat {
	p := active.Load()
	if p == nil {
		return nil
	}
	out := make(map[string]Stat, len(p.points))
	for name, st := range p.points {
		st.mu.Lock()
		out[name] = Stat{Hits: st.hits, Fired: st.fired}
		st.mu.Unlock()
	}
	return out
}
