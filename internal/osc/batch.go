package osc

import (
	"fmt"
	"math"

	"repro/internal/dynsys"
	"repro/internal/faultinject"
)

// This file vectorises registry models across parameter variants for the
// batched SoA integration core (internal/ode batch kernels). BatchOf turns K
// built models of the same family into one dynsys.BatchEvaluator: the Hopf
// and van der Pol families get hand-written SoA bodies whose per-lane
// expression order matches the scalar Eval/Jacobian bit for bit; every other
// family falls back to dynsys.LaneBatch (gather → scalar Eval → scatter),
// which is bit-identical by construction. Either way the evaluator is
// wrapped with the same osc.eval.* fault points the scalar path carries, so
// chaos coverage does not regress when a sweep runs batched.

// hopfBatch is the SoA Hopf normal form over K lanes.
type hopfBatch struct {
	lambda, omega []float64
}

func (b *hopfBatch) Dim() int   { return 2 }
func (b *hopfBatch) Lanes() int { return len(b.lambda) }

func (b *hopfBatch) EvalBatch(x, dst []float64) {
	k := len(b.lambda)
	x0 := x[0*k : 1*k : 1*k]
	x1 := x[1*k : 2*k : 2*k]
	d0 := dst[0*k : 1*k : 1*k]
	d1 := dst[1*k : 2*k : 2*k]
	for j, lam := range b.lambda {
		om := b.omega[j]
		r2 := x0[j]*x0[j] + x1[j]*x1[j]
		d0[j] = lam*x0[j]*(1-r2) - om*x1[j]
		d1[j] = lam*x1[j]*(1-r2) + om*x0[j]
	}
}

func (b *hopfBatch) JacobianBatch(x, jac []float64) {
	k := len(b.lambda)
	x0 := x[0*k : 1*k : 1*k]
	x1 := x[1*k : 2*k : 2*k]
	for j, lam := range b.lambda {
		om := b.omega[j]
		r2 := x0[j]*x0[j] + x1[j]*x1[j]
		jac[0*k+j] = lam * (1 - r2 - 2*x0[j]*x0[j])
		jac[1*k+j] = -om - 2*lam*x0[j]*x1[j]
		jac[2*k+j] = om - 2*lam*x0[j]*x1[j]
		jac[3*k+j] = lam * (1 - r2 - 2*x1[j]*x1[j])
	}
}

// vdpBatch is the SoA van der Pol oscillator over K lanes.
type vdpBatch struct {
	mu []float64
}

func (b *vdpBatch) Dim() int   { return 2 }
func (b *vdpBatch) Lanes() int { return len(b.mu) }

func (b *vdpBatch) EvalBatch(x, dst []float64) {
	k := len(b.mu)
	x0 := x[0*k : 1*k : 1*k]
	x1 := x[1*k : 2*k : 2*k]
	d0 := dst[0*k : 1*k : 1*k]
	d1 := dst[1*k : 2*k : 2*k]
	for j, mu := range b.mu {
		d0[j] = x1[j]
		d1[j] = mu*(1-x0[j]*x0[j])*x1[j] - x0[j]
	}
}

func (b *vdpBatch) JacobianBatch(x, jac []float64) {
	k := len(b.mu)
	x0 := x[0*k : 1*k : 1*k]
	x1 := x[1*k : 2*k : 2*k]
	for j, mu := range b.mu {
		jac[0*k+j], jac[1*k+j] = 0, 1
		jac[2*k+j] = -2*mu*x0[j]*x1[j] - 1
		jac[3*k+j] = mu * (1 - x0[j]*x0[j])
	}
}

// batchFaultSystem carries the osc.eval.* fault points at batch granularity:
// one delay/panic draw per batched evaluation, and osc.eval.nan poisons the
// first component of lane 0 — enough to drive the integrators' per-lane
// non-finite isolation in chaos tests.
type batchFaultSystem struct {
	dynsys.BatchEvaluator
}

func (b batchFaultSystem) EvalBatch(x, dst []float64) {
	_ = faultinject.Fire(faultinject.OscEvalDelay)
	_ = faultinject.Fire(faultinject.OscEvalPanic) // ModePanic: panics when it fires
	b.BatchEvaluator.EvalBatch(x, dst)
	if faultinject.Fire(faultinject.OscEvalNaN) != nil {
		dst[0] = math.NaN()
	}
}

// Unwrap returns the evaluator underneath the fault hooks.
func (b batchFaultSystem) Unwrap() dynsys.BatchEvaluator { return b.BatchEvaluator }

// BatchOf vectorises K built models into one lockstep evaluator. All models
// must share a state dimension; model families with a native SoA body (hopf,
// vanderpol) use it when every lane is of that family, anything else goes
// through the gather/scatter LaneBatch fallback. The returned evaluator
// yields bit-identical per-lane values to the scalar systems.
func BatchOf(models []*BuiltModel) (dynsys.BatchEvaluator, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("osc: BatchOf of zero models")
	}
	systems := make([]dynsys.System, len(models))
	for i, m := range models {
		if m == nil || m.Sys == nil {
			return nil, fmt.Errorf("osc: BatchOf lane %d has no system", i)
		}
		systems[i] = m.Sys
	}
	return BatchSystems(systems)
}

// BatchSystems vectorises K same-dimension systems into one lockstep
// evaluator, exactly like BatchOf but starting from bare dynsys.Systems (the
// shape the sweep engine holds). Fault-hook wrappers are stripped before the
// family dispatch and re-applied at batch granularity.
func BatchSystems(systems []dynsys.System) (dynsys.BatchEvaluator, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("osc: BatchSystems of zero systems")
	}
	inner := make([]dynsys.System, len(systems))
	for i, s := range systems {
		if s == nil {
			return nil, fmt.Errorf("osc: BatchSystems lane %d has no system", i)
		}
		inner[i] = Unwrap(s)
	}
	if be := nativeBatch(inner); be != nil {
		return batchFaultSystem{BatchEvaluator: be}, nil
	}
	lb, err := dynsys.NewLaneBatch(inner)
	if err != nil {
		return nil, err
	}
	return batchFaultSystem{BatchEvaluator: lb}, nil
}

// nativeBatch returns a hand-vectorised evaluator when every lane is of the
// same natively supported family, nil otherwise.
func nativeBatch(systems []dynsys.System) dynsys.BatchEvaluator {
	if h, ok := systems[0].(*Hopf); ok {
		hb := &hopfBatch{lambda: make([]float64, len(systems)), omega: make([]float64, len(systems))}
		hb.lambda[0], hb.omega[0] = h.Lambda, h.Omega
		for i, s := range systems[1:] {
			hi, ok := s.(*Hopf)
			if !ok {
				return nil
			}
			hb.lambda[i+1], hb.omega[i+1] = hi.Lambda, hi.Omega
		}
		return hb
	}
	if v, ok := systems[0].(*VanDerPol); ok {
		vb := &vdpBatch{mu: make([]float64, len(systems))}
		vb.mu[0] = v.Mu
		for i, s := range systems[1:] {
			vi, ok := s.(*VanDerPol)
			if !ok {
				return nil
			}
			vb.mu[i+1] = vi.Mu
		}
		return vb
	}
	return nil
}
