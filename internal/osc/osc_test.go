package osc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dynsys"
)

// All models must satisfy the System contract and have correct Jacobians.
func allSystems() map[string]dynsys.System {
	return map[string]dynsys.System{
		"hopf":      &Hopf{Lambda: 1.3, Omega: 4.2, Sigma: 0.1},
		"hopf-y":    &Hopf{Lambda: 0.7, Omega: 2.0, Sigma: 0.2, YOnly: true},
		"vanderpol": &VanDerPol{Mu: 1.5, Sigma: 0.05},
		"bandpass":  NewBandpassPaper(),
		"eclring":   NewECLRingPaper(),
		"fhn":       &FitzHughNagumo{Eps: 0.08, A: 0, SigmaV: 0.01, SigmaW: 0.01},
	}
}

func testPoint(s dynsys.System) []float64 {
	x := make([]float64, s.Dim())
	for i := range x {
		x[i] = 0.1 * float64(i+1) * math.Pow(-1, float64(i))
	}
	// Circuit models live at sub-volt scales; that point is fine for all.
	return x
}

func TestJacobiansMatchFiniteDifferences(t *testing.T) {
	for name, s := range allSystems() {
		x := testPoint(s)
		// Scale for voltage-state circuits: keep well inside tanh range.
		if name == "eclring" {
			for i := range x {
				x[i] *= 0.1
			}
		}
		maxd := dynsys.CheckJacobian(s, x)
		// Normalise by the Jacobian scale (circuit entries are ~1e9).
		jac := make([]float64, s.Dim()*s.Dim())
		s.Jacobian(x, jac)
		scale := 0.0
		for _, v := range jac {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if maxd > 1e-4*(1+scale) {
			t.Errorf("%s: Jacobian mismatch %g (scale %g)", name, maxd, scale)
		}
	}
}

func TestNoiseDimensionsConsistent(t *testing.T) {
	for name, s := range allSystems() {
		n, p := s.Dim(), s.NumNoise()
		if len(s.NoiseLabels()) != p {
			t.Errorf("%s: %d labels for %d sources", name, len(s.NoiseLabels()), p)
		}
		b := make([]float64, n*p)
		s.Noise(testPoint(s), b)
		nonzero := false
		for _, v := range b {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite noise entry", name)
			}
			if v != 0 {
				nonzero = true
			}
		}
		if !nonzero {
			t.Errorf("%s: all-zero noise map", name)
		}
	}
}

func TestEvalFinite(t *testing.T) {
	for name, s := range allSystems() {
		dst := make([]float64, s.Dim())
		s.Eval(testPoint(s), dst)
		for i, v := range dst {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: f[%d] non-finite", name, i)
			}
		}
	}
}

func TestHopfClosedForms(t *testing.T) {
	h := &Hopf{Lambda: 2, Omega: 3, Sigma: 0.4}
	if math.Abs(h.Period()-2*math.Pi/3) > 1e-15 {
		t.Fatal("period")
	}
	if math.Abs(h.ExactC()-0.4*0.4/9) > 1e-15 {
		t.Fatal("exact c isotropic")
	}
	hy := &Hopf{Lambda: 2, Omega: 3, Sigma: 0.4, YOnly: true}
	if math.Abs(hy.ExactC()-0.4*0.4/18) > 1e-15 {
		t.Fatal("exact c y-only")
	}
	vx, vy := h.ExactV1(0)
	if math.Abs(vx) > 1e-15 || math.Abs(vy-1.0/3) > 1e-15 {
		t.Fatalf("v1(0) = (%g, %g)", vx, vy)
	}
	if m := h.ExactSecondMultiplier(); math.Abs(m-math.Exp(-8*math.Pi/3)) > 1e-18 {
		t.Fatalf("second multiplier %g", m)
	}
}

func TestHopfLimitCycleInvariant(t *testing.T) {
	// On the unit circle the radial component of f vanishes:
	// x·f_x + y·f_y = λr²(1−r²) = 0 at r=1.
	h := &Hopf{Lambda: 5, Omega: 2, Sigma: 0}
	dst := make([]float64, 2)
	for _, th := range []float64{0, 0.7, 2.1, 4.4} {
		x := []float64{math.Cos(th), math.Sin(th)}
		h.Eval(x, dst)
		radial := x[0]*dst[0] + x[1]*dst[1]
		if math.Abs(radial) > 1e-14 {
			t.Fatalf("radial flow %g at θ=%g", radial, th)
		}
	}
}

func TestBandpassPaperParameters(t *testing.T) {
	b := NewBandpassPaper()
	if math.Abs(b.Q()-1) > 1e-12 {
		t.Fatalf("Q = %g, want 1", b.Q())
	}
	// Linear resonance is pre-compensated above 6.66 kHz.
	if b.F0Linear() < 6660 || b.F0Linear() > 9000 {
		t.Fatalf("f0lin = %g", b.F0Linear())
	}
	// The comparator injects more current than the tank loses at small v:
	// small-signal net conductance must be negative (oscillation startup).
	if b.Icomp/b.Vc <= 1/b.R {
		t.Fatal("comparator gain insufficient for startup")
	}
}

func TestBandpassEnergyPump(t *testing.T) {
	// Comparator feeds energy at small amplitude, dissipates at large:
	// d(energy)/dt = v·(Inl − v/R) must be positive at v=0.01, negative at v=10.
	b := NewBandpassPaper()
	pump := func(v float64) float64 {
		return v * (b.Icomp*math.Tanh(v/b.Vc) - v/b.R)
	}
	if pump(0.01) <= 0 {
		t.Fatal("no startup energy at small amplitude")
	}
	if pump(10) >= 0 {
		t.Fatal("no saturation at large amplitude")
	}
}

func TestECLRingEquilibriumSymmetric(t *testing.T) {
	// The all-zero state is an equilibrium (fully balanced ring).
	r := NewECLRingPaper()
	x := make([]float64, r.Dim())
	dst := make([]float64, r.Dim())
	r.Eval(x, dst)
	for i, v := range dst {
		if v != 0 {
			t.Fatalf("f[%d] = %g at balanced state", i, v)
		}
	}
}

func TestECLRingSwingAndInit(t *testing.T) {
	r := NewECLRingPaper()
	if math.Abs(r.Swing()-500*331e-6) > 1e-12 {
		t.Fatalf("swing = %g", r.Swing())
	}
	x := r.InitialState()
	if len(x) != 6 {
		t.Fatalf("dim %d", len(x))
	}
	nz := 0
	for _, v := range x {
		if v != 0 {
			nz++
		}
	}
	if nz < 4 {
		t.Fatal("initial state insufficiently symmetry-broken")
	}
}

func TestECLRingNoiseScalesWithParameters(t *testing.T) {
	r := NewECLRingPaper()
	n, p := r.Dim(), r.NumNoise()
	b1 := make([]float64, n*p)
	r.Noise(make([]float64, n), b1)
	// Doubling IEE doubles shot-noise power (column ×√2).
	r2 := NewECLRingPaper()
	r2.IEE = 2 * r.IEE
	b2 := make([]float64, n*p)
	r2.Noise(make([]float64, n), b2)
	// Column 1 (stage0.shot) at row 0:
	got := b2[0*p+1] / b1[0*p+1]
	if math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("shot column ratio %g, want √2", got)
	}
	// Quadrupling Rc halves the Rc-thermal column.
	r3 := NewECLRingPaper()
	r3.Rc = 4 * r.Rc
	b3 := make([]float64, n*p)
	r3.Noise(make([]float64, n), b3)
	if gotRc := b3[0*p+0] / b1[0*p+0]; math.Abs(gotRc-0.5) > 1e-12 {
		t.Fatalf("Rc-thermal column ratio %g, want 0.5", gotRc)
	}
}

func TestFitzHughNagumoNullclineStructure(t *testing.T) {
	f := &FitzHughNagumo{Eps: 0.05, A: 0, SigmaV: 0.01, SigmaW: 0.01}
	dst := make([]float64, 2)
	// On the cubic nullcline w = v − v³/3 the fast equation vanishes.
	for _, v := range []float64{-1.5, 0.3, 1.8} {
		f.Eval([]float64{v, v - v*v*v/3}, dst)
		if math.Abs(dst[0]) > 1e-12 {
			t.Fatalf("fast nullcline violated at v=%g: %g", v, dst[0])
		}
	}
}

func TestThermalAndShotHelpers(t *testing.T) {
	// 1 kΩ at 300 K: one-sided 4kT/R = 1.657e-23; two-sided column² = half.
	in := dynsys.ThermalCurrentNoise(1000, 300)
	if math.Abs(in*in-2*dynsys.BoltzmannK*300/1000) > 1e-30 {
		t.Fatalf("thermal current %g", in)
	}
	vn := dynsys.ThermalVoltageNoise(1000, 300)
	if math.Abs(vn*vn-2*dynsys.BoltzmannK*300*1000) > 1e-24 {
		t.Fatalf("thermal voltage %g", vn)
	}
	sn := dynsys.ShotNoise(1e-3)
	if math.Abs(sn*sn-dynsys.ElectronQ*1e-3) > 1e-30 {
		t.Fatalf("shot %g", sn)
	}
	if dynsys.ShotNoise(-1e-3) != sn {
		t.Fatal("shot noise must use |I|")
	}
}

// Property: the Hopf radial dynamics contract toward r=1 from both sides.
func TestQuickHopfRadialContraction(t *testing.T) {
	f := func(seed int64) bool {
		lam := seed % 10
		if lam < 0 {
			lam = -lam
		}
		h := &Hopf{Lambda: 0.5 + float64(lam)/5, Omega: 3}
		dst := make([]float64, 2)
		for _, r := range []float64{0.3, 0.8, 1.2, 2.0} {
			x := []float64{r, 0}
			h.Eval(x, dst)
			radial := dst[0] // at (r, 0) the radial direction is x
			if r < 1 && radial <= 0 {
				return false
			}
			if r > 1 && radial >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: FiniteDiffSystem reproduces analytic Jacobians of Hopf.
func TestQuickFiniteDiffSystem(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 3 || math.Abs(b) > 3 {
			return true
		}
		h := &Hopf{Lambda: 1, Omega: 2, Sigma: 0.1}
		fd := &dynsys.FiniteDiffSystem{N: 2, F: h.Eval, P: 1,
			B: func(x []float64, dst []float64) { dst[0], dst[1] = 0, 1 }}
		want := make([]float64, 4)
		got := make([]float64, 4)
		h.Jacobian([]float64{a, b}, want)
		fd.Jacobian([]float64{a, b}, got)
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-4*(1+math.Abs(want[i])) {
				return false
			}
		}
		return fd.Dim() == 2 && fd.NumNoise() == 1 && len(fd.NoiseLabels()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
