package osc

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ode"
)

// rk4f adapts a built model to the ode.Func signature, the way the shooting
// integrators drive it.
func rk4f(bm *BuiltModel) ode.Func {
	return func(t float64, x, dst []float64) { bm.Sys.Eval(x, dst) }
}

// TestFaultHooksFreeOnRK4 is the acceptance guard: with no fault plan
// installed, the always-compiled-in fault hooks add zero allocations to the
// RK4 hot path. The wrapped model's allocation count must equal the bare
// model's, and a direct Eval must not allocate at all.
func TestFaultHooksFreeOnRK4(t *testing.T) {
	faultinject.Disable()
	bm, err := Build("hopf", nil)
	if err != nil {
		t.Fatal(err)
	}
	bare := Unwrap(bm.Sys)
	dst := make([]float64, bm.Sys.Dim())

	if n := testing.AllocsPerRun(1000, func() { bm.Sys.Eval(bm.X0, dst) }); n != 0 {
		t.Fatalf("wrapped Eval allocates %v per run, want 0", n)
	}

	wrapped := testing.AllocsPerRun(200, func() {
		if _, err := ode.RK4(rk4f(bm), 0, bm.TGuess, bm.X0, 64, nil); err != nil {
			t.Fatal(err)
		}
	})
	bmBare := &BuiltModel{Sys: bare, X0: bm.X0, TGuess: bm.TGuess}
	baseline := testing.AllocsPerRun(200, func() {
		if _, err := ode.RK4(rk4f(bmBare), 0, bm.TGuess, bm.X0, 64, nil); err != nil {
			t.Fatal(err)
		}
	})
	if wrapped != baseline {
		t.Fatalf("RK4 with fault hooks allocates %v per run, bare model %v — the disabled harness must be free", wrapped, baseline)
	}
}

// TestEvalNaNFault poisons f(x) and checks the integrator's non-finite
// bail-out catches it within one step.
func TestEvalNaNFault(t *testing.T) {
	defer faultinject.Enable(faultinject.Plan{
		faultinject.OscEvalNaN: {Mode: faultinject.ModeError, After: 10},
	})()
	bm, err := Build("hopf", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rkErr := ode.RK4(rk4f(bm), 0, bm.TGuess, bm.X0, 256, nil)
	if !errors.Is(rkErr, ode.ErrNonFinite) {
		t.Fatalf("RK4 under NaN fault returned %v, want ErrNonFinite", rkErr)
	}
}

// TestEvalPanicFault checks the panic surfaces as an *InjectedError so the
// sweep engine's recovery can classify it.
func TestEvalPanicFault(t *testing.T) {
	defer faultinject.Enable(faultinject.Plan{
		faultinject.OscEvalPanic: {Mode: faultinject.ModePanic},
	})()
	bm, err := Build("hopf", nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, bm.Sys.Dim())
	defer func() {
		rec := recover()
		ie, ok := rec.(*faultinject.InjectedError)
		if !ok || ie.Point != faultinject.OscEvalPanic {
			t.Fatalf("recover() = %v, want *InjectedError at osc.eval.panic", rec)
		}
	}()
	bm.Sys.Eval(bm.X0, dst)
}

// TestEvalDelayFault checks the delay point really slows Eval, and NaN
// poisoning never happens in delay mode.
func TestEvalDelayFault(t *testing.T) {
	defer faultinject.Enable(faultinject.Plan{
		faultinject.OscEvalDelay: {Mode: faultinject.ModeDelay, Delay: 20 * time.Millisecond, Count: 1},
	})()
	bm, err := Build("hopf", nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, bm.Sys.Dim())
	start := time.Now()
	bm.Sys.Eval(bm.X0, dst)
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("delayed Eval took %v, want ≥20ms", el)
	}
	for _, v := range dst {
		if math.IsNaN(v) {
			t.Fatal("delay fault poisoned the output")
		}
	}
}
