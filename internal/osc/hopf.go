// Package osc is the oscillator model library: each model implements
// dynsys.System (vector field, analytic Jacobian, noise map) and documents
// its limit-cycle geometry. Models range from the analytically solvable
// Hopf normal form (used as ground truth for the entire pipeline) to the
// circuit-level oscillators of the paper's Section 10: the Tow-Thomas
// bandpass + comparator oscillator and the three-stage bipolar ECL ring
// oscillator.
package osc

import "math"

// Hopf is the polar-symmetric Hopf normal form
//
//	ẋ = λx(1−r²) − ωy,   ẏ = λy(1−r²) + ωx,   r² = x²+y²,
//
// with the exactly known limit cycle xs(t) = (cos ωt, sin ωt), period
// T = 2π/ω, Floquet multipliers {1, exp(−4πλ/ω)} and adjoint vector
// v1(t) = (−sin ωt, cos ωt)/ω. With the isotropic noise map B = σI the
// phase-diffusion constant is exactly c = σ²/ω²; with noise on the second
// equation only, c = σ²/(2ω²). These closed forms make Hopf the pipeline's
// ground-truth oscillator.
type Hopf struct {
	Lambda float64 // radial relaxation rate λ > 0
	Omega  float64 // angular frequency ω > 0
	Sigma  float64 // noise column magnitude σ
	// YOnly restricts noise to the second state equation (p=1); otherwise
	// isotropic two-source noise (p=2).
	YOnly bool
}

// Dim implements dynsys.System.
func (h *Hopf) Dim() int { return 2 }

// Eval implements dynsys.System.
func (h *Hopf) Eval(x, dst []float64) {
	r2 := x[0]*x[0] + x[1]*x[1]
	dst[0] = h.Lambda*x[0]*(1-r2) - h.Omega*x[1]
	dst[1] = h.Lambda*x[1]*(1-r2) + h.Omega*x[0]
}

// Jacobian implements dynsys.System.
func (h *Hopf) Jacobian(x []float64, dst []float64) {
	r2 := x[0]*x[0] + x[1]*x[1]
	dst[0] = h.Lambda * (1 - r2 - 2*x[0]*x[0])
	dst[1] = -h.Omega - 2*h.Lambda*x[0]*x[1]
	dst[2] = h.Omega - 2*h.Lambda*x[0]*x[1]
	dst[3] = h.Lambda * (1 - r2 - 2*x[1]*x[1])
}

// NumNoise implements dynsys.System.
func (h *Hopf) NumNoise() int {
	if h.YOnly {
		return 1
	}
	return 2
}

// Noise implements dynsys.System.
func (h *Hopf) Noise(x []float64, dst []float64) {
	if h.YOnly {
		dst[0] = 0
		dst[1] = h.Sigma
		return
	}
	dst[0], dst[1] = h.Sigma, 0
	dst[2], dst[3] = 0, h.Sigma
}

// NoiseLabels implements dynsys.System.
func (h *Hopf) NoiseLabels() []string {
	if h.YOnly {
		return []string{"y-equation"}
	}
	return []string{"x-equation", "y-equation"}
}

// Period returns the exact period 2π/ω.
func (h *Hopf) Period() float64 { return 2 * math.Pi / h.Omega }

// ExactC returns the closed-form phase-diffusion constant for the
// configured noise map.
func (h *Hopf) ExactC() float64 {
	c := h.Sigma * h.Sigma / (h.Omega * h.Omega)
	if h.YOnly {
		return c / 2
	}
	return c
}

// ExactV1 returns the closed-form adjoint vector v1(t) = (−sin ωt, cos ωt)/ω
// for the orbit phase-referenced at xs(0) = (1, 0).
func (h *Hopf) ExactV1(t float64) (float64, float64) {
	return -math.Sin(h.Omega*t) / h.Omega, math.Cos(h.Omega*t) / h.Omega
}

// ExactSecondMultiplier returns exp(−4πλ/ω), the non-trivial Floquet
// multiplier of the radial mode.
func (h *Hopf) ExactSecondMultiplier() float64 {
	return math.Exp(-4 * math.Pi * h.Lambda / h.Omega)
}
