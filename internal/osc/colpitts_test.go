package osc

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/shooting"
)

func colpittsPSS(t *testing.T) (*Colpitts, *core.Result) {
	t.Helper()
	c := NewColpittsPaperScale()
	x0 := c.BiasPoint()
	x0[1] += 0.05 // kick off the unstable bias point
	T, xc, err := shooting.EstimatePeriod(c, x0, 300.0/c.F0Linear())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Characterise(c, xc, T, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

func TestColpittsBiasPointConsistent(t *testing.T) {
	c := NewColpittsPaperScale()
	x := c.BiasPoint()
	// The bias point must be an equilibrium of the vector field.
	dst := make([]float64, 3)
	c.Eval(x, dst)
	// Scale by the fastest rate to get a dimensionless residual.
	for i, v := range dst {
		if math.Abs(v) > 1e-3*c.F0Linear() {
			t.Fatalf("bias residual f[%d] = %g", i, v)
		}
	}
	// Transistor conducting: Vbe = −ve ∈ (0.55, 0.85).
	if -x[1] < 0.55 || -x[1] > 0.85 {
		t.Fatalf("bias Vbe = %g", -x[1])
	}
}

func TestColpittsOscillatesNearTankResonance(t *testing.T) {
	c, res := colpittsPSS(t)
	if math.Abs(res.F0()-c.F0Linear()) > 0.05*c.F0Linear() {
		t.Fatalf("f0 = %g, linear %g", res.F0(), c.F0Linear())
	}
}

func TestColpittsStableCycle(t *testing.T) {
	_, res := colpittsPSS(t)
	for i := 1; i < len(res.Floquet.Multipliers); i++ {
		if cmplx.Abs(res.Floquet.Multipliers[i]) >= 1 {
			t.Fatalf("multiplier %v outside the unit disc", res.Floquet.Multipliers[i])
		}
	}
	if res.C <= 0 {
		t.Fatal("c must be positive")
	}
}

func TestColpittsShotNoiseStateDependence(t *testing.T) {
	// B(x) modulation: the shot-noise column follows √Ic along the swing.
	c := NewColpittsPaperScale()
	b := make([]float64, 9)
	on := c.BiasPoint()
	c.Noise(on, b)
	shotOn := b[0]
	off := append([]float64(nil), on...)
	off[1] = 0 // emitter at ground ⇒ Vbe = 0 ⇒ Ic ≈ 0
	c.Noise(off, b)
	shotOff := b[0]
	if shotOn < 1e3*shotOff {
		t.Fatalf("shot noise not modulated: on=%g off=%g", shotOn, shotOff)
	}
}

func TestColpittsJacobian(t *testing.T) {
	c := NewColpittsPaperScale()
	x := c.BiasPoint()
	maxd := dynsys.CheckJacobian(c, x)
	jac := make([]float64, 9)
	c.Jacobian(x, jac)
	scale := 0.0
	for _, v := range jac {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if maxd > 1e-3*(1+scale) {
		t.Fatalf("jacobian mismatch %g (scale %g)", maxd, scale)
	}
}

func TestColpittsPerSourceBudget(t *testing.T) {
	_, res := colpittsPSS(t)
	if len(res.PerSource) != 3 {
		t.Fatalf("%d sources", len(res.PerSource))
	}
	sum := 0.0
	for _, s := range res.PerSource {
		sum += s.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum %g", sum)
	}
}

func TestNegResLCConstructor(t *testing.T) {
	v := NewNegResLC(2.4e9, 2e-9, 10, 3, 0.15, 300, 2)
	if math.Abs(v.F0Linear()-2.4e9) > 1 {
		t.Fatalf("f0lin %g", v.F0Linear())
	}
	if math.Abs(v.Q()-10) > 1e-9 {
		t.Fatalf("Q %g", v.Q())
	}
	if v.Gm/v.G != 3 {
		t.Fatalf("startup margin %g", v.Gm/v.G)
	}
	if v.ActiveNoise/v.TankNoise != 2 {
		t.Fatalf("excess %g", v.ActiveNoise/v.TankNoise)
	}
}

func TestNegResLCCharacterisation(t *testing.T) {
	v := NewNegResLC(1e8, 5e-9, 8, 3, 0.2, 300, 2)
	res, err := core.Characterise(v, []float64{0.01, 0}, 1e-8, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Oscillates near (slightly below) the tank resonance.
	if res.F0() < 0.85e8 || res.F0() > 1.05e8 {
		t.Fatalf("f0 = %g", res.F0())
	}
	// Active device carries 4× the tank noise power ⇒ ~80% of c.
	frac := map[string]float64{}
	for _, s := range res.PerSource {
		frac[s.Label] = s.Fraction
	}
	if math.Abs(frac["active-device"]-0.8) > 1e-6 || math.Abs(frac["tank-loss"]-0.2) > 1e-6 {
		t.Fatalf("budget %v", frac)
	}
}

func TestNegResLCPhaseNoiseImprovesWithQ(t *testing.T) {
	// Classic design rule (Leeson and the rigorous theory agree):
	// higher tank Q ⇒ lower (2πf0)²c at fixed swing scale.
	cAt := func(q float64) float64 {
		v := NewNegResLC(1e8, 5e-9, q, 3, 0.2, 300, 2)
		res, err := core.Characterise(v, []float64{0.01, 0}, 1e-8, nil)
		if err != nil {
			t.Fatal(err)
		}
		return math.Pow(2*math.Pi*res.F0(), 2) * res.C
	}
	lowQ := cAt(4)
	highQ := cAt(16)
	if highQ >= lowQ {
		t.Fatalf("phase noise did not improve with Q: %g vs %g", lowQ, highQ)
	}
	// In this sweep (fixed f0, L, swing and relative startup margin) the
	// only Q-dependence is the tank noise power ∝ G ∝ 1/Q, so the expected
	// improvement is ≈ Q ratio = 4×.
	if r := lowQ / highQ; r < 3 || r > 5.5 {
		t.Fatalf("Q improvement %gx, want ≈4x", r)
	}
}
