package osc

import "math"

// NegResLC is a cross-coupled negative-resistance LC oscillator — the
// canonical integrated VCO core: a parallel RLC tank whose loss conductance
// G is overcome by a saturating cross-coupled transconductor
// Gm·Vs·tanh(v/Vs). State: [tank voltage v (V), inductor current iL (A)].
//
//	C·dv/dt  = −G·v − iL + Gm·Vs·tanh(v/Vs)
//	L·diL/dt = v
//
// Noise: tank-loss thermal current noise and an excess active-device
// current source, both injected into the tank node.
type NegResLC struct {
	L, C, G     float64 // tank inductance, capacitance, loss conductance
	Gm, Vs      float64 // transconductor small-signal gm and saturation scale
	TankNoise   float64 // √(two-sided PSD) of the tank-loss current noise
	ActiveNoise float64 // √(two-sided PSD) of the active-device current noise
}

// NewNegResLC builds a VCO at frequency f0 with inductance l, loaded Q q,
// startup margin gmRatio = Gm/G and saturation scale vs, with thermal tank
// noise at tempK and an active-device excess-noise factor.
func NewNegResLC(f0, l, q, gmRatio, vs, tempK, excess float64) *NegResLC {
	omega0 := 2 * math.Pi * f0
	cap := 1 / (omega0 * omega0 * l)
	g := omega0 * cap / q
	tank := math.Sqrt(2 * 1.380649e-23 * tempK * g)
	return &NegResLC{
		L: l, C: cap, G: g,
		Gm: gmRatio * g, Vs: vs,
		TankNoise:   tank,
		ActiveNoise: excess * tank,
	}
}

// F0Linear returns the tank resonance 1/(2π√(LC)).
func (o *NegResLC) F0Linear() float64 { return 1 / (2 * math.Pi * math.Sqrt(o.L*o.C)) }

// Q returns the loaded quality factor ω0·C/G.
func (o *NegResLC) Q() float64 { return 2 * math.Pi * o.F0Linear() * o.C / o.G }

// Dim implements dynsys.System.
func (o *NegResLC) Dim() int { return 2 }

// Eval implements dynsys.System.
func (o *NegResLC) Eval(x, dst []float64) {
	v, il := x[0], x[1]
	dst[0] = (-o.G*v - il + o.Gm*o.Vs*math.Tanh(v/o.Vs)) / o.C
	dst[1] = v / o.L
}

// Jacobian implements dynsys.System.
func (o *NegResLC) Jacobian(x []float64, dst []float64) {
	sech := 1 / math.Cosh(x[0]/o.Vs)
	dst[0] = (-o.G + o.Gm*sech*sech) / o.C
	dst[1] = -1 / o.C
	dst[2] = 1 / o.L
	dst[3] = 0
}

// NumNoise implements dynsys.System.
func (o *NegResLC) NumNoise() int { return 2 }

// Noise implements dynsys.System.
func (o *NegResLC) Noise(x []float64, dst []float64) {
	dst[0], dst[1] = o.TankNoise/o.C, o.ActiveNoise/o.C
	dst[2], dst[3] = 0, 0
}

// NoiseLabels implements dynsys.System.
func (o *NegResLC) NoiseLabels() []string { return []string{"tank-loss", "active-device"} }
