package osc

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/shooting"
)

func ringResult(t *testing.T, stages int) *core.Result {
	t.Helper()
	r := NewECLRingPaper()
	r.Stages = stages
	T, x0, err := shooting.EstimatePeriod(r, r.InitialState(), 500e-9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Characterise(r, x0, T, &core.Options{
		Shooting: &shooting.Options{StepsPerPeriod: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFiveStageRingFrequencyScaling(t *testing.T) {
	// A ring oscillator's frequency scales as 1/(2·N·t_d): the 5-stage ring
	// must run at ≈ 3/5 of the 3-stage frequency.
	f3 := ringResult(t, 3).F0()
	f5 := ringResult(t, 5).F0()
	ratio := f5 / f3
	if math.Abs(ratio-0.6) > 0.08 {
		t.Fatalf("f5/f3 = %g, want ≈ 0.6", ratio)
	}
}

func TestFiveStageRingJitterImproves(t *testing.T) {
	// More stages average more independent noise per cycle: the normalised
	// figure (2πf0)²·c improves (decreases) with stage count at fixed
	// per-stage design (McNeill's √N law for jitter accumulation).
	r3 := ringResult(t, 3)
	r5 := ringResult(t, 5)
	fom3 := math.Pow(2*math.Pi*r3.F0(), 2) * r3.C
	fom5 := math.Pow(2*math.Pi*r5.F0(), 2) * r5.C
	if fom5 >= fom3 {
		t.Fatalf("5-stage FOM %g not better than 3-stage %g", fom5, fom3)
	}
}

func TestFiveStageRingBudgetSymmetry(t *testing.T) {
	res := ringResult(t, 5)
	if len(res.PerSource) != 20 {
		t.Fatalf("%d sources", len(res.PerSource))
	}
	// All five shot-noise sources carry equal shares.
	var shot []float64
	for _, s := range res.PerSource {
		if len(s.Label) > 7 && s.Label[7:] == "shot" {
			shot = append(shot, s.Fraction)
		}
	}
	if len(shot) != 5 {
		t.Fatalf("%d shot sources", len(shot))
	}
	for _, f := range shot[1:] {
		if math.Abs(f-shot[0]) > 0.01*shot[0] {
			t.Fatalf("stage shot shares unequal: %v", shot)
		}
	}
}
