package osc

import (
	"math"

	"repro/internal/dynsys"
	"repro/internal/faultinject"
)

// faultSystem wraps a registry-built model with the model-eval fault points,
// so chaos tests can delay, poison or crash any registered oscillator without
// the model knowing. With no fault plan installed each Eval pays three
// nil-pointer loads — zero allocations, guarded by TestFaultHooksFreeOnRK4 —
// which is why every Build wraps unconditionally instead of gating on a flag.
type faultSystem struct {
	dynsys.System
}

// Eval implements dynsys.System with the three eval fault points:
// osc.eval.delay sleeps (slow model), osc.eval.nan poisons the first
// component of f(x) (non-finite bail-out paths), osc.eval.panic panics
// (sweep panic isolation).
func (s faultSystem) Eval(x, dst []float64) {
	_ = faultinject.Fire(faultinject.OscEvalDelay)
	_ = faultinject.Fire(faultinject.OscEvalPanic) // ModePanic: panics when it fires
	s.System.Eval(x, dst)
	if faultinject.Fire(faultinject.OscEvalNaN) != nil {
		dst[0] = math.NaN()
	}
}

// Unwrap returns the model underneath the fault hooks (or sys itself when it
// is not wrapped), for callers that need the concrete oscillator type.
func (s faultSystem) Unwrap() dynsys.System { return s.System }

// withFaultHooks wraps sys for Build. Kept as a helper so the wrap site in
// Build stays one line.
func withFaultHooks(sys dynsys.System) dynsys.System { return faultSystem{System: sys} }

// Unwrap strips the fault-point wrapper Build applies, returning the concrete
// oscillator. A system that is not wrapped is returned as is.
func Unwrap(sys dynsys.System) dynsys.System {
	if fs, ok := sys.(faultSystem); ok {
		return fs.System
	}
	return sys
}
