package osc

import (
	"errors"
	"math"
	"testing"

	"repro/internal/faultinject"
)

// TestBatchOfMatchesScalar proves the batch evaluators — native SoA bodies
// and the LaneBatch fallback alike — are bit-identical to the scalar systems
// lane by lane, across registry models and batch widths.
func TestBatchOfMatchesScalar(t *testing.T) {
	cases := []struct {
		model  string
		params []map[string]float64 // one per lane
	}{
		{"hopf", []map[string]float64{{}, {"lambda": 2, "omega": 3e6}, {"omega": 5e6, "sigma": 0.03}}},
		{"vanderpol", []map[string]float64{{"mu": 0.5}, {"mu": 1.5}, {"mu": 3}}},
		{"bandpass", []map[string]float64{{}, {}}}, // LaneBatch fallback
		{"ring", []map[string]float64{{}, {"rc": 600}, {"iee": 300e-6}}},
	}
	for _, tc := range cases {
		models := make([]*BuiltModel, len(tc.params))
		for i, p := range tc.params {
			bm, err := Build(tc.model, p)
			if err != nil {
				t.Fatal(err)
			}
			models[i] = bm
		}
		be, err := BatchOf(models)
		if err != nil {
			t.Fatalf("%s: %v", tc.model, err)
		}
		n, lanes := be.Dim(), be.Lanes()
		if n != models[0].Sys.Dim() || lanes != len(models) {
			t.Fatalf("%s: batch shape %dx%d", tc.model, n, lanes)
		}
		// A spread of states around each model's recommended X0.
		xs := make([]float64, n*lanes)
		for k := 0; k < lanes; k++ {
			for i := 0; i < n; i++ {
				xs[i*lanes+k] = models[k].X0[i]*(1+0.1*float64(k)) + 0.01*float64(i)
			}
		}
		fb := make([]float64, n*lanes)
		jb := make([]float64, n*n*lanes)
		be.EvalBatch(xs, fb)
		be.JacobianBatch(xs, jb)
		xk := make([]float64, n)
		fk := make([]float64, n)
		jk := make([]float64, n*n)
		for k := 0; k < lanes; k++ {
			for i := 0; i < n; i++ {
				xk[i] = xs[i*lanes+k]
			}
			models[k].Sys.Eval(xk, fk)
			models[k].Sys.Jacobian(xk, jk)
			for i := 0; i < n; i++ {
				if fb[i*lanes+k] != fk[i] {
					t.Fatalf("%s lane %d: EvalBatch[%d] = %v, scalar %v", tc.model, k, i, fb[i*lanes+k], fk[i])
				}
			}
			for i := 0; i < n*n; i++ {
				if jb[i*lanes+k] != jk[i] {
					t.Fatalf("%s lane %d: JacobianBatch[%d] = %v, scalar %v", tc.model, k, i, jb[i*lanes+k], jk[i])
				}
			}
		}
	}
}

func TestBatchOfUsesNativeBodies(t *testing.T) {
	models := make([]*BuiltModel, 2)
	for i := range models {
		bm, err := Build("hopf", map[string]float64{"omega": float64(i+1) * 1e6})
		if err != nil {
			t.Fatal(err)
		}
		models[i] = bm
	}
	be, err := BatchOf(models)
	if err != nil {
		t.Fatal(err)
	}
	bf, ok := be.(batchFaultSystem)
	if !ok {
		t.Fatalf("BatchOf did not wrap with fault hooks: %T", be)
	}
	if _, ok := bf.Unwrap().(*hopfBatch); !ok {
		t.Fatalf("homogeneous hopf batch uses %T, want *hopfBatch", bf.Unwrap())
	}
}

func TestBatchOfRejectsDimMismatch(t *testing.T) {
	hopf, err := Build("hopf", nil)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := Build("ring", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BatchOf([]*BuiltModel{hopf, ring}); err == nil {
		t.Fatal("mixed-dimension batch accepted")
	}
}

func TestBatchFaultHooks(t *testing.T) {
	models := make([]*BuiltModel, 2)
	for i := range models {
		bm, err := Build("hopf", nil)
		if err != nil {
			t.Fatal(err)
		}
		models[i] = bm
	}
	be, err := BatchOf(models)
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{1, 1, 0, 0}
	dst := make([]float64, 4)

	defer faultinject.Enable(faultinject.Plan{faultinject.OscEvalNaN: {}})()
	be.EvalBatch(xs, dst)
	if !math.IsNaN(dst[0]) {
		t.Fatal("osc.eval.nan did not poison lane 0")
	}
	if math.IsNaN(dst[1]) || math.IsNaN(dst[2]) || math.IsNaN(dst[3]) {
		t.Fatal("poison leaked beyond the first component of lane 0")
	}

	faultinject.Enable(faultinject.Plan{faultinject.OscEvalPanic: {Mode: faultinject.ModePanic}})
	func() {
		defer func() {
			rec := recover()
			var ie *faultinject.InjectedError
			if rec == nil {
				t.Fatal("osc.eval.panic did not panic the batched eval")
			}
			err, ok := rec.(error)
			if !ok || !errors.As(err, &ie) {
				t.Fatalf("panic value %v, want *InjectedError", rec)
			}
		}()
		be.EvalBatch(xs, dst)
	}()
}
