package osc

import (
	"fmt"
	"math"

	"repro/internal/dynsys"
)

// ECLRing models the paper's second example (Figure 4): a three-stage ring
// oscillator with fully differential bipolar ECL buffer delay cells
// (current-steering differential pair loaded by Rc, followed by emitter
// followers driving the next stage).
//
// Each stage i contributes two differential states:
//
//	vd_i — differential collector voltage:
//	    Cc·dvd_i/dt = −vd_i/Rc − IEE·tanh(vb_i/(2VT))
//	vb_i — differential voltage at the stage's diff-pair bases, behind the
//	    base resistance rb and the emitter-follower output resistance Ref:
//	    Cb·dvb_i/dt = (vd_{i−1} − vb_i)/(rb + Ref)
//
// Three identical inverting stages give the odd loop inversion a
// differential ring needs. The three design knobs swept by the paper map
// directly onto the physics:
//
//   - Rc sets the collector time constant Rc·Cc (and the swing IEE·Rc),
//   - rb sets the base-input time constant (rb+Ref)·Cb and its own
//     thermal noise,
//   - IEE sets the swing/slew rate and the shot-noise level.
//
// Noise sources per stage (two-sided PSDs, differential half-circuit):
//
//	collector load thermal:  4kT/Rc  (two Rc resistors)   → vd equation
//	collector shot noise:    q·IEE   (Ic1+Ic2 = IEE)       → vd equation
//	base-resistance thermal: 4kT·rb  (two rb)              → vb equation
//	emitter-follower thermal: 4kT·Ref                      → vb equation
type ECLRing struct {
	Stages int     // number of delay cells (odd; the paper uses 3)
	Rc     float64 // collector load resistance (Ω)
	Rb     float64 // zero-bias base resistance (Ω)
	Ref    float64 // emitter-follower output resistance (Ω)
	IEE    float64 // tail bias current (A)
	Cc     float64 // collector node capacitance (F)
	Cb     float64 // base node capacitance (F)
	VT     float64 // thermal voltage kT/q (V)
	TempK  float64 // temperature for noise (K)
}

// NewECLRingPaper returns the three-stage ring with the paper's nominal
// design point (first row of Figure 4(a): Rc = 500 Ω, rb = 58 Ω,
// IEE = 331 µA). Cc and Cb are chosen so the nominal oscillation frequency
// lands near the paper's measured 167.7 MHz.
func NewECLRingPaper() *ECLRing {
	return &ECLRing{
		Stages: 3,
		Rc:     500,
		Rb:     58,
		Ref:    150,
		IEE:    331e-6,
		Cc:     1.132e-12,
		Cb:     2.83e-12,
		VT:     0.02585,
		TempK:  dynsys.RoomTempK,
	}
}

// Dim implements dynsys.System: two states per stage, ordered
// [vd_0, vb_0, vd_1, vb_1, ...].
func (r *ECLRing) Dim() int { return 2 * r.Stages }

func (r *ECLRing) vdIdx(i int) int { return 2 * i }
func (r *ECLRing) vbIdx(i int) int { return 2*i + 1 }

// Eval implements dynsys.System.
func (r *ECLRing) Eval(x, dst []float64) {
	n := r.Stages
	rin := r.Rb + r.Ref
	for i := 0; i < n; i++ {
		vd := x[r.vdIdx(i)]
		vb := x[r.vbIdx(i)]
		vdPrev := x[r.vdIdx((i+n-1)%n)]
		dst[r.vdIdx(i)] = (-vd/r.Rc - r.IEE*math.Tanh(vb/(2*r.VT))) / r.Cc
		dst[r.vbIdx(i)] = (vdPrev - vb) / (rin * r.Cb)
	}
}

// Jacobian implements dynsys.System.
func (r *ECLRing) Jacobian(x []float64, dst []float64) {
	n := 2 * r.Stages
	for i := range dst[:n*n] {
		dst[i] = 0
	}
	rin := r.Rb + r.Ref
	for i := 0; i < r.Stages; i++ {
		vb := x[r.vbIdx(i)]
		sech := 1 / math.Cosh(vb/(2*r.VT))
		gm := r.IEE / (2 * r.VT) * sech * sech
		vd, vbi := r.vdIdx(i), r.vbIdx(i)
		vdPrev := r.vdIdx((i + r.Stages - 1) % r.Stages)
		dst[vd*n+vd] = -1 / (r.Rc * r.Cc)
		dst[vd*n+vbi] = -gm / r.Cc
		dst[vbi*n+vdPrev] = 1 / (rin * r.Cb)
		dst[vbi*n+vbi] = -1 / (rin * r.Cb)
	}
}

// NumNoise implements dynsys.System: four sources per stage.
func (r *ECLRing) NumNoise() int { return 4 * r.Stages }

// Noise implements dynsys.System.
func (r *ECLRing) Noise(x []float64, dst []float64) {
	n := 2 * r.Stages
	p := r.NumNoise()
	for i := range dst[:n*p] {
		dst[i] = 0
	}
	kT := dynsys.BoltzmannK * r.TempK
	rin := r.Rb + r.Ref
	for i := 0; i < r.Stages; i++ {
		vd, vb := r.vdIdx(i), r.vbIdx(i)
		col := 4 * i
		// Collector load thermal: differential current noise 4kT/Rc.
		dst[vd*p+col] = math.Sqrt(4*kT/r.Rc) / r.Cc
		// Shot noise of the steered collector currents: q·IEE total.
		dst[vd*p+col+1] = math.Sqrt(dynsys.ElectronQ*r.IEE) / r.Cc
		// Base-resistance thermal: differential voltage noise 4kT·rb in
		// series with the (rb+Ref)·Cb input lag.
		dst[vb*p+col+2] = math.Sqrt(4*kT*r.Rb) / (rin * r.Cb)
		// Emitter-follower output-resistance thermal.
		dst[vb*p+col+3] = math.Sqrt(4*kT*r.Ref) / (rin * r.Cb)
	}
}

// NoiseLabels implements dynsys.System.
func (r *ECLRing) NoiseLabels() []string {
	out := make([]string, 0, r.NumNoise())
	for i := 0; i < r.Stages; i++ {
		out = append(out,
			fmt.Sprintf("stage%d.Rc-thermal", i),
			fmt.Sprintf("stage%d.shot", i),
			fmt.Sprintf("stage%d.rb-thermal", i),
			fmt.Sprintf("stage%d.ef-thermal", i),
		)
	}
	return out
}

// Swing returns the nominal differential collector swing IEE·Rc.
func (r *ECLRing) Swing() float64 { return r.IEE * r.Rc }

// InitialState returns a symmetry-broken starting point that reliably
// excites the oscillating (differential rotating) mode of the ring.
func (r *ECLRing) InitialState() []float64 {
	x := make([]float64, r.Dim())
	sw := r.Swing()
	for i := 0; i < r.Stages; i++ {
		ph := 2 * math.Pi * float64(i) / float64(r.Stages)
		x[r.vdIdx(i)] = sw * math.Cos(ph)
		x[r.vbIdx(i)] = sw * math.Sin(ph)
	}
	return x
}
