package osc

// FitzHughNagumo is a relaxation oscillator in the strongly slow/fast
// regime, used to exercise the pipeline on stiff, strongly non-sinusoidal
// limit cycles (the kind a square-wave clock generator produces):
//
//	ε·v̇ = v − v³/3 − w + noise(σv)
//	  ẇ = v + A     + noise(σw)
//
// For |A| < 1 and small ε the system has a stable relaxation limit cycle
// with fast v-jumps and slow w-drifts.
type FitzHughNagumo struct {
	Eps    float64 // time-scale separation ε ≪ 1
	A      float64 // asymmetry; |A| < 1 for oscillation
	SigmaV float64 // noise into the fast equation
	SigmaW float64 // noise into the slow equation
}

// Dim implements dynsys.System.
func (f *FitzHughNagumo) Dim() int { return 2 }

// Eval implements dynsys.System.
func (f *FitzHughNagumo) Eval(x, dst []float64) {
	v, w := x[0], x[1]
	dst[0] = (v - v*v*v/3 - w) / f.Eps
	dst[1] = v + f.A
}

// Jacobian implements dynsys.System.
func (f *FitzHughNagumo) Jacobian(x []float64, dst []float64) {
	v := x[0]
	dst[0] = (1 - v*v) / f.Eps
	dst[1] = -1 / f.Eps
	dst[2] = 1
	dst[3] = 0
}

// NumNoise implements dynsys.System.
func (f *FitzHughNagumo) NumNoise() int { return 2 }

// Noise implements dynsys.System.
func (f *FitzHughNagumo) Noise(x []float64, dst []float64) {
	dst[0], dst[1] = f.SigmaV/f.Eps, 0
	dst[2], dst[3] = 0, f.SigmaW
}

// NoiseLabels implements dynsys.System.
func (f *FitzHughNagumo) NoiseLabels() []string {
	return []string{"fast-equation", "slow-equation"}
}
