package osc

import "math"

// Bandpass models the oscillator of the paper's first example (Figure 1):
// a Tow-Thomas second-order bandpass filter closed around a comparator.
// With ideal OpAmps the paper notes this circuit is ODE-equivalent to a
// parallel RLC tank driven by a nonlinear voltage-controlled current source,
// which is exactly what this model implements:
//
//	C·dv/dt  = −v/R − iL + Icomp·tanh(v/Vc) + noise
//	L·diL/dt = v
//
// The comparator is the saturating VCCS Icomp·tanh(v/Vc); Vc sets its
// switching sharpness. Noise is a single external white current source into
// the tank node (the paper's breadboard used an external source whose
// intensity dominated all internal device noise), with two-sided PSD SI.
//
// State: x = [v (V), iL (A)].
type Bandpass struct {
	R, L, C float64 // tank components
	Icomp   float64 // comparator output current amplitude (A)
	Vc      float64 // comparator switching scale (V)
	SI      float64 // two-sided PSD of the injected noise current (A²/Hz)
}

// NewBandpassPaper returns the oscillator configured for the paper's
// measurement: Q = 1, f0 = 6.66 kHz, with the external-noise intensity
// calibrated (see EXPERIMENTS.md) so the computed phase-diffusion constant
// matches the paper's reported c = 7.56e−8 s²·Hz.
func NewBandpassPaper() *Bandpass {
	// The comparator feedback pulls the oscillation below the linear tank
	// resonance (f_osc ≈ 0.8911·f0_linear at Q = 1 with this comparator);
	// the linear resonance is pre-compensated so the oscillation lands on
	// the paper's 6.66 kHz.
	f0 := 6660.0 / 0.891128
	omega0 := 2 * math.Pi * f0
	c := 100e-9           // 100 nF
	r := 1 / (omega0 * c) // Q = R·ω0·C = 1
	l := 1 / (omega0 * omega0 * c)
	return &Bandpass{
		R:     r,
		L:     l,
		C:     c,
		Icomp: math.Pi / (4 * r), // fundamental-balance amplitude ≈ 1 V
		Vc:    0.05,
		SI:    1.6274e-12,
	}
}

// Q returns the tank quality factor R·ω0·C = R·√(C/L).
func (b *Bandpass) Q() float64 { return b.R * math.Sqrt(b.C/b.L) }

// F0Linear returns the linear tank resonance 1/(2π√(LC)); the oscillation
// frequency is close to (slightly below) this for a sharp comparator.
func (b *Bandpass) F0Linear() float64 { return 1 / (2 * math.Pi * math.Sqrt(b.L*b.C)) }

// Dim implements dynsys.System.
func (b *Bandpass) Dim() int { return 2 }

// Eval implements dynsys.System.
func (b *Bandpass) Eval(x, dst []float64) {
	v, il := x[0], x[1]
	dst[0] = (-v/b.R - il + b.Icomp*math.Tanh(v/b.Vc)) / b.C
	dst[1] = v / b.L
}

// Jacobian implements dynsys.System.
func (b *Bandpass) Jacobian(x []float64, dst []float64) {
	v := x[0]
	sech := 1 / math.Cosh(v/b.Vc)
	dIdv := b.Icomp / b.Vc * sech * sech
	dst[0] = (-1/b.R + dIdv) / b.C
	dst[1] = -1 / b.C
	dst[2] = 1 / b.L
	dst[3] = 0
}

// NumNoise implements dynsys.System.
func (b *Bandpass) NumNoise() int { return 1 }

// Noise implements dynsys.System: the external current source injects into
// the tank node only.
func (b *Bandpass) Noise(x []float64, dst []float64) {
	dst[0] = math.Sqrt(b.SI) / b.C
	dst[1] = 0
}

// NoiseLabels implements dynsys.System.
func (b *Bandpass) NoiseLabels() []string { return []string{"external-current"} }
