package osc

// VanDerPol is the classical van der Pol oscillator
//
//	ẋ = y,   ẏ = μ(1−x²)y − x,
//
// with additive noise σ on the second equation (the "force" equation, where
// physical noise enters a mass-spring or RLC analogue). For small μ the
// limit cycle is nearly circular with amplitude ≈ 2 and period
// T ≈ 2π(1 + μ²/16); for large μ it becomes a relaxation oscillation.
type VanDerPol struct {
	Mu    float64
	Sigma float64
}

// Dim implements dynsys.System.
func (v *VanDerPol) Dim() int { return 2 }

// Eval implements dynsys.System.
func (v *VanDerPol) Eval(x, dst []float64) {
	dst[0] = x[1]
	dst[1] = v.Mu*(1-x[0]*x[0])*x[1] - x[0]
}

// Jacobian implements dynsys.System.
func (v *VanDerPol) Jacobian(x []float64, dst []float64) {
	dst[0], dst[1] = 0, 1
	dst[2] = -2*v.Mu*x[0]*x[1] - 1
	dst[3] = v.Mu * (1 - x[0]*x[0])
}

// NumNoise implements dynsys.System.
func (v *VanDerPol) NumNoise() int { return 1 }

// Noise implements dynsys.System.
func (v *VanDerPol) Noise(x []float64, dst []float64) {
	dst[0] = 0
	dst[1] = v.Sigma
}

// NoiseLabels implements dynsys.System.
func (v *VanDerPol) NoiseLabels() []string { return []string{"force-equation"} }
