package osc

import (
	"strings"
	"testing"
)

func TestRegistryBuildDefaults(t *testing.T) {
	for _, name := range Models() {
		bm, err := Build(name, nil)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if bm.Sys == nil {
			t.Fatalf("Build(%q): nil system", name)
		}
		if len(bm.X0) != bm.Sys.Dim() {
			t.Fatalf("Build(%q): X0 dim %d != system dim %d", name, len(bm.X0), bm.Sys.Dim())
		}
		if bm.TGuess <= 0 && bm.EstimateTMax <= 0 {
			t.Fatalf("Build(%q): neither TGuess nor EstimateTMax set", name)
		}
		// The system must be evaluable at the recommended starting point.
		dst := make([]float64, bm.Sys.Dim())
		bm.Sys.Eval(bm.X0, dst)
	}
}

func TestRegistryParamOverride(t *testing.T) {
	bm, err := Build("hopf", map[string]float64{"omega": 10, "yonly": 1})
	if err != nil {
		t.Fatal(err)
	}
	h := Unwrap(bm.Sys).(*Hopf)
	if h.Omega != 10 || !h.YOnly || h.Lambda != 1 {
		t.Fatalf("override not applied: %+v", h)
	}
}

func TestRegistryStrictness(t *testing.T) {
	if _, err := Build("nosuch", nil); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("want unknown-model error, got %v", err)
	}
	if _, err := Build("hopf", map[string]float64{"omgea": 3}); err == nil || !strings.Contains(err.Error(), "no parameter") {
		t.Fatalf("want unknown-parameter error, got %v", err)
	}
}

func TestRegistryDefaultParamsCopied(t *testing.T) {
	p := DefaultParams("hopf")
	if p == nil {
		t.Fatal("nil defaults for hopf")
	}
	p["lambda"] = 99
	if DefaultParams("hopf")["lambda"] == 99 {
		t.Fatal("DefaultParams returned shared map")
	}
	if DefaultParams("nosuch") != nil {
		t.Fatal("want nil for unknown model")
	}
}
