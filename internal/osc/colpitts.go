package osc

import (
	"math"

	"repro/internal/dynsys"
)

// Colpitts is a single-BJT common-base Colpitts oscillator in the standard
// three-state (Kennedy) form. With the base grounded, the states are the
// collector-emitter voltage v1 = Vce (across C1), the emitter voltage ve
// (across C2, so Vbe = −ve) and the inductor current iL:
//
//	C1·dv1/dt = iL − Ic(−ve)
//	C2·dve/dt = iL − (ve + Vee)/Ree
//	 L·diL/dt = Vcc − v1 − ve − RL·iL
//
// with Ic(Vbe) = Is·exp(min(Vbe, Vclamp)/VT) (the clamp keeps transient
// Newton/RK evaluations inside floating-point range and never activates on
// the limit cycle). For moderate loop gain the circuit has a stable periodic
// orbit; at higher gain it famously period-doubles into chaos — parameters
// here stay in the periodic regime.
//
// Noise: collector shot noise (state-dependent, the paper's B(x) modulation
// by the large signal), emitter-resistor thermal noise, and tank-loss (RL)
// series voltage noise.
type Colpitts struct {
	C1, C2, L float64
	RL, Ree   float64
	Vcc, Vee  float64
	Is, VT    float64
	TempK     float64
	clampVbe  float64
}

// NewColpittsPaperScale returns a Colpitts oscillator in the periodic
// regime near 1/(2π√(L·C1C2/(C1+C2))) ≈ 98 kHz.
func NewColpittsPaperScale() *Colpitts {
	return &Colpitts{
		C1: 54e-9, C2: 54e-9, L: 98.5e-6,
		RL: 20, Ree: 4000,
		Vcc: 5, Vee: 5,
		Is: 1e-14, VT: 0.02585,
		TempK:    dynsys.RoomTempK,
		clampVbe: 0.95,
	}
}

// F0Linear returns the series-tank resonance 1/(2π√(L·C1C2/(C1+C2))).
func (c *Colpitts) F0Linear() float64 {
	ceff := c.C1 * c.C2 / (c.C1 + c.C2)
	return 1 / (2 * math.Pi * math.Sqrt(c.L*ceff))
}

// BiasPoint returns the DC operating point (v1, ve, iL) with the
// transistor conducting, found by a few fixed-point sweeps of the
// exponential bias equation.
func (c *Colpitts) BiasPoint() []float64 {
	vbe := 0.7
	for i := 0; i < 50; i++ {
		il := (c.Vee - vbe) / c.Ree
		if il <= 0 {
			il = 1e-6
		}
		vbe = c.VT * math.Log(il/c.Is)
	}
	ve := -vbe
	il := (c.Vee - vbe) / c.Ree
	v1 := c.Vcc - ve - c.RL*il
	return []float64{v1, ve, il}
}

func (c *Colpitts) ic(vbe float64) float64 {
	v := vbe
	if v > c.clampVbe {
		v = c.clampVbe
	}
	return c.Is * math.Exp(v/c.VT)
}

func (c *Colpitts) gmAt(vbe float64) float64 {
	if vbe > c.clampVbe {
		return 0
	}
	return c.ic(vbe) / c.VT
}

// Dim implements dynsys.System. State: [v1 = Vce, ve, iL].
func (c *Colpitts) Dim() int { return 3 }

// Eval implements dynsys.System.
func (c *Colpitts) Eval(x, dst []float64) {
	v1, ve, il := x[0], x[1], x[2]
	dst[0] = (il - c.ic(-ve)) / c.C1
	dst[1] = (il - (ve+c.Vee)/c.Ree) / c.C2
	dst[2] = (c.Vcc - v1 - ve - c.RL*il) / c.L
}

// Jacobian implements dynsys.System.
func (c *Colpitts) Jacobian(x []float64, dst []float64) {
	gm := c.gmAt(-x[1])
	// rows: dv1, dve, diL; cols: v1, ve, il
	dst[0], dst[1], dst[2] = 0, gm/c.C1, 1/c.C1 // ∂(−Ic(−ve))/∂ve = +gm
	dst[3], dst[4], dst[5] = 0, -1/(c.Ree*c.C2), 1/c.C2
	dst[6], dst[7], dst[8] = -1/c.L, -1/c.L, -c.RL/c.L
}

// NumNoise implements dynsys.System: collector shot, Ree thermal, RL thermal.
func (c *Colpitts) NumNoise() int { return 3 }

// Noise implements dynsys.System.
func (c *Colpitts) Noise(x []float64, dst []float64) {
	for i := range dst[:9] {
		dst[i] = 0
	}
	kT := dynsys.BoltzmannK * c.TempK
	dst[0*3+0] = dynsys.ShotNoise(c.ic(-x[1])) / c.C1 // shot → collector node
	dst[1*3+1] = math.Sqrt(2*kT/c.Ree) / c.C2         // Ree thermal → emitter node
	dst[2*3+2] = math.Sqrt(2*kT*c.RL) / c.L           // RL thermal → inductor loop
}

// NoiseLabels implements dynsys.System.
func (c *Colpitts) NoiseLabels() []string {
	return []string{"collector-shot", "Ree-thermal", "RL-thermal"}
}
