package osc

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dynsys"
)

// BuiltModel is a ready-to-characterise oscillator instance produced by
// Build: the system plus the library's recommended starting point for the
// pipeline. Jobs that arrive as pure data (a model name and a parameter map,
// e.g. over the characterisation-service API) resolve to a BuiltModel; the
// caller may still override X0 or the period guess.
type BuiltModel struct {
	Sys dynsys.System
	// Params is the fully resolved parameter map (defaults overlaid with the
	// caller's overrides). Content-addressed cache keys must be built from
	// this map, not the caller's sparse one, so that {"hopf", {}} and
	// {"hopf", all-defaults-spelled-out} address the same result.
	Params map[string]float64
	// X0 is the recommended initial state guess.
	X0 []float64
	// TGuess is the recommended period guess. It is 0 when the model has no
	// reliable closed-form estimate; then EstimateTMax is set instead.
	TGuess float64
	// EstimateTMax, when > 0, is the transient horizon over which
	// shooting.EstimatePeriod should derive the period guess (models whose
	// period has no usable closed form).
	EstimateTMax float64
	// ShootingSteps is the model's recommended shooting StepsPerPeriod
	// (0 = solver default). Stiff or many-state models need finer orbits.
	ShootingSteps int
}

// modelDef is one registry entry: parameter defaults plus a constructor from
// a fully resolved parameter map.
type modelDef struct {
	defaults map[string]float64
	build    func(p map[string]float64) *BuiltModel
}

// registry maps model names to definitions. Parameter names are the lowercase
// struct field names; boolean knobs are encoded as 0/1 floats so a job stays
// a flat {name, params} record.
var registry = map[string]modelDef{
	"hopf": {
		// The pnchar demo point: a 1 MHz Hopf normal form.
		defaults: map[string]float64{"lambda": 1, "omega": 2 * math.Pi * 1e6, "sigma": 1e-2, "yonly": 0},
		build: func(p map[string]float64) *BuiltModel {
			h := &Hopf{Lambda: p["lambda"], Omega: p["omega"], Sigma: p["sigma"], YOnly: p["yonly"] != 0}
			return &BuiltModel{Sys: h, X0: []float64{1, 0.1}, TGuess: h.Period() * 1.05}
		},
	},
	"vanderpol": {
		defaults: map[string]float64{"mu": 1, "sigma": 0.01},
		build: func(p map[string]float64) *BuiltModel {
			v := &VanDerPol{Mu: p["mu"], Sigma: p["sigma"]}
			// Crude relaxation-oscillation period estimate; the shooting
			// transient and closest-return scan refine it.
			return &BuiltModel{Sys: v, X0: []float64{2, 0}, TGuess: 2*math.Pi + (3-2*math.Log(2))*v.Mu}
		},
	},
	"bandpass": {
		defaults: map[string]float64{},
		build: func(p map[string]float64) *BuiltModel {
			return &BuiltModel{Sys: NewBandpassPaper(), X0: []float64{0.1, 0}, TGuess: 1 / 6660.0}
		},
	},
	"ring": {
		defaults: map[string]float64{"iee": 331e-6, "rc": 500, "rb": 58},
		build: func(p map[string]float64) *BuiltModel {
			r := NewECLRingPaper()
			r.IEE, r.Rc, r.Rb = p["iee"], p["rc"], p["rb"]
			return &BuiltModel{Sys: r, X0: r.InitialState(), TGuess: 6e-9, ShootingSteps: 4000}
		},
	},
	"fhn": {
		defaults: map[string]float64{"eps": 0.08, "a": 0, "sigmav": 1e-3, "sigmaw": 1e-3},
		build: func(p map[string]float64) *BuiltModel {
			f := &FitzHughNagumo{Eps: p["eps"], A: p["a"], SigmaV: p["sigmav"], SigmaW: p["sigmaw"]}
			return &BuiltModel{Sys: f, X0: []float64{1, 0}, EstimateTMax: 60, ShootingSteps: 8000}
		},
	},
	"negres": {
		defaults: map[string]float64{"f0": 1e8, "l": 5e-9, "q": 8, "gmratio": 3, "vs": 0.2, "tempk": 300, "excess": 2},
		build: func(p map[string]float64) *BuiltModel {
			v := NewNegResLC(p["f0"], p["l"], p["q"], p["gmratio"], p["vs"], p["tempk"], p["excess"])
			return &BuiltModel{Sys: v, X0: []float64{0.01, 0}, TGuess: 1 / p["f0"]}
		},
	},
	"colpitts": {
		defaults: map[string]float64{},
		build: func(p map[string]float64) *BuiltModel {
			c := NewColpittsPaperScale()
			x0 := c.BiasPoint()
			x0[1] += 0.05 // kick the emitter node off the bias point
			return &BuiltModel{Sys: c, X0: x0, EstimateTMax: 300 / c.F0Linear()}
		},
	},
}

// Models returns the registered model names, sorted.
func Models() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// DefaultParams returns a copy of a model's parameter defaults (nil for an
// unknown model). Useful for API discoverability.
func DefaultParams(name string) map[string]float64 {
	def, ok := registry[name]
	if !ok {
		return nil
	}
	out := make(map[string]float64, len(def.defaults))
	for k, v := range def.defaults {
		out[k] = v
	}
	return out
}

// Build constructs a registered oscillator from pure data: a model name and
// parameter overrides. Unknown model names and unknown parameter names are
// errors (strict matching keeps content-addressed cache keys honest: a typoed
// parameter must not silently characterise the default model).
func Build(name string, params map[string]float64) (*BuiltModel, error) {
	def, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("osc: unknown model %q (registered: %v)", name, Models())
	}
	p := make(map[string]float64, len(def.defaults))
	for k, v := range def.defaults {
		p[k] = v
	}
	for k, v := range params {
		if _, ok := def.defaults[k]; !ok {
			return nil, fmt.Errorf("osc: model %q has no parameter %q (accepted: %v)", name, k, paramNames(def.defaults))
		}
		p[k] = v
	}
	bm := def.build(p)
	bm.Params = p
	// Every registry-built model carries the chaos harness's model-eval fault
	// points (see internal/faultinject); free when no plan is installed.
	bm.Sys = withFaultHooks(bm.Sys)
	return bm, nil
}

func paramNames(defaults map[string]float64) []string {
	out := make([]string, 0, len(defaults))
	for k := range defaults {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
