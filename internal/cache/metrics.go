package cache

import "repro/internal/obs"

// cacheInstruments are the content-addressed store's metrics. Gauges are
// adjusted by delta (never Set) so several stores in one process compose.
type cacheInstruments struct {
	hitsMem    *obs.Counter // pn_cache_hits_total{tier="mem"}
	hitsDisk   *obs.Counter // pn_cache_hits_total{tier="disk"}
	misses     *obs.Counter // pn_cache_misses_total
	shared     *obs.Counter // pn_cache_shared_total (singleflight collapses)
	evictions  *obs.Counter // pn_cache_evictions_total
	diskErrors *obs.Counter // pn_cache_disk_errors_total
	inflight   *obs.Gauge   // pn_cache_inflight
	memBytes   *obs.Gauge   // pn_cache_mem_bytes
	memEntries *obs.Gauge   // pn_cache_mem_entries
}

var cacheMetrics = obs.NewView(func(r *obs.Registry) *cacheInstruments {
	hits := r.CounterVec("pn_cache_hits_total", "Cache hits, by tier (mem = in-memory LRU, disk = persistent store).", "tier")
	return &cacheInstruments{
		hitsMem:    hits.With("mem"),
		hitsDisk:   hits.With("disk"),
		misses:     r.Counter("pn_cache_misses_total", "Cache lookups that found nothing in any tier."),
		shared:     r.Counter("pn_cache_shared_total", "Requests served by joining an identical in-flight computation (singleflight)."),
		evictions:  r.Counter("pn_cache_evictions_total", "Entries evicted from the in-memory LRU to respect the byte bound."),
		diskErrors: r.Counter("pn_cache_disk_errors_total", "Disk-store read/write failures tolerated as misses (corrupt, truncated or unwritable files)."),
		inflight:   r.Gauge("pn_cache_inflight", "Computations currently running under singleflight."),
		memBytes:   r.Gauge("pn_cache_mem_bytes", "Bytes held by the in-memory LRU tier."),
		memEntries: r.Gauge("pn_cache_mem_entries", "Entries held by the in-memory LRU tier."),
	}
})
