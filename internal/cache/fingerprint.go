package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"
)

// fingerprintVersion prefixes the hashed canonical form. Bump it whenever the
// serialisation of cached payloads changes incompatibly: old disk entries
// then become unreachable (fresh keys) instead of decoding garbage.
const fingerprintVersion = "pnfp1"

// Fingerprint accumulates the identity of one characterisation request —
// model name, parameters, initial state, period guess, effective solver
// knobs — and condenses it to a content address. Fields are an unordered
// set: the key depends only on the (name, value) pairs, never on insertion
// order, so independently-built requests collide exactly when they describe
// the same computation.
type Fingerprint struct {
	fields map[string]string
}

// NewFingerprint returns an empty fingerprint.
func NewFingerprint() *Fingerprint {
	return &Fingerprint{fields: make(map[string]string)}
}

// Set records a string field (last write per key wins).
func (f *Fingerprint) Set(key, val string) *Fingerprint {
	f.fields[key] = val
	return f
}

// SetFloat records a float64 field losslessly (hex floating point).
func (f *Fingerprint) SetFloat(key string, v float64) *Fingerprint {
	return f.Set(key, strconv.FormatFloat(v, 'x', -1, 64))
}

// SetFloats records a float64 slice field losslessly; length is part of the
// encoding, so a prefix never collides with the full slice.
func (f *Fingerprint) SetFloats(key string, vs []float64) *Fingerprint {
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(len(vs)))
	for _, v := range vs {
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	}
	return f.Set(key, sb.String())
}

// SetInt records an integer field.
func (f *Fingerprint) SetInt(key string, v int) *Fingerprint {
	return f.Set(key, strconv.Itoa(v))
}

// SetAll records every pair of m (e.g. core.Options.FingerprintFields()).
func (f *Fingerprint) SetAll(m map[string]string) *Fingerprint {
	for k, v := range m {
		f.fields[k] = v
	}
	return f
}

// Key condenses the fields to the content address: the hex SHA-256 of the
// canonical serialisation (version header, then "key=value" lines sorted by
// key, with key and value lengths encoded so no concatenation is ambiguous).
func (f *Fingerprint) Key() string {
	keys := make([]string, 0, len(f.fields))
	for k := range f.fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	h.Write([]byte(fingerprintVersion))
	h.Write([]byte{'\n'})
	for _, k := range keys {
		v := f.fields[k]
		// Length-prefixed to keep (k="ab", v="c") distinct from (k="a", v="bc").
		h.Write([]byte(strconv.Itoa(len(k))))
		h.Write([]byte{':'})
		h.Write([]byte(k))
		h.Write([]byte{'='})
		h.Write([]byte(strconv.Itoa(len(v))))
		h.Write([]byte{':'})
		h.Write([]byte(v))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CharacterisationKey builds the canonical cache key of one characterisation
// job: model identity (name + parameters), the starting point (x0, period
// guess or estimation horizon), and the effective solver knobs (as returned
// by core.Options.FingerprintFields). Every producer of cacheable
// characterisations — the sweep CLI, the job server, library callers — must
// build keys through this helper so their stores interoperate.
func CharacterisationKey(model string, params map[string]float64, x0 []float64, tGuess float64, optFields map[string]string) string {
	f := NewFingerprint()
	f.Set("model", model)
	for k, v := range params {
		f.SetFloat("param."+k, v)
	}
	f.SetFloats("x0", x0)
	f.SetFloat("tguess", tGuess)
	f.SetAll(optFields)
	return f.Key()
}
