package cache

import (
	"encoding/json"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// diskSchemaVersion is the on-disk envelope schema. Entries with a different
// version (or none) are treated as misses and removed, so a schema change
// invalidates stale files instead of decoding them wrongly.
const diskSchemaVersion = 1

// diskEnvelope wraps a payload on disk with enough context to validate it:
// the schema version and the key the payload was stored under (guards
// against files copied or renamed across keys).
type diskEnvelope struct {
	V       int             `json:"v"`
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// diskStore is the persistent tier: one JSON file per key under dir.
// Writes are atomic and durable (temp file, fsync, rename, directory fsync);
// reads tolerate anything — a truncated, garbage or wrong-version file is a
// miss, never an error.
type diskStore struct {
	dir string
}

func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskStore{dir: dir}, nil
}

// path maps a key to its file. Keys are content hashes (hex), but guard
// against anything path-hostile slipping through: non-filename-safe keys get
// no disk tier.
func (d *diskStore) path(key string) (string, bool) {
	if key == "" || len(key) > 256 {
		return "", false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
		default:
			return "", false
		}
	}
	return filepath.Join(d.dir, key+".json"), true
}

// get loads a payload; any failure is a miss. Corrupt files are removed so
// they cannot shadow a future healthy write.
func (d *diskStore) get(key string) ([]byte, bool) {
	p, ok := d.path(key)
	if !ok {
		return nil, false
	}
	if faultinject.Fire(faultinject.CacheDiskRead) != nil {
		cacheMetrics.Get().diskErrors.Inc()
		return nil, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		if !os.IsNotExist(err) {
			cacheMetrics.Get().diskErrors.Inc()
		}
		return nil, false
	}
	var env diskEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.V != diskSchemaVersion || env.Key != key || len(env.Payload) == 0 {
		cacheMetrics.Get().diskErrors.Inc()
		_ = os.Remove(p)
		return nil, false
	}
	return env.Payload, true
}

// put stores a payload atomically and durably: write to a temp file, fsync it
// so the bytes reach stable storage before the rename makes them visible,
// rename into place, then fsync the directory so the rename itself survives a
// power loss. Skipping either sync lets a "cached" entry vanish or truncate
// on crash — exactly what the corrupt-entry-as-miss read path would then hide
// as silent recomputation, or worse, serve as garbage.
//
// The payload must be valid JSON (the store's envelope embeds it verbatim);
// Store.Put validates that upstream.
func (d *diskStore) put(key string, payload []byte) {
	p, ok := d.path(key)
	if !ok {
		return
	}
	data, err := json.Marshal(diskEnvelope{V: diskSchemaVersion, Key: key, Payload: payload})
	if err != nil {
		cacheMetrics.Get().diskErrors.Inc()
		return
	}
	if faultinject.Fire(faultinject.CacheDiskWrite) != nil {
		cacheMetrics.Get().diskErrors.Inc()
		return
	}
	tmp, err := os.CreateTemp(d.dir, "."+key+".tmp-*")
	if err != nil {
		cacheMetrics.Get().diskErrors.Inc()
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		cacheMetrics.Get().diskErrors.Inc()
		_ = os.Remove(tmpName)
		return
	}
	if err := os.Rename(tmpName, p); err != nil {
		cacheMetrics.Get().diskErrors.Inc()
		_ = os.Remove(tmpName)
		return
	}
	syncDir(d.dir)
}

// syncDir fsyncs a directory so a just-renamed entry's name is durable.
// Failures are counted, not fatal: the entry is still correct, just not yet
// guaranteed across power loss.
func syncDir(dir string) {
	f, err := os.Open(dir)
	if err != nil {
		cacheMetrics.Get().diskErrors.Inc()
		return
	}
	if err := f.Sync(); err != nil {
		cacheMetrics.Get().diskErrors.Inc()
	}
	_ = f.Close()
}
