package cache

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestMain fails the suite if any test leaks a goroutine — singleflight
// waiters that never wake, disk-tier writers orphaned by an error path.
func TestMain(m *testing.M) { leakcheck.Main(m) }
