package cache

import (
	"testing"
)

func TestFingerprintFieldOrderIndependence(t *testing.T) {
	a := NewFingerprint().
		Set("model", "hopf").
		SetFloat("param.omega", 6.28).
		SetFloats("x0", []float64{1, 0.1}).
		SetInt("steps", 2000)
	b := NewFingerprint().
		SetInt("steps", 2000).
		SetFloats("x0", []float64{1, 0.1}).
		SetFloat("param.omega", 6.28).
		Set("model", "hopf")
	if a.Key() != b.Key() {
		t.Fatalf("insertion order changed the key:\n%s\n%s", a.Key(), b.Key())
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := func() *Fingerprint {
		return NewFingerprint().Set("model", "hopf").SetFloat("omega", 6.28).SetFloats("x0", []float64{1, 0})
	}
	key := base().Key()
	if got := base().Key(); got != key {
		t.Fatal("fingerprint is not deterministic")
	}
	variants := []*Fingerprint{
		base().Set("model", "vanderpol"),
		base().SetFloat("omega", 6.280000000001),
		base().SetFloats("x0", []float64{1, 1e-300}),
		base().SetFloats("x0", []float64{1}),
		base().Set("extra", ""),
	}
	for i, v := range variants {
		if v.Key() == key {
			t.Fatalf("variant %d collided with the base key", i)
		}
	}
}

func TestFingerprintAmbiguityResistance(t *testing.T) {
	// (k="ab", v="c") must differ from (k="a", v="bc") — the canonical form
	// is length-prefixed.
	a := NewFingerprint().Set("ab", "c")
	b := NewFingerprint().Set("a", "bc")
	if a.Key() == b.Key() {
		t.Fatal("key/value boundary is ambiguous")
	}
	// Two fields vs one concatenated field.
	c := NewFingerprint().Set("a", "1").Set("b", "2")
	d := NewFingerprint().Set("a", "1b=2")
	if c.Key() == d.Key() {
		t.Fatal("field boundary is ambiguous")
	}
}

func TestCharacterisationKeyStability(t *testing.T) {
	opts := map[string]string{"shoot.tol": "0x1p-30", "quadpoints": "0"}
	k1 := CharacterisationKey("hopf", map[string]float64{"omega": 3, "lambda": 1}, []float64{1, 0.1}, 2.1, opts)
	k2 := CharacterisationKey("hopf", map[string]float64{"lambda": 1, "omega": 3}, []float64{1, 0.1}, 2.1, opts)
	if k1 != k2 {
		t.Fatal("param map order changed the key")
	}
	k3 := CharacterisationKey("hopf", map[string]float64{"lambda": 1, "omega": 3.5}, []float64{1, 0.1}, 2.1, opts)
	if k1 == k3 {
		t.Fatal("param value change did not change the key")
	}
	if len(k1) != 64 {
		t.Fatalf("key is not a hex sha256: %q", k1)
	}
}
