package cache

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// TestChaosDiskWriteFault drops disk writes through the injected fault: the
// entry still serves from memory, but a fresh store over the same directory
// misses — and once the fault lifts, the write path recovers.
func TestChaosDiskWriteFault(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	off := faultinject.Enable(faultinject.Plan{
		faultinject.CacheDiskWrite: {Mode: faultinject.ModeError},
	})
	if err := s.Put("deadbeef", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	off()

	if faultinject.Enabled() {
		t.Fatal("harness still enabled")
	}
	if _, ok := s.Get("deadbeef"); !ok {
		t.Fatal("memory tier lost the entry")
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("disk write happened under the fault: %v", ents)
	}
	if got := reg.Snapshot().Counter("pn_cache_disk_errors_total", ""); got != 1 {
		t.Fatalf("disk errors = %d, want 1", got)
	}

	// Fault lifted: the write path works again.
	if err := s.Put("cafe", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "cafe.json")); err != nil {
		t.Fatalf("post-fault write missing: %v", err)
	}
}

// TestChaosDiskReadFault turns a durably stored entry into a read-error miss
// while the fault is active, without deleting the file: the entry is intact
// and serves again once the fault lifts.
func TestChaosDiskReadFault(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("feed", []byte(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}

	// Fresh store over the same dir: memory tier empty, must go to disk.
	s2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	off := faultinject.Enable(faultinject.Plan{
		faultinject.CacheDiskRead: {Mode: faultinject.ModeError},
	})
	if _, ok := s2.Get("feed"); ok {
		off()
		t.Fatal("read fault did not produce a miss")
	}
	off()
	if got := reg.Snapshot().Counter("pn_cache_disk_errors_total", ""); got != 1 {
		t.Fatalf("disk errors = %d, want 1", got)
	}
	if v, ok := s2.Get("feed"); !ok || string(v) != `{"v":3}` {
		t.Fatalf("entry not served after fault lifted: %q %v", v, ok)
	}
}

// TestDiskPutDurable sanity-checks the fsync path end to end: the rename is
// visible, the temp file is gone, and the envelope decodes.
func TestDiskPutDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("00ff", []byte(`{"k":"v"}`)); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "00ff.json" {
		t.Fatalf("dir contents: %v", ents)
	}
	s2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get("00ff"); !ok || string(v) != `{"k":"v"}` {
		t.Fatalf("reload: %q %v", v, ok)
	}
}
