// Package cache is the content-addressed result store of the
// characterisation pipeline. A request's identity — model, parameters,
// starting point, effective solver knobs — is condensed by a Fingerprint to
// a SHA-256 key; the Store maps keys to JSON payloads through two tiers (a
// byte-bounded in-memory LRU in front of an optional persistent directory of
// JSON files) and collapses concurrent identical computations with
// singleflight, so N simultaneous requests for the same key cost one
// pipeline run.
//
// Payloads are opaque JSON ([]byte) — the cache knows nothing about
// core.Result, so it serves any (de)serialisable product. All methods are
// safe for concurrent use and safe on a nil *Store (a nil store never hits
// and Do simply computes), making the cache a zero-cost optional dependency.
package cache

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
)

// DefaultMaxBytes bounds the in-memory tier when Options.MaxBytes is unset.
const DefaultMaxBytes = 64 << 20 // 64 MiB

// Origin says which tier (if any) satisfied a lookup.
type Origin int

const (
	// OriginComputed: nothing cached or in flight; the caller's compute ran.
	OriginComputed Origin = iota
	// OriginMem: served from the in-memory LRU.
	OriginMem
	// OriginDisk: served from the persistent tier (and promoted to memory).
	OriginDisk
	// OriginShared: served by joining an identical in-flight computation.
	OriginShared
)

// Cached reports whether the value was served without running compute.
func (o Origin) Cached() bool { return o != OriginComputed }

// String implements fmt.Stringer.
func (o Origin) String() string {
	switch o {
	case OriginComputed:
		return "computed"
	case OriginMem:
		return "mem"
	case OriginDisk:
		return "disk"
	case OriginShared:
		return "shared"
	}
	return fmt.Sprintf("Origin(%d)", int(o))
}

// Options configures a Store.
type Options struct {
	// MaxBytes bounds the in-memory LRU by payload bytes
	// (default DefaultMaxBytes). Entries larger than the bound bypass the
	// memory tier entirely (they still reach the disk tier).
	MaxBytes int64
	// Dir, when non-empty, adds the persistent tier: one JSON file per key,
	// written atomically, tolerated as misses when corrupt. The directory is
	// created if needed.
	Dir string
}

// entry is one in-memory LRU element.
type entry struct {
	key string
	val []byte
}

// flight is one in-progress computation that concurrent callers join.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Store is the two-tier content-addressed store. The zero value is not
// useful; build one with New. A nil *Store is a valid "caching off" value.
type Store struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List // front = most recent; values are *entry
	idx      map[string]*list.Element
	sf       map[string]*flight
	disk     *diskStore
}

// New builds a Store. It fails only when the disk directory cannot be
// created.
func New(o Options) (*Store, error) {
	mb := o.MaxBytes
	if mb <= 0 {
		mb = DefaultMaxBytes
	}
	s := &Store{
		maxBytes: mb,
		lru:      list.New(),
		idx:      make(map[string]*list.Element),
		sf:       make(map[string]*flight),
	}
	if o.Dir != "" {
		d, err := newDiskStore(o.Dir)
		if err != nil {
			return nil, fmt.Errorf("cache: disk store: %w", err)
		}
		s.disk = d
	}
	return s, nil
}

// Get returns the payload for key from memory or disk. Disk hits are
// promoted to the memory tier. The returned slice must be treated as
// read-only (it may be shared with other callers).
func (s *Store) Get(key string) ([]byte, bool) {
	v, origin := s.lookup(key, true)
	return v, origin.Cached()
}

// lookup is Get plus origin reporting; record=false suppresses hit/miss
// metrics (used by Do, which classifies the outcome itself).
func (s *Store) lookup(key string, record bool) ([]byte, Origin) {
	if s == nil || key == "" {
		return nil, OriginComputed
	}
	m := cacheMetrics.Get()
	s.mu.Lock()
	if el, ok := s.idx[key]; ok {
		s.lru.MoveToFront(el)
		val := el.Value.(*entry).val
		s.mu.Unlock()
		if record {
			m.hitsMem.Inc()
		}
		return val, OriginMem
	}
	s.mu.Unlock()
	if s.disk != nil {
		if val, ok := s.disk.get(key); ok {
			s.insertMem(key, val)
			if record {
				m.hitsDisk.Inc()
			}
			return val, OriginDisk
		}
	}
	if record {
		m.misses.Inc()
	}
	return nil, OriginComputed
}

// Put stores a JSON payload under key in both tiers. Non-JSON payloads are
// rejected (the disk envelope embeds the payload verbatim, and every
// legitimate caller stores serialised results anyway).
func (s *Store) Put(key string, payload []byte) error {
	if s == nil || key == "" {
		return nil
	}
	if !json.Valid(payload) {
		return errors.New("cache: payload is not valid JSON")
	}
	s.insertMem(key, payload)
	if s.disk != nil {
		s.disk.put(key, payload)
	}
	return nil
}

// insertMem adds (or refreshes) a memory-tier entry and evicts from the LRU
// tail until the byte bound holds. Oversized payloads are skipped: evicting
// the whole cache for one giant entry would serve nobody.
func (s *Store) insertMem(key string, val []byte) {
	sz := int64(len(val))
	if sz > s.maxBytes {
		return
	}
	m := cacheMetrics.Get()
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.idx[key]; ok {
		old := el.Value.(*entry)
		s.bytes += sz - int64(len(old.val))
		m.memBytes.Add(float64(sz - int64(len(old.val))))
		old.val = val
		s.lru.MoveToFront(el)
	} else {
		s.idx[key] = s.lru.PushFront(&entry{key: key, val: val})
		s.bytes += sz
		m.memBytes.Add(float64(sz))
		m.memEntries.Add(1)
	}
	for s.bytes > s.maxBytes {
		tail := s.lru.Back()
		if tail == nil {
			break
		}
		ev := tail.Value.(*entry)
		s.lru.Remove(tail)
		delete(s.idx, ev.key)
		s.bytes -= int64(len(ev.val))
		m.memBytes.Add(-float64(len(ev.val)))
		m.memEntries.Add(-1)
		m.evictions.Inc()
	}
}

// Do returns the payload for key, computing it at most once across all
// concurrent callers: a cached value is returned immediately; if an
// identical computation is already in flight the caller waits for it and
// shares its outcome (value or error — a shared error means the one
// computation failed, and each waiter reports it verbatim); otherwise
// compute runs, and a successful result is stored in both tiers.
//
// Failed computations are never cached: the next Do for the key computes
// again. On a nil Store (or empty key), Do just runs compute.
func (s *Store) Do(key string, compute func() ([]byte, error)) ([]byte, Origin, error) {
	if s == nil || key == "" {
		val, err := compute()
		return val, OriginComputed, err
	}
	m := cacheMetrics.Get()
	if val, origin := s.lookup(key, false); origin.Cached() {
		switch origin {
		case OriginMem:
			m.hitsMem.Inc()
		case OriginDisk:
			m.hitsDisk.Inc()
		}
		return val, origin, nil
	}
	s.mu.Lock()
	if fl, ok := s.sf[key]; ok {
		s.mu.Unlock()
		<-fl.done
		m.shared.Inc()
		if fl.err != nil {
			return nil, OriginShared, fl.err
		}
		return fl.val, OriginShared, nil
	}
	// Re-check the memory tier under the lock: a flight that completed
	// between lookup and Lock has already stored its value.
	if el, ok := s.idx[key]; ok {
		s.lru.MoveToFront(el)
		val := el.Value.(*entry).val
		s.mu.Unlock()
		m.hitsMem.Inc()
		return val, OriginMem, nil
	}
	fl := &flight{done: make(chan struct{})}
	s.sf[key] = fl
	s.mu.Unlock()

	m.misses.Inc()
	m.inflight.Add(1)
	val, err := compute()
	if err == nil {
		err = s.Put(key, val)
	}
	fl.val, fl.err = val, err
	if err != nil {
		fl.val = nil
	}
	s.mu.Lock()
	delete(s.sf, key)
	s.mu.Unlock()
	m.inflight.Add(-1)
	close(fl.done)
	if err != nil {
		return nil, OriginComputed, err
	}
	return val, OriginComputed, nil
}

// Len returns the number of entries in the memory tier.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Bytes returns the payload bytes held by the memory tier.
func (s *Store) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}
