package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

func payload(i int) []byte { return []byte(fmt.Sprintf(`{"v":%d}`, i)) }

func TestMemGetPut(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k"); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put("k", payload(1)); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get("k")
	if !ok || !bytes.Equal(v, payload(1)) {
		t.Fatalf("got %q ok=%v", v, ok)
	}
	if err := s.Put("k", []byte("not json")); err == nil {
		t.Fatal("want invalid-JSON rejection")
	}
}

func TestLRUEvictionAtByteBound(t *testing.T) {
	// Each payload is 9 bytes; bound of 30 holds three entries.
	s, err := New(Options{MaxBytes: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		_ = s.Put(fmt.Sprintf("k%d", i), payload(i)) // {"v":1} etc: 7 bytes... use fixed-size
	}
	sz := int64(len(payload(1)))
	wantEntries := int(30 / sz)
	if s.Len() != min(3, wantEntries) {
		t.Fatalf("len=%d want %d", s.Len(), min(3, wantEntries))
	}
	// Touch k1 so k2 becomes the LRU victim.
	if _, ok := s.Get("k1"); !ok {
		t.Fatal("k1 should be resident")
	}
	for i := 4; s.Len()*int(sz) <= 30-int(sz); i++ {
		_ = s.Put(fmt.Sprintf("k%d", i), payload(i))
	}
	_ = s.Put("overflow", payload(99))
	if s.Bytes() > 30 {
		t.Fatalf("bytes=%d exceeds bound", s.Bytes())
	}
	if _, ok := s.Get("k2"); ok {
		t.Fatal("k2 should have been evicted before the recently-used k1")
	}
	if _, ok := s.Get("k1"); !ok {
		t.Fatal("recently-used k1 was evicted")
	}
}

func TestOversizedPayloadSkipsMemory(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{MaxBytes: 4, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("big", payload(7)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("oversized entry resident in memory (len=%d)", s.Len())
	}
	// Still served from disk.
	if v, ok := s.Get("big"); !ok || !bytes.Equal(v, payload(7)) {
		t.Fatalf("disk get: %q ok=%v", v, ok)
	}
}

func TestSingleflightCollapsesConcurrentIdenticalJobs(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	origins := make([]Origin, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, origin, err := s.Do("job", func() ([]byte, error) {
				computes.Add(1)
				return payload(42), nil
			})
			if err != nil {
				t.Error(err)
			}
			origins[i], vals[i] = origin, v
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	computed := 0
	for i := 0; i < n; i++ {
		if !bytes.Equal(vals[i], payload(42)) {
			t.Fatalf("caller %d got %q", i, vals[i])
		}
		if origins[i] == OriginComputed {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("%d callers report OriginComputed, want 1", computed)
	}
}

func TestDoSharesErrorsWithoutCaching(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("pipeline exploded")
	if _, _, err := s.Do("k", func() ([]byte, error) { return nil, boom }); err != boom {
		t.Fatalf("got %v", err)
	}
	// Failure was not cached: the next Do computes again.
	v, origin, err := s.Do("k", func() ([]byte, error) { return payload(1), nil })
	if err != nil || origin != OriginComputed || !bytes.Equal(v, payload(1)) {
		t.Fatalf("v=%q origin=%v err=%v", v, origin, err)
	}
	// Now it is cached.
	if _, origin, _ := s.Do("k", func() ([]byte, error) { t.Fatal("must not compute"); return nil, nil }); origin != OriginMem {
		t.Fatalf("origin=%v want mem", origin)
	}
}

func TestDiskPersistsAcrossStores(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put("k", payload(5)); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s2.Get("k")
	if !ok || !bytes.Equal(v, payload(5)) {
		t.Fatalf("fresh store: %q ok=%v", v, ok)
	}
	if s2.Len() != 1 {
		t.Fatal("disk hit was not promoted to memory")
	}
}

func TestDiskCorruptionToleratedAsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"garbage":   []byte("not json at all"),
		"truncated": []byte(`{"v":1,"key":"trunc`),
		"badver":    []byte(`{"v":999,"key":"badver","payload":{"x":1}}`),
		"wrongkey":  []byte(`{"v":1,"key":"other","payload":{"x":1}}`),
		"empty":     nil,
	}
	for key, content := range cases {
		if err := os.WriteFile(filepath.Join(dir, key+".json"), content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("%s: corrupt file served as a hit", key)
		}
		// The bad file is removed, so a healthy write is not shadowed.
		if err := s.Put(key, payload(1)); err != nil {
			t.Fatal(err)
		}
		s2, _ := New(Options{Dir: dir})
		if v, ok := s2.Get(key); !ok || !bytes.Equal(v, payload(1)) {
			t.Fatalf("%s: healthy rewrite not visible: %q ok=%v", key, v, ok)
		}
	}
}

func TestPathHostileKeysNeverTouchDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"../escape", "a/b", "a\\b", ""} {
		_ = s.Put(key, payload(1))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("hostile keys created files: %v", entries)
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.json")); err == nil {
		t.Fatal("path traversal escaped the cache dir")
	}
}

func TestNilStoreIsCachingOff(t *testing.T) {
	var s *Store
	if _, ok := s.Get("k"); ok {
		t.Fatal("nil store hit")
	}
	if err := s.Put("k", payload(1)); err != nil {
		t.Fatal(err)
	}
	ran := false
	v, origin, err := s.Do("k", func() ([]byte, error) { ran = true; return payload(2), nil })
	if !ran || err != nil || origin.Cached() || !bytes.Equal(v, payload(2)) {
		t.Fatalf("nil Do: ran=%v v=%q origin=%v err=%v", ran, v, origin, err)
	}
	if s.Len() != 0 || s.Bytes() != 0 {
		t.Fatal("nil store reports contents")
	}
}

func TestConcurrentMixedOperationsRace(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{MaxBytes: 200, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("k%d", i%13)
				switch i % 3 {
				case 0:
					_ = s.Put(k, payload(i))
				case 1:
					s.Get(k)
				default:
					_, _, _ = s.Do(k, func() ([]byte, error) { return payload(i), nil })
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Bytes() > 200 {
		t.Fatalf("byte bound violated: %d", s.Bytes())
	}
}
