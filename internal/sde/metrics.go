package sde

import "repro/internal/obs"

// sdeInstruments are the Monte-Carlo engine metrics. Step counts are
// accumulated locally in EulerMaruyamaBudget and flushed once per path, so
// the per-step loop stays free of atomic traffic.
type sdeInstruments struct {
	steps         *obs.Counter // pn_sde_steps_total
	pathsDone     *obs.Counter // pn_sde_paths_total{outcome="completed"}
	pathsCut      *obs.Counter // pn_sde_paths_total{outcome="cut"}
	pathsAbandond *obs.Counter // pn_sde_paths_total{outcome="abandoned"}
}

var sdeMetrics = obs.NewView(func(r *obs.Registry) *sdeInstruments {
	paths := r.CounterVec("pn_sde_paths_total", "Euler–Maruyama sample paths, by outcome (completed, cut mid-path by a budget trip, or abandoned before starting).", "outcome")
	return &sdeInstruments{
		steps:         r.Counter("pn_sde_steps_total", "Euler–Maruyama integration steps completed."),
		pathsDone:     paths.With("completed"),
		pathsCut:      paths.With("cut"),
		pathsAbandond: paths.With("abandoned"),
	}
})
