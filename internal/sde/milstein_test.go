package sde

import (
	"math"
	"testing"
)

// Geometric Brownian motion dX = σX dW has the exact solution
// X(t) = X0·exp(σW(t) − σ²t/2) — the standard strong-convergence testbed.

func gbmMilstein(sigma, x0 float64) func(dw []float64, dt float64) float64 {
	return func(dw []float64, dt float64) float64 {
		x := x0
		for _, d := range dw {
			// Analytic Milstein for GBM: b = σx, b·b' = σ²x.
			x += sigma*x*d + 0.5*sigma*sigma*x*(d*d-dt)
		}
		return x
	}
}

func gbmEuler(sigma, x0 float64) func(dw []float64, dt float64) float64 {
	return func(dw []float64, dt float64) float64 {
		x := x0
		for _, d := range dw {
			x += sigma * x * d
		}
		return x
	}
}

func TestMilsteinStrongOrderBeatsEuler(t *testing.T) {
	sigma, x0 := 1.0, 1.0
	exact := func(w, tt float64) float64 {
		return x0 * math.Exp(sigma*w-0.5*sigma*sigma*tt)
	}
	trials := 2000
	errAt := func(scheme func(float64, float64) func([]float64, float64) float64, steps int) float64 {
		dt := 1.0 / float64(steps)
		return StrongError(scheme(sigma, x0), exact, 64, steps, trials, dt, 7)
	}
	// Halve dt: Milstein error should drop ~2×, Euler ~√2×.
	em1 := errAt(func(s, x float64) func([]float64, float64) float64 { return gbmEuler(s, x) }, 16)
	em2 := errAt(func(s, x float64) func([]float64, float64) float64 { return gbmEuler(s, x) }, 32)
	mi1 := errAt(func(s, x float64) func([]float64, float64) float64 { return gbmMilstein(s, x) }, 16)
	mi2 := errAt(func(s, x float64) func([]float64, float64) float64 { return gbmMilstein(s, x) }, 32)
	ratioEM := em1 / em2
	ratioMI := mi1 / mi2
	if ratioEM > 1.85 {
		t.Fatalf("Euler ratio %g, expected ≈ √2", ratioEM)
	}
	if ratioMI < 1.7 {
		t.Fatalf("Milstein ratio %g, expected ≈ 2", ratioMI)
	}
	// And Milstein is absolutely more accurate at the same step.
	if mi1 > em1 {
		t.Fatalf("Milstein %g worse than Euler %g", mi1, em1)
	}
}

func TestMilstein1DMatchesAnalyticCorrection(t *testing.T) {
	// One step with a frozen increment: the numeric-derivative Milstein1D
	// must agree with the hand-coded GBM Milstein step.
	sigma := 0.8
	a := func(tt, x float64) float64 { return 0 }
	b := func(tt, x float64) float64 { return sigma * x }
	// Deterministic rng substitute: drive one step manually via dt with a
	// known Gaussian draw — emulate by running Milstein1D with a seeded rng
	// and reproducing its draw.
	rng := newSeededRand(42)
	draw := rng.NormFloat64()
	rng2 := newSeededRand(42)
	dt := 0.01
	got := Milstein1D(a, b, 1, 0, dt, 1, rng2)[1]
	dw := draw * math.Sqrt(dt)
	want := 1 + sigma*dw + 0.5*sigma*sigma*(dw*dw-dt)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("Milstein1D step %g, want %g", got, want)
	}
}

func TestMilstein1DAdditiveNoiseReducesToEM(t *testing.T) {
	// With state-independent diffusion the correction vanishes: Milstein
	// and Euler–Maruyama coincide exactly (same rng stream).
	a := func(tt, x float64) float64 { return -x }
	b := func(tt, x float64) float64 { return 0.5 }
	mi := Milstein1D(a, b, 1, 0, 0.01, 200, newSeededRand(9))
	em := ScalarSDE(a, b, 1, 0, 0.01, 200, newSeededRand(9))
	for k := range mi {
		if math.Abs(mi[k]-em[k]) > 1e-9 {
			t.Fatalf("additive-noise mismatch at %d: %g vs %g", k, mi[k], em[k])
		}
	}
}
