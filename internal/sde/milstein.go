package sde

import (
	"math"
	"math/rand"
)

// Milstein1D integrates the scalar Itô SDE dx = a(t,x)dt + b(t,x)dW with
// the Milstein scheme (strong order 1.0, vs Euler–Maruyama's 0.5):
//
//	x += a·dt + b·ΔW + ½·b·(∂b/∂x)·(ΔW² − dt)
//
// The diffusion derivative is obtained by central differences, so only the
// coefficient functions are needed. Returns x at every step (nsteps+1
// values). The scalar phase SDE (paper Eq. 9) is the primary client: its
// diffusion v1ᵀ(t+α)B(xs(t+α)) depends on the state α, where the Milstein
// correction genuinely matters at coarse steps.
func Milstein1D(a, b func(t, x float64) float64, x0, t0, dt float64, nsteps int, rng *rand.Rand) []float64 {
	out := make([]float64, nsteps+1)
	out[0] = x0
	x := x0
	sqdt := math.Sqrt(dt)
	for k := 0; k < nsteps; k++ {
		t := t0 + float64(k)*dt
		dw := rng.NormFloat64() * sqdt
		bv := b(t, x)
		// Central-difference ∂b/∂x with a state-scaled step.
		h := 1e-6 * (1 + math.Abs(x))
		dbdx := (b(t, x+h) - b(t, x-h)) / (2 * h)
		x += a(t, x)*dt + bv*dw + 0.5*bv*dbdx*(dw*dw-dt)
		out[k+1] = x
	}
	return out
}

// StrongError measures the mean absolute terminal error of a 1-D scheme
// against a reference path built from the SAME Wiener increments at a finer
// resolution; used to verify convergence orders.
func StrongError(scheme func(dw []float64, dt float64) float64, exact func(w, t float64) float64, refine, coarseSteps, trials int, dt float64, seed int64) float64 {
	sum := 0.0
	for tr := 0; tr < trials; tr++ {
		rng := rand.New(rand.NewSource(seed + int64(tr)))
		fine := coarseSteps * refine
		dwFine := make([]float64, fine)
		sq := math.Sqrt(dt / float64(refine))
		w := 0.0
		for i := range dwFine {
			dwFine[i] = rng.NormFloat64() * sq
			w += dwFine[i]
		}
		// Aggregate fine increments into the coarse grid.
		dwCoarse := make([]float64, coarseSteps)
		for i := 0; i < coarseSteps; i++ {
			s := 0.0
			for j := 0; j < refine; j++ {
				s += dwFine[i*refine+j]
			}
			dwCoarse[i] = s
		}
		got := scheme(dwCoarse, dt)
		want := exact(w, dt*float64(coarseSteps))
		sum += math.Abs(got - want)
	}
	return sum / float64(trials)
}

// newSeededRand returns a rand.Rand with the given seed (test helper kept
// here so both production and test code share one constructor).
func newSeededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
