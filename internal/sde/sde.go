// Package sde provides stochastic-differential-equation simulation for
// noisy oscillators: Euler–Maruyama integration of Itô systems
// dx = f(x) dt + B(x) dW with unit-intensity vector Wiener processes, and a
// parallel Monte-Carlo ensemble engine with deterministic per-path seeding.
//
// Noise convention (matches DESIGN.md §5): W is a standard p-dimensional
// Wiener process, so E[dW dWᵀ] = I dt and B(x)Bᵀ(x) is the (two-sided)
// diffusion matrix.
package sde

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/budget"
)

// DriftFunc evaluates the drift f(t, x) into dst.
type DriftFunc func(t float64, x, dst []float64)

// DiffusionFunc evaluates the n×p diffusion matrix B(t, x) into dst
// (row-major, n rows, p columns).
type DiffusionFunc func(t float64, x []float64, dst []float64)

// System bundles the pieces of dx = f dt + B dW.
type System struct {
	Dim      int // state dimension n
	NumNoise int // noise dimension p
	Drift    DriftFunc
	Diff     DiffusionFunc
}

// Path is a realised sample path on a uniform grid.
type Path struct {
	T0, Dt float64
	X      [][]float64 // X[k] is the state at t = T0 + k·Dt
}

// Times returns the sample instants.
func (p *Path) Times() []float64 {
	out := make([]float64, len(p.X))
	for k := range out {
		out[k] = p.T0 + float64(k)*p.Dt
	}
	return out
}

// Component extracts state component i along the path.
func (p *Path) Component(i int) []float64 {
	out := make([]float64, len(p.X))
	for k, x := range p.X {
		out[k] = x[i]
	}
	return out
}

// EulerMaruyama integrates the system from x0 over nsteps steps of size dt,
// recording every `stride`-th point (stride >= 1; the initial point is always
// recorded). rng supplies the Gaussian increments.
func EulerMaruyama(sys System, x0 []float64, t0, dt float64, nsteps, stride int, rng *rand.Rand) *Path {
	p, _ := EulerMaruyamaBudget(sys, x0, t0, dt, nsteps, stride, rng, nil) // nil token never trips
	return p
}

// EulerMaruyamaBudget is EulerMaruyama under a cancellation/budget token,
// polled once per step: a tripped token aborts the path with a wrapped
// budget.ErrCanceled/ErrBudgetExceeded. A nil token never trips, so the
// error is then always nil.
func EulerMaruyamaBudget(sys System, x0 []float64, t0, dt float64, nsteps, stride int, rng *rand.Rand, tok *budget.Token) (*Path, error) {
	if stride < 1 {
		panic("sde: stride must be >= 1")
	}
	n, p := sys.Dim, sys.NumNoise
	if len(x0) != n {
		panic("sde: x0 dimension mismatch")
	}
	x := make([]float64, n)
	copy(x, x0)
	drift := make([]float64, n)
	diff := make([]float64, n*p)
	dw := make([]float64, p)
	sqdt := math.Sqrt(dt)
	path := &Path{T0: t0, Dt: dt * float64(stride)}
	record := func() {
		xc := make([]float64, n)
		copy(xc, x)
		path.X = append(path.X, xc)
	}
	record()
	m := sdeMetrics.Get()
	for k := 0; k < nsteps; k++ {
		t := t0 + float64(k)*dt
		if err := tok.Err(); err != nil {
			m.steps.Add(int64(k))
			m.pathsCut.Inc()
			return nil, fmt.Errorf("sde: Euler–Maruyama at t=%g (step %d/%d): %w", t, k, nsteps, err)
		}
		sys.Drift(t, x, drift)
		sys.Diff(t, x, diff)
		for j := 0; j < p; j++ {
			dw[j] = rng.NormFloat64() * sqdt
		}
		for i := 0; i < n; i++ {
			s := drift[i] * dt
			row := diff[i*p : (i+1)*p]
			for j := 0; j < p; j++ {
				s += row[j] * dw[j]
			}
			x[i] += s
		}
		if (k+1)%stride == 0 {
			record()
		}
	}
	m.steps.Add(int64(nsteps))
	m.pathsDone.Inc()
	return path, nil
}

// EnsembleConfig describes a Monte-Carlo run.
type EnsembleConfig struct {
	Paths  int   // number of sample paths
	Steps  int   // Euler–Maruyama steps per path
	Stride int   // record every Stride-th step (default 1)
	Seed   int64 // master seed; path k uses Seed+k (deterministic fan-out)
	T0, Dt float64
	// Budget, when non-nil, is polled per integration step by every worker;
	// once it trips, unfinished paths are left nil in the result slice (their
	// slots are kept so out[k] always corresponds to seed Seed+k). Completed
	// paths are kept, so a cut-off ensemble still reports everything it
	// learned — but any consumer that iterates the slice (PSD averaging,
	// jitter extraction, phase-variance estimators) must skip the nil entries
	// or pass the slice through Compact first.
	Budget *budget.Token
}

// Compact returns the non-nil paths of an ensemble in order. Use it before
// handing a budget-bounded ensemble to consumers that dereference every
// entry; without a budget, ensembles have no nil entries and Compact returns
// an equal slice.
func Compact(paths []*Path) []*Path {
	out := make([]*Path, 0, len(paths))
	for _, p := range paths {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// Ensemble runs cfg.Paths independent Euler–Maruyama integrations of sys in
// parallel and returns all paths. Path k is seeded with cfg.Seed+k, so
// results are reproducible regardless of scheduling. When cfg.Budget trips
// mid-run, paths cut off before completion are nil in the result — see
// EnsembleConfig.Budget and Compact.
//
// sys is shared by every worker, so its Drift/Diff closures must be safe
// for concurrent use. For systems that keep internal scratch state (e.g.
// core.Result.PhaseSDE) use EnsembleFrom with a per-worker factory.
func Ensemble(sys System, x0 []float64, cfg EnsembleConfig) []*Path {
	return EnsembleFrom(func() System { return sys }, x0, cfg)
}

// EnsembleFrom is Ensemble with a per-worker system factory: each worker
// goroutine calls mk once and uses that instance for all its paths, so
// systems whose Drift/Diff closures reuse scratch buffers never race.
// Results stay deterministic — path k is seeded with cfg.Seed+k and stored
// at out[k] whatever the scheduling. As with Ensemble, a tripped cfg.Budget
// leaves unfinished entries nil; Compact filters them.
func EnsembleFrom(mk func() System, x0 []float64, cfg EnsembleConfig) []*Path {
	stride := cfg.Stride
	if stride < 1 {
		stride = 1
	}
	out := make([]*Path, cfg.Paths)
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Paths {
		workers = cfg.Paths
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys := mk()
			m := sdeMetrics.Get()
			for k := range next {
				if cfg.Budget.Err() != nil {
					m.pathsAbandond.Inc()
					continue // drain; canceled paths stay nil
				}
				rng := rand.New(rand.NewSource(cfg.Seed + int64(k)))
				if p, err := EulerMaruyamaBudget(sys, x0, cfg.T0, cfg.Dt, cfg.Steps, stride, rng, cfg.Budget); err == nil {
					out[k] = p
				}
			}
		}()
	}
	for k := 0; k < cfg.Paths; k++ {
		next <- k
	}
	close(next)
	wg.Wait()
	return out
}

// ScalarSDE integrates the scalar Itô equation dα = a(t, α) dt + b(t, α) dW,
// used for the exact nonlinear phase equation (paper Eq. 9). It returns α
// sampled at every step (nsteps+1 values).
func ScalarSDE(a, b func(t, alpha float64) float64, alpha0, t0, dt float64, nsteps int, rng *rand.Rand) []float64 {
	out := make([]float64, nsteps+1)
	out[0] = alpha0
	alpha := alpha0
	sqdt := math.Sqrt(dt)
	for k := 0; k < nsteps; k++ {
		t := t0 + float64(k)*dt
		alpha += a(t, alpha)*dt + b(t, alpha)*rng.NormFloat64()*sqdt
		out[k+1] = alpha
	}
	return out
}

// WienerPath generates a standard Wiener path W(k·dt), k = 0..nsteps.
func WienerPath(dt float64, nsteps int, rng *rand.Rand) []float64 {
	out := make([]float64, nsteps+1)
	sqdt := math.Sqrt(dt)
	for k := 1; k <= nsteps; k++ {
		out[k] = out[k-1] + rng.NormFloat64()*sqdt
	}
	return out
}

// Stats accumulates running mean and variance (Welford) for ensemble
// post-processing at fixed time points.
type Stats struct {
	n    int
	mean float64
	m2   float64
}

// Add accumulates one observation.
func (s *Stats) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stats) N() int { return s.n }

// Mean returns the running mean.
func (s *Stats) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Stats) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stats) Std() float64 { return math.Sqrt(s.Var()) }
