package sde

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/budget"
)

// Pure Brownian motion: dx = σ dW.
func brownian(sigma float64) System {
	return System{
		Dim:      1,
		NumNoise: 1,
		Drift:    func(t float64, x, dst []float64) { dst[0] = 0 },
		Diff:     func(t float64, x []float64, dst []float64) { dst[0] = sigma },
	}
}

// Ornstein–Uhlenbeck: dx = −θx dt + σ dW.
func ou(theta, sigma float64) System {
	return System{
		Dim:      1,
		NumNoise: 1,
		Drift:    func(t float64, x, dst []float64) { dst[0] = -theta * x[0] },
		Diff:     func(t float64, x []float64, dst []float64) { dst[0] = sigma },
	}
}

func TestBrownianVarianceLinearInTime(t *testing.T) {
	sigma := 0.5
	cfg := EnsembleConfig{Paths: 2000, Steps: 200, Seed: 42, Dt: 0.01}
	paths := Ensemble(brownian(sigma), []float64{0}, cfg)
	// Var[x(t)] should be σ²t.
	for _, k := range []int{50, 100, 200} {
		var st Stats
		for _, p := range paths {
			st.Add(p.X[k][0])
		}
		tt := float64(k) * cfg.Dt
		want := sigma * sigma * tt
		if math.Abs(st.Var()-want) > 0.1*want {
			t.Fatalf("Var[x(%g)] = %g, want %g", tt, st.Var(), want)
		}
		if math.Abs(st.Mean()) > 4*math.Sqrt(want/float64(cfg.Paths)) {
			t.Fatalf("Mean[x(%g)] = %g, want ≈0", tt, st.Mean())
		}
	}
}

func TestOUStationaryVariance(t *testing.T) {
	theta, sigma := 2.0, 1.0
	cfg := EnsembleConfig{Paths: 2000, Steps: 800, Seed: 7, Dt: 0.005}
	paths := Ensemble(ou(theta, sigma), []float64{0}, cfg)
	// Stationary variance σ²/(2θ) = 0.25 after t ≫ 1/θ.
	var st Stats
	for _, p := range paths {
		st.Add(p.X[len(p.X)-1][0])
	}
	want := sigma * sigma / (2 * theta)
	if math.Abs(st.Var()-want) > 0.1*want {
		t.Fatalf("stationary var = %g, want %g", st.Var(), want)
	}
}

func TestEnsembleBudgetCutLeavesNilsCompactFilters(t *testing.T) {
	// An already-expired budget cuts off every path: the slice keeps its
	// length (out[k] ↔ seed Seed+k) with nil entries, and Compact strips
	// them for consumers that dereference everything.
	cfg := EnsembleConfig{Paths: 8, Steps: 50, Seed: 3, Dt: 0.01,
		Budget: budget.WithTimeout(nil, 0)}
	paths := Ensemble(brownian(1), []float64{0}, cfg)
	if len(paths) != cfg.Paths {
		t.Fatalf("budget cut changed the slice length: %d, want %d", len(paths), cfg.Paths)
	}
	for k, p := range paths {
		if p != nil {
			t.Fatalf("path %d completed under an expired budget", k)
		}
	}
	if got := Compact(paths); len(got) != 0 {
		t.Fatalf("Compact kept %d nil paths", len(got))
	}

	// A live budget completes every path and Compact is the identity.
	cfg.Budget = budget.WithTimeout(nil, time.Hour)
	paths = Ensemble(brownian(1), []float64{0}, cfg)
	comp := Compact(paths)
	if len(comp) != len(paths) {
		t.Fatalf("Compact dropped %d completed paths", len(paths)-len(comp))
	}
	for k := range comp {
		if comp[k] == nil || comp[k] != paths[k] {
			t.Fatalf("Compact reordered or lost path %d", k)
		}
	}
}

func TestEnsembleReproducible(t *testing.T) {
	cfg := EnsembleConfig{Paths: 8, Steps: 100, Seed: 99, Dt: 0.01}
	a := Ensemble(brownian(1), []float64{0}, cfg)
	b := Ensemble(brownian(1), []float64{0}, cfg)
	for k := range a {
		for j := range a[k].X {
			if a[k].X[j][0] != b[k].X[j][0] {
				t.Fatalf("path %d not reproducible at %d", k, j)
			}
		}
	}
}

func TestEnsemblePathsIndependent(t *testing.T) {
	cfg := EnsembleConfig{Paths: 2, Steps: 50, Seed: 1, Dt: 0.01}
	paths := Ensemble(brownian(1), []float64{0}, cfg)
	same := true
	for j := range paths[0].X {
		if paths[0].X[j][0] != paths[1].X[j][0] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("paths with different seeds are identical")
	}
}

func TestStride(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := EulerMaruyama(brownian(1), []float64{0}, 0, 0.01, 100, 10, rng)
	if len(p.X) != 11 {
		t.Fatalf("expected 11 recorded points, got %d", len(p.X))
	}
	if p.Dt != 0.1 {
		t.Fatalf("recorded Dt = %g, want 0.1", p.Dt)
	}
	ts := p.Times()
	if ts[0] != 0 || math.Abs(ts[10]-1) > 1e-12 {
		t.Fatalf("times = %v", ts)
	}
}

func TestComponentExtraction(t *testing.T) {
	sys := System{
		Dim:      2,
		NumNoise: 1,
		Drift:    func(t float64, x, dst []float64) { dst[0], dst[1] = 1, 2 },
		Diff:     func(t float64, x []float64, dst []float64) { dst[0], dst[1] = 0, 0 },
	}
	rng := rand.New(rand.NewSource(4))
	p := EulerMaruyama(sys, []float64{0, 0}, 0, 0.1, 10, 1, rng)
	c1 := p.Component(1)
	if math.Abs(c1[10]-2.0) > 1e-12 {
		t.Fatalf("component 1 end = %g, want 2", c1[10])
	}
}

func TestDeterministicDriftMatchesODE(t *testing.T) {
	// With zero diffusion, EM reduces to explicit Euler on ẋ = −x.
	sys := System{
		Dim:      1,
		NumNoise: 1,
		Drift:    func(t float64, x, dst []float64) { dst[0] = -x[0] },
		Diff:     func(t float64, x []float64, dst []float64) { dst[0] = 0 },
	}
	rng := rand.New(rand.NewSource(5))
	p := EulerMaruyama(sys, []float64{1}, 0, 1e-4, 10000, 10000, rng)
	got := p.X[len(p.X)-1][0]
	if math.Abs(got-math.Exp(-1)) > 1e-3 {
		t.Fatalf("x(1) = %g, want %g", got, math.Exp(-1))
	}
}

func TestScalarSDEBrownianScaling(t *testing.T) {
	// dα = σ dW: Var[α(T)] = σ²T.
	var st Stats
	sigma := 2.0
	for k := 0; k < 1500; k++ {
		rng := rand.New(rand.NewSource(int64(k)))
		alpha := ScalarSDE(
			func(t, a float64) float64 { return 0 },
			func(t, a float64) float64 { return sigma },
			0, 0, 0.01, 100, rng)
		st.Add(alpha[100])
	}
	want := sigma * sigma * 1.0
	if math.Abs(st.Var()-want) > 0.1*want {
		t.Fatalf("Var = %g, want %g", st.Var(), want)
	}
}

func TestWienerPathIncrements(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := WienerPath(0.5, 10000, rng)
	var st Stats
	for k := 1; k < len(w); k++ {
		st.Add(w[k] - w[k-1])
	}
	if math.Abs(st.Var()-0.5) > 0.03 {
		t.Fatalf("increment var = %g, want 0.5", st.Var())
	}
	if math.Abs(st.Mean()) > 0.03 {
		t.Fatalf("increment mean = %g, want 0", st.Mean())
	}
}

func TestStatsWelford(t *testing.T) {
	var s Stats
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %g", s.Mean())
	}
	// Unbiased variance of that classic sample is 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("var = %g, want %g", s.Var(), 32.0/7.0)
	}
	if math.Abs(s.Std()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatalf("std = %g", s.Std())
	}
}

func TestStatsDegenerate(t *testing.T) {
	var s Stats
	if s.Var() != 0 || s.Mean() != 0 {
		t.Fatal("empty stats should be zero")
	}
	s.Add(3)
	if s.Var() != 0 || s.Mean() != 3 {
		t.Fatal("single observation stats")
	}
}

// Property: Welford mean/var agree with the two-pass formulas.
func TestQuickStatsAgainstTwoPass(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, v := range xs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e8 {
				clean = append(clean, v)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var s Stats
		mean := 0.0
		for _, v := range clean {
			s.Add(v)
			mean += v
		}
		mean /= float64(len(clean))
		ss := 0.0
		for _, v := range clean {
			ss += (v - mean) * (v - mean)
		}
		variance := ss / float64(len(clean)-1)
		scale := 1 + math.Abs(mean) + variance
		return math.Abs(s.Mean()-mean) < 1e-8*scale && math.Abs(s.Var()-variance) < 1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Brownian scaling — W(at) ~ √a·W(t) in variance.
func TestQuickBrownianSelfSimilarity(t *testing.T) {
	f := func(seed int64) bool {
		var s1, s2 Stats
		for k := 0; k < 400; k++ {
			rng := rand.New(rand.NewSource(seed + int64(k)))
			w := WienerPath(0.01, 400, rng)
			s1.Add(w[100]) // t=1
			s2.Add(w[400]) // t=4
		}
		// Var ratio should be ≈4.
		r := s2.Var() / s1.Var()
		return r > 2.5 && r < 6.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// scratchSystem mimics systems like core.Result.PhaseSDE whose Diff closure
// reuses an internal scratch buffer: correct per goroutine, racy if shared.
func scratchSystem(sigma float64) System {
	scratch := make([]float64, 1)
	return System{
		Dim:      1,
		NumNoise: 1,
		Drift:    func(t float64, x, dst []float64) { dst[0] = 0 },
		Diff: func(t float64, x []float64, dst []float64) {
			scratch[0] = sigma * (1 + 0.1*math.Tanh(x[0]))
			dst[0] = scratch[0]
		},
	}
}

func TestEnsembleFromMatchesEnsemble(t *testing.T) {
	cfg := EnsembleConfig{Paths: 16, Steps: 200, Seed: 7, Dt: 0.005}
	a := Ensemble(brownian(0.5), []float64{0}, cfg)
	b := EnsembleFrom(func() System { return brownian(0.5) }, []float64{0}, cfg)
	for k := range a {
		for j := range a[k].X {
			if a[k].X[j][0] != b[k].X[j][0] {
				t.Fatalf("path %d diverges at sample %d", k, j)
			}
		}
	}
}

func TestEnsembleFromPerWorkerSystems(t *testing.T) {
	// Each worker must get its own factory product, so stateful Diff
	// closures never race (this test is the -race canary) and the run stays
	// deterministic.
	cfg := EnsembleConfig{Paths: 32, Steps: 300, Seed: 11, Dt: 0.004}
	a := EnsembleFrom(func() System { return scratchSystem(0.3) }, []float64{0.2}, cfg)
	b := EnsembleFrom(func() System { return scratchSystem(0.3) }, []float64{0.2}, cfg)
	for k := range a {
		last := len(a[k].X) - 1
		if a[k].X[last][0] != b[k].X[last][0] {
			t.Fatalf("path %d not reproducible with per-worker systems", k)
		}
	}
}
