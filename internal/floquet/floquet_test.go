package floquet

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/dynsys"
	"repro/internal/linalg"
	"repro/internal/ode"
	"repro/internal/osc"
	"repro/internal/shooting"
)

func hopfDecomp(t *testing.T, lambda, omega float64) (*osc.Hopf, *shooting.PSS, *Decomposition) {
	t.Helper()
	h := &osc.Hopf{Lambda: lambda, Omega: omega, Sigma: 0.1}
	pss, err := shooting.Find(h, []float64{1, 0.2}, 2*math.Pi/omega*1.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Analyze(h, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h, pss, dec
}

func TestHopfMultipliers(t *testing.T) {
	h, _, dec := hopfDecomp(t, 0.8, 4)
	if len(dec.Multipliers) != 2 {
		t.Fatalf("got %d multipliers", len(dec.Multipliers))
	}
	if cmplx.Abs(dec.Multipliers[0]-1) > 1e-6 {
		t.Fatalf("unit multiplier = %v", dec.Multipliers[0])
	}
	want := h.ExactSecondMultiplier()
	if cmplx.Abs(dec.Multipliers[1]-complex(want, 0)) > 1e-5 {
		t.Fatalf("second multiplier = %v, want %g", dec.Multipliers[1], want)
	}
	// Exponents: μ1 = 0 exactly, μ2 = −2λ.
	if dec.Exponents[0] != 0 {
		t.Fatalf("μ1 = %v", dec.Exponents[0])
	}
	if cmplx.Abs(dec.Exponents[1]-complex(-2*0.8, 0)) > 1e-4 {
		t.Fatalf("μ2 = %v, want %g", dec.Exponents[1], -1.6)
	}
}

func TestHopfV1MatchesClosedForm(t *testing.T) {
	h, pss, dec := hopfDecomp(t, 1, 2*math.Pi)
	// The orbit starts at an arbitrary phase point; find its angle so we can
	// compare against the closed-form v1.
	theta0 := math.Atan2(pss.X0[1], pss.X0[0])
	buf := make([]float64, 2)
	for _, frac := range []float64{0, 0.17, 0.42, 0.73, 0.96} {
		tt := frac * pss.T
		dec.V1At(tt, buf)
		// Closed form referenced to angle θ0 + ωt.
		th := theta0 + h.Omega*tt
		wantX := -math.Sin(th) / h.Omega
		wantY := math.Cos(th) / h.Omega
		if math.Abs(buf[0]-wantX) > 1e-6 || math.Abs(buf[1]-wantY) > 1e-6 {
			t.Fatalf("v1(%.2fT) = %v, want (%g, %g)", frac, buf, wantX, wantY)
		}
	}
}

func TestHopfBiorthogonality(t *testing.T) {
	h, pss, dec := hopfDecomp(t, 0.5, 3)
	// v1ᵀ(t)·ẋs(t) = 1 along the whole period.
	xbuf := make([]float64, 2)
	fbuf := make([]float64, 2)
	vbuf := make([]float64, 2)
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		tt := frac * pss.T
		pss.Orbit.At(tt, xbuf)
		h.Eval(xbuf, fbuf)
		dec.V1At(tt, vbuf)
		ip := vbuf[0]*fbuf[0] + vbuf[1]*fbuf[1]
		if math.Abs(ip-1) > 1e-8 {
			t.Fatalf("v1ᵀu1 at %.3fT = %g", frac, ip)
		}
	}
	if dec.BiorthoDrift > 1e-4 {
		t.Fatalf("raw biorthogonality drift %g too large", dec.BiorthoDrift)
	}
}

func TestHopfV1Periodicity(t *testing.T) {
	_, pss, dec := hopfDecomp(t, 1.5, 5)
	a := make([]float64, 2)
	b := make([]float64, 2)
	dec.V1.At(0, a)
	dec.V1.At(pss.T, b)
	if math.Hypot(a[0]-b[0], a[1]-b[1]) > 1e-6 {
		t.Fatalf("v1 not periodic: %v vs %v", a, b)
	}
	if dec.ClosureErr > 1e-6 {
		t.Fatalf("closure error %g", dec.ClosureErr)
	}
}

func TestV1AtWrapsModuloPeriod(t *testing.T) {
	_, pss, dec := hopfDecomp(t, 1, 2*math.Pi)
	a := make([]float64, 2)
	b := make([]float64, 2)
	dec.V1At(0.3*pss.T, a)
	dec.V1At(0.3*pss.T+3*pss.T, b)
	if math.Hypot(a[0]-b[0], a[1]-b[1]) > 1e-12 {
		t.Fatalf("V1At not periodic: %v vs %v", a, b)
	}
	dec.V1At(-0.7*pss.T, b) // negative times wrap too
	if math.Hypot(a[0]-b[0], a[1]-b[1]) > 1e-12 {
		t.Fatalf("V1At negative wrap: %v vs %v", a, b)
	}
}

func TestVanDerPolDecomposition(t *testing.T) {
	v := &osc.VanDerPol{Mu: 1, Sigma: 0.05}
	pss, err := shooting.Find(v, []float64{2, 0}, 6.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Analyze(v, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(dec.Multipliers[0]-1) > 1e-6 {
		t.Fatalf("unit multiplier = %v", dec.Multipliers[0])
	}
	// Liouville: product of multipliers = exp(∫tr A) = exp(μ∫(1−x²)dt);
	// both multipliers real, second inside unit circle.
	if im := imag(dec.Multipliers[1]); math.Abs(im) > 1e-9 {
		t.Fatalf("second multiplier complex: %v", dec.Multipliers[1])
	}
	if m := cmplx.Abs(dec.Multipliers[1]); m >= 1 {
		t.Fatalf("cycle should be stable, |m2| = %g", m)
	}
	if dec.StabilityMargin() <= 0 {
		t.Fatalf("stability margin %g", dec.StabilityMargin())
	}
	// Biorthogonality for a non-trivial oscillator.
	xb := make([]float64, 2)
	fb := make([]float64, 2)
	vb := make([]float64, 2)
	for _, frac := range []float64{0.1, 0.4, 0.8} {
		tt := frac * pss.T
		pss.Orbit.At(tt, xb)
		v.Eval(xb, fb)
		dec.V1At(tt, vb)
		ip := vb[0]*fb[0] + vb[1]*fb[1]
		if math.Abs(ip-1) > 1e-7 {
			t.Fatalf("vdp v1ᵀu1 at %.1fT = %g", frac, ip)
		}
	}
}

func TestAnalyzeRejectsNonPeriodicOrbit(t *testing.T) {
	// Hand the analyzer a fake PSS whose "monodromy" has no unit eigenvalue.
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fake := *pss
	fake.Monodromy = linalg.Diag([]float64{0.5, 0.2})
	if _, err := Analyze(h, &fake, nil); !errors.Is(err, ErrNoUnitMultiplier) {
		t.Fatalf("expected ErrNoUnitMultiplier, got %v", err)
	}
}

func TestAnalyzeDetectsUnstableCycle(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fake := *pss
	fake.Monodromy = linalg.Diag([]float64{1, 1.5})
	if _, err := Analyze(h, &fake, nil); !errors.Is(err, ErrUnstableCycle) {
		t.Fatalf("expected ErrUnstableCycle, got %v", err)
	}
	// SkipStability must let it pass the stability gate (it may still fail
	// later, but not with ErrUnstableCycle).
	if _, err := Analyze(h, &fake, &Options{SkipStability: true}); errors.Is(err, ErrUnstableCycle) {
		t.Fatal("SkipStability did not bypass the gate")
	}
}

func TestForwardAdjointUnstableBackwardStable(t *testing.T) {
	// Section 9 step 5: forward integration of the adjoint blows up the
	// solution away from span{v1}; backward integration keeps it periodic.
	h := &osc.Hopf{Lambda: 3, Omega: 2 * math.Pi} // strongly contracting cycle
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Analyze(h, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	jac := func(tt float64, x []float64, dst []float64) { h.Jacobian(x, dst) }
	// Perturb v1(0) slightly and integrate FORWARD over several periods:
	// the error mode grows like exp(+2λT) per period.
	y0 := append([]float64(nil), dec.V10...)
	y0[0] += 1e-8
	// Build an extended orbit trajectory spanning several periods.
	f := func(tt float64, x, dst []float64) { h.Eval(x, dst) }
	extRec := &ode.Trajectory{}
	if _, _, err := ode.Variational(f, jac, 0, 5*pss.T, pss.X0, 10000, extRec, nil); err != nil {
		t.Fatal(err)
	}
	yf := ode.AdjointForward(jac, extRec, 0, 5*pss.T, y0, 10000)
	growth := linalg.Norm2(linalg.SubVec(yf, dec.V10)) / 1e-8
	if growth < 1e3 {
		t.Fatalf("forward adjoint error growth %g, expected exponential blow-up", growth)
	}
	// Backward stays bounded: closure error is tiny even from the perturbed start.
	if dec.ClosureErr > 1e-6 {
		t.Fatalf("backward closure %g", dec.ClosureErr)
	}
}

func TestStabilityMarginHopf(t *testing.T) {
	h, _, dec := hopfDecomp(t, 0.3, 2)
	want := 1 - h.ExactSecondMultiplier()
	if math.Abs(dec.StabilityMargin()-want) > 1e-5 {
		t.Fatalf("margin = %g, want %g", dec.StabilityMargin(), want)
	}
}

// Regression for the renormalised-interpolant slope bug: scaling the knot
// slopes by the same 1/ipT as the knot values drops the −(d ipT/dt)/ipT²·v1
// term of the exact derivative of v1(t)/ipT(t), so the Hermite interpolant
// was inconsistent wherever the biorthogonality drift varies. A coarse
// monodromy (StepsPerPeriod 20) plants a small error in v1(0) that decays
// backward as exp(−2λ(T−t)), concentrating drift variation near t = T,
// while the fine adjoint grid keeps Hermite truncation error ≈1e-9.
// Calibration on this exact configuration: pre-fix mid-knot worst error
// 1.05e-7, post-fix 5.8e-8.
func TestRenormalisedInterpolantBiorthogonality(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 0.05}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, &shooting.Options{StepsPerPeriod: 20})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Analyze(h, pss, &Options{Steps: 600})
	if err != nil {
		t.Fatal(err)
	}
	if dec.BiorthoDrift < 1e-5 {
		t.Fatalf("drift %g too small to exercise the renormalisation", dec.BiorthoDrift)
	}
	v := make([]float64, 2)
	x := make([]float64, 2)
	f := make([]float64, 2)
	worst := 0.0
	pts := dec.V1.Points
	for i := 0; i+1 < len(pts); i++ {
		tm := 0.5 * (pts[i].T + pts[i+1].T)
		dec.V1.At(tm, v)
		pss.Orbit.At(tm, x)
		h.Eval(x, f)
		if d := math.Abs(v[0]*f[0] + v[1]*f[1] - 1); d > worst {
			worst = d
		}
	}
	if worst > 8e-8 {
		t.Fatalf("mid-knot |v1ᵀ·ẋs − 1| = %.3e, want < 8e-8 (inconsistent Hermite slopes)", worst)
	}
}

// Regression: Multipliers is documented "|·| sorted desc" after the leading
// structural unit multiplier, but Analyze only swapped the unit one to the
// front. A Hopf oscillator augmented with two OU noise states has
// multipliers {1, e^{−2λT}, e^{−T/τ₁}, e^{−T/τ₂}} whose natural eigenvalue
// order is not modulus-sorted.
func TestMultipliersSortedByModulus(t *testing.T) {
	h := &osc.Hopf{Lambda: 1.5, Omega: 2 * math.Pi, Sigma: 0.05, YOnly: true}
	col, err := dynsys.NewColored(h, []dynsys.ColoredSource{
		{Index: 0, Tau: 0.04, Sigma: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pss, err := shooting.Find(col, col.AugmentState([]float64{1, 0}), h.Period(), nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Analyze(col, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Multipliers) != 3 {
		t.Fatalf("%d multipliers", len(dec.Multipliers))
	}
	for i := 1; i+1 < len(dec.Multipliers); i++ {
		a, b := cmplx.Abs(dec.Multipliers[i]), cmplx.Abs(dec.Multipliers[i+1])
		if a < b {
			t.Fatalf("multipliers not |·|-sorted desc after the unit one: %v", dec.Multipliers)
		}
	}
	// The exponents must stay aligned with the sorted multipliers.
	for i, m := range dec.Multipliers {
		want := cmplx.Log(m) / complex(dec.T, 0)
		if i == 0 {
			want = 0
		}
		if cmplx.Abs(dec.Exponents[i]-want) > 1e-12 {
			t.Fatalf("exponent %d = %v misaligned with multiplier %v", i, dec.Exponents[i], m)
		}
	}
	// StabilityMargin must reflect the largest non-unit modulus, which for
	// τ = 0.04 (e^{−T/τ} ≈ e^{−25}) is the oscillator mode e^{−2λT}.
	want := 1 - math.Exp(-2*h.Lambda*h.Period())
	if got := dec.StabilityMargin(); math.Abs(got-want) > 1e-4 {
		t.Fatalf("stability margin %g, want %g", got, want)
	}
}

func TestAdjointClosureTypedError(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 0.05}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(h, pss, &Options{Steps: 40, MaxPeriodDrift: 1e-12})
	if err == nil {
		t.Fatal("expected a closure failure with 40 steps and 1e-12 drift budget")
	}
	if !errors.Is(err, ErrAdjointClosure) {
		t.Fatalf("error %v is not ErrAdjointClosure", err)
	}
}

func TestFloquetTraceRecordsStages(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trace
	dec, err := Analyze(h, pss, &Options{Trace: &tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Wall <= 0 || tr.AdjointWall <= 0 {
		t.Fatalf("wall times not recorded: %+v", tr)
	}
	if tr.Steps <= 0 {
		t.Fatalf("steps not recorded: %+v", tr)
	}
	if tr.UnitErr != dec.UnitErr || tr.ClosureErr != dec.ClosureErr || tr.BiorthoDrift != dec.BiorthoDrift {
		t.Fatalf("trace diagnostics %+v disagree with decomposition %+v", tr, dec)
	}
	// On failure the trace still reports the stages that ran.
	_, err = Analyze(h, pss, &Options{Trace: &tr, Steps: 40, MaxPeriodDrift: 1e-12})
	if err == nil {
		t.Fatal("expected closure failure")
	}
	if tr.ClosureErr <= 1e-12 {
		t.Fatalf("failed analysis left no closure diagnostic: %+v", tr)
	}
}

// Regression for the multiplier-sort bug on a path where it actually bites:
// linalg.Eigenvalues returns moduli sorted desc, so for a stable cycle the
// unit multiplier is already first and the front-swap is a no-op. But when
// two or more multipliers lie outside the unit circle (diagnostic analysis
// of an unstable orbit with SkipStability), the swap that brings the unit
// multiplier forward drops the displaced large multiplier into the middle
// of the tail: {3, 2, 1, ε} → {1, 2, 3, ε}, violating the documented
// "|·| sorted desc" contract. Built from a Hopf cycle with two repelling
// transverse directions (ż_i = κ_i·z_i, z_i ≡ 0 on the cycle).
func TestMultipliersSortedWhenUnitNotLargest(t *testing.T) {
	lam, om := 1.5, 2*math.Pi
	k1, k2 := math.Log(3.0), math.Log(2.0) // T = 1 ⇒ multipliers 3 and 2
	sys := &dynsys.FiniteDiffSystem{
		N: 4,
		F: func(x, dst []float64) {
			r2 := x[0]*x[0] + x[1]*x[1]
			dst[0] = lam*x[0]*(1-r2) - om*x[1]
			dst[1] = lam*x[1]*(1-r2) + om*x[0]
			dst[2] = k1 * x[2]
			dst[3] = k2 * x[3]
		},
	}
	pss, err := shooting.Find(sys, []float64{1, 0, 0, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Analyze(sys, pss, &Options{SkipStability: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Multipliers) != 4 {
		t.Fatalf("%d multipliers", len(dec.Multipliers))
	}
	if cmplx.Abs(dec.Multipliers[0]-1) > 1e-5 {
		t.Fatalf("leading multiplier %v, want the structural unit one", dec.Multipliers[0])
	}
	for i := 1; i+1 < len(dec.Multipliers); i++ {
		a, b := cmplx.Abs(dec.Multipliers[i]), cmplx.Abs(dec.Multipliers[i+1])
		if a < b {
			t.Fatalf("multipliers not |·|-sorted desc after the unit one: %v", dec.Multipliers)
		}
	}
	if math.Abs(cmplx.Abs(dec.Multipliers[1])-3) > 1e-4 {
		t.Fatalf("largest non-unit multiplier %v, want 3", dec.Multipliers[1])
	}
	// Report must print them in contract order too.
	if got := dec.StabilityMargin(); math.Abs(got-(1-3)) > 1e-3 {
		t.Fatalf("stability margin %g, want −2", got)
	}
}
