package floquet

import (
	"errors"
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/linalg"
	"repro/internal/ode"
	"repro/internal/osc"
	"repro/internal/shooting"
)

func hopfDecomp(t *testing.T, lambda, omega float64) (*osc.Hopf, *shooting.PSS, *Decomposition) {
	t.Helper()
	h := &osc.Hopf{Lambda: lambda, Omega: omega, Sigma: 0.1}
	pss, err := shooting.Find(h, []float64{1, 0.2}, 2*math.Pi/omega*1.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Analyze(h, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h, pss, dec
}

func TestHopfMultipliers(t *testing.T) {
	h, _, dec := hopfDecomp(t, 0.8, 4)
	if len(dec.Multipliers) != 2 {
		t.Fatalf("got %d multipliers", len(dec.Multipliers))
	}
	if cmplx.Abs(dec.Multipliers[0]-1) > 1e-6 {
		t.Fatalf("unit multiplier = %v", dec.Multipliers[0])
	}
	want := h.ExactSecondMultiplier()
	if cmplx.Abs(dec.Multipliers[1]-complex(want, 0)) > 1e-5 {
		t.Fatalf("second multiplier = %v, want %g", dec.Multipliers[1], want)
	}
	// Exponents: μ1 = 0 exactly, μ2 = −2λ.
	if dec.Exponents[0] != 0 {
		t.Fatalf("μ1 = %v", dec.Exponents[0])
	}
	if cmplx.Abs(dec.Exponents[1]-complex(-2*0.8, 0)) > 1e-4 {
		t.Fatalf("μ2 = %v, want %g", dec.Exponents[1], -1.6)
	}
}

func TestHopfV1MatchesClosedForm(t *testing.T) {
	h, pss, dec := hopfDecomp(t, 1, 2*math.Pi)
	// The orbit starts at an arbitrary phase point; find its angle so we can
	// compare against the closed-form v1.
	theta0 := math.Atan2(pss.X0[1], pss.X0[0])
	buf := make([]float64, 2)
	for _, frac := range []float64{0, 0.17, 0.42, 0.73, 0.96} {
		tt := frac * pss.T
		dec.V1At(tt, buf)
		// Closed form referenced to angle θ0 + ωt.
		th := theta0 + h.Omega*tt
		wantX := -math.Sin(th) / h.Omega
		wantY := math.Cos(th) / h.Omega
		if math.Abs(buf[0]-wantX) > 1e-6 || math.Abs(buf[1]-wantY) > 1e-6 {
			t.Fatalf("v1(%.2fT) = %v, want (%g, %g)", frac, buf, wantX, wantY)
		}
	}
}

func TestHopfBiorthogonality(t *testing.T) {
	h, pss, dec := hopfDecomp(t, 0.5, 3)
	// v1ᵀ(t)·ẋs(t) = 1 along the whole period.
	xbuf := make([]float64, 2)
	fbuf := make([]float64, 2)
	vbuf := make([]float64, 2)
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		tt := frac * pss.T
		pss.Orbit.At(tt, xbuf)
		h.Eval(xbuf, fbuf)
		dec.V1At(tt, vbuf)
		ip := vbuf[0]*fbuf[0] + vbuf[1]*fbuf[1]
		if math.Abs(ip-1) > 1e-8 {
			t.Fatalf("v1ᵀu1 at %.3fT = %g", frac, ip)
		}
	}
	if dec.BiorthoDrift > 1e-4 {
		t.Fatalf("raw biorthogonality drift %g too large", dec.BiorthoDrift)
	}
}

func TestHopfV1Periodicity(t *testing.T) {
	_, pss, dec := hopfDecomp(t, 1.5, 5)
	a := make([]float64, 2)
	b := make([]float64, 2)
	dec.V1.At(0, a)
	dec.V1.At(pss.T, b)
	if math.Hypot(a[0]-b[0], a[1]-b[1]) > 1e-6 {
		t.Fatalf("v1 not periodic: %v vs %v", a, b)
	}
	if dec.ClosureErr > 1e-6 {
		t.Fatalf("closure error %g", dec.ClosureErr)
	}
}

func TestV1AtWrapsModuloPeriod(t *testing.T) {
	_, pss, dec := hopfDecomp(t, 1, 2*math.Pi)
	a := make([]float64, 2)
	b := make([]float64, 2)
	dec.V1At(0.3*pss.T, a)
	dec.V1At(0.3*pss.T+3*pss.T, b)
	if math.Hypot(a[0]-b[0], a[1]-b[1]) > 1e-12 {
		t.Fatalf("V1At not periodic: %v vs %v", a, b)
	}
	dec.V1At(-0.7*pss.T, b) // negative times wrap too
	if math.Hypot(a[0]-b[0], a[1]-b[1]) > 1e-12 {
		t.Fatalf("V1At negative wrap: %v vs %v", a, b)
	}
}

func TestVanDerPolDecomposition(t *testing.T) {
	v := &osc.VanDerPol{Mu: 1, Sigma: 0.05}
	pss, err := shooting.Find(v, []float64{2, 0}, 6.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Analyze(v, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(dec.Multipliers[0]-1) > 1e-6 {
		t.Fatalf("unit multiplier = %v", dec.Multipliers[0])
	}
	// Liouville: product of multipliers = exp(∫tr A) = exp(μ∫(1−x²)dt);
	// both multipliers real, second inside unit circle.
	if im := imag(dec.Multipliers[1]); math.Abs(im) > 1e-9 {
		t.Fatalf("second multiplier complex: %v", dec.Multipliers[1])
	}
	if m := cmplx.Abs(dec.Multipliers[1]); m >= 1 {
		t.Fatalf("cycle should be stable, |m2| = %g", m)
	}
	if dec.StabilityMargin() <= 0 {
		t.Fatalf("stability margin %g", dec.StabilityMargin())
	}
	// Biorthogonality for a non-trivial oscillator.
	xb := make([]float64, 2)
	fb := make([]float64, 2)
	vb := make([]float64, 2)
	for _, frac := range []float64{0.1, 0.4, 0.8} {
		tt := frac * pss.T
		pss.Orbit.At(tt, xb)
		v.Eval(xb, fb)
		dec.V1At(tt, vb)
		ip := vb[0]*fb[0] + vb[1]*fb[1]
		if math.Abs(ip-1) > 1e-7 {
			t.Fatalf("vdp v1ᵀu1 at %.1fT = %g", frac, ip)
		}
	}
}

func TestAnalyzeRejectsNonPeriodicOrbit(t *testing.T) {
	// Hand the analyzer a fake PSS whose "monodromy" has no unit eigenvalue.
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fake := *pss
	fake.Monodromy = linalg.Diag([]float64{0.5, 0.2})
	if _, err := Analyze(h, &fake, nil); !errors.Is(err, ErrNoUnitMultiplier) {
		t.Fatalf("expected ErrNoUnitMultiplier, got %v", err)
	}
}

func TestAnalyzeDetectsUnstableCycle(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fake := *pss
	fake.Monodromy = linalg.Diag([]float64{1, 1.5})
	if _, err := Analyze(h, &fake, nil); !errors.Is(err, ErrUnstableCycle) {
		t.Fatalf("expected ErrUnstableCycle, got %v", err)
	}
	// SkipStability must let it pass the stability gate (it may still fail
	// later, but not with ErrUnstableCycle).
	if _, err := Analyze(h, &fake, &Options{SkipStability: true}); errors.Is(err, ErrUnstableCycle) {
		t.Fatal("SkipStability did not bypass the gate")
	}
}

func TestForwardAdjointUnstableBackwardStable(t *testing.T) {
	// Section 9 step 5: forward integration of the adjoint blows up the
	// solution away from span{v1}; backward integration keeps it periodic.
	h := &osc.Hopf{Lambda: 3, Omega: 2 * math.Pi} // strongly contracting cycle
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Analyze(h, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	jac := func(tt float64, x []float64, dst []float64) { h.Jacobian(x, dst) }
	// Perturb v1(0) slightly and integrate FORWARD over several periods:
	// the error mode grows like exp(+2λT) per period.
	y0 := append([]float64(nil), dec.V10...)
	y0[0] += 1e-8
	// Build an extended orbit trajectory spanning several periods.
	f := func(tt float64, x, dst []float64) { h.Eval(x, dst) }
	extRec := &ode.Trajectory{}
	ode.Variational(f, jac, 0, 5*pss.T, pss.X0, 10000, extRec)
	yf := ode.AdjointForward(jac, extRec, 0, 5*pss.T, y0, 10000)
	growth := linalg.Norm2(linalg.SubVec(yf, dec.V10)) / 1e-8
	if growth < 1e3 {
		t.Fatalf("forward adjoint error growth %g, expected exponential blow-up", growth)
	}
	// Backward stays bounded: closure error is tiny even from the perturbed start.
	if dec.ClosureErr > 1e-6 {
		t.Fatalf("backward closure %g", dec.ClosureErr)
	}
}

func TestStabilityMarginHopf(t *testing.T) {
	h, _, dec := hopfDecomp(t, 0.3, 2)
	want := 1 - h.ExactSecondMultiplier()
	if math.Abs(dec.StabilityMargin()-want) > 1e-5 {
		t.Fatalf("margin = %g, want %g", dec.StabilityMargin(), want)
	}
}
