package floquet

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestDecompositionJSONNonFinite: a strongly contractive orbit underflows a
// multiplier to 0, making its exponent log(0)/T = -Inf. JSON has no number
// form for Inf/NaN, so a naive codec rejects the whole decomposition — which
// made an otherwise ok point unserialisable through the result cache, the
// ?full=1 payload, and the cluster coordinator's worker result fetch.
// Non-finite values must round-trip loss-free (as strings on the wire).
func TestDecompositionJSONNonFinite(t *testing.T) {
	d := &Decomposition{
		T:           2.5,
		Multipliers: []complex128{1, 0},
		Exponents:   []complex128{0, complex(math.Inf(-1), 0)},
		UnitErr:     math.Inf(1),
		ClosureErr:  math.NaN(),
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal with non-finite fields: %v", err)
	}
	var got Decomposition
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !math.IsInf(real(got.Exponents[1]), -1) {
		t.Errorf("exponent -Inf lost: got %v", got.Exponents[1])
	}
	if !math.IsInf(got.UnitErr, 1) {
		t.Errorf("UnitErr +Inf lost: got %v", got.UnitErr)
	}
	if !math.IsNaN(got.ClosureErr) {
		t.Errorf("ClosureErr NaN lost: got %v", got.ClosureErr)
	}
	if got.T != d.T || got.Multipliers[0] != 1 {
		t.Errorf("finite fields drifted: %+v", got)
	}
}

// TestDecompositionJSONFiniteStaysNumeric: finite decompositions must keep
// the plain-number wire form (old cache entries and old clients depend on
// it), and round-trip bit-exactly.
func TestDecompositionJSONFiniteStaysNumeric(t *testing.T) {
	d := &Decomposition{
		T:            1.25,
		Multipliers:  []complex128{1, complex(0.25, -0.125)},
		Exponents:    []complex128{0, complex(-1.1090354888959125, -0.4205343352839653)},
		U10:          []float64{1, 2},
		V10:          []float64{0.5, 0.25},
		UnitErr:      1e-12,
		ClosureErr:   3e-9,
		BiorthoDrift: 2e-8,
	}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"Inf"`) || strings.Contains(string(data), `"NaN"`) {
		t.Fatalf("finite payload contains string-float forms: %s", data)
	}
	var got Decomposition
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	round, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if string(round) != string(data) {
		t.Fatalf("round trip drifted:\n%s\n%s", data, round)
	}
}
