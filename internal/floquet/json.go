package floquet

import (
	"encoding/json"

	"repro/internal/ode"
)

// decompositionJSON is the wire form of a Decomposition. complex128 has no
// native JSON encoding, so multipliers and exponents travel as [re, im]
// pairs; every other field round-trips verbatim.
type decompositionJSON struct {
	T            float64         `json:"t"`
	Multipliers  [][2]float64    `json:"multipliers"`
	Exponents    [][2]float64    `json:"exponents"`
	U10          []float64       `json:"u10,omitempty"`
	V10          []float64       `json:"v10,omitempty"`
	V1           *ode.Trajectory `json:"v1,omitempty"`
	UnitErr      float64         `json:"unit_err,omitempty"`
	ClosureErr   float64         `json:"closure_err,omitempty"`
	BiorthoDrift float64         `json:"biortho_drift,omitempty"`
}

func complexToPairs(in []complex128) [][2]float64 {
	if in == nil {
		return nil
	}
	out := make([][2]float64, len(in))
	for i, c := range in {
		out[i] = [2]float64{real(c), imag(c)}
	}
	return out
}

func pairsToComplex(in [][2]float64) []complex128 {
	if in == nil {
		return nil
	}
	out := make([]complex128, len(in))
	for i, p := range in {
		out[i] = complex(p[0], p[1])
	}
	return out
}

// MarshalJSON implements json.Marshaler, encoding complex slices as
// [re, im] pairs so the decomposition survives a JSON round trip loss-free.
func (d *Decomposition) MarshalJSON() ([]byte, error) {
	return json.Marshal(decompositionJSON{
		T:            d.T,
		Multipliers:  complexToPairs(d.Multipliers),
		Exponents:    complexToPairs(d.Exponents),
		U10:          d.U10,
		V10:          d.V10,
		V1:           d.V1,
		UnitErr:      d.UnitErr,
		ClosureErr:   d.ClosureErr,
		BiorthoDrift: d.BiorthoDrift,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Decomposition) UnmarshalJSON(data []byte) error {
	var w decompositionJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*d = Decomposition{
		T:            w.T,
		Multipliers:  pairsToComplex(w.Multipliers),
		Exponents:    pairsToComplex(w.Exponents),
		U10:          w.U10,
		V10:          w.V10,
		V1:           w.V1,
		UnitErr:      w.UnitErr,
		ClosureErr:   w.ClosureErr,
		BiorthoDrift: w.BiorthoDrift,
	}
	return nil
}
