package floquet

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/ode"
)

// wfloat is a float64 that survives JSON even when non-finite. A strongly
// contractive orbit underflows a multiplier to 0 and its exponent
// log(mu)/T to -Inf, and Inf/NaN have no JSON number form — encoding/json
// rejects them, which would make an otherwise healthy Decomposition
// unserialisable (the result cache, the ?full=1 payload and the cluster
// coordinator's worker fetch all ride this codec). Non-finite values travel
// as the strings "Inf", "-Inf", "NaN"; finite values stay plain numbers, so
// old payloads decode unchanged.
type wfloat float64

func (f wfloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

func (f *wfloat) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		switch s {
		case "Inf", "+Inf":
			*f = wfloat(math.Inf(1))
		case "-Inf":
			*f = wfloat(math.Inf(-1))
		case "NaN":
			*f = wfloat(math.NaN())
		default:
			return fmt.Errorf("floquet: invalid float string %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = wfloat(v)
	return nil
}

// decompositionJSON is the wire form of a Decomposition. complex128 has no
// native JSON encoding, so multipliers and exponents travel as [re, im]
// pairs (of wfloat — exponents of collapsed multipliers are -Inf); every
// other field round-trips verbatim.
type decompositionJSON struct {
	T            float64         `json:"t"`
	Multipliers  [][2]wfloat     `json:"multipliers"`
	Exponents    [][2]wfloat     `json:"exponents"`
	U10          []float64       `json:"u10,omitempty"`
	V10          []float64       `json:"v10,omitempty"`
	V1           *ode.Trajectory `json:"v1,omitempty"`
	UnitErr      wfloat          `json:"unit_err,omitempty"`
	ClosureErr   wfloat          `json:"closure_err,omitempty"`
	BiorthoDrift wfloat          `json:"biortho_drift,omitempty"`
}

func complexToPairs(in []complex128) [][2]wfloat {
	if in == nil {
		return nil
	}
	out := make([][2]wfloat, len(in))
	for i, c := range in {
		out[i] = [2]wfloat{wfloat(real(c)), wfloat(imag(c))}
	}
	return out
}

func pairsToComplex(in [][2]wfloat) []complex128 {
	if in == nil {
		return nil
	}
	out := make([]complex128, len(in))
	for i, p := range in {
		out[i] = complex(float64(p[0]), float64(p[1]))
	}
	return out
}

// MarshalJSON implements json.Marshaler, encoding complex slices as
// [re, im] pairs so the decomposition survives a JSON round trip loss-free.
func (d *Decomposition) MarshalJSON() ([]byte, error) {
	return json.Marshal(decompositionJSON{
		T:            d.T,
		Multipliers:  complexToPairs(d.Multipliers),
		Exponents:    complexToPairs(d.Exponents),
		U10:          d.U10,
		V10:          d.V10,
		V1:           d.V1,
		UnitErr:      wfloat(d.UnitErr),
		ClosureErr:   wfloat(d.ClosureErr),
		BiorthoDrift: wfloat(d.BiorthoDrift),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Decomposition) UnmarshalJSON(data []byte) error {
	var w decompositionJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*d = Decomposition{
		T:            w.T,
		Multipliers:  pairsToComplex(w.Multipliers),
		Exponents:    pairsToComplex(w.Exponents),
		U10:          w.U10,
		V10:          w.V10,
		V1:           w.V1,
		UnitErr:      float64(w.UnitErr),
		ClosureErr:   float64(w.ClosureErr),
		BiorthoDrift: float64(w.BiorthoDrift),
	}
	return nil
}
