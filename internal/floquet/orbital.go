package floquet

import (
	"repro/internal/dynsys"
	"repro/internal/linalg"
	"repro/internal/ode"
	"repro/internal/shooting"
)

// OrbitalDeviationDirect computes the bounded orbital deviation y(t) of the
// paper's Eq. (12) by direct variational integration rather than the modal
// sum: it integrates
//
//	ẏ = A(t)·y + (I − u1(t)·v1ᵀ(t))·B(xs(t))·b(t),   y(0) = 0,
//
// where the projector removes the phase component b1 of the perturbation
// (Definition 5.2), so the forcing excites only the contracting transverse
// modes. Any residual drift along the neutral phase direction (from
// numerical error) is projected out of the result.
//
// Unlike FullDecomposition.OrbitalDeviation this needs only the standard
// Analyze output and therefore works for ANY Floquet structure, including
// complex-conjugate multiplier pairs (e.g. the ECL ring oscillator).
// The returned trajectory holds y on [0, t1].
func OrbitalDeviationDirect(sys dynsys.System, pss *shooting.PSS, dec *Decomposition, bfun func(t float64) []float64, t1 float64, nsteps int) *ode.Trajectory {
	n := sys.Dim()
	p := sys.NumNoise()
	jm := make([]float64, n*n)
	bm := make([]float64, n*p)
	xb := make([]float64, n)
	u1 := make([]float64, n)
	v1 := make([]float64, n)
	rhs := func(t float64, y, dst []float64) {
		tm := modT(t, pss.T)
		pss.Orbit.At(tm, xb)
		sys.Jacobian(xb, jm)
		sys.Noise(xb, bm)
		sys.Eval(xb, u1) // u1(t) = ẋs(t)
		dec.V1.At(tm, v1)
		bv := bfun(t)
		// Raw forcing B·b.
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < p; j++ {
				s += bm[i*p+j] * bv[j]
			}
			dst[i] = s
		}
		// Remove the phase component: b̃ = Bb − (v1ᵀBb)·u1.
		c1 := linalg.Dot(v1, dst)
		for i := 0; i < n; i++ {
			dst[i] -= c1 * u1[i]
		}
		// Add the homogeneous part A·y.
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += jm[i*n+k] * y[k]
			}
			dst[i] += s
		}
	}
	y := make([]float64, n)
	dy := make([]float64, n)
	out := &ode.Trajectory{}
	record := func(t float64) {
		// Project out any numerically accumulated phase component:
		// y ← (I − u1 v1ᵀ) y, evaluated at the current orbit point.
		tm := modT(t, pss.T)
		pss.Orbit.At(tm, xb)
		sys.Eval(xb, u1)
		dec.V1.At(tm, v1)
		c1 := linalg.Dot(v1, y)
		clean := make([]float64, n)
		for i := 0; i < n; i++ {
			clean[i] = y[i] - c1*u1[i]
		}
		rhs(t, clean, dy)
		out.Append(t, clean, dy)
	}
	record(0)
	h := t1 / float64(nsteps)
	for k := 0; k < nsteps; k++ {
		t := float64(k) * h
		ode.RK4Step(rhs, t, y, h, y)
		record(t + h)
	}
	return out
}

func modT(t, period float64) float64 {
	tm := t
	for tm >= period {
		tm -= period
	}
	for tm < 0 {
		tm += period
	}
	return tm
}
