package floquet

import (
	"math"
	"testing"

	"repro/internal/budget"
	"repro/internal/dynsys"
	"repro/internal/osc"
	"repro/internal/shooting"
)

// cancelingJac wraps a System and cancels a budget token after a fixed number
// of Jacobian calls. In Analyze, every Jacobian evaluation happens inside the
// backward adjoint integration, so the cancellation is guaranteed to land
// mid-adjoint.
type cancelingJac struct {
	dynsys.System
	calls  int
	after  int
	cancel func()
}

func (c *cancelingJac) Jacobian(x []float64, dst []float64) {
	c.calls++
	if c.calls > c.after {
		c.cancel()
	}
	c.System.Jacobian(x, dst)
}

// Regression: Trace.Steps must report the adjoint steps actually completed,
// not the configured Options.Steps pre-filled at entry. A budget trip
// mid-adjoint must leave a partial (not full, not zero) step count.
func TestTraceStepsPartialOnMidAdjointBudgetTrip(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.1}
	pss, err := shooting.Find(h, []float64{1, 0.2}, 1.05, nil)
	if err != nil {
		t.Fatal(err)
	}

	tok, cancel := budget.WithCancel(nil)
	defer cancel()
	// ≈ 100 adjoint steps before the trip: 4 rhs evals per RK4 step plus one
	// per stored sample, each evaluating the Jacobian once.
	wrapped := &cancelingJac{System: h, after: 500, cancel: cancel}

	var tr Trace
	const configured = 3000
	_, err = Analyze(wrapped, pss, &Options{Steps: configured, Trace: &tr, Budget: tok})
	if !budget.Is(err) {
		t.Fatalf("got %v, want a budget error", err)
	}
	if tr.Steps <= 0 || tr.Steps >= configured {
		t.Fatalf("Trace.Steps = %d, want partial in (0, %d)", tr.Steps, configured)
	}
	if tr.AdjointWall <= 0 {
		t.Fatal("Trace.AdjointWall must cover the partial adjoint integration")
	}
	// The stages before the adjoint completed, so their diagnostics are real.
	if tr.UnitErr <= 0 {
		t.Fatal("Trace.UnitErr must be set before the adjoint stage")
	}
}

// A budget that trips before the adjoint ever runs must leave Steps at zero —
// the old behaviour reported the full configured count for work never done.
func TestTraceStepsZeroOnPreCanceledBudget(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.1}
	pss, err := shooting.Find(h, []float64{1, 0.2}, 1.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	tok, cancel := budget.WithCancel(nil)
	cancel()
	var tr Trace
	_, err = Analyze(h, pss, &Options{Steps: 3000, Trace: &tr, Budget: tok})
	if !budget.Is(err) {
		t.Fatalf("got %v, want a budget error", err)
	}
	if tr.Steps != 0 {
		t.Fatalf("Trace.Steps = %d for work never started, want 0", tr.Steps)
	}
}

// On success, Steps equals the configured adjoint step count.
func TestTraceStepsFullOnSuccess(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.1}
	pss, err := shooting.Find(h, []float64{1, 0.2}, 1.05, nil)
	if err != nil {
		t.Fatal(err)
	}
	var tr Trace
	const configured = 2500
	if _, err := Analyze(h, pss, &Options{Steps: configured, Trace: &tr}); err != nil {
		t.Fatal(err)
	}
	if tr.Steps != configured {
		t.Fatalf("Trace.Steps = %d, want %d", tr.Steps, configured)
	}
}
