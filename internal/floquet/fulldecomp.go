package floquet

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/dynsys"
	"repro/internal/linalg"
	"repro/internal/ode"
	"repro/internal/shooting"
)

// FullDecomposition carries the complete Floquet basis of a periodic orbit:
// all n modes {u_i(t), v_i(t), μ_i}, not just the phase mode. It enables the
// paper's Section-5 construction explicitly — splitting a perturbation into
// the phase component b1 (along u1) and the orbit-transverse remainder, and
// evaluating the orbital deviation y(t) of Eq. (12).
//
// Only real, simple Floquet multipliers are supported for the full basis
// (complex pairs would need a real 2×2 block treatment); Analyze (the
// phase-mode-only path) has no such restriction.
type FullDecomposition struct {
	T           float64
	Exponents   []float64         // μ_i, real, sorted: μ_1 = 0 first
	Multipliers []float64         // exp(μ_i T)
	U           []*ode.Trajectory // u_i(t) over one period
	V           []*ode.Trajectory // v_i(t) over one period
}

// ErrComplexMultipliers is returned when the monodromy matrix has complex
// Floquet multipliers, which the full real decomposition does not handle.
var ErrComplexMultipliers = errors.New("floquet: complex multipliers; full decomposition requires real simple multipliers")

// AnalyzeFull computes the complete Floquet basis:
//
//	u_i(t) = Φ(t,0)·u_i(0)·exp(−μ_i t)   (periodic by the Floquet theorem),
//	v_i(t) from backward adjoint integration of each left eigenvector,
//
// normalised to the biorthogonality v_iᵀ(t)·u_j(t) = δ_ij of Remark 4.1.
func AnalyzeFull(sys dynsys.System, pss *shooting.PSS, steps int) (*FullDecomposition, error) {
	n := sys.Dim()
	if steps <= 0 {
		steps = 4000
	}
	phi := pss.Monodromy
	ev, err := linalg.Eigenvalues(phi)
	if err != nil {
		return nil, fmt.Errorf("floquet: monodromy eigenvalues: %w", err)
	}
	mults := make([]float64, n)
	for i, z := range ev {
		if math.Abs(imag(z)) > 1e-7*(1+cmplx.Abs(z)) {
			return nil, fmt.Errorf("%w (got %v)", ErrComplexMultipliers, z)
		}
		mults[i] = real(z)
	}
	// Move the unit multiplier to the front.
	best, bdist := -1, math.Inf(1)
	for i, m := range mults {
		if d := math.Abs(m - 1); d < bdist {
			best, bdist = i, d
		}
	}
	if best < 0 || bdist > 5e-3 {
		return nil, fmt.Errorf("%w (closest %.3e away)", ErrNoUnitMultiplier, bdist)
	}
	mults[0], mults[best] = mults[best], mults[0]

	// Right eigenvectors u_i(0) and left eigenvectors v_i(0).
	u0 := make([][]float64, n)
	v0 := make([][]float64, n)
	u0[0] = make([]float64, n)
	sys.Eval(pss.X0, u0[0]) // u1(0) = f(x0) exactly
	for i := 1; i < n; i++ {
		vec, err := linalg.EigenvectorReal(phi, mults[i])
		if err != nil {
			return nil, fmt.Errorf("floquet: right eigenvector for multiplier %g: %w", mults[i], err)
		}
		u0[i] = vec
	}
	for i := 0; i < n; i++ {
		lam := mults[i]
		if i == 0 {
			lam = 1
		}
		vec, err := linalg.EigenvectorReal(phi.T(), lam)
		if err != nil {
			return nil, fmt.Errorf("floquet: left eigenvector for multiplier %g: %w", mults[i], err)
		}
		v0[i] = vec
	}
	// Biorthonormalise: v_iᵀu_j = δ_ij. For simple eigenvalues v_iᵀu_j ≈ 0
	// automatically (i≠j); just scale the diagonal.
	for i := 0; i < n; i++ {
		ip := linalg.Dot(v0[i], u0[i])
		if ip == 0 {
			return nil, fmt.Errorf("floquet: degenerate pair %d (v_iᵀu_i = 0)", i)
		}
		linalg.ScaleVec(1/ip, v0[i])
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			if off := math.Abs(linalg.Dot(v0[i], u0[j])); off > 1e-6*(1+linalg.Norm2(u0[j])) {
				return nil, fmt.Errorf("floquet: eigenvectors not biorthogonal (v%dᵀu%d = %g); multipliers may be clustered", i, j, off)
			}
		}
	}

	exps := make([]float64, n)
	for i, m := range mults {
		if i == 0 {
			exps[0] = 0
			continue
		}
		if m <= 0 {
			return nil, fmt.Errorf("floquet: non-positive multiplier %g has no real exponent", m)
		}
		exps[i] = math.Log(m) / pss.T
	}

	f := func(t float64, x, dst []float64) { sys.Eval(x, dst) }
	jac := func(t float64, x []float64, dst []float64) { sys.Jacobian(x, dst) }

	// u_i(t): propagate [x; w] with ẇ = A(t)w, then strip exp(μ_i t).
	dec := &FullDecomposition{T: pss.T, Exponents: exps, Multipliers: mults}
	for i := 0; i < n; i++ {
		tr := propagateMode(f, jac, pss, u0[i], exps[i], steps)
		dec.U = append(dec.U, tr)
	}
	// v_i(t): backward adjoint integration, stripping exp(−μ_i t) so the
	// stored trajectory is the T-periodic Floquet vector.
	for i := 0; i < n; i++ {
		tr := adjointMode(jac, pss, v0[i], exps[i], steps)
		dec.V = append(dec.V, tr)
	}
	return dec, nil
}

// propagateMode integrates ẇ = A(t)w from w(0)=w0 and stores
// w(t)·exp(−μ t), which is T-periodic for a Floquet mode.
func propagateMode(f ode.Func, jac ode.JacFunc, pss *shooting.PSS, w0 []float64, mu float64, steps int) *ode.Trajectory {
	n := len(w0)
	jm := make([]float64, n*n)
	xb := make([]float64, n)
	rhs := func(t float64, w, dst []float64) {
		pss.Orbit.At(t, xb)
		jac(t, xb, jm)
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += jm[i*n+k] * w[k]
			}
			// Work in the rotated frame w̃ = w·e^{−μt}: w̃' = (A−μI)w̃,
			// which keeps the stored mode periodic and avoids overflow or
			// underflow of the raw solution.
			dst[i] = s - mu*w[i]
		}
	}
	tr := &ode.Trajectory{}
	w := linalg.CloneVec(w0)
	h := pss.T / float64(steps)
	dw := make([]float64, n)
	rhs(0, w, dw)
	tr.Append(0, w, dw)
	for s := 0; s < steps; s++ {
		t := float64(s) * h
		ode.RK4Step(rhs, t, w, h, w)
		rhs(t+h, w, dw)
		tr.Append(t+h, w, dw)
	}
	return tr
}

// adjointMode integrates ẏ = −Aᵀ(t)y backwards with the exp(+μt) frame
// rotation, storing the T-periodic v_i(t).
func adjointMode(jac ode.JacFunc, pss *shooting.PSS, y0 []float64, mu float64, steps int) *ode.Trajectory {
	n := len(y0)
	jm := make([]float64, n*n)
	xb := make([]float64, n)
	rhs := func(t float64, y, dst []float64) {
		pss.Orbit.At(t, xb)
		jac(t, xb, jm)
		for i := 0; i < n; i++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += jm[k*n+i] * y[k]
			}
			// ỹ = y·e^{+μt}: ỹ' = (−Aᵀ+μI)ỹ stays periodic.
			dst[i] = -s + mu*y[i]
		}
	}
	h := pss.T / float64(steps)
	y := linalg.CloneVec(y0)
	dy := make([]float64, n)
	ts := make([]float64, steps+1)
	ys := make([][]float64, steps+1)
	dys := make([][]float64, steps+1)
	store := func(idx int, t float64) {
		rhs(t, y, dy)
		ts[idx] = t
		ys[idx] = linalg.CloneVec(y)
		dys[idx] = linalg.CloneVec(dy)
	}
	store(steps, pss.T)
	for s := 0; s < steps; s++ {
		t := pss.T - float64(s)*h
		ode.RK4Step(rhs, t, y, -h, y)
		store(steps-1-s, t-h)
	}
	tr := &ode.Trajectory{}
	for i := 0; i <= steps; i++ {
		tr.Append(ts[i], ys[i], dys[i])
	}
	return tr
}

// BiorthogonalityError returns max over the sampled grid of
// |v_iᵀ(t)u_j(t) − δ_ij| — the Remark-4.1 invariant.
func (d *FullDecomposition) BiorthogonalityError(samples int) float64 {
	n := len(d.U)
	ub := make([]float64, n)
	vb := make([]float64, n)
	worst := 0.0
	for s := 0; s <= samples; s++ {
		t := d.T * float64(s) / float64(samples)
		for i := 0; i < n; i++ {
			d.V[i].At(t, vb)
			for j := 0; j < n; j++ {
				d.U[j].At(t, ub)
				ip := linalg.Dot(vb, ub)
				want := 0.0
				if i == j {
					want = 1
				}
				if e := math.Abs(ip - want); e > worst {
					worst = e
				}
			}
		}
	}
	return worst
}

// OrbitalDeviation evaluates the paper's Eq. (12): the bounded transverse
// response y(t) to a deterministic perturbation b(t) (as a function of
// time), computed in the Floquet basis:
//
//	y(t) = Σ_{i≥2} u_i(t) ∫₀ᵗ exp(μ_i(t−r)) v_iᵀ(r) B(xs(r)) b(r) dr
//
// bfun returns the p-vector perturbation b(r). The quadrature uses `steps`
// uniform subintervals of [0, t].
func (d *FullDecomposition) OrbitalDeviation(sys dynsys.System, pss *shooting.PSS, bfun func(r float64) []float64, t float64, steps int) []float64 {
	n := sys.Dim()
	p := sys.NumNoise()
	xb := make([]float64, n)
	vb := make([]float64, n)
	ub := make([]float64, n)
	bm := make([]float64, n*p)
	y := make([]float64, n)
	h := t / float64(steps)
	for i := 1; i < n; i++ { // transverse modes only: the sum starts at 2
		mu := d.Exponents[i]
		integral := 0.0
		for s := 0; s <= steps; s++ {
			r := float64(s) * h
			w := 1.0
			if s == 0 || s == steps {
				w = 0.5
			}
			rm := math.Mod(r, d.T)
			pss.Orbit.At(rm, xb)
			d.V[i].At(rm, vb)
			sys.Noise(xb, bm)
			bv := bfun(r)
			// v_iᵀ B b — note the stored v_i is the periodic Floquet vector.
			viBb := 0.0
			for row := 0; row < n; row++ {
				for col := 0; col < p; col++ {
					viBb += vb[row] * bm[row*p+col] * bv[col]
				}
			}
			integral += w * math.Exp(mu*(t-r)) * viBb * h
		}
		tm := math.Mod(t, d.T)
		d.U[i].At(tm, ub)
		for row := 0; row < n; row++ {
			y[row] += ub[row] * integral
		}
	}
	return y
}
