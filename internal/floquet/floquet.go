// Package floquet performs the Floquet analysis of a periodic steady state
// needed for phase-noise characterisation (paper Sections 4 and 9): the
// characteristic multipliers/exponents of the monodromy matrix, the tangent
// Floquet vector u1(t) = ẋs(t), and the adjoint Floquet vector v1(t)
// (the perturbation projection vector), computed by numerically stable
// backward integration of the adjoint equation ẏ = −Aᵀ(t)y.
package floquet

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"time"

	"repro/internal/budget"
	"repro/internal/dynsys"
	"repro/internal/linalg"
	"repro/internal/ode"
	"repro/internal/shooting"
)

// ErrNoUnitMultiplier is returned when the monodromy matrix has no
// eigenvalue close to 1 — i.e. the supplied orbit is not a (resolved)
// periodic solution of an autonomous system.
var ErrNoUnitMultiplier = errors.New("floquet: no characteristic multiplier near 1")

// ErrAdjointClosure is returned when the backward-integrated adjoint vector
// fails to close on itself over one period within Options.MaxPeriodDrift;
// increase Steps or tighten the shooting tolerance.
var ErrAdjointClosure = errors.New("floquet: adjoint closure error too large")

// Trace records per-stage diagnostics of one Analyze call. Attach a zero
// Trace to Options.Trace; fields are overwritten as each stage completes, so
// on failure the trace shows how far the analysis got.
type Trace struct {
	Wall         time.Duration // total wall-clock time of Analyze
	AdjointWall  time.Duration // time in the backward adjoint integration
	Steps        int           // adjoint integration steps used
	UnitErr      float64       // |multiplier₁ − 1|
	ClosureErr   float64       // relative adjoint closure error over one period
	BiorthoDrift float64       // max |v1ᵀ(t)·ẋs(t) − 1| before renormalisation
}

// ErrUnstableCycle is returned when a multiplier other than the structural
// unit one lies outside the unit circle, meaning the orbit is not
// asymptotically orbitally stable and the phase-noise theory does not apply.
var ErrUnstableCycle = errors.New("floquet: limit cycle is orbitally unstable")

// Options configures the analysis.
type Options struct {
	Steps          int     // adjoint integration steps over one period (default: 4× orbit knots, min 2000)
	UnitTol        float64 // acceptance radius for the unit multiplier (default 5e-3)
	StabilityTol   float64 // margin for instability detection (default 1e-6)
	SkipStability  bool    // do not fail on unstable cycles (for diagnostics)
	NoRenormalize  bool    // keep the raw backward-integrated v1(t) without pointwise rescaling
	RelaxResidual  bool    // accept larger inverse-iteration residuals (ill-conditioned monodromy)
	MaxPeriodDrift float64 // max tolerated ‖v1(0)−v1(T)‖ closure error (default 1e-3, relative)
	Trace          *Trace  // optional per-stage diagnostics, filled in by Analyze
	// Budget, when non-nil, is polled at integrator-step granularity in the
	// backward adjoint integration; a tripped token aborts Analyze with a
	// wrapped budget.ErrCanceled/ErrBudgetExceeded.
	Budget *budget.Token
}

// Effective returns a copy of o with the statically-defaulted knobs resolved
// to the values Analyze actually runs with. Steps is the exception: its
// default scales with the orbit resolution at analysis time, so an unset
// Steps stays 0 ("auto") here. Used for content-addressed result caching,
// where "nil", "zero" and "explicitly default" must hash alike.
func (o *Options) Effective() Options {
	out := o.defaults(0)
	if o == nil || o.Steps <= 0 {
		out.Steps = 0 // auto: resolved against the orbit, not a static default
	}
	return out
}

func (o *Options) defaults(orbitKnots int) Options {
	out := Options{
		Steps:          max(2000, 4*orbitKnots),
		UnitTol:        5e-3,
		StabilityTol:   1e-6,
		MaxPeriodDrift: 1e-3,
	}
	if o != nil {
		if o.Steps > 0 {
			out.Steps = o.Steps
		}
		if o.UnitTol > 0 {
			out.UnitTol = o.UnitTol
		}
		if o.StabilityTol > 0 {
			out.StabilityTol = o.StabilityTol
		}
		out.SkipStability = o.SkipStability
		out.NoRenormalize = o.NoRenormalize
		out.RelaxResidual = o.RelaxResidual
		if o.MaxPeriodDrift > 0 {
			out.MaxPeriodDrift = o.MaxPeriodDrift
		}
		out.Trace = o.Trace
		out.Budget = o.Budget
	}
	return out
}

// Decomposition carries the Floquet quantities of one periodic orbit.
type Decomposition struct {
	T           float64
	Multipliers []complex128 // characteristic multipliers exp(μ_i T), |·| sorted desc
	Exponents   []complex128 // Floquet exponents μ_i = log(multiplier)/T
	U10         []float64    // u1(0) = ẋs(0)
	V10         []float64    // v1(0), normalised v1ᵀ(0)·u1(0) = 1
	V1          *ode.Trajectory
	// Diagnostics:
	UnitErr      float64 // |multiplier₁ − 1|
	ClosureErr   float64 // relative ‖v1 backward-integrated to 0 − v1(0)‖
	BiorthoDrift float64 // max |v1ᵀ(t)·ẋs(t) − 1| before renormalisation
}

// V1At evaluates v1(t) into dst, reducing t modulo the period.
func (d *Decomposition) V1At(t float64, dst []float64) {
	tm := math.Mod(t, d.T)
	if tm < 0 {
		tm += d.T
	}
	d.V1.At(tm, dst)
}

// StabilityMargin returns 1 − max_{i≥2} |multiplier_i|; positive values mean
// an asymptotically orbitally stable cycle.
func (d *Decomposition) StabilityMargin() float64 {
	worst := 0.0
	for i := 1; i < len(d.Multipliers); i++ {
		if a := cmplx.Abs(d.Multipliers[i]); a > worst {
			worst = a
		}
	}
	return 1 - worst
}

// Analyze computes the Floquet decomposition of the periodic steady state
// pss of sys, following paper Section 9 steps 2–5:
//
//  1. eigenvalues of Φ(T,0) give the characteristic multipliers;
//  2. u1(0) = ẋs(0) = f(x0) spans the unit-multiplier eigenspace;
//  3. v1(0) is the eigenvector of Φᵀ(T,0) at eigenvalue 1, scaled so
//     v1ᵀ(0) u1(0) = 1;
//  4. v1(t) follows from integrating ẏ = −Aᵀ(t)y BACKWARD from
//     y(T) = v1(0); forward integration would be unstable because the
//     contracting Floquet modes of the cycle are expanding for the adjoint.
func Analyze(sys dynsys.System, pss *shooting.PSS, opts *Options) (*Decomposition, error) {
	o := opts.defaults(len(pss.Orbit.Points))
	tr := o.Trace
	if tr != nil {
		// Reset to zero — NOT to the configured step count. Steps is filled
		// with the number of adjoint steps actually completed once the
		// integration runs, so a trace from an early exit (budget trip before
		// or during the adjoint stage) reports real work done, not intent.
		*tr = Trace{}
		start := time.Now()
		defer func() { tr.Wall = time.Since(start) }()
	}
	fm := floquetMetrics.Get()
	fm.analyses.Inc()
	prep, err := preAdjoint(sys, pss, o, tr)
	if err != nil {
		return nil, err
	}

	// Backward adjoint integration over [0, T] with y(T) = v1(0).
	jac := func(t float64, x []float64, dst []float64) { sys.Jacobian(x, dst) }
	adjStart := time.Now()
	v1traj, adjDone, err := ode.AdjointBackward(jac, pss.Orbit, 0, pss.T, prep.v10, o.Steps, o.Budget)
	if tr != nil {
		tr.AdjointWall = time.Since(adjStart)
		tr.Steps = adjDone
	}
	if err != nil {
		return nil, fmt.Errorf("floquet: adjoint integration: %w", err)
	}

	return postAdjoint(sys, pss, o, tr, prep, v1traj)
}

// adjPrep carries the pre-adjoint stage results: multipliers ordered per the
// Decomposition contract, exponents, and the Floquet vectors at t = 0.
type adjPrep struct {
	mult  []complex128
	exps  []complex128
	u10   []float64
	v10   []float64
	bdist float64
}

// preAdjoint runs the scalar stages of Analyze that precede the adjoint
// integration: the monodromy eigenanalysis, unit-multiplier search, stability
// check and the v1(0) eigenvector. Shared verbatim by Analyze and
// AnalyzeBatch so the two paths cannot drift apart.
func preAdjoint(sys dynsys.System, pss *shooting.PSS, o Options, tr *Trace) (*adjPrep, error) {
	n := sys.Dim()
	phi := pss.Monodromy
	if err := o.Budget.Err(); err != nil {
		return nil, fmt.Errorf("floquet: before monodromy eigenanalysis: %w", err)
	}

	// The PSS memoizes its monodromy eigendecomposition, so re-analysing the
	// same solution (a retry-ladder rung that only changed downstream
	// tolerances) does not refactor Φ.
	mult, err := pss.MonodromyEigen()
	if err != nil {
		return nil, fmt.Errorf("floquet: monodromy eigenvalues: %w", err)
	}
	// Locate the multiplier closest to 1 and move it to the front.
	best, bdist := -1, math.Inf(1)
	for i, m := range mult {
		if d := cmplx.Abs(m - 1); d < bdist {
			best, bdist = i, d
		}
	}
	if tr != nil {
		tr.UnitErr = bdist
	}
	if best < 0 || bdist > o.UnitTol {
		return nil, fmt.Errorf("%w (closest %.3e away; refine the shooting solution)", ErrNoUnitMultiplier, bdist)
	}
	mult[0], mult[best] = mult[best], mult[0]
	// The contract on Decomposition.Multipliers is |·| sorted descending
	// after the structural unit multiplier; eigenvalue routines return them
	// in no particular order.
	sort.SliceStable(mult[1:], func(i, j int) bool {
		return cmplx.Abs(mult[1+i]) > cmplx.Abs(mult[1+j])
	})
	if !o.SkipStability {
		for i := 1; i < len(mult); i++ {
			if cmplx.Abs(mult[i]) > 1+o.StabilityTol {
				return nil, fmt.Errorf("%w (multiplier %v)", ErrUnstableCycle, mult[i])
			}
		}
	}
	exps := make([]complex128, len(mult))
	for i, m := range mult {
		exps[i] = cmplx.Log(m) / complex(pss.T, 0)
	}
	exps[0] = 0 // structurally exact

	// u1(0) = f(x0).
	u10 := make([]float64, n)
	sys.Eval(pss.X0, u10)

	// v1(0): eigenvector of Φᵀ at eigenvalue 1.
	v10, err := linalg.EigenvectorReal(phi.T(), 1)
	if err != nil {
		return nil, fmt.Errorf("floquet: v1(0) eigenvector: %w", err)
	}
	ip := linalg.Dot(v10, u10)
	if ip == 0 {
		return nil, errors.New("floquet: v1(0) orthogonal to u1(0); degenerate monodromy")
	}
	linalg.ScaleVec(1/ip, v10)
	return &adjPrep{mult: mult, exps: exps, u10: u10, v10: v10, bdist: bdist}, nil
}

// postAdjoint runs the scalar stages downstream of the adjoint integration:
// closure diagnostic, biorthogonality drift, pointwise renormalisation and
// assembly of the Decomposition. Shared by Analyze and AnalyzeBatch.
func postAdjoint(sys dynsys.System, pss *shooting.PSS, o Options, tr *Trace, prep *adjPrep, v1traj *ode.Trajectory) (*Decomposition, error) {
	fm := floquetMetrics.Get()
	n := sys.Dim()
	v10 := prep.v10

	// Closure diagnostic: the backward solution at t=0 should reproduce v1(0).
	v1at0 := make([]float64, n)
	v1traj.At(0, v1at0)
	closure := linalg.Norm2(linalg.SubVec(v1at0, v10)) / (1 + linalg.Norm2(v10))
	fm.closureErr.Set(closure)
	if tr != nil {
		tr.ClosureErr = closure
	}

	// Biorthogonality drift |v1ᵀ(t) ẋs(t) − 1| at the knots.
	pts := v1traj.Points
	ips := make([]float64, len(pts))
	drift := 0.0
	xbuf := make([]float64, n)
	fbuf := make([]float64, n)
	orbitLoc := ode.NewLocator(pss.Orbit)
	for i := range pts {
		orbitLoc.At(pts[i].T, xbuf)
		sys.Eval(xbuf, fbuf)
		ips[i] = linalg.Dot(pts[i].X, fbuf)
		if d := math.Abs(ips[i] - 1); d > drift {
			drift = d
		}
	}
	if tr != nil {
		tr.BiorthoDrift = drift
	}
	if !o.NoRenormalize {
		// The exact v1 satisfies v1ᵀ(t)u1(t) ≡ 1; rescaling pointwise removes
		// accumulated integration error without changing the direction of the
		// projection. The renormalised vector is ṽ1 = v1/ip with
		// d ṽ1/dt = v̇1/ip − (dip/dt)/ip²·v1, so the knot slopes need the
		// derivative of the rescaling factor as well — scaling DX by 1/ip
		// alone leaves the Hermite interpolant inconsistent wherever the
		// drift varies between knots.
		for i := range pts {
			ip := ips[i]
			if ip == 0 {
				continue
			}
			var dip float64
			switch {
			case i == 0:
				dip = (ips[1] - ips[0]) / (pts[1].T - pts[0].T)
			case i == len(pts)-1:
				dip = (ips[i] - ips[i-1]) / (pts[i].T - pts[i-1].T)
			default:
				dip = (ips[i+1] - ips[i-1]) / (pts[i+1].T - pts[i-1].T)
			}
			p := &pts[i]
			for k := range p.DX {
				p.DX[k] = (p.DX[k] - dip/ip*p.X[k]) / ip
			}
			linalg.ScaleVec(1/ip, p.X)
		}
	}
	if closure > o.MaxPeriodDrift {
		fm.closureFails.Inc()
		return nil, fmt.Errorf("%w: %.3e exceeds %.3e; increase Steps or tighten shooting tolerance", ErrAdjointClosure, closure, o.MaxPeriodDrift)
	}

	return &Decomposition{
		T:            pss.T,
		Multipliers:  prep.mult,
		Exponents:    prep.exps,
		U10:          prep.u10,
		V10:          v10,
		V1:           v1traj,
		UnitErr:      prep.bdist,
		ClosureErr:   closure,
		BiorthoDrift: drift,
	}, nil
}
