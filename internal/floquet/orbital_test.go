package floquet

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/osc"
	"repro/internal/shooting"
)

func TestOrbitalDeviationDirectMatchesModalSum(t *testing.T) {
	// On the Hopf oscillator (real simple multipliers) the direct
	// variational route must agree with the Eq.-12 modal quadrature.
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 1}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	lite, err := Analyze(h, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	full, err := AnalyzeFull(h, pss, 3000)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1e-3
	bfun := func(r float64) []float64 {
		return []float64{eps * math.Cos(3*r), eps * math.Sin(5*r)}
	}
	tr := OrbitalDeviationDirect(h, pss, lite, bfun, 3*pss.T, 6000)
	buf := make([]float64, 2)
	for _, frac := range []float64{0.5, 1, 2, 3} {
		tt := frac * pss.T
		tr.At(tt, buf)
		want := full.OrbitalDeviation(h, pss, bfun, tt, 6000)
		if d := linalg.Norm2(linalg.SubVec(buf, want)); d > 1e-4*eps+1e-6*linalg.Norm2(want) {
			t.Fatalf("t=%.1fT: direct %v vs modal %v (diff %g)", frac, buf, want, d)
		}
	}
}

func TestOrbitalDeviationDirectStaysBounded(t *testing.T) {
	// Remark 5.2 on a long horizon: no secular growth over 20 periods.
	h := &osc.Hopf{Lambda: 1.5, Omega: 4, Sigma: 1}
	pss, err := shooting.Find(h, []float64{1, 0}, 2*math.Pi/4, nil)
	if err != nil {
		t.Fatal(err)
	}
	lite, err := Analyze(h, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1e-3
	bfun := func(r float64) []float64 { return []float64{eps, eps * math.Sin(r)} }
	tr := OrbitalDeviationDirect(h, pss, lite, bfun, 20*pss.T, 40000)
	buf := make([]float64, 2)
	maxN := 0.0
	for _, p := range tr.Points {
		copy(buf, p.X)
		if nrm := linalg.Norm2(buf); nrm > maxN {
			maxN = nrm
		}
	}
	if maxN > 10*eps {
		t.Fatalf("orbital deviation grew to %g (ε = %g)", maxN, eps)
	}
}

func TestOrbitalDeviationDirectPhaseFree(t *testing.T) {
	// The returned y must carry no component along the phase direction:
	// v1ᵀ(t)·y(t) ≈ 0 everywhere.
	h := &osc.Hopf{Lambda: 2, Omega: 2 * math.Pi, Sigma: 1}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	lite, err := Analyze(h, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1e-3
	bfun := func(r float64) []float64 { return []float64{eps * math.Cos(2*r), 0} }
	tr := OrbitalDeviationDirect(h, pss, lite, bfun, 5*pss.T, 10000)
	v := make([]float64, 2)
	y := make([]float64, 2)
	for _, frac := range []float64{0.3, 1.7, 4.2} {
		tt := frac * pss.T
		tr.At(tt, y)
		lite.V1At(tt, v)
		if ip := math.Abs(linalg.Dot(v, y)); ip > 1e-6*eps {
			t.Fatalf("phase leakage %g at %.1fT", ip, frac)
		}
	}
}
