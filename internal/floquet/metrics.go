package floquet

import "repro/internal/obs"

// floquetInstruments are the Floquet-stage metrics. Adjoint step counts live
// in the ode package (pn_ode_steps_total{method="adjoint"}); this bundle
// tracks analysis-level outcomes.
type floquetInstruments struct {
	analyses     *obs.Counter // pn_floquet_analyses_total
	closureFails *obs.Counter // pn_floquet_closure_failures_total
	closureErr   *obs.Gauge   // pn_floquet_closure_error
}

var floquetMetrics = obs.NewView(func(r *obs.Registry) *floquetInstruments {
	return &floquetInstruments{
		analyses:     r.Counter("pn_floquet_analyses_total", "Floquet Analyze calls started."),
		closureFails: r.Counter("pn_floquet_closure_failures_total", "Analyses rejected because the adjoint closure error exceeded MaxPeriodDrift."),
		closureErr:   r.Gauge("pn_floquet_closure_error", "Relative adjoint closure error of the most recent analysis."),
	}
})
