package floquet

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/budget"
	"repro/internal/dynsys"
	"repro/internal/ode"
	"repro/internal/shooting"
)

// BatchItem is one lane of an AnalyzeBatch call: the scalar system (for the
// cheap per-lane stages), its periodic steady state, and its options. A nil
// PSS marks a lane that already failed upstream; it is reported as a lane
// error without joining the batch integration.
type BatchItem struct {
	Sys  dynsys.System
	PSS  *shooting.PSS
	Opts *Options
}

// AnalyzeBatch runs the Floquet analysis of K periodic steady states of one
// model family in lockstep. The eigenanalysis, v1(0) solve, and all
// diagnostics run per lane through the exact scalar code paths (preAdjoint /
// postAdjoint); the expensive backward adjoint integration — the dominant
// cost of a characterisation — runs once at full width K through
// ode.BatchAdjointBackward, whose per-lane arithmetic is bit-identical to the
// scalar kernel. Lanes must agree on the effective adjoint step count
// (batchErr otherwise); the remaining knobs, Trace and Budget may differ.
//
// For every lane that succeeds, the Decomposition is bit-identical to what
// the scalar Analyze would produce. laneErrs[k] reports per-lane failures; a
// non-nil batchErr (tripped batchTok or injected batch fault) voids all
// lanes.
func AnalyzeBatch(be dynsys.BatchEvaluator, items []BatchItem, batchTok *budget.Token) (decs []*Decomposition, laneErrs []error, batchErr error) {
	K := len(items)
	if K == 0 {
		return nil, nil, errors.New("floquet: AnalyzeBatch of zero lanes")
	}
	if be == nil {
		return nil, nil, errors.New("floquet: AnalyzeBatch requires a batch evaluator")
	}
	if be.Lanes() != K {
		return nil, nil, fmt.Errorf("floquet: batch evaluator has %d lanes, got %d items", be.Lanes(), K)
	}
	n := be.Dim()

	start := time.Now()
	fm := floquetMetrics.Get()
	effs := make([]Options, K)
	preps := make([]*adjPrep, K)
	laneErrs = make([]error, K)
	decs = make([]*Decomposition, K)
	steps := 0
	for k, it := range items {
		fm.analyses.Inc()
		if it.PSS == nil {
			effs[k] = it.Opts.defaults(0)
			laneErrs[k] = errors.New("floquet: lane has no periodic steady state")
		} else {
			effs[k] = it.Opts.defaults(len(it.PSS.Orbit.Points))
		}
		if tr := effs[k].Trace; tr != nil {
			*tr = Trace{}
			defer func(tr *Trace) { tr.Wall = time.Since(start) }(tr) // per-lane Wall = batch wall
		}
		if laneErrs[k] != nil {
			continue
		}
		if it.Sys == nil || it.Sys.Dim() != n {
			laneErrs[k] = fmt.Errorf("floquet: lane %d system incompatible with batch dimension %d", k, n)
			continue
		}
		if steps == 0 {
			steps = effs[k].Steps
		} else if effs[k].Steps != steps {
			return nil, nil, fmt.Errorf("floquet: AnalyzeBatch lanes disagree on adjoint steps (%d vs %d); batch only compatible analyses", steps, effs[k].Steps)
		}
	}

	// Scalar pre-adjoint stage per live lane.
	live := 0
	ref := -1 // any live lane, donor of placeholder orbits for dead lanes
	for k, it := range items {
		if laneErrs[k] != nil {
			continue
		}
		prep, err := preAdjoint(it.Sys, it.PSS, effs[k], effs[k].Trace)
		if err != nil {
			laneErrs[k] = err
			continue
		}
		preps[k] = prep
		live++
		ref = k
	}
	if live == 0 {
		return decs, laneErrs, nil
	}

	// One full-width backward adjoint integration. Dead lanes ride along on a
	// donor lane's orbit and terminal condition; the lane-diagonal kernel
	// keeps them from influencing anyone, and their results are discarded.
	orbits := make([]*ode.Trajectory, K)
	t1s := make([]float64, K)
	yTs := make([][]float64, K)
	laneToks := make([]*budget.Token, K)
	for k := range items {
		if preps[k] != nil {
			orbits[k] = items[k].PSS.Orbit
			t1s[k] = items[k].PSS.T
			yTs[k] = preps[k].v10
			laneToks[k] = effs[k].Budget
		} else {
			orbits[k] = items[ref].PSS.Orbit
			t1s[k] = items[ref].PSS.T
			yTs[k] = preps[ref].v10
		}
	}
	bjac := func(ts, x, jac []float64) { be.JacobianBatch(x, jac) }
	adjStart := time.Now()
	v1trajs, stepsDone, adjErrs, berr := ode.BatchAdjointBackward(bjac, orbits, t1s, yTs, steps, batchTok, laneToks)
	if berr != nil {
		return nil, nil, berr
	}

	// Scalar post-adjoint stage per surviving lane.
	for k, it := range items {
		if preps[k] == nil {
			continue
		}
		if tr := effs[k].Trace; tr != nil {
			tr.AdjointWall = time.Since(adjStart)
			tr.Steps = stepsDone[k]
		}
		if adjErrs[k] != nil {
			laneErrs[k] = fmt.Errorf("floquet: adjoint integration: %w", adjErrs[k])
			continue
		}
		dec, err := postAdjoint(it.Sys, it.PSS, effs[k], effs[k].Trace, preps[k], v1trajs[k])
		if err != nil {
			laneErrs[k] = err
			continue
		}
		decs[k] = dec
	}
	return decs, laneErrs, nil
}
