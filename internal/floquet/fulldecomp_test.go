package floquet

import (
	"errors"
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/osc"
	"repro/internal/shooting"
)

func fullHopf(t *testing.T, lambda, omega float64) (*osc.Hopf, *shooting.PSS, *FullDecomposition) {
	t.Helper()
	h := &osc.Hopf{Lambda: lambda, Omega: omega, Sigma: 0.1}
	pss, err := shooting.Find(h, []float64{1, 0.1}, 2*math.Pi/omega, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := AnalyzeFull(h, pss, 3000)
	if err != nil {
		t.Fatal(err)
	}
	return h, pss, dec
}

func TestFullDecompositionHopfExponents(t *testing.T) {
	h, _, dec := fullHopf(t, 0.7, 3)
	if len(dec.Exponents) != 2 {
		t.Fatalf("%d exponents", len(dec.Exponents))
	}
	if dec.Exponents[0] != 0 {
		t.Fatalf("μ1 = %g", dec.Exponents[0])
	}
	if math.Abs(dec.Exponents[1]-(-2*h.Lambda)) > 1e-4 {
		t.Fatalf("μ2 = %g, want %g", dec.Exponents[1], -2*h.Lambda)
	}
	if math.Abs(dec.Multipliers[1]-h.ExactSecondMultiplier()) > 1e-5 {
		t.Fatalf("multiplier %g", dec.Multipliers[1])
	}
}

func TestFullDecompositionBiorthogonality(t *testing.T) {
	_, _, dec := fullHopf(t, 1.2, 2*math.Pi)
	if e := dec.BiorthogonalityError(64); e > 1e-6 {
		t.Fatalf("biorthogonality error %g", e)
	}
}

func TestFullDecompositionVdP(t *testing.T) {
	v := &osc.VanDerPol{Mu: 0.8, Sigma: 0.02}
	pss, err := shooting.Find(v, []float64{2, 0}, 6.5, nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := AnalyzeFull(v, pss, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if e := dec.BiorthogonalityError(48); e > 1e-5 {
		t.Fatalf("vdP biorthogonality error %g", e)
	}
	// v1 from the full decomposition must agree with Analyze's v1.
	lite, err := Analyze(v, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, 2)
	b := make([]float64, 2)
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		tt := frac * pss.T
		dec.V[0].At(tt, a)
		lite.V1At(tt, b)
		if math.Abs(a[0]-b[0]) > 1e-6 || math.Abs(a[1]-b[1]) > 1e-6 {
			t.Fatalf("v1 mismatch at %.1fT: %v vs %v", frac, a, b)
		}
	}
}

func TestFullDecompositionModePeriodicity(t *testing.T) {
	// Stripped of exp(μt), every stored Floquet mode must be T-periodic.
	_, pss, dec := fullHopf(t, 2, 5)
	a := make([]float64, 2)
	b := make([]float64, 2)
	for i := range dec.U {
		dec.U[i].At(0, a)
		dec.U[i].At(pss.T, b)
		if d := math.Hypot(a[0]-b[0], a[1]-b[1]); d > 1e-6*(1+linalg.Norm2(a)) {
			t.Fatalf("u%d not periodic: closure %g", i+1, d)
		}
		dec.V[i].At(0, a)
		dec.V[i].At(pss.T, b)
		if d := math.Hypot(a[0]-b[0], a[1]-b[1]); d > 1e-6*(1+linalg.Norm2(a)) {
			t.Fatalf("v%d not periodic: closure %g", i+1, d)
		}
	}
}

func TestOrbitalDeviationBounded(t *testing.T) {
	// Remark 5.2: y(t) stays within a constant factor of the perturbation.
	h, pss, dec := fullHopf(t, 2, 2*math.Pi)
	eps := 1e-3
	bfun := func(r float64) []float64 { return []float64{eps, 0} }
	prevNorm := 0.0
	for _, periods := range []float64{1, 3, 6, 10} {
		y := dec.OrbitalDeviation(h, pss, bfun, periods*pss.T, int(2000*periods))
		norm := linalg.Norm2(y)
		if norm > 10*eps {
			t.Fatalf("y after %g periods = %g, not O(b)=%g", periods, norm, eps)
		}
		prevNorm = norm
	}
	_ = prevNorm
}

func TestOrbitalDeviationScalesLinearly(t *testing.T) {
	h, pss, dec := fullHopf(t, 1.5, 4)
	bfun := func(scale float64) func(r float64) []float64 {
		return func(r float64) []float64 {
			return []float64{scale * math.Sin(3*r), scale * math.Cos(r)}
		}
	}
	y1 := dec.OrbitalDeviation(h, pss, bfun(1e-4), 2*pss.T, 4000)
	y2 := dec.OrbitalDeviation(h, pss, bfun(3e-4), 2*pss.T, 4000)
	for i := range y1 {
		if math.Abs(y2[i]-3*y1[i]) > 1e-9+1e-6*math.Abs(y1[i]) {
			t.Fatalf("y not linear in b: %v vs %v", y1, y2)
		}
	}
}

func TestOrbitalDeviationTransverse(t *testing.T) {
	// For the Hopf oscillator, the transverse mode is radial: a constant
	// perturbation's bounded response must be (asymptotically) orthogonal
	// to nothing in particular, but must NOT grow along the tangent —
	// verify the tangential component stays comparable to the transverse.
	h, pss, dec := fullHopf(t, 3, 2*math.Pi)
	eps := 1e-3
	bfun := func(r float64) []float64 { return []float64{0, eps} }
	y := dec.OrbitalDeviation(h, pss, bfun, 5*pss.T, 10000)
	// Orbit point and tangent at t = 5T ≡ 0 mod T.
	f := make([]float64, 2)
	h.Eval(pss.X0, f)
	linalg.Normalize(f)
	tangential := math.Abs(linalg.Dot(y, f))
	if tangential > 10*eps {
		t.Fatalf("orbital deviation leaking into the phase direction: %g", tangential)
	}
}

func TestAnalyzeFullRejectsComplexMultipliers(t *testing.T) {
	// A 3-state system whose transverse monodromy is a rotation has complex
	// multipliers. Build one synthetically: extend Hopf with a rotating
	// transverse plane is overkill — instead check the error path directly
	// by a fake monodromy on a real PSS.
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.1}
	pss, err := shooting.Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fake := *pss
	fake.Monodromy = linalg.NewMatrixFrom(2, 2, []float64{
		0.5, -0.5,
		0.5, 0.5, // eigenvalues 0.5 ± 0.5i
	})
	if _, err := AnalyzeFull(h, &fake, 100); !errors.Is(err, ErrComplexMultipliers) && !errors.Is(err, ErrNoUnitMultiplier) {
		t.Fatalf("expected complex/no-unit error, got %v", err)
	}
}
