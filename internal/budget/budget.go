// Package budget provides the cheap cancellation and wall-clock-budget token
// threaded through the whole numeric stack (ode → shooting → floquet → core →
// sweep). A *Token is polled at integrator-step granularity: a check is a
// non-blocking channel select plus (when a deadline is armed anywhere in the
// chain) one time.Now() call, so even the innermost RK4 loops can afford it.
//
// Tokens form a chain: a child created with WithCancel / WithTimeout /
// WithDeadline trips whenever any ancestor trips, so a sweep can hand every
// attempt a token that combines the attempt deadline, the per-point deadline
// and the batch-wide cancellation. A nil *Token is valid everywhere and never
// trips, so budget-free callers pay nothing.
//
// At the API boundary, FromContext adapts a context.Context (both its Done
// channel and its deadline) into a Token, keeping the numeric packages free
// of context plumbing.
package budget

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrCanceled is returned by a token whose cancel function (or ancestor
// context) fired. Callers branch with errors.Is.
var ErrCanceled = errors.New("budget: canceled")

// ErrBudgetExceeded is returned by a token whose wall-clock deadline passed.
// Callers branch with errors.Is.
var ErrBudgetExceeded = errors.New("budget: wall-clock budget exceeded")

// Is reports whether err is (or wraps) either budget error — a cut-off rather
// than a numerical failure. Cut-offs are never retryable: repeating the work
// under the same budget cannot help.
func Is(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudgetExceeded)
}

// Token is one link of a cancellation/deadline chain. The zero value is not
// useful; build tokens with WithCancel, WithTimeout, WithDeadline or
// FromContext. All methods are safe on a nil receiver (a nil token never
// trips) and safe for concurrent use.
type Token struct {
	parent   *Token
	done     <-chan struct{} // non-nil for cancelable tokens
	deadline time.Time       // zero when no deadline at this link
}

// WithCancel returns a cancelable child of parent (nil parent is allowed) and
// the function that trips it. The cancel function is idempotent and safe to
// call from any goroutine.
//
// The child's Done channel closes when either the cancel function fires or
// any cancelable ancestor trips, so a supervisor that inserted its own cancel
// link still observes cancellation from above. When the parent chain is
// cancelable this costs one forwarding goroutine; as with context.WithCancel,
// call cancel once the token is no longer needed to release it.
func WithCancel(parent *Token) (*Token, func()) {
	own := make(chan struct{})
	var once sync.Once
	cancel := func() { once.Do(func() { close(own) }) }
	done := (<-chan struct{})(own)
	if pd := parent.Done(); pd != nil {
		merged := make(chan struct{})
		go func() {
			select {
			case <-own:
			case <-pd:
			}
			close(merged)
		}()
		done = merged
	}
	return &Token{parent: parent, done: done}, cancel
}

// WithTimeout returns a child of parent (nil parent is allowed) that reports
// ErrBudgetExceeded once d has elapsed from now. A non-positive d yields a
// token that is already expired.
func WithTimeout(parent *Token, d time.Duration) *Token {
	return WithDeadline(parent, time.Now().Add(d))
}

// WithDeadline returns a child of parent that reports ErrBudgetExceeded once
// the wall clock passes t.
func WithDeadline(parent *Token, t time.Time) *Token {
	return &Token{parent: parent, deadline: t}
}

// FromContext adapts ctx into a Token: the token reports ErrCanceled once
// ctx.Done() fires and ErrBudgetExceeded once the ctx deadline (if any)
// passes. A nil or background context yields a nil token.
func FromContext(ctx context.Context) *Token {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	dl, ok := ctx.Deadline()
	if done == nil && !ok {
		return nil
	}
	t := &Token{done: done}
	if ok {
		t.deadline = dl
	}
	return t
}

// Err reports whether the token (or any ancestor) has tripped: ErrCanceled
// for cancellation, ErrBudgetExceeded for an expired deadline, nil otherwise.
// This is the per-step check: one non-blocking select per cancelable link and
// at most one time.Now() per call.
func (t *Token) Err() error {
	// Deadlines across the whole chain take precedence over cancellation:
	// when a supervisor enforces an expired deadline by cancelling a child
	// link, the informative answer is still ErrBudgetExceeded.
	var now time.Time
	for tk := t; tk != nil; tk = tk.parent {
		if !tk.deadline.IsZero() {
			if now.IsZero() {
				now = time.Now()
			}
			if !now.Before(tk.deadline) {
				return ErrBudgetExceeded
			}
		}
	}
	for tk := t; tk != nil; tk = tk.parent {
		if tk.done != nil {
			select {
			case <-tk.done:
				return ErrCanceled
			default:
			}
		}
	}
	return nil
}

// Deadline returns the earliest wall-clock deadline armed anywhere in the
// chain, and whether one exists.
func (t *Token) Deadline() (time.Time, bool) {
	var dl time.Time
	ok := false
	for tk := t; tk != nil; tk = tk.parent {
		if tk.deadline.IsZero() {
			continue
		}
		if !ok || tk.deadline.Before(dl) {
			dl, ok = tk.deadline, true
		}
	}
	return dl, ok
}

// Done returns a channel that closes once any cancelable link in the chain
// trips (nil when none is cancelable). Every WithCancel link already folds
// its ancestors' cancellation into its own channel, so the nearest cancelable
// link's channel observes the whole chain. It lets a supervisor select on
// cancellation alongside other events; deadlines are not reflected here —
// pair Done with Deadline and a timer.
func (t *Token) Done() <-chan struct{} {
	for tk := t; tk != nil; tk = tk.parent {
		if tk.done != nil {
			return tk.done
		}
	}
	return nil
}
