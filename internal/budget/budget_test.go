package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilTokenNeverTrips(t *testing.T) {
	var tok *Token
	if err := tok.Err(); err != nil {
		t.Fatalf("nil token tripped: %v", err)
	}
	if tok.Done() != nil {
		t.Fatal("nil token has a done channel")
	}
	if _, ok := tok.Deadline(); ok {
		t.Fatal("nil token has a deadline")
	}
}

func TestWithCancel(t *testing.T) {
	tok, cancel := WithCancel(nil)
	if err := tok.Err(); err != nil {
		t.Fatalf("fresh token tripped: %v", err)
	}
	cancel()
	if err := tok.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	select {
	case <-tok.Done():
	default:
		t.Fatal("Done channel not closed after cancel")
	}
	cancel() // idempotent
}

func TestWithTimeout(t *testing.T) {
	tok := WithTimeout(nil, 20*time.Millisecond)
	if err := tok.Err(); err != nil {
		t.Fatalf("fresh deadline token tripped: %v", err)
	}
	if _, ok := tok.Deadline(); !ok {
		t.Fatal("no deadline reported")
	}
	time.Sleep(30 * time.Millisecond)
	if err := tok.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
}

func TestParentCancellationPropagates(t *testing.T) {
	parent, cancel := WithCancel(nil)
	child := WithTimeout(parent, time.Hour)
	cancel()
	if err := child.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("child got %v, want parent's ErrCanceled", err)
	}
	if child.Done() == nil {
		t.Fatal("child exposes no done channel from its chain")
	}
}

func TestEarliestDeadlineWins(t *testing.T) {
	parent := WithTimeout(nil, 10*time.Millisecond)
	child := WithTimeout(parent, time.Hour)
	dl, ok := child.Deadline()
	if !ok {
		t.Fatal("no deadline")
	}
	if time.Until(dl) > time.Second {
		t.Fatalf("child deadline %v ignores earlier parent deadline", dl)
	}
	time.Sleep(20 * time.Millisecond)
	if err := child.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded via parent deadline", err)
	}
}

func TestFromContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tok := FromContext(ctx)
	if err := tok.Err(); err != nil {
		t.Fatalf("live context tripped: %v", err)
	}
	cancel()
	if err := tok.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer dcancel()
	dtok := FromContext(dctx)
	if _, ok := dtok.Deadline(); !ok {
		t.Fatal("context deadline not adopted")
	}
	time.Sleep(20 * time.Millisecond)
	if err := dtok.Err(); !Is(err) {
		t.Fatalf("got %v, want a budget error", err)
	}
}

func TestIsHelper(t *testing.T) {
	if Is(nil) {
		t.Fatal("Is(nil)")
	}
	if Is(errors.New("other")) {
		t.Fatal("Is(other)")
	}
	if !Is(ErrCanceled) || !Is(ErrBudgetExceeded) {
		t.Fatal("Is misses its own sentinels")
	}
}
