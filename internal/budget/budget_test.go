package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilTokenNeverTrips(t *testing.T) {
	var tok *Token
	if err := tok.Err(); err != nil {
		t.Fatalf("nil token tripped: %v", err)
	}
	if tok.Done() != nil {
		t.Fatal("nil token has a done channel")
	}
	if _, ok := tok.Deadline(); ok {
		t.Fatal("nil token has a deadline")
	}
}

func TestWithCancel(t *testing.T) {
	tok, cancel := WithCancel(nil)
	if err := tok.Err(); err != nil {
		t.Fatalf("fresh token tripped: %v", err)
	}
	cancel()
	if err := tok.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	select {
	case <-tok.Done():
	default:
		t.Fatal("Done channel not closed after cancel")
	}
	cancel() // idempotent
}

func TestWithTimeout(t *testing.T) {
	tok := WithTimeout(nil, 20*time.Millisecond)
	if err := tok.Err(); err != nil {
		t.Fatalf("fresh deadline token tripped: %v", err)
	}
	if _, ok := tok.Deadline(); !ok {
		t.Fatal("no deadline reported")
	}
	time.Sleep(30 * time.Millisecond)
	if err := tok.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
}

func TestParentCancellationPropagates(t *testing.T) {
	parent, cancel := WithCancel(nil)
	child := WithTimeout(parent, time.Hour)
	cancel()
	if err := child.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("child got %v, want parent's ErrCanceled", err)
	}
	if child.Done() == nil {
		t.Fatal("child exposes no done channel from its chain")
	}
}

func TestDoneObservesAncestorCancellation(t *testing.T) {
	// Regression: a caller that inserts its own cancel link must still see
	// ancestor cancellation on Done() — previously Done() returned only the
	// nearest cancelable link, hiding the batch-level cancel from the sweep
	// attempt supervisor.
	parent, pcancel := WithCancel(nil)
	child, ccancel := WithCancel(parent)
	defer ccancel()
	select {
	case <-child.Done():
		t.Fatal("fresh child Done already closed")
	default:
	}
	pcancel()
	select {
	case <-child.Done():
	case <-time.After(time.Second):
		t.Fatal("child Done() never observed parent cancellation")
	}
	if err := child.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("child got %v, want ErrCanceled", err)
	}
}

func TestDoneObservesAncestorThroughDeadlineLinks(t *testing.T) {
	// The sweep attempt chain: batch cancel → point deadline → attempt
	// cancel → attempt deadline. Cancelling the root must close the channel
	// Done() returns at the bottom of the chain.
	root, rcancel := WithCancel(nil)
	point := WithTimeout(root, time.Hour)
	att, acancel := WithCancel(point)
	defer acancel()
	leaf := WithTimeout(att, time.Hour)
	rcancel()
	select {
	case <-leaf.Done():
	case <-time.After(time.Second):
		t.Fatal("leaf Done() never observed root cancellation through deadline links")
	}
}

func TestOwnCancelStillClosesDone(t *testing.T) {
	parent, pcancel := WithCancel(nil)
	defer pcancel()
	child, ccancel := WithCancel(parent)
	ccancel()
	select {
	case <-child.Done():
	case <-time.After(time.Second):
		t.Fatal("child Done() not closed by its own cancel")
	}
	if err := parent.Err(); err != nil {
		t.Fatalf("child cancel leaked to parent: %v", err)
	}
}

func TestEarliestDeadlineWins(t *testing.T) {
	parent := WithTimeout(nil, 10*time.Millisecond)
	child := WithTimeout(parent, time.Hour)
	dl, ok := child.Deadline()
	if !ok {
		t.Fatal("no deadline")
	}
	if time.Until(dl) > time.Second {
		t.Fatalf("child deadline %v ignores earlier parent deadline", dl)
	}
	time.Sleep(20 * time.Millisecond)
	if err := child.Err(); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded via parent deadline", err)
	}
}

func TestFromContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tok := FromContext(ctx)
	if err := tok.Err(); err != nil {
		t.Fatalf("live context tripped: %v", err)
	}
	cancel()
	if err := tok.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer dcancel()
	dtok := FromContext(dctx)
	if _, ok := dtok.Deadline(); !ok {
		t.Fatal("context deadline not adopted")
	}
	time.Sleep(20 * time.Millisecond)
	if err := dtok.Err(); !Is(err) {
		t.Fatalf("got %v, want a budget error", err)
	}
}

func TestIsHelper(t *testing.T) {
	if Is(nil) {
		t.Fatal("Is(nil)")
	}
	if Is(errors.New("other")) {
		t.Fatal("Is(other)")
	}
	if !Is(ErrCanceled) || !Is(ErrBudgetExceeded) {
		t.Fatal("Is misses its own sentinels")
	}
}
