package budget

import "repro/internal/obs"

var tripMetrics = obs.NewView(func(r *obs.Registry) *tripInstruments {
	return &tripInstruments{
		trips: r.CounterVec("pn_budget_trips_total", "Pipeline stages cut off by a tripped cancellation/budget token.", "stage"),
	}
})

type tripInstruments struct {
	trips *obs.CounterVec
}

// RecordTrip increments the process-wide budget-trip counter for the named
// pipeline stage (e.g. "shooting", "floquet", "quadrature", "sweep_attempt").
// Callers invoke it when a stage error satisfies Is; it is a no-op while no
// metrics registry is installed.
func RecordTrip(stage string) {
	tripMetrics.Get().trips.With(stage).Inc()
}
