// Package leakcheck verifies that a test suite does not leak goroutines: a
// server that forgets to reap a worker, a token whose forwarding goroutine
// never exits, a subscriber blocked on a channel nobody closes. Wire it into
// a package with one line:
//
//	func TestMain(m *testing.M) { leakcheck.Main(m) }
//
// After the suite passes, Main snapshots the live goroutines and fails the
// run if any non-baseline goroutine survives a grace window. The check is
// deliberately substring-based and forgiving — goroutines owned by the
// runtime, the testing framework, and process-lifetime singletons are
// ignored; everything else must exit on its own within the window.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ignored are stack-trace substrings of goroutines that legitimately outlive
// a test suite: runtime and testing machinery, signal handling, and
// process-lifetime pollers started by the standard library.
var ignored = []string{
	"testing.Main(",
	"testing.(*M).",
	"testing.RunTests",
	"runtime.goexit0",
	"runtime.gc",
	"runtime.MHeap",
	"runtime.ReadMemStats",
	"runtime.ensureSigM",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime/pprof.",
	"repro/internal/leakcheck.",
	"created by runtime.",
	"net/http.(*http2clientConnReadLoop)", // shared transport, process lifetime
}

// Main runs the suite and then the leak check, exiting with a non-zero code
// if either fails. Intended as the entire body of TestMain.
func Main(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := Check(5 * time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check polls until no unexpected goroutine remains or the grace window
// expires, then reports the survivors. Goroutines often take a few scheduler
// beats to unwind after the last test (closed servers draining connections,
// cancelled tokens observing their channels), hence the polling.
func Check(grace time.Duration) error {
	deadline := time.Now().Add(grace)
	var leaked []string
	for {
		leaked = interesting()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("%d goroutine(s) leaked by the suite:\n\n%s",
		len(leaked), strings.Join(leaked, "\n\n"))
}

// interesting returns the stacks of goroutines not covered by the ignore
// list. The calling goroutine is excluded by construction (runtime.Stack's
// first record is the caller; it matches the leakcheck ignore entry anyway).
func interesting() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
stacks:
	for _, st := range strings.Split(string(buf), "\n\n") {
		st = strings.TrimSpace(st)
		if st == "" {
			continue
		}
		for _, ig := range ignored {
			if strings.Contains(st, ig) {
				continue stacks
			}
		}
		out = append(out, st)
	}
	return out
}
