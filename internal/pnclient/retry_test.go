package pnclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// sweepReq is a minimal submit body; these tests only exercise the transport.
func sweepReq() serve.SweepRequest { return serve.SweepRequest{} }

// TestBackoffHonoursContextCancel: cancelling the context while the client is
// asleep in its backoff window must abort the request immediately — not after
// the ladder runs out. The backoff here is 10s per step; the whole call has
// to return in a small fraction of that.
func TestBackoffHonoursContextCancel(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	// Base == Max == 10s: after the first 503 the client sits in one long
	// jittered sleep, which is exactly where the cancel must land.
	c := New(ts.URL, nil, Retry{Attempts: 6, Base: 10 * time.Second, Max: 10 * time.Second, Seed: 3})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	_, err := c.Sweep(ctx, sweepReq(), "cancel-key")
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancel took %v to take effect; the backoff sleep ignored ctx", elapsed)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (no attempt after cancel)", calls.Load())
	}

	// A context dead on arrival never reaches the wire at all.
	pre := calls.Load()
	if _, err := c.Sweep(ctx, sweepReq(), "cancel-key"); !errors.Is(err, context.Canceled) {
		t.Fatalf("dead-context submit: want context.Canceled, got %v", err)
	}
	if calls.Load() != pre {
		t.Fatal("dead-context submit still sent a request")
	}
}

// TestRetryAttemptsCap: a persistently failing server consumes exactly
// Retry.Attempts requests, and the final error names the count and carries
// the last status for errors.As.
func TestRetryAttemptsCap(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"still broken"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, nil, Retry{Attempts: 3, Base: time.Millisecond, Max: 2 * time.Millisecond, Seed: 1})
	_, err := c.Sweep(context.Background(), sweepReq(), "cap-key")
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want exactly 3", calls.Load())
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error does not name the attempts cap: %v", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("want wrapped 503 APIError, got %v", err)
	}
}
