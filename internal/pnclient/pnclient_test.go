package pnclient

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// fastRetry keeps test backoffs tiny and deterministic.
var fastRetry = Retry{Attempts: 4, Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 1}

// TestSubmitRetriesTransient: 429 (with Retry-After) and 503 are retried
// until the server accepts; the idempotency key rides every attempt.
func TestSubmitRetriesTransient(t *testing.T) {
	var calls atomic.Int32
	var keys []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"j1","kind":"sweep","state":"queued"}`)
		}
	}))
	defer ts.Close()

	c := New(ts.URL, nil, fastRetry)
	st, err := c.Sweep(context.Background(), serve.SweepRequest{}, "key-a")
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j1" || calls.Load() != 3 {
		t.Fatalf("id=%q after %d calls", st.ID, calls.Load())
	}
	for i, k := range keys {
		if k != "key-a" {
			t.Fatalf("attempt %d lost the idempotency key: %q", i, k)
		}
	}
}

// TestSubmitDoesNotRetryClientErrors: a 4xx other than 429 is the caller's
// bug; exactly one request goes out and the typed error surfaces.
func TestSubmitDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusConflict)
		fmt.Fprint(w, `{"error":"key reused"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, nil, fastRetry)
	_, err := c.Sweep(context.Background(), serve.SweepRequest{}, "key-b")
	var ae *APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusConflict {
		t.Fatalf("want APIError 409, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("409 retried: %d calls", calls.Load())
	}
}

func asAPIError(err error, target **APIError) bool {
	for ; err != nil; err = unwrap(err) {
		if ae, ok := err.(*APIError); ok {
			*target = ae
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	type unwrapper interface{ Unwrap() error }
	if u, ok := err.(unwrapper); ok {
		return u.Unwrap()
	}
	return nil
}

// TestWatchReconnectsWithLastEventID: the first stream dies after two events;
// the client must reconnect carrying Last-Event-ID: 2 and splice the rest
// without duplicates.
func TestWatchReconnectsWithLastEventID(t *testing.T) {
	var conns atomic.Int32
	var lastIDs []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lastIDs = append(lastIDs, r.Header.Get("Last-Event-ID"))
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		if conns.Add(1) == 1 {
			// Two events, then the connection drops mid-stream.
			fmt.Fprint(w, "id: 1\nevent: state\ndata: {\"seq\":1,\"type\":\"state\",\"state\":\"queued\"}\n\n")
			fmt.Fprint(w, "id: 2\nevent: state\ndata: {\"seq\":2,\"type\":\"state\",\"state\":\"running\"}\n\n")
			fl.Flush()
			return // server closes without a terminal event
		}
		// The reconnect: replay everything after the client's checkpoint.
		fmt.Fprint(w, "id: 3\nevent: point\ndata: {\"seq\":3,\"type\":\"point\",\"point\":{\"index\":0,\"name\":\"p0\",\"ok\":true}}\n\n")
		fmt.Fprint(w, "id: 4\nevent: state\ndata: {\"seq\":4,\"type\":\"state\",\"state\":\"done\"}\n\n")
		fl.Flush()
	}))
	defer ts.Close()

	c := New(ts.URL, nil, fastRetry)
	var seqs []int64
	if err := c.Watch(context.Background(), "j1", 0, func(ev serve.Event) {
		seqs = append(seqs, ev.Seq)
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(seqs) != "[1 2 3 4]" {
		t.Fatalf("delivered seqs %v, want [1 2 3 4]", seqs)
	}
	if len(lastIDs) != 2 || lastIDs[0] != "" || lastIDs[1] != "2" {
		t.Fatalf("Last-Event-ID per connection: %q, want [\"\" \"2\"]", lastIDs)
	}
}

// TestWatchDropsAtLeastOnceDuplicates: a server replaying more history than
// asked (at-least-once across its own restart) must not produce duplicate
// deliveries to fn.
func TestWatchDropsAtLeastOnceDuplicates(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		// Seq 1 twice, then terminal.
		fmt.Fprint(w, "id: 1\nevent: state\ndata: {\"seq\":1,\"type\":\"state\",\"state\":\"queued\"}\n\n")
		fmt.Fprint(w, "id: 1\nevent: state\ndata: {\"seq\":1,\"type\":\"state\",\"state\":\"queued\"}\n\n")
		fmt.Fprint(w, "id: 2\nevent: state\ndata: {\"seq\":2,\"type\":\"state\",\"state\":\"done\"}\n\n")
	}))
	defer ts.Close()

	c := New(ts.URL, nil, fastRetry)
	var n int
	if err := c.Watch(context.Background(), "j1", 0, func(serve.Event) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("%d deliveries, want 2 (duplicate dropped)", n)
	}
}

// TestClientAgainstRealServer drives the full loop against an in-process
// serve.Server: idempotent submit, duplicate deduplication, streaming wait,
// and cancel.
func TestClientAgainstRealServer(t *testing.T) {
	s := serve.New(serve.Config{Workers: 1})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := New(ts.URL, nil, fastRetry)
	ctx := context.Background()

	req := serve.SweepRequest{Points: []serve.PointSpec{
		{Name: "p0", Model: "hopf", Params: map[string]float64{"lambda": 1, "omega": 3, "sigma": 0.02}},
		{Name: "p1", Model: "hopf", Params: map[string]float64{"lambda": 1, "omega": 4, "sigma": 0.02}},
	}}
	st, err := c.Sweep(ctx, req, "it-key")
	if err != nil {
		t.Fatal(err)
	}
	dup, err := c.Sweep(ctx, req, "it-key")
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID != st.ID {
		t.Fatalf("duplicate submit created %q, want %q", dup.ID, st.ID)
	}

	var points int
	final, err := c.Wait(ctx, st.ID, true, func(ev serve.Event) {
		if ev.Type == "point" {
			points++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != serve.StateDone || final.DonePoints != 2 || points != 2 {
		t.Fatalf("final %+v after %d point events", final, points)
	}
	if len(final.Full) != 2 || !final.Full[0].OK() {
		t.Fatalf("full payload: %+v", final.Full)
	}

	// Cancel is accepted for a terminal job too (no-op) and returns status.
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	// Unknown job: typed 404, no retries burning time.
	_, err = c.Job(ctx, "nope", false)
	var ae *APIError
	if !asAPIError(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("want 404 APIError, got %v", err)
	}
}
