package pnclient

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/serve"
)

// TestWatchAcrossServerRestartReplay is the full client-side restart story:
// a Watch whose checkpoint was established against a server that then
// crashed must splice gap-free onto the restarted server's journal replay —
// with the Last-Event-ID spanning the journal's .wal → .jsonl rotation
// boundary (the checkpoint predates the rotation; the replay serves from the
// recovered, re-run, and rotated job).
//
// The crash is simulated with the journal idiom this repo's serve tests use:
// a hand-crafted <id>.wal is exactly the on-disk state a kill -9 leaves
// behind. The client's view is driven by a front that switches modes the way
// a restarting node looks from outside: first the pre-crash stream (which
// dies without a terminal event), then connection refusal (503), then the
// recovered server.
func TestWatchAcrossServerRestartReplay(t *testing.T) {
	jdir, cdir := t.TempDir(), t.TempDir()

	// The crash artifact: job j1 accepted with two points, journaled through
	// "running" and one point summary, then the process died. Lines mirror
	// what the server's own journal writes (schema v1).
	wal := `{"v":1,"t":"accepted","id":"j1","kind":"sweep","specs":[{"name":"p0","model":"hopf","params":{"lambda":1,"omega":3,"sigma":0.02}},{"name":"p1","model":"hopf","params":{"lambda":1,"omega":4,"sigma":0.02}}],"workers":1}
{"v":1,"t":"event","ev":{"seq":1,"type":"state","state":"queued"}}
{"v":1,"t":"event","ev":{"seq":2,"type":"state","state":"running"}}
{"v":1,"t":"event","ev":{"seq":3,"type":"point","point":{"index":0,"name":"p0","ok":true,"wall_ms":5}}}
`
	if err := os.WriteFile(filepath.Join(jdir, "j1.wal"), []byte(wal), 0o644); err != nil {
		t.Fatal(err)
	}

	// The restarted server recovers the .wal, re-enqueues j1, re-runs it
	// (the cache is empty — the "crash" predates any cached result), and
	// rotates the journal to j1.jsonl at the terminal event. Run it to
	// completion before the watch ever reaches it, so the splice below reads
	// from fully post-rotation state.
	store, err := cache.New(cache.Options{Dir: cdir})
	if err != nil {
		t.Fatal(err)
	}
	s2 := serve.New(serve.Config{Workers: 1, JournalDir: jdir, Cache: store})
	defer s2.Shutdown(context.Background())
	direct := httptest.NewServer(s2)
	defer direct.Close()
	waitFor := New(direct.URL, nil, fastRetry)
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := waitFor.Job(context.Background(), "j1", false)
		if err == nil && st.State == serve.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job never finished: %+v err=%v", st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(jdir, "j1.jsonl")); err != nil {
		t.Fatalf("journal not rotated to .jsonl: %v", err)
	}
	if _, err := os.Stat(filepath.Join(jdir, "j1.wal")); !os.IsNotExist(err) {
		t.Fatal("stale .wal survived the rotation")
	}

	// The front: pre-crash stream once, one refusal, then the recovered
	// server. lastIDs records the Last-Event-ID of every events request —
	// the reconnect protocol made visible.
	var mu sync.Mutex
	mode := "precrash"
	var lastIDs []string
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		m := mode
		if r.URL.Path == "/v1/jobs/j1/events" {
			lastIDs = append(lastIDs, r.Header.Get("Last-Event-ID"))
			switch mode {
			case "precrash":
				mode = "down"
			case "down":
				mode = "up"
			}
		}
		mu.Unlock()
		switch m {
		case "precrash":
			// The doomed server's stream: the journaled prefix, then the
			// connection dies with no terminal event (the crash).
			w.Header().Set("Content-Type", "text/event-stream")
			fmt.Fprint(w, "id: 1\nevent: state\ndata: {\"seq\":1,\"type\":\"state\",\"state\":\"queued\"}\n\n")
			fmt.Fprint(w, "id: 2\nevent: state\ndata: {\"seq\":2,\"type\":\"state\",\"state\":\"running\"}\n\n")
			fmt.Fprint(w, "id: 3\nevent: point\ndata: {\"seq\":3,\"type\":\"point\",\"point\":{\"index\":0,\"name\":\"p0\",\"ok\":true,\"wall_ms\":5}}\n\n")
			w.(http.Flusher).Flush()
		case "down":
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"restarting"}`)
		default:
			s2.ServeHTTP(w, r)
		}
	}))
	defer front.Close()

	c := New(front.URL, nil, Retry{Attempts: 8, Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 1})
	var events []serve.Event
	if err := c.Watch(context.Background(), "j1", 0, func(ev serve.Event) {
		events = append(events, ev)
	}); err != nil {
		t.Fatalf("watch across restart: %v", err)
	}

	// Gap-free, exactly-once sequence numbering across the splice.
	for i, ev := range events {
		if ev.Seq != int64(i)+1 {
			t.Fatalf("event %d has seq %d; stream not gap-free: %+v", i, ev.Seq, events)
		}
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != serve.StateDone {
		t.Fatalf("stream did not end in done: %+v", last)
	}
	// The resumed run re-reports every point (at-least-once across a crash);
	// post-checkpoint events must cover both indices.
	got := map[int]bool{}
	for _, ev := range events {
		if ev.Seq > 3 && ev.Type == "point" && ev.Point != nil {
			got[ev.Point.Index] = true
		}
	}
	if !got[0] || !got[1] {
		t.Fatalf("post-restart replay missed point events: %v (events %+v)", got, events)
	}
	// The protocol: first connection from scratch, every reconnect carrying
	// the pre-crash checkpoint — including the one the recovered server
	// answered from its rotated journal.
	mu.Lock()
	defer mu.Unlock()
	if len(lastIDs) != 3 || lastIDs[0] != "" || lastIDs[1] != "3" || lastIDs[2] != "3" {
		t.Fatalf("Last-Event-ID per connection: %q, want [\"\" \"3\" \"3\"]", lastIDs)
	}
}
