// Package pnclient is the Go client for the pnserve job API
// (internal/serve): submit characterisation and sweep jobs, poll status,
// stream progress, and survive the failures a long characterisation run
// actually meets — lost responses, server restarts, back-pressure.
//
// Robustness is the point of the package:
//
//   - Every request retries transient failures (connection errors, 429, 5xx)
//     with exponential backoff, full jitter, and respect for the server's
//     Retry-After header. Submissions carry an Idempotency-Key, so a retry
//     whose original response was lost — or that lands on a freshly restarted
//     server — is deduplicated onto the job it already created instead of
//     queueing a duplicate.
//   - Watch streams the job's Server-Sent Events and transparently reconnects
//     with Last-Event-ID after a dropped connection or a server restart,
//     resuming exactly after the last event it delivered. The server keeps
//     sequence numbers stable across restarts (the job journal), so the
//     spliced stream is gap-free; delivery is at-least-once, and consumers
//     key on Point.Index as the events contract requires.
package pnclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sweep"
)

// APIError is a non-2xx response from the server, with the decoded error
// message when the body carried one.
type APIError struct {
	Status int
	Msg    string
}

func (e *APIError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("pnclient: server returned %d", e.Status)
	}
	return fmt.Sprintf("pnclient: server returned %d: %s", e.Status, e.Msg)
}

// retryable reports whether the request that produced err may be re-sent:
// transport errors (nothing definite happened) and explicitly transient
// statuses. Other 4xx are the caller's bug and retry identically, and a
// cancelled or expired context is the caller saying stop — retrying it would
// only sleep out the backoff ladder before failing anyway.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusTooManyRequests, http.StatusInternalServerError,
			http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	// Transport-level failure (refused, reset, server mid-restart).
	return err != nil
}

// Retry tunes the backoff schedule. The zero value means 8 attempts, 100ms
// base delay doubling to a 5s cap, with full jitter.
type Retry struct {
	// Attempts is the total number of tries per request (including the
	// first); <= 0 means 8.
	Attempts int
	// Base is the first backoff step; doubles each retry. <= 0 means 100ms.
	Base time.Duration
	// Max caps the backoff (and any Retry-After wait). <= 0 means 5s.
	Max time.Duration
	// Seed makes the jitter deterministic when non-zero (tests); zero seeds
	// from the clock.
	Seed int64
}

func (r Retry) withDefaults() Retry {
	if r.Attempts <= 0 {
		r.Attempts = 8
	}
	if r.Base <= 0 {
		r.Base = 100 * time.Millisecond
	}
	if r.Max <= 0 {
		r.Max = 5 * time.Second
	}
	return r
}

// Client talks to one pnserve instance. Construct with New; methods are safe
// for concurrent use.
type Client struct {
	base   string
	http   *http.Client
	retry  Retry
	tenant string

	mu  sync.Mutex
	rng *rand.Rand
}

// SetTenant names the tenant every subsequent request is submitted as (the
// X-PN-Tenant header; empty = the server's default tenant). Quota rejections
// for the tenant come back as 429 with Retry-After, which the client's retry
// loop honours. Call before issuing requests; not synchronised against
// concurrent calls in flight.
func (c *Client) SetTenant(name string) { c.tenant = name }

// New returns a client for the server at base (e.g. "http://127.0.0.1:8080").
// httpc may be nil for http.DefaultClient.
func New(base string, httpc *http.Client, retry Retry) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	retry = retry.withDefaults()
	seed := retry.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{
		base:  strings.TrimRight(base, "/"),
		http:  httpc,
		retry: retry,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// backoff computes the wait before retry attempt n (0-based), honouring the
// server's Retry-After when it gave one: full jitter over an exponentially
// growing window, so a fleet of retrying clients spreads out instead of
// stampeding a recovering server in lockstep.
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	window := c.retry.Base << n
	if window > c.retry.Max || window <= 0 {
		window = c.retry.Max
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(window) + 1))
	c.mu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	if d > c.retry.Max {
		d = c.retry.Max
	}
	return d
}

// sleep waits d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do runs one HTTP exchange with retries and decodes the JSON response into
// out (which may be nil). body is re-marshalled once and re-sent per attempt.
// headers are applied to every attempt.
func (c *Client) do(ctx context.Context, method, path string, body any, headers map[string]string, out any) (*http.Response, error) {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return nil, fmt.Errorf("pnclient: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; attempt < c.retry.Attempts; attempt++ {
		// A dead context must fail fast even before the first attempt or
		// between a response and the next backoff — never start an exchange
		// (or a jitter sleep) the caller has already abandoned.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			var ra time.Duration
			var ae *APIError
			if errors.As(lastErr, &ae) && ae.Status == http.StatusTooManyRequests {
				ra = lastRetryAfter(lastErr)
			}
			if err := sleep(ctx, c.backoff(attempt-1, ra)); err != nil {
				return nil, err
			}
		}
		resp, err := c.once(ctx, method, path, payload, headers, out)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil || !retryable(err) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("pnclient: %s %s failed after %d attempts: %w", method, path, c.retry.Attempts, lastErr)
}

// retryAfterError carries the server's Retry-After through the error chain.
type retryAfterError struct {
	*APIError
	after time.Duration
}

func (e *retryAfterError) Unwrap() error { return e.APIError }

func lastRetryAfter(err error) time.Duration {
	var ra *retryAfterError
	if errors.As(err, &ra) {
		return ra.after
	}
	return 0
}

// once performs a single attempt. The pnclient.http fault point sits in front
// of the transport: ModeError simulates a connection-level failure (refused,
// reset) deterministically, ModeDelay a slow network.
func (c *Client) once(ctx context.Context, method, path string, payload []byte, headers map[string]string, out any) (*http.Response, error) {
	if err := faultinject.Fire(faultinject.PnclientHTTP); err != nil {
		return nil, err
	}
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set(serve.TenantHeader, c.tenant)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	// Propagate the caller's trace context (obs.ContextWithSpanContext) so the
	// server binds the job into the same distributed trace.
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		req.Header.Set("Traceparent", sc.Traceparent())
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		apiErr := &APIError{Status: resp.StatusCode, Msg: eb.Error}
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
				return nil, &retryAfterError{APIError: apiErr, after: time.Duration(secs) * time.Second}
			}
		}
		return nil, apiErr
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return nil, fmt.Errorf("pnclient: decoding response: %w", err)
		}
	}
	return resp, nil
}

// Characterise submits a one-point job. idemKey, when non-empty, rides as the
// Idempotency-Key header — always set one for unattended submissions, or a
// retried request can create a second job.
func (c *Client) Characterise(ctx context.Context, req serve.CharacteriseRequest, idemKey string) (serve.JobStatus, error) {
	return c.submit(ctx, "/v1/characterise", req, idemKey)
}

// Sweep submits a multi-point job; see Characterise for idemKey.
func (c *Client) Sweep(ctx context.Context, req serve.SweepRequest, idemKey string) (serve.JobStatus, error) {
	return c.submit(ctx, "/v1/sweep", req, idemKey)
}

// Compose submits a PLL/clock-chain composition job; spec legs characterise
// server-side through the result cache. See Characterise for idemKey.
func (c *Client) Compose(ctx context.Context, req serve.ComposeRequest, idemKey string) (serve.JobStatus, error) {
	return c.submit(ctx, "/v1/compose", req, idemKey)
}

func (c *Client) submit(ctx context.Context, path string, body any, idemKey string) (serve.JobStatus, error) {
	var hdr map[string]string
	if idemKey != "" {
		hdr = map[string]string{"Idempotency-Key": idemKey}
	}
	var st serve.JobStatus
	_, err := c.do(ctx, http.MethodPost, path, body, hdr, &st)
	return st, err
}

// Job fetches the job's status; full adds the loss-free per-point payload.
func (c *Client) Job(ctx context.Context, id string, full bool) (serve.JobStatus, error) {
	path := "/v1/jobs/" + id
	if full {
		path += "?full=1"
	}
	var st serve.JobStatus
	_, err := c.do(ctx, http.MethodGet, path, nil, nil, &st)
	return st, err
}

// Results fetches one page of the job's loss-free point results from the
// server's spill file: offset is the first point index, limit the page width
// (<= 0 lets the server default apply). Works on running jobs (a snapshot of
// what has spilled so far) and journal-recovered ones.
func (c *Client) Results(ctx context.Context, id string, offset, limit int) (serve.ResultsPage, error) {
	path := fmt.Sprintf("/v1/jobs/%s/results?offset=%d", id, offset)
	if limit > 0 {
		path += fmt.Sprintf("&limit=%d", limit)
	}
	var pg serve.ResultsPage
	_, err := c.do(ctx, http.MethodGet, path, nil, nil, &pg)
	return pg, err
}

// StreamResults downloads the job's loss-free results as a JSONL stream
// (GET /v1/jobs/{id}/results.jsonl), decoding one sweep.PointResult per line
// into fn in point-index order, without ever holding the whole result set in
// memory. Delivery is at-least-once across retries — a connection that dies
// mid-stream is re-fetched from the top — so consumers must dedup by
// PointResult.Index (the server's spill files and the cluster merge layer
// both already do).
func (c *Client) StreamResults(ctx context.Context, id string, fn func(sweep.PointResult)) error {
	var lastErr error
	for attempt := 0; attempt < c.retry.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 0 {
			if err := sleep(ctx, c.backoff(attempt-1, lastRetryAfter(lastErr))); err != nil {
				return err
			}
		}
		err := c.streamResultsOnce(ctx, id, fn)
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil || !retryable(err) {
			return err
		}
	}
	return fmt.Errorf("pnclient: streaming results of %s failed after %d attempts: %w", id, c.retry.Attempts, lastErr)
}

func (c *Client) streamResultsOnce(ctx context.Context, id string, fn func(sweep.PointResult)) error {
	if err := faultinject.Fire(faultinject.PnclientHTTP); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/results.jsonl", nil)
	if err != nil {
		return err
	}
	if c.tenant != "" {
		req.Header.Set(serve.TenantHeader, c.tenant)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		return &APIError{Status: resp.StatusCode, Msg: eb.Error}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<28)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var res sweep.PointResult
		if err := json.Unmarshal(line, &res); err != nil {
			return fmt.Errorf("pnclient: bad result line: %w", err)
		}
		fn(res)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return nil
}

// Cancel trips the job's budget token; the job settles to "canceled"
// cooperatively.
func (c *Client) Cancel(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	_, err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/cancel", nil, nil, &st)
	return st, err
}

// Renew extends a leased job's TTL on the worker (see
// serve.SweepRequest.LeaseTTLMS): the returned status doubles as the
// heartbeat payload — progress counters prove the worker is not just
// answering HTTP but actually advancing the job. Renewing a job without a
// lease is a harmless no-op.
func (c *Client) Renew(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	_, err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/renew", nil, nil, &st)
	return st, err
}

// Trace fetches the job's merged distributed timeline: every completed span
// the coordinator recorded or ingested for the job, with per-stage and
// per-process latency rollups.
func (c *Client) Trace(ctx context.Context, id string) (serve.JobTrace, error) {
	var jt serve.JobTrace
	_, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, nil, &jt)
	return jt, err
}

// ClusterStatus fetches the server's live fleet view: worker health, breaker
// states, active leases, and queue depth. Against a plain (non-coordinator)
// server the worker and lease lists are empty.
func (c *Client) ClusterStatus(ctx context.Context) (serve.ClusterStatus, error) {
	var cs serve.ClusterStatus
	_, err := c.do(ctx, http.MethodGet, "/v1/cluster/status", nil, nil, &cs)
	return cs, err
}

// terminalState reports whether s is a terminal job state.
func terminalState(s string) bool {
	return s == serve.StateDone || s == serve.StateFailed || s == serve.StateCanceled
}

// Watch streams the job's events to fn, starting after sequence number
// `after` (0 = from the beginning), until the job goes terminal, ctx is
// cancelled, or the retry budget is exhausted reconnecting. A dropped
// connection — network blip, server restart — reconnects with Last-Event-ID,
// so fn sees a gap-free, strictly ordered sequence; events already delivered
// are never re-delivered by this client, even though the server's stream is
// at-least-once across its own crashes.
func (c *Client) Watch(ctx context.Context, id string, after int64, fn func(serve.Event)) error {
	failures := 0
	for {
		last, terminal, err := c.streamOnce(ctx, id, after, fn)
		if last > after {
			after = last
			failures = 0 // progress resets the reconnect budget
		}
		switch {
		case terminal:
			return nil
		case ctx.Err() != nil:
			return ctx.Err()
		case err != nil && !retryable(err):
			return err
		}
		failures++
		if failures >= c.retry.Attempts {
			if err == nil {
				err = errors.New("stream kept closing without a terminal event")
			}
			return fmt.Errorf("pnclient: watch %s failed after %d reconnects: %w", id, failures, err)
		}
		if serr := sleep(ctx, c.backoff(failures-1, lastRetryAfter(err))); serr != nil {
			return serr
		}
	}
}

// streamOnce runs one SSE connection and returns the last sequence number
// delivered and whether a terminal state event arrived. An io error mid-body
// is returned as nil error with terminal=false: the caller reconnects.
func (c *Client) streamOnce(ctx context.Context, id string, after int64, fn func(serve.Event)) (int64, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return after, false, err
	}
	if after > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(after, 10))
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return after, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		return after, false, &APIError{Status: resp.StatusCode, Msg: eb.Error}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	terminal := false
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return after, false, fmt.Errorf("pnclient: bad event payload: %w", err)
		}
		if ev.Seq <= after {
			continue // duplicate from an at-least-once replay: already delivered
		}
		after = ev.Seq
		fn(ev)
		if ev.Type == "state" && terminalState(ev.State) {
			terminal = true
		}
	}
	// A scan error or a clean close without a terminal event both mean the
	// connection died early (server restart, proxy timeout): reconnect.
	return after, terminal, nil
}

// Wait watches the job to completion (fn may be nil) and returns its final
// status; full requests the loss-free per-point payload.
func (c *Client) Wait(ctx context.Context, id string, full bool, fn func(serve.Event)) (serve.JobStatus, error) {
	if fn == nil {
		fn = func(serve.Event) {}
	}
	if err := c.Watch(ctx, id, 0, fn); err != nil {
		return serve.JobStatus{}, err
	}
	return c.Job(ctx, id, full)
}
