package hb

import (
	"math"
	"testing"

	"repro/internal/floquet"
	"repro/internal/osc"
	"repro/internal/shooting"
)

func TestDiffMatrixOnSinusoids(t *testing.T) {
	// The spectral differentiation matrix must be exact (to roundoff) on
	// resolvable trigonometric modes.
	n := 32
	d := DiffMatrix(n)
	for _, k := range []float64{1, 2, 5, 9} {
		x := make([]float64, n)
		want := make([]float64, n)
		for j := 0; j < n; j++ {
			tau := 2 * math.Pi * float64(j) / float64(n)
			x[j] = math.Sin(k * tau)
			want[j] = k * math.Cos(k*tau)
		}
		got := d.MulVec(x)
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-9*(1+k) {
				t.Fatalf("mode %g: (Dx)[%d] = %g, want %g", k, j, got[j], want[j])
			}
		}
	}
}

func TestDiffMatrixAntisymmetryStructure(t *testing.T) {
	// D is antisymmetric for even N (trigonometric differentiation).
	d := DiffMatrix(16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if math.Abs(d.At(i, j)+d.At(j, i)) > 1e-12 {
				t.Fatalf("D not antisymmetric at (%d,%d)", i, j)
			}
		}
	}
	// Constant functions differentiate to zero.
	ones := make([]float64, 16)
	for i := range ones {
		ones[i] = 1
	}
	for _, v := range d.MulVec(ones) {
		if math.Abs(v) > 1e-12 {
			t.Fatal("D·1 ≠ 0")
		}
	}
}

func TestSolveHopfFromCrudeGuess(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	// Crude guess: unit circle at 10% wrong frequency and wrong amplitude.
	guess := func(tt float64) []float64 {
		return []float64{1.3 * math.Cos(2*math.Pi*0.9*tt), 1.3 * math.Sin(2*math.Pi*0.9*tt)}
	}
	sol, err := Solve(h, guess, 2*math.Pi*0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Omega-2*math.Pi) > 1e-8 {
		t.Fatalf("ω = %.12g, want 2π", sol.Omega)
	}
	// All collocation samples on the unit circle.
	for k, x := range sol.X {
		if r := math.Hypot(x[0], x[1]); math.Abs(r-1) > 1e-8 {
			t.Fatalf("sample %d radius %g", k, r)
		}
	}
	if sol.Iters > 30 {
		t.Fatalf("slow convergence: %d iterations", sol.Iters)
	}
}

func TestSolveVanDerPolMatchesShooting(t *testing.T) {
	v := &osc.VanDerPol{Mu: 1, Sigma: 0.02}
	pss, err := shooting.Find(v, []float64{2, 0}, 6.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	guess := func(tt float64) []float64 {
		pss.Orbit.At(math.Mod(tt, pss.T), buf)
		return append([]float64(nil), buf...)
	}
	sol, err := Solve(v, guess, pss.Omega0(), &Options{N: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Periods agree to spectral accuracy.
	if math.Abs(sol.T()-pss.T) > 1e-6*pss.T {
		t.Fatalf("HB T = %.10g vs shooting %.10g", sol.T(), pss.T)
	}
}

func TestSolutionAtInterpolation(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 3, Sigma: 0}
	guess := func(tt float64) []float64 {
		return []float64{math.Cos(3 * tt), math.Sin(3 * tt)}
	}
	sol, err := Solve(h, guess, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// At collocation instants the interpolation reproduces the samples.
	for _, k := range []int{0, 5, 17} {
		tt := sol.T() * float64(k) / float64(sol.N)
		x := sol.At(tt)
		if math.Abs(x[0]-sol.X[k][0]) > 1e-9 || math.Abs(x[1]-sol.X[k][1]) > 1e-9 {
			t.Fatalf("At(τ_%d) = %v, samples %v", k, x, sol.X[k])
		}
	}
	// Periodicity of the interpolant.
	a := sol.At(0.3)
	b := sol.At(0.3 + 2*sol.T())
	if math.Abs(a[0]-b[0]) > 1e-9 {
		t.Fatal("interpolant not periodic")
	}
}

func TestV1MatchesClosedFormHopf(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi, Sigma: 0.05}
	guess := func(tt float64) []float64 {
		return []float64{math.Cos(2 * math.Pi * tt), math.Sin(2 * math.Pi * tt)}
	}
	sol, err := Solve(h, guess, 2*math.Pi, nil)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := sol.V1(h)
	if err != nil {
		t.Fatal(err)
	}
	// v1(τ_k) = (−sin θ_k, cos θ_k)/ω with θ_k the sample's phase angle.
	for k := 0; k < sol.N; k += 7 {
		th := math.Atan2(sol.X[k][1], sol.X[k][0])
		wantX := -math.Sin(th) / h.Omega
		wantY := math.Cos(th) / h.Omega
		if math.Abs(v1[k][0]-wantX) > 1e-6 || math.Abs(v1[k][1]-wantY) > 1e-6 {
			t.Fatalf("v1[%d] = %v, want (%g, %g)", k, v1[k], wantX, wantY)
		}
	}
}

func TestCFrequencyDomainMatchesClosedForm(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 5, Sigma: 0.1}
	guess := func(tt float64) []float64 {
		return []float64{math.Cos(5 * tt), math.Sin(5 * tt)}
	}
	sol, err := Solve(h, guess, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sol.C(h)
	if err != nil {
		t.Fatal(err)
	}
	want := h.ExactC()
	if math.Abs(c-want) > 1e-8*want {
		t.Fatalf("HB c = %.12e, want %.12e", c, want)
	}
}

func TestCFrequencyDomainMatchesTimeDomainVdP(t *testing.T) {
	// The two independent numerical methods (Section 9 time-domain vs the
	// footnote-11 frequency-domain) must agree on a non-trivial oscillator.
	v := &osc.VanDerPol{Mu: 1, Sigma: 0.02}
	pss, err := shooting.Find(v, []float64{2, 0}, 6.7, nil)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 2)
	guess := func(tt float64) []float64 {
		pss.Orbit.At(math.Mod(tt, pss.T), buf)
		return append([]float64(nil), buf...)
	}
	sol, err := Solve(v, guess, pss.Omega0(), &Options{N: 128})
	if err != nil {
		t.Fatal(err)
	}
	cHB, err := sol.C(v)
	if err != nil {
		t.Fatal(err)
	}
	// Time-domain reference.
	cTD := timeDomainC(t, v, pss)
	if math.Abs(cHB-cTD) > 1e-4*cTD {
		t.Fatalf("HB c = %.10e, time-domain c = %.10e", cHB, cTD)
	}
}

// timeDomainC runs the Section-9 time-domain route (floquet + quadrature).
func timeDomainC(t *testing.T, v *osc.VanDerPol, pss *shooting.PSS) float64 {
	t.Helper()
	dec, err := floquet.Analyze(v, pss, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 2
	p := 1
	quad := 4000
	x := make([]float64, n)
	vb := make([]float64, n)
	b := make([]float64, n*p)
	total := 0.0
	for k := 0; k < quad; k++ {
		tk := pss.T * float64(k) / float64(quad)
		pss.Orbit.At(tk, x)
		dec.V1.At(tk, vb)
		v.Noise(x, b)
		dot := vb[0]*b[0] + vb[1]*b[p]
		total += dot * dot
	}
	return total / float64(quad)
}

func TestSolveErrorPaths(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 1, Sigma: 0}
	zero := func(tt float64) []float64 { return []float64{0, 0} }
	if _, err := Solve(h, zero, 1, nil); err == nil {
		t.Fatal("equilibrium guess accepted")
	}
	guess := func(tt float64) []float64 { return []float64{math.Cos(tt), math.Sin(tt)} }
	if _, err := Solve(h, guess, -1, nil); err == nil {
		t.Fatal("negative omega accepted")
	}
	if _, err := Solve(h, guess, 1, &Options{AnchorComp: 5}); err == nil {
		t.Fatal("bad anchor accepted")
	}
}

func TestSolveOddNBumpedToEven(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2, Sigma: 0}
	guess := func(tt float64) []float64 { return []float64{math.Cos(2 * tt), math.Sin(2 * tt)} }
	sol, err := Solve(h, guess, 2, &Options{N: 31})
	if err != nil {
		t.Fatal(err)
	}
	if sol.N%2 != 0 {
		t.Fatalf("N = %d not even", sol.N)
	}
}
