// Package hb implements the frequency-domain (harmonic-balance) companion
// to the time-domain pipeline, which the paper mentions in Section 9
// (footnote 11: "We also developed a frequency domain numerical method based
// on an harmonic balance formulation").
//
// The periodic steady state is computed by Fourier collocation: with
// normalised time τ = ω·t the oscillator equation becomes ω·dx/dτ = f(x),
// discretised on N uniform collocation points with the spectral
// differentiation matrix D. The unknowns are the N·n state samples plus the
// frequency ω; a phase-anchor condition (an extremum of one chosen state
// component at τ = 0) removes the time-translation degeneracy. The
// perturbation projection vector v1 is then obtained directly in the
// frequency domain as the null vector of the adjoint collocation operator
// (ω·Dᵀ⊗I − blockdiag Aᵀ), giving a computation of the phase-diffusion
// constant c that is completely independent of the time-domain
// backward-adjoint route — the two agreeing is a strong end-to-end check.
package hb

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dynsys"
	"repro/internal/fourier"
	"repro/internal/linalg"
)

// ErrNoConvergence is returned when harmonic-balance Newton fails.
var ErrNoConvergence = errors.New("hb: Newton iteration did not converge")

// Options configures the harmonic-balance solver.
type Options struct {
	N          int     // collocation points per period (even; default 64)
	Tol        float64 // residual tolerance (default 1e-10)
	MaxIter    int     // Newton budget (default 60)
	AnchorComp int     // state component anchored at an extremum at τ=0
}

func (o *Options) defaults() Options {
	out := Options{N: 64, Tol: 1e-10, MaxIter: 60}
	if o != nil {
		if o.N > 0 {
			out.N = o.N
		}
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
		if o.MaxIter > 0 {
			out.MaxIter = o.MaxIter
		}
		out.AnchorComp = o.AnchorComp
	}
	if out.N%2 != 0 {
		out.N++
	}
	return out
}

// Solution is a converged harmonic-balance periodic steady state.
type Solution struct {
	N        int
	Omega    float64     // angular frequency (rad/s)
	X        [][]float64 // X[k] is the state at τ_k = 2πk/N, i.e. t = k·T/N
	Residual float64
	Iters    int
	d        *linalg.Matrix // spectral differentiation matrix (N×N)
}

// T returns the oscillation period 2π/ω.
func (s *Solution) T() float64 { return 2 * math.Pi / s.Omega }

// F0 returns the oscillation frequency in Hz.
func (s *Solution) F0() float64 { return s.Omega / (2 * math.Pi) }

// DiffMatrix returns the N×N trigonometric spectral differentiation matrix
// for even N: (Dx)_j ≈ dx/dτ at τ_j for a 2π-periodic sample vector x.
func DiffMatrix(n int) *linalg.Matrix {
	d := linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			if j == k {
				continue
			}
			diff := j - k
			sign := 1.0
			if diff%2 != 0 { // (−1)^{j−k}
				sign = -1
			}
			d.Set(j, k, 0.5*sign/math.Tan(float64(diff)*math.Pi/float64(n)))
		}
	}
	return d
}

// Solve runs harmonic-balance Newton from an initial guess supplied as a
// sampling function xguess(t) over one period of the initial frequency
// omegaGuess. A point-wise time-domain trajectory (e.g. from a transient
// run or a shooting solution) makes a good guess; so does a crude sinusoid
// for nearly harmonic oscillators.
func Solve(sys dynsys.System, xguess func(t float64) []float64, omegaGuess float64, opts *Options) (*Solution, error) {
	o := opts.defaults()
	n := sys.Dim()
	N := o.N
	if o.AnchorComp < 0 || o.AnchorComp >= n {
		return nil, fmt.Errorf("hb: anchor component %d out of range", o.AnchorComp)
	}
	if omegaGuess <= 0 {
		return nil, fmt.Errorf("hb: omega guess must be positive, got %g", omegaGuess)
	}
	d := DiffMatrix(N)

	// Unknown vector z = [x_0; x_1; …; x_{N−1}; ω], length N·n + 1.
	dim := N*n + 1
	z := make([]float64, dim)
	tg := 2 * math.Pi / omegaGuess
	for k := 0; k < N; k++ {
		xk := xguess(tg * float64(k) / float64(N))
		copy(z[k*n:(k+1)*n], xk)
	}
	z[N*n] = omegaGuess

	resid := make([]float64, dim)
	jac := linalg.NewMatrix(dim, dim)
	fbuf := make([]float64, n)
	abuf := make([]float64, n*n)
	var lastRes float64
	scaleX := 1.0
	for k := 0; k < N*n; k++ {
		if a := math.Abs(z[k]); a > scaleX {
			scaleX = a
		}
	}
	for iter := 1; iter <= o.MaxIter; iter++ {
		omega := z[N*n]
		// Residual: R_k = ω·(Dx)_k − f(x_k) for each collocation point,
		// plus the anchor (Dx)_0[anchor] = 0.
		resNorm := 0.0
		for k := 0; k < N; k++ {
			xk := z[k*n : (k+1)*n]
			sys.Eval(xk, fbuf)
			for i := 0; i < n; i++ {
				// (Dx)_k[i] = Σ_m D[k][m]·x_m[i]
				s := 0.0
				for m := 0; m < N; m++ {
					s += d.At(k, m) * z[m*n+i]
				}
				r := omega*s - fbuf[i]
				resid[k*n+i] = r
			}
		}
		// Anchor row.
		anchor := 0.0
		for m := 0; m < N; m++ {
			anchor += d.At(0, m) * z[m*n+o.AnchorComp]
		}
		resid[N*n] = anchor
		for _, r := range resid {
			if a := math.Abs(r); a > resNorm {
				resNorm = a
			}
		}
		// Normalise by the flow magnitude for a dimensionless residual.
		fscale := 0.0
		for k := 0; k < N; k++ {
			sys.Eval(z[k*n:(k+1)*n], fbuf)
			if a := linalg.NormInfVec(fbuf); a > fscale {
				fscale = a
			}
		}
		if fscale == 0 {
			return nil, errors.New("hb: guess collapsed to an equilibrium")
		}
		lastRes = resNorm / fscale
		if lastRes < o.Tol {
			return finishSolution(z, n, N, d, lastRes, iter)
		}

		// Jacobian.
		for i := range jac.Data {
			jac.Data[i] = 0
		}
		for k := 0; k < N; k++ {
			xk := z[k*n : (k+1)*n]
			sys.Jacobian(xk, abuf)
			// −A(x_k) block on the (k,k) diagonal.
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					jac.Set(k*n+i, k*n+j, -abuf[i*n+j])
				}
			}
			// ω·D coupling across collocation points (per component).
			for m := 0; m < N; m++ {
				dk := omega * d.At(k, m)
				if dk == 0 {
					continue
				}
				for i := 0; i < n; i++ {
					jac.Set(k*n+i, m*n+i, jac.At(k*n+i, m*n+i)+dk)
				}
			}
			// ∂R/∂ω = (Dx)_k.
			for i := 0; i < n; i++ {
				s := 0.0
				for m := 0; m < N; m++ {
					s += d.At(k, m) * z[m*n+i]
				}
				jac.Set(k*n+i, N*n, s)
			}
		}
		// Anchor row: derivative of (Dx)_0[anchor] w.r.t. samples.
		for m := 0; m < N; m++ {
			jac.Set(N*n, m*n+o.AnchorComp, d.At(0, m))
		}

		step, err := linalg.Solve(jac, resid)
		if err != nil {
			return nil, fmt.Errorf("hb: Newton system singular at iteration %d: %w", iter, err)
		}
		// Damped update with frequency positivity guard.
		lambda := 1.0
		applied := false
		for try := 0; try < 8; try++ {
			cand := make([]float64, dim)
			for i := range z {
				cand[i] = z[i] - lambda*step[i]
			}
			if cand[N*n] <= 0.1*omegaGuess || cand[N*n] > 10*omegaGuess {
				lambda *= 0.5
				continue
			}
			if candRes := hbResidualNorm(sys, cand, n, N, d, o.AnchorComp); candRes < resNorm || candRes < o.Tol*fscale {
				copy(z, cand)
				applied = true
				break
			}
			lambda *= 0.5
		}
		if !applied {
			// Newton stalled. If the residual is already near the
			// floating-point noise floor of the collocation operator,
			// accept the solution rather than fail.
			if lastRes < math.Max(100*o.Tol, 1e-8) {
				return finishSolution(z, n, N, d, lastRes, iter)
			}
			return nil, fmt.Errorf("%w: damping failed at iteration %d (residual %.3e)", ErrNoConvergence, iter, lastRes)
		}
	}
	return nil, fmt.Errorf("%w after %d iterations (residual %.3e)", ErrNoConvergence, o.MaxIter, lastRes)
}

func hbResidualNorm(sys dynsys.System, z []float64, n, N int, d *linalg.Matrix, anchorComp int) float64 {
	omega := z[N*n]
	fbuf := make([]float64, n)
	worst := 0.0
	for k := 0; k < N; k++ {
		sys.Eval(z[k*n:(k+1)*n], fbuf)
		for i := 0; i < n; i++ {
			s := 0.0
			for m := 0; m < N; m++ {
				s += d.At(k, m) * z[m*n+i]
			}
			if r := math.Abs(omega*s - fbuf[i]); r > worst {
				worst = r
			}
		}
	}
	anchor := 0.0
	for m := 0; m < N; m++ {
		anchor += d.At(0, m) * z[m*n+anchorComp]
	}
	if a := math.Abs(anchor); a > worst {
		worst = a
	}
	return worst
}

func finishSolution(z []float64, n, N int, d *linalg.Matrix, res float64, iters int) (*Solution, error) {
	sol := &Solution{N: N, Omega: z[N*n], Residual: res, Iters: iters, d: d}
	for k := 0; k < N; k++ {
		sol.X = append(sol.X, append([]float64(nil), z[k*n:(k+1)*n]...))
	}
	return sol, nil
}

// At evaluates the solution at time t by trigonometric (Fourier)
// interpolation of the collocation samples — spectrally accurate for the
// smooth limit cycles HB converges on.
func (s *Solution) At(t float64) []float64 {
	n := len(s.X[0])
	out := make([]float64, n)
	// Interpolate each component from its Fourier series.
	tau := math.Mod(s.Omega*t, 2*math.Pi)
	if tau < 0 {
		tau += 2 * math.Pi
	}
	for i := 0; i < n; i++ {
		samples := make([]float64, s.N)
		for k := 0; k < s.N; k++ {
			samples[k] = s.X[k][i]
		}
		coeffs := fourier.SeriesCoefficients(samples, s.N/2-1)
		out[i] = fourier.SynthesizeSeries(coeffs, 1, tau)
	}
	return out
}

// V1 computes the perturbation projection vector v1 at the collocation
// points directly in the frequency domain: v1 spans the null space of the
// adjoint collocation operator
//
//	M = ω·Dᵀ... more precisely, the adjoint of L = ω·D⊗I − blockdiag A
//
// (v1 satisfies ω·dv/dτ = −Aᵀ(τ)v, i.e. Mᵀ... see the implementation),
// normalised so v1ᵀ(τ_k)·ẋs(τ_k) = 1 at every collocation point.
func (s *Solution) V1(sys dynsys.System) ([][]float64, error) {
	n := sys.Dim()
	N := s.N
	dim := N * n
	// Operator for the adjoint equation at collocation points:
	// ω·(Dv)_k + Aᵀ(x_k)·v_k = 0   (since dv/dt = −Aᵀv ⇔ ω·dv/dτ = −Aᵀv).
	m := linalg.NewMatrix(dim, dim)
	abuf := make([]float64, n*n)
	for k := 0; k < N; k++ {
		sys.Jacobian(s.X[k], abuf)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(k*n+i, k*n+j, abuf[j*n+i]) // Aᵀ block
			}
		}
		for q := 0; q < N; q++ {
			dk := s.Omega * s.d.At(k, q)
			if dk == 0 {
				continue
			}
			for i := 0; i < n; i++ {
				m.Set(k*n+i, q*n+i, m.At(k*n+i, q*n+i)+dk)
			}
		}
	}
	// v1 is the null vector of m (eigenvalue 0, simple for a stable cycle).
	null, err := linalg.EigenvectorReal(m, 0)
	if err != nil {
		return nil, fmt.Errorf("hb: adjoint null vector: %w", err)
	}
	// Normalise: v1ᵀ(τ_k)·ẋs(τ_k) = 1 with ẋs = f(xs). Use the mean inner
	// product for scaling, then verify pointwise.
	fbuf := make([]float64, n)
	mean := 0.0
	for k := 0; k < N; k++ {
		sys.Eval(s.X[k], fbuf)
		mean += linalg.Dot(null[k*n:(k+1)*n], fbuf)
	}
	mean /= float64(N)
	if mean == 0 {
		return nil, errors.New("hb: adjoint null vector orthogonal to the flow")
	}
	out := make([][]float64, N)
	for k := 0; k < N; k++ {
		v := append([]float64(nil), null[k*n:(k+1)*n]...)
		linalg.ScaleVec(1/mean, v)
		out[k] = v
	}
	// Pointwise check of the biorthogonality invariant.
	worst := 0.0
	for k := 0; k < N; k++ {
		sys.Eval(s.X[k], fbuf)
		if e := math.Abs(linalg.Dot(out[k], fbuf) - 1); e > worst {
			worst = e
		}
	}
	if worst > 1e-3 {
		return nil, fmt.Errorf("hb: v1 biorthogonality drift %.3e; raise N", worst)
	}
	return out, nil
}

// C computes the phase-diffusion constant (Eq. 29) on the collocation grid
// from the frequency-domain v1 — an independent cross-check of the
// time-domain quadrature.
func (s *Solution) C(sys dynsys.System) (float64, error) {
	v1, err := s.V1(sys)
	if err != nil {
		return 0, err
	}
	n := sys.Dim()
	p := sys.NumNoise()
	b := make([]float64, n*p)
	total := 0.0
	for k := 0; k < s.N; k++ {
		sys.Noise(s.X[k], b)
		for j := 0; j < p; j++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += v1[k][i] * b[i*p+j]
			}
			total += dot * dot
		}
	}
	return total / float64(s.N), nil
}
