package linalg

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// ErrNoConvergence is returned when the QR eigenvalue iteration fails to
// deflate an eigenvalue within the iteration budget.
var ErrNoConvergence = errors.New("linalg: eigenvalue iteration did not converge")

// Balance applies a similarity diagonal scaling D⁻¹ A D in place to reduce
// the norm of a, improving eigenvalue accuracy. Standard Parlett-Reinsch
// balancing with radix-2 scaling.
func Balance(a *Matrix) {
	n := a.Rows
	const radix = 2.0
	sqrdx := radix * radix
	for done := false; !done; {
		done = true
		for i := 0; i < n; i++ {
			r, c := 0.0, 0.0
			for j := 0; j < n; j++ {
				if j != i {
					c += math.Abs(a.At(j, i))
					r += math.Abs(a.At(i, j))
				}
			}
			if c == 0 || r == 0 {
				continue
			}
			g, f, s := r/radix, 1.0, c+r
			for c < g {
				f *= radix
				c *= sqrdx
			}
			g = r * radix
			for c > g {
				f /= radix
				c /= sqrdx
			}
			if (c+r)/f < 0.95*s {
				done = false
				g = 1 / f
				for j := 0; j < n; j++ {
					a.Set(i, j, a.At(i, j)*g)
				}
				for j := 0; j < n; j++ {
					a.Set(j, i, a.At(j, i)*f)
				}
			}
		}
	}
}

// Hessenberg reduces a (in place) to upper Hessenberg form by Householder
// similarity transforms. The strictly-lower part below the first subdiagonal
// is zeroed.
func Hessenberg(a *Matrix) {
	n := a.Rows
	if n != a.Cols {
		panic("linalg: Hessenberg of non-square matrix")
	}
	v := make([]float64, n)
	for k := 0; k < n-2; k++ {
		// Householder vector annihilating a[k+2..n-1, k].
		normx := 0.0
		for i := k + 1; i < n; i++ {
			normx += a.At(i, k) * a.At(i, k)
		}
		normx = math.Sqrt(normx)
		if normx == 0 {
			continue
		}
		alpha := a.At(k+1, k)
		if alpha > 0 {
			normx = -normx
		}
		v0 := alpha - normx
		if v0 == 0 {
			continue
		}
		v[k+1] = 1
		for i := k + 2; i < n; i++ {
			v[i] = a.At(i, k) / v0
		}
		tau := -v0 / normx
		// A = H A: rows k+1..n-1.
		for j := k; j < n; j++ {
			s := 0.0
			for i := k + 1; i < n; i++ {
				s += v[i] * a.At(i, j)
			}
			s *= tau
			for i := k + 1; i < n; i++ {
				a.Set(i, j, a.At(i, j)-s*v[i])
			}
		}
		// A = A H: columns k+1..n-1.
		for i := 0; i < n; i++ {
			s := 0.0
			for j := k + 1; j < n; j++ {
				s += a.At(i, j) * v[j]
			}
			s *= tau
			for j := k + 1; j < n; j++ {
				a.Set(i, j, a.At(i, j)-s*v[j])
			}
		}
		// Zero the annihilated entries explicitly.
		a.Set(k+1, k, normx)
		for i := k + 2; i < n; i++ {
			a.Set(i, k, 0)
		}
	}
}

// Eigenvalues returns all eigenvalues of the square real matrix a as
// complex numbers (conjugate pairs for complex eigenvalues), sorted by
// decreasing magnitude. The input matrix is not modified.
func Eigenvalues(a *Matrix) ([]complex128, error) {
	if a.Rows != a.Cols {
		panic("linalg: Eigenvalues of non-square matrix")
	}
	h := a.Clone()
	Balance(h)
	Hessenberg(h)
	ev, err := hqr(h)
	if err != nil {
		return nil, err
	}
	sort.Slice(ev, func(i, j int) bool { return cmplx.Abs(ev[i]) > cmplx.Abs(ev[j]) })
	return ev, nil
}

// hqr computes the eigenvalues of an upper Hessenberg matrix by the Francis
// double-shift QR algorithm (EISPACK HQR). h is destroyed.
func hqr(h *Matrix) ([]complex128, error) {
	n := h.Rows
	ev := make([]complex128, 0, n)
	anorm := 0.0
	for i := 0; i < n; i++ {
		for j := max(i-1, 0); j < n; j++ {
			anorm += math.Abs(h.At(i, j))
		}
	}
	if anorm == 0 {
		for i := 0; i < n; i++ {
			ev = append(ev, 0)
		}
		return ev, nil
	}
	nn := n - 1
	t := 0.0
	for nn >= 0 {
		its := 0
		var l int
		for {
			// Look for a single small subdiagonal element to split the matrix.
			for l = nn; l >= 1; l-- {
				s := math.Abs(h.At(l-1, l-1)) + math.Abs(h.At(l, l))
				if s == 0 {
					s = anorm
				}
				if math.Abs(h.At(l, l-1)) <= 1e-16*s {
					h.Set(l, l-1, 0)
					break
				}
			}
			x := h.At(nn, nn)
			if l == nn {
				// One real root found.
				ev = append(ev, complex(x+t, 0))
				nn--
				break
			}
			y := h.At(nn-1, nn-1)
			w := h.At(nn, nn-1) * h.At(nn-1, nn)
			if l == nn-1 {
				// Two roots found: solve the 2x2 block.
				p := 0.5 * (y - x)
				q := p*p + w
				z := math.Sqrt(math.Abs(q))
				x += t
				if q >= 0 {
					// Real pair.
					if p >= 0 {
						z = p + z
					} else {
						z = p - z
					}
					ev = append(ev, complex(x+z, 0))
					if z != 0 {
						ev = append(ev, complex(x-w/z, 0))
					} else {
						ev = append(ev, complex(x, 0))
					}
				} else {
					// Complex conjugate pair.
					ev = append(ev, complex(x+p, z), complex(x+p, -z))
				}
				nn -= 2
				break
			}
			// No roots found yet; continue iterating.
			if its == 60 {
				return nil, fmt.Errorf("%w (block ending at index %d)", ErrNoConvergence, nn)
			}
			if its == 10 || its == 20 {
				// Exceptional shift.
				t += x
				for i := 0; i <= nn; i++ {
					h.Set(i, i, h.At(i, i)-x)
				}
				s := math.Abs(h.At(nn, nn-1)) + math.Abs(h.At(nn-1, nn-2))
				y = 0.75 * s
				x = y
				w = -0.4375 * s * s
			}
			its++
			// Form shift and look for two consecutive small subdiagonals.
			var p, q, r, z float64
			var m int
			for m = nn - 2; m >= l; m-- {
				z = h.At(m, m)
				r = x - z
				s := y - z
				p = (r*s-w)/h.At(m+1, m) + h.At(m, m+1)
				q = h.At(m+1, m+1) - z - r - s
				r = h.At(m+2, m+1)
				s = math.Abs(p) + math.Abs(q) + math.Abs(r)
				p /= s
				q /= s
				r /= s
				if m == l {
					break
				}
				u := math.Abs(h.At(m, m-1)) * (math.Abs(q) + math.Abs(r))
				v := math.Abs(p) * (math.Abs(h.At(m-1, m-1)) + math.Abs(z) + math.Abs(h.At(m+1, m+1)))
				if u <= 1e-16*v {
					break
				}
			}
			for i := m + 2; i <= nn; i++ {
				h.Set(i, i-2, 0)
			}
			for i := m + 3; i <= nn; i++ {
				h.Set(i, i-3, 0)
			}
			// Double QR step on rows l..nn and columns m..nn.
			for k := m; k <= nn-1; k++ {
				if k != m {
					p = h.At(k, k-1)
					q = h.At(k+1, k-1)
					r = 0
					if k != nn-1 {
						r = h.At(k+2, k-1)
					}
					x = math.Abs(p) + math.Abs(q) + math.Abs(r)
					if x != 0 {
						p /= x
						q /= x
						r /= x
					}
				}
				s := math.Sqrt(p*p + q*q + r*r)
				if p < 0 {
					s = -s
				}
				if s == 0 {
					continue
				}
				if k == m {
					if l != m {
						h.Set(k, k-1, -h.At(k, k-1))
					}
				} else {
					h.Set(k, k-1, -s*x)
				}
				p += s
				x = p / s
				y = q / s
				z = r / s
				q /= p
				r /= p
				// Row modification.
				for j := k; j <= nn; j++ {
					p = h.At(k, j) + q*h.At(k+1, j)
					if k != nn-1 {
						p += r * h.At(k+2, j)
						h.Set(k+2, j, h.At(k+2, j)-p*z)
					}
					h.Set(k+1, j, h.At(k+1, j)-p*y)
					h.Set(k, j, h.At(k, j)-p*x)
				}
				// Column modification.
				mmin := nn
				if k+3 < nn {
					mmin = k + 3
				}
				for i := l; i <= mmin; i++ {
					p = x*h.At(i, k) + y*h.At(i, k+1)
					if k != nn-1 {
						p += z * h.At(i, k+2)
						h.Set(i, k+2, h.At(i, k+2)-p*r)
					}
					h.Set(i, k+1, h.At(i, k+1)-p*q)
					h.Set(i, k, h.At(i, k)-p)
				}
			}
		}
	}
	return ev, nil
}

// EigenvectorReal computes a real eigenvector of a for the (approximately)
// real eigenvalue lambda using shifted inverse iteration. The returned
// vector has unit Euclidean norm. The shift is perturbed slightly off the
// eigenvalue so that (A − σI) remains invertible.
func EigenvectorReal(a *Matrix, lambda float64) ([]float64, error) {
	n := a.Rows
	if n != a.Cols {
		panic("linalg: EigenvectorReal of non-square matrix")
	}
	scale := a.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	// Try a sequence of shift perturbations: inverse iteration converges in
	// one or two steps when the shift is within eps·‖A‖ of the eigenvalue.
	perturbs := []float64{1e-10, 1e-8, 1e-6, 1e-4}
	var lastErr error
	for _, p := range perturbs {
		sigma := lambda + p*scale
		shifted := a.Clone()
		for i := 0; i < n; i++ {
			shifted.Set(i, i, shifted.At(i, i)-sigma)
		}
		lu := NewLU(shifted)
		// Start from a deterministic, generic vector.
		v := make([]float64, n)
		for i := range v {
			v[i] = 1 / math.Sqrt(float64(i+1))
		}
		Normalize(v)
		converged := false
		for it := 0; it < 50; it++ {
			w, err := lu.Solve(v)
			if err != nil {
				lastErr = err
				break
			}
			growth := Normalize(w)
			if growth == 0 {
				lastErr = ErrSingular
				break
			}
			// Fix the sign for stable convergence detection.
			if Dot(w, v) < 0 {
				ScaleVec(-1, w)
			}
			diff := 0.0
			for i := range w {
				d := w[i] - v[i]
				diff += d * d
			}
			copy(v, w)
			if math.Sqrt(diff) < 1e-13 {
				converged = true
				break
			}
		}
		if !converged {
			continue
		}
		// Verify residual ‖Av − λv‖.
		r := a.MulVec(v)
		AXPY(-lambda, v, r)
		if Norm2(r) < 1e-6*math.Max(scale, 1) {
			return v, nil
		}
		lastErr = fmt.Errorf("linalg: inverse iteration residual too large (%g)", Norm2(r))
	}
	if lastErr == nil {
		lastErr = ErrNoConvergence
	}
	return nil, lastErr
}

// SpectralRadius returns the largest |eigenvalue| of a.
func SpectralRadius(a *Matrix) (float64, error) {
	ev, err := Eigenvalues(a)
	if err != nil {
		return 0, err
	}
	if len(ev) == 0 {
		return 0, nil
	}
	return cmplx.Abs(ev[0]), nil
}
