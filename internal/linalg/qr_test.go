package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomMatrix(rng, 6, 4)
	f := NewQR(a)
	q := f.Q()
	// Q should be orthogonal.
	matricesClose(t, q.T().Mul(q), Identity(6), 1e-10, "QᵀQ = I")
	// Q * [R; 0] should reconstruct A.
	r := NewMatrix(6, 4)
	rr := f.R()
	for i := 0; i < 4; i++ {
		for j := i; j < 4; j++ {
			r.Set(i, j, rr.At(i, j))
		}
	}
	matricesClose(t, q.Mul(r), a, 1e-9, "QR = A")
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomMatrix(rng, 5, 5)
	r := NewQR(a).R()
	for i := 1; i < 5; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R(%d,%d) = %g, want 0", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRSolveSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomMatrix(rng, 5, 5)
	b := make([]float64, 5)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := NewQR(a).Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(SubVec(a.MulVec(x), b)) > 1e-9 {
		t.Fatal("QR solve residual too large")
	}
}

func TestQRLeastSquaresMatchesNormalEquations(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randomMatrix(rng, 10, 3)
	b := make([]float64, 10)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := NewQR(a).LeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	// Normal equations solution: (AᵀA) x = Aᵀ b.
	ata := a.T().Mul(a)
	atb := a.TMulVec(b)
	want, err := Solve(ata, atb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEqual(x[i], want[i], 1e-8) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestQRLeastSquaresExactFit(t *testing.T) {
	// Fit y = 2 + 3t exactly.
	ts := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(5, 2)
	b := make([]float64, 5)
	for i, tv := range ts {
		a.Set(i, 0, 1)
		a.Set(i, 1, tv)
		b[i] = 2 + 3*tv
	}
	x, err := NewQR(a).LeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Fatalf("fit = %v, want [2 3]", x)
	}
}

func TestQMulVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	a := randomMatrix(rng, 7, 7)
	f := NewQR(a)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := f.QTMulVec(f.QMulVec(x))
	for i := range x {
		if !almostEqual(x[i], y[i], 1e-10) {
			t.Fatalf("QᵀQx != x at %d: %g vs %g", i, y[i], x[i])
		}
	}
}

// Property: QR solve agrees with LU solve on well-conditioned systems.
func TestQuickQRvsLU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x1, err1 := NewQR(a).Solve(b)
		x2, err2 := Solve(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return Norm2(SubVec(x1, x2)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
