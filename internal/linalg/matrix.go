// Package linalg provides the dense real linear algebra needed by the
// phase-noise characterisation pipeline: matrix/vector arithmetic, LU and QR
// factorisations, a real Schur (shifted Hessenberg QR) eigenvalue solver and
// inverse iteration for eigenvectors.
//
// The package is self-contained (stdlib only) and tuned for the small, dense
// systems that arise in oscillator analysis (state dimensions of 2–50).
// Matrices are stored row-major in a single backing slice.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major real matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, Data[i*Cols+j] == element (i,j)
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix from row-major data (copied).
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: data length %d != %d*%d", len(data), r, c))
	}
	m := NewMatrix(r, c)
	copy(m.Data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	n := len(d)
	m := NewMatrix(n, n)
	for i, v := range d {
		m.Data[i*n+i] = v
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	return NewMatrixFrom(m.Rows, m.Cols, m.Data)
}

// CopyFrom overwrites m with src; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("linalg: CopyFrom dimension mismatch")
	}
	copy(m.Data, src.Data)
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetRow overwrites row i with v.
func (m *Matrix) SetRow(i int, v []float64) {
	if len(v) != m.Cols {
		panic("linalg: SetRow length mismatch")
	}
	copy(m.Data[i*m.Cols:(i+1)*m.Cols], v)
}

// SetCol overwrites column j with v.
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic("linalg: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns m*b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		oi := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mik := range mi {
			if mik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bkj := range bk {
				oi[j] += mik * bkj
			}
		}
	}
	return out
}

// MulVec returns m*x as a new vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		s := 0.0
		for j, v := range mi {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// TMulVec returns mᵀ*x as a new vector (without forming the transpose).
func (m *Matrix) TMulVec(x []float64) []float64 {
	if m.Rows != len(x) {
		panic("linalg: TMulVec dimension mismatch")
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		mi := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range mi {
			out[j] += xi * v
		}
	}
	return out
}

// Add returns m+b as a new matrix.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Add dimension mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Sub returns m−b as a new matrix.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Sub dimension mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// Scale returns s*m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// AddScaledInPlace performs m += s*b in place.
func (m *Matrix) AddScaledInPlace(s float64, b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: AddScaledInPlace dimension mismatch")
	}
	for i := range m.Data {
		m.Data[i] += s * b.Data[i]
	}
}

// Trace returns the sum of diagonal elements (square matrices).
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace of non-square matrix")
	}
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		s += m.Data[i*m.Cols+i]
	}
	return s
}

// NormFro returns the Frobenius norm of m.
func (m *Matrix) NormFro() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns the max absolute row sum.
func (m *Matrix) NormInf() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		for _, v := range m.Data[i*m.Cols : (i+1)*m.Cols] {
			s += math.Abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "% .6e", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// --- vector helpers -------------------------------------------------------

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for extreme entries.
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInfVec returns the max-abs entry of x.
func NormInfVec(x []float64) float64 {
	max := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// AXPY performs y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// SubVec returns x−y as a new vector.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: SubVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// AddVec returns x+y as a new vector.
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: AddVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, x)
	return n
}

// Outer returns the outer product x yᵀ.
func Outer(x, y []float64) *Matrix {
	m := NewMatrix(len(x), len(y))
	for i, xi := range x {
		for j, yj := range y {
			m.Data[i*m.Cols+j] = xi * yj
		}
	}
	return m
}
