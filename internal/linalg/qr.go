package linalg

import "math"

// QR holds a Householder QR factorisation A = Q R for an m×n matrix with
// m >= n. Q is m×m orthogonal, R is m×n upper triangular.
type QR struct {
	qr   *Matrix   // packed Householder vectors (below diagonal) and R (at/above)
	tau  []float64 // Householder scalars
	m, n int
}

// NewQR factors a (not modified) with Householder reflections.
func NewQR(a *Matrix) *QR {
	m, n := a.Rows, a.Cols
	if m < n {
		panic("linalg: QR requires rows >= cols")
	}
	f := &QR{qr: a.Clone(), tau: make([]float64, n), m: m, n: n}
	d := f.qr.Data
	for k := 0; k < n; k++ {
		// Build Householder vector from column k, rows k..m-1.
		normx := 0.0
		for i := k; i < m; i++ {
			v := d[i*n+k]
			normx += v * v
		}
		normx = math.Sqrt(normx)
		if normx == 0 {
			f.tau[k] = 0
			continue
		}
		alpha := d[k*n+k]
		if alpha > 0 {
			normx = -normx
		}
		// v = x - normx*e1, normalised so v[0] = 1.
		v0 := alpha - normx
		d[k*n+k] = normx // R diagonal entry
		for i := k + 1; i < m; i++ {
			d[i*n+k] /= v0
		}
		f.tau[k] = -v0 / normx // tau = 2/(vᵀv) with v[0]=1 scaling
		// Apply H = I - tau v vᵀ to remaining columns.
		for j := k + 1; j < n; j++ {
			s := d[k*n+j]
			for i := k + 1; i < m; i++ {
				s += d[i*n+k] * d[i*n+j]
			}
			s *= f.tau[k]
			d[k*n+j] -= s
			for i := k + 1; i < m; i++ {
				d[i*n+j] -= s * d[i*n+k]
			}
		}
	}
	return f
}

// R returns the upper-triangular factor (n×n leading block).
func (f *QR) R() *Matrix {
	r := NewMatrix(f.n, f.n)
	for i := 0; i < f.n; i++ {
		for j := i; j < f.n; j++ {
			r.Set(i, j, f.qr.At(i, j))
		}
	}
	return r
}

// QMulVec computes Q*x for x of length m.
func (f *QR) QMulVec(x []float64) []float64 {
	y := CloneVec(x)
	// Q = H_0 H_1 ... H_{n-1}; apply in reverse order.
	for k := f.n - 1; k >= 0; k-- {
		f.applyHouseholder(k, y)
	}
	return y
}

// QTMulVec computes Qᵀ*x for x of length m.
func (f *QR) QTMulVec(x []float64) []float64 {
	y := CloneVec(x)
	for k := 0; k < f.n; k++ {
		f.applyHouseholder(k, y)
	}
	return y
}

func (f *QR) applyHouseholder(k int, y []float64) {
	if f.tau[k] == 0 {
		return
	}
	d := f.qr.Data
	s := y[k]
	for i := k + 1; i < f.m; i++ {
		s += d[i*f.n+k] * y[i]
	}
	s *= f.tau[k]
	y[k] -= s
	for i := k + 1; i < f.m; i++ {
		y[i] -= s * d[i*f.n+k]
	}
}

// Q returns the full m×m orthogonal factor (formed explicitly).
func (f *QR) Q() *Matrix {
	q := NewMatrix(f.m, f.m)
	e := make([]float64, f.m)
	for j := 0; j < f.m; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		q.SetCol(j, f.QMulVec(e))
	}
	return q
}

// Solve solves the square system A x = b via QR (A must be n×n here).
func (f *QR) Solve(b []float64) ([]float64, error) {
	if f.m != f.n {
		panic("linalg: QR.Solve requires a square matrix")
	}
	y := f.QTMulVec(b)
	// Back substitution with R.
	n := f.n
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := f.qr.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquares solves min ‖A x − b‖₂ for overdetermined A (m >= n).
func (f *QR) LeastSquares(b []float64) ([]float64, error) {
	if len(b) != f.m {
		panic("linalg: QR.LeastSquares dimension mismatch")
	}
	y := f.QTMulVec(b)
	n := f.n
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := f.qr.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}
