package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-10

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b))
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func matricesClose(t *testing.T, a, b *Matrix, eps float64, msg string) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", msg, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if !almostEqual(a.Data[i], b.Data[i], eps) {
			t.Fatalf("%s: entry %d: %g vs %g", msg, i, a.Data[i], b.Data[i])
		}
	}
}

func TestNewMatrixFromAndAt(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("unexpected layout: %v", m.Data)
	}
	m.Set(1, 1, 42)
	if m.At(1, 1) != 42 {
		t.Fatal("Set failed")
	}
}

func TestNewMatrixFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrixFrom(2, 2, []float64{1, 2, 3})
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag([]float64{1, 1, 1})
	matricesClose(t, id, d, 0, "identity vs diag(1,1,1)")
	if id.Trace() != 3 {
		t.Fatalf("trace = %g", id.Trace())
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 4, 7)
	matricesClose(t, m, m.T().T(), 0, "(Aᵀ)ᵀ = A")
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 5, 5)
	matricesClose(t, m, m.Mul(Identity(5)), tol, "A*I")
	matricesClose(t, m, Identity(5).Mul(m), tol, "I*A")
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 3, 4)
	b := randomMatrix(rng, 4, 5)
	c := randomMatrix(rng, 5, 2)
	matricesClose(t, a.Mul(b).Mul(c), a.Mul(b.Mul(c)), 1e-12, "(AB)C = A(BC)")
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 6, 3)
	x := randomMatrix(rng, 3, 1)
	got := a.MulVec(x.Col(0))
	want := a.Mul(x).Col(0)
	for i := range got {
		if !almostEqual(got[i], want[i], tol) {
			t.Fatalf("MulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestTMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 4, 6)
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := a.TMulVec(x)
	want := a.T().MulVec(x)
	for i := range got {
		if !almostEqual(got[i], want[i], tol) {
			t.Fatalf("TMulVec[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestAddSubScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 3, 3)
	b := randomMatrix(rng, 3, 3)
	matricesClose(t, a.Add(b).Sub(b), a, tol, "A+B-B = A")
	matricesClose(t, a.Scale(2), a.Add(a), tol, "2A = A+A")
	c := a.Clone()
	c.AddScaledInPlace(-1, a)
	if c.NormFro() > tol {
		t.Fatalf("A - A != 0: %g", c.NormFro())
	}
}

func TestRowColAccessors(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	r := m.Row(1)
	if r[0] != 4 || r[2] != 6 {
		t.Fatalf("Row(1) = %v", r)
	}
	c := m.Col(2)
	if c[0] != 3 || c[1] != 6 {
		t.Fatalf("Col(2) = %v", c)
	}
	m.SetRow(0, []float64{9, 8, 7})
	if m.At(0, 1) != 8 {
		t.Fatal("SetRow failed")
	}
	m.SetCol(0, []float64{-1, -2})
	if m.At(1, 0) != -2 {
		t.Fatal("SetCol failed")
	}
}

func TestNorms(t *testing.T) {
	m := NewMatrixFrom(2, 2, []float64{3, 0, 0, 4})
	if !almostEqual(m.NormFro(), 5, tol) {
		t.Fatalf("fro = %g", m.NormFro())
	}
	if m.NormInf() != 4 {
		t.Fatalf("inf = %g", m.NormInf())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("maxabs = %g", m.MaxAbs())
	}
}

func TestNorm2OverflowSafety(t *testing.T) {
	x := []float64{1e300, 1e300}
	got := Norm2(x)
	want := 1e300 * math.Sqrt2
	if !almostEqual(got, want, 1e-12) {
		t.Fatalf("Norm2 overflow-safe = %g, want %g", got, want)
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("dot = %g", Dot(x, y))
	}
	s := SubVec(AddVec(x, y), y)
	for i := range s {
		if s[i] != x[i] {
			t.Fatalf("add/sub roundtrip: %v", s)
		}
	}
	z := CloneVec(x)
	AXPY(2, y, z)
	if z[0] != 9 || z[2] != 15 {
		t.Fatalf("axpy = %v", z)
	}
	ScaleVec(0.5, z)
	if z[0] != 4.5 {
		t.Fatalf("scale = %v", z)
	}
	if NormInfVec([]float64{-7, 3}) != 7 {
		t.Fatal("NormInfVec")
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{3, 4}
	n := Normalize(x)
	if !almostEqual(n, 5, tol) || !almostEqual(Norm2(x), 1, tol) {
		t.Fatalf("normalize: n=%g x=%v", n, x)
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Fatal("zero vector should return 0")
	}
}

func TestOuter(t *testing.T) {
	m := Outer([]float64{1, 2}, []float64{3, 4, 5})
	if m.Rows != 2 || m.Cols != 3 || m.At(1, 2) != 10 {
		t.Fatalf("outer = %v", m)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ for random small matrices.
func TestQuickTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(5)
		k := 1 + rng.Intn(5)
		c := 1 + rng.Intn(5)
		a := randomMatrix(rng, r, k)
		b := randomMatrix(rng, k, c)
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		return lhs.Sub(rhs).MaxAbs() < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖x‖₂² == x·x.
func TestQuickNormDotConsistency(t *testing.T) {
	f := func(xs []float64) bool {
		// Clamp entries to avoid overflow in the naive dot product.
		x := make([]float64, 0, len(xs))
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			x = append(x, math.Mod(v, 1e6))
		}
		n := Norm2(x)
		return almostEqual(n*n, Dot(x, x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for the Frobenius norm.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 4, 4)
		b := randomMatrix(rng, 4, 4)
		return a.Add(b).NormFro() <= a.NormFro()+b.NormFro()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendersAllRows(t *testing.T) {
	m := Identity(2)
	s := m.String()
	if len(s) == 0 {
		t.Fatal("empty render")
	}
}
