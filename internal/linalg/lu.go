package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a factorisation encounters an (exactly or
// numerically) singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an LU factorisation with partial pivoting: P*A = L*U.
type LU struct {
	lu    *Matrix // packed L (unit lower, below diagonal) and U (upper)
	piv   []int   // row permutation: row i of P*A is row piv[i] of A
	sign  float64 // determinant sign of the permutation
	n     int
	small bool // true when a pivot was below the singularity threshold
}

// NewLU factors the square matrix a (not modified). It never fails outright;
// inspect Singular or rely on Solve returning ErrSingular.
func NewLU(a *Matrix) *LU {
	if a.Rows != a.Cols {
		panic("linalg: LU of non-square matrix")
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1, n: n}
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu.Data
	// Largest entry sets the singularity scale.
	scale := a.MaxAbs()
	tol := scale * float64(n) * 1e-15
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest |entry| in column k at/below row k.
		p, pmax := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu[i*n+k]); v > pmax {
				p, pmax = i, v
			}
		}
		if p != k {
			rk := lu[k*n : (k+1)*n]
			rp := lu[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		if math.Abs(pivot) <= tol {
			f.small = true
			if pivot == 0 {
				continue // leave the zero column; Solve will report ErrSingular
			}
		}
		inv := 1 / pivot
		for i := k + 1; i < n; i++ {
			m := lu[i*n+k] * inv
			lu[i*n+k] = m
			if m == 0 {
				continue
			}
			ri := lu[i*n : (i+1)*n]
			rk := lu[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f
}

// Singular reports whether a pivot fell below the singularity threshold.
func (f *LU) Singular() bool { return f.small }

// Det returns det(A).
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.n; i++ {
		d *= f.lu.Data[i*f.n+i]
	}
	return d
}

// Solve solves A x = b, returning a new vector.
func (f *LU) Solve(b []float64) ([]float64, error) {
	if len(b) != f.n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	n := f.n
	lu := f.lu.Data
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		ri := lu[i*n : (i+1)*n]
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		ri := lu[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		d := ri[i]
		if d == 0 || math.IsNaN(s/d) || math.IsInf(s/d, 0) {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveMatrix solves A X = B column-by-column, returning X.
func (f *LU) SolveMatrix(b *Matrix) (*Matrix, error) {
	if b.Rows != f.n {
		panic("linalg: LU.SolveMatrix dimension mismatch")
	}
	out := NewMatrix(f.n, b.Cols)
	for j := 0; j < b.Cols; j++ {
		col, err := f.Solve(b.Col(j))
		if err != nil {
			return nil, err
		}
		out.SetCol(j, col)
	}
	return out, nil
}

// Solve solves the linear system a x = b using LU with partial pivoting.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	return NewLU(a).Solve(b)
}

// Inverse returns A⁻¹ or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	return NewLU(a).SolveMatrix(Identity(a.Rows))
}

// Det returns det(A) via LU.
func Det(a *Matrix) float64 { return NewLU(a).Det() }
