package linalg

import (
	"errors"
	"math"
)

// ErrNotSPD is returned when Cholesky encounters a matrix that is not
// symmetric positive definite to working precision.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix. The input is not modified.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if n != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	// Symmetry check (cheap and catches caller bugs early).
	scale := a.MaxAbs()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-10*(1+scale) {
				return nil, ErrNotSPD
			}
		}
	}
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, ErrNotSPD
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}
