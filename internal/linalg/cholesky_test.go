package linalg

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCholeskyKnown(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{4, 2, 2, 5})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L = [[2,0],[1,2]].
	if !almostEqual(l.At(0, 0), 2, tol) || !almostEqual(l.At(1, 0), 1, tol) ||
		!almostEqual(l.At(1, 1), 2, tol) || l.At(0, 1) != 0 {
		t.Fatalf("L = %v", l)
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(8)
		b := randomMatrix(rng, n, n)
		a := b.Mul(b.T())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+0.5) // ensure positive definite
		}
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		matricesClose(t, l.Mul(l.T()), a, 1e-9, "LLᵀ = A")
		// Strictly lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("L(%d,%d) = %g above diagonal", i, j, l.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1})
	if _, err := Cholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
}

func TestCholeskyRejectsAsymmetric(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 0.5, 0.2, 1})
	if _, err := Cholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
}

// Property: det(A) = (Π diag L)² for SPD A.
func TestQuickCholeskyDeterminant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		b := randomMatrix(rng, n, n)
		a := b.Mul(b.T())
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		prod := 1.0
		for i := 0; i < n; i++ {
			prod *= l.At(i, i)
		}
		return almostEqual(prod*prod, Det(a), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
