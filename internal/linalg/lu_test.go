package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUSolveKnownSystem(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{
		2, 1, 1,
		1, 3, 2,
		1, 0, 0,
	})
	b := []float64{4, 5, 6}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify residual.
	r := SubVec(a.MulVec(x), b)
	if Norm2(r) > 1e-12 {
		t.Fatalf("residual %g, x=%v", Norm2(r), x)
	}
	if !almostEqual(x[0], 6, tol) {
		t.Fatalf("x[0] = %g, want 6", x[0])
	}
}

func TestLUSolveRandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		a := randomMatrix(rng, n, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			continue // randomly singular: acceptable
		}
		r := SubVec(a.MulVec(x), b)
		if Norm2(r) > 1e-8*(1+a.NormFro()*Norm2(x)) {
			t.Fatalf("trial %d: residual %g", trial, Norm2(r))
		}
	}
}

func TestLUSingularDetection(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	f := NewLU(a)
	if !f.Singular() {
		t.Fatal("rank-1 matrix not flagged singular")
	}
	if _, err := f.Solve([]float64{1, 0}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	if !almostEqual(Det(a), -2, tol) {
		t.Fatalf("det = %g, want -2", Det(a))
	}
	if !almostEqual(Det(Identity(5)), 1, tol) {
		t.Fatal("det(I) != 1")
	}
	// Permutation sign: swapping rows flips the determinant.
	b := NewMatrixFrom(2, 2, []float64{3, 4, 1, 2})
	if !almostEqual(Det(b), 2, tol) {
		t.Fatalf("det = %g, want 2", Det(b))
	}
}

func TestLUDeterminantMultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomMatrix(rng, 4, 4)
	b := randomMatrix(rng, 4, 4)
	if !almostEqual(Det(a.Mul(b)), Det(a)*Det(b), 1e-9) {
		t.Fatalf("det(AB)=%g det(A)det(B)=%g", Det(a.Mul(b)), Det(a)*Det(b))
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomMatrix(rng, 6, 6)
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, a.Mul(inv), Identity(6), 1e-9, "A A⁻¹ = I")
	matricesClose(t, inv.Mul(a), Identity(6), 1e-9, "A⁻¹ A = I")
}

func TestSolveMatrixColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randomMatrix(rng, 4, 4)
	b := randomMatrix(rng, 4, 3)
	x, err := NewLU(a).SolveMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, a.Mul(x), b, 1e-9, "A X = B")
}

// Property: LU solve residual stays small for well-conditioned matrices.
func TestQuickLUSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		// Diagonally dominant ⇒ well-conditioned.
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return Norm2(SubVec(a.MulVec(x), b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: det(A) is invariant under transposition.
func TestQuickDetTranspose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a := randomMatrix(rng, n, n)
		return almostEqual(Det(a), Det(a.T()), 1e-8) ||
			math.Abs(Det(a)) < 1e-12 // near-singular: relative compare unreliable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroMatrixSolveFails(t *testing.T) {
	a := NewMatrix(3, 3)
	if _, err := Solve(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected failure for zero matrix")
	}
}
