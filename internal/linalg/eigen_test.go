package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func complexSetsClose(t *testing.T, got, want []complex128, eps float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("eigenvalue count %d, want %d", len(got), len(want))
	}
	g := append([]complex128(nil), got...)
	w := append([]complex128(nil), want...)
	key := func(z complex128) (float64, float64) { return real(z), imag(z) }
	less := func(s []complex128) func(i, j int) bool {
		return func(i, j int) bool {
			ri, ii := key(s[i])
			rj, ij := key(s[j])
			if ri != rj {
				return ri < rj
			}
			return ii < ij
		}
	}
	sort.Slice(g, less(g))
	sort.Slice(w, less(w))
	for i := range g {
		if cmplx.Abs(g[i]-w[i]) > eps*(1+cmplx.Abs(w[i])) {
			t.Fatalf("eigenvalue %d: got %v, want %v (all got=%v want=%v)", i, g[i], w[i], g, w)
		}
	}
}

func TestEigenvaluesDiagonal(t *testing.T) {
	a := Diag([]float64{3, -1, 2.5, 0})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	complexSetsClose(t, ev, []complex128{3, -1, 2.5, 0}, 1e-12)
}

func TestEigenvaluesRotation(t *testing.T) {
	// 2D rotation by θ has eigenvalues exp(±iθ).
	th := 0.7
	a := NewMatrixFrom(2, 2, []float64{
		math.Cos(th), -math.Sin(th),
		math.Sin(th), math.Cos(th),
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	complexSetsClose(t, ev, []complex128{cmplx.Exp(complex(0, th)), cmplx.Exp(complex(0, -th))}, 1e-12)
}

func TestEigenvaluesCompanion(t *testing.T) {
	// Companion matrix of (λ-1)(λ-2)(λ-3) = λ³ - 6λ² + 11λ - 6.
	a := NewMatrixFrom(3, 3, []float64{
		6, -11, 6,
		1, 0, 0,
		0, 1, 0,
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	complexSetsClose(t, ev, []complex128{1, 2, 3}, 1e-9)
}

func TestEigenvaluesDefectiveJordan(t *testing.T) {
	// Jordan block: repeated eigenvalue 2 with a single Jordan chain.
	a := NewMatrixFrom(3, 3, []float64{
		2, 1, 0,
		0, 2, 1,
		0, 0, 2,
	})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range ev {
		// Defective eigenvalues are only accurate to eps^(1/3).
		if cmplx.Abs(z-2) > 1e-4 {
			t.Fatalf("eigenvalue %v too far from 2", z)
		}
	}
}

func TestEigenvaluesSimilarityInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	d := Diag([]float64{5, -2, 1, 0.5})
	p := randomMatrix(rng, 4, 4)
	for i := 0; i < 4; i++ {
		p.Set(i, i, p.At(i, i)+5)
	}
	pinv, err := Inverse(p)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Mul(d).Mul(pinv)
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	complexSetsClose(t, ev, []complex128{5, -2, 1, 0.5}, 1e-8)
}

func TestEigenvaluesTraceDetConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(6)
		a := randomMatrix(rng, n, n)
		ev, err := Eigenvalues(a)
		if err != nil {
			t.Fatal(err)
		}
		sum := complex(0, 0)
		prod := complex(1, 0)
		for _, z := range ev {
			sum += z
			prod *= z
		}
		if math.Abs(real(sum)-a.Trace()) > 1e-8*(1+math.Abs(a.Trace())) {
			t.Fatalf("trial %d: Σλ = %v, trace = %g", trial, sum, a.Trace())
		}
		if math.Abs(imag(sum)) > 1e-8 {
			t.Fatalf("trial %d: Σλ has imaginary part %g", trial, imag(sum))
		}
		det := Det(a)
		if math.Abs(real(prod)-det) > 1e-7*(1+math.Abs(det)) {
			t.Fatalf("trial %d: Πλ = %v, det = %g", trial, prod, det)
		}
	}
}

func TestEigenvaluesZeroMatrix(t *testing.T) {
	ev, err := Eigenvalues(NewMatrix(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range ev {
		if z != 0 {
			t.Fatalf("eigenvalue %v of zero matrix", z)
		}
	}
}

func TestEigenvaluesSortedByMagnitude(t *testing.T) {
	a := Diag([]float64{1, 9, -4, 2})
	ev, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ev); i++ {
		if cmplx.Abs(ev[i]) > cmplx.Abs(ev[i-1])+1e-12 {
			t.Fatalf("not sorted: %v", ev)
		}
	}
}

func TestEigenvectorRealDiagonal(t *testing.T) {
	a := Diag([]float64{2, 5, -1})
	v, err := EigenvectorReal(a, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Should be ±e2.
	if math.Abs(math.Abs(v[1])-1) > 1e-8 || math.Abs(v[0]) > 1e-8 || math.Abs(v[2]) > 1e-8 {
		t.Fatalf("eigenvector %v, want ±e2", v)
	}
}

func TestEigenvectorRealResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	// Build a matrix with a known eigenpair via similarity.
	d := Diag([]float64{1, 0.3, -0.6, 0.1})
	p := randomMatrix(rng, 4, 4)
	for i := 0; i < 4; i++ {
		p.Set(i, i, p.At(i, i)+4)
	}
	pinv, err := Inverse(p)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Mul(d).Mul(pinv)
	v, err := EigenvectorReal(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(v)
	AXPY(-1, v, r)
	if Norm2(r) > 1e-7 {
		t.Fatalf("residual %g", Norm2(r))
	}
}

func TestEigenvectorMonodromyLike(t *testing.T) {
	// Monodromy-matrix-like case: eigenvalue exactly 1 plus contracting modes.
	a := NewMatrixFrom(3, 3, []float64{
		1, 0.5, 0.2,
		0, 0.3, 0.1,
		0, 0, 0.05,
	})
	v, err := EigenvectorReal(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(v)
	AXPY(-1, v, r)
	if Norm2(r) > 1e-8 {
		t.Fatalf("residual %g for eigenvalue 1", Norm2(r))
	}
	// And the transpose (needed for v1 in Floquet analysis).
	vt, err := EigenvectorReal(a.T(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := a.T().MulVec(vt)
	AXPY(-1, vt, rt)
	if Norm2(rt) > 1e-8 {
		t.Fatalf("transpose residual %g", Norm2(rt))
	}
}

func TestHessenbergPreservesEigenvalues(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randomMatrix(rng, 5, 5)
	want, err := Eigenvalues(a)
	if err != nil {
		t.Fatal(err)
	}
	h := a.Clone()
	Hessenberg(h)
	// Hessenberg form must have zeros below the first subdiagonal.
	for i := 2; i < 5; i++ {
		for j := 0; j < i-1; j++ {
			if h.At(i, j) != 0 {
				t.Fatalf("H(%d,%d) = %g", i, j, h.At(i, j))
			}
		}
	}
	got, err := Eigenvalues(h)
	if err != nil {
		t.Fatal(err)
	}
	complexSetsClose(t, got, want, 1e-8)
}

func TestBalancePreservesEigenvalues(t *testing.T) {
	a := NewMatrixFrom(3, 3, []float64{
		1, 1e6, 0,
		1e-6, 2, 1e5,
		0, 1e-5, 3,
	})
	want, err := Eigenvalues(a) // Eigenvalues itself balances; baseline
	if err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	Balance(b)
	got, err := Eigenvalues(b)
	if err != nil {
		t.Fatal(err)
	}
	complexSetsClose(t, got, want, 1e-7)
}

func TestSpectralRadius(t *testing.T) {
	a := Diag([]float64{0.5, -3, 1})
	r, err := SpectralRadius(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 3, 1e-10) {
		t.Fatalf("spectral radius %g, want 3", r)
	}
}

// Property: eigenvalues of AᵀA are real and non-negative.
func TestQuickGramEigenvaluesNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := randomMatrix(rng, n, n)
		g := a.T().Mul(a)
		ev, err := Eigenvalues(g)
		if err != nil {
			return false
		}
		for _, z := range ev {
			if math.Abs(imag(z)) > 1e-7*(1+cmplx.Abs(z)) || real(z) < -1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling a matrix scales its eigenvalues.
func TestQuickEigenvalueScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		a := randomMatrix(rng, n, n)
		s := 0.5 + rng.Float64()*3
		ev1, err1 := Eigenvalues(a)
		ev2, err2 := Eigenvalues(a.Scale(s))
		if err1 != nil || err2 != nil {
			return false
		}
		// Match by magnitude ordering (both sorted).
		for i := range ev1 {
			if cmplx.Abs(ev2[i]-complex(s, 0)*ev1[i]) > 1e-6*(1+cmplx.Abs(ev2[i])) {
				// Allow conjugate-order swaps within a pair.
				if i+1 < len(ev1) && cmplx.Abs(ev2[i]-complex(s, 0)*ev1[i+1]) < 1e-6*(1+cmplx.Abs(ev2[i])) {
					continue
				}
				if i > 0 && cmplx.Abs(ev2[i]-complex(s, 0)*ev1[i-1]) < 1e-6*(1+cmplx.Abs(ev2[i])) {
					continue
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
