// Package stochproc post-processes Monte-Carlo oscillator ensembles into
// the quantities the phase-noise theory predicts: threshold-crossing jitter
// and its linear variance growth (Var[t_k] = c·k·T, McNeill's measurement),
// autocorrelation and stationarity checks, Gaussianity moments for α(t),
// and Lorentzian line fits to estimated spectra.
package stochproc

import (
	"errors"
	"math"
	"repro/internal/linalg"
	"sort"
)

// Crossings returns the interpolated times at which signal x (sampled at
// t0 + k·dt) crosses `level` in the rising direction (falling if
// rising=false).
func Crossings(x []float64, t0, dt, level float64, rising bool) []float64 {
	var out []float64
	for k := 1; k < len(x); k++ {
		a, b := x[k-1], x[k]
		var hit bool
		if rising {
			hit = a < level && b >= level
		} else {
			hit = a > level && b <= level
		}
		if hit {
			frac := (level - a) / (b - a)
			out = append(out, t0+dt*(float64(k-1)+frac))
		}
	}
	return out
}

// JitterGrowth holds the per-transition jitter statistics of an ensemble of
// clock-like waveforms.
type JitterGrowth struct {
	K        []int     // transition index (1-based)
	MeanT    []float64 // mean crossing time of transition k
	Variance []float64 // Var[t_k] across the ensemble
}

// Slope fits Variance ≈ a + b·MeanT and returns b. For a free-running
// oscillator the theory gives b = c (since Var[t_k] = c·k·T = c·t̄_k).
func (j *JitterGrowth) Slope() float64 {
	return fitSlope(j.MeanT, j.Variance)
}

// EnsembleJitter measures rising-crossing times of `level` for each signal
// in the ensemble (all sampled at t0 + k·dt) and returns the variance of the
// k-th crossing across paths, for all k present in every path.
//
// Each path is re-referenced to its own first crossing, mirroring the
// triggered-oscilloscope measurement the paper describes: the trigger edge
// defines t = 0, and jitter accumulates on subsequent edges.
func EnsembleJitter(signals [][]float64, t0, dt, level float64) (*JitterGrowth, error) {
	if len(signals) < 2 {
		return nil, errors.New("stochproc: need at least 2 paths")
	}
	all := make([][]float64, 0, len(signals))
	minLen := math.MaxInt
	for _, s := range signals {
		cr := Crossings(s, t0, dt, level, true)
		if len(cr) < 2 {
			return nil, errors.New("stochproc: a path has fewer than 2 crossings")
		}
		// Re-reference to the first (trigger) crossing.
		ref := cr[0]
		rel := make([]float64, len(cr)-1)
		for i := 1; i < len(cr); i++ {
			rel[i-1] = cr[i] - ref
		}
		all = append(all, rel)
		if len(rel) < minLen {
			minLen = len(rel)
		}
	}
	out := &JitterGrowth{}
	for k := 0; k < minLen; k++ {
		mean, m2 := 0.0, 0.0
		for i, rel := range all {
			d := rel[k] - mean
			mean += d / float64(i+1)
			m2 += d * (rel[k] - mean)
		}
		out.K = append(out.K, k+1)
		out.MeanT = append(out.MeanT, mean)
		out.Variance = append(out.Variance, m2/float64(len(all)-1))
	}
	return out, nil
}

// Autocorrelation estimates R(lag·dt) = E[x(t)x(t+lag·dt)] for lags
// 0..maxLag from a single stationary record, with mean removal.
func Autocorrelation(x []float64, maxLag int) []float64 {
	n := len(x)
	if maxLag >= n {
		maxLag = n - 1
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	out := make([]float64, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		s := 0.0
		for k := 0; k+lag < n; k++ {
			s += (x[k] - mean) * (x[k+lag] - mean)
		}
		out[lag] = s / float64(n-lag)
	}
	return out
}

// Moments summarises a sample's shape for Gaussianity checks.
type Moments struct {
	Mean, Variance float64
	Skewness       float64 // 0 for Gaussian
	ExcessKurtosis float64 // 0 for Gaussian
	N              int
}

// SampleMoments computes mean, variance, skewness and excess kurtosis.
func SampleMoments(xs []float64) Moments {
	n := float64(len(xs))
	if n == 0 {
		return Moments{}
	}
	mean := 0.0
	for _, v := range xs {
		mean += v
	}
	mean /= n
	var m2, m3, m4 float64
	for _, v := range xs {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m3 /= n
	m4 /= n
	mom := Moments{Mean: mean, Variance: m2, N: len(xs)}
	if m2 > 0 {
		mom.Skewness = m3 / math.Pow(m2, 1.5)
		mom.ExcessKurtosis = m4/(m2*m2) - 3
	}
	return mom
}

// IsGaussianish reports whether the sample's skewness and excess kurtosis
// are within z standard errors of their Gaussian sampling distributions
// (SE_skew ≈ √(6/N), SE_kurt ≈ √(24/N)).
func (m Moments) IsGaussianish(z float64) bool {
	if m.N < 8 {
		return false
	}
	seS := math.Sqrt(6 / float64(m.N))
	seK := math.Sqrt(24 / float64(m.N))
	return math.Abs(m.Skewness) < z*seS && math.Abs(m.ExcessKurtosis) < z*seK
}

// LorentzianFit is a fitted Lorentzian line S(f) = P·(w/π)/((f−f0)² + w²).
type LorentzianFit struct {
	Center    float64 // f0
	HalfWidth float64 // w (half-width at half maximum)
	Peak      float64 // S(f0)
	Power     float64 // integrated power P (≈ π·w·Peak)
}

// FitLorentzian estimates a Lorentzian line shape from a sampled PSD within
// [fLo, fHi]. It exploits that the reciprocal of a Lorentzian is an exact
// quadratic in frequency,
//
//	1/S(f) = u0 + u1·f + u2·f²  with  f0 = −u1/(2u2),  w² = (1/S(f0))/u2,
//
// and fits that quadratic by least squares over the line core (bins above
// 1/5 of the peak), which is far more robust against single-bin estimator
// noise than walking to the half-power points.
func FitLorentzian(freqs, psd []float64, fLo, fHi float64) (*LorentzianFit, error) {
	if len(freqs) != len(psd) || len(freqs) < 5 {
		return nil, errors.New("stochproc: bad PSD input")
	}
	// Peak within the window.
	best := -1
	for k := range freqs {
		if freqs[k] < fLo || freqs[k] > fHi {
			continue
		}
		if best < 0 || psd[k] > psd[best] {
			best = k
		}
	}
	if best <= 0 || best >= len(freqs)-1 {
		return nil, errors.New("stochproc: no interior peak in window")
	}
	peak := psd[best]
	if peak <= 0 {
		return nil, errors.New("stochproc: non-positive peak")
	}
	// Collect the contiguous line core around the peak.
	fc := freqs[best]
	var fs, inv []float64
	for k := best; k >= 0 && freqs[k] >= fLo && psd[k] >= peak/5; k-- {
		fs = append(fs, freqs[k]-fc) // centre for conditioning
		inv = append(inv, 1/psd[k])
	}
	for k := best + 1; k < len(freqs) && freqs[k] <= fHi && psd[k] >= peak/5; k++ {
		fs = append(fs, freqs[k]-fc)
		inv = append(inv, 1/psd[k])
	}
	if len(fs) < 5 {
		return nil, errors.New("stochproc: line core too narrow to fit (increase resolution)")
	}
	// Least-squares quadratic 1/S ≈ u0 + u1·x + u2·x².
	var s0, s1, s2, s3, s4, b0, b1, b2 float64
	for i, x := range fs {
		x2 := x * x
		s0++
		s1 += x
		s2 += x2
		s3 += x2 * x
		s4 += x2 * x2
		b0 += inv[i]
		b1 += inv[i] * x
		b2 += inv[i] * x2
	}
	u, err := linalg.Solve(linalg.NewMatrixFrom(3, 3, []float64{
		s0, s1, s2,
		s1, s2, s3,
		s2, s3, s4,
	}), []float64{b0, b1, b2})
	if err != nil {
		return nil, errors.New("stochproc: quadratic fit singular")
	}
	u0, u1, u2 := u[0], u[1], u[2]
	if u2 <= 0 {
		return nil, errors.New("stochproc: fitted quadratic not convex (no line)")
	}
	x0 := -u1 / (2 * u2)
	invS0 := u0 + u1*x0 + u2*x0*x0
	if invS0 <= 0 {
		return nil, errors.New("stochproc: fitted peak not positive")
	}
	w2 := invS0 / u2
	if w2 <= 0 {
		return nil, errors.New("stochproc: fitted width not positive")
	}
	w := math.Sqrt(w2)
	pk := 1 / invS0
	return &LorentzianFit{
		Center:    fc + x0,
		HalfWidth: w,
		Peak:      pk,
		Power:     math.Pi * w * pk,
	}, nil
}

// FitLine performs ordinary least squares y ≈ a + b·x, returning intercept
// and slope.
func FitLine(xs, ys []float64) (a, b float64) {
	b = fitSlope(xs, ys)
	n := float64(len(xs))
	if n == 0 {
		return 0, 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	return sy/n - b*sx/n, b
}

func fitSlope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// Median returns the sample median (copy-and-sort; n small in practice).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	m := len(c) / 2
	if len(c)%2 == 1 {
		return c[m]
	}
	return 0.5 * (c[m-1] + c[m])
}
