package stochproc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCrossingsOfSine(t *testing.T) {
	// sin(2πt) rising zero crossings at t = 0, 1, 2, ...
	dt := 1e-3
	n := 3000
	x := make([]float64, n)
	for k := range x {
		x[k] = math.Sin(2 * math.Pi * dt * float64(k))
	}
	cr := Crossings(x, 0, dt, 0, true)
	if len(cr) != 2 {
		t.Fatalf("expected 2 rising crossings, got %d (%v)", len(cr), cr)
	}
	if math.Abs(cr[0]-1) > 1e-4 || math.Abs(cr[1]-2) > 1e-4 {
		t.Fatalf("crossings %v", cr)
	}
	fall := Crossings(x, 0, dt, 0, false)
	if len(fall) != 3 {
		t.Fatalf("expected 3 falling crossings, got %v", fall)
	}
	if math.Abs(fall[0]-0.5) > 1e-4 {
		t.Fatalf("first falling at %g", fall[0])
	}
}

func TestCrossingsInterpolationAccuracy(t *testing.T) {
	// A straight line through level 0.5 between samples.
	x := []float64{0, 1}
	cr := Crossings(x, 10, 2, 0.5, true)
	if len(cr) != 1 || math.Abs(cr[0]-11) > 1e-12 {
		t.Fatalf("crossings %v, want [11]", cr)
	}
}

func TestEnsembleJitterLinearGrowth(t *testing.T) {
	// Synthetic clock: crossing k of path j at t = k·T + √(c·k·T)·g_jk.
	// (independent Gaussian per edge ⇒ variance grows linearly in k).
	rng := rand.New(rand.NewSource(1))
	T := 1.0
	c := 1e-4
	nPaths, nEdges := 400, 30
	// Build square-wave-ish signals whose rising edges carry the jitter.
	dt := T / 200
	nSamp := int(float64(nEdges+2) * T / dt)
	signals := make([][]float64, nPaths)
	for j := range signals {
		s := make([]float64, nSamp)
		// Edge times for this path.
		edges := make([]float64, nEdges+1)
		for k := 1; k <= nEdges; k++ {
			edges[k] = float64(k)*T + math.Sqrt(c*float64(k)*T)*rng.NormFloat64()
		}
		for i := range s {
			tt := float64(i) * dt
			v := -1.0
			// Count edges before tt: odd count ⇒ high half-cycle.
			for k := 1; k <= nEdges; k++ {
				if tt >= edges[k] && tt < edges[k]+T/2 {
					v = 1
					break
				}
			}
			s[i] = v
		}
		signals[j] = s
	}
	jg, err := EnsembleJitter(signals, 0, dt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jg.K) < 10 {
		t.Fatalf("only %d transitions", len(jg.K))
	}
	slope := jg.Slope()
	// Variance of (t_k − t_1) = c(kT) + c(T)… re-referencing adds the
	// trigger's variance: Var[t_k − t_1] = c·k·T + c·T for independent
	// Gaussians, still slope ≈ c.
	if slope < 0.5*c || slope > 1.6*c {
		t.Fatalf("jitter slope %g, want ≈ %g", slope, c)
	}
}

func TestEnsembleJitterErrors(t *testing.T) {
	if _, err := EnsembleJitter(nil, 0, 1, 0); err == nil {
		t.Fatal("expected error for empty ensemble")
	}
	flat := [][]float64{{0, 0, 0}, {0, 0, 0}}
	if _, err := EnsembleJitter(flat, 0, 1, 0.5); err == nil {
		t.Fatal("expected error for crossing-free paths")
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 20000)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	r := Autocorrelation(x, 10)
	if math.Abs(r[0]-1) > 0.05 {
		t.Fatalf("R(0) = %g, want ≈1", r[0])
	}
	for lag := 1; lag <= 10; lag++ {
		if math.Abs(r[lag]) > 0.05 {
			t.Fatalf("R(%d) = %g, want ≈0", lag, r[lag])
		}
	}
}

func TestAutocorrelationCosine(t *testing.T) {
	n := 10000
	x := make([]float64, n)
	for k := range x {
		x[k] = math.Cos(2 * math.Pi * float64(k) / 100)
	}
	r := Autocorrelation(x, 100)
	// R(lag) ≈ 0.5·cos(2π·lag/100).
	for _, lag := range []int{0, 25, 50, 100} {
		want := 0.5 * math.Cos(2*math.Pi*float64(lag)/100)
		if math.Abs(r[lag]-want) > 0.02 {
			t.Fatalf("R(%d) = %g, want %g", lag, r[lag], want)
		}
	}
}

func TestSampleMomentsGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = 3 + 2*rng.NormFloat64()
	}
	m := SampleMoments(xs)
	if math.Abs(m.Mean-3) > 0.05 {
		t.Fatalf("mean %g", m.Mean)
	}
	if math.Abs(m.Variance-4) > 0.15 {
		t.Fatalf("var %g", m.Variance)
	}
	if !m.IsGaussianish(4) {
		t.Fatalf("gaussian sample rejected: skew=%g kurt=%g", m.Skewness, m.ExcessKurtosis)
	}
}

func TestSampleMomentsExponentialRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	m := SampleMoments(xs)
	if m.IsGaussianish(4) {
		t.Fatal("exponential sample accepted as Gaussian")
	}
	if m.Skewness < 1.5 {
		t.Fatalf("exponential skewness %g, want ≈2", m.Skewness)
	}
}

func TestSampleMomentsDegenerate(t *testing.T) {
	m := SampleMoments(nil)
	if m.N != 0 || m.Variance != 0 {
		t.Fatal("empty moments")
	}
	m = SampleMoments([]float64{5, 5, 5})
	if m.Variance != 0 || m.Skewness != 0 {
		t.Fatalf("constant sample: %+v", m)
	}
	if m.IsGaussianish(3) {
		t.Fatal("tiny sample must not pass")
	}
}

func TestFitLorentzianRecoversParameters(t *testing.T) {
	f0, w, pk := 100.0, 2.5, 7.0
	freqs := make([]float64, 4001)
	psd := make([]float64, 4001)
	for k := range freqs {
		f := 50 + float64(k)*0.025
		freqs[k] = f
		d := f - f0
		psd[k] = pk * w * w / (d*d + w*w)
	}
	fit, err := FitLorentzian(freqs, psd, 60, 140)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Center-f0) > 0.05 {
		t.Fatalf("center %g", fit.Center)
	}
	if math.Abs(fit.HalfWidth-w) > 0.05 {
		t.Fatalf("halfwidth %g, want %g", fit.HalfWidth, w)
	}
	if math.Abs(fit.Peak-pk) > 0.01 {
		t.Fatalf("peak %g", fit.Peak)
	}
	if math.Abs(fit.Power-math.Pi*w*pk) > 0.05*math.Pi*w*pk {
		t.Fatalf("power %g", fit.Power)
	}
}

func TestFitLorentzianErrors(t *testing.T) {
	if _, err := FitLorentzian([]float64{1, 2}, []float64{1, 2}, 0, 3); err == nil {
		t.Fatal("too-short input accepted")
	}
	// Monotone ramp: "peak" at window edge → must fail.
	freqs := []float64{1, 2, 3, 4, 5, 6}
	psd := []float64{1, 2, 3, 4, 5, 6}
	if _, err := FitLorentzian(freqs, psd, 1, 6); err == nil {
		t.Fatal("edge peak accepted")
	}
}

func TestFitLine(t *testing.T) {
	a, b := FitLine([]float64{0, 1, 2}, []float64{5, 7, 9})
	if math.Abs(a-5) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Fatalf("fit a=%g b=%g", a, b)
	}
	a, b = FitLine(nil, nil)
	if a != 0 || b != 0 {
		t.Fatal("empty fit")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("empty median")
	}
}

// Property: autocorrelation at lag 0 equals the biased variance.
func TestQuickAutocorrVariance(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, v := range xs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				clean = append(clean, v)
			}
		}
		if len(clean) < 3 {
			return true
		}
		r := Autocorrelation(clean, 0)
		mean := 0.0
		for _, v := range clean {
			mean += v
		}
		mean /= float64(len(clean))
		ss := 0.0
		for _, v := range clean {
			ss += (v - mean) * (v - mean)
		}
		want := ss / float64(len(clean))
		return math.Abs(r[0]-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: crossings are monotone increasing in time.
func TestQuickCrossingsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 200)
		for i := range x {
			x[i] = math.Sin(float64(i)*0.3) + 0.3*rng.NormFloat64()
		}
		cr := Crossings(x, 0, 0.1, 0, true)
		for i := 1; i < len(cr); i++ {
			if cr[i] <= cr[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
