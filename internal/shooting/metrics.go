package shooting

import "repro/internal/obs"

// shootingInstruments are the shooting-solver metrics. Counts are accumulated
// in locals during Find and flushed once on return (success or failure), so
// the Newton loop itself carries no atomic traffic.
type shootingInstruments struct {
	finds       *obs.Counter // pn_shooting_finds_total
	converged   *obs.Counter // pn_shooting_converged_total
	newtonIters *obs.Counter // pn_shooting_newton_iters_total
	dampings    *obs.Counter // pn_shooting_dampings_total
}

var shootingMetrics = obs.NewView(func(r *obs.Registry) *shootingInstruments {
	return &shootingInstruments{
		finds:       r.Counter("pn_shooting_finds_total", "Shooting Find calls started."),
		converged:   r.Counter("pn_shooting_converged_total", "Shooting Find calls that returned a converged periodic steady state."),
		newtonIters: r.Counter("pn_shooting_newton_iters_total", "Newton shooting iterations started."),
		dampings:    r.Counter("pn_shooting_dampings_total", "Newton step halvings (damping activations)."),
	}
})
