package shooting

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/budget"
	"repro/internal/dynsys"
	"repro/internal/linalg"
	"repro/internal/ode"
)

// BatchLane is one parameter variant in a FindBatch call: the scalar system
// (used for the adaptive pre-Newton stages and cheap per-lane evaluations),
// its initial guess, and its options. All lanes of one batch must agree on
// the solver knobs (Tol, MaxIter, StepsPerPeriod, Transient, NoDamping);
// Trace and Budget may differ per lane.
type BatchLane struct {
	Sys    dynsys.System
	X0     []float64
	TGuess float64
	Opts   *Options
}

// laneRun is the mutable per-lane Newton state inside FindBatch.
type laneRun struct {
	f       ode.Func  // scalar adapter of Sys, for settle and damping checks
	x       []float64 // current iterate (always length n, zeros while invalid)
	T       float64
	fRef    float64
	lastRes float64
	res     float64 // residual at the iteration that converged/failed
	iters   int
	err     error
	active  bool // still Newton-iterating
	done    bool // converged, awaiting the batched finish
}

func (lr *laneRun) fail(err error) {
	lr.err = err
	lr.active = false
}

// FindBatch runs Newton shooting for K parameter variants of one model
// family in lockstep. The adaptive stages that cannot be stepped in lockstep
// — transient settling and the closest-return period scan — run per lane
// through the scalar systems; every fixed-step period integration (the
// monodromy solve of each Newton iteration, the damping trial orbits, and
// the final orbit recording) runs through the batched SoA kernels at full
// width K. Converged and failed lanes keep integrating with their last state
// so the batch never repacks; their results are simply ignored, which the
// lane-diagonal kernels make harmless.
//
// For every lane that succeeds, the returned PSS is bit-identical to what
// the scalar Find would produce with the same inputs: the batch kernels
// preserve per-lane expression order, and all decision logic (residuals,
// bordered solves, damping) is the scalar code run per lane.
//
// laneErrs[k] reports lane k's failure without affecting the others. A
// non-nil batchErr (tripped batchTok, injected batch fault, or inconsistent
// lane configuration) voids the whole batch.
func FindBatch(be dynsys.BatchEvaluator, lanes []BatchLane, batchTok *budget.Token) (pss []*PSS, laneErrs []error, batchErr error) {
	K := len(lanes)
	if K == 0 {
		return nil, nil, errors.New("shooting: FindBatch of zero lanes")
	}
	if be == nil {
		return nil, nil, errors.New("shooting: FindBatch requires a batch evaluator")
	}
	n := be.Dim()
	if be.Lanes() != K {
		return nil, nil, fmt.Errorf("shooting: batch evaluator has %d lanes, got %d lane specs", be.Lanes(), K)
	}

	effs := make([]Options, K)
	for k := range lanes {
		effs[k] = lanes[k].Opts.defaults()
	}
	o := effs[0]
	for k := 1; k < K; k++ {
		e := effs[k]
		if e.Tol != o.Tol || e.MaxIter != o.MaxIter || e.StepsPerPeriod != o.StepsPerPeriod ||
			e.Transient != o.Transient || e.NoDamping != o.NoDamping {
			return nil, nil, fmt.Errorf("shooting: FindBatch lane %d disagrees with lane 0 on solver knobs; batch only compatible solves", k)
		}
	}

	start := time.Now()
	sm := shootingMetrics.Get()
	itersSum, dampSum := 0, 0
	defer func() {
		sm.newtonIters.Add(int64(itersSum))
		sm.dampings.Add(int64(dampSum))
	}()

	laneToks := make([]*budget.Token, K)
	runs := make([]*laneRun, K)
	for k := range lanes {
		sm.finds.Inc()
		laneToks[k] = effs[k].Budget
		if tr := effs[k].Trace; tr != nil {
			*tr = Trace{}
			defer func(tr *Trace) { tr.Wall = time.Since(start) }(tr) // per-lane Wall = batch wall
		}
		lr := &laneRun{x: make([]float64, n)}
		runs[k] = lr
		lane := lanes[k]
		switch {
		case lane.Sys == nil:
			lr.fail(fmt.Errorf("shooting: lane %d has no system", k))
		case lane.Sys.Dim() != n:
			lr.fail(fmt.Errorf("shooting: lane %d system dimension %d, batch dimension %d", k, lane.Sys.Dim(), n))
		case lane.TGuess <= 0:
			lr.fail(fmt.Errorf("shooting: period guess must be positive, got %g", lane.TGuess))
		case len(lane.X0) != n:
			lr.fail(fmt.Errorf("shooting: x0 has length %d, want %d", len(lane.X0), n))
		default:
			lr.f, _ = sysFunc(lane.Sys)
			lr.active = true
		}
	}

	// Per-lane adaptive pre-Newton stages, then the equilibrium guard.
	fx0 := make([]float64, n)
	fxT := make([]float64, n)
	for k, lr := range runs {
		if !lr.active {
			continue
		}
		x, T, err := settle(lr.f, lanes[k].X0, lanes[k].TGuess, effs[k], effs[k].Trace)
		if err != nil {
			lr.fail(err)
			continue
		}
		copy(lr.x, x)
		lr.T = T
		lanes[k].Sys.Eval(lr.x, fx0)
		lr.fRef = linalg.NormInfVec(fx0)
		if lr.fRef == 0 {
			lr.fail(errors.New("shooting: initial point is an equilibrium; perturb the guess"))
		}
	}

	bf := func(ts, x, dst []float64) { be.EvalBatch(x, dst) }
	bjac := func(ts, x, jac []float64) { be.JacobianBatch(x, jac) }

	xs := make([]float64, n*K)
	t1s := make([]float64, K)
	pack := func(xof func(k int) []float64, tof func(k int) float64) {
		for k := 0; k < K; k++ {
			xk := xof(k)
			for i := 0; i < n; i++ {
				xs[i*K+k] = xk[i]
			}
			t1s[k] = tof(k)
		}
	}
	curX := func(k int) []float64 { return runs[k].x }
	curT := func(k int) float64 { return runs[k].T }

	bs := linalg.NewMatrix(n+1, n+1)
	rhs := make([]float64, n+1)
	deltas := make([][]float64, K)
	xcs := make([][]float64, K)
	tcs := make([]float64, K)
	lambdas := make([]float64, K)
	for k := range xcs {
		xcs[k] = make([]float64, n)
	}
	nActive := func() int {
		c := 0
		for _, lr := range runs {
			if lr.active {
				c++
			}
		}
		return c
	}
	halve := func(k int) {
		lambdas[k] *= 0.5
		dampSum++
		if tr := effs[k].Trace; tr != nil {
			tr.Dampings++
		}
	}

	for iter := 1; iter <= o.MaxIter && nActive() > 0; iter++ {
		if err := batchTok.Err(); err != nil {
			return nil, nil, fmt.Errorf("shooting: batched Newton iteration %d: %w", iter, err)
		}
		for k, lr := range runs {
			if !lr.active {
				continue
			}
			if err := laneToks[k].Err(); err != nil {
				lr.fail(fmt.Errorf("shooting: Newton iteration %d: %w", iter, err))
				continue
			}
			// Count the iteration as soon as it starts real work, matching Find.
			lr.iters = iter
			itersSum++
			if tr := effs[k].Trace; tr != nil {
				tr.Iters = iter
			}
		}

		pack(curX, curT)
		xTs, phis, verrs, berr := ode.BatchVariational(bf, bjac, n, K, t1s, xs, o.StepsPerPeriod, nil, batchTok, laneToks)
		if berr != nil {
			return nil, nil, berr
		}

		// Per-lane residual, convergence test and bordered Newton solve.
		for k, lr := range runs {
			deltas[k] = nil
			if !lr.active {
				continue
			}
			if verrs[k] != nil {
				lr.fail(wrapIntegration(fmt.Sprintf("monodromy integration (iteration %d)", iter), verrs[k]))
				continue
			}
			xT, phi := xTs[k], phis[k]
			lanes[k].Sys.Eval(lr.x, fx0)
			lanes[k].Sys.Eval(xT, fxT)

			scale := 1 + linalg.NormInfVec(lr.x)
			res := 0.0
			for i := 0; i < n; i++ {
				if d := math.Abs(xT[i] - lr.x[i]); d > res {
					res = d
				}
			}
			res /= scale
			lr.lastRes = res
			if tr := effs[k].Trace; tr != nil {
				tr.Residual = res
				tr.Residuals = append(tr.Residuals, res)
			}
			if res < o.Tol {
				if linalg.NormInfVec(fx0) < 1e-3*lr.fRef {
					lr.fail(errors.New("shooting: converged to an equilibrium, not a limit cycle"))
					continue
				}
				lr.res = res
				lr.active = false
				lr.done = true
				continue
			}

			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v := phi.At(i, j)
					if i == j {
						v -= 1
					}
					bs.Set(i, j, v)
				}
				bs.Set(i, n, fxT[i])
				rhs[i] = lr.x[i] - xT[i]
			}
			for j := 0; j < n; j++ {
				bs.Set(n, j, fx0[j])
			}
			bs.Set(n, n, 0)
			rhs[n] = 0

			delta, err := linalg.Solve(bs, rhs)
			if err != nil {
				lr.fail(fmt.Errorf("shooting: bordered system singular at iteration %d: %w", iter, err))
				continue
			}
			deltas[k] = delta
			lr.res = res
			lambdas[k] = 1
		}

		// Lockstep damping: each round, every undecided lane either takes its
		// candidate through the cheap scalar checks (a failed check halves λ
		// and waits for the next round, exactly one halving per round as in
		// the scalar solver) or stages it for one shared full-width trial
		// integration.
		undecided := make([]bool, K)
		nUndecided := 0
		for k, lr := range runs {
			if lr.active && deltas[k] != nil {
				undecided[k] = true
				nUndecided++
			}
		}
		for try := 0; try < 6 && nUndecided > 0; try++ {
			trial := make([]bool, K)
			nTrial := 0
			for k, lr := range runs {
				if !undecided[k] {
					continue
				}
				delta := deltas[k]
				for i := 0; i < n; i++ {
					xcs[k][i] = lr.x[i] + lambdas[k]*delta[i]
				}
				tcs[k] = lr.T + lambdas[k]*delta[n]
				if tcs[k] <= 0.2*lanes[k].TGuess || tcs[k] > 5*lanes[k].TGuess {
					halve(k)
					continue
				}
				lanes[k].Sys.Eval(xcs[k], fx0)
				if linalg.NormInfVec(fx0) < 1e-3*lr.fRef {
					// Candidate is collapsing onto an equilibrium.
					halve(k)
					continue
				}
				if o.NoDamping {
					copy(lr.x, xcs[k])
					lr.T = tcs[k]
					undecided[k] = false
					nUndecided--
					continue
				}
				trial[k] = true
				nTrial++
			}
			if nTrial == 0 {
				continue
			}
			pack(
				func(k int) []float64 {
					if trial[k] {
						return xcs[k]
					}
					return runs[k].x
				},
				func(k int) float64 {
					if trial[k] {
						return tcs[k]
					}
					return runs[k].T
				},
			)
			rerrs, berr := ode.BatchRK4(bf, n, K, t1s, xs, o.StepsPerPeriod, batchTok, laneToks)
			if berr != nil {
				return nil, nil, berr
			}
			for k, lr := range runs {
				if !trial[k] {
					continue
				}
				if rerr := rerrs[k]; rerr != nil {
					if budget.Is(rerr) {
						lr.fail(fmt.Errorf("shooting: damping trial (iteration %d): %w", iter, rerr))
						undecided[k] = false
						nUndecided--
						continue
					}
					// A non-finite trial orbit is just a rejected candidate:
					// halve the step and keep looking.
					halve(k)
					continue
				}
				resc := 0.0
				for i := 0; i < n; i++ {
					if d := math.Abs(xs[i*K+k] - xcs[k][i]); d > resc {
						resc = d
					}
				}
				resc /= 1 + linalg.NormInfVec(xcs[k])
				if resc < lr.res || resc < o.Tol {
					copy(lr.x, xcs[k])
					lr.T = tcs[k]
					undecided[k] = false
					nUndecided--
					continue
				}
				halve(k)
			}
		}
		for k, lr := range runs {
			if undecided[k] && lr.active {
				lr.fail(fmt.Errorf("%w: damping failed at iteration %d (residual %.3e)", ErrNoConvergence, iter, lr.res))
			}
		}
	}
	for _, lr := range runs {
		if lr.active {
			lr.fail(fmt.Errorf("%w after %d iterations (residual %.3e)", ErrNoConvergence, o.MaxIter, lr.lastRes))
		}
	}

	// Batched finish: one full-width variational integration records the
	// dense orbit and monodromy of every converged lane.
	pss = make([]*PSS, K)
	laneErrs = make([]error, K)
	anyDone := false
	recs := make([]*ode.Trajectory, K)
	for k, lr := range runs {
		if lr.done {
			anyDone = true
			recs[k] = &ode.Trajectory{}
		}
	}
	if anyDone {
		pack(curX, curT)
		_, phis, verrs, berr := ode.BatchVariational(bf, bjac, n, K, t1s, xs, o.StepsPerPeriod, recs, batchTok, laneToks)
		if berr != nil {
			return nil, nil, berr
		}
		for k, lr := range runs {
			if !lr.done {
				continue
			}
			if verrs[k] != nil {
				lr.err = wrapIntegration("orbit recording", verrs[k])
				lr.done = false
				continue
			}
			pss[k] = &PSS{
				X0:        append([]float64(nil), lr.x...),
				T:         lr.T,
				Orbit:     recs[k],
				Monodromy: phis[k],
				Residual:  lr.res,
				Iters:     lr.iters,
				eig:       &pssEigCache{},
			}
			sm.converged.Inc()
		}
	}
	for k, lr := range runs {
		if !lr.done {
			laneErrs[k] = lr.err
		}
	}
	return pss, laneErrs, nil
}
