// Package shooting finds the periodic steady state (limit cycle) of an
// autonomous oscillator by the Newton shooting method (paper Section 9,
// step 1). Both the point on the cycle and the period are unknowns; a
// phase-anchor condition (orthogonality of the Newton update to the flow)
// removes the time-translation degeneracy.
package shooting

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/dynsys"
	"repro/internal/linalg"
	"repro/internal/ode"
)

// ErrNoConvergence is returned when Newton shooting fails to close the orbit.
var ErrNoConvergence = errors.New("shooting: Newton iteration did not converge")

// ErrIntegration tags refinable integrator-level failures surfaced through
// Find: adaptive step-size underflow, implicit-Newton divergence, and
// non-finite states from an under-resolved fixed-step integration. These are
// the failures a retry ladder can cure with more steps, tighter tolerances or
// a longer transient; the underlying ode error stays in the chain, so both
// errors.Is(err, ErrIntegration) and errors.Is(err, ode.ErrStepSizeUnderflow)
// hold. Budget cut-offs are never tagged with it.
var ErrIntegration = errors.New("shooting: trajectory integration failed")

// wrapIntegration wraps an integrator error for one named stage of Find,
// tagging refinable causes with ErrIntegration while leaving budget cut-offs
// and structural failures untagged.
func wrapIntegration(stage string, err error) error {
	if errors.Is(err, ode.ErrStepSizeUnderflow) || errors.Is(err, ode.ErrNewtonDiverged) || errors.Is(err, ode.ErrNonFinite) {
		return fmt.Errorf("shooting: %s: %w: %w", stage, ErrIntegration, err)
	}
	return fmt.Errorf("shooting: %s: %w", stage, err)
}

// Trace records per-stage diagnostics of one Find call. Attach a zero Trace
// to Options.Trace before calling Find; every field is overwritten, on
// failure as well as success, so a caller can inspect how far the solver got.
type Trace struct {
	Wall          time.Duration // total wall-clock time of Find
	TransientWall time.Duration // time spent settling onto the attractor
	TRefined      float64       // period after the closest-return scan (0 if the scan failed)
	Iters         int           // Newton iterations performed
	Residuals     []float64     // relative closure residual at the start of each iteration
	Residual      float64       // final relative closure residual
	Dampings      int           // Newton step halvings across all iterations
}

// Options configures the shooting solver.
type Options struct {
	Tol            float64 // residual tolerance, relative to state scale (default 1e-10)
	MaxIter        int     // Newton iterations (default 50)
	StepsPerPeriod int     // RK4 steps for each period integration (default 2000)
	Transient      float64 // pre-integration time in units of the period guess (default 20)
	NoDamping      bool    // disable halving Newton steps that increase the residual (damping is on by default)
	Trace          *Trace  // optional per-stage diagnostics, filled in by Find
	// Budget, when non-nil, is polled at integrator-step granularity through
	// every stage of Find; a tripped token aborts with a wrapped
	// budget.ErrCanceled/ErrBudgetExceeded and the Trace shows how far the
	// solve got.
	Budget *budget.Token
}

// Effective returns a copy of o with every unset knob resolved to the
// solver default — the options Find actually runs with. Callers that need a
// stable identity for a solve (content-addressed result caching) fingerprint
// the effective options so "nil", "zero" and "explicitly default" hash alike.
func (o *Options) Effective() Options { return o.defaults() }

func (o *Options) defaults() Options {
	out := Options{Tol: 1e-10, MaxIter: 50, StepsPerPeriod: 2000, Transient: 20}
	if o != nil {
		if o.Tol > 0 {
			out.Tol = o.Tol
		}
		if o.MaxIter > 0 {
			out.MaxIter = o.MaxIter
		}
		if o.StepsPerPeriod > 0 {
			out.StepsPerPeriod = o.StepsPerPeriod
		}
		if o.Transient > 0 {
			out.Transient = o.Transient
		}
		out.NoDamping = o.NoDamping
		out.Trace = o.Trace
		out.Budget = o.Budget
	}
	return out
}

// PSS is a converged periodic steady state.
type PSS struct {
	X0        []float64       // point on the limit cycle
	T         float64         // period
	Orbit     *ode.Trajectory // dense solution over [0, T] starting at X0
	Monodromy *linalg.Matrix  // Φ(T, 0) linearised about the orbit
	Residual  float64         // final ‖x(T)−x0‖∞ relative to state scale
	Iters     int

	// eig memoizes the monodromy eigendecomposition so that repeated Floquet
	// analyses of one PSS — e.g. retry-ladder rungs that only tightened
	// downstream tolerances — factor Φ once. The pointer keeps PSS copyable;
	// a PSS reconstructed by a decoder (nil cache) just computes fresh.
	eig *pssEigCache
}

// pssEigCache holds the lazily computed monodromy eigenvalues.
type pssEigCache struct {
	once sync.Once
	vals []complex128
	err  error
}

// MonodromyEigen returns the eigenvalues of the monodromy matrix, computing
// them at most once per PSS produced by this package. The returned slice is
// a fresh copy, safe for the caller to reorder.
func (p *PSS) MonodromyEigen() ([]complex128, error) {
	if p.eig == nil {
		return linalg.Eigenvalues(p.Monodromy)
	}
	p.eig.once.Do(func() {
		p.eig.vals, p.eig.err = linalg.Eigenvalues(p.Monodromy)
	})
	if p.eig.err != nil {
		return nil, p.eig.err
	}
	return append([]complex128(nil), p.eig.vals...), nil
}

// F0 returns the oscillation frequency 1/T.
func (p *PSS) F0() float64 { return 1 / p.T }

// Omega0 returns the angular frequency 2π/T.
func (p *PSS) Omega0() float64 { return 2 * math.Pi / p.T }

// Sample returns ns+1 uniform samples of the orbit over one period
// (the last sample equals the first up to closure error).
func (p *PSS) Sample(ns int) [][]float64 {
	out := make([][]float64, ns+1)
	n := len(p.X0)
	for k := 0; k <= ns; k++ {
		buf := make([]float64, n)
		p.Orbit.At(p.T*float64(k)/float64(ns), buf)
		out[k] = buf
	}
	return out
}

// sysFunc adapts a dynsys.System to an ode.Func / ode.JacFunc pair.
func sysFunc(sys dynsys.System) (ode.Func, ode.JacFunc) {
	f := func(t float64, x, dst []float64) { sys.Eval(x, dst) }
	j := func(t float64, x []float64, dst []float64) { sys.Jacobian(x, dst) }
	return f, j
}

// Find locates the periodic steady state starting from the initial guess
// x0 and period guess tGuess. The guess is first relaxed onto the limit
// cycle by transient integration, then polished by Newton shooting on the
// bordered system
//
//	[Φ(T,0)−I  f(x(T))] [δx0]   [x0 − x(T)]
//	[ f(x0)ᵀ      0   ] [δT ] = [    0    ]
func Find(sys dynsys.System, x0 []float64, tGuess float64, opts *Options) (*PSS, error) {
	if tGuess <= 0 {
		return nil, fmt.Errorf("shooting: period guess must be positive, got %g", tGuess)
	}
	o := opts.defaults()
	tr := o.Trace
	if tr != nil {
		*tr = Trace{}
		start := time.Now()
		defer func() { tr.Wall = time.Since(start) }()
	}
	sm := shootingMetrics.Get()
	sm.finds.Inc()
	iters, dampings := 0, 0
	defer func() {
		sm.newtonIters.Add(int64(iters))
		sm.dampings.Add(int64(dampings))
	}()
	n := sys.Dim()
	if len(x0) != n {
		return nil, fmt.Errorf("shooting: x0 has length %d, want %d", len(x0), n)
	}
	f, jac := sysFunc(sys)

	x, T, err := settle(f, x0, tGuess, o, tr)
	if err != nil {
		return nil, err
	}
	fx0 := make([]float64, n)
	// Reference flow magnitude on the cycle: used to reject Newton updates
	// that slide toward an equilibrium (where the residual is trivially zero
	// for any T and the method would "converge" to a spurious solution).
	sys.Eval(x, fx0)
	fRef := linalg.NormInfVec(fx0)
	if fRef == 0 {
		return nil, errors.New("shooting: initial point is an equilibrium; perturb the guess")
	}
	var lastRes float64
	bs := linalg.NewMatrix(n+1, n+1)
	rhs := make([]float64, n+1)
	for iter := 1; iter <= o.MaxIter; iter++ {
		if err := o.Budget.Err(); err != nil {
			return nil, fmt.Errorf("shooting: Newton iteration %d: %w", iter, err)
		}
		// Count the iteration as soon as it starts real work, so a trace from
		// a failure inside the monodromy integration still reflects it.
		iters = iter
		if tr != nil {
			tr.Iters = iter
		}
		xT, phi, verr := ode.Variational(f, jac, 0, T, x, o.StepsPerPeriod, nil, o.Budget)
		if verr != nil {
			return nil, wrapIntegration(fmt.Sprintf("monodromy integration (iteration %d)", iter), verr)
		}
		sys.Eval(x, fx0)
		fxT := make([]float64, n)
		sys.Eval(xT, fxT)

		scale := 1 + linalg.NormInfVec(x)
		res := 0.0
		for i := 0; i < n; i++ {
			if d := math.Abs(xT[i] - x[i]); d > res {
				res = d
			}
		}
		res /= scale
		lastRes = res
		if tr != nil {
			tr.Residual = res
			tr.Residuals = append(tr.Residuals, res)
		}
		if res < o.Tol {
			if linalg.NormInfVec(fx0) < 1e-3*fRef {
				return nil, errors.New("shooting: converged to an equilibrium, not a limit cycle")
			}
			pss, err := finish(sys, x, T, o, iter, res)
			if err == nil {
				sm.converged.Inc()
			}
			return pss, err
		}

		// Bordered Newton system.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := phi.At(i, j)
				if i == j {
					v -= 1
				}
				bs.Set(i, j, v)
			}
			bs.Set(i, n, fxT[i])
			rhs[i] = x[i] - xT[i]
		}
		for j := 0; j < n; j++ {
			bs.Set(n, j, fx0[j])
		}
		bs.Set(n, n, 0)
		rhs[n] = 0

		delta, err := linalg.Solve(bs, rhs)
		if err != nil {
			return nil, fmt.Errorf("shooting: bordered system singular at iteration %d: %w", iter, err)
		}

		// Damped update.
		lambda := 1.0
		applied := false
		for try := 0; try < 6; try++ {
			xc := make([]float64, n)
			for i := 0; i < n; i++ {
				xc[i] = x[i] + lambda*delta[i]
			}
			Tc := T + lambda*delta[n]
			if Tc <= 0.2*tGuess || Tc > 5*tGuess {
				lambda *= 0.5
				dampings++
				if tr != nil {
					tr.Dampings++
				}
				continue
			}
			sys.Eval(xc, fx0)
			if linalg.NormInfVec(fx0) < 1e-3*fRef {
				// Candidate is collapsing onto an equilibrium.
				lambda *= 0.5
				dampings++
				if tr != nil {
					tr.Dampings++
				}
				continue
			}
			if o.NoDamping {
				x, T = xc, Tc
				applied = true
				break
			}
			xTc, rerr := ode.RK4(f, 0, Tc, xc, o.StepsPerPeriod, o.Budget)
			if rerr != nil {
				if budget.Is(rerr) {
					return nil, fmt.Errorf("shooting: damping trial (iteration %d): %w", iter, rerr)
				}
				// A non-finite trial orbit is just a rejected candidate:
				// halve the step and keep looking.
				lambda *= 0.5
				dampings++
				if tr != nil {
					tr.Dampings++
				}
				continue
			}
			resc := 0.0
			for i := 0; i < n; i++ {
				if d := math.Abs(xTc[i] - xc[i]); d > resc {
					resc = d
				}
			}
			resc /= 1 + linalg.NormInfVec(xc)
			if resc < res || resc < o.Tol {
				x, T = xc, Tc
				applied = true
				break
			}
			lambda *= 0.5
			dampings++
			if tr != nil {
				tr.Dampings++
			}
		}
		if !applied {
			return nil, fmt.Errorf("%w: damping failed at iteration %d (residual %.3e)", ErrNoConvergence, iter, res)
		}
	}
	return nil, fmt.Errorf("%w after %d iterations (residual %.3e)", ErrNoConvergence, o.MaxIter, lastRes)
}

// settle relaxes the initial guess onto the attractor by transient
// integration and refines the period guess by a closest-return scan. It is
// the pre-Newton stage shared by Find and FindBatch: the scan integrates 2.5
// guess periods and takes the time of the closest return to x, which brings
// even a 10–30% period error within Newton's convergence basin — that
// matters for relaxation-like cycles with very stiff monodromy.
func settle(f ode.Func, x0 []float64, tGuess float64, o Options, tr *Trace) ([]float64, float64, error) {
	n := len(x0)
	x := append([]float64(nil), x0...)
	if o.Transient > 0 {
		ttr := o.Transient * tGuess
		tStart := time.Now()
		res, err := ode.DOPRI5(f, 0, ttr, x, &ode.Options{RTol: 1e-9, ATol: 1e-12, Budget: o.Budget})
		if tr != nil {
			tr.TransientWall = time.Since(tStart)
		}
		if err != nil {
			return nil, 0, wrapIntegration("transient integration", err)
		}
		x = res.X
	}

	T := tGuess
	res, err := ode.DOPRI5(f, 0, 2.5*tGuess, x, &ode.Options{RTol: 1e-10, ATol: 1e-13, Record: true, Budget: o.Budget})
	if err != nil && budget.Is(err) {
		// A numerically failed scan just falls back to tGuess, but a
		// budget cut-off must not be swallowed.
		return nil, 0, fmt.Errorf("shooting: period-refinement scan: %w", err)
	}
	if err == nil {
		// Sample the dense trajectory on a fine grid and measure the
		// distance back to the starting point.
		const grid = 4000
		buf := make([]float64, n)
		dist := make([]float64, grid+1)
		ts := make([]float64, grid+1)
		bestD, amp := math.Inf(1), 0.0
		for k := 0; k <= grid; k++ {
			tk := 2.5 * tGuess * float64(k) / grid
			res.Traj.At(tk, buf)
			d := linalg.Norm2(linalg.SubVec(buf, x))
			ts[k], dist[k] = tk, d
			if d > amp {
				amp = d
			}
			if tk >= 0.5*tGuess && d < bestD {
				bestD = d
			}
		}
		// Collect candidate returns: grid local minima well below the
		// orbit scale, each refined by ternary search on the dense
		// trajectory so grid quantization (≈ speed·Δt) cannot make one
		// return look spuriously closer than another.
		distAt := func(tt float64) float64 {
			res.Traj.At(tt, buf)
			return linalg.Norm2(linalg.SubVec(buf, x))
		}
		type candidate struct{ t, d float64 }
		var cands []candidate
		for k := 1; k < grid; k++ {
			if ts[k] < 0.5*tGuess {
				continue
			}
			if dist[k] > 0.05*amp || dist[k] > dist[k-1] || dist[k] > dist[k+1] {
				continue
			}
			lo, hi := ts[k-1], ts[k+1]
			for it := 0; it < 60; it++ {
				m1 := lo + (hi-lo)/3
				m2 := hi - (hi-lo)/3
				if distAt(m1) < distAt(m2) {
					hi = m2
				} else {
					lo = m1
				}
			}
			tm := 0.5 * (lo + hi)
			cands = append(cands, candidate{tm, distAt(tm)})
		}
		if len(cands) > 0 {
			bestD = math.Inf(1)
			for _, c := range cands {
				if c.d < bestD {
					bestD = c.d
				}
			}
			// Earliest candidate comparable to the best: the absolute
			// slack covers strongly contracting cycles, where the first
			// return is genuinely farther off-cycle than later ones yet
			// still the fundamental.
			thresh := math.Max(3*bestD, 1e-5*amp)
			for _, c := range cands {
				if c.d <= thresh {
					T = c.t
					break
				}
			}
			if tr != nil {
				tr.TRefined = T
			}
		}
	}
	return x, T, nil
}

// finish records the dense orbit and monodromy at the converged solution.
func finish(sys dynsys.System, x0 []float64, T float64, o Options, iters int, res float64) (*PSS, error) {
	f, jac := sysFunc(sys)
	rec := &ode.Trajectory{}
	_, phi, err := ode.Variational(f, jac, 0, T, x0, o.StepsPerPeriod, rec, o.Budget)
	if err != nil {
		return nil, wrapIntegration("orbit recording", err)
	}
	return &PSS{
		X0:        append([]float64(nil), x0...),
		T:         T,
		Orbit:     rec,
		Monodromy: phi,
		Residual:  res,
		Iters:     iters,
		eig:       &pssEigCache{},
	}, nil
}

// EstimatePeriod integrates the system for tMax and estimates the oscillation
// period from successive upward mean-crossings of the state component with
// the largest swing. Returns the period estimate and a point on the
// (approximate) cycle at a crossing instant. Fails if fewer than three
// crossings are seen.
func EstimatePeriod(sys dynsys.System, x0 []float64, tMax float64) (float64, []float64, error) {
	return EstimatePeriodBudget(sys, x0, tMax, nil)
}

// EstimatePeriodBudget is EstimatePeriod under a cancellation/budget token:
// the transient integration is polled per step and cut off with a wrapped
// budget error when tok trips.
func EstimatePeriodBudget(sys dynsys.System, x0 []float64, tMax float64, tok *budget.Token) (float64, []float64, error) {
	f, _ := sysFunc(sys)
	res, err := ode.DOPRI5(f, 0, tMax, x0, &ode.Options{RTol: 1e-8, ATol: 1e-11, Record: true, Budget: tok})
	if err != nil {
		return 0, nil, wrapIntegration("period-estimation integration", err)
	}
	pts := res.Traj.Points
	if len(pts) < 10 {
		return 0, nil, errors.New("shooting: trajectory too short to estimate a period")
	}
	n := sys.Dim()
	// Use the second half (transient decayed) and pick the liveliest component.
	half := len(pts) / 2
	lo := make([]float64, n)
	hi := make([]float64, n)
	for i := 0; i < n; i++ {
		lo[i], hi[i] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range pts[half:] {
		for i := 0; i < n; i++ {
			lo[i] = math.Min(lo[i], p.X[i])
			hi[i] = math.Max(hi[i], p.X[i])
		}
	}
	comp, swing := 0, 0.0
	for i := 0; i < n; i++ {
		if s := hi[i] - lo[i]; s > swing {
			comp, swing = i, s
		}
	}
	if swing == 0 {
		return 0, nil, errors.New("shooting: no oscillation detected (zero swing)")
	}
	mid := 0.5 * (lo[comp] + hi[comp])
	// Upward crossings of mid, with linear-interpolated crossing times.
	var crossings []float64
	var xAt []float64
	for k := half + 1; k < len(pts); k++ {
		a, b := pts[k-1], pts[k]
		if a.X[comp] < mid && b.X[comp] >= mid {
			frac := (mid - a.X[comp]) / (b.X[comp] - a.X[comp])
			tc := a.T + frac*(b.T-a.T)
			crossings = append(crossings, tc)
			if xAt == nil {
				xAt = make([]float64, n)
				res.Traj.At(tc, xAt)
			}
		}
	}
	if len(crossings) < 3 {
		return 0, nil, fmt.Errorf("shooting: only %d mean-crossings in %g time units; increase tMax", len(crossings), tMax)
	}
	// Average of successive crossing intervals.
	sum := 0.0
	for k := 1; k < len(crossings); k++ {
		sum += crossings[k] - crossings[k-1]
	}
	return sum / float64(len(crossings)-1), xAt, nil
}
