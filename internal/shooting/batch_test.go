package shooting

import (
	"testing"

	"repro/internal/budget"
	"repro/internal/dynsys"
	"repro/internal/osc"
)

// buildLanes assembles a batch evaluator and the matching FindBatch lanes for
// K parameter variants of one registry model.
func buildLanes(t *testing.T, model string, params []map[string]float64, opts *Options) (dynsys.BatchEvaluator, []BatchLane) {
	t.Helper()
	models := make([]*osc.BuiltModel, len(params))
	lanes := make([]BatchLane, len(params))
	for k, p := range params {
		bm, err := osc.Build(model, p)
		if err != nil {
			t.Fatal(err)
		}
		models[k] = bm
		lanes[k] = BatchLane{Sys: bm.Sys, X0: bm.X0, TGuess: bm.TGuess, Opts: opts}
	}
	be, err := osc.BatchOf(models)
	if err != nil {
		t.Fatal(err)
	}
	return be, lanes
}

// samePSS fails the test unless a and b are bit-identical solutions.
func samePSS(t *testing.T, label string, a, b *PSS) {
	t.Helper()
	if a.T != b.T {
		t.Fatalf("%s: T batch %v, scalar %v", label, a.T, b.T)
	}
	if a.Residual != b.Residual || a.Iters != b.Iters {
		t.Fatalf("%s: residual/iters batch (%v, %d), scalar (%v, %d)", label, a.Residual, a.Iters, b.Residual, b.Iters)
	}
	for i := range b.X0 {
		if a.X0[i] != b.X0[i] {
			t.Fatalf("%s: X0[%d] batch %v, scalar %v", label, i, a.X0[i], b.X0[i])
		}
	}
	for i := range b.Monodromy.Data {
		if a.Monodromy.Data[i] != b.Monodromy.Data[i] {
			t.Fatalf("%s: monodromy[%d] batch %v, scalar %v", label, i, a.Monodromy.Data[i], b.Monodromy.Data[i])
		}
	}
	if len(a.Orbit.Points) != len(b.Orbit.Points) {
		t.Fatalf("%s: orbit knots batch %d, scalar %d", label, len(a.Orbit.Points), len(b.Orbit.Points))
	}
	for p := range b.Orbit.Points {
		ap, bp := a.Orbit.Points[p], b.Orbit.Points[p]
		if ap.T != bp.T {
			t.Fatalf("%s: orbit knot %d at t batch %v, scalar %v", label, p, ap.T, bp.T)
		}
		for i := range bp.X {
			if ap.X[i] != bp.X[i] || ap.DX[i] != bp.DX[i] {
				t.Fatalf("%s: orbit knot %d component %d differs", label, p, i)
			}
		}
	}
}

// TestFindBatchMatchesScalarBitwise proves every lane of a lockstep batched
// shooting solve reproduces the scalar Find bit for bit — solution point,
// period, monodromy, residual history and the dense recorded orbit — across
// batch widths and both natively vectorised model families.
func TestFindBatchMatchesScalarBitwise(t *testing.T) {
	opts := &Options{Transient: 5, StepsPerPeriod: 600}
	cases := []struct {
		model  string
		params []map[string]float64
	}{
		{"hopf", []map[string]float64{{}}},
		{"hopf", []map[string]float64{{}, {"lambda": 2, "omega": 3e6}, {"omega": 5e6}}},
		{"hopf", []map[string]float64{
			{}, {"lambda": 0.5}, {"lambda": 2}, {"lambda": 4},
			{"omega": 2e6}, {"omega": 3e6}, {"omega": 5e6}, {"lambda": 2, "omega": 2e6},
		}},
		{"vanderpol", []map[string]float64{{"mu": 0.4}, {"mu": 1}, {"mu": 1.6}}},
	}
	for _, tc := range cases {
		be, lanes := buildLanes(t, tc.model, tc.params, opts)
		got, laneErrs, batchErr := FindBatch(be, lanes, nil)
		if batchErr != nil {
			t.Fatalf("%s/K=%d: %v", tc.model, len(lanes), batchErr)
		}
		for k, lane := range lanes {
			label := tc.model + "/lane " + string(rune('0'+k))
			want, err := Find(lane.Sys, lane.X0, lane.TGuess, opts)
			if err != nil {
				t.Fatalf("%s: scalar Find: %v", label, err)
			}
			if laneErrs[k] != nil {
				t.Fatalf("%s: batched lane failed: %v", label, laneErrs[k])
			}
			samePSS(t, label, got[k], want)
		}
	}
}

// TestFindBatchLaneIsolation injects per-lane failures — an invalid guess and
// a pre-tripped lane budget — and checks the healthy lane still matches the
// scalar solve exactly.
func TestFindBatchLaneIsolation(t *testing.T) {
	opts := &Options{Transient: 5, StepsPerPeriod: 600}
	be, lanes := buildLanes(t, "hopf", []map[string]float64{{}, {"lambda": 2}, {"omega": 3e6}}, opts)

	lanes[0].TGuess = -1 // invalid before any integration
	tok, cancel := budget.WithCancel(nil)
	cancel()
	budOpts := *opts
	budOpts.Budget = tok
	lanes[2].Opts = &budOpts // budget already spent: dies in the transient

	got, laneErrs, batchErr := FindBatch(be, lanes, nil)
	if batchErr != nil {
		t.Fatal(batchErr)
	}
	if laneErrs[0] == nil || got[0] != nil {
		t.Fatal("negative period guess lane did not fail")
	}
	if laneErrs[2] == nil || !budget.Is(laneErrs[2]) {
		t.Fatalf("budgeted lane error = %v, want a budget cut-off", laneErrs[2])
	}
	want, err := Find(lanes[1].Sys, lanes[1].X0, lanes[1].TGuess, opts)
	if err != nil {
		t.Fatal(err)
	}
	if laneErrs[1] != nil {
		t.Fatalf("healthy lane failed: %v", laneErrs[1])
	}
	samePSS(t, "surviving lane", got[1], want)
}

func TestFindBatchRejectsMismatchedKnobs(t *testing.T) {
	be, lanes := buildLanes(t, "hopf", []map[string]float64{{}, {"lambda": 2}}, nil)
	lanes[1].Opts = &Options{Tol: 1e-6}
	if _, _, err := FindBatch(be, lanes, nil); err == nil {
		t.Fatal("lanes with different tolerances were batched")
	}
}

// TestMonodromyEigenMemoized checks the PSS eigendecomposition cache: two
// calls agree, and callers get private copies they may reorder freely.
func TestMonodromyEigenMemoized(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 1}
	pss, err := Find(h, []float64{0.8, 0.1}, 6.0, &Options{Transient: 5, StepsPerPeriod: 600})
	if err != nil {
		t.Fatal(err)
	}
	if pss.eig == nil {
		t.Fatal("Find returned a PSS without an eigen cache")
	}
	first, err := pss.MonodromyEigen()
	if err != nil {
		t.Fatal(err)
	}
	first[0] = complex(42, 42) // must not leak into the cache
	second, err := pss.MonodromyEigen()
	if err != nil {
		t.Fatal(err)
	}
	if second[0] == complex(42, 42) {
		t.Fatal("MonodromyEigen returned a shared slice")
	}
	// A decoded PSS (nil cache) still answers.
	bare := &PSS{Monodromy: pss.Monodromy}
	vals, err := bare.MonodromyEigen()
	if err != nil || len(vals) != len(second) {
		t.Fatalf("cacheless MonodromyEigen: %v (%d values)", err, len(vals))
	}
	for i := range vals {
		if vals[i] != second[i] {
			t.Fatalf("cacheless eigenvalues differ at %d: %v vs %v", i, vals[i], second[i])
		}
	}
}
