package shooting

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/osc"
)

func TestFindHopfExactPeriod(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi} // T = 1 exactly
	pss, err := Find(h, []float64{0.8, 0.1}, 0.9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pss.T-1) > 1e-8 {
		t.Fatalf("T = %.12g, want 1", pss.T)
	}
	// The converged point must lie on the unit circle.
	r := math.Hypot(pss.X0[0], pss.X0[1])
	if math.Abs(r-1) > 1e-8 {
		t.Fatalf("|x0| = %g, want 1", r)
	}
	if pss.Residual > 1e-9 {
		t.Fatalf("residual %g", pss.Residual)
	}
}

func TestFindHopfMonodromyMultipliers(t *testing.T) {
	h := &osc.Hopf{Lambda: 0.5, Omega: 3}
	pss, err := Find(h, []float64{1.2, 0}, 2*math.Pi/3*1.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Monodromy eigenvalues: 1 and exp(−4πλ/ω); check via trace & det.
	phi := pss.Monodromy
	tr := phi.At(0, 0) + phi.At(1, 1)
	det := phi.At(0, 0)*phi.At(1, 1) - phi.At(0, 1)*phi.At(1, 0)
	m2 := h.ExactSecondMultiplier()
	if math.Abs(tr-(1+m2)) > 1e-5 {
		t.Fatalf("trace = %g, want %g", tr, 1+m2)
	}
	if math.Abs(det-m2) > 1e-5 {
		t.Fatalf("det = %g, want %g", det, m2)
	}
}

func TestFindVanDerPolSmallMu(t *testing.T) {
	v := &osc.VanDerPol{Mu: 0.2}
	pss, err := Find(v, []float64{2, 0}, 2*math.Pi, nil)
	if err != nil {
		t.Fatal(err)
	}
	// T ≈ 2π(1 + μ²/16) to O(μ⁴).
	want := 2 * math.Pi * (1 + 0.2*0.2/16)
	if math.Abs(pss.T-want) > 2e-3 {
		t.Fatalf("T = %g, want ≈ %g", pss.T, want)
	}
	// Amplitude close to 2 for small mu.
	maxAmp := 0.0
	for _, s := range pss.Sample(200) {
		if a := math.Abs(s[0]); a > maxAmp {
			maxAmp = a
		}
	}
	if math.Abs(maxAmp-2) > 0.05 {
		t.Fatalf("amplitude = %g, want ≈ 2", maxAmp)
	}
}

func TestFindVanDerPolStiffer(t *testing.T) {
	v := &osc.VanDerPol{Mu: 3}
	pss, err := Find(v, []float64{2, 0}, 8, &Options{StepsPerPeriod: 6000})
	if err != nil {
		t.Fatal(err)
	}
	// Asymptotic relaxation period ≈ (3−2ln2)μ for large μ; for μ=3 the
	// true period is ≈ 8.86 (known numerical value).
	if pss.T < 8 || pss.T > 10 {
		t.Fatalf("T = %g, expected ≈ 8.9", pss.T)
	}
}

func TestOrbitClosure(t *testing.T) {
	h := &osc.Hopf{Lambda: 2, Omega: 5}
	pss, err := Find(h, []float64{0.5, -0.5}, 1.3, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := make([]float64, 2)
	end := make([]float64, 2)
	pss.Orbit.At(0, start)
	pss.Orbit.At(pss.T, end)
	if math.Hypot(end[0]-start[0], end[1]-start[1]) > 1e-8 {
		t.Fatalf("orbit not closed: %v vs %v", start, end)
	}
}

func TestPSSAccessors(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi}
	pss, err := Find(h, []float64{1, 0}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pss.F0()-1) > 1e-8 {
		t.Fatalf("F0 = %g", pss.F0())
	}
	if math.Abs(pss.Omega0()-2*math.Pi) > 1e-7 {
		t.Fatalf("Omega0 = %g", pss.Omega0())
	}
	s := pss.Sample(16)
	if len(s) != 17 {
		t.Fatalf("Sample returned %d points", len(s))
	}
}

func TestFindRejectsBadGuess(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 1}
	if _, err := Find(h, []float64{1, 0}, -1, nil); err == nil {
		t.Fatal("expected error for negative period guess")
	}
	if _, err := Find(h, []float64{1, 0, 0}, 1, nil); err == nil {
		t.Fatal("expected error for dimension mismatch")
	}
}

func TestFindFromOrigin(t *testing.T) {
	// The origin is an unstable equilibrium of the Hopf system; the
	// transient phase must carry the state to the cycle... but exactly at
	// the origin f = 0 and the trajectory stays there. A slightly offset
	// start must converge.
	h := &osc.Hopf{Lambda: 1, Omega: 6}
	pss, err := Find(h, []float64{1e-3, 0}, 1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pss.T-2*math.Pi/6) > 1e-7 {
		t.Fatalf("T = %g", pss.T)
	}
}

func TestEstimatePeriodHopf(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi}
	T, x, err := EstimatePeriod(h, []float64{0.3, 0}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(T-1) > 0.02 {
		t.Fatalf("estimated T = %g, want ≈1", T)
	}
	if len(x) != 2 {
		t.Fatalf("crossing point %v", x)
	}
	// The crossing point should be near the unit circle.
	if r := math.Hypot(x[0], x[1]); math.Abs(r-1) > 0.05 {
		t.Fatalf("crossing point radius %g", r)
	}
}

func TestEstimatePeriodVanDerPol(t *testing.T) {
	v := &osc.VanDerPol{Mu: 1}
	T, _, err := EstimatePeriod(v, []float64{0.1, 0}, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Known numerical period for μ=1 is ≈ 6.6633.
	if math.Abs(T-6.6633) > 0.05 {
		t.Fatalf("estimated T = %g, want ≈6.66", T)
	}
}

func TestEstimatePeriodFailsOnEquilibrium(t *testing.T) {
	// Start exactly at the (unstable) equilibrium: no crossings.
	h := &osc.Hopf{Lambda: 1, Omega: 1}
	if _, _, err := EstimatePeriod(h, []float64{0, 0}, 10); err == nil {
		t.Fatal("expected failure at equilibrium")
	}
}

func TestShootingThenEstimateConsistency(t *testing.T) {
	v := &osc.VanDerPol{Mu: 0.7}
	Test, x0, err := EstimatePeriod(v, []float64{1, 0}, 50)
	if err != nil {
		t.Fatal(err)
	}
	pss, err := Find(v, x0, Test, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pss.T-Test) > 0.05*Test {
		t.Fatalf("shooting T=%g far from estimate %g", pss.T, Test)
	}
}

// Regression: a caller that passes a partial Options (setting only Tol)
// must NOT silently lose the default-on Newton damping. Before the
// tri-state fix, defaults() copied the damping flag verbatim from the
// caller struct, so any non-nil Options disabled damping.
func TestPartialOptionsKeepDampingEnabled(t *testing.T) {
	d := (&Options{Tol: 1e-8}).defaults()
	if d.NoDamping {
		t.Fatal("partial Options{Tol: ...} disabled Newton damping; damping must stay on by default")
	}
	d = (&Options{NoDamping: true}).defaults()
	if !d.NoDamping {
		t.Fatal("explicit NoDamping was not honoured")
	}
}

func TestNoDampingStillConvergesOnHopf(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi}
	pss, err := Find(h, []float64{0.8, 0.1}, 0.9, &Options{NoDamping: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pss.T-1) > 1e-8 {
		t.Fatalf("T = %g, want 1", pss.T)
	}
}

func TestTraceRecordsConvergenceHistory(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi}
	var tr Trace
	pss, err := Find(h, []float64{0.8, 0.1}, 0.9, &Options{Trace: &tr})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Iters != pss.Iters {
		t.Fatalf("trace iters %d, pss iters %d", tr.Iters, pss.Iters)
	}
	if len(tr.Residuals) != tr.Iters {
		t.Fatalf("%d residuals for %d iterations", len(tr.Residuals), tr.Iters)
	}
	if tr.Residual != pss.Residual {
		t.Fatalf("trace residual %g, pss residual %g", tr.Residual, pss.Residual)
	}
	if tr.Wall <= 0 {
		t.Fatalf("wall time %v not recorded", tr.Wall)
	}
	if tr.TransientWall <= 0 {
		t.Fatalf("transient wall time %v not recorded", tr.TransientWall)
	}
	if tr.TRefined <= 0 {
		t.Fatalf("refined period %g not recorded", tr.TRefined)
	}
	// The trace must be reset between calls.
	if _, err := Find(h, []float64{1, 0}, 1, &Options{Trace: &tr, Transient: 1}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Residuals) > tr.Iters {
		t.Fatalf("stale residual history: %d entries for %d iterations", len(tr.Residuals), tr.Iters)
	}
}

func TestFindCanceledBudget(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi}
	tok, cancel := budget.WithCancel(nil)
	cancel()
	_, err := Find(h, []float64{0.8, 0.1}, 0.9, &Options{Budget: tok})
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}

func TestFindBudgetTimeoutPrompt(t *testing.T) {
	// An expired deadline must cut Find off at integrator-step granularity:
	// the call returns almost immediately with the typed error and the
	// trace shows it never reached the Newton iteration.
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi}
	var tr Trace
	start := time.Now()
	_, err := Find(h, []float64{0.8, 0.1}, 0.9, &Options{
		Budget: budget.WithTimeout(nil, 0),
		Trace:  &tr,
	})
	if !errors.Is(err, budget.ErrBudgetExceeded) {
		t.Fatalf("got %v, want ErrBudgetExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cut-off took %v", elapsed)
	}
	if tr.Iters != 0 {
		t.Fatalf("Newton ran %d iterations past an expired budget", tr.Iters)
	}
}

func TestEstimatePeriodBudget(t *testing.T) {
	h := &osc.Hopf{Lambda: 1, Omega: 2 * math.Pi}
	tok, cancel := budget.WithCancel(nil)
	cancel()
	_, _, err := EstimatePeriodBudget(h, []float64{1, 0}, 20, tok)
	if !errors.Is(err, budget.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
}
