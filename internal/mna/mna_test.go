package mna

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dynsys"
	"repro/internal/ode"
	"repro/internal/osc"
)

// buildRC returns a simple RC decay circuit: 1 µF node cap, 1 kΩ to ground.
func buildRC(t *testing.T) *System {
	t.Helper()
	c := New()
	c.Capacitor("out", Ground, 1e-6)
	c.Resistor("out", Ground, 1000)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRCDecayTimeConstant(t *testing.T) {
	sys := buildRC(t)
	if sys.Dim() != 1 {
		t.Fatalf("dim %d", sys.Dim())
	}
	// dv/dt = −v/(RC): integrate one time constant.
	f := func(tt float64, x, dst []float64) { sys.Eval(x, dst) }
	x, err := ode.RK4(f, 0, 1e-3, []float64{1}, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-math.Exp(-1)) > 1e-6 {
		t.Fatalf("v(τ) = %g, want e⁻¹", x[0])
	}
}

func TestLCResonance(t *testing.T) {
	// Parallel LC: f0 = 1/(2π√(LC)).
	c := New()
	c.Capacitor("out", Ground, 1e-9)
	c.Inductor("out", Ground, 1e-3)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Dim() != 2 {
		t.Fatalf("dim %d", sys.Dim())
	}
	f := func(tt float64, x, dst []float64) { sys.Eval(x, dst) }
	f0 := 1 / (2 * math.Pi * math.Sqrt(1e-3*1e-9))
	T := 1 / f0
	// Start with 1 V on the cap; after one full period it must return.
	x, err := ode.RK4(f, 0, T, []float64{1, 0}, 20000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-6 || math.Abs(x[1]) > 1e-9 {
		t.Fatalf("after one period: %v", x)
	}
}

func TestJacobianMatchesFiniteDifference(t *testing.T) {
	// A circuit with every element type.
	c := New()
	c.Capacitor("a", Ground, 1e-9)
	c.Capacitor("b", Ground, 2e-9)
	c.Capacitor("a", "b", 0.5e-9)
	c.Resistor("a", "b", 500)
	c.Resistor("b", Ground, 1000)
	c.Inductor("a", Ground, 1e-6)
	c.VCCS("b", Ground, "a", Ground, 1e-3)
	c.NonlinearVCCS("a", Ground, "b", Ground,
		func(v float64) float64 { return 1e-3 * math.Tanh(v/0.1) },
		func(v float64) float64 { s := 1 / math.Cosh(v/0.1); return 1e-2 * s * s })
	c.CurrentSource("a", Ground, 1e-4)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.05, -0.03, 1e-4}
	maxd := dynsys.CheckJacobian(sys, x)
	jac := make([]float64, 9)
	sys.Jacobian(x, jac)
	scale := 0.0
	for _, v := range jac {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if maxd > 1e-3*(1+scale) {
		t.Fatalf("jacobian mismatch %g (scale %g)", maxd, scale)
	}
}

func TestDCCurrentSourceEquilibrium(t *testing.T) {
	// I into R ⇒ equilibrium v = I·R.
	c := New()
	c.Capacitor("out", Ground, 1e-9)
	c.Resistor("out", Ground, 2000)
	c.CurrentSource(Ground, "out", 1e-3) // 1 mA into "out"
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := func(tt float64, x, dst []float64) { sys.Eval(x, dst) }
	x, err := ode.RK4(f, 0, 1e-4, []float64{0}, 10000, nil) // ≫ RC = 2 µs
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-6 {
		t.Fatalf("equilibrium %g V, want 2", x[0])
	}
}

func TestThermalNoiseColumns(t *testing.T) {
	c := New()
	c.Capacitor("out", Ground, 1e-9)
	c.Resistor("out", Ground, 1000)
	c.EnableThermalNoise(300)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumNoise() != 1 {
		t.Fatalf("%d noise columns", sys.NumNoise())
	}
	b := make([]float64, 1)
	sys.Noise([]float64{0}, b)
	// Column = √(2kT/R)/C.
	want := math.Sqrt(2*dynsys.BoltzmannK*300/1000) / 1e-9
	if math.Abs(b[0]-(-want)) > 1e-6*want && math.Abs(b[0]-want) > 1e-6*want {
		t.Fatalf("thermal column %g, want ±%g", b[0], want)
	}
	if sys.NoiseLabels()[0] != "thermal:out-0" {
		t.Fatalf("label %q", sys.NoiseLabels()[0])
	}
}

func TestNodeBookkeeping(t *testing.T) {
	c := New()
	c.Capacitor("x", Ground, 1e-9)
	c.Capacitor("y", "gnd", 1e-9)
	c.Resistor("x", "y", 100)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.NodeIndex("x") != 0 || sys.NodeIndex("y") != 1 || sys.NodeIndex("nope") != -1 {
		t.Fatalf("node indices: %d %d %d", sys.NodeIndex("x"), sys.NodeIndex("y"), sys.NodeIndex("nope"))
	}
	if len(sys.NodeNames()) != 2 {
		t.Fatal("node names")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := New().Build(); err == nil {
		t.Fatal("empty circuit accepted")
	}
	// Node without capacitive path ⇒ singular mass matrix.
	c := New()
	c.Capacitor("a", Ground, 1e-9)
	c.Resistor("a", "floating", 100)
	c.Resistor("floating", Ground, 100)
	if _, err := c.Build(); err == nil {
		t.Fatal("singular mass matrix accepted")
	}
}

func TestElementValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive resistor")
		}
	}()
	New().Resistor("a", "b", 0)
}

// The flagship MNA test: build the paper's Figure-1 bandpass oscillator as
// a netlist and verify it reproduces the hand-written model's f0 and c.
func TestBandpassNetlistMatchesHandModel(t *testing.T) {
	ref := osc.NewBandpassPaper()

	c := New()
	c.Capacitor("out", Ground, ref.C)
	c.Resistor("out", Ground, ref.R)
	c.Inductor("out", Ground, ref.L)
	c.NonlinearVCCS(Ground, "out", "out", Ground, // injects +I(v) INTO "out"
		func(v float64) float64 { return ref.Icomp * math.Tanh(v/ref.Vc) },
		func(v float64) float64 {
			s := 1 / math.Cosh(v/ref.Vc)
			return ref.Icomp / ref.Vc * s * s
		})
	c.CurrentNoise("out", Ground, math.Sqrt(ref.SI), "external")
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Dim() != 2 {
		t.Fatalf("dim %d", sys.Dim())
	}

	res, err := core.Characterise(sys, []float64{0.1, 0}, 1/6660.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := core.Characterise(ref, []float64{0.1, 0}, 1/6660.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.F0()-refRes.F0()) > 1e-6*refRes.F0() {
		t.Fatalf("netlist f0 %g vs model %g", res.F0(), refRes.F0())
	}
	if math.Abs(res.C-refRes.C) > 1e-6*refRes.C {
		t.Fatalf("netlist c %g vs model %g", res.C, refRes.C)
	}
}

// And a netlist-built negative-resistance LC VCO characterised end-to-end.
func TestNegResVCONetlist(t *testing.T) {
	f0 := 1e8
	l := 5e-9
	cap := 1 / (math.Pow(2*math.Pi*f0, 2) * l)
	g := 2 * math.Pi * f0 * cap / 8 // Q = 8
	c := New()
	c.Capacitor("tank", Ground, cap)
	c.Inductor("tank", Ground, l)
	c.Resistor("tank", Ground, 1/g)
	gm := 3 * g
	vs := 0.2
	c.NonlinearVCCS(Ground, "tank", "tank", Ground,
		func(v float64) float64 { return gm * vs * math.Tanh(v/vs) },
		func(v float64) float64 { s := 1 / math.Cosh(v/vs); return gm * s * s })
	c.EnableThermalNoise(300)
	sys, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Characterise(sys, []float64{0.01, 0}, 1/f0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.F0() < 0.8*f0 || res.F0() > 1.1*f0 {
		t.Fatalf("VCO f0 = %g", res.F0())
	}
	if res.C <= 0 {
		t.Fatal("c must be positive with thermal noise enabled")
	}
	// Single noise column (one resistor), fraction 1.
	if len(res.PerSource) != 1 || math.Abs(res.PerSource[0].Fraction-1) > 1e-12 {
		t.Fatalf("per-source: %+v", res.PerSource)
	}
}
