// Package mna is a small circuit-netlist substrate: it assembles the state
// equations of a lumped electrical circuit (nodal analysis with explicit
// capacitor/inductor states) into a dynsys.System that the phase-noise
// pipeline can characterise directly. It is the practical counterpart of
// the paper's footnote 1, which notes the theory extends from the ODE form
// ẋ = f(x) to the circuit (MNA) formulation — here the constant mass matrix
// M = blockdiag(C_nodes, L_inductors) is factored once and folded into f,
// its Jacobian, and the noise map.
//
// Supported elements: resistors (with optional thermal noise), capacitors,
// inductors, DC current sources, linear and nonlinear voltage-controlled
// current sources, and explicit white current-noise sources. Every node
// must have a capacitive path to ground so that M is nonsingular (a
// state-space, index-0 formulation).
package mna

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dynsys"
	"repro/internal/linalg"
)

// Ground is the reference node name; it carries no state.
const Ground = "0"

type resistor struct {
	a, b  int
	g     float64 // conductance
	label string
}

type capacitor struct {
	a, b int
	c    float64
}

type inductor struct {
	a, b  int
	l     float64
	state int // index of the inductor-current state
}

type vccs struct {
	outP, outN, ctrlP, ctrlN int
	gm                       float64
}

type nlVCCS struct {
	outP, outN, ctrlP, ctrlN int
	i                        func(v float64) float64
	di                       func(v float64) float64
}

type isource struct {
	a, b int
	amps float64
}

type inoise struct {
	a, b  int
	mag   float64 // √(two-sided PSD), A/√Hz
	label string
}

// Circuit accumulates netlist elements; call Build to freeze it into a
// dynsys.System.
type Circuit struct {
	names      []string
	index      map[string]int
	resistors  []resistor
	capacitors []capacitor
	inductors  []inductor
	vccss      []vccs
	nlvccss    []nlVCCS
	isources   []isource
	inoises    []inoise
	thermalK   float64 // > 0 ⇒ resistor thermal noise at this temperature
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{index: map[string]int{}}
}

// node interns a node name; Ground maps to -1.
func (c *Circuit) node(name string) int {
	if name == Ground || name == "gnd" || name == "GND" {
		return -1
	}
	if i, ok := c.index[name]; ok {
		return i
	}
	i := len(c.names)
	c.names = append(c.names, name)
	c.index[name] = i
	return i
}

// Resistor adds R ohms between nodes a and b.
func (c *Circuit) Resistor(a, b string, ohms float64) {
	if ohms <= 0 {
		panic(fmt.Sprintf("mna: resistor %s-%s must be positive, got %g", a, b, ohms))
	}
	c.resistors = append(c.resistors, resistor{c.node(a), c.node(b), 1 / ohms, a + "-" + b})
}

// Capacitor adds C farads between nodes a and b.
func (c *Circuit) Capacitor(a, b string, farads float64) {
	if farads <= 0 {
		panic(fmt.Sprintf("mna: capacitor %s-%s must be positive, got %g", a, b, farads))
	}
	c.capacitors = append(c.capacitors, capacitor{c.node(a), c.node(b), farads})
}

// Inductor adds L henries between nodes a and b; its current (flowing
// a → b) becomes an extra state variable.
func (c *Circuit) Inductor(a, b string, henries float64) {
	if henries <= 0 {
		panic(fmt.Sprintf("mna: inductor %s-%s must be positive, got %g", a, b, henries))
	}
	c.inductors = append(c.inductors, inductor{a: c.node(a), b: c.node(b), l: henries})
}

// VCCS adds a linear transconductance: current gm·(v(ctrlP)−v(ctrlN))
// flows from outP to outN.
func (c *Circuit) VCCS(outP, outN, ctrlP, ctrlN string, gm float64) {
	c.vccss = append(c.vccss, vccs{c.node(outP), c.node(outN), c.node(ctrlP), c.node(ctrlN), gm})
}

// NonlinearVCCS adds a nonlinear transconductance i(v_ctrl) from outP to
// outN; di must be the exact derivative of i.
func (c *Circuit) NonlinearVCCS(outP, outN, ctrlP, ctrlN string, i, di func(v float64) float64) {
	c.nlvccss = append(c.nlvccss, nlVCCS{c.node(outP), c.node(outN), c.node(ctrlP), c.node(ctrlN), i, di})
}

// CurrentSource adds a DC current flowing from a to b (out of a, into b).
func (c *Circuit) CurrentSource(a, b string, amps float64) {
	c.isources = append(c.isources, isource{c.node(a), c.node(b), amps})
}

// CurrentNoise adds an explicit white current-noise source between a and b
// with the given √(two-sided PSD) magnitude (A/√Hz).
func (c *Circuit) CurrentNoise(a, b string, mag float64, label string) {
	c.inoises = append(c.inoises, inoise{c.node(a), c.node(b), mag, label})
}

// EnableThermalNoise adds one thermal-noise column per resistor (two-sided
// PSD 2kT/R) when the circuit is built.
func (c *Circuit) EnableThermalNoise(tempK float64) { c.thermalK = tempK }

// System is the frozen state-space form of a circuit: states are the node
// voltages followed by the inductor currents, with the constant mass matrix
// already folded in (ẋ = M⁻¹·g(x)).
type System struct {
	nNodes int
	names  []string
	minv   *linalg.Matrix // M⁻¹ (dense; circuits here are small)
	ckt    *Circuit
	labels []string
	nCols  int
	// scratch
}

// Build freezes the netlist. It fails if the mass matrix is singular
// (some node has no capacitive path to ground).
func (c *Circuit) Build() (*System, error) {
	nv := len(c.names)
	if nv == 0 {
		return nil, errors.New("mna: empty circuit")
	}
	for i := range c.inductors {
		c.inductors[i].state = nv + i
	}
	n := nv + len(c.inductors)
	// Mass matrix: node-capacitance block plus inductor inductances.
	m := linalg.NewMatrix(n, n)
	for _, cp := range c.capacitors {
		if cp.a >= 0 {
			m.Set(cp.a, cp.a, m.At(cp.a, cp.a)+cp.c)
		}
		if cp.b >= 0 {
			m.Set(cp.b, cp.b, m.At(cp.b, cp.b)+cp.c)
		}
		if cp.a >= 0 && cp.b >= 0 {
			m.Set(cp.a, cp.b, m.At(cp.a, cp.b)-cp.c)
			m.Set(cp.b, cp.a, m.At(cp.b, cp.a)-cp.c)
		}
	}
	for _, ind := range c.inductors {
		m.Set(ind.state, ind.state, ind.l)
	}
	minv, err := linalg.Inverse(m)
	if err != nil {
		return nil, fmt.Errorf("mna: singular mass matrix (every node needs a capacitive path to ground): %w", err)
	}
	s := &System{nNodes: nv, names: append([]string(nil), c.names...), minv: minv, ckt: c}
	for _, ns := range c.inoises {
		s.labels = append(s.labels, ns.label)
	}
	if c.thermalK > 0 {
		for _, r := range c.resistors {
			s.labels = append(s.labels, "thermal:"+r.label)
		}
	}
	s.nCols = len(s.labels)
	return s, nil
}

// Dim implements dynsys.System.
func (s *System) Dim() int { return s.nNodes + len(s.ckt.inductors) }

// NodeNames returns the voltage-state names in state order.
func (s *System) NodeNames() []string { return s.names }

// NodeIndex returns the state index of a named node, or -1.
func (s *System) NodeIndex(name string) int {
	if i, ok := s.ckt.index[name]; ok {
		return i
	}
	return -1
}

// currents accumulates the raw current/voltage balance g(x) before the
// mass-matrix solve: for node rows, the net current INTO the node; for
// inductor rows, the branch voltage v(a) − v(b).
func (s *System) currents(x, g []float64) {
	for i := range g {
		g[i] = 0
	}
	volt := func(node int) float64 {
		if node < 0 {
			return 0
		}
		return x[node]
	}
	add := func(node int, i float64) {
		if node >= 0 {
			g[node] += i
		}
	}
	for _, r := range s.ckt.resistors {
		i := r.g * (volt(r.a) - volt(r.b))
		add(r.a, -i)
		add(r.b, i)
	}
	for _, v := range s.ckt.vccss {
		i := v.gm * (volt(v.ctrlP) - volt(v.ctrlN))
		add(v.outP, -i)
		add(v.outN, i)
	}
	for _, v := range s.ckt.nlvccss {
		i := v.i(volt(v.ctrlP) - volt(v.ctrlN))
		add(v.outP, -i)
		add(v.outN, i)
	}
	for _, src := range s.ckt.isources {
		add(src.a, -src.amps)
		add(src.b, src.amps)
	}
	for _, ind := range s.ckt.inductors {
		il := x[ind.state]
		add(ind.a, -il)
		add(ind.b, il)
		g[ind.state] = volt(ind.a) - volt(ind.b)
	}
}

// Eval implements dynsys.System: ẋ = M⁻¹·g(x).
func (s *System) Eval(x, dst []float64) {
	g := make([]float64, s.Dim())
	s.currents(x, g)
	copy(dst, s.minv.MulVec(g))
}

// Jacobian implements dynsys.System: ∂ẋ/∂x = M⁻¹·∂g/∂x.
func (s *System) Jacobian(x []float64, dst []float64) {
	n := s.Dim()
	jg := linalg.NewMatrix(n, n)
	volt := func(node int) float64 {
		if node < 0 {
			return 0
		}
		return x[node]
	}
	stamp := func(row, col int, v float64) {
		if row >= 0 && col >= 0 {
			jg.Set(row, col, jg.At(row, col)+v)
		}
	}
	for _, r := range s.ckt.resistors {
		stamp(r.a, r.a, -r.g)
		stamp(r.a, r.b, r.g)
		stamp(r.b, r.a, r.g)
		stamp(r.b, r.b, -r.g)
	}
	for _, v := range s.ckt.vccss {
		stamp(v.outP, v.ctrlP, -v.gm)
		stamp(v.outP, v.ctrlN, v.gm)
		stamp(v.outN, v.ctrlP, v.gm)
		stamp(v.outN, v.ctrlN, -v.gm)
	}
	for _, v := range s.ckt.nlvccss {
		di := v.di(volt(v.ctrlP) - volt(v.ctrlN))
		stamp(v.outP, v.ctrlP, -di)
		stamp(v.outP, v.ctrlN, di)
		stamp(v.outN, v.ctrlP, di)
		stamp(v.outN, v.ctrlN, -di)
	}
	for _, ind := range s.ckt.inductors {
		stamp(ind.a, ind.state, -1)
		stamp(ind.b, ind.state, 1)
		stamp(ind.state, ind.a, 1)
		stamp(ind.state, ind.b, -1)
	}
	out := s.minv.Mul(jg)
	copy(dst, out.Data)
}

// NumNoise implements dynsys.System.
func (s *System) NumNoise() int { return s.nCols }

// Noise implements dynsys.System: columns are M⁻¹ applied to raw current
// injections (explicit noise sources first, then per-resistor thermal
// noise when enabled).
func (s *System) Noise(x []float64, dst []float64) {
	n := s.Dim()
	p := s.nCols
	for i := range dst[:n*p] {
		dst[i] = 0
	}
	raw := make([]float64, n)
	col := 0
	writeCol := func() {
		v := s.minv.MulVec(raw)
		for i := 0; i < n; i++ {
			dst[i*p+col] = v[i]
		}
		for i := range raw {
			raw[i] = 0
		}
		col++
	}
	for _, ns := range s.ckt.inoises {
		if ns.a >= 0 {
			raw[ns.a] -= ns.mag
		}
		if ns.b >= 0 {
			raw[ns.b] += ns.mag
		}
		writeCol()
	}
	if s.ckt.thermalK > 0 {
		for _, r := range s.ckt.resistors {
			mag := math.Sqrt(2 * dynsys.BoltzmannK * s.ckt.thermalK * r.g)
			if r.a >= 0 {
				raw[r.a] -= mag
			}
			if r.b >= 0 {
				raw[r.b] += mag
			}
			writeCol()
		}
	}
}

// NoiseLabels implements dynsys.System.
func (s *System) NoiseLabels() []string { return s.labels }
