package pll

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/osc"
)

// TestFOMMatchesCharacterisedVCO is the FOM-vs-characterised parity
// contract: a Hopf oscillator characterised through the full Section-9
// pipeline and the same oscillator entered by datasheet FOM must produce the
// same composite L(f_m) at far-out offsets. The FOM of a characterised
// oscillator follows from the Lorentzian's 1/f² skirt,
// FOM_dB = 10·log10(c·P_mW), so with P = 1 mW the two parameterisations
// agree wherever the offset is far beyond both the loop bandwidth and the
// Lorentzian corner f_c = π·f0²·c.
func TestFOMMatchesCharacterisedVCO(t *testing.T) {
	m, err := osc.Build("hopf", map[string]float64{"omega": 2 * math.Pi * 1e6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Characterise(m.Sys, m.X0, m.TGuess, nil)
	if err != nil {
		t.Fatalf("characterising hopf: %v", err)
	}
	f0, c := res.F0(), res.C
	if c <= 0 {
		t.Fatalf("hopf characterisation returned c = %g", c)
	}
	corner := math.Pi * f0 * f0 * c
	t.Logf("hopf: f0 = %g Hz, c = %g s²·Hz, corner = %g Hz", f0, c, corner)

	const bw = 100.0 // narrow loop so mid-grid offsets are already ≫ BW
	ref := &Leg{Name: "xo", F0Hz: 1e4, C: 1e-26}
	grid := Grid{StartHz: 1e3, StopHz: 1e5}

	characterised, err := Compose(&Config{
		Stages: []Stage{{Ref: ref, VCO: Leg{F0Hz: f0, C: c}, LoopBandwidthHz: bw}},
		Grid:   grid,
	})
	if err != nil {
		t.Fatal(err)
	}
	byFOM, err := Compose(&Config{
		Stages: []Stage{{
			Ref:             ref,
			VCO:             Leg{FOM: &FOM{F0Hz: f0, FOMdBcHz: 10 * math.Log10(c * 1), PowerMW: 1}},
			LoopBandwidthHz: bw,
		}},
		Grid: grid,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, fm := range characterised.FHz {
		if fm < 100*bw || fm < 30*corner {
			continue // near the loop edge or the Lorentzian corner parity is not claimed
		}
		d := characterised.LdBc[i] - byFOM.LdBc[i]
		if math.Abs(d) > 0.1 {
			t.Errorf("at %g Hz: characterised %.3f vs FOM %.3f dBc/Hz (Δ %.3f dB > 0.1)",
				fm, characterised.LdBc[i], byFOM.LdBc[i], d)
		}
	}
}
