package pll

import (
	"encoding/json"
	"fmt"
	"math"
)

// wfloat is a float64 that survives JSON even when non-finite, following the
// repo-wide codec convention (see floquet's codec): Inf/-Inf/NaN travel as
// the strings "Inf", "-Inf", "NaN"; finite values stay plain numbers. A
// composed mask hits -Inf dBc/Hz wherever a contributor's linear power
// underflows to zero (a floor disabled mid-grid, a highpass at DC), and
// encoding/json would reject the whole Result for it.
type wfloat float64

func (f wfloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

func (f *wfloat) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		switch s {
		case "Inf", "+Inf":
			*f = wfloat(math.Inf(1))
		case "-Inf":
			*f = wfloat(math.Inf(-1))
		case "NaN":
			*f = wfloat(math.NaN())
		default:
			return fmt.Errorf("pll: invalid float string %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = wfloat(v)
	return nil
}

func toWfloats(in []float64) []wfloat {
	if in == nil {
		return nil
	}
	out := make([]wfloat, len(in))
	for i, v := range in {
		out[i] = wfloat(v)
	}
	return out
}

func fromWfloats(in []wfloat) []float64 {
	if in == nil {
		return nil
	}
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}

// contributorJSON / resultJSON are the wire forms: dB masks and jitters ride
// wfloat so -Inf points survive; grids and realizations are finite by
// construction and stay plain numbers.
type contributorJSON struct {
	Name      string   `json:"name"`
	LdBc      []wfloat `json:"l_dbc"`
	JitterSec wfloat   `json:"jitter_sec"`
}

type resultJSON struct {
	CarrierHz    float64           `json:"carrier_hz"`
	FHz          []float64         `json:"f_hz"`
	LdBc         []wfloat          `json:"l_dbc"`
	Contributors []contributorJSON `json:"contributors"`
	BandHz       [2]float64        `json:"band_hz"`
	JitterRad    wfloat            `json:"jitter_rad"`
	JitterSec    wfloat            `json:"jitter_sec"`
	Phase        []float64         `json:"phase,omitempty"`
	SampleRateHz float64           `json:"sample_rate_hz,omitempty"`
}

// MarshalJSON implements json.Marshaler so a Result round-trips loss-free
// through the job API, the journal and the CLI, -Inf mask points included.
func (r *Result) MarshalJSON() ([]byte, error) {
	w := resultJSON{
		CarrierHz:    r.CarrierHz,
		FHz:          r.FHz,
		LdBc:         toWfloats(r.LdBc),
		BandHz:       r.BandHz,
		JitterRad:    wfloat(r.JitterRad),
		JitterSec:    wfloat(r.JitterSec),
		Phase:        r.Phase,
		SampleRateHz: r.SampleRateHz,
	}
	if r.Contributors != nil {
		w.Contributors = make([]contributorJSON, len(r.Contributors))
		for i, c := range r.Contributors {
			w.Contributors[i] = contributorJSON{Name: c.Name, LdBc: toWfloats(c.LdBc), JitterSec: wfloat(c.JitterSec)}
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w resultJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = Result{
		CarrierHz:    w.CarrierHz,
		FHz:          w.FHz,
		LdBc:         fromWfloats(w.LdBc),
		BandHz:       w.BandHz,
		JitterRad:    float64(w.JitterRad),
		JitterSec:    float64(w.JitterSec),
		Phase:        w.Phase,
		SampleRateHz: w.SampleRateHz,
	}
	if w.Contributors != nil {
		r.Contributors = make([]Contributor, len(w.Contributors))
		for i, c := range w.Contributors {
			r.Contributors[i] = Contributor{Name: c.Name, LdBc: fromWfloats(c.LdBc), JitterSec: float64(c.JitterSec)}
		}
	}
	return nil
}
