package pll

import "repro/internal/obs"

// pllInstruments are the composition-engine metrics: compositions by
// outcome, legs by parameterisation kind, and the compose latency
// distribution (microseconds dominate — the engine is pure arithmetic).
type pllInstruments struct {
	ok      *obs.Counter    // pn_pll_compositions_total{outcome="ok"}
	failed  *obs.Counter    // pn_pll_compositions_total{outcome="error"}
	legs    *obs.CounterVec // pn_pll_legs_total{kind}
	seconds *obs.Histogram  // pn_pll_compose_seconds
}

var pllMetrics = obs.NewView(func(r *obs.Registry) *pllInstruments {
	runs := r.CounterVec("pn_pll_compositions_total", "Compose calls, by outcome.", "outcome")
	return &pllInstruments{
		ok:      runs.With("ok"),
		failed:  runs.With("error"),
		legs:    r.CounterVec("pn_pll_legs_total", "Oscillator legs consumed by compositions, by parameterisation (ref, vco, fom).", "kind"),
		seconds: r.Histogram("pn_pll_compose_seconds", "Wall-clock time per composition (grid evaluation + jitter integral + optional realization).", obs.ExpBuckets(0.000001, 4, 12)),
	}
})
