// Package pll is the phase-noise composition layer: it takes per-oscillator
// characterisations (the scalar c of Eq. 29, the per-source c_i of
// Eqs. 30-31, or a datasheet FOM) and composes reference, charge-pump-loop
// and VCO contributions through type-II PLL loop transfer functions into a
// system-level L(f_m) mask, integrated RMS jitter, a per-contributor
// breakdown, and seeded time-domain phase realizations.
//
// The loop model is the standard type-II charge-pump PLL. With crossover
// ω_c = 2π·BW and a stabilising zero at ω_z = ω_c/tan(PM), the open-loop
// transfer is
//
//	G(s) = K·(1 + s/ω_z)/s²,   K = ω_c²/√(1 + (ω_c/ω_z)²)
//
// so |G(jω_c)| = 1 and the phase margin at crossover is PM exactly. Input
// (reference, PFD, divider) noise reaches the output shaped by the lowpass
// |N·G/(1+G)|² — multiplied by the divider ratio N² inside the loop
// bandwidth — while the VCO's own noise is shaped by the complementary
// highpass |1/(1+G)|², so far outside the loop bandwidth the composite
// converges to the bare VCO spectrum. Cascaded chains (PLL feeding PLL)
// propagate every upstream contributor through each later stage's lowpass,
// keeping the breakdown attribution exact end to end.
//
// Everything here is frequency-domain arithmetic on a shared log grid:
// composing a chain costs microseconds, which is what lets a serving layer
// fan thousands of composition queries in on a handful of cached
// characterisations (ROADMAP item #2).
package pll

import (
	"fmt"
	"math"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

const defaultPhaseMarginDeg = 60

// Contributor is one noise path's share of the composite output: its mask
// over the grid and its band-integrated jitter. Names are stage-qualified:
// "<stage>.ref", "<stage>.pfd", "<stage>.div", "<stage>.vco".
type Contributor struct {
	Name      string    `json:"name"`
	LdBc      []float64 `json:"l_dbc"`
	JitterSec float64   `json:"jitter_sec"`
}

// Result is a composed system characterisation.
type Result struct {
	// CarrierHz is the final stage's output frequency.
	CarrierHz float64 `json:"carrier_hz"`
	// FHz is the offset-frequency grid; LdBc the composite single-sideband
	// mask L(f_m) on it, dBc/Hz.
	FHz  []float64 `json:"f_hz"`
	LdBc []float64 `json:"l_dbc"`
	// Contributors breaks the composite down by noise path; at every grid
	// point the linear sum of the contributor masks is the composite.
	Contributors []Contributor `json:"contributors"`
	// BandHz is the jitter integration band actually used (after clamping
	// into the grid); JitterRad/JitterSec the integrated RMS phase jitter
	// σ_φ = √(2∫L df) and its time equivalent σ_φ/(2π·f_carrier).
	BandHz    [2]float64 `json:"band_hz"`
	JitterRad float64    `json:"jitter_rad"`
	JitterSec float64    `json:"jitter_sec"`
	// Phase is the seeded time-domain phase realization (radians) when one
	// was requested, sampled at SampleRateHz.
	Phase        []float64 `json:"phase,omitempty"`
	SampleRateHz float64   `json:"sample_rate_hz,omitempty"`
}

// loopXfer is one stage's fixed loop parameters.
type loopXfer struct {
	k  float64 // open-loop gain constant (rad²/s²)
	wz float64 // stabilising zero (rad/s)
	n  float64 // feedback divider
}

func newLoop(bwHz, pmDeg, n float64) loopXfer {
	wc := 2 * math.Pi * bwHz
	wz := wc / math.Tan(pmDeg*math.Pi/180)
	k := wc * wc / math.Sqrt(1+(wc/wz)*(wc/wz))
	return loopXfer{k: k, wz: wz, n: n}
}

// at evaluates the power transfer at offset f: lp2 = |N·G/(1+G)|² (input
// noise to output) and hp2 = |1/(1+G)|² (VCO noise to output).
func (l loopXfer) at(f float64) (lp2, hp2 float64) {
	w := 2 * math.Pi * f
	// G(jω) = K(1 + jω/ωz)/(jω)² = -K(1 + jω/ωz)/ω²
	gr := -l.k / (w * w)
	gi := gr * w / l.wz
	dr, di := 1+gr, gi
	den := dr*dr + di*di
	hp2 = 1 / den
	lp2 = l.n * l.n * (gr*gr + gi*gi) / den
	return lp2, hp2
}

// Compose evaluates a composition request. The engine is pure arithmetic —
// no characterisation runs here; legs arrive as numbers — so it is cheap
// enough to serve per-request, and it fires the pll.compose fault point,
// records pn_pll_* metrics and a "pll.compose" span like any other unit of
// served work.
func Compose(cfg *Config) (*Result, error) { return ComposeWithSpan(cfg, nil) }

// ComposeWithSpan is Compose with the "pll.compose" span parented under an
// existing trace — the job server uses it so compositions appear on job
// timelines next to the characterisations that fed them.
func ComposeWithSpan(cfg *Config, parent *obs.Span) (*Result, error) {
	sp := obs.StartSpan(parent, "pll.compose")
	m := pllMetrics.Get()
	start := time.Now()
	res, err := compose(cfg, m)
	m.seconds.Observe(time.Since(start).Seconds())
	if err != nil {
		m.failed.Inc()
	} else {
		m.ok.Inc()
		sp.SetAttr("carrier_hz", res.CarrierHz)
		sp.SetAttr("jitter_sec", res.JitterSec)
		sp.SetAttr("grid_points", len(res.FHz))
		sp.SetAttr("stages", len(cfg.Stages))
	}
	sp.EndErr(err)
	return res, err
}

// contrib is a contributor's linear-power mask while the cascade is being
// built.
type contrib struct {
	name string
	lin  []float64
}

func compose(cfg *Config, m *pllInstruments) (*Result, error) {
	if cfg == nil {
		return nil, fmt.Errorf("pll: nil config")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := faultinject.Fire(faultinject.PllCompose); err != nil {
		return nil, fmt.Errorf("pll: compose failed: %w", err)
	}
	f, err := cfg.Grid.points()
	if err != nil {
		return nil, err
	}

	var contribs []contrib
	var fin float64 // current chain carrier (stage input frequency)
	for k := range cfg.Stages {
		st := &cfg.Stages[k]
		sname := st.Name
		if sname == "" {
			sname = fmt.Sprintf("pll%d", k)
		}
		var refSrc noiseSource
		if k == 0 {
			var err error
			fin, refSrc, err = st.Ref.resolve("stage 0 ref")
			if err != nil {
				return nil, err
			}
			m.legs.With("ref").Inc()
		}
		fvco, vcoSrc, err := st.VCO.resolve(fmt.Sprintf("stage %d vco", k))
		if err != nil {
			return nil, err
		}
		if st.VCO.FOM != nil {
			m.legs.With("fom").Inc()
		} else {
			m.legs.With("vco").Inc()
		}
		n := st.DividerN
		if n == 0 {
			n = fvco / fin
		}
		pm := st.PhaseMarginDeg
		if pm == 0 {
			pm = defaultPhaseMarginDeg
		}
		loop := newLoop(st.LoopBandwidthHz, pm, n)

		lp2 := make([]float64, len(f))
		hp2 := make([]float64, len(f))
		for i, fm := range f {
			lp2[i], hp2[i] = loop.at(fm)
		}
		// Everything already in the chain enters this stage as its
		// reference: refer it to the new output through the lowpass.
		for _, c := range contribs {
			for i := range c.lin {
				c.lin[i] *= lp2[i]
			}
		}
		add := func(name string, src noiseSource, gain []float64) {
			lin := make([]float64, len(f))
			for i, fm := range f {
				lin[i] = src.llin(fm) * gain[i]
			}
			contribs = append(contribs, contrib{name: sname + "." + name, lin: lin})
		}
		if refSrc != nil {
			add("ref", refSrc, lp2)
		}
		if st.PFDNoisedBcHz != 0 {
			add("pfd", floorSource{lin: dbToLin(st.PFDNoisedBcHz)}, lp2)
		}
		if st.DividerNoisedBcHz != 0 {
			add("div", floorSource{lin: dbToLin(st.DividerNoisedBcHz)}, lp2)
		}
		add("vco", vcoSrc, hp2)
		fin = fvco
	}
	carrier := fin

	comp := make([]float64, len(f))
	for _, c := range contribs {
		for i, v := range c.lin {
			comp[i] += v
		}
	}

	band := cfg.JitterBandHz
	if band == [2]float64{} {
		band = [2]float64{f[0], f[len(f)-1]}
	}
	band[0] = math.Max(band[0], f[0])
	band[1] = math.Min(band[1], f[len(f)-1])
	if band[1] <= band[0] {
		return nil, fmt.Errorf("pll: jitter band [%g, %g] does not overlap the grid [%g, %g]",
			cfg.JitterBandHz[0], cfg.JitterBandHz[1], f[0], f[len(f)-1])
	}

	res := &Result{
		CarrierHz:    carrier,
		FHz:          f,
		LdBc:         toDB(comp),
		Contributors: make([]Contributor, len(contribs)),
		BandHz:       band,
	}
	varRad := bandVariance(f, comp, band[0], band[1])
	res.JitterRad = math.Sqrt(varRad)
	res.JitterSec = res.JitterRad / (2 * math.Pi * carrier)
	for i, c := range contribs {
		res.Contributors[i] = Contributor{
			Name:      c.name,
			LdBc:      toDB(c.lin),
			JitterSec: math.Sqrt(bandVariance(f, c.lin, band[0], band[1])) / (2 * math.Pi * carrier),
		}
	}

	if rc := cfg.Realization; rc != nil {
		res.Phase = realize(f, comp, rc)
		res.SampleRateHz = rc.SampleRateHz
	}
	return res, nil
}

func toDB(lin []float64) []float64 {
	out := make([]float64, len(lin))
	for i, v := range lin {
		out[i] = 10 * math.Log10(v) // v == 0 → -Inf; the JSON codec carries it
	}
	return out
}

// bandVariance integrates the single-sideband mask over [lo, hi] and returns
// the phase variance σ_φ² = 2∫L(f) df in rad². Trapezoid over the grid
// segments, with linear interpolation where a band edge cuts a segment.
func bandVariance(f, lin []float64, lo, hi float64) float64 {
	var acc float64
	for i := 0; i+1 < len(f); i++ {
		a, b := f[i], f[i+1]
		if b <= lo || a >= hi {
			continue
		}
		ya, yb := lin[i], lin[i+1]
		if a < lo {
			ya += (yb - ya) * (lo - a) / (b - a)
			a = lo
		}
		if b > hi {
			yb = lin[i] + (lin[i+1]-lin[i])*(hi-f[i])/(f[i+1]-f[i])
			b = hi
		}
		acc += 0.5 * (ya + yb) * (b - a)
	}
	return 2 * acc
}
