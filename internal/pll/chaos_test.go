package pll

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// TestChaosComposeInjectedFailure fires the pll.compose fault point and
// asserts the engine fails cleanly: a wrapped faultinject sentinel, the
// error outcome counted, and no partial Result escaping. Composition is pure
// arithmetic, so this point is how chaos runs make the compose job kind fail
// as infrastructure after its legs already characterised.
func TestChaosComposeInjectedFailure(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	defer faultinject.Enable(faultinject.Plan{
		faultinject.PllCompose: {Mode: faultinject.ModeError, Count: 1},
	})()

	res, err := Compose(testConfig())
	if err == nil {
		t.Fatal("want an injected failure")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error does not wrap the faultinject sentinel: %v", err)
	}
	if res != nil {
		t.Fatal("failed compose leaked a partial result")
	}
	if st := faultinject.Stats()[faultinject.PllCompose]; st.Fired != 1 {
		t.Fatalf("fault point fired %d times, want 1", st.Fired)
	}
	if got := reg.Snapshot().Counter("pn_pll_compositions_total", "error"); got != 1 {
		t.Fatalf("error compositions = %d, want 1", got)
	}

	// The plan's single shot is spent: the engine recovers immediately.
	if _, err := Compose(testConfig()); err != nil {
		t.Fatalf("compose after the injected failure: %v", err)
	}
}
