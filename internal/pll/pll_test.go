package pll

import (
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

// testStage returns a single-PLL chain: a clean 10 MHz reference multiplied
// to 1 GHz by a noisier VCO through a 100 kHz loop.
func testStage() Stage {
	return Stage{
		Ref:             &Leg{Name: "xo", F0Hz: 10e6, C: 1e-22},
		VCO:             Leg{Name: "vco", F0Hz: 1e9, C: 1e-18},
		LoopBandwidthHz: 100e3,
	}
}

func testConfig() *Config {
	return &Config{
		Stages: []Stage{testStage()},
		Grid:   Grid{StartHz: 100, StopHz: 100e6},
	}
}

func lorentzDB(f0, c, fm float64) float64 {
	return 10 * math.Log10(lorentzSource{f0: f0, c: c}.llin(fm))
}

// interpDB reads a mask at offset fm by log-log interpolation of the grid.
func interpDB(f, ldbc []float64, fm float64) float64 {
	lin := make([]float64, len(ldbc))
	for i, v := range ldbc {
		lin[i] = math.Pow(10, v/10)
	}
	return 10 * math.Log10(interpLogLog(f, lin, fm))
}

func TestLoopTransferShape(t *testing.T) {
	loop := newLoop(100e3, 60, 100)
	// Deep in-band: input noise passes with the full N² multiplication,
	// the VCO is suppressed.
	lp2, hp2 := loop.at(10)
	if got, want := 10*math.Log10(lp2), 40.0; math.Abs(got-want) > 0.01 {
		t.Errorf("in-band lowpass = %.3f dB, want %.3f (N²)", got, want)
	}
	if hp2 > 1e-10 {
		t.Errorf("in-band highpass = %g, want ~0", hp2)
	}
	// Far out of band: the lowpass dies, the VCO passes untouched.
	lp2, hp2 = loop.at(100e6)
	if lp2 > 1e-2 {
		t.Errorf("far-out lowpass = %g, want ~0", lp2)
	}
	if math.Abs(10*math.Log10(hp2)) > 0.01 {
		t.Errorf("far-out highpass = %.4f dB, want 0", 10*math.Log10(hp2))
	}
	// At crossover |G| = 1 by construction of K.
	w := 2 * math.Pi * 100e3
	g2 := (loop.k * loop.k / (w * w * w * w)) * (1 + (w/loop.wz)*(w/loop.wz))
	if math.Abs(g2-1) > 1e-9 {
		t.Errorf("|G(jωc)|² = %g, want 1", g2)
	}
}

func TestCompositeMatchesVCOFarOut(t *testing.T) {
	cfg := testConfig()
	res, err := Compose(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ≫ loop bandwidth the composite must be the bare VCO Lorentzian: the
	// acceptance-criterion tolerance is 0.1 dB.
	for _, fm := range []float64{10e6, 30e6, 90e6} {
		got := interpDB(res.FHz, res.LdBc, fm)
		want := lorentzDB(1e9, 1e-18, fm)
		if math.Abs(got-want) > 0.1 {
			t.Errorf("composite at %.0f Hz = %.3f dBc/Hz, standalone VCO = %.3f (Δ %.3f dB > 0.1)",
				fm, got, want, got-want)
		}
	}
}

func TestCompositeMatchesReferredReferenceInBand(t *testing.T) {
	cfg := testConfig()
	res, err := Compose(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Deep in-band the composite is the reference noise multiplied to the
	// output carrier: L_ref(f) + 20·log10(N), N = 100.
	for _, fm := range []float64{200.0, 1e3} {
		got := interpDB(res.FHz, res.LdBc, fm)
		want := lorentzDB(10e6, 1e-22, fm) + 40
		if math.Abs(got-want) > 0.1 {
			t.Errorf("composite at %.0f Hz = %.3f dBc/Hz, referred reference = %.3f", fm, got, want)
		}
	}
}

func TestContributorsSumToComposite(t *testing.T) {
	st := testStage()
	st.PFDNoisedBcHz = -210
	st.DividerNoisedBcHz = -215
	cfg := &Config{Stages: []Stage{st}, Grid: Grid{StartHz: 100, StopHz: 100e6}}
	res, err := Compose(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"pll0.ref", "pll0.pfd", "pll0.div", "pll0.vco"}
	if len(res.Contributors) != len(wantNames) {
		t.Fatalf("got %d contributors, want %d", len(res.Contributors), len(wantNames))
	}
	for i, c := range res.Contributors {
		if c.Name != wantNames[i] {
			t.Errorf("contributor %d = %q, want %q", i, c.Name, wantNames[i])
		}
	}
	for i := range res.FHz {
		var sum float64
		for _, c := range res.Contributors {
			sum += math.Pow(10, c.LdBc[i]/10)
		}
		got := math.Pow(10, res.LdBc[i]/10)
		if math.Abs(sum-got) > 1e-9*got {
			t.Fatalf("at %g Hz contributors sum to %g, composite is %g", res.FHz[i], sum, got)
		}
	}
}

func TestPerSourceSelection(t *testing.T) {
	base := testConfig()
	sel := testConfig()
	sel.Stages[0].VCO = Leg{
		F0Hz:      1e9,
		PerSource: []SourceC{{Label: "thermal", C: 1e-18}, {Label: "flicker", C: 5e-18}},
		Sources:   []string{"thermal"},
	}
	a, err := Compose(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compose(sel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.LdBc {
		if math.Abs(a.LdBc[i]-b.LdBc[i]) > 1e-9 {
			t.Fatalf("per-source selection of c_i=1e-18 differs from scalar c=1e-18 at %g Hz: %g vs %g",
				a.FHz[i], a.LdBc[i], b.LdBc[i])
		}
	}

	bad := testConfig()
	bad.Stages[0].VCO.PerSource = []SourceC{{Label: "thermal", C: 1e-18}}
	bad.Stages[0].VCO.Sources = []string{"nope"}
	if _, err := Compose(bad); err == nil || !strings.Contains(err.Error(), "unknown noise source") {
		t.Fatalf("unknown source name: got %v", err)
	}
}

func TestCascadePropagatesUpstreamThroughLowpass(t *testing.T) {
	// Stage 0 output (1 GHz) feeds stage 1, which multiplies by 10 through a
	// much cleaner VCO and a narrow loop.
	cfg := testConfig()
	cfg.Stages = append(cfg.Stages, Stage{
		VCO:             Leg{F0Hz: 10e9, C: 1e-20},
		LoopBandwidthHz: 1e6,
	})
	res, err := Compose(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.CarrierHz != 10e9 {
		t.Fatalf("carrier = %g, want 10 GHz", res.CarrierHz)
	}
	// Stage-0 contributors must still be individually visible, now referred
	// through stage 1's lowpass (+20 dB in-band).
	single, err := Compose(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var ref0, ref0Single *Contributor
	for i := range res.Contributors {
		if res.Contributors[i].Name == "pll0.ref" {
			ref0 = &res.Contributors[i]
		}
	}
	for i := range single.Contributors {
		if single.Contributors[i].Name == "pll0.ref" {
			ref0Single = &single.Contributors[i]
		}
	}
	if ref0 == nil || ref0Single == nil {
		t.Fatal("pll0.ref contributor missing after cascade")
	}
	fm := 1e3 // deep inside both loops
	got := interpDB(res.FHz, ref0.LdBc, fm)
	want := interpDB(single.FHz, ref0Single.LdBc, fm) + 20
	if math.Abs(got-want) > 0.1 {
		t.Errorf("cascaded pll0.ref at %g Hz = %.3f dBc/Hz, want single-stage + 20 dB = %.3f", fm, got, want)
	}
	// Far out of both loops the composite is the last VCO alone.
	gotFar := interpDB(res.FHz, res.LdBc, 90e6)
	wantFar := lorentzDB(10e9, 1e-20, 90e6)
	if math.Abs(gotFar-wantFar) > 0.1 {
		t.Errorf("cascade far-out = %.3f dBc/Hz, last VCO = %.3f", gotFar, wantFar)
	}
}

func TestBandVarianceFlatMask(t *testing.T) {
	f := []float64{1e3, 2e3, 4e3, 8e3, 16e3}
	lin := []float64{1e-10, 1e-10, 1e-10, 1e-10, 1e-10}
	got := bandVariance(f, lin, 2e3, 8e3)
	want := 2 * 1e-10 * 6e3
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("flat-band variance = %g, want %g", got, want)
	}
	// Band edges interior to segments interpolate.
	got = bandVariance(f, lin, 3e3, 6e3)
	want = 2 * 1e-10 * 3e3
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("clipped flat-band variance = %g, want %g", got, want)
	}
}

func TestJitterBandClampsIntoGrid(t *testing.T) {
	cfg := testConfig()
	cfg.JitterBandHz = [2]float64{10, 1e9} // wider than the grid on both sides
	res, err := Compose(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BandHz != [2]float64{100, 100e6} {
		t.Fatalf("band = %v, want clamped to grid [100, 1e8]", res.BandHz)
	}
	if res.JitterRad <= 0 || res.JitterSec <= 0 {
		t.Fatalf("jitter not positive: %g rad, %g s", res.JitterRad, res.JitterSec)
	}
	if got := res.JitterRad / (2 * math.Pi * res.CarrierHz); math.Abs(got-res.JitterSec) > 1e-24 {
		t.Fatalf("jitter_sec %g inconsistent with jitter_rad %g", res.JitterSec, res.JitterRad)
	}
}

func TestFOMSourceShape(t *testing.T) {
	src := newFOMSource(&FOM{F0Hz: 1e9, FOMdBcHz: -160, PowerMW: 10, FlickerCornerHz: 1e5})
	// At 1 MHz: -160 + 20·log10(1e9/1e6) - 10·log10(10) + 10·log10(1 + 0.1)
	want := -160.0 + 60 - 10 + 10*math.Log10(1.1)
	got := 10 * math.Log10(src.llin(1e6))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("FOM source at 1 MHz = %.6f dBc/Hz, want %.6f", got, want)
	}
	// An octave in frequency costs 6 dB beyond the flicker corner.
	noFc := newFOMSource(&FOM{F0Hz: 1e9, FOMdBcHz: -160, PowerMW: 10})
	ratio := 10 * math.Log10(noFc.llin(1e6)/noFc.llin(2e6))
	if math.Abs(ratio-20*math.Log10(2)) > 1e-9 {
		t.Errorf("FOM slope = %.4f dB/octave, want %.4f", ratio, 20*math.Log10(2))
	}
}

func TestRealizationSeededAndScaled(t *testing.T) {
	cfg := testConfig()
	cfg.Realization = &RealizationConfig{Samples: 1 << 12, SampleRateHz: 200e6, Seed: 7}
	a, err := Compose(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Phase) != 1<<12 || a.SampleRateHz != 200e6 {
		t.Fatalf("realization shape: %d samples at %g Hz", len(a.Phase), a.SampleRateHz)
	}
	b, err := Compose(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Phase {
		if a.Phase[i] != b.Phase[i] {
			t.Fatalf("same seed diverged at sample %d", i)
		}
	}
	cfg.Realization.Seed = 8
	c, err := Compose(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Phase {
		if a.Phase[i] != c.Phase[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical realizations")
	}
}

// TestRealizationVarianceMatchesPSD drives the synthesis with a flat
// spectrum and checks the sample variance against the analytic integral —
// the scaling contract between the mask and the time series.
func TestRealizationVarianceMatchesPSD(t *testing.T) {
	const level = 1e-8 // rad²/Hz single-sideband
	n := 1 << 14
	fs := 1e6
	f := []float64{1, fs}
	lin := []float64{level, level}
	phase := realize(f, lin, &RealizationConfig{Samples: n, SampleRateHz: fs, Seed: 42})
	var mean, v float64
	for _, p := range phase {
		mean += p
	}
	mean /= float64(n)
	for _, p := range phase {
		v += (p - mean) * (p - mean)
	}
	v /= float64(n)
	// σ² = 2·∫_0^{fs/2} L df = level·fs (the DC bin is zeroed; negligible).
	want := 2 * level * fs / 2
	if v < 0.8*want || v > 1.2*want {
		t.Fatalf("realized variance %g, want %g ±20%%", v, want)
	}
}

func TestComposeValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no stages", func(c *Config) { c.Stages = nil }, "at least one stage"},
		{"missing ref", func(c *Config) { c.Stages[0].Ref = nil }, "needs a ref leg"},
		{"ref on later stage", func(c *Config) {
			c.Stages = append(c.Stages, Stage{Ref: &Leg{F0Hz: 1, C: 1}, VCO: Leg{F0Hz: 1e9, C: 1e-18}, LoopBandwidthHz: 1e3})
		}, "only stage 0"},
		{"no bandwidth", func(c *Config) { c.Stages[0].LoopBandwidthHz = 0 }, "loop_bandwidth_hz"},
		{"bad margin", func(c *Config) { c.Stages[0].PhaseMarginDeg = 90 }, "phase margin"},
		{"bad grid", func(c *Config) { c.Grid.StopHz = c.Grid.StartHz }, "grid"},
		{"bad band", func(c *Config) { c.JitterBandHz = [2]float64{5, 2} }, "jitter band"},
		{"band off grid", func(c *Config) { c.JitterBandHz = [2]float64{1, 10} }, "does not overlap"},
		{"no vco c", func(c *Config) { c.Stages[0].VCO.C = 0 }, "finite c > 0"},
		{"c and fom", func(c *Config) {
			c.Stages[0].VCO.FOM = &FOM{F0Hz: 1e9, FOMdBcHz: -180, PowerMW: 1}
		}, "not both"},
		{"fom without power", func(c *Config) {
			c.Stages[0].VCO = Leg{FOM: &FOM{F0Hz: 1e9, FOMdBcHz: -180}}
		}, "power_mw"},
		{"huge realization", func(c *Config) {
			c.Realization = &RealizationConfig{Samples: maxRealizationSamples + 1, SampleRateHz: 1e6}
		}, "samples"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mut(cfg)
			_, err := Compose(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestComposeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetGlobal(reg)
	defer obs.SetGlobal(nil)

	if _, err := Compose(testConfig()); err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.Stages[0].LoopBandwidthHz = -1
	if _, err := Compose(bad); err == nil {
		t.Fatal("want validation error")
	}
	s := reg.Snapshot()
	if got := s.Counter("pn_pll_compositions_total", "ok"); got != 1 {
		t.Errorf("ok compositions = %d, want 1", got)
	}
	if got := s.Counter("pn_pll_compositions_total", "error"); got != 1 {
		t.Errorf("failed compositions = %d, want 1", got)
	}
	if got := s.Counter("pn_pll_legs_total", "ref"); got != 1 {
		t.Errorf("ref legs = %d, want 1", got)
	}
	if got := s.Counter("pn_pll_legs_total", "vco"); got != 1 {
		t.Errorf("vco legs = %d, want 1", got)
	}
}

func TestGridEndpointsExact(t *testing.T) {
	g := Grid{StartHz: 100, StopHz: 1e6, PointsPerDecade: 10}
	f, err := g.points()
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 100 || f[len(f)-1] != 1e6 {
		t.Fatalf("grid endpoints [%g, %g], want [100, 1e6]", f[0], f[len(f)-1])
	}
	if len(f) != 41 {
		t.Fatalf("grid has %d points, want 41 (4 decades × 10 + 1)", len(f))
	}
	for i := 1; i < len(f); i++ {
		if f[i] <= f[i-1] {
			t.Fatalf("grid not strictly increasing at %d", i)
		}
	}
}
