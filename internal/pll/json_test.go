package pll

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestResultJSONRoundTrip(t *testing.T) {
	cfg := testConfig()
	cfg.Realization = &RealizationConfig{Samples: 64, SampleRateHz: 1e6, Seed: 3}
	res, err := Compose(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res, back) {
		t.Fatal("composed Result did not survive a JSON round trip")
	}
}

// TestResultJSONNonFinite pins the PR-7 codec convention on the new types:
// -Inf mask points (a contributor with zero linear power) and NaN jitters
// travel as strings, finite values as numbers, and both directions agree.
func TestResultJSONNonFinite(t *testing.T) {
	res := &Result{
		CarrierHz: 1e9,
		FHz:       []float64{1e3, 1e4},
		LdBc:      []float64{math.Inf(-1), -120},
		Contributors: []Contributor{
			{Name: "pll0.vco", LdBc: []float64{math.Inf(-1), math.Inf(1)}, JitterSec: math.NaN()},
		},
		BandHz:    [2]float64{1e3, 1e4},
		JitterRad: math.Inf(1),
		JitterSec: 1e-12,
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("non-finite Result must marshal: %v", err)
	}
	s := string(data)
	for _, want := range []string{`"-Inf"`, `"Inf"`, `"NaN"`, `-120`} {
		if !strings.Contains(s, want) {
			t.Errorf("wire form lacks %s: %s", want, s)
		}
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.LdBc[0], -1) || back.LdBc[1] != -120 {
		t.Errorf("mask round trip: %v", back.LdBc)
	}
	if !math.IsInf(back.Contributors[0].LdBc[1], 1) || !math.IsNaN(back.Contributors[0].JitterSec) {
		t.Errorf("contributor round trip: %+v", back.Contributors[0])
	}
	if !math.IsInf(back.JitterRad, 1) || back.JitterSec != 1e-12 {
		t.Errorf("jitter round trip: rad=%v sec=%v", back.JitterRad, back.JitterSec)
	}
}

// TestConfigJSONGolden pins the request wire format: a config authored as
// the documented JSON decodes to the expected struct and re-encodes without
// losing fields.
func TestConfigJSONGolden(t *testing.T) {
	golden := `{
		"stages": [{
			"name": "main",
			"ref": {"name": "xo", "f0_hz": 10e6, "c_s2hz": 1e-22},
			"vco": {"name": "vco", "fom": {"f0_hz": 1e9, "fom_dbc_hz": -180, "power_mw": 10, "flicker_corner_hz": 1e5}},
			"loop_bandwidth_hz": 100e3,
			"phase_margin_deg": 55,
			"divider_n": 100,
			"pfd_noise_dbc_hz": -210
		}],
		"grid": {"start_hz": 100, "stop_hz": 1e8, "points_per_decade": 10},
		"jitter_band_hz": [1e3, 2e7],
		"realization": {"samples": 1024, "sample_rate_hz": 2e8, "seed": 17}
	}`
	var cfg Config
	if err := json.Unmarshal([]byte(golden), &cfg); err != nil {
		t.Fatal(err)
	}
	want := Config{
		Stages: []Stage{{
			Name:            "main",
			Ref:             &Leg{Name: "xo", F0Hz: 10e6, C: 1e-22},
			VCO:             Leg{Name: "vco", FOM: &FOM{F0Hz: 1e9, FOMdBcHz: -180, PowerMW: 10, FlickerCornerHz: 1e5}},
			LoopBandwidthHz: 100e3,
			PhaseMarginDeg:  55,
			DividerN:        100,
			PFDNoisedBcHz:   -210,
		}},
		Grid:         Grid{StartHz: 100, StopHz: 1e8, PointsPerDecade: 10},
		JitterBandHz: [2]float64{1e3, 2e7},
		Realization:  &RealizationConfig{Samples: 1024, SampleRateHz: 2e8, Seed: 17},
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("golden config decoded to\n%+v\nwant\n%+v", cfg, want)
	}
	re, err := json.Marshal(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	var again Config
	if err := json.Unmarshal(re, &again); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatal("config did not survive re-encoding")
	}
	if _, err := Compose(&cfg); err != nil {
		t.Fatalf("golden config must compose: %v", err)
	}
}
