package pll

import "testing"

// BenchmarkPLLCompose is the gated benchmark on the mask-evaluation hot
// loop: a two-stage chain with PFD floors over the default 20-points/decade
// grid, jitter integral included, no realization. bench_compare gates both
// ns/op drift and allocs/op — the engine must stay a handful of grid-sized
// slices, nothing per-point.
func BenchmarkPLLCompose(b *testing.B) {
	st0 := testStage()
	st0.PFDNoisedBcHz = -210
	cfg := &Config{
		Stages: []Stage{st0, {VCO: Leg{F0Hz: 10e9, C: 1e-20}, LoopBandwidthHz: 1e6}},
		Grid:   Grid{StartHz: 100, StopHz: 100e6},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compose(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
