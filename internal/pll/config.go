package pll

import (
	"fmt"
	"math"
	"sort"
)

// SourceC is one named noise source's share of an oscillator's
// phase-diffusion constant, mirroring core.SourceContribution on the wire:
// the per-source c_i of Eqs. 30-31, in s²·Hz.
type SourceC struct {
	Label string  `json:"label"`
	C     float64 `json:"c_s2hz"`
}

// FOM parameterises a VCO by its phase-noise figure of merit instead of a
// full characterisation — the datasheet path. The single-sideband noise is
//
//	L_lin(f) = 10^(FOM/10) · (f0/f)² / P_mW · (1 + f_flicker/f)
//
// which reproduces a Lorentzian's 1/f² far-out skirt (FOM_dB =
// 10·log10(c·P_mW) for a characterised oscillator with diffusion constant c
// dissipating P_mW milliwatts) plus an optional 1/f³ region below the
// flicker corner. The FOM form has no Lorentzian corner, so it diverges from
// a characterisation near the carrier; parity holds at offsets well beyond
// f_c = π·f0²·c.
type FOM struct {
	F0Hz            float64 `json:"f0_hz"`
	FOMdBcHz        float64 `json:"fom_dbc_hz"`
	PowerMW         float64 `json:"power_mw"`
	FlickerCornerHz float64 `json:"flicker_corner_hz,omitempty"`
}

// Leg is one oscillator input to a composition stage: either a
// characterisation (carrier f0, scalar c, optionally the per-source split so
// Sources can select a subset by label) or a FOM datasheet model. Exactly one
// of the two parameterisations must be given.
type Leg struct {
	Name string `json:"name,omitempty"`
	// F0Hz is the oscillation frequency (1/T from the characterised PSS).
	F0Hz float64 `json:"f0_hz,omitempty"`
	// C is the scalar phase-diffusion constant c (Eq. 29), s²·Hz.
	C float64 `json:"c_s2hz,omitempty"`
	// PerSource carries the per-source c_i split (Eqs. 30-31) when the
	// characterisation recorded one.
	PerSource []SourceC `json:"per_source,omitempty"`
	// Sources, when non-empty, restricts the leg to the named noise sources:
	// the effective c is the sum of the matching c_i. Every name must exist
	// in PerSource.
	Sources []string `json:"sources,omitempty"`
	// FOM is the datasheet alternative to a characterised (F0Hz, C).
	FOM *FOM `json:"fom,omitempty"`
}

// Stage is one type-II charge-pump PLL in a clock chain. The first stage's
// input is its Ref leg; every later stage is driven by the previous stage's
// output, so Ref must be nil there.
type Stage struct {
	Name string `json:"name,omitempty"`
	// Ref is the reference oscillator (stage 0 only).
	Ref *Leg `json:"ref,omitempty"`
	// VCO is the controlled oscillator; its carrier is the stage output
	// frequency.
	VCO Leg `json:"vco"`
	// LoopBandwidthHz is the open-loop unity-gain (crossover) frequency.
	LoopBandwidthHz float64 `json:"loop_bandwidth_hz"`
	// PhaseMarginDeg positions the stabilising zero: ω_z = ω_c/tan(PM).
	// Default 60°, valid range (0°, 90°).
	PhaseMarginDeg float64 `json:"phase_margin_deg,omitempty"`
	// DividerN is the feedback divider; 0 derives it as f_vco/f_in.
	DividerN float64 `json:"divider_n,omitempty"`
	// PFDNoisedBcHz is a flat PFD/TDC noise floor referred to the stage
	// input, dBc/Hz. 0 means absent (a genuine 0 dBc/Hz floor is not a
	// meaningful part).
	PFDNoisedBcHz float64 `json:"pfd_noise_dbc_hz,omitempty"`
	// DividerNoisedBcHz is a flat feedback-divider floor referred to the
	// stage input, dBc/Hz. 0 means absent.
	DividerNoisedBcHz float64 `json:"divider_noise_dbc_hz,omitempty"`
}

// Grid is the logarithmic offset-frequency grid the composite is evaluated
// on.
type Grid struct {
	StartHz float64 `json:"start_hz"`
	StopHz  float64 `json:"stop_hz"`
	// PointsPerDecade defaults to 20.
	PointsPerDecade int `json:"points_per_decade,omitempty"`
}

// RealizationConfig asks Compose for a seeded time-domain phase realization
// synthesized from the composite PSD.
type RealizationConfig struct {
	Samples      int     `json:"samples"`
	SampleRateHz float64 `json:"sample_rate_hz"`
	Seed         int64   `json:"seed"`
}

// Config is a full composition request: a chain of PLL stages, the
// evaluation grid, the jitter integration band and an optional realization.
type Config struct {
	Stages []Stage `json:"stages"`
	Grid   Grid    `json:"grid"`
	// JitterBandHz bounds the RMS-jitter integral [lo, hi]; the zero value
	// integrates the whole grid. Edges are clamped into the grid.
	JitterBandHz [2]float64 `json:"jitter_band_hz,omitempty"`
	// Realization, when non-nil, adds a synthesized phase trajectory to the
	// result.
	Realization *RealizationConfig `json:"realization,omitempty"`
}

// maxRealizationSamples bounds a single realization: 2^20 samples is ~8 MiB
// of float64 phase, well past any comm-system block length while keeping a
// JSON response bounded.
const maxRealizationSamples = 1 << 20

// noiseSource is an evaluated leg: single-sideband noise L(f) in linear
// power units (1/Hz) at offset f from its carrier.
type noiseSource interface {
	llin(f float64) float64
}

// lorentzSource is the paper's exact stationary spectrum (Eq. 27, linear
// form): L(f) = f0²c / (π²f0⁴c² + f²).
type lorentzSource struct{ f0, c float64 }

func (s lorentzSource) llin(f float64) float64 {
	num := s.f0 * s.f0 * s.c
	f02c := s.f0 * s.f0 * s.c
	return num / (math.Pi*math.Pi*f02c*f02c + f*f)
}

// fomSource is the datasheet VCO model (see FOM).
type fomSource struct {
	lin0 float64 // 10^(FOM/10)·f0²/P_mW — L(f)·f² away from flicker
	fc   float64 // 1/f³ corner, 0 for none
}

func newFOMSource(m *FOM) fomSource {
	return fomSource{
		lin0: math.Pow(10, m.FOMdBcHz/10) * m.F0Hz * m.F0Hz / m.PowerMW,
		fc:   m.FlickerCornerHz,
	}
}

func (s fomSource) llin(f float64) float64 {
	l := s.lin0 / (f * f)
	if s.fc > 0 {
		l *= 1 + s.fc/f
	}
	return l
}

// floorSource is a flat noise floor (PFD, divider).
type floorSource struct{ lin float64 }

func (s floorSource) llin(float64) float64 { return s.lin }

func dbToLin(db float64) float64 { return math.Pow(10, db/10) }

// resolve validates the leg and returns its carrier frequency and noise
// source. legPos names the leg in errors ("stage 0 ref").
func (l *Leg) resolve(legPos string) (f0 float64, src noiseSource, err error) {
	if l.FOM != nil {
		if l.C != 0 || len(l.Sources) > 0 {
			return 0, nil, fmt.Errorf("pll: %s: give either a characterised c or a fom, not both", legPos)
		}
		m := l.FOM
		if m.F0Hz <= 0 || m.PowerMW <= 0 {
			return 0, nil, fmt.Errorf("pll: %s: fom needs f0_hz > 0 and power_mw > 0", legPos)
		}
		if m.FlickerCornerHz < 0 {
			return 0, nil, fmt.Errorf("pll: %s: negative flicker corner", legPos)
		}
		return m.F0Hz, newFOMSource(m), nil
	}
	if l.F0Hz <= 0 {
		return 0, nil, fmt.Errorf("pll: %s: needs f0_hz > 0 (or a fom)", legPos)
	}
	c := l.C
	if len(l.Sources) > 0 {
		byLabel := make(map[string]float64, len(l.PerSource))
		for _, s := range l.PerSource {
			byLabel[s.Label] = s.C
		}
		c = 0
		for _, name := range l.Sources {
			ci, ok := byLabel[name]
			if !ok {
				known := make([]string, 0, len(byLabel))
				for k := range byLabel {
					known = append(known, k)
				}
				sort.Strings(known)
				return 0, nil, fmt.Errorf("pll: %s: unknown noise source %q (have %v)", legPos, name, known)
			}
			c += ci
		}
	}
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return 0, nil, fmt.Errorf("pll: %s: needs a finite c > 0 (got %v)", legPos, c)
	}
	return l.F0Hz, lorentzSource{f0: l.F0Hz, c: c}, nil
}

// size validates the grid bounds and returns the point count.
func (g *Grid) size() (int, error) {
	if g.StartHz <= 0 || g.StopHz <= g.StartHz {
		return 0, fmt.Errorf("pll: grid needs 0 < start_hz < stop_hz (got %g, %g)", g.StartHz, g.StopHz)
	}
	ppd := g.PointsPerDecade
	if ppd == 0 {
		ppd = 20
	}
	if ppd < 1 || ppd > 1000 {
		return 0, fmt.Errorf("pll: points_per_decade %d out of range [1, 1000]", ppd)
	}
	decades := math.Log10(g.StopHz / g.StartHz)
	n := int(math.Ceil(decades*float64(ppd))) + 1
	if n < 2 {
		n = 2
	}
	if n > 200_000 {
		return 0, fmt.Errorf("pll: grid of %d points is too fine", n)
	}
	return n, nil
}

// points materialises the log grid. The grid always includes StopHz as its
// last point.
func (g *Grid) points() ([]float64, error) {
	n, err := g.size()
	if err != nil {
		return nil, err
	}
	f := make([]float64, n)
	l0, l1 := math.Log10(g.StartHz), math.Log10(g.StopHz)
	for i := range f {
		f[i] = math.Pow(10, l0+(l1-l0)*float64(i)/float64(n-1))
	}
	f[0], f[n-1] = g.StartHz, g.StopHz
	return f, nil
}

// Validate shape-checks the configuration — stage structure, loop knobs,
// grid, band, realization — without touching the legs, whose numeric
// validation happens as Compose resolves them. The serving layer calls this
// at submission time, before spec legs have numbers.
func (c *Config) Validate() error { return c.validate() }

func (c *Config) validate() error {
	if len(c.Stages) == 0 {
		return fmt.Errorf("pll: config needs at least one stage")
	}
	if len(c.Stages) > 16 {
		return fmt.Errorf("pll: chain of %d stages is too deep (max 16)", len(c.Stages))
	}
	for k := range c.Stages {
		st := &c.Stages[k]
		if k == 0 && st.Ref == nil {
			return fmt.Errorf("pll: stage 0 needs a ref leg")
		}
		if k > 0 && st.Ref != nil {
			return fmt.Errorf("pll: stage %d: only stage 0 takes a ref leg (later stages are driven by the previous output)", k)
		}
		if st.LoopBandwidthHz <= 0 {
			return fmt.Errorf("pll: stage %d: needs loop_bandwidth_hz > 0", k)
		}
		pm := st.PhaseMarginDeg
		if pm == 0 {
			pm = defaultPhaseMarginDeg
		}
		if pm <= 0 || pm >= 90 {
			return fmt.Errorf("pll: stage %d: phase margin %g° outside (0°, 90°)", k, st.PhaseMarginDeg)
		}
		if st.DividerN < 0 {
			return fmt.Errorf("pll: stage %d: negative divider", k)
		}
	}
	if _, err := c.Grid.size(); err != nil {
		return err
	}
	if b := c.JitterBandHz; b != [2]float64{} {
		if b[0] <= 0 || b[1] <= b[0] {
			return fmt.Errorf("pll: jitter band needs 0 < lo < hi (got %g, %g)", b[0], b[1])
		}
	}
	if r := c.Realization; r != nil {
		if r.Samples < 2 || r.Samples > maxRealizationSamples {
			return fmt.Errorf("pll: realization samples %d outside [2, %d]", r.Samples, maxRealizationSamples)
		}
		if r.SampleRateHz <= 0 {
			return fmt.Errorf("pll: realization needs sample_rate_hz > 0")
		}
	}
	return nil
}
