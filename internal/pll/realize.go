package pll

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/fourier"
)

// realize synthesizes a time-domain phase trajectory φ[m] (radians) from the
// composite single-sideband mask: Gaussian spectral coefficients drawn with
// variance matching the two-sided PSD S_φ(f) = 2·L_lin(f) on each FFT bin,
// Hermitian-symmetrised, inverse-transformed. The draw is seeded, so a
// (config, seed) pair reproduces the exact trajectory — the property
// comm-system consumers need to replay a link simulation.
//
// Bin frequencies outside the evaluated grid take the nearest grid edge's
// value; inside, the mask is power-law (log-log) interpolated, which is
// exact for the 1/f² and flat regions a composed mask is made of.
func realize(f, lin []float64, rc *RealizationConfig) []float64 {
	n := rc.Samples
	fs := rc.SampleRateHz
	df := fs / float64(n)
	rng := rand.New(rand.NewSource(rc.Seed))

	spec := make([]complex128, n)
	for k := 1; k <= n/2; k++ {
		fk := float64(k) * df
		// One cosine at f_k with amplitude A has variance A²/2 and occupies
		// one bin: A²/2 = S_φ(f_k)·df with S_φ = 2·L_lin. Splitting that
		// power between the k and n-k bins puts σ² = S_φ·df/4 on each
		// quadrature.
		sigma := math.Sqrt(2 * interpLogLog(f, lin, fk) * df / 4)
		if 2*k == n { // Nyquist bin: real, self-conjugate, carries both halves
			spec[k] = complex(float64(n)*sigma*math.Sqrt2*rng.NormFloat64(), 0)
			continue
		}
		re := float64(n) * sigma * rng.NormFloat64()
		im := float64(n) * sigma * rng.NormFloat64()
		spec[k] = complex(re, im)
		spec[n-k] = complex(re, -im)
	}
	inv := fourier.IFFT(spec) // 1/n-normalised, so the n factors above cancel
	phase := make([]float64, n)
	for i, c := range inv {
		phase[i] = real(c)
	}
	return phase
}

// interpLogLog evaluates the mask at x by power-law interpolation between
// grid neighbours, clamping to the edge values outside the grid. Zero or
// negative mask values (possible only for a degenerate contributor) fall
// back to linear interpolation.
func interpLogLog(f, lin []float64, x float64) float64 {
	if x <= f[0] {
		return lin[0]
	}
	if x >= f[len(f)-1] {
		return lin[len(lin)-1]
	}
	i := sort.SearchFloat64s(f, x)
	a, b := f[i-1], f[i]
	ya, yb := lin[i-1], lin[i]
	if ya <= 0 || yb <= 0 {
		return ya + (yb-ya)*(x-a)/(b-a)
	}
	p := math.Log(yb/ya) / math.Log(b/a)
	return ya * math.Pow(x/a, p)
}
