// Package obs is the stdlib-only observability layer of the phase-noise
// pipeline: a process-wide metrics registry (atomic counters, gauges and
// fixed-bucket histograms with Prometheus-style text exposition), span
// tracing emitted as JSONL events to a pluggable Emitter, and an HTTP debug
// server exposing /metrics next to net/http/pprof.
//
// Observability is off by default and costs nothing when off: the global
// registry and emitter start nil, every instrument method is safe (and a
// no-op) on a nil receiver, and the no-op paths are allocation-free, so
// instrumented hot loops in ode/sde pay a single atomic pointer load per
// call, not per step. CLIs opt in with SetGlobal/SetEmitter at startup.
//
// Instrumented packages keep their instrument handles in a View: a lazily
// built, atomically cached bundle keyed on the current global registry, so
// the per-call fast path is one atomic load plus a pointer compare, and
// swapping the registry (tests, restarts) rebinds every package on its next
// call.
package obs

import (
	"sync"
	"sync/atomic"
)

// globalReg holds the process-wide registry; nil means metrics are off.
var globalReg atomic.Pointer[Registry]

// SetGlobal installs (or, with nil, removes) the process-wide registry that
// package Views bind their instruments to. Safe for concurrent use, but
// intended to be called once at process startup.
func SetGlobal(r *Registry) { globalReg.Store(r) }

// Global returns the process-wide registry, or nil when metrics are off.
func Global() *Registry { return globalReg.Load() }

// Enabled reports whether a process-wide registry is installed.
func Enabled() bool { return globalReg.Load() != nil }

// View lazily binds a package's instrument bundle T to the current global
// registry. Get returns a pointer to a zero-valued T while no registry is
// installed — all instrument fields nil, so every recording call is a no-op —
// and rebuilds the bundle (once, under a mutex) whenever the global registry
// changes identity.
type View[T any] struct {
	build func(*Registry) *T
	mu    sync.Mutex
	cur   atomic.Pointer[viewState[T]]
}

type viewState[T any] struct {
	reg *Registry
	val *T
}

// NewView declares a package-level instrument bundle. build is called at most
// once per installed registry, the first time Get observes it.
func NewView[T any](build func(*Registry) *T) *View[T] {
	return &View[T]{build: build}
}

// Get returns the bundle bound to the current global registry. Never nil:
// with no registry installed it returns a shared zero-valued bundle whose nil
// instruments make every recording call a no-op. The fast path is one atomic
// load and a pointer comparison, with no allocation.
func (v *View[T]) Get() *T {
	reg := Global()
	if st := v.cur.Load(); st != nil && st.reg == reg {
		return st.val
	}
	return v.rebuild(reg)
}

func (v *View[T]) rebuild(reg *Registry) *T {
	v.mu.Lock()
	defer v.mu.Unlock()
	if st := v.cur.Load(); st != nil && st.reg == reg {
		return st.val
	}
	var val *T
	if reg != nil {
		val = v.build(reg)
	} else {
		val = new(T)
	}
	v.cur.Store(&viewState[T]{reg: reg, val: val})
	return val
}
