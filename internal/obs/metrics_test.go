package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help c")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("g", "help g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}

	h := r.Histogram("h_seconds", "help h", []float64{1, 10})
	for _, v := range []float64{0.5, 0.9, 5, 50, 500} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("hist count = %d, want 5", got)
	}
	if got := h.Sum(); got != 556.4 {
		t.Fatalf("hist sum = %g, want 556.4", got)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms, want 1", len(s.Histograms))
	}
	hv := s.Histograms[0]
	want := []uint64{2, 1, 2} // (-inf,1], (1,10], (10,+inf)
	for i, w := range want {
		if hv.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, hv.Counts[i], w)
		}
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "first help")
	b := r.Counter("same_total", "second help (ignored)")
	if a != b {
		t.Fatal("re-registering the same counter must return the same instrument")
	}
	v1 := r.CounterVec("vec_total", "h", "k").With("x")
	v2 := r.CounterVec("vec_total", "h", "k").With("x")
	if v1 != v2 {
		t.Fatal("same (name,label) in a vec must return the same counter")
	}
	v3 := r.CounterVec("vec_total", "h", "k").With("y")
	if v1 == v3 {
		t.Fatal("different label values must be different counters")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	g := r.Gauge("g", "")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	h := r.Histogram("h", "", []float64{1})
	h.Observe(2)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
	cv := r.CounterVec("v_total", "", "k")
	cv.With("a").Inc()
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var sb strings.Builder
	if n, err := r.WriteTo(&sb); n != 0 || err != nil {
		t.Fatalf("nil registry WriteTo = (%d, %v), want (0, nil)", n, err)
	}
}

func TestSnapshotSortedAndLookup(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("pn_steps_total", "h", "method")
	vec.With("rk4").Add(7)
	vec.With("dopri5").Add(3)
	r.Counter("pn_aaa_total", "h").Inc()
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for _, c := range s.Counters {
		names = append(names, c.Name+"/"+c.LabelVal)
	}
	wantOrder := []string{"pn_aaa_total/", "pn_steps_total/dopri5", "pn_steps_total/rk4"}
	for i, w := range wantOrder {
		if names[i] != w {
			t.Fatalf("snapshot order %v, want %v", names, wantOrder)
		}
	}
	if got := s.Counter("pn_steps_total", "rk4"); got != 7 {
		t.Fatalf("lookup = %d, want 7", got)
	}
	if got := s.Counter("absent", ""); got != 0 {
		t.Fatalf("absent lookup = %d, want 0", got)
	}
}

func TestWriteToPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("pn_steps_total", "Steps taken.", "method").With("rk4").Add(12)
	r.Gauge("pn_depth", "Queue depth.").Set(3)
	h := r.Histogram("pn_lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP pn_steps_total Steps taken.\n# TYPE pn_steps_total counter\n",
		`pn_steps_total{method="rk4"} 12`,
		"# TYPE pn_depth gauge",
		"pn_depth 3",
		"# TYPE pn_lat_seconds histogram",
		`pn_lat_seconds_bucket{le="0.1"} 1`,
		`pn_lat_seconds_bucket{le="1"} 2`,
		`pn_lat_seconds_bucket{le="+Inf"} 3`,
		"pn_lat_seconds_sum 5.55",
		"pn_lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("pn_esc_total", "h", "k").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `pn_esc_total{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", sb.String())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	for i := range want {
		if diff := b[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", ExpBuckets(1, 2, 8))
	vec := r.CounterVec("v_total", "", "k")
	var wg sync.WaitGroup
	const workers, iters = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 300))
				vec.With("a").Inc()
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Fatalf("gauge = %g, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*iters)
	}
}

func TestViewRebindsOnRegistrySwap(t *testing.T) {
	defer SetGlobal(nil)
	type bundle struct{ c *Counter }
	v := NewView(func(r *Registry) *bundle {
		return &bundle{c: r.Counter("swap_total", "")}
	})

	SetGlobal(nil)
	off := v.Get()
	if off == nil || off.c != nil {
		t.Fatal("off view must be a zero bundle with nil instruments")
	}
	off.c.Inc() // must not panic

	r1 := NewRegistry()
	SetGlobal(r1)
	on := v.Get()
	if on.c == nil {
		t.Fatal("on view must carry live instruments")
	}
	on.c.Inc()
	if r1.Snapshot().Counter("swap_total", "") != 1 {
		t.Fatal("live counter did not record")
	}
	if v.Get() != on {
		t.Fatal("view must cache the bundle for a stable registry")
	}

	r2 := NewRegistry()
	SetGlobal(r2)
	on2 := v.Get()
	if on2 == on {
		t.Fatal("view must rebuild after a registry swap")
	}
	on2.c.Inc()
	if r2.Snapshot().Counter("swap_total", "") != 1 {
		t.Fatal("rebound counter did not record into the new registry")
	}
}
