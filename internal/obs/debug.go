package obs

import (
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"time"
)

// DebugServer is the in-process HTTP endpoint serving /metrics and
// /debug/pprof/* for a running pipeline. Start one with ServeDebug; it runs
// on its own goroutine until Close.
type DebugServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeDebug listens on addr (e.g. ":6060" or "127.0.0.1:0") and serves
//
//	/metrics            — Prometheus text exposition of reg
//	/debug/pprof/...    — the standard net/http/pprof handlers
//	                      (heap, profile, trace, goroutine, …)
//
// A nil reg resolves the process-wide registry at request time, so a server
// started before SetGlobal still exposes the live metrics. The server runs
// until Close.
func ServeDebug(addr string, reg *Registry) (*DebugServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	d := &DebugServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		ln:  ln,
	}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the bound listen address (useful with port 0).
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }

// MetricsHandler returns an http.Handler rendering reg in the Prometheus
// text format. A nil reg resolves the process-wide registry per request.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		r := reg
		if r == nil {
			r = Global()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r == nil {
			return
		}
		_, _ = r.WriteTo(w)
	})
}
