package obs

import "testing"

// The no-op path must be allocation-free: with no registry installed, a
// package-level View hands out a shared zero bundle and every instrument call
// is a nil-receiver no-op. This is what keeps the integrator hot paths free
// to call into obs unconditionally.
func TestNoOpPathAllocationFree(t *testing.T) {
	defer SetGlobal(nil)
	SetGlobal(nil)
	type bundle struct {
		c *Counter
		g *Gauge
		h *Histogram
	}
	v := NewView(func(r *Registry) *bundle {
		return &bundle{
			c: r.Counter("alloc_total", ""),
			g: r.Gauge("alloc_gauge", ""),
			h: r.Histogram("alloc_hist", "", []float64{1}),
		}
	})
	v.Get() // warm the cached zero bundle

	if n := testing.AllocsPerRun(1000, func() {
		b := v.Get()
		b.c.Add(3)
		b.c.Inc()
		b.g.Set(1)
		b.g.Add(2)
		b.h.Observe(0.5)
	}); n != 0 {
		t.Fatalf("no-op path allocates %v per run, want 0", n)
	}

	// Tracing off must be free too: StartSpan returns nil without allocating.
	SetEmitter(nil)
	if n := testing.AllocsPerRun(1000, func() {
		sp := StartSpan(nil, "off")
		sp.SetAttr("k", 1)
		sp.End()
	}); n != 0 {
		t.Fatalf("tracing-off path allocates %v per run, want 0", n)
	}
}

// With a registry installed, recording on already-bound instruments must be
// allocation-free as well (atomic adds only) — histograms and counter adds in
// per-call flush paths cannot churn the heap.
func TestRecordingAllocationFree(t *testing.T) {
	defer SetGlobal(nil)
	type bundle struct {
		c *Counter
		h *Histogram
	}
	v := NewView(func(r *Registry) *bundle {
		return &bundle{
			c: r.Counter("rec_total", ""),
			h: r.Histogram("rec_hist", "", ExpBuckets(0.001, 4, 10)),
		}
	})
	SetGlobal(NewRegistry())
	v.Get() // warm: first Get after a swap rebuilds the bundle

	if n := testing.AllocsPerRun(1000, func() {
		b := v.Get()
		b.c.Add(7)
		b.h.Observe(0.42)
	}); n != 0 {
		t.Fatalf("recording path allocates %v per run, want 0", n)
	}
}
