package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: NewTraceID(), Span: 0xdeadbeefcafe}
	tp := sc.Traceparent()
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent layout: %q", tp)
	}
	got, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent rejected its own output %q", tp)
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-" + strings.Repeat("g", 32) + "-0000000000000001-01", // non-hex trace
		"00-" + strings.Repeat("a", 32) + "-zzzzzzzzzzzzzzzz-01", // non-hex span
		"00-" + strings.Repeat("a", 32) + "-0000000000000001-0",  // short flags
		strings.Repeat("a", 55),                                  // right length, no dashes
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Fatalf("ParseTraceparent accepted malformed %q", s)
		}
	}
}

func TestTraceparentEmptyContext(t *testing.T) {
	if tp := (SpanContext{}).Traceparent(); tp != "" {
		t.Fatalf("empty context traceparent = %q, want empty", tp)
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 32 || len(b) != 32 {
		t.Fatalf("trace IDs must be 32 hex chars, got %q %q", a, b)
	}
	if a == b {
		t.Fatal("two trace IDs collided")
	}
}

func TestContextCarriesSpanContext(t *testing.T) {
	ctx := context.Background()
	if _, ok := SpanContextFrom(ctx); ok {
		t.Fatal("empty context must not yield a span context")
	}
	want := SpanContext{Trace: NewTraceID(), Span: 42}
	ctx = ContextWithSpanContext(ctx, want)
	got, ok := SpanContextFrom(ctx)
	if !ok || got != want {
		t.Fatalf("got %+v ok=%v, want %+v", got, ok, want)
	}
	// An attached context with no trace ID reads back as absent.
	ctx = ContextWithSpanContext(context.Background(), SpanContext{Span: 7})
	if _, ok := SpanContextFrom(ctx); ok {
		t.Fatal("traceless span context must read back as absent")
	}
}

func TestStartSpanInJoinsRemoteTrace(t *testing.T) {
	ring := NewRingEmitter(8)
	remote := SpanContext{Trace: NewTraceID(), Span: 999}
	root := StartSpanIn(ring, remote, "serve.job")
	child := StartSpan(root, "child")
	child.End()
	root.End()

	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	for _, e := range evs {
		if e.Trace != remote.Trace {
			t.Fatalf("%s: trace = %q, want remote trace %q", e.Name, e.Trace, remote.Trace)
		}
	}
	if evs[1].Parent != remote.Span {
		t.Fatalf("root parent = %d, want remote span %d", evs[1].Parent, remote.Span)
	}
	if evs[0].Parent != evs[1].Span {
		t.Fatal("child must nest under the joined root")
	}
	if got := root.Context(); got.Trace != remote.Trace || got.Span != evs[1].Span {
		t.Fatalf("root.Context() = %+v", got)
	}
}

func TestStartSpanInMintsTraceWhenAbsent(t *testing.T) {
	ring := NewRingEmitter(2)
	sp := StartSpanIn(ring, SpanContext{}, "root")
	sp.End()
	if evs := ring.Events(); len(evs) != 1 || len(evs[0].Trace) != 32 {
		t.Fatalf("minted trace missing: %+v", ring.Events())
	}
}

func TestStartSpanInNilEmitterFallsBack(t *testing.T) {
	SetEmitter(nil)
	if sp := StartSpanIn(nil, SpanContext{Trace: NewTraceID()}, "x"); sp != nil {
		t.Fatal("no emitter anywhere: span must be nil")
	}
	ring := NewRingEmitter(2)
	SetEmitter(ring)
	defer SetEmitter(nil)
	sp := StartSpanIn(nil, SpanContext{Trace: NewTraceID()}, "x")
	if sp == nil {
		t.Fatal("StartSpanIn must fall back to the global emitter")
	}
	sp.End()
	if ring.Len() != 1 {
		t.Fatal("fallback emitter did not receive the event")
	}
}

func TestStartSpanOnTeesSubtree(t *testing.T) {
	main := NewRingEmitter(8)
	flight := NewRingEmitter(8)
	root := StartSpanIn(main, SpanContext{Trace: NewTraceID()}, "point")
	att := StartSpanOn(Tee(main, flight), root, "attempt")
	inner := StartSpan(att, "stage")
	inner.End()
	att.End()
	root.End()

	if main.Len() != 3 {
		t.Fatalf("main emitter got %d events, want 3", main.Len())
	}
	if flight.Len() != 2 {
		t.Fatalf("flight ring got %d events, want attempt subtree only (2), got %v", flight.Len(), flight.Events())
	}
	// The teed subtree stays inside the same trace and under the root span.
	fe := flight.Events()
	if fe[0].Trace != root.Context().Trace || fe[1].Parent != root.ID() {
		t.Fatalf("teed subtree lost its place in the trace: %+v root=%d", fe, root.ID())
	}
}

func TestStartSpanOnNilEmitter(t *testing.T) {
	if sp := StartSpanOn(nil, nil, "x"); sp != nil {
		t.Fatal("StartSpanOn with nil emitter must return nil")
	}
}

func TestTeeFiltersNil(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatal("Tee of no live emitters must be nil")
	}
	ring := NewRingEmitter(2)
	if got := Tee(nil, ring); got != Emitter(ring) {
		t.Fatal("Tee of one live emitter must return it unwrapped")
	}
	other := NewRingEmitter(2)
	tee := Tee(ring, nil, other)
	tee.Emit(Event{Name: "x"})
	if ring.Len() != 1 || other.Len() != 1 {
		t.Fatal("tee must fan out to all live emitters")
	}
}

func TestSpanIDsDoNotRestartAtZero(t *testing.T) {
	// Span IDs are seeded from crypto/rand per process so two processes in
	// one distributed trace cannot mint colliding IDs. The probability of a
	// random base below 2^32 is ~1e-10; treat it as a seeding failure.
	ring := NewRingEmitter(1)
	sp := StartSpanIn(ring, SpanContext{}, "probe")
	if sp.ID() < 1<<32 {
		t.Fatalf("span ID %d looks unseeded (sequential from zero)", sp.ID())
	}
}
