package obs

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// parsedHist is a histogram family decoded back out of the Prometheus text
// exposition format: cumulative bucket counts keyed by the le bound, plus the
// _sum/_count series.
type parsedHist struct {
	buckets map[string]uint64 // le label -> cumulative count
	order   []string          // le labels in exposition order
	sum     float64
	count   uint64
}

// decodeExposition is a minimal scrape-side parser for the subset of the
// text format WriteTo produces. It is intentionally strict: any histogram
// line it cannot parse fails the test.
func decodeExposition(t *testing.T, text string) map[string]*parsedHist {
	t.Helper()
	hists := map[string]*parsedHist{}
	get := func(name string) *parsedHist {
		h := hists[name]
		if h == nil {
			h = &parsedHist{buckets: map[string]uint64{}}
			hists[name] = h
		}
		return h
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, valStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable exposition line %q", line)
		}
		switch {
		case strings.Contains(series, "_bucket{le="):
			name, rest, _ := strings.Cut(series, "_bucket{le=")
			le := strings.TrimSuffix(strings.Trim(rest, `"}`), `"`)
			n, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("bucket count %q: %v", line, err)
			}
			h := get(name)
			if _, dup := h.buckets[le]; dup {
				t.Fatalf("duplicate bucket le=%q for %s", le, name)
			}
			h.buckets[le] = n
			h.order = append(h.order, le)
		case strings.HasSuffix(series, "_sum"):
			f, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				t.Fatalf("sum %q: %v", line, err)
			}
			get(strings.TrimSuffix(series, "_sum")).sum = f
		case strings.HasSuffix(series, "_count"):
			n, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("count %q: %v", line, err)
			}
			get(strings.TrimSuffix(series, "_count")).count = n
		}
	}
	return hists
}

// TestHistogramExpositionRoundTrip scrapes WriteTo's text output back into
// cumulative buckets and verifies everything a standard histogram_quantile
// query relies on: cumulative monotone buckets, a trailing +Inf bound equal
// to _count, and per-bucket counts that difference back to the raw Snapshot.
func TestHistogramExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rt_seconds", "round trip", []float64{0.01, 0.1, 1})
	obsd := []float64{0.005, 0.05, 0.05, 0.5, 2, 7}
	for _, v := range obsd {
		h.Observe(v)
	}

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	ph, ok := decodeExposition(t, sb.String())["rt_seconds"]
	if !ok {
		t.Fatalf("rt_seconds missing from exposition:\n%s", sb.String())
	}

	wantOrder := []string{"0.01", "0.1", "1", "+Inf"}
	if len(ph.order) != len(wantOrder) {
		t.Fatalf("bucket order = %v, want %v", ph.order, wantOrder)
	}
	for i, le := range wantOrder {
		if ph.order[i] != le {
			t.Fatalf("bucket order = %v, want %v", ph.order, wantOrder)
		}
	}

	// Cumulative and monotone.
	prev := uint64(0)
	for _, le := range ph.order {
		if ph.buckets[le] < prev {
			t.Fatalf("buckets not monotone: le=%q count %d < previous %d", le, ph.buckets[le], prev)
		}
		prev = ph.buckets[le]
	}
	if ph.buckets["+Inf"] != ph.count {
		t.Fatalf("+Inf bucket %d != _count %d", ph.buckets["+Inf"], ph.count)
	}
	if ph.count != uint64(len(obsd)) {
		t.Fatalf("_count = %d, want %d", ph.count, len(obsd))
	}
	wantSum := 0.0
	for _, v := range obsd {
		wantSum += v
	}
	if math.Abs(ph.sum-wantSum) > 1e-9 {
		t.Fatalf("_sum = %g, want %g", ph.sum, wantSum)
	}

	// Differencing the cumulative buckets recovers the raw per-bucket counts
	// the Snapshot reports.
	snap, ok := r.Snapshot().Histogram("rt_seconds")
	if !ok {
		t.Fatal("snapshot missing rt_seconds")
	}
	prev = 0
	for i, le := range ph.order {
		raw := ph.buckets[le] - prev
		prev = ph.buckets[le]
		if raw != snap.Counts[i] {
			t.Fatalf("bucket le=%q raw count %d != snapshot count %d", le, raw, snap.Counts[i])
		}
	}
}

// TestHistogramExpositionEmpty: a never-observed histogram must still expose
// a full, consistent family (all-zero buckets, zero sum/count) so scrapes
// never see a partial series.
func TestHistogramExpositionEmpty(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty_seconds", "", []float64{1, 2})
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	ph, ok := decodeExposition(t, sb.String())["empty_seconds"]
	if !ok {
		t.Fatalf("empty_seconds missing:\n%s", sb.String())
	}
	if ph.count != 0 || ph.sum != 0 || ph.buckets["+Inf"] != 0 {
		t.Fatalf("empty histogram exposes nonzero values: %+v", ph)
	}
	if len(ph.order) != 3 {
		t.Fatalf("empty histogram bucket count = %d, want 3 (2 bounds + +Inf)", len(ph.order))
	}
}
