package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are safe on
// a nil receiver (no-op) and for concurrent use.
type Counter struct {
	v        atomic.Int64
	name     string
	labelKey string
	labelVal string
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down (queue depth, last
// closure error). All methods are nil-safe and concurrency-safe.
type Gauge struct {
	bits     atomic.Uint64 // math.Float64bits
	name     string
	labelKey string
	labelVal string
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (CAS loop; lock-free).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric. Observations are
// classified against ascending upper bounds (an implicit +Inf bucket catches
// the tail); exposition is Prometheus-style cumulative. Nil-safe and
// concurrency-safe; Observe is lock-free.
type Histogram struct {
	name   string
	bounds []float64       // ascending upper bounds, +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64   // math.Float64bits, CAS-added
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n ascending bucket bounds start, start·factor,
// start·factor², … — the usual latency-histogram layout.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// CounterVec is a family of counters sharing a name and differing in one
// label value (e.g. pn_ode_steps_total{method="..."}). With is get-or-create
// and idempotent, so packages can resolve label values lazily. Nil-safe.
type CounterVec struct {
	r        *Registry
	name     string
	help     string
	labelKey string
}

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(labelValue string) *Counter {
	if v == nil {
		return nil
	}
	return v.r.counter(v.name, v.help, v.labelKey, labelValue)
}

type metricKey struct {
	name     string
	labelVal string
}

// Registry is a concurrency-safe collection of named instruments.
// Registration is idempotent: asking twice for the same (name, label) returns
// the same instrument, so independent packages can share a metric family.
// All methods are safe on a nil receiver and return nil instruments, making a
// nil *Registry a valid "observability off" value.
type Registry struct {
	mu       sync.Mutex
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	hists    map[string]*Histogram
	help     map[string]string // family name → help, first registration wins
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]*Gauge),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
	}
}

func (r *Registry) setHelp(name, help string) {
	if _, ok := r.help[name]; !ok {
		r.help[name] = help
	}
}

// Counter returns the unlabeled counter with the given name, creating it on
// first use. Conventionally names end in _total.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.counter(name, help, "", "")
}

func (r *Registry) counter(name, help, labelKey, labelVal string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, labelVal}
	if c, ok := r.counters[k]; ok {
		return c
	}
	r.setHelp(name, help)
	c := &Counter{name: name, labelKey: labelKey, labelVal: labelVal}
	r.counters[k] = c
	return c
}

// CounterVec returns a one-label counter family.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.setHelp(name, help)
	r.mu.Unlock()
	return &CounterVec{r: r, name: name, help: help, labelKey: labelKey}
}

// Gauge returns the unlabeled gauge with the given name, creating it on
// first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, ""}
	if g, ok := r.gauges[k]; ok {
		return g
	}
	r.setHelp(name, help)
	g := &Gauge{name: name}
	r.gauges[k] = g
	return g
}

// Histogram returns the histogram with the given name, creating it with the
// supplied ascending bucket bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	r.setHelp(name, help)
	h := &Histogram{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// CounterValue is one counter series in a Snapshot.
type CounterValue struct {
	Name     string
	LabelKey string
	LabelVal string
	Value    int64
}

// GaugeValue is one gauge series in a Snapshot.
type GaugeValue struct {
	Name  string
	Value float64
}

// HistogramValue is one histogram in a Snapshot. Counts are per-bucket (not
// cumulative); Counts[len(Bounds)] is the +Inf bucket.
type HistogramValue struct {
	Name   string
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot is a point-in-time view of every instrument, sorted by name then
// label value. Individual values are read atomically, but the snapshot as a
// whole is not a consistent cut across instruments.
type Snapshot struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// Counter returns the snapshotted value of a counter series (0 if absent).
func (s Snapshot) Counter(name, labelVal string) int64 {
	for _, c := range s.Counters {
		if c.Name == name && c.LabelVal == labelVal {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the snapshotted value of a gauge (0 if absent).
func (s Snapshot) Gauge(name string) float64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Histogram returns the snapshotted histogram with the given name and
// whether it exists.
func (s Snapshot) Histogram(name string) (HistogramValue, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// Snapshot captures the current value of every instrument. Nil-safe: a nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: k.name, LabelKey: c.labelKey, LabelVal: k.labelVal, Value: c.Value()})
	}
	for k, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: k.name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]uint64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		if s.Counters[i].Name != s.Counters[j].Name {
			return s.Counters[i].Name < s.Counters[j].Name
		}
		return s.Counters[i].LabelVal < s.Counters[j].LabelVal
	})
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// WriteTo renders the registry in the Prometheus text exposition format
// (families sorted by name, one # HELP/# TYPE header per family). It
// implements io.WriterTo; nil registries render nothing.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	s := r.Snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	var sb strings.Builder
	header := func(name, typ string) {
		if h := help[name]; h != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", name, typ)
	}
	lastFamily := ""
	for _, c := range s.Counters {
		if c.Name != lastFamily {
			header(c.Name, "counter")
			lastFamily = c.Name
		}
		if c.LabelKey != "" {
			fmt.Fprintf(&sb, "%s{%s=\"%s\"} %d\n", c.Name, c.LabelKey, escapeLabel(c.LabelVal), c.Value)
		} else {
			fmt.Fprintf(&sb, "%s %d\n", c.Name, c.Value)
		}
	}
	for _, g := range s.Gauges {
		header(g.Name, "gauge")
		fmt.Fprintf(&sb, "%s %g\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		header(h.Name, "histogram")
		cum := uint64(0)
		for i, b := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&sb, "%s_bucket{le=%q} %d\n", h.Name, fmt.Sprintf("%g", b), cum)
		}
		cum += h.Counts[len(h.Bounds)]
		fmt.Fprintf(&sb, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, cum)
		fmt.Fprintf(&sb, "%s_sum %g\n", h.Name, h.Sum)
		fmt.Fprintf(&sb, "%s_count %d\n", h.Name, h.Count)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}
