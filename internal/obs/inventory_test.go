package obs

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestMetricInventoryMatchesDesign is a tripwire: the metric inventory table
// in DESIGN.md §8 must list exactly the pn_* metrics registered by non-test
// code, no more and no less. Registering a metric without documenting it (or
// documenting one that no longer exists) fails here, so the §8 table stays a
// trustworthy contract for dashboards and alerts.
//
// Registration sites are found textually: every registry call in this repo is
// written single-line as .Counter("pn_...")/.CounterVec(...)/.Gauge(...)/
// .Histogram(...). If a new call site splits the name onto its own line this
// test reports it as undocumented — reformat the call or extend the scan.
func TestMetricInventoryMatchesDesign(t *testing.T) {
	root := filepath.Join("..", "..")

	registered := scanRegisteredMetrics(t, root)
	documented := scanDocumentedMetrics(t, filepath.Join(root, "DESIGN.md"))

	var undocumented, stale []string
	for name := range registered {
		if _, ok := documented[name]; !ok {
			undocumented = append(undocumented, name+" (registered at "+registered[name]+")")
		}
	}
	for name := range documented {
		if _, ok := registered[name]; !ok {
			stale = append(stale, name)
		}
	}
	sort.Strings(undocumented)
	sort.Strings(stale)
	if len(undocumented) > 0 {
		t.Errorf("metrics registered but missing from the DESIGN.md §8 inventory table:\n  %s",
			strings.Join(undocumented, "\n  "))
	}
	if len(stale) > 0 {
		t.Errorf("metrics in the DESIGN.md §8 inventory table but registered nowhere:\n  %s",
			strings.Join(stale, "\n  "))
	}
	if len(registered) == 0 || len(documented) == 0 {
		t.Fatalf("scan degenerate: %d registered, %d documented — the tripwire itself is broken",
			len(registered), len(documented))
	}
}

var registerRE = regexp.MustCompile(`\.(?:Counter|CounterVec|Gauge|Histogram)\("(pn_[a-z0-9_]+)"`)

// scanRegisteredMetrics walks the production source trees and returns every
// pn_* name passed to a registry constructor, mapped to one file that
// registers it. Test files are skipped: throwaway metrics minted inside tests
// are not part of the exposition contract.
func scanRegisteredMetrics(t *testing.T, root string) map[string]string {
	t.Helper()
	found := make(map[string]string)
	for _, tree := range []string{"internal", "cmd", "examples"} {
		dir := filepath.Join(root, tree)
		if _, err := os.Stat(dir); err != nil {
			continue
		}
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range registerRE.FindAllSubmatch(src, -1) {
				name := string(m[1])
				if _, ok := found[name]; !ok {
					found[name] = filepath.ToSlash(strings.TrimPrefix(path, root+string(filepath.Separator)))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return found
}

// documentedRE matches a backticked metric literal in the §8 table: the name,
// optionally followed by a {label} hint, closed by a backtick. Prose wildcards
// like `pn_serve_*` deliberately do not match.
var documentedRE = regexp.MustCompile("`(pn_[a-z0-9_]+)(?:\\{[a-z0-9_]+\\})?`")

// scanDocumentedMetrics extracts the metric names from the DESIGN.md §8
// section (from the "## 8." heading up to "## 9.").
func scanDocumentedMetrics(t *testing.T, designPath string) map[string]bool {
	t.Helper()
	src, err := os.ReadFile(designPath)
	if err != nil {
		t.Fatal(err)
	}
	var section []string
	in := false
	for _, line := range strings.Split(string(src), "\n") {
		switch {
		case strings.HasPrefix(line, "## 8."):
			in = true
		case strings.HasPrefix(line, "## 9."):
			in = false
		case in:
			section = append(section, line)
		}
	}
	if len(section) == 0 {
		t.Fatal("DESIGN.md has no §8 section — heading renumbered?")
	}
	found := make(map[string]bool)
	for _, m := range documentedRE.FindAllStringSubmatch(strings.Join(section, "\n"), -1) {
		found[m[1]] = true
	}
	return found
}
